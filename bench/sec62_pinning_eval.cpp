// §6.2: evaluation of pinning — 10-fold stratified cross-validation
// (precision/recall), geographic coverage against the cloud's published
// metro list, ground-truth accuracy (only possible here), and the
// co-presence threshold ablation.
#include "bench_common.h"

#include "pinning/evaluate.h"

using namespace cloudmap;

int main() {
  bench::header("§6.2 — pinning evaluation",
                "10-fold stratified CV: precision 99.34% (σ 1.6e-3), recall "
                "57.21% (σ 5.5e-3); coverage: 71 of 74 Amazon metros; "
                "pinned interfaces span 305 metros");

  Pipeline& p = bench::pipeline();
  const AnchorSet& anchors = p.anchors();

  const CrossValidationResult cv =
      cross_validate(p.mutable_pinner(), anchors, /*folds=*/10, 0.3, 29);
  std::printf("cross-validation (%d folds, 70-30 stratified):\n", cv.folds);
  std::printf("  precision %.2f%% ± %.4f (paper 99.34%% ± 0.0016)\n",
              100.0 * cv.precision_mean, cv.precision_std);
  std::printf("  recall    %.2f%% ± %.4f (paper 57.21%% ± 0.0055)\n\n",
              100.0 * cv.recall_mean, cv.recall_std);

  const CoverageResult coverage = geographic_coverage(
      p.world(), p.peeringdb(), CloudProvider::kAmazon, p.pinning());
  std::printf("geographic coverage: %zu of %zu known Amazon metros have "
              "pinned interfaces (paper: 71 of 74); pinned interfaces span "
              "%zu metros (paper: 305)\n",
              coverage.covered, coverage.cloud_metros,
              coverage.pinned_metros);
  if (!coverage.missing.empty()) {
    std::printf("missing metros:");
    for (const MetroId metro : coverage.missing)
      std::printf(" %s", p.world().metro(metro).name.c_str());
    std::printf(" (paper: Bangalore, Zhongwei, Cape Town)\n");
  }

  const GroundTruthAccuracy truth =
      score_against_truth(p.world(), p.pinning());
  std::printf("\nground-truth scoring (unavailable to the paper):\n");
  std::printf("  metro pins: %zu, correct %.2f%%\n", truth.pinned,
              100.0 * truth.accuracy);
  std::printf("  regional assignments: %zu, correct %.2f%%\n",
              truth.regional_assigned, 100.0 * truth.regional_accuracy);

  // Ablation: the 2 ms co-presence threshold (design choice of §6.1).
  std::printf("\nco-presence threshold ablation (Rule 2):\n");
  Pinner::Inputs inputs;
  inputs.fabric = &p.campaign().fabric();
  const Annotator annotator = p.annotator();
  inputs.annotator = &annotator;
  inputs.peeringdb = &p.peeringdb();
  inputs.dns = &p.dns();
  inputs.aliases = &p.alias_sets();
  inputs.world = &p.world();
  inputs.rtts = &p.mutable_rtts();
  inputs.vps = &p.campaign().vantage_points();
  for (const double threshold : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    PinningOptions options;
    options.copresence_ms = threshold;
    Pinner pinner(inputs, options);
    const PinningResult result = pinner.run();
    const GroundTruthAccuracy accuracy =
        score_against_truth(p.world(), result);
    std::printf("  %.1f ms -> %zu pinned (Rule 2: %zu), accuracy %.2f%%\n",
                threshold, result.pins.size(), result.pinned_by_rtt,
                100.0 * accuracy.accuracy);
  }
  std::printf("(the paper picks 2 ms from the Fig. 4b knee — the sweep shows "
              "the coverage/accuracy trade beyond it)\n");
  return 0;
}
