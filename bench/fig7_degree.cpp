// Figure 7: degree distributions of the bipartite Interface Connectivity
// Graph — CBIs per ABI (log-scaled in the paper) and ABIs per CBI (§7.4).
#include "bench_common.h"

#include "analysis/graph.h"

using namespace cloudmap;

int main() {
  bench::header("Figure 7 — ICG degree distributions",
                "(a) ABI degree: 30% =1, 70% <10, 95% <100; "
                "(b) CBI degree: 50% =1, 90% <=8");

  Pipeline& p = bench::pipeline();
  p.alias_verification();
  const IcgStats stats = icg_stats(p.campaign().fabric());

  const CdfSeries fig7a =
      cdf_series(stats.abi_degrees, logspace(0, 3, 13));
  bench::print_cdf("Fig 7a — ABI degree CDF (log grid)", fig7a);
  std::printf("  =1: %.1f%% (paper 30%%), <10: %.1f%% (paper 70%%), "
              "<100: %.1f%% (paper 95%%)\n\n",
              100.0 * cdf_at(stats.abi_degrees, 1.5),
              100.0 * cdf_at(stats.abi_degrees, 10.0),
              100.0 * cdf_at(stats.abi_degrees, 100.0));

  const CdfSeries fig7b = cdf_series(stats.cbi_degrees, linspace(0, 40, 41));
  bench::print_cdf("Fig 7b — CBI degree CDF", fig7b, 4);
  std::printf("  =1: %.1f%% (paper ~50%%), <=8: %.1f%% (paper ~90%%)\n\n",
              100.0 * cdf_at(stats.cbi_degrees, 1.5),
              100.0 * cdf_at(stats.cbi_degrees, 8.5));

  std::printf("ICG: %zu ABI nodes, %zu CBI nodes, %zu edges, %zu components, "
              "largest component %.1f%% (paper 92.3%%)\n",
              stats.abi_nodes, stats.cbi_nodes, stats.edges,
              stats.components, 100.0 * stats.largest_component_fraction);
  return 0;
}
