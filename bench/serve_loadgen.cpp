// serve_loadgen — the client-driven counterpart of BM_QuerySaturation:
// instead of calling QueryEngine in-process, it starts a real serve::Server
// on a loopback port over a freshly saved format-v3 snapshot, saturates it
// with concurrent serve::Client threads issuing the same query mix, and
// reports mean/p50/p99 round-trip latency per thread count into the
// committed bench trajectory (BENCH_serve_saturation.json, gated by
// tools/bench_compare.py like every other family).
//
// Mid-run the main thread hot-swaps the daemon between two snapshots built
// from different world seeds; the bench FAILS (exit 1) if any request is
// dropped or errors during the swaps — the zero-failed-query guarantee is
// perf-gated here and CI-gated in the serve-smoke job.
//
// Knobs: CLOUDMAP_LOADGEN_REQUESTS (requests per client thread, default
// 800). Runs argument-free like every other bench binary.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "core/pipeline.h"
#include "io/snapshot.h"
#include "query/request.h"
#include "serve/client.h"
#include "serve/server.h"
#include "topology/generator.h"
#include "util/rng.h"

namespace {

using namespace cloudmap;

constexpr int kSwapsPerPhase = 4;

// Builds a paper-shape world with `seed`, runs the pipeline, and saves the
// resulting snapshot (format v3, the zero-copy layout the daemon maps) to
// `path`. Returns false if the file cannot be written.
bool save_world_snapshot(std::uint64_t seed, const std::string& path) {
  GeneratorConfig config = GeneratorConfig::paper_shape();
  config.seed = seed;
  const World world = generate_world(config);
  Pipeline pipeline(world);
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  save_snapshot(out, pipeline.run_snapshot());
  return out.good();
}

int requests_per_thread() {
  if (const char* env = std::getenv("CLOUDMAP_LOADGEN_REQUESTS")) {
    const int parsed = std::atoi(env);
    if (parsed > 0) return parsed;
  }
  return 800;
}

// The BM_QuerySaturation mix, expressed as QueryRequests: a 1/8 split over
// counts / peers_of / vpi_candidates / interfaces_in with the remaining
// half going to address lookups.
QueryRequest mix_request(std::uint64_t roll,
                         const std::vector<std::uint32_t>& peers) {
  QueryRequest request;
  switch (roll & 7u) {
    case 0:
      request.kind = QueryKind::kCounts;
      break;
    case 1:
      request.kind = QueryKind::kPeersOf;
      request.asn = peers.empty()
                        ? 0u
                        : peers[static_cast<std::size_t>(roll) % peers.size()];
      break;
    case 2:
      request.kind = QueryKind::kVpiCandidates;
      break;
    case 3:
      request.kind = QueryKind::kInterfacesIn;
      request.metro = static_cast<std::uint32_t>(roll >> 8) % 64;
      break;
    default:
      request.kind = QueryKind::kLookup;
      request.address = static_cast<std::uint32_t>(roll >> 16);
      break;
  }
  return request;
}

struct PhaseResult {
  std::vector<std::uint64_t> latencies_ns;  // one per completed request
  std::uint64_t failures = 0;
};

// One client thread: its own connection, its own deterministic query
// stream (thread index expanded through splitmix64 exactly as in
// BM_QuerySaturation, so no two threads replay the same sequence).
void client_worker(std::uint16_t port, int thread_index, int requests,
                   const std::vector<std::uint32_t>& peers,
                   PhaseResult* result) {
  std::string error;
  std::optional<serve::Client> client =
      serve::Client::connect("127.0.0.1", port, &error);
  if (!client) {
    std::fprintf(stderr, "loadgen: %s\n", error.c_str());
    result->failures += static_cast<std::uint64_t>(requests);
    return;
  }
  std::uint64_t seed_state =
      0x9E3779B97F4A7C15ull + static_cast<std::uint64_t>(thread_index);
  Rng rng(splitmix64(seed_state));
  result->latencies_ns.reserve(static_cast<std::size_t>(requests));
  for (int i = 0; i < requests; ++i) {
    const QueryRequest request = mix_request(rng.next(), peers);
    QueryResponse response;
    const auto start = std::chrono::steady_clock::now();
    const bool ok = client->query(request, response, &error);
    const auto stop = std::chrono::steady_clock::now();
    if (!ok || response.status != QueryStatus::kOk) {
      ++result->failures;
      if (!ok) {
        std::fprintf(stderr, "loadgen: thread %d request %d: %s\n",
                     thread_index, i, error.c_str());
        return;  // connection gone; remaining requests count as failures
      }
      continue;
    }
    result->latencies_ns.push_back(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start)
            .count()));
  }
}

std::uint64_t percentile(std::vector<std::uint64_t>& sorted, double q) {
  if (sorted.empty()) return 0;
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[rank < sorted.size() ? rank : sorted.size() - 1];
}

}  // namespace

int main() {
  const std::string path_a = "serve_loadgen_a.snap";
  const std::string path_b = "serve_loadgen_b.snap";
  std::printf("serve_loadgen: building two paper-shape snapshots...\n");
  if (!save_world_snapshot(1, path_a) || !save_world_snapshot(2, path_b)) {
    std::fprintf(stderr, "loadgen: cannot write snapshot files\n");
    return 1;
  }

  MetricsRegistry registry(true);
  serve::Server::Config config;
  config.port = 0;  // kernel-assigned loopback port
  config.max_clients = 64;
  serve::Server server(config, &registry);
  std::string error;
  if (!server.start(path_a, &error)) {
    std::fprintf(stderr, "loadgen: %s\n", error.c_str());
    return 1;
  }
  std::printf("serve_loadgen: daemon on 127.0.0.1:%u\n",
              static_cast<unsigned>(server.port()));

  // Fetch the peer-ASN list once over the wire; every thread's peers_of
  // stream draws from it.
  std::vector<std::uint32_t> peers;
  {
    std::optional<serve::Client> control =
        serve::Client::connect("127.0.0.1", server.port(), &error);
    QueryRequest request;
    request.kind = QueryKind::kPeerList;
    QueryResponse response;
    if (!control || !control->query(request, response, &error)) {
      std::fprintf(stderr, "loadgen: peer list: %s\n", error.c_str());
      return 1;
    }
    peers = response.items;
  }

  const int requests = requests_per_thread();
  std::vector<int> thread_counts = {1, 2, 4};
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  if (hw > 4) thread_counts.push_back(hw);

  std::vector<cloudmap::bench::TrajectoryEntry> entries;
  std::uint64_t total_failures = 0;
  for (const int threads : thread_counts) {
    std::vector<PhaseResult> results(static_cast<std::size_t>(threads));
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t)
      workers.emplace_back(client_worker, server.port(), t, requests,
                           std::cref(peers),
                           &results[static_cast<std::size_t>(t)]);

    // Hot-swap the served snapshot back and forth while the clients hammer
    // it. Every request issued across a swap must still succeed.
    std::optional<serve::Client> swapper =
        serve::Client::connect("127.0.0.1", server.port(), &error);
    for (int s = 0; s < kSwapsPerPhase; ++s) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      const std::string& next = (s % 2 == 0) ? path_b : path_a;
      if (!swapper || !swapper->swap(next, &error)) {
        std::fprintf(stderr, "loadgen: swap: %s\n", error.c_str());
        ++total_failures;
      }
    }
    for (std::thread& worker : workers) worker.join();

    std::vector<std::uint64_t> all;
    std::uint64_t failures = 0;
    for (const PhaseResult& result : results) {
      all.insert(all.end(), result.latencies_ns.begin(),
                 result.latencies_ns.end());
      failures += result.failures;
    }
    total_failures += failures;
    std::sort(all.begin(), all.end());
    double mean = 0.0;
    for (const std::uint64_t v : all) mean += static_cast<double>(v);
    if (!all.empty()) mean /= static_cast<double>(all.size());
    const std::uint64_t p50 = percentile(all, 0.50);
    const std::uint64_t p99 = percentile(all, 0.99);
    std::printf(
        "threads %d: %zu requests, %llu failed, mean %.1f us, "
        "p50 %.1f us, p99 %.1f us\n",
        threads, all.size(), static_cast<unsigned long long>(failures),
        mean / 1e3, static_cast<double>(p50) / 1e3,
        static_cast<double>(p99) / 1e3);

    const std::string prefix =
        "ServeSaturation/threads:" + std::to_string(threads);
    const auto iterations = static_cast<std::int64_t>(all.size());
    const std::vector<std::pair<std::string, double>> counters = {
        {"requests", static_cast<double>(all.size())},
        {"failed", static_cast<double>(failures)},
        {"swaps", static_cast<double>(kSwapsPerPhase)},
    };
    entries.push_back({prefix + "/mean", iterations, mean, threads, counters});
    entries.push_back({prefix + "/p50", iterations,
                       static_cast<double>(p50), threads, {}});
    entries.push_back({prefix + "/p99", iterations,
                       static_cast<double>(p99), threads, {}});
  }

  const serve::ServerStats stats = server.stats();
  std::printf("server: served %llu, failed %llu, swaps %llu\n",
              static_cast<unsigned long long>(stats.served),
              static_cast<unsigned long long>(stats.failed),
              static_cast<unsigned long long>(stats.swaps));
  server.stop();
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());

  cloudmap::bench::write_trajectory("serve_saturation", entries, nullptr,
                                    /*threads=*/1, nullptr);

  if (total_failures != 0 || stats.failed != 0) {
    std::fprintf(stderr,
                 "loadgen: FAILED — %llu client failures, %llu server-side "
                 "failures (hot-swap must not drop queries)\n",
                 static_cast<unsigned long long>(total_failures),
                 static_cast<unsigned long long>(stats.failed));
    return 1;
  }
  std::printf("serve_loadgen: zero failed queries across %d hot-swaps/phase\n",
              kSwapsPerPhase);
  return 0;
}
