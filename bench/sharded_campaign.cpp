// BM_ShardedCampaign — memory-flatness of the sharded campaign protocol on
// a world ~10x the quickstart's (WorldSpec-derived, 5400 client ASes).
// Every phase runs in a forked child whose peak RSS the parent reads back
// from wait4(2), so the trajectory artifact carries a real RSS column next
// to the wall times:
//
//   single_process   full two-round pipeline + snapshot in one process
//   shard_round1/2   each of the 4 shard processes, streaming its owned
//                    (region, chunk) items to a part file
//   merge            absorb all parts, run the remaining stages, write the
//                    final snapshot
//
// The parent enforces the tentpole invariants in-binary: the merged
// snapshot must be byte-identical to the single-process one, and peak RSS
// across the sharded phases must stay under 1.5x the largest single shard
// (the streaming merge must not re-accumulate the campaign in memory).
// The world is generated once in the parent; children inherit it
// copy-on-write, so every phase pays the same resident-world floor and the
// RSS deltas isolate what each phase adds.
//
//   CLOUDMAP_THREADS     campaign worker count (default: all hardware)
//   CLOUDMAP_BENCH_DIR   trajectory output directory (default: cwd)
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/pipeline.h"
#include "io/shard.h"
#include "io/snapshot.h"
#include "topology/generator.h"

using namespace cloudmap;

namespace {

constexpr std::uint64_t kDigest = 0xB16B005D16E57ull;
constexpr int kShards = 4;

const World& bench_world() {
  static const World world = [] {
    WorldSpec spec;
    spec.seed = bench::kBenchSeed;
    spec.total_ases = 5400;  // ~10x the quickstart preset's 540 client ASes
    return generate_world(GeneratorConfig::from_spec(spec));
  }();
  return world;
}

PipelineOptions base_options() {
  PipelineOptions options = bench::frontend_options().pipeline;
  // Byte-identity is asserted on the snapshot files, so wall-clock and
  // execution-environment metrics fields must be normalized away.
  options.deterministic_metrics = true;
  return options;
}

struct ChildStats {
  double wall_ns = 0.0;
  double rss_mib = 0.0;
};

// Run `body` in a forked child; return its wall time and peak RSS.
ChildStats run_child(const char* label, const std::function<void()>& body) {
  const auto start = std::chrono::steady_clock::now();
  const pid_t pid = fork();
  if (pid < 0) {
    std::perror("sharded_campaign: fork");
    std::exit(1);
  }
  if (pid == 0) {
    body();
    std::_Exit(0);  // skip atexit: the parent owns the trajectory artifact
  }
  int status = 0;
  struct rusage usage = {};
  if (wait4(pid, &status, 0, &usage) != pid || !WIFEXITED(status) ||
      WEXITSTATUS(status) != 0) {
    std::fprintf(stderr, "sharded_campaign: %s child failed\n", label);
    std::exit(1);
  }
  ChildStats stats;
  stats.wall_ns = std::chrono::duration<double, std::nano>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  stats.rss_mib = static_cast<double>(usage.ru_maxrss) / 1024.0;  // KiB
  return stats;
}

[[noreturn]] void child_fail(const std::string& message) {
  std::fprintf(stderr, "sharded_campaign: %s\n", message.c_str());
  std::_Exit(1);
}

// One shard process for one round: probe the owned (region, chunk) items
// and stream them to a part file — exactly `cloudmap_cli campaign --shard`.
void run_shard_round(const std::string& prefix, int round, int index) {
  PipelineOptions options = base_options();
  options.campaign.shard_index = index;
  options.campaign.shard_count = kShards;
  Pipeline pipeline(bench_world(), options);
  Campaign& campaign = pipeline.mutable_campaign();

  std::string error;
  ShardMerge round1_parts;
  if (round == 2) {
    std::vector<std::string> paths;
    for (int s = 0; s < kShards; ++s)
      paths.push_back(shard_part_path(prefix, 1, s, kShards));
    if (!round1_parts.open(paths, &error)) child_fail(error);
    campaign.absorb_round1([&round1_parts](Campaign::SweepChunkResult& r) {
      return round1_parts.next(r);
    });
  }

  Annotator annotator = pipeline.annotator();
  annotator.set_snapshot(round == 1 ? &pipeline.snapshot_round1()
                                    : &pipeline.snapshot_round2());
  const std::vector<Ipv4> targets =
      round == 1 ? campaign.round1_targets() : campaign.expansion_targets();

  ShardPartHeader header;
  header.config_digest = kDigest;
  header.round = static_cast<std::uint32_t>(round);
  header.shard_index = static_cast<std::uint32_t>(index);
  header.shard_count = kShards;
  header.total_items = campaign.sweep_item_count(targets.size());
  header.target_count = targets.size();

  ShardPartWriter writer;
  if (!writer.open(shard_part_path(prefix, round, index, kShards), header,
                   &error))
    child_fail(error);
  const Campaign::ShardSink sink =
      [&](std::uint64_t item, const Campaign::SweepChunkResult& result) {
        if (!writer.append(item, result, &error)) child_fail(error);
      };
  if (round == 1)
    campaign.run_round1_shard(annotator, sink);
  else
    campaign.run_round2_shard(annotator, sink);
  if (!writer.finish(&error)) child_fail(error);
}

void write_snapshot_file(const RunSnapshot& snapshot,
                         const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) child_fail("cannot write " + path);
  save_snapshot(out, snapshot);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

int main() {
  const int threads = bench::bench_threads();
  char dir_template[] = "/tmp/cloudmap_shard_bench_XXXXXX";
  if (mkdtemp(dir_template) == nullptr) {
    std::perror("sharded_campaign: mkdtemp");
    return 1;
  }
  const std::string dir = dir_template;
  const std::string prefix = dir + "/campaign";
  const std::string single_path = dir + "/single.snap";
  const std::string merged_path = dir + "/merged.snap";

  std::printf("BM_ShardedCampaign: %d-shard campaign vs single process\n",
              kShards);
  const World& world = bench_world();
  std::printf("world: seed %llu, %zu ASes, %zu routers, %zu regions "
              "(~10x quickstart), campaign threads %d\n\n",
              static_cast<unsigned long long>(bench::kBenchSeed),
              world.ases.size(), world.routers.size(), world.regions.size(),
              threads);

  std::vector<bench::TrajectoryEntry> entries;
  entries.reserve(8);  // returned entry pointers must survive later records
  const auto record = [&](const std::string& name, double wall_ns,
                          double rss_mib) {
    bench::TrajectoryEntry entry;
    entry.name = "BM_ShardedCampaign/" + name;
    entry.iterations = 1;
    entry.ns_per_op = wall_ns;
    entry.threads = threads;
    entry.counters.emplace_back("rss_mib", rss_mib);
    entries.push_back(entry);
    std::printf("  %-16s %9.1f ms  peak RSS %8.1f MiB\n", name.c_str(),
                wall_ns / 1e6, rss_mib);
    return &entries.back();
  };

  // Single-process baseline: both rounds plus inference, one snapshot.
  const ChildStats single = run_child("single_process", [&] {
    Pipeline pipeline(bench_world(), base_options());
    write_snapshot_file(pipeline.run_snapshot(), single_path);
  });
  record("single_process", single.wall_ns, single.rss_mib);

  // The sharded protocol: N round-1 shards, N round-2 shards, one merge.
  double shard_rss_max = 0.0;
  for (const int round : {1, 2}) {
    double round_wall = 0.0;
    double round_rss = 0.0;
    for (int i = 0; i < kShards; ++i) {
      const ChildStats shard = run_child("shard", [&, round, i] {
        run_shard_round(prefix, round, i);
      });
      round_wall += shard.wall_ns;
      round_rss = std::max(round_rss, shard.rss_mib);
    }
    shard_rss_max = std::max(shard_rss_max, round_rss);
    auto* entry = record("shard_round" + std::to_string(round), round_wall,
                         round_rss);
    entry->counters.emplace_back("shards", kShards);
  }

  const ChildStats merge = run_child("merge", [&] {
    std::vector<std::string> round1_paths;
    std::vector<std::string> round2_paths;
    for (int s = 0; s < kShards; ++s) {
      round1_paths.push_back(shard_part_path(prefix, 1, s, kShards));
      round2_paths.push_back(shard_part_path(prefix, 2, s, kShards));
    }
    ShardMerge round1_parts;
    ShardMerge round2_parts;
    std::string error;
    if (!round1_parts.open(round1_paths, &error)) child_fail(error);
    if (!round2_parts.open(round2_paths, &error)) child_fail(error);
    Pipeline pipeline(bench_world(), base_options());
    pipeline.set_absorb_sources(
        [&round1_parts](Campaign::SweepChunkResult& r) {
          return round1_parts.next(r);
        },
        [&round2_parts](Campaign::SweepChunkResult& r) {
          return round2_parts.next(r);
        });
    write_snapshot_file(pipeline.run_snapshot(), merged_path);
  });
  auto* merge_entry = record("merge", merge.wall_ns, merge.rss_mib);

  // --- in-binary gates -----------------------------------------------------
  int failures = 0;

  // Determinism: sharded + merged must reproduce the single-process
  // snapshot byte for byte.
  const std::string single_bytes = read_file(single_path);
  const bool identical =
      !single_bytes.empty() && single_bytes == read_file(merged_path);
  merge_entry->counters.emplace_back("snapshot_identical",
                                     identical ? 1.0 : 0.0);
  merge_entry->counters.emplace_back(
      "snapshot_bytes", static_cast<double>(single_bytes.size()));
  if (!identical) {
    std::fprintf(stderr, "\nFAIL: merged snapshot differs from the "
                         "single-process snapshot\n");
    ++failures;
  }

  // Memory flatness: the merge streams parts through fixed-size state, so
  // the sharded protocol's peak must stay under 1.5x its largest shard.
  const double sharded_peak = std::max(shard_rss_max, merge.rss_mib);
  const double ratio = sharded_peak / shard_rss_max;
  merge_entry->counters.emplace_back("rss_vs_single_shard", ratio);
  std::printf("\n  sharded peak RSS %.1f MiB = %.2fx largest shard "
              "(gate < 1.5), single process %.1f MiB\n",
              sharded_peak, ratio, single.rss_mib);
  std::printf("  merged snapshot %s single-process snapshot (%zu bytes)\n",
              identical ? "==" : "!=", single_bytes.size());
  if (ratio >= 1.5) {
    std::fprintf(stderr, "\nFAIL: sharded peak RSS %.2fx largest shard "
                         "(limit 1.5x)\n", ratio);
    ++failures;
  }

  bench::write_trajectory("sharded_campaign", entries, &world, threads,
                          nullptr);

  // Best-effort cleanup of the part and snapshot files.
  for (const int round : {1, 2})
    for (int s = 0; s < kShards; ++s)
      std::remove(shard_part_path(prefix, round, s, kShards).c_str());
  std::remove(single_path.c_str());
  std::remove(merged_path.c_str());
  rmdir(dir.c_str());
  return failures == 0 ? 0 : 1;
}
