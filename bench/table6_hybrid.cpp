// Table 6: hybrid peering — the exact combinations of peering groups each
// AS maintains with Amazon, ranked by AS count (§7.2).
#include "bench_common.h"

#include "analysis/grouping.h"

using namespace cloudmap;

int main() {
  bench::header("Table 6 — hybrid peering combinations",
                "top rows: Pb-nB 2187; Pr-nB-nV 686; Pr-nB-nV;Pb-nB 207; "
                "Pb-B 117; Pr-nB-nV;Pr-nB-V 83; Pr-nB-nV;Pb-nB;Pr-nB-V 60");

  Pipeline& p = bench::pipeline();
  p.vpis();
  const PeeringClassifier classifier = p.classifier();
  const auto rows = hybrid_breakdown(p.campaign().fabric(), classifier);

  TextTable table({"combination", "#ASN", "share"});
  std::size_t total = 0;
  for (const HybridRow& row : rows) total += row.as_count;
  for (const HybridRow& row : rows) {
    std::string combo;
    for (const PeeringGroup group : row.combo) {
      if (!combo.empty()) combo += "; ";
      combo += to_string(group);
    }
    table.add_row({combo, std::to_string(row.as_count),
                   TextTable::pct(static_cast<double>(row.as_count) /
                                  static_cast<double>(total))});
  }
  std::printf("%s\n", table.render("observed combinations").c_str());

  // Shape checks against the paper's ordering.
  std::size_t single_group_ases = 0;
  std::size_t hybrid_ases = 0;
  for (const HybridRow& row : rows) {
    if (row.combo.size() == 1) single_group_ases += row.as_count;
    else hybrid_ases += row.as_count;
  }
  std::printf("single-group ASes: %zu, hybrid ASes: %zu (paper: the single "
              "Pb-nB and Pr-nB-nV rows dominate, with Pr-nB-nV;Pb-nB the "
              "largest true-hybrid row at 207 ASes)\n",
              single_group_ases, hybrid_ases);
  if (!rows.empty() && rows.front().combo.size() == 1 &&
      rows.front().combo.front() == PeeringGroup::kPbNb) {
    std::printf("ordering check: largest row is pure Pb-nB — matches the "
                "paper\n");
  }
  return 0;
}
