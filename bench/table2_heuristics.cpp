// Table 2: candidate ABIs (and their CBIs) confirmed by the §5.1 heuristics,
// individually and cumulatively, plus the §5.2 alias-set corrections.
// Doubles as the heuristic-subset ablation: the individual row shows what
// each heuristic would confirm alone.
#include <unordered_set>

#include "bench_common.h"

using namespace cloudmap;

int main() {
  bench::header("Table 2 — verification heuristics (individual / cumulative)",
                "individual: IXP 0.83k(13.66k) hybrid 2.05k(14.44k) "
                "reachable 2.8k(15.14k); cumulative: 0.83k(13.66k) "
                "2.26k(15.14k) 3.31k(24.23k); 87.8% of ABIs confirmed; "
                "alias corrections 18/2/25");

  Pipeline& p = bench::pipeline();
  const HeuristicCounts& h = p.heuristics();

  TextTable table({"", "IXP", "Hybrid", "Reachable"});
  auto cell = [](std::size_t abis, std::size_t cbis) {
    return std::to_string(abis) + " (" + std::to_string(cbis) + ")";
  };
  table.add_row({"Individual", cell(h.ixp_abis, h.ixp_cbis),
                 cell(h.hybrid_abis, h.hybrid_cbis),
                 cell(h.reachable_abis, h.reachable_cbis)});
  table.add_row({"Cumulative", cell(h.cum_ixp_abis, h.cum_ixp_cbis),
                 cell(h.cum_ixp_abis + h.cum_hybrid_abis,
                      h.cum_ixp_cbis + h.cum_hybrid_cbis),
                 cell(h.cum_ixp_abis + h.cum_hybrid_abis +
                          h.cum_reachable_abis,
                      h.cum_ixp_cbis + h.cum_hybrid_cbis +
                          h.cum_reachable_cbis)});
  table.add_row({"paper Indiv.", "0.83k (13.66k)", "2.05k (14.44k)",
                 "2.8k (15.14k)"});
  table.add_row({"paper Cumul.", "0.83k (13.66k)", "2.26k (15.14k)",
                 "3.31k (24.23k)"});
  std::printf("%s\n", table.render("ABIs (CBIs) confirmed").c_str());

  const std::size_t confirmed =
      h.cum_ixp_abis + h.cum_hybrid_abis + h.cum_reachable_abis;
  std::printf("confirmed ABIs: %zu / %zu = %.1f%% (paper 87.8%%); "
              "unconfirmed %zu (paper 9.8%%)\n",
              confirmed, confirmed + h.unconfirmed_abis,
              100.0 * static_cast<double>(confirmed) /
                  static_cast<double>(confirmed + h.unconfirmed_abis),
              h.unconfirmed_abis);
  std::printf("Fig.2 shifts applied by the hybrid heuristic: %zu\n",
              h.shifts_applied);

  const AliasVerifyStats& a = p.alias_verification();
  std::printf("\nalias verification (§5.2): %zu sets, %zu interfaces "
              "(paper 2.64k sets, 8.68k ifaces)\n",
              a.sets, a.interfaces_in_sets);
  std::printf("majority-owned sets: %.1f%% (paper >94%%), unanimous: %.1f%% "
              "(paper 92%%)\n",
              100.0 * a.majority_fraction, 100.0 * a.unanimous_fraction);
  std::printf("corrections: ABI->CBI %zu, CBI->ABI %zu, CBI->CBI %zu "
              "(paper: 18, 2, 25)\n",
              a.abi_to_cbi, a.cbi_to_abi, a.cbi_to_cbi);

  // Ground-truth audit of the Fig. 2 shift machinery — a check the paper
  // had no way to run: of the segments the verification stage rewrote, how
  // many now name a true planted interconnection (cloud border interface →
  // client border interface)?
  {
    const World& world = bench::world();
    std::unordered_set<std::uint64_t> true_pairs;
    for (const GroundTruthInterconnect& ic : world.interconnects) {
      if (ic.cloud != CloudProvider::kAmazon || ic.private_address) continue;
      const std::uint32_t cloud_side =
          world.interface(ic.cloud_interface).address.value();
      const std::uint32_t client_side =
          world.interface(ic.client_interface).address.value();
      true_pairs.insert((static_cast<std::uint64_t>(cloud_side) << 32) |
                        client_side);
    }
    // Shifted segments' (abi, cbi) should now be the cloud-side/client-side
    // of a real interconnect; the abi may also legitimately be the border's
    // upstream interface, so also accept "cbi is a true client interface".
    std::unordered_set<std::uint32_t> true_client_sides;
    for (const std::uint64_t pair : true_pairs)
      true_client_sides.insert(static_cast<std::uint32_t>(pair));
    std::size_t shifted = 0;
    std::size_t exact = 0;
    std::size_t client_ok = 0;
    for (const InferredSegment& segment : p.campaign().fabric().segments()) {
      if (!segment.shifted) continue;
      ++shifted;
      const std::uint64_t pair =
          (static_cast<std::uint64_t>(segment.abi.value()) << 32) |
          segment.cbi.value();
      if (true_pairs.count(pair)) ++exact;
      if (true_client_sides.count(segment.cbi.value())) ++client_ok;
    }
    if (shifted > 0) {
      std::printf("\nshift audit vs ground truth (unavailable to the "
                  "paper): %zu shifted segments; %.1f%% now name the exact "
                  "planted interface pair, %.1f%% the true client "
                  "interface\n",
                  shifted, 100.0 * exact / static_cast<double>(shifted),
                  100.0 * client_ok / static_cast<double>(shifted));
    }
  }
  return 0;
}
