// Figure 4: (a) CDF of min-RTT from the closest Amazon region to each ABI —
// the 2 ms knee that anchors native-colo ABIs (§6.1, ~40% below the knee);
// (b) CDF of the min-RTT difference between the two ends of each peering
// segment — the 2 ms co-presence threshold (~half below).
#include "bench_common.h"

using namespace cloudmap;

int main() {
  bench::header("Figure 4 — min-RTT CDFs",
                "(a) knee at 2 ms with ~40% of ABIs below; "
                "(b) knee at 2 ms with ~50% of segments below");

  Pipeline& p = bench::pipeline();
  p.alias_verification();  // finished fabric
  Pinner& pinner = p.mutable_pinner();

  // (a) min-RTT from the closest region to each ABI.
  std::vector<double> abi_rtts;
  for (const std::uint32_t abi : p.campaign().fabric().unique_abis()) {
    double best = 1e18;
    for (std::size_t v = 0; v < p.campaign().vantage_points().size(); ++v) {
      const auto rtt = pinner.rtt_from(v, Ipv4(abi));
      if (rtt && *rtt < best) best = *rtt;
    }
    if (best < 1e18) abi_rtts.push_back(best);
  }
  const CdfSeries fig4a = cdf_series(abi_rtts, linspace(0, 25, 26));
  bench::print_cdf("Fig 4a — min-RTT to ABIs from closest region (ms)",
                   fig4a, 2);
  std::printf("fraction below 2 ms: %.1f%% (paper ~40%%); detected knee at "
              "%.1f ms (paper: 2 ms)\n\n",
              100.0 * cdf_at(abi_rtts, 2.0), cdf_knee(fig4a));

  // (b) min-RTT difference across each inferred segment.
  std::vector<double> diffs;
  for (const InferredSegment& segment : p.campaign().fabric().segments()) {
    const auto diff = pinner.segment_rtt_diff(segment);
    if (diff) diffs.push_back(*diff);
  }
  const CdfSeries fig4b = cdf_series(diffs, linspace(0, 40, 41));
  bench::print_cdf("Fig 4b — min-RTT difference across peering segments (ms)",
                   fig4b, 4);
  std::printf("fraction below 2 ms: %.1f%% (paper ~50%%); detected knee at "
              "%.1f ms (paper: 2 ms)\n",
              100.0 * cdf_at(diffs, 2.0), cdf_knee(fig4b));
  std::printf("samples: %zu ABIs, %zu segments\n", abi_rtts.size(),
              diffs.size());
  return 0;
}
