// Table 3: anchor interfaces by evidence type and interfaces pinned by each
// co-presence rule, exclusive and cumulative (§6.1).
#include "bench_common.h"

using namespace cloudmap;

int main() {
  bench::header("Table 3 — anchors and co-presence pinning",
                "exclusive: DNS 5.31k, IXP 2.0k, Metro 1.66k, Native 1.42k, "
                "Alias 0.65k, min-RTT 5.38k; cumulative to 14.37k; overall "
                "50.2% of border interfaces pinned at metro level");

  Pipeline& p = bench::pipeline();
  const AnchorSet& anchors = p.anchors();
  const PinningResult& pins = p.pinning();

  const std::size_t dns = anchors.dns;
  const std::size_t ixp = anchors.ixp;
  const std::size_t metro = anchors.metro_footprint;
  const std::size_t native = anchors.native;
  const std::size_t alias = pins.pinned_by_alias;
  const std::size_t rtt = pins.pinned_by_rtt;

  TextTable table({"", "DNS", "IXP", "Metro", "Native", "Alias", "min-RTT"});
  table.add_row({"Exclusive", std::to_string(dns), std::to_string(ixp),
                 std::to_string(metro), std::to_string(native),
                 std::to_string(alias), std::to_string(rtt)});
  table.add_row(
      {"Cumulative", std::to_string(dns), std::to_string(dns + ixp),
       std::to_string(dns + ixp + metro),
       std::to_string(dns + ixp + metro + native),
       std::to_string(dns + ixp + metro + native + alias),
       std::to_string(dns + ixp + metro + native + alias + rtt)});
  table.add_row({"paper Exc.", "5.31k", "2.0k", "1.66k", "1.42k", "0.65k",
                 "5.38k"});
  table.add_row({"paper Cum.", "5.31k", "6.73k", "7.22k", "8.64k", "9.21k",
                 "14.37k"});
  std::printf("%s\n",
              table.render("anchor / pinned interfaces by evidence").c_str());

  const std::size_t abi_count = p.campaign().fabric().unique_abis().size();
  const std::size_t cbi_count = p.campaign().fabric().unique_cbis().size();
  std::size_t pinned_abis = 0;
  std::size_t pinned_cbis = 0;
  {
    const auto abis = p.campaign().fabric().unique_abis();
    const auto cbis = p.campaign().fabric().unique_cbis();
    for (const auto& [address, pin] : pins.pins) {
      (void)pin;
      if (abis.count(address)) ++pinned_abis;
      if (cbis.count(address)) ++pinned_cbis;
    }
  }
  std::printf("metro-level coverage: CBIs %.1f%% (paper 45.1%%), ABIs %.1f%% "
              "(paper 75.9%%), all %.1f%% (paper 50.2%%)\n",
              100.0 * pinned_cbis / static_cast<double>(cbi_count),
              100.0 * pinned_abis / static_cast<double>(abi_count),
              100.0 * (pinned_abis + pinned_cbis) /
                  static_cast<double>(abi_count + cbi_count));
  std::printf("propagation: %d rounds (paper: 4), unanimity conflicts %zu "
              "(paper: 179 interfaces, 1.2%%)\n",
              pins.rounds, pins.propagation_conflicts);
  std::printf("anchor consistency filters: %zu multi-evidence conflicts, "
              "%zu alias conflicts removed (paper: 48 + 18 = 66)\n",
              anchors.conflict_evidence, anchors.conflict_alias);
  std::printf("DNS feasibility exclusions: %zu (paper 0.87k); remote IXP "
              "members excluded: %zu (paper ~1.5k of 3.5k); multi-metro IXP "
              "members excluded: %zu (paper 366)\n",
              anchors.dns_rtt_excluded, anchors.ixp_remote_excluded,
              anchors.ixp_multi_metro_excluded);
  return 0;
}
