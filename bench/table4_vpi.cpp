// Table 4: Amazon CBIs also observed from Microsoft, Google, IBM, and
// Oracle clouds — the VPI lower bound (§7.1), pairwise and cumulative.
// The cumulative row is also the "how many foreign clouds do you need"
// ablation the design calls out.
#include "bench_common.h"

using namespace cloudmap;

int main() {
  bench::header("Table 4 — multi-cloud VPI detection",
                "pairwise: Microsoft 4.69k (18.9%), Google 0.79k (3.2%), "
                "IBM 0.23k (0.9%), Oracle 0 (0%); cumulative 5.01k (20.2%)");

  Pipeline& p = bench::pipeline();
  const VpiDetectionResult& vpis = p.vpis();
  const double total = static_cast<double>(vpis.subject_cbis);

  TextTable table({"cloud", "pairwise", "pairwise %", "cumulative",
                   "cumulative %", "paper pairwise", "paper cum."});
  const char* paper_pair[] = {"4.69k (18.9%)", "0.79k (3.2%)",
                              "0.23k (0.9%)", "0 (0%)"};
  const char* paper_cum[] = {"4.69k (18.9%)", "4.93k (19.9%)",
                             "5.01k (20.2%)", "5.01k (20.2%)"};
  for (std::size_t i = 0; i < vpis.per_cloud.size(); ++i) {
    const VpiCloudResult& cloud = vpis.per_cloud[i];
    table.add_row({to_string(cloud.provider), std::to_string(cloud.overlap),
                   TextTable::pct(cloud.overlap / total),
                   std::to_string(cloud.cumulative_overlap),
                   TextTable::pct(cloud.cumulative_overlap / total),
                   i < 4 ? paper_pair[i] : "-", i < 4 ? paper_cum[i] : "-"});
  }
  std::printf("%s\n", table.render("CBIs shared with other clouds").c_str());

  std::printf("target pool: %zu addresses (paper ~327k at full scale)\n",
              vpis.target_pool);
  std::printf("VPI share of CBIs: %.1f%% (paper ~20%%, a lower bound)\n",
              100.0 * static_cast<double>(vpis.vpi_cbis.size()) / total);

  // Ground-truth context the paper could not have: how many true VPIs the
  // overlap method can even see.
  const World& w = bench::world();
  std::size_t true_vpis = 0;
  std::size_t private_vpis = 0;
  std::size_t shared_ports = 0;
  for (const GroundTruthInterconnect& ic : w.interconnects) {
    if (ic.cloud != CloudProvider::kAmazon || ic.kind != PeeringKind::kVpi)
      continue;
    ++true_vpis;
    if (ic.private_address) ++private_vpis;
    if (ic.shared_port_address) ++shared_ports;
  }
  std::printf("\nground truth: %zu Amazon VPIs planted (%zu private-address "
              "— invisible by design; %zu shared-port — the only ones the "
              "overlap method can attribute)\n",
              true_vpis, private_vpis, shared_ports);
  std::printf("detected %zu — consistent with the paper's argument that "
              "Table 4 undercounts (§7.1, §7.3)\n",
              vpis.vpi_cbis.size());
  return 0;
}
