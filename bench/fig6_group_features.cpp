// Figure 6: per-group peer features as stacked boxplots — customer cone
// (/24s), reachable /24s, ABI and CBI counts per AS, min-RTT difference,
// and pinned metro counts (§7.3).
#include "bench_common.h"

#include "analysis/features.h"

using namespace cloudmap;

int main() {
  bench::header("Figure 6 — per-group peer features (boxplot summaries)",
                "shape: Pr-B-nV has the largest cones/reachable-/24s/CBIs "
                "and world-wide metros; Pb-nB peers are small edge networks "
                "with ~1 CBI; virtual groups show the largest RTT "
                "differences (remote L2 tails)");

  Pipeline& p = bench::pipeline();
  p.vpis();
  const PeeringClassifier classifier = p.classifier();
  const GroupFeatureMatrix matrix = compute_group_features(
      p.campaign().fabric(), classifier,
      [&](Asn asn) { return p.cone_of(asn); },
      [&](const InferredSegment& segment) {
        return p.mutable_pinner().segment_rtt_diff(segment);
      },
      p.pinning());

  for (std::size_t f = 0; f < kPeerFeatureCount; ++f) {
    TextTable table({"group", "n", "min", "q1", "median", "q3", "max",
                     "mean"});
    for (std::size_t g = 0; g < kPeeringGroupCount; ++g) {
      const BoxStats& box = matrix.stats[g][f];
      table.add_row({to_string(static_cast<PeeringGroup>(g)),
                     std::to_string(box.count), TextTable::num(box.min, 1),
                     TextTable::num(box.q1, 1), TextTable::num(box.median, 1),
                     TextTable::num(box.q3, 1), TextTable::num(box.max, 1),
                     TextTable::num(box.mean, 1)});
    }
    std::printf("%s\n",
                table.render(to_string(static_cast<PeerFeature>(f))).c_str());
  }

  // The paper's headline ordering checks.
  auto median = [&](PeeringGroup g, PeerFeature f) {
    return matrix.stats[static_cast<int>(g)][static_cast<int>(f)].median;
  };
  std::printf("shape checks vs paper:\n");
  std::printf("  Pr-B-nV cone median (%.0f) > Pb-nB cone median (%.0f): %s\n",
              median(PeeringGroup::kPrBNv, PeerFeature::kBgpSlash24),
              median(PeeringGroup::kPbNb, PeerFeature::kBgpSlash24),
              median(PeeringGroup::kPrBNv, PeerFeature::kBgpSlash24) >
                      median(PeeringGroup::kPbNb, PeerFeature::kBgpSlash24)
                  ? "yes"
                  : "NO");
  std::printf("  Pr-B-nV CBIs median (%.0f) > Pb-nB CBIs median (%.0f): %s\n",
              median(PeeringGroup::kPrBNv, PeerFeature::kCbiCount),
              median(PeeringGroup::kPbNb, PeerFeature::kCbiCount),
              median(PeeringGroup::kPrBNv, PeerFeature::kCbiCount) >
                      median(PeeringGroup::kPbNb, PeerFeature::kCbiCount)
                  ? "yes"
                  : "NO");
  const double virtual_rtt =
      std::max(median(PeeringGroup::kPrNbV, PeerFeature::kRttDiffMs),
               median(PeeringGroup::kPrBV, PeerFeature::kRttDiffMs));
  const double physical_rtt =
      median(PeeringGroup::kPrNbNv, PeerFeature::kRttDiffMs);
  std::printf("  virtual-group RTT diff (%.1f ms) > non-virtual (%.1f ms): "
              "%s (paper: VPIs show larger RTT diffs — remote L2 tails)\n",
              virtual_rtt, physical_rtt,
              virtual_rtt > physical_rtt ? "yes" : "NO");
  return 0;
}
