// §7.4 / §7.3 closing analyses: the ICG's connected structure, remote
// peerings among fully-pinned segments, coverage against public BGP, and
// the DNS dxvif/VLAN evidence for hidden VPIs.
#include "bench_common.h"

#include "analysis/dns_evidence.h"
#include "analysis/graph.h"
#include "analysis/grouping.h"

using namespace cloudmap;

int main() {
  bench::header("§7.3/§7.4 — connectivity graph, BGP coverage, DNS evidence",
                "largest component 92.3%; 98% of fully-pinned peerings stay "
                "within one metro; 226 of 250 BGP-reported peerings "
                "rediscovered (93%) plus >3k invisible to BGP; dx/VLAN "
                "keywords only in Pr-nB groups (170 names, 125 dx)");

  Pipeline& p = bench::pipeline();
  p.vpis();
  const PeeringClassifier classifier = p.classifier();

  const IcgStats icg = icg_stats(p.campaign().fabric());
  std::printf("ICG: %zu nodes, %zu edges, largest component %.1f%% "
              "(paper 92.3%%)\n",
              icg.abi_nodes + icg.cbi_nodes, icg.edges,
              100.0 * icg.largest_component_fraction);

  const RemotePeeringStats remote =
      remote_peering_stats(p.campaign().fabric(), p.pinning());
  std::printf("fully-pinned segments: %.1f%% of all (paper 57.9%%); of "
              "those, %.1f%% within one metro (paper 98%%), %zu cross-metro "
              "remote peerings\n\n",
              100.0 * remote.both_pinned_fraction,
              100.0 * remote.same_metro_fraction, remote.cross_metro);

  const BgpCoverage coverage =
      bgp_coverage(p.campaign().fabric(), classifier, p.snapshot_round2(),
                   p.subject_asns());
  std::printf("BGP coverage: public data reports %zu Amazon peer ASes; we "
              "rediscover %zu (%.1f%%; paper 226/250 = 93%%)\n",
              coverage.bgp_reported, coverage.bgp_also_discovered,
              100.0 * coverage.coverage());
  std::printf("peerings invisible to BGP: %zu of %zu inferred (paper: >3k "
              "of 3.3k)\n\n",
              coverage.inferred_not_in_bgp, coverage.inferred_total);

  const DnsEvidence evidence =
      dns_vpi_evidence(p.campaign().fabric(), classifier, p.dns());
  TextTable table({"group", "named CBIs", "vlan tags", "dx keywords"});
  for (std::size_t g = 0; g < kPeeringGroupCount; ++g) {
    const auto& row = evidence.groups[g];
    table.add_row({to_string(static_cast<PeeringGroup>(g)),
                   std::to_string(row.cbis_with_names),
                   std::to_string(row.vlan_tagged),
                   std::to_string(row.dx_keyword)});
  }
  std::printf("%s", table.render("§7.3 DNS evidence for hidden VPIs").c_str());
  std::printf("(paper: 170 VLAN-tagged names and 125 dx-keyword names, all "
              "within Pr-nB-V and Pr-nB-nV — evidence that part of "
              "Pr-nB-nV is really virtual)\n");
  return 0;
}
