// Vantage-point ablation: how much of the fabric do you see with fewer
// cloud regions? The paper probes from all 15 usable regions; hot-potato
// egress selection means each region reveals a different slice of a
// multi-link peer's interconnections, so coverage should climb steeply with
// region count — the quantitative version of §3's design choice.
#include "bench_common.h"

using namespace cloudmap;

namespace {

struct AblationPoint {
  int regions;
  std::size_t cbis;
  std::size_t segments;
  double router_recall;
};

AblationPoint run_with_regions(const World& world, int region_count) {
  GeneratorConfig config = GeneratorConfig::paper_shape();
  config.seed = cloudmap::bench::kBenchSeed;
  config.amazon_regions = region_count;
  // A fresh world per point: region count shapes the backbone itself.
  const World ablation_world = generate_world(config);
  (void)world;
  Pipeline pipeline(ablation_world);
  pipeline.alias_verification();
  const InferenceScore score = pipeline.score();
  return AblationPoint{
      region_count, pipeline.campaign().fabric().unique_cbis().size(),
      pipeline.campaign().fabric().segments().size(),
      score.router_recall()};
}

}  // namespace

int main() {
  bench::header("ablation — vantage regions vs fabric coverage",
                "the paper probes from all 15 usable regions; hot-potato "
                "egress means every region reveals different links "
                "(§3, §4.2)");

  TextTable table({"regions", "CBIs", "segments", "router-level recall"});
  for (const int regions : {3, 6, 9, 12, 15}) {
    const AblationPoint point = run_with_regions(bench::world(), regions);
    table.add_row({std::to_string(point.regions),
                   std::to_string(point.cbis),
                   std::to_string(point.segments),
                   TextTable::pct(point.router_recall)});
  }
  std::printf("%s", table.render("coverage vs region count").c_str());
  std::printf("(each row is a fresh world with that many Amazon regions; "
              "recall is against that world's own ground truth)\n");
  return 0;
}
