// Engine microbenchmarks (google-benchmark): the hot paths behind the
// reproduction — trie lookups, hop annotation, path computation, full
// traceroutes, BGP table computation, world generation, and the parallel
// campaign's thread-scaling curve.
#include <benchmark/benchmark.h>

#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "controlplane/bgp.h"
#include "core/pipeline.h"
#include "dataplane/traceroute.h"
#include "query/engine.h"
#include "topology/generator.h"
#include "util/rng.h"

namespace {

using namespace cloudmap;

const World& bench_world() {
  static const World world = [] {
    GeneratorConfig config = GeneratorConfig::paper_shape();
    config.seed = 1;
    return generate_world(config);
  }();
  return world;
}

struct Stack {
  const World& world = bench_world();
  BgpSimulator sim{world};
  Forwarder forwarder{world, sim};
  VantagePoint vp = VantagePoint::cloud_vm(
      CloudProvider::kAmazon,
      world.regions_of(CloudProvider::kAmazon).front(), "vm");
};

Stack& stack() {
  static Stack instance;
  return instance;
}

void BM_PrefixTrieLookup(benchmark::State& state) {
  const World& world = bench_world();
  Rng rng(7);
  std::vector<Ipv4> targets;
  for (int i = 0; i < 1024; ++i)
    targets.emplace_back(static_cast<std::uint32_t>(rng.next()));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        world.prefix_owner.lookup(targets[i++ & 1023]));
  }
}
BENCHMARK(BM_PrefixTrieLookup);

void BM_ForwardPath(benchmark::State& state) {
  Stack& s = stack();
  Rng rng(8);
  const auto slash24s = s.world.probeable_slash24s();
  std::size_t i = 0;
  for (auto _ : state) {
    const Prefix& prefix = slash24s[(i++ * 2654435761u) % slash24s.size()];
    benchmark::DoNotOptimize(s.forwarder.path(s.vp, prefix.network().next(1)));
  }
}
BENCHMARK(BM_ForwardPath);

void BM_Traceroute(benchmark::State& state) {
  Stack& s = stack();
  TracerouteEngine engine(s.forwarder, 9);
  const auto slash24s = s.world.probeable_slash24s();
  std::size_t i = 0;
  for (auto _ : state) {
    const Prefix& prefix = slash24s[(i++ * 2654435761u) % slash24s.size()];
    benchmark::DoNotOptimize(engine.trace(s.vp, prefix.network().next(1)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Traceroute);

void BM_BgpRoutesToOrigin(benchmark::State& state) {
  const World& world = bench_world();
  std::uint32_t origin = 0;
  for (auto _ : state) {
    // Fresh simulator each batch so the cache does not trivialize the loop.
    state.PauseTiming();
    BgpSimulator sim(world);
    state.ResumeTiming();
    benchmark::DoNotOptimize(
        sim.routes_to(AsId{origin % static_cast<std::uint32_t>(
                               world.ases.size())}));
    ++origin;
  }
}
BENCHMARK(BM_BgpRoutesToOrigin)->Unit(benchmark::kMicrosecond);

void BM_GenerateSmallWorld(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    GeneratorConfig config = GeneratorConfig::small();
    config.seed = ++seed;
    benchmark::DoNotOptimize(generate_world(config));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GenerateSmallWorld)->Unit(benchmark::kMillisecond);

// Campaign sweep scaling: the full round-1 /24 sweep from every region at
// 1/2/4/N worker threads. The inferred fabric and round stats are identical
// at every thread count (see ParallelCampaign tests); only wall time moves.
void BM_CampaignRound1(benchmark::State& state) {
  // A pipeline supplies the annotation substrate; its own campaign is not
  // run — each iteration builds a fresh Campaign over the shared forwarder.
  static Pipeline* pipeline = new Pipeline(bench_world());
  CampaignConfig config;
  config.threads = static_cast<int>(state.range(0));
  std::uint64_t traceroutes = 0;
  RoundStats last{};
  for (auto _ : state) {
    Campaign campaign(pipeline->world(), pipeline->forwarder(),
                      CloudProvider::kAmazon, config);
    const RoundStats stats = campaign.run_round1(pipeline->annotator());
    benchmark::DoNotOptimize(stats);
    traceroutes += stats.traceroutes;
    last = stats;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(traceroutes));
  // Deterministic per-round quantities for the trajectory artifact: the
  // round's work is identical every iteration and at every thread count.
  state.counters["traceroutes"] = static_cast<double>(last.traceroutes);
  state.counters["probes"] = static_cast<double>(last.probes);
  state.counters["targets"] = static_cast<double>(last.targets);
  state.counters["campaign_threads"] = static_cast<double>(config.threads);
}
BENCHMARK(BM_CampaignRound1)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(static_cast<int>(std::thread::hardware_concurrency()))
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Query saturation: N reader threads hammering one shared QueryEngine with
// a deterministic mix of point lookups, per-peer scans, and aggregate
// counts. The engine is immutable after build and counters are relaxed
// atomics, so throughput should scale with the thread count (the acceptance
// gate for src/query/'s zero-locking claim).
void BM_QuerySaturation(benchmark::State& state) {
  // Built once: full pipeline run -> snapshot -> index. Shared by every
  // thread of every thread-count variant.
  static const FabricIndex* index = [] {
    Pipeline pipeline(bench_world());
    return new FabricIndex(pipeline.run_snapshot());
  }();
  static MetricsRegistry* registry = new MetricsRegistry(true);
  static const QueryEngine* engine = new QueryEngine(*index, registry);

  const std::vector<std::uint32_t>& peers = index->peer_asns();
  // Disjoint per-thread query streams: the thread index is expanded through
  // splitmix64 before seeding, so no two reader threads replay the same
  // index sequence (an xor of the raw index only perturbs low seed bits,
  // which xoshiro's seeding leaves correlated).
  std::uint64_t seed_state =
      0x9E3779B97F4A7C15ull + static_cast<std::uint64_t>(state.thread_index());
  Rng rng(splitmix64(seed_state));
  for (auto _ : state) {
    const std::uint64_t roll = rng.next();
    switch (roll & 7u) {
      case 0:
        benchmark::DoNotOptimize(engine->counts());
        break;
      case 1:
        if (!peers.empty())
          benchmark::DoNotOptimize(
              engine->peers_of(Asn{peers[roll % peers.size()]}));
        break;
      case 2:
        benchmark::DoNotOptimize(engine->vpi_candidates());
        break;
      case 3:
        benchmark::DoNotOptimize(
            engine->interfaces_in(static_cast<std::uint32_t>(roll >> 8) % 64));
        break;
      default:
        benchmark::DoNotOptimize(
            engine->lookup(Ipv4(static_cast<std::uint32_t>(roll >> 16))));
        break;
    }
  }
  // Each thread processed exactly its own iteration count — the framework
  // sums per-thread items, so counting anything shared here double-reports.
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  // kAvgThreads: the value is a world fact, not per-thread work — without
  // the flag the framework sums it over reader threads.
  state.counters["peer_asns"] = benchmark::Counter(
      static_cast<double>(peers.size()), benchmark::Counter::kAvgThreads);
}
BENCHMARK(BM_QuerySaturation)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(static_cast<int>(std::thread::hardware_concurrency()))
    ->UseRealTime();

void BM_RttToInterface(benchmark::State& state) {
  Stack& s = stack();
  std::vector<InterfaceId> targets;
  for (const GroundTruthInterconnect& ic : s.world.interconnects)
    if (ic.cloud == CloudProvider::kAmazon && !ic.private_address)
      targets.push_back(ic.client_interface);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        s.forwarder.rtt_to_interface(s.vp, targets[i++ % targets.size()]));
  }
}
BENCHMARK(BM_RttToInterface);

// Console reporter that also records every completed run for the bench
// trajectory artifacts. Families split by benchmark name so one invocation
// emits all three committed baselines: BM_CampaignRound1 runs land in
// BENCH_campaign_round1.json, BM_QuerySaturation in
// BENCH_query_saturation.json, and everything else in BENCH_perf_micro.json.
class TrajectoryReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      cloudmap::bench::TrajectoryEntry entry;
      entry.name = run.benchmark_name();
      entry.iterations = static_cast<std::int64_t>(run.iterations);
      entry.threads = run.threads;
      entry.ns_per_op = run.iterations == 0
                            ? 0.0
                            : run.real_accumulated_time /
                                  static_cast<double>(run.iterations) * 1e9;
      // Rate counters (items/s, bytes/s) are wall-clock-derived — the
      // trajectory carries only the deterministic ones.
      for (const auto& [name, counter] : run.counters)
        if ((counter.flags & benchmark::Counter::kIsRate) == 0)
          entry.counters.emplace_back(name, counter.value);
      auto& family = family_of(entry.name);
      // On hosts where hardware_concurrency collapses onto an explicit Arg,
      // the same configuration runs twice; keep the first measurement.
      bool duplicate = false;
      for (const auto& seen : family)
        if (seen.name == entry.name) duplicate = true;
      if (!duplicate) family.push_back(std::move(entry));
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

  void write_trajectories() const {
    for (const auto& [slug, entries] : families_) {
      if (entries.empty()) continue;
      cloudmap::bench::write_trajectory(slug, entries, &bench_world(),
                                        /*threads=*/1, nullptr);
    }
  }

 private:
  std::vector<cloudmap::bench::TrajectoryEntry>& family_of(
      const std::string& name) {
    const char* slug = "perf_micro";
    if (name.rfind("BM_CampaignRound1", 0) == 0) slug = "campaign_round1";
    if (name.rfind("BM_QuerySaturation", 0) == 0) slug = "query_saturation";
    for (auto& [existing, entries] : families_)
      if (existing == slug) return entries;
    families_.emplace_back(slug,
                           std::vector<cloudmap::bench::TrajectoryEntry>{});
    return families_.back().second;
  }

  std::vector<
      std::pair<std::string, std::vector<cloudmap::bench::TrajectoryEntry>>>
      families_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  TrajectoryReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  reporter.write_trajectories();
  return 0;
}
