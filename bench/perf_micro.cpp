// Engine microbenchmarks (google-benchmark): the hot paths behind the
// reproduction — trie lookups, hop annotation, path computation, full
// traceroutes, BGP table computation, world generation, and the parallel
// campaign's thread-scaling curve.
#include <benchmark/benchmark.h>

#include <thread>

#include "controlplane/bgp.h"
#include "core/pipeline.h"
#include "dataplane/traceroute.h"
#include "query/engine.h"
#include "topology/generator.h"
#include "util/rng.h"

namespace {

using namespace cloudmap;

const World& bench_world() {
  static const World world = [] {
    GeneratorConfig config = GeneratorConfig::paper_shape();
    config.seed = 1;
    return generate_world(config);
  }();
  return world;
}

struct Stack {
  const World& world = bench_world();
  BgpSimulator sim{world};
  Forwarder forwarder{world, sim};
  VantagePoint vp = VantagePoint::cloud_vm(
      CloudProvider::kAmazon,
      world.regions_of(CloudProvider::kAmazon).front(), "vm");
};

Stack& stack() {
  static Stack instance;
  return instance;
}

void BM_PrefixTrieLookup(benchmark::State& state) {
  const World& world = bench_world();
  Rng rng(7);
  std::vector<Ipv4> targets;
  for (int i = 0; i < 1024; ++i)
    targets.emplace_back(static_cast<std::uint32_t>(rng.next()));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        world.prefix_owner.lookup(targets[i++ & 1023]));
  }
}
BENCHMARK(BM_PrefixTrieLookup);

void BM_ForwardPath(benchmark::State& state) {
  Stack& s = stack();
  Rng rng(8);
  const auto slash24s = s.world.probeable_slash24s();
  std::size_t i = 0;
  for (auto _ : state) {
    const Prefix& prefix = slash24s[(i++ * 2654435761u) % slash24s.size()];
    benchmark::DoNotOptimize(s.forwarder.path(s.vp, prefix.network().next(1)));
  }
}
BENCHMARK(BM_ForwardPath);

void BM_Traceroute(benchmark::State& state) {
  Stack& s = stack();
  TracerouteEngine engine(s.forwarder, 9);
  const auto slash24s = s.world.probeable_slash24s();
  std::size_t i = 0;
  for (auto _ : state) {
    const Prefix& prefix = slash24s[(i++ * 2654435761u) % slash24s.size()];
    benchmark::DoNotOptimize(engine.trace(s.vp, prefix.network().next(1)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Traceroute);

void BM_BgpRoutesToOrigin(benchmark::State& state) {
  const World& world = bench_world();
  std::uint32_t origin = 0;
  for (auto _ : state) {
    // Fresh simulator each batch so the cache does not trivialize the loop.
    state.PauseTiming();
    BgpSimulator sim(world);
    state.ResumeTiming();
    benchmark::DoNotOptimize(
        sim.routes_to(AsId{origin % static_cast<std::uint32_t>(
                               world.ases.size())}));
    ++origin;
  }
}
BENCHMARK(BM_BgpRoutesToOrigin)->Unit(benchmark::kMicrosecond);

void BM_GenerateSmallWorld(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    GeneratorConfig config = GeneratorConfig::small();
    config.seed = ++seed;
    benchmark::DoNotOptimize(generate_world(config));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GenerateSmallWorld)->Unit(benchmark::kMillisecond);

// Campaign sweep scaling: the full round-1 /24 sweep from every region at
// 1/2/4/N worker threads. The inferred fabric and round stats are identical
// at every thread count (see ParallelCampaign tests); only wall time moves.
void BM_CampaignRound1(benchmark::State& state) {
  // A pipeline supplies the annotation substrate; its own campaign is not
  // run — each iteration builds a fresh Campaign over the shared forwarder.
  static Pipeline* pipeline = new Pipeline(bench_world());
  CampaignConfig config;
  config.threads = static_cast<int>(state.range(0));
  std::uint64_t traceroutes = 0;
  for (auto _ : state) {
    Campaign campaign(pipeline->world(), pipeline->forwarder(),
                      CloudProvider::kAmazon, config);
    const RoundStats stats = campaign.run_round1(pipeline->annotator());
    benchmark::DoNotOptimize(stats);
    traceroutes += stats.traceroutes;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(traceroutes));
}
BENCHMARK(BM_CampaignRound1)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(static_cast<int>(std::thread::hardware_concurrency()))
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Query saturation: N reader threads hammering one shared QueryEngine with
// a deterministic mix of point lookups, per-peer scans, and aggregate
// counts. The engine is immutable after build and counters are relaxed
// atomics, so throughput should scale with the thread count (the acceptance
// gate for src/query/'s zero-locking claim).
void BM_QuerySaturation(benchmark::State& state) {
  // Built once: full pipeline run -> snapshot -> index. Shared by every
  // thread of every thread-count variant.
  static const FabricIndex* index = [] {
    Pipeline pipeline(bench_world());
    return new FabricIndex(pipeline.run_snapshot());
  }();
  static MetricsRegistry* registry = new MetricsRegistry(true);
  static const QueryEngine* engine = new QueryEngine(*index, registry);

  const std::vector<std::uint32_t>& peers = index->peer_asns();
  Rng rng(0x9E3779B97F4A7C15ull ^
          static_cast<std::uint64_t>(state.thread_index()));
  std::uint64_t queries = 0;
  for (auto _ : state) {
    const std::uint64_t roll = rng.next();
    switch (roll & 7u) {
      case 0:
        benchmark::DoNotOptimize(engine->counts());
        break;
      case 1:
        if (!peers.empty())
          benchmark::DoNotOptimize(
              engine->peers_of(Asn{peers[roll % peers.size()]}));
        break;
      case 2:
        benchmark::DoNotOptimize(engine->vpi_candidates());
        break;
      case 3:
        benchmark::DoNotOptimize(
            engine->interfaces_in(static_cast<std::uint32_t>(roll >> 8) % 64));
        break;
      default:
        benchmark::DoNotOptimize(
            engine->lookup(Ipv4(static_cast<std::uint32_t>(roll >> 16))));
        break;
    }
    ++queries;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(queries));
}
BENCHMARK(BM_QuerySaturation)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(static_cast<int>(std::thread::hardware_concurrency()))
    ->UseRealTime();

void BM_RttToInterface(benchmark::State& state) {
  Stack& s = stack();
  std::vector<InterfaceId> targets;
  for (const GroundTruthInterconnect& ic : s.world.interconnects)
    if (ic.cloud == CloudProvider::kAmazon && !ic.private_address)
      targets.push_back(ic.client_interface);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        s.forwarder.rtt_to_interface(s.vp, targets[i++ % targets.size()]));
  }
}
BENCHMARK(BM_RttToInterface);

}  // namespace

BENCHMARK_MAIN();
