// §8: running the reimplemented bdrmap baseline per region and quantifying
// the inconsistency classes the paper documents, plus the agreement with
// the cloudmap fabric.
#include "bench_common.h"

#include "bdrmap/bdrmap.h"

using namespace cloudmap;

int main() {
  bench::header("§8 — bdrmap comparison",
                "bdrmap: 4.83k ABIs, 9.65k CBIs, 2.66k ASes; 0.32k AS0-owned "
                "CBIs; >500 multi-owner CBIs; 872 ABI/CBI flips; common with "
                "the paper's method: 1.85k ABIs, 5.48k CBIs, 2k ASes");

  Pipeline& p = bench::pipeline();
  p.alias_verification();

  Bdrmap bdrmap(p.world(), p.forwarder(), p.snapshot_round2(), p.as2org(),
                CloudProvider::kAmazon);
  const BdrmapResult result = bdrmap.run();

  std::printf("bdrmap merged view: %zu ABIs, %zu CBIs, %zu owner ASes "
              "(paper: 4.83k / 9.65k / 2.66k)\n",
              result.abis.size(), result.cbis.size(),
              result.owner_asns.size());
  std::printf("cloudmap view:      %zu ABIs, %zu CBIs, %zu peer ASes\n\n",
              p.campaign().fabric().unique_abis().size(),
              p.campaign().fabric().unique_cbis().size(),
              p.peer_asns().size());

  std::printf("inconsistency classes (paper values):\n");
  std::printf("  CBIs with AS0 owner:              %zu   (0.32k)\n",
              result.as0_owner_cbis);
  std::printf("  CBIs with multiple region owners: %zu   (>500)\n",
              result.multi_owner_cbis);
  std::printf("  ABI-in-one-region/CBI-in-another: %zu   (872)\n",
              result.abi_cbi_flips);
  std::printf("  third-party-heuristic owners:     %zu   (62%% of "
              "bdrmap-exclusive private peerings)\n\n",
              result.thirdparty_cbis);

  const BdrmapComparison comparison = compare_with_fabric(
      result, p.campaign().fabric(), p.peer_asns());
  std::printf("agreement: common ABIs %zu, common CBIs %zu, common ASes %zu "
              "(paper: 1.85k / 5.48k / 2k)\n",
              comparison.common_abis, comparison.common_cbis,
              comparison.common_ases);
  std::printf("exclusive ASes: bdrmap-only %zu (paper 0.65k), cloudmap-only "
              "%zu\n",
              comparison.bdrmap_only_ases, comparison.cloudmap_only_ases);
  std::printf("\nwhy bdrmap lags in a cloud setting (as §8 argues): it "
              "selects targets and annotates hops from BGP alone — WHOIS-"
              "only interconnect space and IXP LANs are ASN 0 to it, and a "
              "third of Amazon's peerings are invisible in BGP.\n");
  return 0;
}
