// §2 related-work claims, quantified: MAP-IT cannot see through layer-2
// fabrics, and CFS-style facility search is starved by incomplete public
// data and broken by remote peering — versus the paper's own methodology.
#include "bench_common.h"

#include "baselines/mapit.h"
#include "pinning/cfs.h"
#include "pinning/evaluate.h"

using namespace cloudmap;

int main() {
  bench::header("§2 baselines — MAP-IT and constrained facility search",
                "claims: MAP-IT 'not applicable where layer-2 switching "
                "fabrics are employed at the borders'; CFS 'problematic' "
                "given Amazon's limited BGP visibility");

  Pipeline& p = bench::pipeline();
  p.alias_verification();
  Annotator annotator = p.annotator();
  annotator.set_snapshot(&p.snapshot_round2());

  // --- MAP-IT ---
  Mapit mapit(p.world(), p.forwarder(), annotator);
  const MapitResult mapit_result = mapit.run(CloudProvider::kAmazon);
  const MapitScore mapit_score =
      score_mapit(p.world(), mapit_result, CloudProvider::kAmazon);

  std::printf("MAP-IT: %zu inter-AS edges from %zu adjacencies (%zu skipped "
              "for lack of BGP origin — the L2/WHOIS blind spot)\n",
              mapit_result.edges.size(), mapit_result.adjacencies_examined,
              mapit_result.skipped_unannotated);
  TextTable mapit_table(
      {"interconnect kind", "found", "total", "recovery"});
  mapit_table.add_row({"cross-connect (true /30s)",
                       std::to_string(mapit_score.xconnect_found),
                       std::to_string(mapit_score.xconnect_total),
                       TextTable::pct(mapit_score.xconnect_rate())});
  mapit_table.add_row({"public IXP (shared LAN)",
                       std::to_string(mapit_score.ixp_found),
                       std::to_string(mapit_score.ixp_total),
                       TextTable::pct(mapit_score.ixp_rate())});
  mapit_table.add_row({"VPI (cloud exchange)",
                       std::to_string(mapit_score.vpi_found),
                       std::to_string(mapit_score.vpi_total),
                       TextTable::pct(mapit_score.vpi_rate())});
  std::printf("%s", mapit_table.render("MAP-IT recovery by kind").c_str());

  const InferenceScore ours = p.score();
  std::printf("cloudmap recovers %.1f%% of the same population at router "
              "level (%.1f%% exact interface) — the L2-aware methodology is "
              "what closes the gap\n\n",
              100.0 * ours.router_recall(), 100.0 * ours.recall());

  // --- CFS ---
  ConstrainedFacilitySearch::Inputs inputs;
  inputs.fabric = &p.campaign().fabric();
  inputs.annotator = &annotator;
  inputs.peeringdb = &p.peeringdb();
  inputs.world = &p.world();
  inputs.rtts = &p.mutable_rtts();
  inputs.vps = &p.campaign().vantage_points();
  ConstrainedFacilitySearch cfs(inputs);
  const CfsResult cfs_result = cfs.run();
  const CfsScore cfs_score =
      score_cfs(p.world(), cfs_result, CloudProvider::kAmazon);

  const std::size_t cbis = p.campaign().fabric().unique_cbis().size();
  std::printf("CFS: pinned %zu of %zu CBIs to a single facility (%.1f%%); "
              "failures: %zu no tenant candidates, %zu all candidates "
              "RTT-infeasible, %zu ambiguous, %zu unattributed\n",
              cfs_result.pinned.size(), cbis,
              100.0 * cfs_result.pinned.size() / static_cast<double>(cbis),
              cfs_result.no_tenant_candidates, cfs_result.rtt_eliminated_all,
              cfs_result.ambiguous, cfs_result.unattributed);
  std::printf("CFS accuracy on its pins: facility %.1f%%, metro %.1f%%\n",
              100.0 * cfs_score.facility_accuracy(),
              100.0 * cfs_score.metro_accuracy());

  const GroundTruthAccuracy co_presence =
      score_against_truth(p.world(), p.pinning());
  std::printf("co-presence pinning (this paper's method): %zu interfaces at "
              "metro level, %.1f%% correct — broader coverage at comparable "
              "precision\n",
              co_presence.pinned, 100.0 * co_presence.accuracy);
  return 0;
}
