// Table 5: breakdown of all Amazon peerings into the six groups defined by
// public/private × BGP-visible/invisible × virtual/non-virtual (§7.2),
// with the hidden-peering headline.
#include "bench_common.h"

#include "analysis/grouping.h"

using namespace cloudmap;

int main() {
  bench::header("Table 5 — peering groups",
                "ASes%: Pb-nB 71, Pb-B 5, [Pb 76]; Pr-nB-V 7, Pr-nB-nV 31, "
                "[Pr-nB 33]; Pr-B-nV 3, Pr-B-V 2, [Pr-B 3]; hidden (virtual "
                "or non-BGP) = 33.3% of peerings");

  Pipeline& p = bench::pipeline();
  p.vpis();  // ensure the virtual axis is populated
  const PeeringClassifier classifier = p.classifier();
  const GroupBreakdown b = breakdown(p.campaign().fabric(), classifier);

  const double as_total = static_cast<double>(b.total_ases);
  const double cbi_total = static_cast<double>(b.total_cbis);
  const double abi_total = static_cast<double>(b.total_abis);

  TextTable table({"group", "ASes(%)", "CBIs(%)", "ABIs(%)",
                   "paper ASes(%)", "paper CBIs(%)", "paper ABIs(%)"});
  auto row = [&](const std::string& name, const GroupRow& group,
                 const char* pa, const char* pc, const char* pb) {
    table.add_row(
        {name,
         std::to_string(group.ases.size()) + " (" +
             TextTable::pct(group.ases.size() / as_total, 0) + ")",
         std::to_string(group.cbis.size()) + " (" +
             TextTable::pct(group.cbis.size() / cbi_total, 0) + ")",
         std::to_string(group.abis.size()) + " (" +
             TextTable::pct(group.abis.size() / abi_total, 0) + ")",
         pa, pc, pb});
  };
  row("Pb-nB", b.rows[static_cast<int>(PeeringGroup::kPbNb)], "2.52k (71%)",
      "3.93k (16%)", "0.79k (21%)");
  row("Pb-B", b.rows[static_cast<int>(PeeringGroup::kPbB)], "0.20k (5%)",
      "0.56k (2%)", "0.56k (15%)");
  row("[Pb]", b.pb, "2.69k (76%)", "4.46k (18%)", "0.83k (22%)");
  row("Pr-nB-V", b.rows[static_cast<int>(PeeringGroup::kPrNbV)],
      "0.24k (7%)", "2.99k (12%)", "0.54k (14%)");
  row("Pr-nB-nV", b.rows[static_cast<int>(PeeringGroup::kPrNbNv)],
      "1.1k (31%)", "10.24k (41%)", "2.59k (69%)");
  row("[Pr-nB]", b.pr_nb, "1.18k (33%)", "13.24k (53%)", "2.68k (71%)");
  row("Pr-B-nV", b.rows[static_cast<int>(PeeringGroup::kPrBNv)],
      "0.11k (3%)", "5.67k (23%)", "2.07k (55%)");
  row("Pr-B-V", b.rows[static_cast<int>(PeeringGroup::kPrBV)], "0.06k (2%)",
      "2.09k (8%)", "0.33k (9%)");
  row("[Pr-B]", b.pr_b, "0.12k (3%)", "7.76k (31%)", "2.11k (56%)");
  std::printf("%s\n", table.render("six peering groups").c_str());

  // Hidden peerings (§7.2): the virtual and private-invisible peerings —
  // the 33.29% headline corresponds to the AS share of the Pr-nB and
  // Pr-B-V groups (BGP-invisible private peerings plus all VPIs).
  std::unordered_set<std::uint32_t> hidden_ases = b.pr_nb.ases;
  for (const std::uint32_t as :
       b.rows[static_cast<int>(PeeringGroup::kPrBV)].ases)
    hidden_ases.insert(as);
  std::printf("hidden peerings (private non-BGP or virtual): %.1f%% of peer "
              "ASes (paper: 33.3%%)\n",
              100.0 * hidden_ases.size() / as_total);
  std::unordered_set<std::uint32_t> bgp_invisible_cbis;
  for (const PeeringGroup g :
       {PeeringGroup::kPbNb, PeeringGroup::kPrNbV, PeeringGroup::kPrNbNv,
        PeeringGroup::kPrBV}) {
    for (const std::uint32_t cbi : b.rows[static_cast<int>(g)].cbis)
      bgp_invisible_cbis.insert(cbi);
  }
  std::printf("interconnections invisible to public BGP (incl. Pb-nB): "
              "%.1f%% of CBIs\n",
              100.0 * bgp_invisible_cbis.size() / cbi_total);
  std::printf("unattributed segments (unknown owner): %zu\n",
              b.unattributed_segments);
  return 0;
}
