// BM_HazardSweep — cost of the adversarial scenario engine: one full
// pipeline run per hazard preset on the scorecard world, timed end to end
// (world hazards + campaign + inference + scoring; the churn preset times
// the whole longitudinal sequence). Emits BENCH_hazard_sweep.json for the
// trajectory gate, with the deterministic inference results as counters so
// a regression in *what* the hazards do shows up next to a regression in
// how long they take.
//
//   CLOUDMAP_THREADS     campaign worker count (default: all hardware)
//   CLOUDMAP_BENCH_DIR   trajectory output directory (default: cwd)
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "scenario/score.h"

using namespace cloudmap;

namespace {

double elapsed_ns(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::nano>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main() {
  const int threads = bench::bench_threads();
  ScorecardConfig config;
  config.threads = threads;

  std::printf("BM_HazardSweep: scorecard pipeline per hazard preset "
              "(world seed %llu, hazard seed %llu, threads %d)\n\n",
              static_cast<unsigned long long>(config.world_seed),
              static_cast<unsigned long long>(config.hazard_seed), threads);

  std::vector<bench::TrajectoryEntry> entries;
  for (const std::string& name : HazardProfile::preset_names()) {
    const HazardProfile profile = *HazardProfile::preset(name);
    const auto start = std::chrono::steady_clock::now();
    const HazardScore row = score_profile(profile, config);
    const double ns = elapsed_ns(start);

    bench::TrajectoryEntry entry;
    entry.name = "BM_HazardSweep/" + name;
    entry.iterations = 1;
    entry.ns_per_op = ns;
    entry.threads = threads;
    entry.counters.emplace_back("segments",
                                static_cast<double>(row.segments));
    entry.counters.emplace_back("precision", row.precision);
    entry.counters.emplace_back("recall", row.recall);
    if (row.has_remote_rule)
      entry.counters.emplace_back(
          "remote_recovered", static_cast<double>(row.remote_rule.recovered));
    if (row.has_churn)
      entry.counters.emplace_back(
          "churn_reconstructed",
          static_cast<double>(row.churn.reconstructed));
    entries.push_back(entry);

    std::printf("  %-16s %8.1f ms  segments %4zu  precision %.3f  "
                "recall %.3f\n",
                name.c_str(), ns / 1e6, row.segments, row.precision,
                row.recall);
  }

  bench::write_trajectory("hazard_sweep", entries, nullptr, threads, nullptr);
  return 0;
}
