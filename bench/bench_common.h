// Shared scaffolding for the table/figure reproduction benches: a paper-
// shape world + pipeline built once per binary, printing helpers that put
// the paper's published values next to the measured ones, and automatic
// metrics emission — every bench run writes a machine-readable per-stage
// metrics artifact (JSON) alongside its numbers at exit.
//
// Knobs (parsed once through cloudmap::options_from_env()):
//   CLOUDMAP_THREADS       campaign worker count (1 = serial, 0/default =
//                          all hardware threads; outputs identical either way)
//   CLOUDMAP_METRICS_JSON  artifact path override (default:
//                          <bench-title-slug>_metrics.json in the cwd)
//
// Absolute counts scale with the synthetic world (~1/6 of the paper's), so
// the comparisons to read are the *percentages, ratios, and orderings*.
#pragma once

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "core/options.h"
#include "core/pipeline.h"
#include "topology/generator.h"
#include "util/stats.h"
#include "util/table.h"

namespace cloudmap::bench {

inline constexpr std::uint64_t kBenchSeed = 1;

inline const FrontendOptions& frontend_options() {
  static const FrontendOptions instance = [] {
    FrontendOptions parsed = options_from_env();
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s\n", parsed.error.c_str());
      std::exit(2);
    }
    return parsed;
  }();
  return instance;
}

inline int bench_threads() {
  return frontend_options().pipeline.campaign.threads;
}

// Artifact path for this binary: CLOUDMAP_METRICS_JSON, else a slug derived
// from the header() title ("Table 1 — ..." → "table_1_metrics.json").
inline std::string& metrics_path_slot() {
  static std::string path = "cloudmap_metrics.json";
  return path;
}

inline const World& world() {
  static const World instance = [] {
    GeneratorConfig config = GeneratorConfig::paper_shape();
    config.seed = kBenchSeed;
    return generate_world(config);
  }();
  return instance;
}

namespace detail {
inline Pipeline*& pipeline_slot() {
  static Pipeline* instance = nullptr;
  return instance;
}

inline void emit_metrics_at_exit() {
  Pipeline* pipeline = pipeline_slot();
  if (pipeline == nullptr) return;  // bench never touched the pipeline
  const std::string& env_path = frontend_options().metrics_json;
  const std::string path =
      env_path.empty() ? metrics_path_slot() : env_path;
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "metrics: cannot write %s\n", path.c_str());
    return;
  }
  pipeline->write_metrics_json(out);
  std::printf("\nmetrics: wrote %s\n", path.c_str());
}
}  // namespace detail

inline Pipeline& pipeline() {
  static Pipeline* instance = [] {
    PipelineOptions options = frontend_options().pipeline;
    auto* p = new Pipeline(world(), options);
    detail::pipeline_slot() = p;
    std::atexit(detail::emit_metrics_at_exit);
    return p;
  }();
  return *instance;
}

inline void header(const std::string& title, const std::string& paper_note) {
  // Derive the default metrics-artifact name from the bench title.
  std::string slug;
  for (const char c : title) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      slug += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    } else if (!slug.empty() && slug.back() != '_') {
      slug += '_';
    }
    if (slug.size() >= 24) break;
  }
  while (!slug.empty() && slug.back() == '_') slug.pop_back();
  if (!slug.empty()) metrics_path_slot() = slug + "_metrics.json";

  std::printf("================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("paper: %s\n", paper_note.c_str());
  std::printf("world: seed %llu, %zu ASes, %zu interconnects (~1/6 paper scale)\n",
              static_cast<unsigned long long>(kBenchSeed),
              world().ases.size(), world().interconnects.size());
  std::printf("================================================================\n\n");
}

// Render a CDF series as rows of (x, fraction) for plotting/diffing.
inline void print_cdf(const std::string& name, const CdfSeries& series,
                      int stride = 1) {
  std::printf("%s\n  x:        ", name.c_str());
  for (std::size_t i = 0; i < series.x.size(); i += stride)
    std::printf("%7.2f", series.x[i]);
  std::printf("\n  fraction: ");
  for (std::size_t i = 0; i < series.fraction.size(); i += stride)
    std::printf("%7.3f", series.fraction[i]);
  std::printf("\n");
}

}  // namespace cloudmap::bench
