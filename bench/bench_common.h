// Shared scaffolding for the table/figure reproduction benches: a paper-
// shape world + pipeline built once per binary, printing helpers that put
// the paper's published values next to the measured ones, and automatic
// metrics emission — every bench run writes a machine-readable per-stage
// metrics artifact (JSON) alongside its numbers at exit.
//
// Knobs (parsed once through cloudmap::options_from_env()):
//   CLOUDMAP_THREADS       campaign worker count (1 = serial, 0/default =
//                          all hardware threads; outputs identical either way)
//   CLOUDMAP_METRICS_JSON  artifact path override (default:
//                          <bench-title-slug>_metrics.json in the cwd)
//
// Absolute counts scale with the synthetic world (~1/6 of the paper's), so
// the comparisons to read are the *percentages, ratios, and orderings*.
#pragma once

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "core/options.h"
#include "core/pipeline.h"
#include "topology/generator.h"
#include "util/stats.h"
#include "util/table.h"

namespace cloudmap::bench {

// ---------------------------------------------------------------------------
// Bench trajectory artifacts (BENCH_<slug>.json)
//
// Every bench emits a canonical trajectory file next to its metrics
// artifact: a machine-diffable record of what the run measured (iterations,
// ns/op, thread count) plus the deterministic per-stage counters — and
// nothing wall-clock-derived beyond the ns/op measurements themselves (no
// timestamps, host info, or timer totals), so two files from the same code
// differ only in the timings under comparison. tools/bench_compare.py diffs
// two trajectories and flags per-core regressions; the committed BENCH_*.json
// files at the repo root are the current baselines (regenerate with the
// `bench-baselines` CMake target).
//
// Output directory: $CLOUDMAP_BENCH_DIR when set, else the cwd.
// ---------------------------------------------------------------------------

// One measured benchmark within a trajectory. `counters` carries
// deterministic per-iteration quantities (probe counts, world facts), never
// wall-clock values.
struct TrajectoryEntry {
  std::string name;
  std::int64_t iterations = 0;
  double ns_per_op = 0.0;
  int threads = 1;
  std::vector<std::pair<std::string, double>> counters;
};

inline constexpr std::uint64_t kBenchSeed = 1;

inline const FrontendOptions& frontend_options() {
  static const FrontendOptions instance = [] {
    FrontendOptions parsed = options_from_env();
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s\n", parsed.error.c_str());
      std::exit(2);
    }
    return parsed;
  }();
  return instance;
}

inline int bench_threads() {
  return frontend_options().pipeline.campaign.threads;
}

// Artifact path for this binary: CLOUDMAP_METRICS_JSON, else a slug derived
// from the header() title ("Table 1 — ..." → "table_1_metrics.json").
inline std::string& metrics_path_slot() {
  static std::string path = "cloudmap_metrics.json";
  return path;
}

// Trajectory slug for this binary, derived alongside the metrics path.
inline std::string& trajectory_slug_slot() {
  static std::string slug = "cloudmap";
  return slug;
}

namespace detail {

inline std::string json_escape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (const char c : in) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

inline std::string json_number(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

}  // namespace detail

// Writes BENCH_<slug>.json into $CLOUDMAP_BENCH_DIR (default: cwd).
// `entries` may be empty (counter-only trajectories from the reproduction
// benches); `world` and `registry` may be null when unavailable.
inline void write_trajectory(const std::string& slug,
                             const std::vector<TrajectoryEntry>& entries,
                             const World* world, int threads,
                             const MetricsRegistry* registry) {
  std::string dir;
  if (const char* env = std::getenv("CLOUDMAP_BENCH_DIR")) dir = env;
  if (!dir.empty() && dir.back() != '/') dir += '/';
  const std::string path = dir + "BENCH_" + slug + ".json";
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "trajectory: cannot write %s\n", path.c_str());
    return;
  }
  out << "{\n";
  out << "  \"schema\": \"cloudmap-bench-trajectory-v1\",\n";
  out << "  \"bench\": \"" << detail::json_escape(slug) << "\",\n";
  out << "  \"threads\": " << threads << ",\n";
  if (world != nullptr) {
    out << "  \"world\": {\"seed\": " << kBenchSeed
        << ", \"ases\": " << world->ases.size()
        << ", \"routers\": " << world->routers.size()
        << ", \"interconnects\": " << world->interconnects.size()
        << ", \"regions\": " << world->regions.size() << "},\n";
  }
  out << "  \"benchmarks\": [";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const TrajectoryEntry& entry = entries[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\"name\": \"" << detail::json_escape(entry.name)
        << "\", \"iterations\": " << entry.iterations
        << ", \"ns_per_op\": " << detail::json_number(entry.ns_per_op)
        << ", \"threads\": " << entry.threads;
    if (!entry.counters.empty()) {
      out << ", \"counters\": {";
      for (std::size_t c = 0; c < entry.counters.size(); ++c) {
        if (c != 0) out << ", ";
        out << "\"" << detail::json_escape(entry.counters[c].first)
            << "\": " << detail::json_number(entry.counters[c].second);
      }
      out << "}";
    }
    out << "}";
  }
  out << (entries.empty() ? "],\n" : "\n  ],\n");
  out << "  \"counters\": {";
  if (registry != nullptr) {
    const MetricsRegistry::Snapshot snap = registry->snapshot();
    for (std::size_t i = 0; i < snap.counters.size(); ++i) {
      out << (i == 0 ? "\n" : ",\n");
      out << "    \"" << detail::json_escape(snap.counters[i].first)
          << "\": " << snap.counters[i].second;
    }
    if (!snap.counters.empty()) out << "\n  ";
  }
  out << "}\n}\n";
  std::printf("trajectory: wrote %s\n", path.c_str());
}

inline const World& world() {
  static const World instance = [] {
    GeneratorConfig config = GeneratorConfig::paper_shape();
    config.seed = kBenchSeed;
    return generate_world(config);
  }();
  return instance;
}

namespace detail {
inline Pipeline*& pipeline_slot() {
  static Pipeline* instance = nullptr;
  return instance;
}

inline void emit_metrics_at_exit() {
  Pipeline* pipeline = pipeline_slot();
  if (pipeline == nullptr) return;  // bench never touched the pipeline
  const std::string& env_path = frontend_options().metrics_json;
  const std::string path =
      env_path.empty() ? metrics_path_slot() : env_path;
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "metrics: cannot write %s\n", path.c_str());
    return;
  }
  pipeline->write_metrics_json(out);
  std::printf("\nmetrics: wrote %s\n", path.c_str());
  // Counter-only trajectory for the reproduction benches: the per-stage
  // registry counters are deterministic for a fixed world and seed.
  write_trajectory(trajectory_slug_slot(), {}, &world(), bench_threads(),
                   &pipeline->metrics());
}
}  // namespace detail

inline Pipeline& pipeline() {
  static Pipeline* instance = [] {
    PipelineOptions options = frontend_options().pipeline;
    auto* p = new Pipeline(world(), options);
    detail::pipeline_slot() = p;
    std::atexit(detail::emit_metrics_at_exit);
    return p;
  }();
  return *instance;
}

inline void header(const std::string& title, const std::string& paper_note) {
  // Derive the default metrics-artifact name from the bench title.
  std::string slug;
  for (const char c : title) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      slug += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    } else if (!slug.empty() && slug.back() != '_') {
      slug += '_';
    }
    if (slug.size() >= 24) break;
  }
  while (!slug.empty() && slug.back() == '_') slug.pop_back();
  if (!slug.empty()) {
    metrics_path_slot() = slug + "_metrics.json";
    trajectory_slug_slot() = slug;
  }

  std::printf("================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("paper: %s\n", paper_note.c_str());
  std::printf("world: seed %llu, %zu ASes, %zu interconnects (~1/6 paper scale)\n",
              static_cast<unsigned long long>(kBenchSeed),
              world().ases.size(), world().interconnects.size());
  std::printf("================================================================\n\n");
}

// Render a CDF series as rows of (x, fraction) for plotting/diffing.
inline void print_cdf(const std::string& name, const CdfSeries& series,
                      int stride = 1) {
  std::printf("%s\n  x:        ", name.c_str());
  for (std::size_t i = 0; i < series.x.size(); i += stride)
    std::printf("%7.2f", series.x[i]);
  std::printf("\n  fraction: ");
  for (std::size_t i = 0; i < series.fraction.size(); i += stride)
    std::printf("%7.3f", series.fraction[i]);
  std::printf("\n");
}

}  // namespace cloudmap::bench
