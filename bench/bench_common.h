// Shared scaffolding for the table/figure reproduction benches: a paper-
// shape world + pipeline built once per binary, and printing helpers that
// put the paper's published values next to the measured ones.
//
// Absolute counts scale with the synthetic world (~1/6 of the paper's), so
// the comparisons to read are the *percentages, ratios, and orderings*.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/pipeline.h"
#include "topology/generator.h"
#include "util/stats.h"
#include "util/table.h"

namespace cloudmap::bench {

inline constexpr std::uint64_t kBenchSeed = 1;

// Campaign worker count for the bench pipelines. CLOUDMAP_THREADS overrides
// (1 = serial); the default fans out across all hardware threads. Outputs
// are identical either way — only the wall clock moves.
inline int bench_threads() {
  const char* env = std::getenv("CLOUDMAP_THREADS");
  return env != nullptr ? std::atoi(env) : 0;
}

inline const World& world() {
  static const World instance = [] {
    GeneratorConfig config = GeneratorConfig::paper_shape();
    config.seed = kBenchSeed;
    return generate_world(config);
  }();
  return instance;
}

inline Pipeline& pipeline() {
  static Pipeline* instance = [] {
    PipelineOptions options;
    options.campaign.threads = bench_threads();
    auto* p = new Pipeline(world(), options);
    return p;
  }();
  return *instance;
}

inline void header(const std::string& title, const std::string& paper_note) {
  std::printf("================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("paper: %s\n", paper_note.c_str());
  std::printf("world: seed %llu, %zu ASes, %zu interconnects (~1/6 paper scale)\n",
              static_cast<unsigned long long>(kBenchSeed),
              world().ases.size(), world().interconnects.size());
  std::printf("================================================================\n\n");
}

// Render a CDF series as rows of (x, fraction) for plotting/diffing.
inline void print_cdf(const std::string& name, const CdfSeries& series,
                      int stride = 1) {
  std::printf("%s\n  x:        ", name.c_str());
  for (std::size_t i = 0; i < series.x.size(); i += stride)
    std::printf("%7.2f", series.x[i]);
  std::printf("\n  fraction: ");
  for (std::size_t i = 0; i < series.fraction.size(); i += stride)
    std::printf("%7.3f", series.fraction[i]);
  std::printf("\n");
}

}  // namespace cloudmap::bench
