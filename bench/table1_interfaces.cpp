// Table 1: number of unique ABIs and CBIs with BGP/WHOIS/IXP annotation
// shares, before (rows 1-2) and after (rows 3-4) the /24 expansion round.
// Doubles as the expansion-probing ablation: the delta between row pairs is
// exactly what the second round buys.
#include "bench_common.h"

using namespace cloudmap;

int main() {
  bench::header("Table 1 — border interfaces before/after expansion probing",
                "ABI 3.68k->3.78k; CBI 21.73k->24.75k; CBI shares "
                "54.7/24.8/20.5% -> 79.8/2.3/17.9% (re-annotated); "
                "peer ASNs 3.52k->3.55k");

  Pipeline& p = bench::pipeline();

  // Round 1 only.
  Annotator round1_annotator = p.annotator();
  round1_annotator.set_snapshot(&p.snapshot_round1());
  const RoundStats& r1 = p.round1();
  const auto abis_r1 = p.campaign().fabric().unique_abis();
  const auto cbis_r1 = p.campaign().fabric().unique_cbis();
  const auto abi_row1 = Campaign::interface_stats(abis_r1, round1_annotator);
  const auto cbi_row1 = Campaign::interface_stats(cbis_r1, round1_annotator);
  const std::size_t peers_r1 = p.campaign().peer_asn_count(round1_annotator);

  // After expansion (round 2), re-annotated against the fresher snapshot.
  Annotator round2_annotator = p.annotator();
  round2_annotator.set_snapshot(&p.snapshot_round2());
  const RoundStats& r2 = p.round2();
  const auto abis_r2 = p.campaign().fabric().unique_abis();
  const auto cbis_r2 = p.campaign().fabric().unique_cbis();
  const auto abi_row2 = Campaign::interface_stats(abis_r2, round2_annotator);
  const auto cbi_row2 = Campaign::interface_stats(cbis_r2, round2_annotator);
  const std::size_t peers_r2 = p.campaign().peer_asn_count(round2_annotator);

  TextTable table({"row", "All", "BGP%", "Whois%", "IXP%", "paper All",
                   "paper BGP%", "paper Whois%", "paper IXP%"});
  auto add = [&](const char* name, const InterfaceTableRow& row,
                 const char* pa, const char* pb, const char* pw,
                 const char* px) {
    table.add_row({name, std::to_string(row.total),
                   TextTable::pct(row.bgp_fraction),
                   TextTable::pct(row.whois_fraction),
                   TextTable::pct(row.ixp_fraction), pa, pb, pw, px});
  };
  add("ABI", abi_row1, "3.68k", "38.4%", "61.6%", "-");
  add("CBI", cbi_row1, "21.73k", "54.7%", "24.8%", "20.5%");
  add("eABI", abi_row2, "3.78k", "38.9%", "61.2%", "-");
  add("eCBI", cbi_row2, "24.75k", "79.8%", "2.3%", "17.9%");
  std::printf("%s\n", table.render("interfaces and annotation shares").c_str());

  const std::size_t regions = p.campaign().vantage_points().size();
  std::printf("campaign: round1 %llu traceroutes (%.1f%% left the cloud; "
              "paper ~77%%), round2 %llu traceroutes\n",
              static_cast<unsigned long long>(r1.traceroutes),
              100.0 * r1.left_cloud_fraction(),
              static_cast<unsigned long long>(r2.traceroutes));
  std::printf("simulated wall time at 300 pps/VM: round1 %.2f days (paper: "
              "~16 days at full scale), round2 %.2f days\n",
              r1.duration_days(regions), r2.duration_days(regions));
  std::printf("peer ASNs: %zu -> %zu after expansion "
              "(paper: 3.52k -> 3.55k)\n",
              peers_r1, peers_r2);
  std::printf("expansion ablation: CBIs %zu -> %zu (+%.1f%%; paper "
              "21.73k -> 24.75k, +13.9%%), ABIs %zu -> %zu\n",
              cbis_r1.size(), cbis_r2.size(),
              cbis_r1.empty()
                  ? 0.0
                  : 100.0 * (static_cast<double>(cbis_r2.size()) /
                                 static_cast<double>(cbis_r1.size()) -
                             1.0),
              abis_r1.size(), abis_r2.size());
  return 0;
}
