// Figure 5: CDF of the ratio between the two lowest region min-RTTs for
// interfaces left unpinned at metro level — the ≥1.5 regional-pinning rule
// (§6.1, 57% above it). Includes the threshold-sweep ablation.
#include "bench_common.h"

using namespace cloudmap;

int main() {
  bench::header("Figure 5 — two-lowest min-RTT ratio for unpinned interfaces",
                "57% of ratios exceed 1.5; 1.11k interfaces visible from a "
                "single region; regional pinning lifts coverage to ~80%");

  Pipeline& p = bench::pipeline();
  const PinningResult& pins = p.pinning();

  const CdfSeries fig5 = cdf_series(pins.rtt_ratios, linspace(1, 5, 41));
  bench::print_cdf("Fig 5 — ratio of two lowest min-RTTs", fig5, 4);

  double above = 0.0;
  for (const double ratio : pins.rtt_ratios)
    if (ratio > 1.5) above += 1.0;
  const double fraction_above =
      pins.rtt_ratios.empty() ? 0.0 : above / pins.rtt_ratios.size();
  std::printf("fraction above 1.5: %.1f%% (paper 57%%)\n",
              100.0 * fraction_above);
  std::printf("single-region-visible interfaces: %zu (paper 1.11k); "
              "ratio-pinned: %zu\n",
              pins.regional_single_visibility, pins.regional_by_ratio);

  const std::size_t total_interfaces =
      p.campaign().fabric().unique_abis().size() +
      p.campaign().fabric().unique_cbis().size();
  std::printf("coverage: metro %.1f%% + regional %.1f%% = %.1f%% "
              "(paper: 50.2%% + 30.4%% = 80.6%%)\n",
              100.0 * pins.pins.size() / static_cast<double>(total_interfaces),
              100.0 * pins.regional.size() /
                  static_cast<double>(total_interfaces),
              100.0 * (pins.pins.size() + pins.regional.size()) /
                  static_cast<double>(total_interfaces));

  // Ablation: sweep the ratio threshold.
  std::printf("\nratio-threshold ablation (fraction of multi-region "
              "interfaces assignable):\n");
  for (const double threshold : {1.2, 1.5, 2.0, 3.0}) {
    double count = 0.0;
    for (const double ratio : pins.rtt_ratios)
      if (ratio >= threshold) count += 1.0;
    std::printf("  threshold %.1f -> %.1f%%\n", threshold,
                pins.rtt_ratios.empty()
                    ? 0.0
                    : 100.0 * count / pins.rtt_ratios.size());
  }
  return 0;
}
