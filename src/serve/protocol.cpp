#include "serve/protocol.h"

#include <sys/socket.h>

#include <cerrno>
#include <cstring>

#include "io/snapshot.h"
#include "io/wire.h"

namespace cloudmap::serve {

namespace {

using wire::Cursor;

bool set_error(std::string* error, const char* message) {
  if (error != nullptr) *error = message;
  return false;
}

void put_brief(std::string& out, const SegmentBrief& brief) {
  wire::put_u32(out, brief.index);
  wire::put_u32(out, brief.abi);
  wire::put_u32(out, brief.cbi);
  wire::put_u32(out, brief.peer_asn);
  wire::put_u8(out, brief.confirmation);
  wire::put_u8(out, brief.ixp ? 1 : 0);
  wire::put_u8(out, brief.vpi ? 1 : 0);
  wire::put_f64(out, brief.confidence);
}

SegmentBrief get_brief(Cursor& in) {
  SegmentBrief brief;
  brief.index = in.u32();
  brief.abi = in.u32();
  brief.cbi = in.u32();
  brief.peer_asn = in.u32();
  brief.confirmation = in.u8();
  brief.ixp = wire::get_bool(in);
  brief.vpi = wire::get_bool(in);
  brief.confidence = in.f64();
  return brief;
}

void put_counts(std::string& out, const FabricCounts& counts) {
  wire::put_u64(out, counts.segments);
  wire::put_u64(out, counts.unique_abis);
  wire::put_u64(out, counts.unique_cbis);
  wire::put_u64(out, counts.peer_ases);
  wire::put_u64(out, counts.peer_orgs);
  for (const std::size_t n : counts.by_confirmation) wire::put_u64(out, n);
  wire::put_u64(out, counts.ixp_segments);
  wire::put_u64(out, counts.vpi_cbis);
  for (const std::size_t n : counts.group_segments) wire::put_u64(out, n);
  for (const std::size_t n : counts.group_ases) wire::put_u64(out, n);
  wire::put_u64(out, counts.unattributed_segments);
  wire::put_u64(out, counts.pinned_interfaces);
  wire::put_u64(out, counts.regional_only);
  wire::put_f64(out, counts.mean_confidence);
  wire::put_u64(out, counts.confident_segments);
}

FabricCounts get_counts(Cursor& in) {
  FabricCounts counts;
  counts.segments = in.u64();
  counts.unique_abis = in.u64();
  counts.unique_cbis = in.u64();
  counts.peer_ases = in.u64();
  counts.peer_orgs = in.u64();
  for (std::size_t& n : counts.by_confirmation) n = in.u64();
  counts.ixp_segments = in.u64();
  counts.vpi_cbis = in.u64();
  for (std::size_t& n : counts.group_segments) n = in.u64();
  for (std::size_t& n : counts.group_ases) n = in.u64();
  counts.unattributed_segments = in.u64();
  counts.pinned_interfaces = in.u64();
  counts.regional_only = in.u64();
  counts.mean_confidence = in.f64();
  counts.confident_segments = in.u64();
  return counts;
}

void put_histogram(std::string& out, const ConfidenceHistogram& histogram) {
  for (const std::size_t n : histogram.bins) wire::put_u64(out, n);
  wire::put_u64(out, histogram.segments);
  wire::put_f64(out, histogram.mean);
  wire::put_f64(out, histogram.min);
  wire::put_f64(out, histogram.max);
}

ConfidenceHistogram get_histogram(Cursor& in) {
  ConfidenceHistogram histogram;
  for (std::size_t& n : histogram.bins) n = in.u64();
  histogram.segments = in.u64();
  histogram.mean = in.f64();
  histogram.min = in.f64();
  histogram.max = in.f64();
  return histogram;
}

// Read exactly `size` bytes; false on EOF or error.
bool read_exact(int fd, unsigned char* into, std::size_t size) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::recv(fd, into + done, size - done, 0);
    if (n == 0) return false;  // orderly EOF
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

bool write_all(int fd, const char* data, std::size_t size) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::send(fd, data + done, size - done, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

void encode_frame(std::string& out, MsgType type,
                  const std::string& payload) {
  wire::put_u32(out, static_cast<std::uint32_t>(1 + payload.size() + 4));
  const std::size_t body_start = out.size();
  wire::put_u8(out, static_cast<std::uint8_t>(type));
  out.append(payload);
  const std::uint32_t crc = snapshot_crc32(
      reinterpret_cast<const unsigned char*>(out.data()) + body_start,
      1 + payload.size());
  wire::put_u32(out, crc);
}

FrameStatus decode_frame(const unsigned char* data, std::size_t size,
                         Frame& frame, std::size_t& consumed,
                         std::string* error) {
  if (size < 4) return FrameStatus::kIncomplete;
  Cursor header{data, size, 0};
  const std::uint32_t length = header.u32();
  if (length < 5) {
    set_error(error, "frame shorter than type + CRC");
    return FrameStatus::kCorrupt;
  }
  if (length > kMaxFramePayload + 5) {
    set_error(error, "frame exceeds maximum payload size");
    return FrameStatus::kCorrupt;
  }
  if (size - 4 < length) return FrameStatus::kIncomplete;
  const unsigned char* body = data + 4;
  const std::size_t body_size = length - 4;  // type + payload
  Cursor crc_cursor{body + body_size, 4, 0};
  const std::uint32_t stored_crc = crc_cursor.u32();
  if (snapshot_crc32(body, body_size) != stored_crc) {
    set_error(error, "frame CRC mismatch");
    return FrameStatus::kCorrupt;
  }
  frame.type = static_cast<MsgType>(body[0]);
  frame.payload.assign(reinterpret_cast<const char*>(body) + 1,
                       body_size - 1);
  consumed = 4 + std::size_t{length};
  return FrameStatus::kOk;
}

std::string encode_query_request(const QueryRequest& request) {
  std::string out;
  wire::put_u8(out, static_cast<std::uint8_t>(request.kind));
  wire::put_u32(out, request.asn);
  wire::put_u32(out, request.metro);
  wire::put_u32(out, request.address);
  wire::put_f64(out, request.min_confidence);
  wire::put_u8(out, request.want_briefs ? 1 : 0);
  return out;
}

bool decode_query_request(const std::string& payload, QueryRequest& request) {
  Cursor in{reinterpret_cast<const unsigned char*>(payload.data()),
            payload.size(), 0};
  request.kind = wire::checked_read<QueryKind>(in, kQueryKindCount - 1);
  request.asn = in.u32();
  request.metro = in.u32();
  request.address = in.u32();
  request.min_confidence = in.f64();
  request.want_briefs = wire::get_bool(in);
  return in.at_end();
}

std::string encode_query_response(const QueryResponse& response) {
  std::string out;
  wire::put_u8(out, static_cast<std::uint8_t>(response.status));
  wire::put_u8(out, static_cast<std::uint8_t>(response.kind));
  wire::put_string(out, response.error);
  wire::put_u32(out, static_cast<std::uint32_t>(response.items.size()));
  for (const std::uint32_t item : response.items) wire::put_u32(out, item);
  wire::put_u32(out, static_cast<std::uint32_t>(response.briefs.size()));
  for (const SegmentBrief& brief : response.briefs) put_brief(out, brief);
  wire::put_u8(out, response.counts.has_value() ? 1 : 0);
  if (response.counts) put_counts(out, *response.counts);
  wire::put_u8(out, response.histogram.has_value() ? 1 : 0);
  if (response.histogram) put_histogram(out, *response.histogram);
  wire::put_u8(out, response.found ? 1 : 0);
  wire::put_u32(out, response.prefix_network);
  wire::put_u8(out, response.prefix_length);
  wire::put_u8(out, response.is_interface ? 1 : 0);
  wire::put_u8(out, response.role_abi ? 1 : 0);
  wire::put_u8(out, response.role_cbi ? 1 : 0);
  return out;
}

bool decode_query_response(const std::string& payload,
                           QueryResponse& response) {
  Cursor in{reinterpret_cast<const unsigned char*>(payload.data()),
            payload.size(), 0};
  response.status =
      wire::checked_read<QueryStatus>(in, 1);  // kOk / kBadRequest
  response.kind = wire::checked_read<QueryKind>(in, kQueryKindCount - 1);
  response.error = in.str();
  const std::uint32_t item_count = wire::bounded_count(in, 4);
  response.items.clear();
  response.items.reserve(item_count);
  for (std::uint32_t i = 0; i < item_count && !in.failed; ++i)
    response.items.push_back(in.u32());
  const std::uint32_t brief_count = wire::bounded_count(in, 27);
  response.briefs.clear();
  response.briefs.reserve(brief_count);
  for (std::uint32_t i = 0; i < brief_count && !in.failed; ++i)
    response.briefs.push_back(get_brief(in));
  response.counts.reset();
  if (wire::get_bool(in)) response.counts = get_counts(in);
  response.histogram.reset();
  if (wire::get_bool(in)) response.histogram = get_histogram(in);
  response.found = wire::get_bool(in);
  response.prefix_network = in.u32();
  response.prefix_length = wire::checked_read<std::uint8_t>(in, 32);
  response.is_interface = wire::get_bool(in);
  response.role_abi = wire::get_bool(in);
  response.role_cbi = wire::get_bool(in);
  return in.at_end();
}

std::string encode_stats(const ServerStats& stats) {
  std::string out;
  wire::put_u64(out, stats.served);
  wire::put_u64(out, stats.failed);
  wire::put_u64(out, stats.swaps);
  wire::put_u64(out, stats.clients);
  return out;
}

bool decode_stats(const std::string& payload, ServerStats& stats) {
  Cursor in{reinterpret_cast<const unsigned char*>(payload.data()),
            payload.size(), 0};
  stats.served = in.u64();
  stats.failed = in.u64();
  stats.swaps = in.u64();
  stats.clients = in.u64();
  return in.at_end();
}

std::string encode_text(const std::string& text) {
  std::string out;
  wire::put_string(out, text);
  return out;
}

bool decode_text(const std::string& payload, std::string& text) {
  Cursor in{reinterpret_cast<const unsigned char*>(payload.data()),
            payload.size(), 0};
  text = in.str();
  return in.at_end();
}

bool write_frame(int fd, MsgType type, const std::string& payload) {
  std::string frame;
  frame.reserve(4 + 1 + payload.size() + 4);
  encode_frame(frame, type, payload);
  return write_all(fd, frame.data(), frame.size());
}

bool read_frame(int fd, Frame& frame) {
  unsigned char length_bytes[4];
  if (!read_exact(fd, length_bytes, 4)) return false;
  Cursor length_cursor{length_bytes, 4, 0};
  const std::uint32_t length = length_cursor.u32();
  if (length < 5 || length > kMaxFramePayload + 5) return false;
  std::string body(4 + std::size_t{length}, '\0');
  std::memcpy(body.data(), length_bytes, 4);
  if (!read_exact(fd,
                  reinterpret_cast<unsigned char*>(body.data()) + 4,
                  length))
    return false;
  std::size_t consumed = 0;
  return decode_frame(reinterpret_cast<const unsigned char*>(body.data()),
                      body.size(), frame, consumed,
                      nullptr) == FrameStatus::kOk;
}

}  // namespace cloudmap::serve
