#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <utility>

namespace cloudmap::serve {

namespace {

bool set_error(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

}  // namespace

std::optional<Client> Client::connect(const std::string& host,
                                      std::uint16_t port,
                                      std::string* error) {
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    set_error(error, "serve: not a numeric IPv4 address: " + host);
    return std::nullopt;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    set_error(error, "serve: cannot create socket");
    return std::nullopt;
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    set_error(error, "serve: cannot connect to " + host + ":" +
                         std::to_string(port));
    return std::nullopt;
  }
  Client client;
  client.fd_ = fd;
  return client;
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Client::Client(Client&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

bool Client::roundtrip(MsgType type, const std::string& payload, Frame& reply,
                       std::string* error) {
  if (fd_ < 0) return set_error(error, "serve: not connected");
  if (!write_frame(fd_, type, payload))
    return set_error(error, "serve: connection lost while sending");
  if (!read_frame(fd_, reply))
    return set_error(error, "serve: connection lost while receiving");
  if (reply.type == MsgType::kError) {
    std::string message;
    if (!decode_text(reply.payload, message))
      message = "malformed error reply";
    return set_error(error, "serve: " + message);
  }
  if (reply.type != MsgType::kReply)
    return set_error(error, "serve: unexpected reply type");
  return true;
}

bool Client::query(const QueryRequest& request, QueryResponse& response,
                   std::string* error) {
  Frame reply;
  if (!roundtrip(MsgType::kQuery, encode_query_request(request), reply,
                 error))
    return false;
  if (!decode_query_response(reply.payload, response))
    return set_error(error, "serve: malformed query response");
  return true;
}

bool Client::swap(const std::string& path, std::string* error) {
  Frame reply;
  return roundtrip(MsgType::kSwap, encode_text(path), reply, error);
}

bool Client::ping(std::string* error) {
  Frame reply;
  return roundtrip(MsgType::kPing, std::string(), reply, error);
}

bool Client::stats(ServerStats& stats, std::string* error) {
  Frame reply;
  if (!roundtrip(MsgType::kStats, std::string(), reply, error)) return false;
  if (!decode_stats(reply.payload, stats))
    return set_error(error, "serve: malformed stats reply");
  return true;
}

bool Client::stop_server(std::string* error) {
  Frame reply;
  return roundtrip(MsgType::kStop, std::string(), reply, error);
}

}  // namespace cloudmap::serve
