// Synchronous client for the serve daemon's wire protocol
// (serve/protocol.h): one TCP connection, one in-flight request at a time.
// Used by `cloudmap_cli remote`, the saturation load generator
// (bench/serve_loadgen.cpp), and the serve tests — all of which therefore
// exercise the exact bytes the daemon speaks, not a parallel code path.
//
// Every call returns false with a one-line diagnostic on connection loss,
// frame corruption, or a server-side kError reply. A Client is not
// thread-safe; give each thread its own connection (the daemon serves each
// on its own thread).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "query/request.h"
#include "serve/protocol.h"

namespace cloudmap::serve {

class Client {
 public:
  // Connect to a daemon on a numeric IPv4 address ("127.0.0.1" for the
  // loopback daemon). Returns nullopt with a diagnostic on failure.
  static std::optional<Client> connect(const std::string& host,
                                       std::uint16_t port,
                                       std::string* error = nullptr);

  Client() = default;
  ~Client();
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  bool connected() const { return fd_ >= 0; }

  // Round-trip one QueryRequest; `response` is valid only on true.
  bool query(const QueryRequest& request, QueryResponse& response,
             std::string* error = nullptr);
  // Ask the daemon to hot-swap to the snapshot at `path` (a path on the
  // daemon's host).
  bool swap(const std::string& path, std::string* error = nullptr);
  bool ping(std::string* error = nullptr);
  bool stats(ServerStats& stats, std::string* error = nullptr);
  // Ask the daemon to shut down (the reply arrives before it stops).
  bool stop_server(std::string* error = nullptr);

 private:
  // Send one frame, read one reply frame; false unless the reply is kReply
  // (a kError reply surfaces its message in *error).
  bool roundtrip(MsgType type, const std::string& payload, Frame& reply,
                 std::string* error);

  int fd_ = -1;
};

}  // namespace cloudmap::serve
