// The serve daemon's length-prefixed binary wire protocol. One frame:
//
//   u32 length | u8 type | payload bytes | u32 CRC-32(type + payload)
//
// where `length` counts everything after itself (1 + payload + 4). The
// CRC-32 (zlib polynomial, shared with the snapshot container via
// io/snapshot.h) trails every frame, so any single byte flip anywhere in a
// frame is detected before the payload is interpreted — the same corruption
// contract the snapshot loader enforces, and tested the same way
// (tests/test_serve.cpp sweeps every byte).
//
// Message types: a client sends kQuery (a QueryRequest), kSwap (a snapshot
// path for atomic hot-swap), kPing, kStats, or kStop; the server answers
// every request with exactly one kReply (payload depends on the request
// type) or kError (a diagnostic string). Frame and payload codecs are
// exposed at the buffer level so tests exercise them without sockets; fd
// I/O wrappers sit on top for the daemon and client.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "query/request.h"

namespace cloudmap::serve {

// Values are on the wire — append only, never renumber.
enum class MsgType : std::uint8_t {
  kQuery = 1,  // payload: encoded QueryRequest
  kSwap = 2,   // payload: snapshot path (u32 length + bytes)
  kPing = 3,   // payload: empty
  kStats = 4,  // payload: empty
  kStop = 5,   // payload: empty
  kReply = 6,  // payload: per-request (see below)
  kError = 7,  // payload: diagnostic string (u32 length + bytes)
};

// Refuse absurd frames before allocating for them.
inline constexpr std::uint32_t kMaxFramePayload = 64u << 20;

struct Frame {
  MsgType type = MsgType::kPing;
  std::string payload;
};

enum class FrameStatus : std::uint8_t {
  kOk = 0,
  kIncomplete = 1,  // fewer bytes than one whole frame: read more
  kCorrupt = 2,     // framing or CRC violation: drop the connection
};

// Server-side counters returned by kStats; the CI smoke test asserts
// failed == 0 across a hot-swap under load.
struct ServerStats {
  std::uint64_t served = 0;   // queries answered with status kOk
  std::uint64_t failed = 0;   // corrupt frames, bad requests, refused swaps
  std::uint64_t swaps = 0;    // completed hot-swaps
  std::uint64_t clients = 0;  // currently connected clients
};

// --- frame codec (buffer level) -------------------------------------------

// Append one whole frame for `payload` to `out`.
void encode_frame(std::string& out, MsgType type, const std::string& payload);

// Try to decode one frame from the front of [data, data+size). On kOk,
// fills `frame` and sets `consumed` to the frame's total size; on
// kIncomplete leaves both untouched; on kCorrupt sets `error`.
FrameStatus decode_frame(const unsigned char* data, std::size_t size,
                         Frame& frame, std::size_t& consumed,
                         std::string* error);

// --- payload codecs --------------------------------------------------------

std::string encode_query_request(const QueryRequest& request);
bool decode_query_request(const std::string& payload, QueryRequest& request);

std::string encode_query_response(const QueryResponse& response);
bool decode_query_response(const std::string& payload,
                           QueryResponse& response);

std::string encode_stats(const ServerStats& stats);
bool decode_stats(const std::string& payload, ServerStats& stats);

// kSwap payload and kError payload are one length-prefixed string.
std::string encode_text(const std::string& text);
bool decode_text(const std::string& payload, std::string& text);

// --- fd I/O ----------------------------------------------------------------

// Blocking full-frame send/receive over a connected socket. Both return
// false on EOF or error; read_frame also returns false on a corrupt frame
// (callers drop the connection either way).
bool write_frame(int fd, MsgType type, const std::string& payload);
bool read_frame(int fd, Frame& frame);

}  // namespace cloudmap::serve
