#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

namespace cloudmap::serve {

std::shared_ptr<const ServedSnapshot> load_served_snapshot(
    const std::string& path, MetricsRegistry* metrics, std::string* error) {
  auto mapped = MappedSnapshot::open(path, error);
  if (!mapped) return nullptr;
  auto served = std::make_shared<ServedSnapshot>();
  served->mapping = std::move(*mapped);
  served->view = std::make_unique<FabricView>(served->mapping.blob());
  served->engine = std::make_unique<QueryEngine>(
      static_cast<const FabricBackend&>(*served->view), metrics);
  return served;
}

Server::Server(Config config, MetricsRegistry* metrics)
    : config_(config), metrics_(metrics) {}

Server::~Server() { stop(); }

std::shared_ptr<const ServedSnapshot> Server::snapshot() const {
#if defined(__cpp_lib_atomic_shared_ptr)
  return current_.load(std::memory_order_acquire);
#else
  std::lock_guard<std::mutex> lock(current_mutex_);
  return current_;
#endif
}

void Server::store_snapshot(std::shared_ptr<const ServedSnapshot> next) {
#if defined(__cpp_lib_atomic_shared_ptr)
  current_.store(std::move(next), std::memory_order_release);
#else
  std::lock_guard<std::mutex> lock(current_mutex_);
  current_ = std::move(next);
#endif
}

bool Server::start(const std::string& snapshot_path, std::string* error) {
  auto served = load_served_snapshot(snapshot_path, metrics_, error);
  if (served == nullptr) return false;
  store_snapshot(std::move(served));

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    if (error != nullptr) *error = "serve: cannot create socket";
    return false;
  }
  const int reuse = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(config_.port));
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 128) != 0) {
    if (error != nullptr)
      *error = "serve: cannot bind loopback port " +
               std::to_string(config_.port);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  sockaddr_in bound = {};
  socklen_t bound_len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  port_ = ntohs(bound.sin_port);

  accept_thread_ = std::thread([this] { accept_loop(); });  // lint: thread-ok(joined in stop())
  return true;
}

bool Server::swap(const std::string& path, std::string* error) {
  auto next = load_served_snapshot(path, metrics_, error);
  if (next == nullptr) return false;
  store_snapshot(std::move(next));
  swaps_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::size_t Server::client_slots() const {
  std::lock_guard<std::mutex> lock(clients_mutex_);
  return clients_.size();
}

ServerStats Server::stats() const {
  ServerStats out;
  out.served = served_.load(std::memory_order_relaxed);
  out.failed = failed_.load(std::memory_order_relaxed);
  out.swaps = swaps_.load(std::memory_order_relaxed);
  out.clients = static_cast<std::uint64_t>(
      active_clients_.load(std::memory_order_relaxed));
  return out;
}

void Server::request_stop() {
  if (stopping_.exchange(true)) return;
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  std::lock_guard<std::mutex> lock(stop_mutex_);
  stop_cv_.notify_all();
}

void Server::wait() {
  {
    std::unique_lock<std::mutex> lock(stop_mutex_);
    stop_cv_.wait(lock, [this] { return stopping_.load(); });
  }
  join_all();
}

void Server::stop() {
  request_stop();
  join_all();
}

void Server::join_all() {
  {
    std::lock_guard<std::mutex> lock(stop_mutex_);
    if (joined_) return;
    joined_ = true;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    // Unblock every client thread still parked in recv().
    std::lock_guard<std::mutex> lock(clients_mutex_);
    for (const ClientSlot& client : clients_)
      if (client.fd >= 0) ::shutdown(client.fd, SHUT_RDWR);
  }
  // The accept thread is joined, so no slot can be handed out or have its
  // thread object reassigned any more; joining outside the lock lets the
  // client threads take it to mark themselves done on the way out.
  for (ClientSlot& client : clients_)  // lint: thread-ok(join at shutdown)
    if (client.thread.joinable()) client.thread.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void Server::accept_loop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener shut down (stop) or failed
    }
    if (stopping_.load(std::memory_order_relaxed)) {
      ::close(fd);
      break;
    }
    // Admission is a compare-and-increment: the load-then-add it replaces
    // could let a racing accept path pass the check while the counter was
    // already at the cap, exceeding max_clients.
    int admitted = active_clients_.load(std::memory_order_relaxed);
    bool admit = false;
    while (admitted < config_.max_clients) {
      if (active_clients_.compare_exchange_weak(admitted, admitted + 1,
                                                std::memory_order_relaxed)) {
        admit = true;
        break;
      }
    }
    if (!admit) {
      // Best-effort rejection. The peer may never drain its receive buffer,
      // so bound the send with a short SO_SNDTIMEO instead of letting a
      // full socket buffer wedge the accept loop; write_frame's write_all
      // handles partial writes, and the timeout turns a blocked send into a
      // failed one, which rejection can ignore.
      timeval reject_timeout = {};
      reject_timeout.tv_sec = 1;
      ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &reject_timeout,
                   sizeof(reject_timeout));
      write_frame(fd, MsgType::kError, encode_text("server full"));
      ::close(fd);
      continue;
    }
    std::lock_guard<std::mutex> lock(clients_mutex_);
    // Prefer a finished slot: reap its thread and hand the slot over.
    std::size_t slot = clients_.size();
    for (std::size_t s = 0; s < clients_.size(); ++s) {
      if (clients_[s].done) {
        slot = s;
        break;
      }
    }
    if (slot == clients_.size()) {
      clients_.emplace_back();
    } else if (clients_[slot].thread.joinable()) {
      // `done` is set on the thread's way out, so this join is momentary.
      clients_[slot].thread.join();
    }
    ClientSlot& client = clients_[slot];
    client.fd = fd;
    client.done = false;
    client.thread = std::thread(  // lint: thread-ok(one per client; joined on slot reuse or in stop())
        [this, fd, slot] { handle_client(fd, slot); });
  }
}

void Server::handle_client(int fd, std::size_t slot) {
  Frame frame;
  while (read_frame(fd, frame)) {
    switch (frame.type) {
      case MsgType::kQuery: {
        QueryRequest request;
        if (!decode_query_request(frame.payload, request)) {
          failed_.fetch_add(1, std::memory_order_relaxed);
          write_frame(fd, MsgType::kError,
                      encode_text("malformed query payload"));
          break;
        }
        // The shared_ptr copy pins this snapshot for the whole query, so a
        // concurrent swap never pulls the mapping out from under us.
        const std::shared_ptr<const ServedSnapshot> snap = snapshot();
        const QueryResponse response = snap->engine->execute(request);
        if (response.status == QueryStatus::kOk)
          served_.fetch_add(1, std::memory_order_relaxed);
        else
          failed_.fetch_add(1, std::memory_order_relaxed);
        write_frame(fd, MsgType::kReply, encode_query_response(response));
        break;
      }
      case MsgType::kSwap: {
        std::string path;
        if (!decode_text(frame.payload, path)) {
          failed_.fetch_add(1, std::memory_order_relaxed);
          write_frame(fd, MsgType::kError,
                      encode_text("malformed swap payload"));
          break;
        }
        std::string swap_error;
        if (swap(path, &swap_error)) {
          write_frame(fd, MsgType::kReply, encode_text(""));
        } else {
          failed_.fetch_add(1, std::memory_order_relaxed);
          write_frame(fd, MsgType::kError, encode_text(swap_error));
        }
        break;
      }
      case MsgType::kPing:
        write_frame(fd, MsgType::kReply, std::string());
        break;
      case MsgType::kStats:
        write_frame(fd, MsgType::kReply, encode_stats(stats()));
        break;
      case MsgType::kStop:
        write_frame(fd, MsgType::kReply, std::string());
        request_stop();
        break;
      default:
        failed_.fetch_add(1, std::memory_order_relaxed);
        write_frame(fd, MsgType::kError,
                    encode_text("unexpected message type"));
        break;
    }
  }
  {
    std::lock_guard<std::mutex> lock(clients_mutex_);
    clients_[slot].fd = -1;
    clients_[slot].done = true;
  }
  ::close(fd);
  // Decrement AFTER marking done: a slot that is not done is therefore
  // always covered by the active count, which is what bounds clients_ at
  // max_clients entries.
  active_clients_.fetch_sub(1, std::memory_order_relaxed);
}

}  // namespace cloudmap::serve
