#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

namespace cloudmap::serve {

std::shared_ptr<const ServedSnapshot> load_served_snapshot(
    const std::string& path, MetricsRegistry* metrics, std::string* error) {
  auto mapped = MappedSnapshot::open(path, error);
  if (!mapped) return nullptr;
  auto served = std::make_shared<ServedSnapshot>();
  served->mapping = std::move(*mapped);
  served->view = std::make_unique<FabricView>(served->mapping.blob());
  served->engine = std::make_unique<QueryEngine>(
      static_cast<const FabricBackend&>(*served->view), metrics);
  return served;
}

Server::Server(Config config, MetricsRegistry* metrics)
    : config_(config), metrics_(metrics) {}

Server::~Server() { stop(); }

std::shared_ptr<const ServedSnapshot> Server::snapshot() const {
#if defined(__cpp_lib_atomic_shared_ptr)
  return current_.load(std::memory_order_acquire);
#else
  std::lock_guard<std::mutex> lock(current_mutex_);
  return current_;
#endif
}

void Server::store_snapshot(std::shared_ptr<const ServedSnapshot> next) {
#if defined(__cpp_lib_atomic_shared_ptr)
  current_.store(std::move(next), std::memory_order_release);
#else
  std::lock_guard<std::mutex> lock(current_mutex_);
  current_ = std::move(next);
#endif
}

bool Server::start(const std::string& snapshot_path, std::string* error) {
  auto served = load_served_snapshot(snapshot_path, metrics_, error);
  if (served == nullptr) return false;
  store_snapshot(std::move(served));

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    if (error != nullptr) *error = "serve: cannot create socket";
    return false;
  }
  const int reuse = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(config_.port));
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 128) != 0) {
    if (error != nullptr)
      *error = "serve: cannot bind loopback port " +
               std::to_string(config_.port);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  sockaddr_in bound = {};
  socklen_t bound_len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  port_ = ntohs(bound.sin_port);

  accept_thread_ = std::thread([this] { accept_loop(); });  // lint: thread-ok(joined in stop())
  return true;
}

bool Server::swap(const std::string& path, std::string* error) {
  auto next = load_served_snapshot(path, metrics_, error);
  if (next == nullptr) return false;
  store_snapshot(std::move(next));
  swaps_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

ServerStats Server::stats() const {
  ServerStats out;
  out.served = served_.load(std::memory_order_relaxed);
  out.failed = failed_.load(std::memory_order_relaxed);
  out.swaps = swaps_.load(std::memory_order_relaxed);
  out.clients = static_cast<std::uint64_t>(
      active_clients_.load(std::memory_order_relaxed));
  return out;
}

void Server::request_stop() {
  if (stopping_.exchange(true)) return;
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  std::lock_guard<std::mutex> lock(stop_mutex_);
  stop_cv_.notify_all();
}

void Server::wait() {
  {
    std::unique_lock<std::mutex> lock(stop_mutex_);
    stop_cv_.wait(lock, [this] { return stopping_.load(); });
  }
  join_all();
}

void Server::stop() {
  request_stop();
  join_all();
}

void Server::join_all() {
  {
    std::lock_guard<std::mutex> lock(stop_mutex_);
    if (joined_) return;
    joined_ = true;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    // Unblock every client thread still parked in recv().
    std::lock_guard<std::mutex> lock(clients_mutex_);
    for (const int fd : client_fds_)
      if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
  }
  // Threads remove themselves from client_fds_ but never from
  // client_threads_, so joining outside the lock is safe: the vector only
  // grows from the accept thread, which is already joined.
  for (std::thread& t : client_threads_)  // lint: thread-ok(join at shutdown)
    if (t.joinable()) t.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void Server::accept_loop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener shut down (stop) or failed
    }
    if (stopping_.load(std::memory_order_relaxed)) {
      ::close(fd);
      break;
    }
    if (active_clients_.load(std::memory_order_relaxed) >=
        config_.max_clients) {
      write_frame(fd, MsgType::kError, encode_text("server full"));
      ::close(fd);
      continue;
    }
    active_clients_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(clients_mutex_);
    client_fds_.push_back(fd);
    const std::size_t slot = client_fds_.size() - 1;
    client_threads_.emplace_back(  // lint: thread-ok(one per client; joined in stop())
        [this, fd, slot] { handle_client(fd, slot); });
  }
}

void Server::handle_client(int fd, std::size_t slot) {
  Frame frame;
  while (read_frame(fd, frame)) {
    switch (frame.type) {
      case MsgType::kQuery: {
        QueryRequest request;
        if (!decode_query_request(frame.payload, request)) {
          failed_.fetch_add(1, std::memory_order_relaxed);
          write_frame(fd, MsgType::kError,
                      encode_text("malformed query payload"));
          break;
        }
        // The shared_ptr copy pins this snapshot for the whole query, so a
        // concurrent swap never pulls the mapping out from under us.
        const std::shared_ptr<const ServedSnapshot> snap = snapshot();
        const QueryResponse response = snap->engine->execute(request);
        if (response.status == QueryStatus::kOk)
          served_.fetch_add(1, std::memory_order_relaxed);
        else
          failed_.fetch_add(1, std::memory_order_relaxed);
        write_frame(fd, MsgType::kReply, encode_query_response(response));
        break;
      }
      case MsgType::kSwap: {
        std::string path;
        if (!decode_text(frame.payload, path)) {
          failed_.fetch_add(1, std::memory_order_relaxed);
          write_frame(fd, MsgType::kError,
                      encode_text("malformed swap payload"));
          break;
        }
        std::string swap_error;
        if (swap(path, &swap_error)) {
          write_frame(fd, MsgType::kReply, encode_text(""));
        } else {
          failed_.fetch_add(1, std::memory_order_relaxed);
          write_frame(fd, MsgType::kError, encode_text(swap_error));
        }
        break;
      }
      case MsgType::kPing:
        write_frame(fd, MsgType::kReply, std::string());
        break;
      case MsgType::kStats:
        write_frame(fd, MsgType::kReply, encode_stats(stats()));
        break;
      case MsgType::kStop:
        write_frame(fd, MsgType::kReply, std::string());
        request_stop();
        break;
      default:
        failed_.fetch_add(1, std::memory_order_relaxed);
        write_frame(fd, MsgType::kError,
                    encode_text("unexpected message type"));
        break;
    }
  }
  {
    std::lock_guard<std::mutex> lock(clients_mutex_);
    client_fds_[slot] = -1;
  }
  ::close(fd);
  active_clients_.fetch_sub(1, std::memory_order_relaxed);
}

}  // namespace cloudmap::serve
