// cloudmap_serve's engine room: a loopback TCP daemon answering framed
// QueryRequests (serve/protocol.h) from many concurrent clients over one
// immutable, swappable snapshot.
//
// Snapshot hot-swap is RCU-style: the current ServedSnapshot (mmap +
// zero-copy FabricView + QueryEngine) lives behind one atomic shared_ptr.
// Each query copies the pointer, answers from that snapshot, and drops the
// reference — so a kSwap installs the new snapshot with a single atomic
// store while readers are in flight: every request is answered entirely
// from the snapshot it started with (old or new, never a mixture), no
// reader ever blocks, and the old mapping is unmapped when its last
// in-flight reader finishes. A failed swap (missing file, corrupt blob)
// leaves the current snapshot untouched.
//
// Thread model: one accept thread plus one thread per client connection,
// all joined on stop(). Queries touch only the immutable snapshot and
// relaxed atomic counters, so the request path is lock-free.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>  // lint: thread-ok(per-client serving threads; joined in stop())
#include <vector>
#include <version>

#include "io/mapped_snapshot.h"
#include "obs/metrics.h"
#include "query/engine.h"
#include "query/fabric_view.h"
#include "serve/protocol.h"

namespace cloudmap::serve {

// One served snapshot: the mapping that owns the bytes, the zero-copy view
// over its blob, and the engine that answers requests. Immutable once
// built; shared by every in-flight query via shared_ptr.
struct ServedSnapshot {
  MappedSnapshot mapping;
  std::unique_ptr<FabricView> view;
  std::unique_ptr<QueryEngine> engine;
};

// mmap + validate `path` (format v3 only) and build the serving stack over
// it. Returns nullptr with a diagnostic on any failure.
std::shared_ptr<const ServedSnapshot> load_served_snapshot(
    const std::string& path, MetricsRegistry* metrics, std::string* error);

class Server {
 public:
  struct Config {
    int port = 0;         // 0 = kernel-assigned ephemeral port
    int max_clients = 64;
  };

  explicit Server(Config config, MetricsRegistry* metrics = nullptr);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Load the initial snapshot, bind 127.0.0.1, and spawn the accept
  // thread. False (with a diagnostic) if the snapshot or the socket fails.
  bool start(const std::string& snapshot_path, std::string* error);

  // The bound port (after start(); stable until stop()).
  std::uint16_t port() const { return port_; }

  // Atomically install the snapshot at `path`; the old snapshot keeps
  // serving its in-flight queries. Also reachable over the wire via kSwap.
  bool swap(const std::string& path, std::string* error);

  ServerStats stats() const;

  // Number of connection slots currently allocated. Slots are reused as
  // clients come and go, so this stays bounded by max_clients however many
  // connections the daemon has served (regression guard for the unbounded
  // per-connection growth this replaces).
  std::size_t client_slots() const;

  // Ask the server to shut down (idempotent; also triggered by kStop).
  void request_stop();
  // Block until a stop is requested, then join every thread. The daemon's
  // main thread parks here.
  void wait();
  // request_stop() + join; safe to call more than once.
  void stop();

 private:
  std::shared_ptr<const ServedSnapshot> snapshot() const;
  void store_snapshot(std::shared_ptr<const ServedSnapshot> next);
  void accept_loop();
  void handle_client(int fd, std::size_t slot);
  void join_all();

  Config config_;
  MetricsRegistry* metrics_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;

#if defined(__cpp_lib_atomic_shared_ptr)
  std::atomic<std::shared_ptr<const ServedSnapshot>> current_;
#else
  // Pre-C++20 fallback: a mutex-guarded pointer (swap still atomic as seen
  // by readers, just not lock-free).
  mutable std::mutex current_mutex_;
  std::shared_ptr<const ServedSnapshot> current_;
#endif

  std::atomic<std::uint64_t> served_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> swaps_{0};
  std::atomic<int> active_clients_{0};

  std::atomic<bool> stopping_{false};
  bool joined_ = false;
  std::mutex stop_mutex_;
  std::condition_variable stop_cv_;

  // Per-connection bookkeeping. Slots are index-stable and REUSED: a client
  // thread marks its slot `done` on the way out, and the accept loop joins
  // that finished thread and hands the slot to the next connection. Because
  // a slot only stays not-done while its connection is counted in
  // active_clients_, the vector can never outgrow max_clients — a daemon
  // serving millions of short-lived connections holds at most max_clients
  // slots, where the previous push_back-per-connection scheme leaked one
  // thread object and one fd entry per connection for the process lifetime.
  struct ClientSlot {
    std::thread thread;  // lint: thread-ok(joined on slot reuse or in stop())
    int fd = -1;         // -1 once its connection has closed
    bool done = false;   // thread finished: joinable and reusable
  };

  std::thread accept_thread_;  // lint: thread-ok(joined in stop())
  mutable std::mutex clients_mutex_;
  std::vector<ClientSlot> clients_;
};

}  // namespace cloudmap::serve
