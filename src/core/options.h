// One shared home for the front-end knobs that every binary used to
// hand-roll: the CLOUDMAP_THREADS environment variable, the --threads flag,
// and the metrics-artifact plumbing (--metrics-json / --metrics-csv /
// --no-metrics, CLOUDMAP_METRICS_JSON). Used by cloudmap_cli, the examples,
// and bench/bench_common.h so validation and precedence rules exist exactly
// once: environment first, command-line flags override.
#pragma once

#include <string>
#include <vector>

#include "core/pipeline.h"
#include "scenario/hazard.h"

namespace cloudmap {

struct FrontendOptions {
  PipelineOptions pipeline;
  // Metrics artifact paths ("" = do not write). From --metrics-json /
  // --metrics-csv or the CLOUDMAP_METRICS_JSON environment variable.
  std::string metrics_json;
  std::string metrics_csv;
  // Binary run-snapshot path ("" = do not write). From --snapshot or the
  // CLOUDMAP_SNAPSHOT environment variable; the full pipeline runs so the
  // snapshot captures every stage (see io/snapshot.h).
  std::string snapshot_out;
  // Minimum segment confidence for query front-ends (--min-confidence).
  // Negative = unset: callers apply no filter.
  double min_confidence = -1.0;
  // Sharded campaign round selector (--shard-round, only meaningful with
  // --shard I/N): which round this shard invocation executes. Round 2
  // requires every shard's round-1 part (it absorbs the merged round-1
  // fabric before probing its own round-2 share).
  int shard_round = 1;
  // Set when --shard was given explicitly, so front-ends can distinguish a
  // requested 1-shard run (--shard 0/1, which still writes a part file for
  // merge-shards) from the unsharded default.
  bool shard_requested = false;
  // Adversarial hazard profile (--hazard-profile NAME|SPEC, or the
  // CLOUDMAP_HAZARD_PROFILE environment variable). Accepts a preset name
  // (`cloudmap_cli hazards list`) or a spec like "loss:0.2,remote:0.5".
  // Empty = no hazards; the front-end is expected to apply world hazards
  // before building the pipeline and dataplane hazards via
  // apply_dataplane_hazards (scenario/score.h).
  HazardProfile hazard_profile;
  // Arguments not consumed by a recognized flag, in original order.
  std::vector<std::string> positional;
  // Non-empty on a parse/validation failure (unknown value, negative
  // thread count, missing flag argument); `positional` is then unusable.
  std::string error;
  bool ok() const { return error.empty(); }
};

// Environment-only parsing: CLOUDMAP_THREADS (campaign + VPI worker count,
// 0 = hardware concurrency), CLOUDMAP_METRICS_JSON and CLOUDMAP_SNAPSHOT
// (artifact paths), CLOUDMAP_RETRY_BUDGET (re-probe attempts per failed
// target), CLOUDMAP_DETERMINISTIC_METRICS (non-empty and not "0" = zero
// wall-clock metrics fields for byte-identical artifacts).
FrontendOptions options_from_env();

// Environment first, then flags: --threads N, --metrics-json PATH,
// --metrics-csv PATH, --no-metrics, --snapshot PATH, --retry-budget N,
// --retry-backoff TICKS, --response-scale X, --host-response X,
// --deterministic-metrics, --min-confidence X, --hazard-profile NAME|SPEC,
// --shard I/N (run only shard I of an N-way campaign; 0 <= I < N),
// --shard-round R (which round a --shard invocation executes; 1 or 2).
// Everything else lands in `positional`.
FrontendOptions options_from_env_and_args(int argc, char** argv);

// Knobs for the snapshot-serving daemon (examples/cloudmap_serve.cpp,
// serve/server.h). Same precedence rules as FrontendOptions: environment
// first (CLOUDMAP_SERVE_PORT, CLOUDMAP_SERVE_SNAPSHOT,
// CLOUDMAP_SERVE_MAX_CLIENTS), command-line flags override.
struct ServeOptions {
  // Loopback TCP port to listen on; 0 = kernel-assigned ephemeral port
  // (the daemon prints the bound port at startup).
  int port = 0;
  // Format-v3 snapshot file to serve (required; the daemon mmaps it).
  std::string snapshot_path;
  // Concurrent client connections beyond which new ones are refused.
  int max_clients = 64;
  // Register query counters in a metrics registry (--no-metrics disables).
  bool metrics = true;
  // Arguments not consumed by a recognized flag, in original order.
  std::vector<std::string> positional;
  // Non-empty on a parse/validation failure.
  std::string error;
  bool ok() const { return error.empty(); }
};

// Environment first, then flags: --port N, --snapshot PATH,
// --max-clients N, --no-metrics. Everything else lands in `positional`.
ServeOptions serve_options_from_env_and_args(int argc, char** argv);

}  // namespace cloudmap
