// The one-call facade over the whole reproduction: builds the measurement
// substrate views (BGP snapshots, WHOIS, AS2ORG, PeeringDB, DNS), runs the
// two traceroute rounds, the §5 verification, the §6 pinning, and the §7.1
// VPI detection, and exposes the analysis products each bench/table needs.
//
// Execution is organized as a table-driven stage graph keyed by StageId
// (obs/stage_report.h). Stages are lazy and memoized: run_until(stage) — or
// any artifact accessor — runs every prerequisite exactly once. Each stage
// that runs leaves a StageReport (wall time, probe counts, BGP route-cache
// traffic, worker utilization, heuristic tallies) behind, and the whole run
// can be emitted as a JSON/CSV metrics artifact. Metrics are observational
// only: results are bit-identical with metrics on or off, at any thread
// count (enforced by the ParallelCampaign tests).
#pragma once

#include <array>
#include <iosfwd>
#include <memory>
#include <optional>

#include "alias/midar.h"
#include "analysis/dns_evidence.h"
#include "analysis/features.h"
#include "analysis/graph.h"
#include "analysis/grouping.h"
#include "bdrmap/bdrmap.h"
#include "controlplane/as2org.h"
#include "controlplane/bgp.h"
#include "controlplane/dns.h"
#include "controlplane/peeringdb.h"
#include "controlplane/whois.h"
#include "dataplane/forwarding.h"
#include "dataplane/ping.h"
#include "infer/alias_verify.h"
#include "infer/campaign.h"
#include "infer/heuristics.h"
#include "obs/metrics.h"
#include "obs/stage_report.h"
#include "pinning/evaluate.h"
#include "pinning/pinning.h"
#include "query/snapshot.h"
#include "topology/generator.h"
#include "vpi/detector.h"

namespace cloudmap {

struct PipelineOptions {
  CloudProvider subject = CloudProvider::kAmazon;
  std::uint64_t seed = 1;
  // campaign.threads also governs the VPI detector's foreign-cloud sweeps;
  // every thread count produces bit-identical results.
  CampaignConfig campaign;
  AliasOptions alias;
  PinningOptions pinning;
  SnapshotOptions snapshot;
  DnsOptions dns;
  PeeringDbOptions peeringdb;
  std::vector<CloudProvider> foreign_clouds = {
      CloudProvider::kMicrosoft, CloudProvider::kGoogle, CloudProvider::kIbm,
      CloudProvider::kOracle};
  // Collect per-stage metrics (wall clocks, registry counters, pool stats).
  // Purely observational: inference outputs are identical either way.
  bool metrics = true;
  // Zero every wall-clock-derived metrics field (stage wall_ms, worker
  // utilization, timer totals) so the metrics artifact — and with it the
  // binary snapshot's stage-metrics section — is byte-identical across
  // runs. Counters and structural fields are untouched. CI uses this to
  // assert snapshot identity with `cmp` instead of result-level diffing.
  bool deterministic_metrics = false;
  // Hazard provenance stamped into the RunSnapshot (the canonical
  // HazardProfile spec string; scenario/hazard.h). Informational only — the
  // hazards themselves ride on campaign.traceroute.hazards and on the world
  // passed in. Empty ⇒ the snapshot carries no hazard section and keeps its
  // pre-hazard bytes.
  std::string hazard_label;
};

// Ground-truth scoring of the inferred fabric (only possible because the
// substrate is synthetic; §9 of the paper laments the lack of exactly this).
struct InferenceScore {
  std::size_t true_interconnects = 0;        // all planted, subject cloud
  std::size_t discoverable_interconnects = 0;  // excl. private-address VPIs
  std::size_t discovered = 0;                // exact client-CBI matches
  std::size_t discovered_router_level = 0;   // client border router observed
  std::size_t inferred_cbis = 0;
  std::size_t inferred_true_cbis = 0;        // inferred CBIs matching truth
  std::size_t inferred_client_router_cbis = 0;  // CBI on some client border
  double recall() const {
    return discoverable_interconnects == 0
               ? 0.0
               : static_cast<double>(discovered) /
                     static_cast<double>(discoverable_interconnects);
  }
  // Router-level recall: the interconnect's client border router was seen as
  // a CBI even if through a different interface (Fig. 2 shifts the paper
  // could not always correct either).
  double router_recall() const {
    return discoverable_interconnects == 0
               ? 0.0
               : static_cast<double>(discovered_router_level) /
                     static_cast<double>(discoverable_interconnects);
  }
  double precision() const {
    return inferred_cbis == 0 ? 0.0
                              : static_cast<double>(inferred_true_cbis) /
                                    static_cast<double>(inferred_cbis);
  }
  // Router-level precision: fraction of inferred CBIs on true client border
  // routers (as opposed to deeper client-internal or wrong-side interfaces).
  double router_precision() const {
    return inferred_cbis == 0
               ? 0.0
               : static_cast<double>(inferred_client_router_cbis) /
                     static_cast<double>(inferred_cbis);
  }
};

class Pipeline {
 public:
  // The world must outlive the pipeline.
  Pipeline(const World& world, PipelineOptions options = {});
  ~Pipeline();
  Pipeline(const Pipeline&) = delete;
  Pipeline& operator=(const Pipeline&) = delete;

  // --- staged execution (table-driven, each stage memoized) ---
  // Run `stage` and every prerequisite, each exactly once; repeated calls
  // are no-ops.
  void run_until(StageId stage);
  void run_all();
  bool stage_ran(StageId stage) const {
    return reports_[stage_index(stage)].has_value();
  }
  // The stage's accounting, or nullptr if it has not run yet.
  const StageReport* report(StageId stage) const {
    const auto& slot = reports_[stage_index(stage)];
    return slot ? &*slot : nullptr;
  }
  // Reports of every stage that ran, in canonical order.
  std::vector<StageReport> reports() const;

  // --- observability ---
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const noexcept { return metrics_; }
  // Emit the metrics artifact for the stages run so far (schema documented
  // in obs/emit.h; validated in CI against tools/metrics_schema.json).
  void write_metrics_json(std::ostream& out) const;
  void write_metrics_csv(std::ostream& out) const;

  // --- stage artifacts (running prerequisites on demand) ---
  const RoundStats& round1();
  const RoundStats& round2();
  const HeuristicCounts& heuristics();          // §5.1
  const AliasVerifyStats& alias_verification(); // §5.2
  const VpiDetectionResult& vpis();             // §7.1
  const AnchorSet& anchors();                   // §6.1
  const PinningResult& pinning();               // §6.1
  const AliasSets& alias_sets();
  // The full-run snapshot artifact: every stage is run, then the annotated
  // fabric, pins, alias sets, and stage metrics are captured as one
  // canonical RunSnapshot (persisted via io/snapshot.h, served via
  // query/). Memoized like every other stage artifact.
  const RunSnapshot& run_snapshot();

  // Sharded-campaign merge mode: when sources are set, the round-1/round-2
  // stages absorb the merged part streams (io/shard.h) instead of probing —
  // the fabric, stats, and RNG-stream bookkeeping come out exactly as if
  // this process had probed everything itself, so the rest of the pipeline
  // (heuristics, verification, VPI detection, pinning, snapshot) runs
  // unchanged and the final snapshot is byte-identical to a single-process
  // run under --deterministic-metrics. Must be called before any stage runs.
  void set_absorb_sources(Campaign::ShardSource round1,
                          Campaign::ShardSource round2);

  // --- components (prepared on construction) ---
  // Accessors are const; mutation is explicit via the mutable_* variants so
  // benches cannot silently perturb a memoized stage.
  const World& world() const noexcept { return *world_; }
  const Forwarder& forwarder() const noexcept { return *forwarder_; }
  const BgpSimulator& bgp() const noexcept { return *bgp_; }
  const BgpSnapshot& snapshot_round1() const noexcept { return snapshot1_; }
  const BgpSnapshot& snapshot_round2() const noexcept { return snapshot2_; }
  const WhoisRegistry& whois() const noexcept { return whois_; }
  const As2Org& as2org() const noexcept { return as2org_; }
  const PeeringDb& peeringdb() const noexcept { return peeringdb_; }
  const DnsRegistry& dns() const noexcept { return dns_; }
  const Campaign& campaign() const noexcept { return *campaign_; }
  Campaign& mutable_campaign() { return *campaign_; }
  const Annotator& annotator() const noexcept { return annotator_; }
  const RttCampaign& rtts() const noexcept { return *rtts_; }
  RttCampaign& mutable_rtts() { return *rtts_; }
  const VantagePoint& public_vantage() const noexcept { return public_vp_; }
  const std::vector<Asn>& subject_asns() const { return subject_asns_; }

  // The pinner is built lazily on top of the §5.2 alias sets, so both
  // accessors run prerequisites; only mutable_pinner() hands out a reference
  // that can re-measure RTTs or re-run pinning stages.
  const Pinner& pinner();
  Pinner& mutable_pinner();

  // Classifier over the verified fabric (valid once vpis() has run; before
  // that the VPI axis is empty).
  PeeringClassifier classifier();

  // Customer-cone /24 size for an ASN (synthetic CAIDA AS-rank analogue).
  std::uint64_t cone_of(Asn asn) const;

  // Ground-truth scoring of the current fabric.
  InferenceScore score() const;

  // The unique peer ASNs of the verified fabric.
  std::unordered_set<std::uint32_t> peer_asns();

  const PipelineOptions& options() const noexcept { return options_; }

 private:
  // One row of the stage graph: prerequisites plus the stage body. Staging,
  // memoization, and metrics hooks all live in run_until(); bodies only do
  // the stage's work and fill in stage-specific report fields.
  struct StageDef {
    StageId id;
    std::array<StageId, 2> deps;
    std::size_t dep_count;
    void (Pipeline::*body)(StageReport& report);
  };
  static const std::array<StageDef, kStageCount>& stage_table();

  void run_stage(StageId stage);
  void stage_round1(StageReport& report);
  void stage_round2(StageReport& report);
  void stage_heuristics(StageReport& report);
  void stage_alias(StageReport& report);
  void stage_vpis(StageReport& report);
  void stage_anchors(StageReport& report);
  void stage_pinning(StageReport& report);
  Pinner& ensure_pinner();

  const World* world_;
  PipelineOptions options_;
  MetricsRegistry metrics_;

  // Control-plane views.
  std::unique_ptr<BgpSimulator> bgp_;
  BgpSnapshot snapshot1_;
  BgpSnapshot snapshot2_;
  WhoisRegistry whois_;
  As2Org as2org_;
  PeeringDb peeringdb_;
  DnsRegistry dns_;
  std::vector<std::uint64_t> cones_;
  std::vector<Asn> subject_asns_;

  // Data plane.
  std::unique_ptr<Forwarder> forwarder_;
  std::unique_ptr<Campaign> campaign_;
  std::unique_ptr<RttCampaign> rtts_;
  VantagePoint public_vp_;

  Annotator annotator_;

  // Merge-mode part streams (empty = probe in-process as usual).
  Campaign::ShardSource absorb_round1_;
  Campaign::ShardSource absorb_round2_;

  // Stage artifacts; reports_ doubles as the memoization state (a stage ran
  // iff its report slot is filled).
  std::array<std::optional<StageReport>, kStageCount> reports_;
  std::optional<RoundStats> round1_;
  std::optional<RoundStats> round2_;
  std::optional<HeuristicCounts> heuristics_;
  std::unique_ptr<AliasVerifier> alias_verifier_;
  std::optional<AliasVerifyStats> alias_stats_;
  std::optional<VpiDetectionResult> vpis_;
  std::unique_ptr<Pinner> pinner_;
  std::optional<AnchorSet> anchors_;
  std::optional<PinningResult> pinning_;
  std::optional<RunSnapshot> run_snapshot_;
};

}  // namespace cloudmap
