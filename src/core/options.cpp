#include "core/options.h"

#include <cstdlib>

namespace cloudmap {

namespace {

// Strict non-negative integer parse; -1 on failure.
int parse_threads(const std::string& text) {
  if (text.empty()) return -1;
  char* end = nullptr;
  const long value = std::strtol(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || value < 0) return -1;
  return static_cast<int>(value);
}

}  // namespace

FrontendOptions options_from_env() {
  FrontendOptions out;
  if (const char* env = std::getenv("CLOUDMAP_THREADS")) {
    const int threads = parse_threads(env);
    if (threads < 0) {
      out.error = std::string("CLOUDMAP_THREADS expects a non-negative "
                              "integer, got '") +
                  env + "'";
      return out;
    }
    out.pipeline.campaign.threads = threads;
  }
  if (const char* env = std::getenv("CLOUDMAP_METRICS_JSON"))
    out.metrics_json = env;
  if (const char* env = std::getenv("CLOUDMAP_SNAPSHOT"))
    out.snapshot_out = env;
  return out;
}

FrontendOptions options_from_env_and_args(int argc, char** argv) {
  FrontendOptions out = options_from_env();
  if (!out.ok()) return out;

  const auto flag_value = [&](int& i, const char* flag,
                              std::string& into) -> bool {
    if (i + 1 >= argc) {
      out.error = std::string("error: ") + flag + " requires a value";
      return false;
    }
    into = argv[++i];
    return true;
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threads") {
      std::string value;
      if (!flag_value(i, "--threads", value)) return out;
      const int threads = parse_threads(value);
      if (threads < 0) {
        out.error = "error: --threads expects a non-negative integer, got '" +
                    value + "'";
        return out;
      }
      out.pipeline.campaign.threads = threads;
    } else if (arg == "--metrics-json") {
      if (!flag_value(i, "--metrics-json", out.metrics_json)) return out;
      out.pipeline.metrics = true;
    } else if (arg == "--metrics-csv") {
      if (!flag_value(i, "--metrics-csv", out.metrics_csv)) return out;
      out.pipeline.metrics = true;
    } else if (arg == "--snapshot") {
      if (!flag_value(i, "--snapshot", out.snapshot_out)) return out;
    } else if (arg == "--no-metrics") {
      out.pipeline.metrics = false;
      out.metrics_json.clear();
      out.metrics_csv.clear();
    } else {
      out.positional.push_back(arg);
    }
  }
  return out;
}

}  // namespace cloudmap
