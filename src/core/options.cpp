#include "core/options.h"

#include <cstdlib>

namespace cloudmap {

namespace {

// Strict non-negative integer parse; -1 on failure.
int parse_threads(const std::string& text) {
  if (text.empty()) return -1;
  char* end = nullptr;
  const long value = std::strtol(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || value < 0) return -1;
  return static_cast<int>(value);
}

// Strict finite-double parse; false on trailing garbage or empty input.
bool parse_double(const std::string& text, double& into) {
  if (text.empty()) return false;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') return false;
  if (!(value == value)) return false;  // NaN
  into = value;
  return true;
}

bool env_truthy(const char* value) {
  return value != nullptr && value[0] != '\0' &&
         !(value[0] == '0' && value[1] == '\0');
}

}  // namespace

FrontendOptions options_from_env() {
  FrontendOptions out;
  if (const char* env = std::getenv(  // NOLINT(concurrency-mt-unsafe) -- startup, pre-thread
          "CLOUDMAP_THREADS")) {
    const int threads = parse_threads(env);
    if (threads < 0) {
      out.error = std::string("CLOUDMAP_THREADS expects a non-negative "
                              "integer, got '") +
                  env + "'";
      return out;
    }
    out.pipeline.campaign.threads = threads;
  }
  if (const char* env = std::getenv(  // NOLINT(concurrency-mt-unsafe) -- startup, pre-thread
          "CLOUDMAP_METRICS_JSON"))
    out.metrics_json = env;
  if (const char* env = std::getenv(  // NOLINT(concurrency-mt-unsafe) -- startup, pre-thread
          "CLOUDMAP_SNAPSHOT"))
    out.snapshot_out = env;
  if (const char* env = std::getenv(  // NOLINT(concurrency-mt-unsafe) -- startup, pre-thread
          "CLOUDMAP_RETRY_BUDGET")) {
    const int budget = parse_threads(env);
    if (budget < 0) {
      out.error = std::string("CLOUDMAP_RETRY_BUDGET expects a non-negative "
                              "integer, got '") +
                  env + "'";
      return out;
    }
    out.pipeline.campaign.reprobe.budget = budget;
  }
  if (env_truthy(std::getenv(  // NOLINT(concurrency-mt-unsafe) -- startup, pre-thread
          "CLOUDMAP_DETERMINISTIC_METRICS")))
    out.pipeline.deterministic_metrics = true;
  if (const char* env = std::getenv(  // NOLINT(concurrency-mt-unsafe) -- startup, pre-thread
          "CLOUDMAP_HAZARD_PROFILE")) {
    std::string parse_error;
    const auto profile = HazardProfile::parse(env, &parse_error);
    if (!profile) {
      out.error =
          std::string("CLOUDMAP_HAZARD_PROFILE: ") + parse_error;
      return out;
    }
    out.hazard_profile = *profile;
  }
  return out;
}

FrontendOptions options_from_env_and_args(int argc, char** argv) {
  FrontendOptions out = options_from_env();
  if (!out.ok()) return out;

  const auto flag_value = [&](int& i, const char* flag,
                              std::string& into) -> bool {
    if (i + 1 >= argc) {
      out.error = std::string("error: ") + flag + " requires a value";
      return false;
    }
    into = argv[++i];
    return true;
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threads") {
      std::string value;
      if (!flag_value(i, "--threads", value)) return out;
      const int threads = parse_threads(value);
      if (threads < 0) {
        out.error = "error: --threads expects a non-negative integer, got '" +
                    value + "'";
        return out;
      }
      out.pipeline.campaign.threads = threads;
    } else if (arg == "--metrics-json") {
      if (!flag_value(i, "--metrics-json", out.metrics_json)) return out;
      out.pipeline.metrics = true;
    } else if (arg == "--metrics-csv") {
      if (!flag_value(i, "--metrics-csv", out.metrics_csv)) return out;
      out.pipeline.metrics = true;
    } else if (arg == "--snapshot") {
      if (!flag_value(i, "--snapshot", out.snapshot_out)) return out;
    } else if (arg == "--retry-budget") {
      std::string value;
      if (!flag_value(i, "--retry-budget", value)) return out;
      const int budget = parse_threads(value);
      if (budget < 0) {
        out.error =
            "error: --retry-budget expects a non-negative integer, got '" +
            value + "'";
        return out;
      }
      out.pipeline.campaign.reprobe.budget = budget;
    } else if (arg == "--retry-backoff") {
      std::string value;
      if (!flag_value(i, "--retry-backoff", value)) return out;
      const int ticks = parse_threads(value);
      if (ticks < 0) {
        out.error =
            "error: --retry-backoff expects a non-negative integer, got '" +
            value + "'";
        return out;
      }
      out.pipeline.campaign.reprobe.backoff_base_ticks =
          static_cast<std::uint64_t>(ticks);
    } else if (arg == "--response-scale") {
      std::string value;
      if (!flag_value(i, "--response-scale", value)) return out;
      double scale = 1.0;
      if (!parse_double(value, scale) || scale < 0.0 || scale > 1.0) {
        out.error = "error: --response-scale expects a number in [0, 1], "
                    "got '" +
                    value + "'";
        return out;
      }
      out.pipeline.campaign.traceroute.response_scale = scale;
    } else if (arg == "--host-response") {
      std::string value;
      if (!flag_value(i, "--host-response", value)) return out;
      double probability = 0.0;
      if (!parse_double(value, probability) || probability < 0.0 ||
          probability > 1.0) {
        out.error = "error: --host-response expects a number in [0, 1], "
                    "got '" +
                    value + "'";
        return out;
      }
      out.pipeline.campaign.traceroute.host_response = probability;
    } else if (arg == "--min-confidence") {
      std::string value;
      if (!flag_value(i, "--min-confidence", value)) return out;
      double threshold = 0.0;
      if (!parse_double(value, threshold) || threshold < 0.0 ||
          threshold > 1.0) {
        out.error = "error: --min-confidence expects a number in [0, 1], "
                    "got '" +
                    value + "'";
        return out;
      }
      out.min_confidence = threshold;
    } else if (arg == "--hazard-profile") {
      std::string value;
      if (!flag_value(i, "--hazard-profile", value)) return out;
      std::string parse_error;
      const auto profile = HazardProfile::parse(value, &parse_error);
      if (!profile) {
        out.error = "error: --hazard-profile: " + parse_error;
        return out;
      }
      out.hazard_profile = *profile;
    } else if (arg == "--shard") {
      std::string value;
      if (!flag_value(i, "--shard", value)) return out;
      const std::size_t slash = value.find('/');
      const int index =
          slash == std::string::npos ? -1
                                     : parse_threads(value.substr(0, slash));
      const int count =
          slash == std::string::npos ? -1
                                     : parse_threads(value.substr(slash + 1));
      if (index < 0 || count < 1 || index >= count) {
        out.error = "error: --shard expects I/N with 0 <= I < N, got '" +
                    value + "'";
        return out;
      }
      out.pipeline.campaign.shard_index = index;
      out.pipeline.campaign.shard_count = count;
      out.shard_requested = true;
    } else if (arg == "--shard-round") {
      std::string value;
      if (!flag_value(i, "--shard-round", value)) return out;
      const int round = parse_threads(value);
      if (round != 1 && round != 2) {
        out.error = "error: --shard-round expects 1 or 2, got '" + value + "'";
        return out;
      }
      out.shard_round = round;
    } else if (arg == "--deterministic-metrics") {
      out.pipeline.deterministic_metrics = true;
    } else if (arg == "--no-metrics") {
      out.pipeline.metrics = false;
      out.metrics_json.clear();
      out.metrics_csv.clear();
    } else {
      out.positional.push_back(arg);
    }
  }
  return out;
}

ServeOptions serve_options_from_env_and_args(int argc, char** argv) {
  ServeOptions out;

  const auto parse_port = [&](const std::string& text, const char* what,
                              int& into) {
    const int value = parse_threads(text);
    if (value < 0 || value > 65535) {
      out.error = std::string("error: ") + what +
                  " expects a port number in [0, 65535], got '" + text + "'";
      return false;
    }
    into = value;
    return true;
  };
  const auto parse_clients = [&](const std::string& text, const char* what,
                                 int& into) {
    const int value = parse_threads(text);
    if (value < 1) {
      out.error = std::string("error: ") + what +
                  " expects a positive integer, got '" + text + "'";
      return false;
    }
    into = value;
    return true;
  };

  if (const char* env = std::getenv(  // NOLINT(concurrency-mt-unsafe) -- startup, pre-thread
          "CLOUDMAP_SERVE_PORT")) {
    if (!parse_port(env, "CLOUDMAP_SERVE_PORT", out.port)) return out;
  }
  if (const char* env = std::getenv(  // NOLINT(concurrency-mt-unsafe) -- startup, pre-thread
          "CLOUDMAP_SERVE_SNAPSHOT"))
    out.snapshot_path = env;
  if (const char* env = std::getenv(  // NOLINT(concurrency-mt-unsafe) -- startup, pre-thread
          "CLOUDMAP_SERVE_MAX_CLIENTS")) {
    if (!parse_clients(env, "CLOUDMAP_SERVE_MAX_CLIENTS", out.max_clients))
      return out;
  }

  const auto flag_value = [&](int& i, const char* flag,
                              std::string& into) -> bool {
    if (i + 1 >= argc) {
      out.error = std::string("error: ") + flag + " requires a value";
      return false;
    }
    into = argv[++i];
    return true;
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--port") {
      std::string value;
      if (!flag_value(i, "--port", value)) return out;
      if (!parse_port(value, "--port", out.port)) return out;
    } else if (arg == "--snapshot") {
      if (!flag_value(i, "--snapshot", out.snapshot_path)) return out;
    } else if (arg == "--max-clients") {
      std::string value;
      if (!flag_value(i, "--max-clients", value)) return out;
      if (!parse_clients(value, "--max-clients", out.max_clients)) return out;
    } else if (arg == "--no-metrics") {
      out.metrics = false;
    } else {
      out.positional.push_back(arg);
    }
  }
  return out;
}

}  // namespace cloudmap
