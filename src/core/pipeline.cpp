#include "core/pipeline.h"

#include <chrono>
#include <ostream>
#include <string>

#include "infer/confidence.h"
#include "obs/emit.h"

namespace cloudmap {

Pipeline::Pipeline(const World& world, PipelineOptions options)
    : world_(&world),
      options_(std::move(options)),
      metrics_(options_.metrics),
      annotator_(nullptr, nullptr, nullptr, nullptr) {
  metrics_.set_deterministic(options_.deterministic_metrics);
  bgp_ = std::make_unique<BgpSimulator>(world);

  const auto feeds = default_collector_feeds(world, options_.seed + 11);
  SnapshotOptions round1_options = options_.snapshot;
  round1_options.include_intermittent = false;
  snapshot1_ = build_snapshot(world, *bgp_, feeds, round1_options);
  SnapshotOptions round2_options = options_.snapshot;
  round2_options.include_intermittent = true;
  snapshot2_ = build_snapshot(world, *bgp_, feeds, round2_options);

  whois_ = WhoisRegistry::from_world(world);
  as2org_ = As2Org::from_world(world);
  peeringdb_ = PeeringDb::from_world(world, options_.peeringdb);
  dns_ = DnsRegistry::from_world(world, options_.dns);
  cones_ = customer_cone_slash24s(world);
  for (AsId id : world.cloud_ases[static_cast<int>(options_.subject)])
    subject_asns_.push_back(world.ases[id.value].asn);

  forwarder_ = std::make_unique<Forwarder>(world, *bgp_);
  annotator_ = Annotator(&snapshot1_, &whois_, &as2org_, &peeringdb_);

  CampaignConfig campaign_config = options_.campaign;
  campaign_config.seed ^= options_.seed;
  campaign_ =
      std::make_unique<Campaign>(world, *forwarder_, options_.subject,
                                 campaign_config);
  campaign_->set_metrics(&metrics_);
  rtts_ = std::make_unique<RttCampaign>(
      *forwarder_, campaign_->vantage_points(), options_.seed + 101);

  // Public-Internet vantage: a router of the first access network (a stand-
  // in for the paper's University of Oregon node).
  for (const AutonomousSystem& as : world.ases) {
    if (as.type == AsType::kAccess && !as.routers.empty()) {
      public_vp_ = VantagePoint::public_node(as.routers.front(), "public-vp");
      break;
    }
  }
}

Pipeline::~Pipeline() = default;

// ---------------------------------------------------------------------------
// The stage graph. One table row per stage: prerequisites and the body.
// run_until()/run_stage() own staging, memoization, and every metrics hook;
// the bodies below only do stage work and report stage-specific fields.
// ---------------------------------------------------------------------------

const std::array<Pipeline::StageDef, kStageCount>& Pipeline::stage_table() {
  using S = StageId;
  static const std::array<StageDef, kStageCount> table = {{
      {S::kRound1, {}, 0, &Pipeline::stage_round1},
      {S::kRound2, {S::kRound1}, 1, &Pipeline::stage_round2},
      {S::kHeuristics, {S::kRound2}, 1, &Pipeline::stage_heuristics},
      {S::kAliasVerification, {S::kHeuristics}, 1, &Pipeline::stage_alias},
      {S::kVpiDetection, {S::kAliasVerification}, 1, &Pipeline::stage_vpis},
      {S::kAnchors, {S::kAliasVerification}, 1, &Pipeline::stage_anchors},
      {S::kPinning, {S::kAnchors}, 1, &Pipeline::stage_pinning},
  }};
  return table;
}

void Pipeline::run_until(StageId stage) {
  const StageDef& def = stage_table()[stage_index(stage)];
  for (std::size_t d = 0; d < def.dep_count; ++d) run_until(def.deps[d]);
  run_stage(stage);
}

void Pipeline::run_stage(StageId stage) {
  const std::size_t i = stage_index(stage);
  if (reports_[i]) return;

  StageReport report;
  report.id = stage;
  report.threads = options_.campaign.threads;

  const BgpCacheStats bgp_before = bgp_->cache_stats();
  // lint: wall-clock-ok(stage wall_ms is observability only; zeroed under --deterministic-metrics)
  const auto started = std::chrono::steady_clock::now();

  (this->*stage_table()[i].body)(report);

  if (metrics_.enabled() && !options_.deterministic_metrics) {
    // lint: wall-clock-ok(stage wall_ms is observability only; zeroed under --deterministic-metrics)
    const auto elapsed = std::chrono::steady_clock::now() - started;
    report.wall_ms =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                .count()) /
        1e6;
  }
  const BgpCacheStats bgp_after = bgp_->cache_stats();
  report.bgp_cache_hits = bgp_after.hits - bgp_before.hits;
  report.bgp_cache_misses = bgp_after.misses - bgp_before.misses;
  if (options_.deterministic_metrics) {
    // Execution-environment fields: how many workers drained the queue, how
    // the shared BGP route cache happened to interleave, what the thread
    // knob was. None of them affect results, but all of them land in the
    // snapshot's stage-metrics section — zero them so a snapshot's bytes
    // are identical across thread counts and across the sharded-campaign
    // merge path (absorbing shards does no probing and no BGP traffic).
    report.threads = 0;
    report.workers = 0;
    report.worker_utilization = 0.0;
    report.bgp_cache_hits = 0;
    report.bgp_cache_misses = 0;
  }

  const std::string prefix = std::string("stage.") + to_string(stage);
  metrics_.add(prefix + ".runs", 1);
  if (metrics_.enabled()) {
    metrics_.add(prefix + ".bgp_cache_hits", report.bgp_cache_hits);
    metrics_.add(prefix + ".bgp_cache_misses", report.bgp_cache_misses);
    metrics_.set_gauge(prefix + ".wall_ms", report.wall_ms);
    if (report.probes > 0) metrics_.add(prefix + ".probes", report.probes);
  }

  reports_[i] = std::move(report);
}

void Pipeline::set_absorb_sources(Campaign::ShardSource round1,
                                  Campaign::ShardSource round2) {
  absorb_round1_ = std::move(round1);
  absorb_round2_ = std::move(round2);
}

void Pipeline::stage_round1(StageReport& report) {
  annotator_.set_snapshot(&snapshot1_);
  round1_ = absorb_round1_ ? campaign_->absorb_round1(absorb_round1_)
                           : campaign_->run_round1(annotator_);
  report.targets = round1_->targets;
  report.traceroutes = round1_->traceroutes;
  report.probes = round1_->probes;
  report.retries = round1_->retries;
  report.backoff_waits = round1_->backoff_waits;
  report.backoff_ticks = round1_->backoff_ticks;
  report.recovered_targets = round1_->recovered_targets;
  report.workers = campaign_->last_pool_stats().workers;
  report.worker_utilization = campaign_->last_pool_stats().utilization();
}

void Pipeline::stage_round2(StageReport& report) {
  // §4.2: expansion probing, annotated against the fresher snapshot.
  annotator_.set_snapshot(&snapshot2_);
  round2_ = absorb_round2_ ? campaign_->absorb_round2(absorb_round2_)
                           : campaign_->run_round2(annotator_);
  report.targets = round2_->targets;
  report.traceroutes = round2_->traceroutes;
  report.probes = round2_->probes;
  report.retries = round2_->retries;
  report.backoff_waits = round2_->backoff_waits;
  report.backoff_ticks = round2_->backoff_ticks;
  report.recovered_targets = round2_->recovered_targets;
  report.workers = campaign_->last_pool_stats().workers;
  report.worker_utilization = campaign_->last_pool_stats().utilization();
}

void Pipeline::stage_heuristics(StageReport& report) {
  annotator_.set_snapshot(&snapshot2_);
  HeuristicVerifier verifier(*forwarder_, annotator_,
                             campaign_->subject_org(), public_vp_);
  heuristics_ = verifier.apply(campaign_->fabric());
  const HeuristicCounts& h = *heuristics_;
  report.tallies = {
      {"cum_hybrid_abis", static_cast<double>(h.cum_hybrid_abis)},
      {"cum_ixp_abis", static_cast<double>(h.cum_ixp_abis)},
      {"cum_reachable_abis", static_cast<double>(h.cum_reachable_abis)},
      {"hybrid_abis", static_cast<double>(h.hybrid_abis)},
      {"ixp_abis", static_cast<double>(h.ixp_abis)},
      {"reachable_abis", static_cast<double>(h.reachable_abis)},
      {"shifts_applied", static_cast<double>(h.shifts_applied)},
      {"total_abis", static_cast<double>(h.total_abis)},
      {"total_cbis", static_cast<double>(h.total_cbis)},
      {"unconfirmed_abis", static_cast<double>(h.unconfirmed_abis)},
  };
}

void Pipeline::stage_alias(StageReport& report) {
  AliasOptions alias_options = options_.alias;
  alias_options.seed ^= options_.seed;
  alias_verifier_ = std::make_unique<AliasVerifier>(
      *forwarder_, annotator_, campaign_->subject_org(), alias_options);
  alias_stats_ = alias_verifier_->apply(campaign_->fabric(),
                                        campaign_->vantage_points());
  const AliasVerifyStats& a = *alias_stats_;
  report.tallies = {
      {"abi_to_cbi", static_cast<double>(a.abi_to_cbi)},
      {"abis_in_sets", static_cast<double>(a.abis_in_sets)},
      {"cbi_to_abi", static_cast<double>(a.cbi_to_abi)},
      {"cbi_to_cbi", static_cast<double>(a.cbi_to_cbi)},
      {"cbis_in_sets", static_cast<double>(a.cbis_in_sets)},
      {"interfaces_in_sets", static_cast<double>(a.interfaces_in_sets)},
      {"majority_fraction", a.majority_fraction},
      {"sets", static_cast<double>(a.sets)},
      {"unanimous_fraction", a.unanimous_fraction},
  };
}

void Pipeline::stage_vpis(StageReport& report) {
  VpiDetector detector(*world_, *forwarder_, annotator_, options_.seed + 31,
                       options_.campaign.threads);
  detector.set_metrics(&metrics_);
  vpis_ = detector.detect(*campaign_, options_.foreign_clouds);
  const VpiDetector::Telemetry& telemetry = detector.telemetry();
  report.traceroutes = telemetry.traceroutes;
  report.probes = telemetry.probes;
  report.targets =
      static_cast<std::uint64_t>(vpis_->target_pool) *
      telemetry.foreign_campaigns;
  report.workers = telemetry.pool.workers;
  report.worker_utilization = telemetry.pool.utilization();
  report.tallies = {
      {"subject_cbis", static_cast<double>(vpis_->subject_cbis)},
      {"target_pool", static_cast<double>(vpis_->target_pool)},
      {"vpi_cbis", static_cast<double>(vpis_->vpi_cbis.size())},
  };
  for (const VpiCloudResult& cloud : vpis_->per_cloud) {
    report.tallies.emplace_back(
        std::string("overlap.") + to_string(cloud.provider),
        static_cast<double>(cloud.overlap));
  }
}

void Pipeline::stage_anchors(StageReport& report) {
  anchors_ = ensure_pinner().identify_anchors();
  const AnchorSet& a = *anchors_;
  report.tallies = {
      {"anchors", static_cast<double>(a.anchors.size())},
      {"conflict_alias", static_cast<double>(a.conflict_alias)},
      {"conflict_evidence", static_cast<double>(a.conflict_evidence)},
      {"dns", static_cast<double>(a.dns)},
      {"dns_rtt_excluded", static_cast<double>(a.dns_rtt_excluded)},
      {"ixp", static_cast<double>(a.ixp)},
      {"ixp_multi_metro_excluded",
       static_cast<double>(a.ixp_multi_metro_excluded)},
      {"ixp_remote_excluded", static_cast<double>(a.ixp_remote_excluded)},
      {"metro_footprint", static_cast<double>(a.metro_footprint)},
      {"multi_evidence", static_cast<double>(a.multi_evidence)},
      {"native", static_cast<double>(a.native)},
  };
}

void Pipeline::stage_pinning(StageReport& report) {
  pinning_ = ensure_pinner().propagate(*anchors_);
  const PinningResult& p = *pinning_;
  report.tallies = {
      {"pinned", static_cast<double>(p.pins.size())},
      {"pinned_by_alias", static_cast<double>(p.pinned_by_alias)},
      {"pinned_by_rtt", static_cast<double>(p.pinned_by_rtt)},
      {"propagation_conflicts", static_cast<double>(p.propagation_conflicts)},
      {"regional", static_cast<double>(p.regional.size())},
      {"regional_by_ratio", static_cast<double>(p.regional_by_ratio)},
      {"regional_single_visibility",
       static_cast<double>(p.regional_single_visibility)},
      {"rounds", static_cast<double>(p.rounds)},
  };
}

void Pipeline::run_all() {
  run_until(StageId::kVpiDetection);
  run_until(StageId::kPinning);
}

std::vector<StageReport> Pipeline::reports() const {
  std::vector<StageReport> out;
  for (const StageId stage : all_stages()) {
    if (const StageReport* report = this->report(stage))
      out.push_back(*report);
  }
  return out;
}

void Pipeline::write_metrics_json(std::ostream& out) const {
  MetricsMeta meta;
  meta.seed = options_.seed;
  meta.threads = options_.campaign.threads;
  meta.subject = to_string(options_.subject);
  cloudmap::write_metrics_json(out, meta, reports(), metrics_);
}

void Pipeline::write_metrics_csv(std::ostream& out) const {
  cloudmap::write_metrics_csv(out, reports());
}

// ---------------------------------------------------------------------------
// Artifact accessors (each runs its prerequisites on demand).
// ---------------------------------------------------------------------------

const RoundStats& Pipeline::round1() {
  run_until(StageId::kRound1);
  return *round1_;
}
const RoundStats& Pipeline::round2() {
  run_until(StageId::kRound2);
  return *round2_;
}
const HeuristicCounts& Pipeline::heuristics() {
  run_until(StageId::kHeuristics);
  return *heuristics_;
}
const AliasVerifyStats& Pipeline::alias_verification() {
  run_until(StageId::kAliasVerification);
  return *alias_stats_;
}
const VpiDetectionResult& Pipeline::vpis() {
  run_until(StageId::kVpiDetection);
  return *vpis_;
}
const AnchorSet& Pipeline::anchors() {
  run_until(StageId::kAnchors);
  return *anchors_;
}
const PinningResult& Pipeline::pinning() {
  run_until(StageId::kPinning);
  return *pinning_;
}

const AliasSets& Pipeline::alias_sets() {
  run_until(StageId::kAliasVerification);
  return alias_verifier_->sets();
}

const RunSnapshot& Pipeline::run_snapshot() {
  if (run_snapshot_) return *run_snapshot_;
  run_all();
  annotator_.set_snapshot(&snapshot2_);
  const PeeringClassifier cls = classifier();

  RunSnapshot out;
  out.seed = options_.seed;
  // The thread knob is execution environment, not a result — blank it under
  // deterministic metrics so snapshots cmp equal across thread counts.
  out.threads = options_.deterministic_metrics ? 0 : options_.campaign.threads;
  out.subject = static_cast<std::uint8_t>(options_.subject);
  out.hazard_profile = options_.hazard_label;

  out.segments.reserve(campaign_->fabric().segments().size());
  for (const InferredSegment& seg : campaign_->fabric().segments()) {
    SnapshotSegment snap;
    snap.abi = seg.abi;
    snap.cbi = seg.cbi;
    snap.prior_abi = seg.prior_abi;
    snap.post_cbi = seg.post_cbi;
    snap.first_round = seg.first_round;
    snap.confirmation = seg.confirmation;
    snap.shifted = seg.shifted;
    snap.owner_hint = seg.owner_hint;
    snap.ixp = annotator_.annotate(seg.cbi).ixp;
    snap.vpi = vpis_->vpi_cbis.count(seg.cbi.value()) > 0;
    snap.peer_asn = cls.segment_owner(seg);
    if (!snap.peer_asn.is_unknown())
      snap.peer_org = annotator_.org_of_asn(snap.peer_asn);
    if (const auto group = cls.classify(seg))
      snap.group = static_cast<std::uint8_t>(*group);
    const SegmentConfidence conf = segment_confidence(seg);
    snap.observations = conf.observations;
    snap.rounds_mask = seg.rounds_mask;
    snap.hop_density = conf.hop_density;
    snap.confidence = conf.score;
    snap.regions.assign(seg.regions.begin(), seg.regions.end());
    snap.dest_slash24s.assign(seg.dest_slash24s.begin(),
                              seg.dest_slash24s.end());
    out.segments.push_back(std::move(snap));
  }

  out.pins.reserve(pinning_->pins.size());
  for (const auto& [address, pin] : pinning_->pins) {
    SnapshotPin snap;
    snap.address = address;
    snap.metro = pin.metro.value;
    snap.rule = static_cast<std::uint8_t>(pin.rule);
    snap.anchor_source = static_cast<std::uint8_t>(pin.anchor_source);
    snap.round = pin.round;
    out.pins.push_back(snap);
  }
  out.regional.assign(pinning_->regional.begin(), pinning_->regional.end());

  out.alias_sets.reserve(alias_verifier_->sets().sets.size());
  for (const std::vector<Ipv4>& set : alias_verifier_->sets().sets) {
    std::vector<std::uint32_t> members;
    members.reserve(set.size());
    for (const Ipv4 member : set) members.push_back(member.value());
    out.alias_sets.push_back(std::move(members));
  }

  out.stage_reports = reports();
  canonicalize(out);
  run_snapshot_ = std::move(out);
  return *run_snapshot_;
}

Pinner& Pipeline::ensure_pinner() {
  run_until(StageId::kAliasVerification);
  if (!pinner_) {
    Pinner::Inputs inputs;
    inputs.fabric = &campaign_->fabric();
    inputs.annotator = &annotator_;
    inputs.peeringdb = &peeringdb_;
    inputs.dns = &dns_;
    inputs.aliases = &alias_verifier_->sets();
    inputs.world = world_;
    inputs.rtts = rtts_.get();
    inputs.vps = &campaign_->vantage_points();
    pinner_ = std::make_unique<Pinner>(inputs, options_.pinning);
  }
  return *pinner_;
}

const Pinner& Pipeline::pinner() { return ensure_pinner(); }

Pinner& Pipeline::mutable_pinner() { return ensure_pinner(); }

PeeringClassifier Pipeline::classifier() {
  const std::unordered_set<std::uint32_t>* vpi_set =
      vpis_ ? &vpis_->vpi_cbis : nullptr;
  return PeeringClassifier(&annotator_, &snapshot2_, subject_asns_, vpi_set);
}

std::uint64_t Pipeline::cone_of(Asn asn) const {
  const auto it = world_->as_by_asn.find(asn.value);
  if (it == world_->as_by_asn.end()) return 0;
  return cones_[it->second.value];
}

InferenceScore Pipeline::score() const {
  InferenceScore out;
  std::unordered_set<std::uint32_t> true_cbis;
  for (const GroundTruthInterconnect& ic : world_->interconnects) {
    if (ic.cloud != options_.subject) continue;
    ++out.true_interconnects;
    if (ic.private_address) continue;
    ++out.discoverable_interconnects;
    true_cbis.insert(
        world_->interfaces[ic.client_interface.value].address.value());
  }
  // Client border routers of the subject's interconnects.
  std::unordered_set<std::uint32_t> client_border_routers;
  for (const GroundTruthInterconnect& ic : world_->interconnects) {
    if (ic.cloud != options_.subject || ic.private_address) continue;
    client_border_routers.insert(
        world_->interfaces[ic.client_interface.value].router.value);
  }

  const auto inferred = campaign_->fabric().unique_cbis();
  out.inferred_cbis = inferred.size();
  std::unordered_set<std::uint32_t> matched;
  std::unordered_set<std::uint32_t> matched_routers;
  for (const std::uint32_t cbi : inferred) {
    if (true_cbis.count(cbi)) {
      ++out.inferred_true_cbis;
      matched.insert(cbi);
    }
    const InterfaceId iface = world_->find_interface(Ipv4(cbi));
    if (iface.valid()) {
      const std::uint32_t router = world_->interface(iface).router.value;
      if (client_border_routers.count(router)) {
        ++out.inferred_client_router_cbis;
        matched_routers.insert(router);
      }
    }
  }
  // Discovered interconnects: planted client interfaces we actually saw
  // (several interconnects can share a client address on a shared port),
  // and — looser — client border routers observed through any interface.
  for (const GroundTruthInterconnect& ic : world_->interconnects) {
    if (ic.cloud != options_.subject || ic.private_address) continue;
    const Interface& client = world_->interfaces[ic.client_interface.value];
    if (matched.count(client.address.value())) ++out.discovered;
    if (matched_routers.count(client.router.value))
      ++out.discovered_router_level;
  }
  return out;
}

std::unordered_set<std::uint32_t> Pipeline::peer_asns() {
  run_until(StageId::kAliasVerification);
  std::unordered_set<std::uint32_t> out;
  const PeeringClassifier cls = classifier();
  for (const InferredSegment& segment : campaign_->fabric().segments()) {
    const Asn owner = cls.segment_owner(segment);
    if (!owner.is_unknown()) out.insert(owner.value);
  }
  return out;
}

}  // namespace cloudmap
