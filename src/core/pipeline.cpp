#include "core/pipeline.h"

namespace cloudmap {

Pipeline::Pipeline(const World& world, PipelineOptions options)
    : world_(&world),
      options_(std::move(options)),
      annotator_(nullptr, nullptr, nullptr, nullptr) {
  bgp_ = std::make_unique<BgpSimulator>(world);

  const auto feeds = default_collector_feeds(world, options_.seed + 11);
  SnapshotOptions round1_options = options_.snapshot;
  round1_options.include_intermittent = false;
  snapshot1_ = build_snapshot(world, *bgp_, feeds, round1_options);
  SnapshotOptions round2_options = options_.snapshot;
  round2_options.include_intermittent = true;
  snapshot2_ = build_snapshot(world, *bgp_, feeds, round2_options);

  whois_ = WhoisRegistry::from_world(world);
  as2org_ = As2Org::from_world(world);
  peeringdb_ = PeeringDb::from_world(world, options_.peeringdb);
  dns_ = DnsRegistry::from_world(world, options_.dns);
  cones_ = customer_cone_slash24s(world);
  for (AsId id : world.cloud_ases[static_cast<int>(options_.subject)])
    subject_asns_.push_back(world.ases[id.value].asn);

  forwarder_ = std::make_unique<Forwarder>(world, *bgp_);
  annotator_ = Annotator(&snapshot1_, &whois_, &as2org_, &peeringdb_);

  CampaignConfig campaign_config = options_.campaign;
  campaign_config.seed ^= options_.seed;
  campaign_ =
      std::make_unique<Campaign>(world, *forwarder_, options_.subject,
                                 campaign_config);
  rtts_ = std::make_unique<RttCampaign>(
      *forwarder_, campaign_->vantage_points(), options_.seed + 101);

  // Public-Internet vantage: a router of the first access network (a stand-
  // in for the paper's University of Oregon node).
  for (const AutonomousSystem& as : world.ases) {
    if (as.type == AsType::kAccess && !as.routers.empty()) {
      public_vp_ = VantagePoint::public_node(as.routers.front(), "public-vp");
      break;
    }
  }
}

Pipeline::~Pipeline() = default;

void Pipeline::ensure_round1() {
  if (round1_) return;
  annotator_.set_snapshot(&snapshot1_);
  round1_ = campaign_->run_round1(annotator_);
}

void Pipeline::ensure_round2() {
  ensure_round1();
  if (round2_) return;
  // §4.2: expansion probing, annotated against the fresher snapshot.
  annotator_.set_snapshot(&snapshot2_);
  round2_ = campaign_->run_round2(annotator_);
}

void Pipeline::ensure_heuristics() {
  ensure_round2();
  if (heuristics_) return;
  annotator_.set_snapshot(&snapshot2_);
  HeuristicVerifier verifier(*forwarder_, annotator_,
                             campaign_->subject_org(), public_vp_);
  heuristics_ = verifier.apply(campaign_->fabric());
}

void Pipeline::ensure_alias() {
  ensure_heuristics();
  if (alias_stats_) return;
  AliasOptions alias_options = options_.alias;
  alias_options.seed ^= options_.seed;
  alias_verifier_ = std::make_unique<AliasVerifier>(
      *forwarder_, annotator_, campaign_->subject_org(), alias_options);
  alias_stats_ = alias_verifier_->apply(campaign_->fabric(),
                                        campaign_->vantage_points());
}

void Pipeline::ensure_vpis() {
  ensure_alias();
  if (vpis_) return;
  VpiDetector detector(*world_, *forwarder_, annotator_, options_.seed + 31,
                       options_.campaign.threads);
  vpis_ = detector.detect(*campaign_, options_.foreign_clouds);
}

void Pipeline::ensure_anchors() {
  ensure_alias();
  if (anchors_) return;
  anchors_ = pinner().identify_anchors();
}

void Pipeline::ensure_pinning() {
  ensure_anchors();
  if (pinning_) return;
  pinning_ = pinner().propagate(*anchors_);
}

const RoundStats& Pipeline::round1() {
  ensure_round1();
  return *round1_;
}
const RoundStats& Pipeline::round2() {
  ensure_round2();
  return *round2_;
}
const HeuristicCounts& Pipeline::heuristics() {
  ensure_heuristics();
  return *heuristics_;
}
const AliasVerifyStats& Pipeline::alias_verification() {
  ensure_alias();
  return *alias_stats_;
}
const VpiDetectionResult& Pipeline::vpis() {
  ensure_vpis();
  return *vpis_;
}
const AnchorSet& Pipeline::anchors() {
  ensure_anchors();
  return *anchors_;
}
const PinningResult& Pipeline::pinning() {
  ensure_pinning();
  return *pinning_;
}

void Pipeline::run_all() {
  ensure_vpis();
  ensure_pinning();
}

const AliasSets& Pipeline::alias_sets() {
  ensure_alias();
  return alias_verifier_->sets();
}

Pinner& Pipeline::pinner() {
  ensure_alias();
  if (!pinner_) {
    Pinner::Inputs inputs;
    inputs.fabric = &campaign_->fabric();
    inputs.annotator = &annotator_;
    inputs.peeringdb = &peeringdb_;
    inputs.dns = &dns_;
    inputs.aliases = &alias_verifier_->sets();
    inputs.world = world_;
    inputs.rtts = rtts_.get();
    inputs.vps = &campaign_->vantage_points();
    pinner_ = std::make_unique<Pinner>(inputs, options_.pinning);
  }
  return *pinner_;
}

PeeringClassifier Pipeline::classifier() {
  const std::unordered_set<std::uint32_t>* vpi_set =
      vpis_ ? &vpis_->vpi_cbis : nullptr;
  return PeeringClassifier(&annotator_, &snapshot2_, subject_asns_, vpi_set);
}

std::uint64_t Pipeline::cone_of(Asn asn) const {
  const auto it = world_->as_by_asn.find(asn.value);
  if (it == world_->as_by_asn.end()) return 0;
  return cones_[it->second.value];
}

InferenceScore Pipeline::score() const {
  InferenceScore out;
  std::unordered_set<std::uint32_t> true_cbis;
  for (const GroundTruthInterconnect& ic : world_->interconnects) {
    if (ic.cloud != options_.subject) continue;
    ++out.true_interconnects;
    if (ic.private_address) continue;
    ++out.discoverable_interconnects;
    true_cbis.insert(
        world_->interfaces[ic.client_interface.value].address.value());
  }
  // Client border routers of the subject's interconnects.
  std::unordered_set<std::uint32_t> client_border_routers;
  for (const GroundTruthInterconnect& ic : world_->interconnects) {
    if (ic.cloud != options_.subject || ic.private_address) continue;
    client_border_routers.insert(
        world_->interfaces[ic.client_interface.value].router.value);
  }

  const auto inferred = campaign_->fabric().unique_cbis();
  out.inferred_cbis = inferred.size();
  std::unordered_set<std::uint32_t> matched;
  std::unordered_set<std::uint32_t> matched_routers;
  for (const std::uint32_t cbi : inferred) {
    if (true_cbis.count(cbi)) {
      ++out.inferred_true_cbis;
      matched.insert(cbi);
    }
    const InterfaceId iface = world_->find_interface(Ipv4(cbi));
    if (iface.valid()) {
      const std::uint32_t router = world_->interface(iface).router.value;
      if (client_border_routers.count(router)) {
        ++out.inferred_client_router_cbis;
        matched_routers.insert(router);
      }
    }
  }
  // Discovered interconnects: planted client interfaces we actually saw
  // (several interconnects can share a client address on a shared port),
  // and — looser — client border routers observed through any interface.
  for (const GroundTruthInterconnect& ic : world_->interconnects) {
    if (ic.cloud != options_.subject || ic.private_address) continue;
    const Interface& client = world_->interfaces[ic.client_interface.value];
    if (matched.count(client.address.value())) ++out.discovered;
    if (matched_routers.count(client.router.value))
      ++out.discovered_router_level;
  }
  return out;
}

std::unordered_set<std::uint32_t> Pipeline::peer_asns() {
  ensure_alias();
  std::unordered_set<std::uint32_t> out;
  const PeeringClassifier cls = classifier();
  for (const InferredSegment& segment : campaign_->fabric().segments()) {
    const Asn owner = cls.segment_owner(segment);
    if (!owner.is_unknown()) out.insert(owner.value);
  }
  return out;
}

}  // namespace cloudmap
