#include "infer/fabric.h"

#include <algorithm>

namespace cloudmap {

const char* to_string(Confirmation c) {
  switch (c) {
    case Confirmation::kUnconfirmed: return "unconfirmed";
    case Confirmation::kIxpClient: return "ixp-client";
    case Confirmation::kHybrid: return "hybrid";
    case Confirmation::kReachability: return "reachability";
    case Confirmation::kAliasRelabel: return "alias-relabel";
  }
  return "?";
}

void Fabric::add_segment(const CandidateSegment& candidate, int round) {
  const std::uint64_t segment_key = key(candidate.abi, candidate.cbi);
  auto it = index_.find(segment_key);
  if (it == index_.end()) {
    InferredSegment segment;
    segment.abi = candidate.abi;
    segment.cbi = candidate.cbi;
    segment.first_round = round;
    it = index_.emplace(segment_key, segments_.size()).first;
    segments_.push_back(std::move(segment));
  }
  InferredSegment& segment = segments_[it->second];
  ++segment.observations;
  const int round_bit = std::clamp(round, 1, 32) - 1;
  segment.rounds_mask |= std::uint32_t{1} << round_bit;
  segment.hop_density_sum += candidate.hop_density;
  if (!candidate.prior_abi.is_unspecified())
    segment.prior_abi = candidate.prior_abi;
  if (!candidate.post_cbi.is_unspecified())
    segment.post_cbi = candidate.post_cbi;
  if (candidate.region.valid()) segment.regions.insert(candidate.region.value);
  segment.dest_slash24s.insert(candidate.destination.value() & 0xFFFFFF00u);
  if (segment.sample_destinations.size() < kMaxSampleDests)
    segment.sample_destinations.push_back(candidate.destination);
}

void Fabric::add_adjacency(Ipv4 from, Ipv4 to) {
  successors_[from.value()].insert(to.value());
}

const std::unordered_set<std::uint32_t>* Fabric::successors_of(
    Ipv4 address) const {
  const auto it = successors_.find(address.value());
  return it == successors_.end() ? nullptr : &it->second;
}

std::unordered_set<std::uint32_t> Fabric::unique_abis() const {
  std::unordered_set<std::uint32_t> out;
  for (const InferredSegment& segment : segments_)
    out.insert(segment.abi.value());
  return out;
}

std::unordered_set<std::uint32_t> Fabric::unique_cbis() const {
  std::unordered_set<std::uint32_t> out;
  for (const InferredSegment& segment : segments_)
    out.insert(segment.cbi.value());
  return out;
}

std::unordered_map<std::uint32_t, std::vector<std::size_t>> Fabric::by_abi()
    const {
  std::unordered_map<std::uint32_t, std::vector<std::size_t>> out;
  for (std::size_t i = 0; i < segments_.size(); ++i)
    out[segments_[i].abi.value()].push_back(i);
  return out;
}

std::unordered_map<std::uint32_t, std::vector<std::size_t>> Fabric::by_cbi()
    const {
  std::unordered_map<std::uint32_t, std::vector<std::size_t>> out;
  for (std::size_t i = 0; i < segments_.size(); ++i)
    out[segments_[i].cbi.value()].push_back(i);
  return out;
}

bool Fabric::shift_segment(std::size_t index, Confirmation reason) {
  InferredSegment& segment = segments_[index];
  if (segment.prior_abi.is_unspecified()) return false;
  index_.erase(key(segment.abi, segment.cbi));

  const std::uint64_t new_key = key(segment.prior_abi, segment.abi);
  const auto existing = index_.find(new_key);
  if (existing != index_.end() && existing->second != index) {
    // The corrected segment was already observed directly; merge metadata
    // into it and mark this one for removal.
    InferredSegment& target = segments_[existing->second];
    target.regions.insert(segment.regions.begin(), segment.regions.end());
    target.dest_slash24s.insert(segment.dest_slash24s.begin(),
                                segment.dest_slash24s.end());
    target.observations += segment.observations;
    target.rounds_mask |= segment.rounds_mask;
    target.hop_density_sum += segment.hop_density_sum;
    segment.cbi = Ipv4{};  // tombstone; compact() removes it
    return true;
  }
  segment.post_cbi = segment.cbi;
  segment.cbi = segment.abi;
  segment.abi = segment.prior_abi;
  segment.prior_abi = Ipv4{};
  segment.shifted = true;
  segment.confirmation = reason;
  index_[new_key] = index;
  return true;
}

bool Fabric::advance_segment(std::size_t index, Confirmation reason) {
  InferredSegment& segment = segments_[index];
  if (segment.post_cbi.is_unspecified()) return false;
  index_.erase(key(segment.abi, segment.cbi));

  const std::uint64_t new_key = key(segment.cbi, segment.post_cbi);
  const auto existing = index_.find(new_key);
  if (existing != index_.end() && existing->second != index) {
    InferredSegment& target = segments_[existing->second];
    target.regions.insert(segment.regions.begin(), segment.regions.end());
    target.dest_slash24s.insert(segment.dest_slash24s.begin(),
                                segment.dest_slash24s.end());
    target.observations += segment.observations;
    target.rounds_mask |= segment.rounds_mask;
    target.hop_density_sum += segment.hop_density_sum;
    segment.cbi = Ipv4{};  // tombstone
    return true;
  }
  segment.prior_abi = segment.abi;
  segment.abi = segment.cbi;
  segment.cbi = segment.post_cbi;
  segment.post_cbi = Ipv4{};
  segment.shifted = true;
  segment.confirmation = reason;
  index_[new_key] = index;
  return true;
}

void Fabric::compact() {
  std::vector<InferredSegment> kept;
  kept.reserve(segments_.size());
  index_.clear();
  for (InferredSegment& segment : segments_) {
    if (segment.cbi.is_unspecified()) continue;
    index_[key(segment.abi, segment.cbi)] = kept.size();
    kept.push_back(std::move(segment));
  }
  segments_ = std::move(kept);
}

}  // namespace cloudmap
