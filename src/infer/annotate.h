// Hop annotation (§3): every traceroute hop IP is mapped to an ASN (BGP
// origin first, WHOIS fallback), an organization (AS2ORG), and an
// IXP-membership flag. Private/shared addresses get ASN 0, which the border
// walk treats as "possibly still inside the cloud".
#pragma once

#include <optional>

#include "controlplane/as2org.h"
#include "controlplane/bgp.h"
#include "controlplane/peeringdb.h"
#include "controlplane/whois.h"
#include "net/ids.h"
#include "net/ipv4.h"

namespace cloudmap {

enum class AnnotationSource : std::uint8_t {
  kNone = 0,   // unannotated public space
  kBgp,        // origin from the BGP snapshot
  kWhois,      // RIR registry fallback
  kIxp,        // per-member IXP LAN assignment (PeeringDB/PCH)
  kPrivate,    // RFC1918/RFC6598 → ASN 0
};

struct HopAnnotation {
  Asn asn;                 // 0 = unknown/private
  OrgId org;               // 0 = unknown
  bool ixp = false;        // address inside an IXP peering LAN
  AnnotationSource source = AnnotationSource::kNone;
};

class Annotator {
 public:
  Annotator(const BgpSnapshot* snapshot, const WhoisRegistry* whois,
            const As2Org* as2org, const PeeringDb* peeringdb)
      : snapshot_(snapshot),
        whois_(whois),
        as2org_(as2org),
        peeringdb_(peeringdb) {}

  HopAnnotation annotate(Ipv4 address) const;

  // Organization of an ASN (AS2ORG passthrough).
  OrgId org_of_asn(Asn asn) const { return as2org_->org_of(asn); }

  // Swap in a newer snapshot (round-2 re-annotation, §4.2).
  void set_snapshot(const BgpSnapshot* snapshot) { snapshot_ = snapshot; }

 private:
  const BgpSnapshot* snapshot_;
  const WhoisRegistry* whois_;
  const As2Org* as2org_;
  const PeeringDb* peeringdb_;
};

}  // namespace cloudmap
