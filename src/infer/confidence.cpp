#include "infer/confidence.h"

#include <algorithm>

namespace cloudmap {

double confirmation_weight(Confirmation confirmation) {
  switch (confirmation) {
    case Confirmation::kUnconfirmed: return 0.0;
    case Confirmation::kIxpClient: return 1.0;      // strongest §5.1 signal
    case Confirmation::kHybrid: return 0.85;
    case Confirmation::kReachability: return 0.70;  // weakest heuristic
    case Confirmation::kAliasRelabel: return 0.75;  // corrected, then agreed
  }
  return 0.0;
}

double confidence_score(std::uint32_t observations, std::uint32_t rounds_seen,
                        double hop_density, double heuristic_weight) {
  const double obs = static_cast<double>(observations);
  const double obs_score = observations == 0 ? 0.0 : obs / (obs + 2.0);
  const double rounds_score =
      static_cast<double>(std::min<std::uint32_t>(rounds_seen, 2)) / 2.0;
  const double density = std::clamp(hop_density, 0.0, 1.0);
  const double weight = std::clamp(heuristic_weight, 0.0, 1.0);
  return 0.35 * weight + 0.30 * obs_score + 0.15 * rounds_score +
         0.20 * density;
}

SegmentConfidence segment_confidence(const InferredSegment& segment) {
  SegmentConfidence out;
  out.observations = segment.observations;
  out.rounds_seen =
      static_cast<std::uint32_t>(__builtin_popcount(segment.rounds_mask));
  out.hop_density =
      segment.observations == 0
          ? 0.0
          : segment.hop_density_sum / static_cast<double>(segment.observations);
  out.heuristic_weight = confirmation_weight(segment.confirmation);
  out.score = confidence_score(out.observations, out.rounds_seen,
                               out.hop_density, out.heuristic_weight);
  return out;
}

}  // namespace cloudmap
