#include "infer/alias_verify.h"

#include <unordered_map>
#include <unordered_set>

namespace cloudmap {

AliasVerifier::AliasVerifier(const Forwarder& forwarder,
                             const Annotator& annotator, OrgId subject_org,
                             AliasOptions options)
    : forwarder_(&forwarder),
      annotator_(&annotator),
      subject_org_(subject_org),
      options_(options) {}

AliasVerifyStats AliasVerifier::apply(Fabric& fabric,
                                      const std::vector<VantagePoint>& vps) {
  AliasVerifyStats stats;

  // Candidate interfaces: every ABI and CBI currently in the fabric.
  const auto abis = fabric.unique_abis();
  const auto cbis = fabric.unique_cbis();
  std::vector<Ipv4> targets;
  targets.reserve(abis.size() + cbis.size());
  for (const std::uint32_t a : abis) targets.emplace_back(a);
  for (const std::uint32_t c : cbis)
    if (!abis.count(c)) targets.emplace_back(c);

  MidarResolver resolver(*forwarder_, options_);
  sets_ = resolver.resolve(targets, vps);

  stats.sets = sets_.sets.size();
  stats.interfaces_in_sets = sets_.interfaces_in_sets();
  for (const auto& set : sets_.sets) {
    for (const Ipv4 member : set) {
      if (abis.count(member.value())) ++stats.abis_in_sets;
      else if (cbis.count(member.value())) ++stats.cbis_in_sets;
    }
  }

  // Majority AS owner per set (annotated members only).
  std::vector<Asn> set_owner(sets_.sets.size(), Asn{});
  std::size_t majority = 0;
  std::size_t unanimous = 0;
  for (std::size_t s = 0; s < sets_.sets.size(); ++s) {
    std::unordered_map<std::uint32_t, std::size_t> votes;
    std::size_t annotated = 0;
    for (const Ipv4 member : sets_.sets[s]) {
      const HopAnnotation a = annotator_->annotate(member);
      if (a.asn.is_unknown()) continue;
      ++annotated;
      ++votes[a.asn.value];
    }
    std::uint32_t best_asn = 0;
    std::size_t best_count = 0;
    for (const auto& [asn, count] : votes) {
      if (count > best_count) {
        best_count = count;
        best_asn = asn;
      }
    }
    if (annotated > 0 && best_count * 2 > annotated) {
      set_owner[s] = Asn{best_asn};
      ++majority;
      if (best_count == annotated) ++unanimous;
    }
  }
  if (!sets_.sets.empty()) {
    stats.majority_fraction =
        static_cast<double>(majority) / static_cast<double>(sets_.sets.size());
    stats.unanimous_fraction = static_cast<double>(unanimous) /
                               static_cast<double>(sets_.sets.size());
  }

  // Ownership-consistency corrections. A router is "cloud-owned" when its
  // set's majority ASN maps to the subject org.
  auto owner_is_subject = [&](Asn asn) {
    return annotator_->org_of_asn(asn) == subject_org_;
  };

  std::unordered_set<std::uint32_t> relabeled_abi_to_cbi;
  std::unordered_set<std::uint32_t> relabeled_cbi_to_abi;
  std::unordered_set<std::uint32_t> relabeled_cbi_to_cbi;
  const std::size_t segment_count = fabric.segments().size();
  for (std::size_t index = 0; index < segment_count; ++index) {
    InferredSegment& segment = fabric.segments()[index];
    if (segment.cbi.is_unspecified()) continue;

    // ABI on a router whose majority owner is a client AS → the candidate
    // ABI is really a client interface; the interconnect is one hop back.
    const auto abi_set = sets_.set_of.find(segment.abi.value());
    if (abi_set != sets_.set_of.end()) {
      const Asn owner = set_owner[abi_set->second];
      if (!owner.is_unknown()) {
        if (!owner_is_subject(owner)) {
          const Asn hint = owner;
          const std::uint32_t old_abi = segment.abi.value();
          if (fabric.shift_segment(index, Confirmation::kAliasRelabel)) {
            if (!segment.cbi.is_unspecified() &&
                segment.owner_hint.is_unknown())
              segment.owner_hint = hint;
            relabeled_abi_to_cbi.insert(old_abi);
            continue;
          }
        }
      }
    }
    // CBI on a cloud-owned router → the true CBI is one hop forward.
    const auto cbi_set = sets_.set_of.find(segment.cbi.value());
    if (cbi_set != sets_.set_of.end()) {
      const Asn owner = set_owner[cbi_set->second];
      if (!owner.is_unknown()) {
        if (owner_is_subject(owner)) {
          const std::uint32_t old_cbi = segment.cbi.value();
          if (fabric.advance_segment(index, Confirmation::kAliasRelabel))
            relabeled_cbi_to_abi.insert(old_cbi);
          continue;
        }
        // CBI on a router owned by a *different* client AS than its own
        // annotation: reattribute (CBI→CBI).
        const HopAnnotation annotation = annotator_->annotate(segment.cbi);
        if (!annotation.asn.is_unknown() && annotation.asn != owner) {
          segment.owner_hint = owner;
          relabeled_cbi_to_cbi.insert(segment.cbi.value());
        }
      }
    }
  }
  fabric.compact();
  stats.abi_to_cbi = relabeled_abi_to_cbi.size();
  stats.cbi_to_abi = relabeled_cbi_to_abi.size();
  stats.cbi_to_cbi = relabeled_cbi_to_cbi.size();
  return stats;
}

}  // namespace cloudmap
