// Basic interconnection-segment inference (§4.1): walk a traceroute from the
// cloud outward until the first hop whose organization is neither 0 nor the
// cloud's — the Customer Border Interface — and take the prior responding
// hop as the cloud (Amazon) Border Interface. Applies the paper's exclusion
// filters and retains the two hops before the CBI plus the hop after it
// (needed by the shift corrections of §5).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "dataplane/traceroute.h"
#include "infer/annotate.h"

namespace cloudmap {

// One candidate interconnection segment extracted from one traceroute.
struct CandidateSegment {
  Ipv4 cbi;
  Ipv4 abi;
  Ipv4 prior_abi;   // hop before the ABI (0.0.0.0 when absent)
  Ipv4 post_cbi;    // hop after the CBI (0.0.0.0 when absent)
  Ipv4 destination; // the probed target
  RegionId region;  // source region of the probe
  double abi_rtt_ms = 0.0;
  double cbi_rtt_ms = 0.0;
  // Fraction of hops in the source traceroute that responded — one of the
  // inputs to the per-segment confidence score (a clean trace supports its
  // segment more strongly than one extracted from a gap-riddled record).
  double hop_density = 0.0;
};

// Why a traceroute yielded no usable segment (the §4.1 exclusions).
struct BorderWalkStats {
  std::uint64_t examined = 0;
  std::uint64_t extracted = 0;
  std::uint64_t never_left_cloud = 0;   // no non-cloud hop observed
  std::uint64_t loop = 0;               // IP-level loop
  std::uint64_t gap_before_border = 0;  // unresponsive hop before the CBI
  std::uint64_t cbi_is_destination = 0;
  std::uint64_t duplicate_before_border = 0;
  std::uint64_t reentered_cloud = 0;    // downstream hop back inside cloud

  void add(const BorderWalkStats& other) {
    examined += other.examined;
    extracted += other.extracted;
    never_left_cloud += other.never_left_cloud;
    loop += other.loop;
    gap_before_border += other.gap_before_border;
    cbi_is_destination += other.cbi_is_destination;
    duplicate_before_border += other.duplicate_before_border;
    reentered_cloud += other.reentered_cloud;
  }
};

// Extract the candidate segment from one traceroute, or nullopt with the
// reason recorded in `stats`. `cloud_org` is the ORG id of the cloud the
// probe was launched from (Amazon's, for the main campaigns).
std::optional<CandidateSegment> extract_segment(const TracerouteRecord& record,
                                                const Annotator& annotator,
                                                OrgId cloud_org,
                                                BorderWalkStats& stats);

}  // namespace cloudmap
