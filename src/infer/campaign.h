// Campaign orchestration (§3, §4): the two traceroute rounds from every
// region of the subject cloud — the full /24 sweep and the expansion round
// around discovered CBIs — feeding the Fabric, with the bookkeeping that
// reproduces Table 1.
//
// Sweeps are sharded into deterministic (region, chunk-of-targets) work
// items and fanned out across worker threads (CampaignConfig::threads),
// mirroring how the paper's campaign probes from 15 regions in parallel.
// Each work item traces with its own RNG stream derived from
// (seed, region, chunk) and buffers its contributions; the main thread
// merges them in canonical order, so the fabric and the round stats are
// bit-identical whatever the thread count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <unordered_set>
#include <utility>
#include <vector>

#include "dataplane/forwarding.h"
#include "dataplane/reprobe.h"
#include "dataplane/traceroute.h"
#include "infer/annotate.h"
#include "infer/fabric.h"
#include "obs/metrics.h"
#include "util/parallel.h"

namespace cloudmap {

struct CampaignConfig {
  std::uint64_t seed = 5;
  // Probe every `expansion_stride`-th address of each expansion /24
  // (1 = the paper's full walk).
  int expansion_stride = 1;
  // Worker threads for the probe sweeps: 0 = hardware_concurrency, 1 = run
  // everything inline on the calling thread. Results are bit-identical for
  // every thread count: targets are sharded into fixed (region, chunk) work
  // items, each with its own RNG stream derived from (seed, region, chunk),
  // and merged in canonical order.
  int threads = 0;
  TracerouteOptions traceroute;
  // Adaptive re-probing of targets whose first pass ended in kGapLimit /
  // kUnreachable. Disabled by default (budget 0): the primary pass draws
  // from untouched RNG streams, so a zero budget reproduces the
  // no-reprobing campaign bit for bit.
  ReprobePolicy reprobe;
  // Multi-process sharding (scale-out across machines): shard runs execute
  // only the canonical work items with index % shard_count == shard_index.
  // The default 0/1 owns every item. A shard run streams its items' results
  // to a part file instead of touching the fabric; the merge process
  // absorbs all shards' parts in canonical order, which is what makes the
  // sharded campaign byte-identical to a single-process one.
  int shard_index = 0;
  int shard_count = 1;
};

struct RoundStats {
  std::uint64_t targets = 0;
  std::uint64_t traceroutes = 0;  // includes retry traces
  std::uint64_t probes = 0;  // per-hop probe packets issued (incl. retries)
  // Re-probing accounting. `walk` covers primary *and* retry passes (retry
  // evidence merges into the same fabric); the counters below isolate the
  // retry machinery itself.
  std::uint64_t retried_targets = 0;   // failed targets given retry passes
  std::uint64_t retries = 0;           // retry traces issued
  std::uint64_t backoff_waits = 0;     // backoff sleeps taken
  std::uint64_t backoff_ticks = 0;     // simulated probe slots spent waiting
  std::uint64_t recovered_targets = 0; // a retry completed / yielded evidence
  BorderWalkStats walk;
  // Fraction of traceroutes that left the subject cloud (§3 reports ~77%).
  double left_cloud_fraction() const {
    return walk.examined == 0
               ? 0.0
               : 1.0 - static_cast<double>(walk.never_left_cloud) /
                           static_cast<double>(walk.examined);
  }
  // Wall time the campaign would take at the paper's probing rate (300
  // packets/s per VM, all regions probing in parallel — §3's 16 days).
  // Backoff waits occupy probe slots in the simulated clock, so they count
  // toward the duration even though no packet leaves.
  double duration_days(std::size_t regions,
                       double packets_per_second = 300.0) const {
    if (regions == 0) return 0.0;
    const double per_vm = static_cast<double>(probes + backoff_ticks) /
                          static_cast<double>(regions);
    return per_vm / packets_per_second / 86400.0;
  }
};

// One row of Table 1: interface count and annotation-source shares.
struct InterfaceTableRow {
  std::size_t total = 0;
  double bgp_fraction = 0.0;
  double whois_fraction = 0.0;
  double ixp_fraction = 0.0;
};

class Campaign {
 public:
  // `subject` is the cloud whose fabric is being mapped (Amazon in the
  // paper). The annotator decides hop ownership; swap its snapshot between
  // rounds for the re-annotation effect of §4.2.
  Campaign(const World& world, const Forwarder& forwarder,
           CloudProvider subject, const CampaignConfig& config = {});

  // Everything one (region, chunk) work item contributes, buffered so
  // contributions can be merged in canonical item order — streamed on the
  // calling thread by sweep(), or across processes via shard part files
  // (io/shard.h).
  //
  // The merge path is deliberately lock-free BY CONSTRUCTION, not by
  // guarding: workers build only their own item's result, and the merge
  // consumes results on the calling thread in canonical order
  // (parallel_consume). The static guards are therefore the raw-thread
  // lint rule (no stray std::thread can add a second writer) and the
  // CM_GUARDED_BY annotations inside parallel.h / MetricsRegistry / the
  // BGP cache — there is intentionally no mutex here to annotate.
  struct SweepChunkResult {
    std::vector<std::pair<std::uint32_t, std::uint32_t>> adjacencies;
    std::vector<CandidateSegment> segments;
    BorderWalkStats walk;
    std::uint64_t traceroutes = 0;
    std::uint64_t probes = 0;
    std::uint64_t retried_targets = 0;
    std::uint64_t retries = 0;
    std::uint64_t backoff_waits = 0;
    std::uint64_t backoff_ticks = 0;
    std::uint64_t recovered_targets = 0;
  };

  // Round 1: .1 of every probeable /24, from every subject region.
  RoundStats run_round1(const Annotator& annotator);

  // Round 2: every other address of each /24 holding a round-1 CBI.
  RoundStats run_round2(const Annotator& annotator);

  // Probe an explicit target list (used by the VPI detector, §7.1).
  RoundStats run_targets(const Annotator& annotator,
                         const std::vector<Ipv4>& targets, int round);

  // --- sharded execution (multi-process scale-out) -----------------------
  //
  // The shard protocol: each of N processes runs run_roundX_shard, which
  // executes ONLY the work items owned by (config.shard_index,
  // config.shard_count) and streams each result — in increasing canonical
  // index — to `sink` (typically an io/shard.h part writer). The fabric is
  // deliberately left untouched: segment-insertion order across ALL items
  // is what the byte-identity invariant rests on, so merging happens in
  // absorb_roundX, which consumes one result per canonical item in global
  // order (io/shard.h's round-robin merge over N part streams) and updates
  // the fabric, the round stats, the sweep counter, and the metrics exactly
  // as an in-process sweep would have.
  //
  // Round 2 requires the absorbed round-1 fabric first (expansion targets
  // derive from it), so a shard process runs: absorb_round1(merged parts)
  // → run_round2_shard(sink).

  using ShardSink =
      std::function<void(std::uint64_t item, const SweepChunkResult& result)>;
  using ShardSource = std::function<bool(SweepChunkResult& result)>;

  // Canonical work-item count of a sweep over `target_count` targets — the
  // same plan every shard derives; part headers carry it so the merge can
  // prove coverage is complete.
  std::uint64_t sweep_item_count(std::size_t target_count) const;

  // Round-1 target list (the .1 of every probeable /24), exposed so shard
  // and merge processes derive identical plans.
  std::vector<Ipv4> round1_targets() const;

  void run_round1_shard(const Annotator& annotator, const ShardSink& sink);
  void run_round2_shard(const Annotator& annotator, const ShardSink& sink);

  // Merge one full sweep's per-item results, already in canonical order.
  // `source` is called exactly sweep_item_count(targets) times and must
  // yield a result each time (a short stream throws — the io layer
  // validates part coverage before handing the stream over).
  RoundStats absorb_round1(const ShardSource& source);
  RoundStats absorb_round2(const ShardSource& source);

  Fabric& fabric() { return fabric_; }
  const Fabric& fabric() const noexcept { return fabric_; }

  // Attach a metrics registry (may be null). When attached and enabled,
  // sweeps record probe/traceroute counters, a "campaign.sweep" timer, and
  // per-sweep pool statistics; none of it perturbs results.
  void set_metrics(MetricsRegistry* metrics) { metrics_ = metrics; }

  // Worker-pool accounting of the most recent sweep. Zeroed when metrics
  // are detached or disabled.
  const PoolStats& last_pool_stats() const noexcept { return last_pool_stats_; }

  CloudProvider subject() const noexcept { return subject_; }
  OrgId subject_org() const noexcept { return subject_org_; }
  const std::vector<VantagePoint>& vantage_points() const { return vps_; }

  // Expansion targets implied by the current fabric.
  std::vector<Ipv4> expansion_targets() const;

  // Table-1 style stats over an address set, annotated with `annotator`.
  static InterfaceTableRow interface_stats(
      const std::unordered_set<std::uint32_t>& addresses,
      const Annotator& annotator);

  // Unique CBI-owner ASNs under the given annotation (the "peering ASes").
  std::size_t peer_asn_count(const Annotator& annotator) const;

 private:
  // Targets per (region, chunk) work item. Fixed — NOT derived from the
  // thread count — so every thread count sees the same work items and the
  // same per-chunk RNG streams.
  static constexpr std::size_t kSweepChunk = 256;

  // One canonical work item: a (vantage point, target slice) pair. The
  // canonical list is region-outer, chunk-inner — the order the sequential
  // loop used to visit.
  struct WorkItem {
    std::size_t vp;
    std::size_t begin;
    std::size_t end;
    std::uint64_t chunk;
  };
  // The full deterministic plan of one sweep: the canonical item list plus
  // the route-churn epoch boundary. Every process (any shard, any thread
  // count) derives the same plan from the same target count.
  struct SweepPlan {
    std::vector<WorkItem> items;
    std::size_t swap_at = 0;  // items at index >= swap_at run at epoch 1
  };
  SweepPlan make_plan(std::size_t target_count) const;

  RoundStats sweep(const Annotator& annotator,
                   const std::vector<Ipv4>& targets, int round);
  void run_shard_sweep(const Annotator& annotator,
                       const std::vector<Ipv4>& targets, const ShardSink& sink);
  RoundStats absorb_sweep(const ShardSource& source, std::size_t target_count,
                          int round);
  // Fold one item's buffered contribution into the fabric and the running
  // stats — the single merge path shared by streaming sweeps and absorbs.
  void merge_result(RoundStats& stats, const SweepChunkResult& result,
                    int round);
  void add_sweep_metrics(const RoundStats& stats);
  // `epoch` is the forwarding-state generation of this work item (the
  // route-churn hazard swaps state atomically at a deterministic item
  // boundary; 0 everywhere when the hazard is off).
  SweepChunkResult sweep_chunk(const Annotator& annotator,
                               const std::vector<Ipv4>& targets,
                               std::size_t vp_index, std::size_t begin,
                               std::size_t end, std::uint64_t chunk,
                               std::uint64_t sweep_index,
                               std::uint32_t epoch) const;

  const World* world_;
  const Forwarder* forwarder_;
  CloudProvider subject_;
  OrgId subject_org_;
  CampaignConfig config_;
  std::uint64_t sweep_counter_ = 0;  // distinguishes RNG streams per sweep
  std::vector<VantagePoint> vps_;
  Fabric fabric_;
  MetricsRegistry* metrics_ = nullptr;
  PoolStats last_pool_stats_;
};

}  // namespace cloudmap
