// Alias-set verification (§5.2): resolve router-level aliases among all
// candidate border interfaces (MIDAR-style, from every region), determine
// each router's owner as the majority AS across its interfaces, and make the
// fabric consistent with router ownership — relabeling the few interfaces
// whose ABI/CBI role contradicts it (the paper's 45 corrections).
#pragma once

#include <cstddef>

#include "alias/midar.h"
#include "infer/annotate.h"
#include "infer/fabric.h"

namespace cloudmap {

struct AliasVerifyStats {
  std::size_t sets = 0;
  std::size_t interfaces_in_sets = 0;
  std::size_t abis_in_sets = 0;
  std::size_t cbis_in_sets = 0;
  // Fraction of sets where one AS owns >50% / 100% of annotated members
  // (the paper reports 94% / 92%).
  double majority_fraction = 0.0;
  double unanimous_fraction = 0.0;
  // Corrections by kind, counted per unique interface (paper: 18, 2, 25).
  std::size_t abi_to_cbi = 0;
  std::size_t cbi_to_abi = 0;
  std::size_t cbi_to_cbi = 0;
};

class AliasVerifier {
 public:
  AliasVerifier(const Forwarder& forwarder, const Annotator& annotator,
                OrgId subject_org, AliasOptions options = {});

  // Runs alias resolution over the fabric's ABIs+CBIs from the given
  // vantage points and applies ownership-consistency corrections in place.
  AliasVerifyStats apply(Fabric& fabric,
                         const std::vector<VantagePoint>& vps);

  // The resolved alias sets from the last apply() call (used by pinning's
  // co-presence Rule 1).
  const AliasSets& sets() const noexcept { return sets_; }

 private:
  const Forwarder* forwarder_;
  const Annotator* annotator_;
  OrgId subject_org_;
  AliasOptions options_;
  AliasSets sets_;
};

}  // namespace cloudmap
