#include "infer/campaign.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>
#include <utility>

#include "util/parallel.h"
#include "util/rng.h"

namespace cloudmap {

namespace {

// RNG stream for one (sweep, region, chunk) work item. Mixed through
// splitmix64 at each step so streams are decorrelated however the inputs
// collide; depends on nothing that varies with the thread count.
std::uint64_t stream_seed(std::uint64_t seed, std::uint64_t sweep,
                          std::uint64_t region, std::uint64_t chunk) {
  std::uint64_t state = seed + 0x632be59bd9b4e019ULL * (sweep + 1);
  state ^= splitmix64(state) + 0x9e3779b97f4a7c15ULL * (region + 1);
  state ^= splitmix64(state) + 0xbf58476d1ce4e5b9ULL * (chunk + 1);
  return splitmix64(state);
}

}  // namespace

Campaign::Campaign(const World& world, const Forwarder& forwarder,
                   CloudProvider subject, const CampaignConfig& config)
    : world_(&world),
      forwarder_(&forwarder),
      subject_(subject),
      subject_org_(world.ases[world.cloud_primary(subject).value].org),
      config_(config) {
  for (RegionId region : world.regions_of(subject)) {
    vps_.push_back(VantagePoint::cloud_vm(
        subject, region, world.region(region).name));
  }
}

Campaign::SweepChunkResult Campaign::sweep_chunk(
    const Annotator& annotator, const std::vector<Ipv4>& targets,
    std::size_t vp_index, std::size_t begin, std::size_t end,
    std::uint64_t chunk, std::uint64_t sweep_index,
    std::uint32_t epoch) const {
  const VantagePoint& vp = vps_[vp_index];
  const std::uint64_t chunk_seed =
      stream_seed(config_.seed, sweep_index, vp.region.value, chunk);
  // The work item's forwarding-state epoch rides on the engine options so
  // primary and retry engines see the same state. epoch 0 leaves the copy
  // equal to config_.traceroute — the hazard-off path builds the exact
  // engines it always built.
  TracerouteOptions traceroute = config_.traceroute;
  traceroute.hazards.epoch = epoch;
  TracerouteEngine engine(*forwarder_, chunk_seed, traceroute);
  SweepChunkResult result;
  // Adjacencies repeat heavily across traces into the same /24; dedup per
  // chunk to keep the merge buffers small (the fabric's successor map is a
  // set, so dropping duplicates changes nothing).
  std::unordered_set<std::uint64_t> seen_adjacencies;
  // Fold one trace — primary or retry — into the chunk result. Returns
  // whether a candidate segment came out of it.
  const auto process = [&](const TracerouteRecord& record) {
    ++result.traceroutes;
    // Adjacencies between consecutive responding hops feed the hybrid
    // heuristic (Fig. 3).
    Ipv4 previous;
    for (const TracerouteHop& hop : record.hops) {
      if (!hop.responded) {
        previous = Ipv4{};
        continue;
      }
      if (!previous.is_unspecified()) {
        const std::uint64_t key =
            (static_cast<std::uint64_t>(previous.value()) << 32) |
            hop.address.value();
        if (seen_adjacencies.insert(key).second)
          result.adjacencies.emplace_back(previous.value(),
                                          hop.address.value());
      }
      previous = hop.address;
    }
    if (auto segment =
            extract_segment(record, annotator, subject_org_, result.walk)) {
      result.segments.push_back(std::move(*segment));
      return true;
    }
    return false;
  };

  const ReprobePolicy reprobe = config_.reprobe.clamped();
  std::vector<std::size_t> failed;
  // One record per chunk: trace_into reuses its hop storage, so the probe
  // loop stops allocating once the deepest trace has sized the buffers.
  TracerouteRecord record;
  for (std::size_t t = begin; t < end; ++t) {
    engine.trace_into(vp, targets[t], record);
    process(record);
    if (reprobe.enabled() && record.status != TracerouteStatus::kCompleted)
      failed.push_back(t);
  }
  result.probes = engine.probes_sent();

  // Re-probe pass: each failed target earns up to `budget` extra traces with
  // exponential, jittered backoff in the simulated clock. Every attempt
  // draws from its own (chunk, target, attempt) RNG stream — the primary
  // engine above is never touched, so a zero budget is bit-identical to the
  // seed behaviour and results stay thread-count invariant.
  for (const std::size_t t : failed) {
    ++result.retried_targets;
    bool recovered = false;
    for (int attempt = 1; attempt <= reprobe.budget && !recovered; ++attempt) {
      Rng retry_rng(reprobe_stream_seed(chunk_seed, t, attempt));
      result.backoff_ticks += reprobe.backoff_ticks(attempt, retry_rng);
      ++result.backoff_waits;
      TracerouteEngine retry_engine(*forwarder_, retry_rng.next(),
                                    traceroute);
      retry_engine.trace_into(vp, targets[t], record);
      ++result.retries;
      const bool extracted = process(record);
      result.probes += retry_engine.probes_sent();
      if (record.status == TracerouteStatus::kCompleted || extracted) {
        recovered = true;
        ++result.recovered_targets;
      }
    }
  }
  return result;
}

Campaign::SweepPlan Campaign::make_plan(std::size_t target_count) const {
  SweepPlan plan;
  // Work items in canonical (region, chunk) order — the same order the
  // sequential loop used to visit (vantage-point outer, targets inner).
  for (std::size_t v = 0; v < vps_.size(); ++v) {
    std::uint64_t chunk = 0;
    for (std::size_t begin = 0; begin < target_count;
         begin += kSweepChunk, ++chunk) {
      plan.items.push_back(WorkItem{
          v, begin, std::min(begin + kSweepChunk, target_count), chunk});
    }
  }

  // Route-churn hazard: the last `route_churn` fraction of the canonical
  // work-item list runs against forwarding-state epoch 1 — an atomic,
  // fabric-wide swap at a deterministic item boundary, independent of the
  // thread count and of sharding (the boundary is an index into the
  // canonical list, never a function of scheduling).
  const double route_churn =
      config_.traceroute.hazards.clamped().route_churn;
  plan.swap_at =
      route_churn <= 0.0
          ? plan.items.size()
          : plan.items.size() -
                static_cast<std::size_t>(
                    static_cast<double>(plan.items.size()) * route_churn);
  return plan;
}

std::uint64_t Campaign::sweep_item_count(std::size_t target_count) const {
  const std::uint64_t chunks_per_vp =
      (target_count + kSweepChunk - 1) / kSweepChunk;
  return static_cast<std::uint64_t>(vps_.size()) * chunks_per_vp;
}

void Campaign::merge_result(RoundStats& stats, const SweepChunkResult& result,
                            int round) {
  stats.traceroutes += result.traceroutes;
  stats.probes += result.probes;
  stats.retried_targets += result.retried_targets;
  stats.retries += result.retries;
  stats.backoff_waits += result.backoff_waits;
  stats.backoff_ticks += result.backoff_ticks;
  stats.recovered_targets += result.recovered_targets;
  stats.walk.add(result.walk);
  for (const auto& [from, to] : result.adjacencies)
    fabric_.add_adjacency(Ipv4(from), Ipv4(to));
  for (const CandidateSegment& segment : result.segments)
    fabric_.add_segment(segment, round);
}

void Campaign::add_sweep_metrics(const RoundStats& stats) {
  if (metrics_ == nullptr || !metrics_->enabled()) return;
  metrics_->add("campaign.sweeps");
  metrics_->add("campaign.targets", stats.targets);
  metrics_->add("campaign.traceroutes", stats.traceroutes);
  metrics_->add("campaign.probes", stats.probes);
  // Registered even when zero so every artifact carries the retry family
  // (tools/metrics_schema.json lists them as retry_counters).
  metrics_->add("campaign.retry.attempts", stats.retries);
  metrics_->add("campaign.retry.backoff_waits", stats.backoff_waits);
  metrics_->add("campaign.retry.backoff_ticks", stats.backoff_ticks);
  metrics_->add("campaign.retry.recovered_targets", stats.recovered_targets);
}

RoundStats Campaign::sweep(const Annotator& annotator,
                           const std::vector<Ipv4>& targets, int round) {
  const bool metered = metrics_ != nullptr && metrics_->enabled();
  const MetricsRegistry::ScopedTimer sweep_timer(
      metered ? metrics_ : nullptr, "campaign.sweep");
  RoundStats stats;
  stats.targets = targets.size();
  const std::uint64_t sweep_index = sweep_counter_++;
  const SweepPlan plan = make_plan(targets.size());

  // Stream each item's contribution to the calling thread, which merges in
  // canonical work-item order: segment insertion order (and with it
  // prior/post-hop freshness and destination sampling) matches a serial run
  // exactly, while peak buffering stays O(workers) instead of
  // materializing every chunk's output (flat RSS at Internet scale).
  last_pool_stats_ = PoolStats{};
  parallel_consume(
      plan.items.size(), config_.threads,
      [&](std::size_t i) {
        const WorkItem& item = plan.items[i];
        return sweep_chunk(annotator, targets, item.vp, item.begin, item.end,
                           item.chunk, sweep_index,
                           i >= plan.swap_at ? 1u : 0u);
      },
      [&](std::size_t, SweepChunkResult&& result) {
        merge_result(stats, result, round);
      },
      metered ? &last_pool_stats_ : nullptr);
  add_sweep_metrics(stats);
  return stats;
}

void Campaign::run_shard_sweep(const Annotator& annotator,
                               const std::vector<Ipv4>& targets,
                               const ShardSink& sink) {
  const bool metered = metrics_ != nullptr && metrics_->enabled();
  const MetricsRegistry::ScopedTimer sweep_timer(
      metered ? metrics_ : nullptr, "campaign.sweep");
  const std::uint64_t sweep_index = sweep_counter_++;
  const SweepPlan plan = make_plan(targets.size());

  const std::size_t shard_count =
      config_.shard_count < 1 ? 1 : static_cast<std::size_t>(config_.shard_count);
  const std::size_t shard_index =
      config_.shard_index < 0 ? 0 : static_cast<std::size_t>(config_.shard_index);
  std::vector<std::size_t> owned;
  for (std::size_t i = shard_index; i < plan.items.size(); i += shard_count)
    owned.push_back(i);

  // Same per-item execution as sweep(), but results flow to the sink (the
  // part writer) instead of the fabric: merging must happen in GLOBAL
  // canonical order across all shards, which only the absorb side can do.
  last_pool_stats_ = PoolStats{};
  parallel_consume(
      owned.size(), config_.threads,
      [&](std::size_t k) {
        const std::size_t i = owned[k];
        const WorkItem& item = plan.items[i];
        return sweep_chunk(annotator, targets, item.vp, item.begin, item.end,
                           item.chunk, sweep_index,
                           i >= plan.swap_at ? 1u : 0u);
      },
      [&](std::size_t k, SweepChunkResult&& result) {
        sink(owned[k], result);
      },
      metered ? &last_pool_stats_ : nullptr);
}

RoundStats Campaign::absorb_sweep(const ShardSource& source,
                                  std::size_t target_count, int round) {
  const bool metered = metrics_ != nullptr && metrics_->enabled();
  const MetricsRegistry::ScopedTimer sweep_timer(
      metered ? metrics_ : nullptr, "campaign.sweep");
  RoundStats stats;
  stats.targets = target_count;
  // The absorbed sweep occupies the same RNG-stream slot the probing sweep
  // would have, so later in-process sweeps (round 2, VPI detection) draw
  // from the same streams as a single-process run.
  sweep_counter_++;
  const std::uint64_t items = sweep_item_count(target_count);
  last_pool_stats_ = PoolStats{};
  SweepChunkResult result;
  for (std::uint64_t i = 0; i < items; ++i) {
    result = SweepChunkResult{};
    if (!source(result)) {
      throw std::runtime_error(
          "campaign: shard part stream ended after " + std::to_string(i) +
          " of " + std::to_string(items) + " work items");
    }
    merge_result(stats, result, round);
  }
  add_sweep_metrics(stats);
  return stats;
}

RoundStats Campaign::run_round1(const Annotator& annotator) {
  return sweep(annotator, round1_targets(), 1);
}

std::vector<Ipv4> Campaign::round1_targets() const {
  std::vector<Ipv4> targets;
  for (const Prefix& prefix : world_->probeable_slash24s())
    targets.push_back(prefix.network().next(1));
  return targets;
}

void Campaign::run_round1_shard(const Annotator& annotator,
                                const ShardSink& sink) {
  run_shard_sweep(annotator, round1_targets(), sink);
}

void Campaign::run_round2_shard(const Annotator& annotator,
                                const ShardSink& sink) {
  run_shard_sweep(annotator, expansion_targets(), sink);
}

RoundStats Campaign::absorb_round1(const ShardSource& source) {
  return absorb_sweep(source, round1_targets().size(), 1);
}

RoundStats Campaign::absorb_round2(const ShardSource& source) {
  return absorb_sweep(source, expansion_targets().size(), 2);
}

std::vector<Ipv4> Campaign::expansion_targets() const {
  // The /24s of every discovered CBI, all addresses except the ones already
  // swept (.1) and the CBI itself.
  std::unordered_set<std::uint32_t> slash24s;
  std::unordered_set<std::uint32_t> cbis;
  for (const InferredSegment& segment : fabric_.segments()) {
    slash24s.insert(segment.cbi.value() & 0xFFFFFF00u);
    cbis.insert(segment.cbi.value());
  }
  std::vector<std::uint32_t> ordered(slash24s.begin(), slash24s.end());
  std::sort(ordered.begin(), ordered.end());

  std::vector<Ipv4> targets;
  const int stride = std::max(1, config_.expansion_stride);
  for (const std::uint32_t network : ordered) {
    for (std::uint32_t host = 2; host <= 254;
         host += static_cast<std::uint32_t>(stride)) {
      const std::uint32_t address = network | host;
      if (cbis.count(address)) continue;
      targets.emplace_back(address);
    }
  }
  return targets;
}

RoundStats Campaign::run_round2(const Annotator& annotator) {
  return sweep(annotator, expansion_targets(), 2);
}

RoundStats Campaign::run_targets(const Annotator& annotator,
                                 const std::vector<Ipv4>& targets,
                                 int round) {
  return sweep(annotator, targets, round);
}

InterfaceTableRow Campaign::interface_stats(
    const std::unordered_set<std::uint32_t>& addresses,
    const Annotator& annotator) {
  InterfaceTableRow row;
  row.total = addresses.size();
  if (addresses.empty()) return row;
  std::size_t bgp = 0;
  std::size_t whois = 0;
  std::size_t ixp = 0;
  for (const std::uint32_t address : addresses) {
    const HopAnnotation a = annotator.annotate(Ipv4(address));
    if (a.ixp) {
      ++ixp;  // IXP membership takes precedence, as in Table 1
    } else if (a.source == AnnotationSource::kBgp) {
      ++bgp;
    } else if (a.source == AnnotationSource::kWhois) {
      ++whois;
    }
  }
  const double total = static_cast<double>(row.total);
  row.bgp_fraction = static_cast<double>(bgp) / total;
  row.whois_fraction = static_cast<double>(whois) / total;
  row.ixp_fraction = static_cast<double>(ixp) / total;
  return row;
}

std::size_t Campaign::peer_asn_count(const Annotator& annotator) const {
  std::unordered_set<std::uint32_t> asns;
  for (const InferredSegment& segment : fabric_.segments()) {
    const HopAnnotation a = annotator.annotate(segment.cbi);
    if (!a.asn.is_unknown()) asns.insert(a.asn.value);
  }
  return asns.size();
}

}  // namespace cloudmap
