#include "infer/campaign.h"

#include <algorithm>

namespace cloudmap {

Campaign::Campaign(const World& world, const Forwarder& forwarder,
                   CloudProvider subject, const CampaignConfig& config)
    : world_(&world),
      subject_(subject),
      subject_org_(world.ases[world.cloud_primary(subject).value].org),
      config_(config),
      engine_(forwarder, config.seed, config.traceroute) {
  for (RegionId region : world.regions_of(subject)) {
    vps_.push_back(VantagePoint::cloud_vm(
        subject, region, world.region(region).name));
  }
}

RoundStats Campaign::sweep(const Annotator& annotator,
                           const std::vector<Ipv4>& targets, int round) {
  RoundStats stats;
  stats.targets = targets.size();
  const std::uint64_t probes_before = engine_.probes_sent();
  for (const VantagePoint& vp : vps_) {
    for (const Ipv4 target : targets) {
      const TracerouteRecord record = engine_.trace(vp, target);
      ++stats.traceroutes;
      // Adjacencies between consecutive responding hops feed the hybrid
      // heuristic (Fig. 3).
      Ipv4 previous;
      for (const TracerouteHop& hop : record.hops) {
        if (!hop.responded) {
          previous = Ipv4{};
          continue;
        }
        if (!previous.is_unspecified())
          fabric_.add_adjacency(previous, hop.address);
        previous = hop.address;
      }
      if (const auto segment =
              extract_segment(record, annotator, subject_org_, stats.walk)) {
        fabric_.add_segment(*segment, round);
      }
    }
  }
  stats.probes = engine_.probes_sent() - probes_before;
  return stats;
}

RoundStats Campaign::run_round1(const Annotator& annotator) {
  std::vector<Ipv4> targets;
  for (const Prefix& prefix : world_->probeable_slash24s())
    targets.push_back(prefix.network().next(1));
  return sweep(annotator, targets, 1);
}

std::vector<Ipv4> Campaign::expansion_targets() const {
  // The /24s of every discovered CBI, all addresses except the ones already
  // swept (.1) and the CBI itself.
  std::unordered_set<std::uint32_t> slash24s;
  std::unordered_set<std::uint32_t> cbis;
  for (const InferredSegment& segment : fabric_.segments()) {
    slash24s.insert(segment.cbi.value() & 0xFFFFFF00u);
    cbis.insert(segment.cbi.value());
  }
  std::vector<std::uint32_t> ordered(slash24s.begin(), slash24s.end());
  std::sort(ordered.begin(), ordered.end());

  std::vector<Ipv4> targets;
  const int stride = std::max(1, config_.expansion_stride);
  for (const std::uint32_t network : ordered) {
    for (std::uint32_t host = 2; host <= 254;
         host += static_cast<std::uint32_t>(stride)) {
      const std::uint32_t address = network | host;
      if (cbis.count(address)) continue;
      targets.emplace_back(address);
    }
  }
  return targets;
}

RoundStats Campaign::run_round2(const Annotator& annotator) {
  return sweep(annotator, expansion_targets(), 2);
}

RoundStats Campaign::run_targets(const Annotator& annotator,
                                 const std::vector<Ipv4>& targets,
                                 int round) {
  return sweep(annotator, targets, round);
}

InterfaceTableRow Campaign::interface_stats(
    const std::unordered_set<std::uint32_t>& addresses,
    const Annotator& annotator) {
  InterfaceTableRow row;
  row.total = addresses.size();
  if (addresses.empty()) return row;
  std::size_t bgp = 0;
  std::size_t whois = 0;
  std::size_t ixp = 0;
  for (const std::uint32_t address : addresses) {
    const HopAnnotation a = annotator.annotate(Ipv4(address));
    if (a.ixp) {
      ++ixp;  // IXP membership takes precedence, as in Table 1
    } else if (a.source == AnnotationSource::kBgp) {
      ++bgp;
    } else if (a.source == AnnotationSource::kWhois) {
      ++whois;
    }
  }
  const double total = static_cast<double>(row.total);
  row.bgp_fraction = static_cast<double>(bgp) / total;
  row.whois_fraction = static_cast<double>(whois) / total;
  row.ixp_fraction = static_cast<double>(ixp) / total;
  return row;
}

std::size_t Campaign::peer_asn_count(const Annotator& annotator) const {
  std::unordered_set<std::uint32_t> asns;
  for (const InferredSegment& segment : fabric_.segments()) {
    const HopAnnotation a = annotator.annotate(segment.cbi);
    if (!a.asn.is_unknown()) asns.insert(a.asn.value);
  }
  return asns.size();
}

}  // namespace cloudmap
