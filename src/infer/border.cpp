#include "infer/border.h"

namespace cloudmap {

std::optional<CandidateSegment> extract_segment(const TracerouteRecord& record,
                                                const Annotator& annotator,
                                                OrgId cloud_org,
                                                BorderWalkStats& stats) {
  ++stats.examined;

  // Locate the CBI: the first responding hop whose org is neither unknown
  // (ASN 0 / private space) nor the cloud's.
  std::size_t cbi_index = record.hops.size();
  for (std::size_t i = 0; i < record.hops.size(); ++i) {
    const TracerouteHop& hop = record.hops[i];
    if (!hop.responded) continue;
    const HopAnnotation a = annotator.annotate(hop.address);
    if (!a.org.is_unknown() && a.org != cloud_org) {
      cbi_index = i;
      break;
    }
    if (a.org.is_unknown() && a.source == AnnotationSource::kNone &&
        !a.ixp) {
      // Unannotated public space that is not an IXP LAN: treat as still
      // unknown (the walk continues), matching the paper's ASN-0 handling.
      continue;
    }
  }
  if (cbi_index == record.hops.size()) {
    ++stats.never_left_cloud;
    return std::nullopt;
  }

  // Exclusion: any unresponsive hop before the border.
  for (std::size_t i = 0; i < cbi_index; ++i) {
    if (!record.hops[i].responded) {
      ++stats.gap_before_border;
      return std::nullopt;
    }
  }
  // Exclusion: duplicates or IP-level loops before the border (a repeated
  // address that is non-adjacent is a loop; adjacent repetition a duplicate
  // — both disqualify the probe). The window ends at the CBI — a handful of
  // hops — so a quadratic scan replaces the per-trace hash-set allocation.
  for (std::size_t i = 1; i <= cbi_index; ++i) {
    const std::uint32_t value = record.hops[i].address.value();
    bool repeated = false;
    for (std::size_t j = 0; j < i; ++j) {
      if (record.hops[j].address.value() == value) {
        repeated = true;
        break;
      }
    }
    if (repeated) {
      const bool adjacent = record.hops[i - 1].address.value() == value;
      if (adjacent)
        ++stats.duplicate_before_border;
      else
        ++stats.loop;
      return std::nullopt;
    }
  }
  // Exclusion: the CBI is the probed destination itself (likely a response
  // from the target rather than a forwarding hop; RFC1812 default-address
  // behaviour makes these unreliable).
  if (record.hops[cbi_index].address == record.destination) {
    ++stats.cbi_is_destination;
    return std::nullopt;
  }
  // Sanity: the walk must not re-enter the cloud downstream of the CBI.
  for (std::size_t i = cbi_index + 1; i < record.hops.size(); ++i) {
    if (!record.hops[i].responded) continue;
    const HopAnnotation a = annotator.annotate(record.hops[i].address);
    if (a.org == cloud_org) {
      ++stats.reentered_cloud;
      return std::nullopt;
    }
  }
  if (cbi_index == 0) {
    // A CBI with no prior hop gives no segment to reason about.
    ++stats.never_left_cloud;
    return std::nullopt;
  }

  CandidateSegment segment;
  segment.cbi = record.hops[cbi_index].address;
  segment.abi = record.hops[cbi_index - 1].address;
  if (cbi_index >= 2) segment.prior_abi = record.hops[cbi_index - 2].address;
  for (std::size_t i = cbi_index + 1; i < record.hops.size(); ++i) {
    if (record.hops[i].responded) {
      segment.post_cbi = record.hops[i].address;
      break;
    }
  }
  segment.destination = record.destination;
  segment.region = record.vantage.region;
  segment.abi_rtt_ms = record.hops[cbi_index - 1].rtt_ms;
  segment.cbi_rtt_ms = record.hops[cbi_index].rtt_ms;
  if (!record.hops.empty()) {
    std::size_t responded = 0;
    for (const TracerouteHop& hop : record.hops)
      if (hop.responded) ++responded;
    segment.hop_density = static_cast<double>(responded) /
                          static_cast<double>(record.hops.size());
  }
  ++stats.extracted;
  return segment;
}

}  // namespace cloudmap
