#include "infer/annotate.h"

namespace cloudmap {

HopAnnotation Annotator::annotate(Ipv4 address) const {
  HopAnnotation out;
  out.ixp = peeringdb_->ixp_of(address).has_value();
  if (address.is_private() || address.is_shared()) {
    out.source = AnnotationSource::kPrivate;
    return out;  // ASN 0 by convention
  }
  if (out.ixp) {
    // traIXroute-style: PeeringDB's per-member LAN assignments identify the
    // member owning this IXP address.
    if (const auto member = peeringdb_->lan_member(address)) {
      out.asn = *member;
      out.org = as2org_->org_of(out.asn);
      out.source = AnnotationSource::kIxp;
      return out;
    }
  }
  if (const Asn* origin = snapshot_->origin_of.lookup(address)) {
    out.asn = *origin;
    out.org = as2org_->org_of(out.asn);
    out.source = AnnotationSource::kBgp;
    return out;
  }
  if (const auto owner = whois_->lookup(address)) {
    out.asn = *owner;
    out.org = as2org_->org_of(out.asn);
    out.source = AnnotationSource::kWhois;
    return out;
  }
  out.source = AnnotationSource::kNone;
  return out;
}

}  // namespace cloudmap
