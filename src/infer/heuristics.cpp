#include "infer/heuristics.h"

#include <unordered_map>
#include <unordered_set>

namespace cloudmap {

HeuristicVerifier::HeuristicVerifier(const Forwarder& forwarder,
                                     const Annotator& annotator,
                                     OrgId subject_org,
                                     VantagePoint public_vp)
    : forwarder_(&forwarder),
      annotator_(&annotator),
      subject_org_(subject_org),
      public_vp_(std::move(public_vp)) {}

bool HeuristicVerifier::cbi_in_ixp(const Fabric& fabric,
                                   std::size_t segment_index) const {
  return annotator_->annotate(fabric.segments()[segment_index].cbi).ixp;
}

bool HeuristicVerifier::is_hybrid(const Fabric& fabric, Ipv4 address) const {
  const auto* successors = fabric.successors_of(address);
  if (successors == nullptr) return false;
  bool has_cloud_successor = false;
  bool has_client_successor = false;
  for (const std::uint32_t next : *successors) {
    const HopAnnotation a = annotator_->annotate(Ipv4(next));
    if (a.org == subject_org_) {
      has_cloud_successor = true;
    } else if (!a.org.is_unknown() || a.ixp) {
      has_client_successor = true;
    }
    if (has_cloud_successor && has_client_successor) return true;
  }
  return false;
}

bool HeuristicVerifier::reachable_from_public(Ipv4 address) const {
  return forwarder_->rtt_to_address(public_vp_, address).has_value();
}

HeuristicCounts HeuristicVerifier::apply(Fabric& fabric) {
  HeuristicCounts counts;

  // --- individual evaluation (no mutation) ---
  {
    const auto by_abi = fabric.by_abi();
    counts.total_abis = by_abi.size();
    counts.total_cbis = fabric.unique_cbis().size();
    for (const auto& [abi_value, segment_indices] : by_abi) {
      const Ipv4 abi(abi_value);
      std::unordered_set<std::uint32_t> cbis;
      for (const std::size_t index : segment_indices)
        cbis.insert(fabric.segments()[index].cbi.value());

      bool ixp_hit = false;
      for (const std::size_t index : segment_indices)
        if (cbi_in_ixp(fabric, index)) ixp_hit = true;
      if (ixp_hit) {
        ++counts.ixp_abis;
        counts.ixp_cbis += cbis.size();
      }
      if (is_hybrid(fabric, abi)) {
        ++counts.hybrid_abis;
        counts.hybrid_cbis += cbis.size();
      }
      bool abi_unreachable = !reachable_from_public(abi);
      bool any_cbi_reachable = false;
      for (const std::uint32_t cbi : cbis)
        if (reachable_from_public(Ipv4(cbi))) any_cbi_reachable = true;
      if (abi_unreachable && any_cbi_reachable) {
        ++counts.reachable_abis;
        counts.reachable_cbis += cbis.size();
      }
    }
  }

  // --- cumulative application in confidence order, with corrections ---
  std::unordered_set<std::uint32_t> confirmed_abis;
  auto confirm = [&](std::size_t index, Confirmation reason) {
    InferredSegment& segment = fabric.segments()[index];
    if (segment.confirmation == Confirmation::kUnconfirmed)
      segment.confirmation = reason;
  };

  // Pass 1: IXP-client.
  {
    const auto by_abi = fabric.by_abi();
    for (const auto& [abi_value, segment_indices] : by_abi) {
      bool hit = false;
      for (const std::size_t index : segment_indices)
        if (cbi_in_ixp(fabric, index)) hit = true;
      if (!hit) continue;
      confirmed_abis.insert(abi_value);
      ++counts.cum_ixp_abis;
      std::unordered_set<std::uint32_t> cbis;
      for (const std::size_t index : segment_indices) {
        confirm(index, Confirmation::kIxpClient);
        cbis.insert(fabric.segments()[index].cbi.value());
      }
      counts.cum_ixp_cbis += cbis.size();
    }
  }

  // Pass 2: hybrid confirmation, plus Fig. 2 shift when the evidence points
  // one hop back.
  {
    const auto by_abi = fabric.by_abi();
    for (const auto& [abi_value, segment_indices] : by_abi) {
      if (confirmed_abis.count(abi_value)) continue;
      const Ipv4 abi(abi_value);
      if (is_hybrid(fabric, abi)) {
        confirmed_abis.insert(abi_value);
        ++counts.cum_hybrid_abis;
        std::unordered_set<std::uint32_t> cbis;
        for (const std::size_t index : segment_indices) {
          confirm(index, Confirmation::kHybrid);
          cbis.insert(fabric.segments()[index].cbi.value());
        }
        counts.cum_hybrid_cbis += cbis.size();
        continue;
      }
      // Shift check: the candidate ABI is not hybrid, its prior hop is, and
      // everything downstream of the candidate is client-side — the
      // interconnect is the preceding segment (cloud-provided /30).
      for (const std::size_t index : segment_indices) {
        InferredSegment& segment = fabric.segments()[index];
        if (segment.prior_abi.is_unspecified()) continue;
        if (!is_hybrid(fabric, segment.prior_abi)) continue;
        const auto* successors = fabric.successors_of(abi);
        bool all_client = successors != nullptr;
        if (successors != nullptr) {
          for (const std::uint32_t next : *successors) {
            if (annotator_->annotate(Ipv4(next)).org == subject_org_)
              all_client = false;
          }
        }
        if (!all_client) continue;
        const Asn hint = annotator_->annotate(segment.cbi).asn;
        if (fabric.shift_segment(index, Confirmation::kHybrid)) {
          if (!segment.cbi.is_unspecified() && segment.owner_hint.is_unknown())
            segment.owner_hint = hint;
          ++counts.shifts_applied;
        }
      }
    }
    fabric.compact();
  }

  // Pass 3: reachability.
  {
    const auto by_abi = fabric.by_abi();
    for (const auto& [abi_value, segment_indices] : by_abi) {
      if (confirmed_abis.count(abi_value)) continue;
      const Ipv4 abi(abi_value);
      if (reachable_from_public(abi)) continue;  // suspicious ABI, skip
      std::unordered_set<std::uint32_t> cbis;
      bool any_cbi_reachable = false;
      for (const std::size_t index : segment_indices) {
        cbis.insert(fabric.segments()[index].cbi.value());
        if (reachable_from_public(fabric.segments()[index].cbi))
          any_cbi_reachable = true;
      }
      if (!any_cbi_reachable) continue;
      confirmed_abis.insert(abi_value);
      ++counts.cum_reachable_abis;
      counts.cum_reachable_cbis += cbis.size();
      for (const std::size_t index : segment_indices)
        confirm(index, Confirmation::kReachability);
    }
  }

  // Remaining unconfirmed ABIs.
  {
    const auto by_abi = fabric.by_abi();
    for (const auto& [abi_value, segment_indices] : by_abi) {
      (void)segment_indices;
      if (!confirmed_abis.count(abi_value)) ++counts.unconfirmed_abis;
    }
  }
  return counts;
}

}  // namespace cloudmap
