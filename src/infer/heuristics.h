// Verification heuristics (§5.1), applied in decreasing order of confidence:
//
//   1. IXP-client — a CBI inside an IXP peering LAN always belongs to an IXP
//      member, so the segment is correct as inferred.
//   2. Hybrid IPs — an ABI whose observed successors span both the cloud's
//      org and client orgs sits on a true cloud border router (Fig. 3).
//      Conversely, a non-hybrid ABI whose *prior* hop is hybrid and whose
//      successors are all client-side is the Fig. 2 address-sharing artifact:
//      the segment shifts back one hop.
//   3. Interface reachability — cloud border interfaces are not reachable
//      from the public Internet while client interfaces often are; an
//      unreachable ABI paired with a reachable CBI supports the inference.
//
// Produces the Table 2 accounting (individual and cumulative confirmations).
#pragma once

#include <cstddef>

#include "dataplane/forwarding.h"
#include "dataplane/vantage.h"
#include "infer/annotate.h"
#include "infer/fabric.h"

namespace cloudmap {

struct HeuristicCounts {
  // Individual evaluation (each heuristic alone over all candidate ABIs).
  std::size_t ixp_abis = 0, ixp_cbis = 0;
  std::size_t hybrid_abis = 0, hybrid_cbis = 0;
  std::size_t reachable_abis = 0, reachable_cbis = 0;
  // Cumulative application in confidence order.
  std::size_t cum_ixp_abis = 0, cum_ixp_cbis = 0;
  std::size_t cum_hybrid_abis = 0, cum_hybrid_cbis = 0;
  std::size_t cum_reachable_abis = 0, cum_reachable_cbis = 0;
  std::size_t unconfirmed_abis = 0;
  std::size_t total_abis = 0, total_cbis = 0;
  std::size_t shifts_applied = 0;
};

class HeuristicVerifier {
 public:
  // `public_vp` is the vantage in the public Internet used by the
  // reachability heuristic (the paper used a node at the University of
  // Oregon).
  HeuristicVerifier(const Forwarder& forwarder, const Annotator& annotator,
                    OrgId subject_org, VantagePoint public_vp);

  // Applies the heuristics to the fabric in place (shifting mis-inferred
  // segments) and returns the Table 2 accounting.
  HeuristicCounts apply(Fabric& fabric);

  // Individual signals, exposed for tests and ablation benches.
  bool cbi_in_ixp(const Fabric& fabric, std::size_t segment_index) const;
  bool is_hybrid(const Fabric& fabric, Ipv4 address) const;
  bool reachable_from_public(Ipv4 address) const;

 private:
  const Forwarder* forwarder_;
  const Annotator* annotator_;
  OrgId subject_org_;
  VantagePoint public_vp_;
};

}  // namespace cloudmap
