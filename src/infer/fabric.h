// The inferred fabric: the aggregation of every candidate interconnection
// segment observed across the traceroute campaigns, deduplicated per
// (ABI, CBI) pair, plus the hop-adjacency map the hybrid heuristic needs.
// This is the central mutable state of the inference pipeline — verification
// (§5) edits it in place and annotations are recomputed against the freshest
// BGP snapshot.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "infer/annotate.h"
#include "infer/border.h"

namespace cloudmap {

// How a segment's ABI ended up confirmed (§5.1 heuristics, in confidence
// order) or corrected.
enum class Confirmation : std::uint8_t {
  kUnconfirmed = 0,
  kIxpClient,
  kHybrid,
  kReachability,
  kAliasRelabel,  // corrected/confirmed by the §5.2 alias-set check
};
const char* to_string(Confirmation c);

struct InferredSegment {
  Ipv4 abi;
  Ipv4 cbi;
  Ipv4 prior_abi;  // most recent observation's prior hop
  Ipv4 post_cbi;   // most recent observation's next hop
  int first_round = 1;
  std::unordered_set<std::uint32_t> regions;        // source regions
  std::unordered_set<std::uint32_t> dest_slash24s;  // /24s reached through it
  std::vector<Ipv4> sample_destinations;            // ≤ kMaxSampleDests
  Confirmation confirmation = Confirmation::kUnconfirmed;
  bool shifted = false;  // corrected to the preceding segment (Fig. 2)
  // Multi-pass evidence feeding the per-segment confidence score
  // (infer/confidence.h): how many candidate observations merged into this
  // segment, a bitmask of the campaign rounds that contributed (bit r-1 for
  // round r, rounds beyond 32 saturate into the top bit), and the summed
  // responding-hop density of the source traceroutes.
  std::uint32_t observations = 0;
  std::uint32_t rounds_mask = 0;
  double hop_density_sum = 0.0;
  // Owner attribution fallback: when the (corrected) CBI carries a
  // cloud-provided address, the peer AS is taken from the downstream hop or
  // the alias-set majority instead of the CBI's own annotation.
  Asn owner_hint;
};

class Fabric {
 public:
  static constexpr std::size_t kMaxSampleDests = 4;

  // Merge one observation; creates or updates the (abi, cbi) segment.
  void add_segment(const CandidateSegment& candidate, int round);

  // Record a consecutive-responding-hop adjacency (for hybrid detection).
  void add_adjacency(Ipv4 from, Ipv4 to);

  std::vector<InferredSegment>& segments() { return segments_; }
  const std::vector<InferredSegment>& segments() const { return segments_; }

  // Successors of an address across all traceroutes.
  const std::unordered_set<std::uint32_t>* successors_of(Ipv4 address) const;

  // Unique ABI / CBI address sets implied by the current segments.
  std::unordered_set<std::uint32_t> unique_abis() const;
  std::unordered_set<std::uint32_t> unique_cbis() const;

  // Segment indices grouped by ABI address.
  std::unordered_map<std::uint32_t, std::vector<std::size_t>> by_abi() const;
  // Segment indices grouped by CBI address.
  std::unordered_map<std::uint32_t, std::vector<std::size_t>> by_cbi() const;

  // Rewrite a segment in place to the preceding traceroute segment
  // (prior_abi becomes the ABI, the old ABI becomes the CBI). Deduplicates
  // against an existing (prior_abi, abi) segment when present. Returns false
  // when no prior hop is known (the shift cannot be applied).
  bool shift_segment(std::size_t index, Confirmation reason);

  // Rewrite a segment to the *following* traceroute segment (the old CBI
  // becomes the ABI, post_cbi the CBI) — the CBI→ABI correction of §5.2.
  // Returns false when no downstream hop is known.
  bool advance_segment(std::size_t index, Confirmation reason);

  // Drop segments flagged for removal (empty cbi) after edits.
  void compact();

 private:
  static std::uint64_t key(Ipv4 abi, Ipv4 cbi) {
    return (static_cast<std::uint64_t>(abi.value()) << 32) | cbi.value();
  }

  std::vector<InferredSegment> segments_;
  std::unordered_map<std::uint64_t, std::size_t> index_;
  std::unordered_map<std::uint32_t, std::unordered_set<std::uint32_t>>
      successors_;
};

}  // namespace cloudmap
