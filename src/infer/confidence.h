// Per-segment confidence (the robustness layer over §4/§5): a single
// [0, 1] score blending how a segment was confirmed with how much raw
// evidence supports it. The paper's verification heuristics (§5.1) already
// rank IXP-client > hybrid > reachability in trustworthiness; on top of
// that, a segment seen many times, in both campaign rounds, through clean
// (gap-free) traceroutes deserves more trust than a single observation
// pulled from a loss-riddled record — the same multi-evidence stance
// traIXroute takes for IXP crossings.
//
// The score is a pure function of integer observation counts and a
// deterministic density sum, so it is bit-identical at every thread count
// and across runs.
#pragma once

#include "infer/fabric.h"

namespace cloudmap {

struct SegmentConfidence {
  std::uint32_t observations = 0;  // candidate observations merged
  std::uint32_t rounds_seen = 0;   // distinct campaign rounds contributing
  double hop_density = 0.0;        // mean responding-hop density of sources
  double heuristic_weight = 0.0;   // §5 confirmation-class weight
  double score = 0.0;              // blended confidence in [0, 1]
};

// Trust weight of a §5 confirmation class, in [0, 1].
double confirmation_weight(Confirmation confirmation);

// Derive the confidence carried by one fabric segment. Weights:
//   0.35 · heuristic agreement  (confirmation_weight)
//   0.30 · observation count    (saturating: n / (n + 2))
//   0.15 · rounds seen          (min(rounds, 2) / 2)
//   0.20 · responding-hop density (mean over observations)
SegmentConfidence segment_confidence(const InferredSegment& segment);

// The blended score for raw inputs; exposed so the query layer can score
// snapshot segments without materialising an InferredSegment.
double confidence_score(std::uint32_t observations, std::uint32_t rounds_seen,
                        double hop_density, double heuristic_weight);

}  // namespace cloudmap
