#include "vpi/detector.h"

#include <algorithm>

namespace cloudmap {

VpiDetector::VpiDetector(const World& world, const Forwarder& forwarder,
                         const Annotator& annotator, std::uint64_t seed,
                         int threads)
    : world_(&world),
      forwarder_(&forwarder),
      annotator_(&annotator),
      seed_(seed),
      threads_(threads) {}

std::vector<Ipv4> VpiDetector::target_pool(const Campaign& campaign,
                                           const Annotator& annotator) {
  std::unordered_set<std::uint32_t> pool;
  for (const InferredSegment& segment : campaign.fabric().segments()) {
    const HopAnnotation a = annotator.annotate(segment.cbi);
    if (a.ixp) continue;  // public peerings cannot be VPIs
    pool.insert(segment.cbi.value());
    pool.insert(segment.cbi.value() + 1);  // the +1 neighbor address
    for (const Ipv4 dest : segment.sample_destinations)
      pool.insert(dest.value());
  }
  std::vector<std::uint32_t> ordered(pool.begin(), pool.end());
  std::sort(ordered.begin(), ordered.end());
  std::vector<Ipv4> out;
  out.reserve(ordered.size());
  for (const std::uint32_t address : ordered) out.emplace_back(address);
  return out;
}

VpiDetectionResult VpiDetector::detect(
    const Campaign& subject_campaign,
    const std::vector<CloudProvider>& foreign_clouds) {
  VpiDetectionResult result;

  // Subject's non-IXP CBI set (the candidate VPI endpoints).
  std::unordered_set<std::uint32_t> subject_cbis;
  for (const std::uint32_t cbi : subject_campaign.fabric().unique_cbis()) {
    if (!annotator_->annotate(Ipv4(cbi)).ixp) subject_cbis.insert(cbi);
  }
  result.subject_cbis = subject_campaign.fabric().unique_cbis().size();

  const std::vector<Ipv4> pool =
      target_pool(subject_campaign, *annotator_);
  result.target_pool = pool.size();

  telemetry_ = Telemetry{};
  std::unordered_set<std::uint32_t> cumulative;
  std::uint64_t seed = seed_;
  for (const CloudProvider provider : foreign_clouds) {
    CampaignConfig config;
    config.seed = ++seed;
    config.threads = threads_;
    Campaign foreign(*world_, *forwarder_, provider, config);
    foreign.set_metrics(metrics_);
    const RoundStats sweep = foreign.run_targets(*annotator_, pool, 1);
    ++telemetry_.foreign_campaigns;
    telemetry_.traceroutes += sweep.traceroutes;
    telemetry_.probes += sweep.probes;
    const PoolStats& pool_stats = foreign.last_pool_stats();
    telemetry_.pool.items += pool_stats.items;
    telemetry_.pool.wall_ns += pool_stats.wall_ns;
    telemetry_.pool.busy_ns += pool_stats.busy_ns;
    telemetry_.pool.workers =
        std::max(telemetry_.pool.workers, pool_stats.workers);

    VpiCloudResult cloud_result;
    cloud_result.provider = provider;
    for (const std::uint32_t cbi : foreign.fabric().unique_cbis()) {
      if (!subject_cbis.count(cbi)) continue;
      ++cloud_result.overlap;
      cumulative.insert(cbi);
    }
    cloud_result.cumulative_overlap = cumulative.size();
    result.per_cloud.push_back(cloud_result);
  }
  result.vpi_cbis = std::move(cumulative);
  return result;
}

}  // namespace cloudmap
