// VPI detection (§7.1): build the target pool (all non-IXP CBIs, their +1
// neighbor addresses, and the destinations whose traceroutes discovered each
// CBI), probe it from every region of each foreign cloud, run the same
// border inference with that cloud as the subject, and intersect the
// resulting CBI sets with Amazon's. A CBI visible from two or more clouds
// sits on a shared cloud-exchange port — a virtual private interconnection.
// The result is a lower bound by construction.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "infer/annotate.h"
#include "infer/campaign.h"
#include "obs/metrics.h"
#include "util/parallel.h"

namespace cloudmap {

struct VpiCloudResult {
  CloudProvider provider = CloudProvider::kNone;
  std::size_t overlap = 0;            // pairwise common CBIs with the subject
  std::size_t cumulative_overlap = 0; // union up to and including this cloud
};

struct VpiDetectionResult {
  std::vector<VpiCloudResult> per_cloud;       // in probing order
  std::unordered_set<std::uint32_t> vpi_cbis;  // all overlapping CBIs
  std::size_t subject_cbis = 0;                // denominator for Table 4 %
  std::size_t target_pool = 0;
};

class VpiDetector {
 public:
  // `threads` is forwarded to the foreign-cloud campaigns (same contract as
  // CampaignConfig::threads: 0 = hardware_concurrency, results identical
  // for every value).
  VpiDetector(const World& world, const Forwarder& forwarder,
              const Annotator& annotator, std::uint64_t seed = 31,
              int threads = 0);

  // `subject_campaign` must have completed its rounds. `foreign_clouds` are
  // probed in order (Table 4 reads Microsoft, Google, IBM, Oracle).
  VpiDetectionResult detect(const Campaign& subject_campaign,
                            const std::vector<CloudProvider>& foreign_clouds);

  // The §7.1 target pool for a finished campaign (exposed for tests).
  static std::vector<Ipv4> target_pool(const Campaign& campaign,
                                       const Annotator& annotator);

  // Attach a metrics registry (may be null): foreign campaigns then record
  // their sweeps into it, and detect() accumulates the telemetry below.
  void set_metrics(MetricsRegistry* metrics) { metrics_ = metrics; }

  // Probe accounting across all foreign-cloud sweeps of the last detect().
  // Counts are always exact; `pool` aggregates worker busy/wall time and is
  // populated only when an enabled metrics registry is attached.
  struct Telemetry {
    std::uint64_t traceroutes = 0;
    std::uint64_t probes = 0;
    std::uint64_t foreign_campaigns = 0;
    PoolStats pool;  // summed busy/wall ns; workers = max across sweeps
  };
  const Telemetry& telemetry() const noexcept { return telemetry_; }

 private:
  const World* world_;
  const Forwarder* forwarder_;
  const Annotator* annotator_;
  std::uint64_t seed_;
  int threads_;
  MetricsRegistry* metrics_ = nullptr;
  Telemetry telemetry_;
};

}  // namespace cloudmap
