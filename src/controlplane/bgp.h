// Gao-Rexford BGP route propagation over the world's AS-level graph, plus
// the collector infrastructure that turns propagation into the *partial* BGP
// view the paper works with (RouteViews/RIPE-style snapshots and the CAIDA
// AS-relationship dataset derived from them).
//
// Two products matter downstream:
//   * BgpSnapshot — prefix→origin-ASN announcements visible at collectors;
//     used for traceroute hop annotation (§3) and round-2 re-annotation.
//   * The set of AS links observed on collector paths; used to decide
//     whether an Amazon peering is "visible in BGP" (the B/nB attribute of
//     Table 5).
#pragma once

#include <atomic>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "net/flat_prefix_trie.h"
#include "net/ids.h"
#include "net/prefix.h"
#include "topology/world.h"
#include "util/thread_annotations.h"

namespace cloudmap {

// Relationship classes in route preference order (Gao-Rexford).
enum class RouteClass : std::uint8_t {
  kNone = 0,      // no route
  kProvider = 1,  // learned from a provider (least preferred)
  kPeer = 2,      // learned from a peer
  kCustomer = 3,  // learned from a customer (most preferred)
  kSelf = 4,      // origin
};

// One AS's best route toward a given origin AS.
struct RouteEntry {
  RouteClass route_class = RouteClass::kNone;
  std::uint8_t path_length = 0;  // AS hops to the origin
  AsId next_hop;                 // invalid for kSelf / kNone
  bool has_route() const noexcept { return route_class != RouteClass::kNone; }
};

// Route-cache traffic accounting (observability only — never feeds back
// into routing). A "miss" is a lookup that had to compute the table; every
// other lookup is a hit, including lookups that waited on another thread's
// in-flight fill.
struct BgpCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};

// Per-origin routing state for every AS in the world.
class BgpSimulator {
 public:
  explicit BgpSimulator(const World& world);

  // Best routes of every AS toward `origin` (vector indexed by AsId).
  // Computed once per origin and cached. Safe to call concurrently from
  // many threads — the cache fill is guarded, and a published table is
  // never mutated again.
  const std::vector<RouteEntry>& routes_to(AsId origin) const
      CM_EXCLUDES(fill_mutex_);

  // Batched variant: compute and publish the tables of every listed origin
  // under a single lock acquisition (one mutex round-trip instead of one
  // per cache miss). After it returns, routes_to() for each origin is a
  // lock-free hit. Counts one miss per table actually computed.
  void warm_routes(const std::vector<AsId>& origins) const
      CM_EXCLUDES(fill_mutex_);

  // The AS path from `from` toward `origin` (inclusive of both ends);
  // empty when no route exists.
  std::vector<AsId> path(AsId from, AsId origin) const;

  // True when `from` has any route toward `origin`.
  bool reachable(AsId from, AsId origin) const;

  const World& world() const noexcept { return *world_; }

  // Cumulative cache traffic since construction. Relaxed reads — exact once
  // the campaign threads have joined, approximate while they run.
  BgpCacheStats cache_stats() const {
    return BgpCacheStats{cache_hits_.load(std::memory_order_relaxed),
                         cache_misses_.load(std::memory_order_relaxed)};
  }

 private:
  void compute(AsId origin, std::vector<RouteEntry>& table) const
      CM_REQUIRES(fill_mutex_);
  // Read-side of the release/acquire publish protocol (below): deliberately
  // outside the lock analysis, safe only after cached_[origin] reads true
  // with acquire semantics.
  const std::vector<RouteEntry>& published_table(AsId origin) const
      CM_NO_THREAD_SAFETY_ANALYSIS {
    return cache_[origin.value];
  }

  const World* world_;
  // Lazily-filled per-origin cache. Writes are CM_GUARDED_BY fill_mutex_;
  // `cached_[origin]` is set with release semantics only after the table is
  // fully computed, and readers that observed it true with acquire semantics
  // may read the published table lock-free via published_table() — the one
  // documented CM_NO_THREAD_SAFETY_ANALYSIS exception, validated by the TSan
  // CI job (the campaign fans traceroutes out across worker threads, all of
  // which route here).
  mutable std::vector<std::vector<RouteEntry>> cache_
      CM_GUARDED_BY(fill_mutex_);
  mutable std::vector<std::atomic<bool>> cached_;
  mutable Mutex fill_mutex_;
  // Padded so the hot hit counter never false-shares with the fill state.
  alignas(64) mutable std::atomic<std::uint64_t> cache_hits_{0};
  alignas(64) mutable std::atomic<std::uint64_t> cache_misses_{0};
};

// A BGP snapshot as seen from a set of collector-feeding ASes: the prefixes
// that reach at least one feed, each mapped to its origin ASN, plus the AS
// links appearing on the feeds' best paths (the synthetic CAIDA AS-rel
// dataset).
struct BgpSnapshot {
  FlatPrefixTrie<Asn> origin_of;                // prefix → origin ASN
  std::unordered_set<std::uint64_t> as_links;   // canonical (lo,hi) ASN pairs

  static std::uint64_t link_key(Asn a, Asn b) {
    const std::uint32_t lo = a.value < b.value ? a.value : b.value;
    const std::uint32_t hi = a.value < b.value ? b.value : a.value;
    return (static_cast<std::uint64_t>(lo) << 32) | hi;
  }
  bool link_visible(Asn a, Asn b) const {
    return as_links.count(link_key(a, b)) > 0;
  }
};

struct SnapshotOptions {
  // Fraction of each AS's announced blocks withheld from this snapshot when
  // the block is flagged "intermittently announced" (drives the Table 1
  // WHOIS→BGP shift between rounds 1 and 2).
  bool include_intermittent = true;
  // Seed for selecting which prefixes are intermittent; the same seed yields
  // the same intermittent set so round-1/round-2 snapshots differ only by
  // `include_intermittent`.
  std::uint64_t intermittent_seed = 7;
  double intermittent_fraction = 0.22;
};

// Build a snapshot from the given collector feed ASes. A prefix appears if
// its origin's announcement propagates to at least one feed under
// Gao-Rexford export rules; an AS link appears if it lies on a feed's best
// path toward some origin.
//
// Cloud peering specifics: a cloud's prefixes propagate over an interconnect
// only as far as its export scope allows — VPI announcements stay between
// the two parties (never reach collectors); public-IXP and cross-connect
// peerings export into the client's customer cone. The AS link Amazon-X is
// therefore collector-visible only when X re-exports Amazon routes to a
// cone containing a feed, which is exactly the paper's B/nB distinction.
BgpSnapshot build_snapshot(const World& world, const BgpSimulator& sim,
                           const std::vector<AsId>& collector_feeds,
                           const SnapshotOptions& options = {});

// Default collector-feed selection: every tier-1 plus a sample of tier-2s
// (mirrors RouteViews/RIPE peering with large transit networks).
std::vector<AsId> default_collector_feeds(const World& world,
                                          std::uint64_t seed = 11,
                                          double tier2_fraction = 0.3);

// Customer-cone sizes, in /24 equivalents, for every AS (indexed by AsId):
// the "BGP /24" feature of Fig. 6.
std::vector<std::uint64_t> customer_cone_slash24s(const World& world);

}  // namespace cloudmap
