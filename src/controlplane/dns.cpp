#include "controlplane/dns.h"

#include <algorithm>
#include <cctype>

#include "util/rng.h"

namespace cloudmap {

namespace {

std::string lowercase_compact(const std::string& text) {
  std::string out;
  for (char ch : text)
    if (!std::isspace(static_cast<unsigned char>(ch)))
      out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(ch))));
  return out;
}

std::string lowercase(std::string text) {
  std::transform(text.begin(), text.end(), text.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return text;
}

}  // namespace

DnsRegistry DnsRegistry::from_world(const World& world,
                                    const DnsOptions& options) {
  DnsRegistry registry;
  Rng rng(options.seed);

  // Identify the true-VPI client interfaces so they can carry dx/vlan hints.
  std::unordered_map<std::uint32_t, bool> vpi_client_interface;
  for (const GroundTruthInterconnect& ic : world.interconnects) {
    if (ic.kind == PeeringKind::kVpi && !ic.private_address)
      vpi_client_interface[ic.client_interface.value] = true;
  }

  for (std::uint32_t i = 0; i < world.interfaces.size(); ++i) {
    const Interface& iface = world.interfaces[i];
    const Router& router = world.routers[iface.router.value];
    const AutonomousSystem& owner = world.ases[router.owner.value];
    if (owner.type == AsType::kCloud) continue;  // no ABI reverse names
    if (iface.address.is_private() || iface.address.is_shared()) continue;
    if (!rng.chance(options.coverage)) continue;

    MetroId metro = router.metro;
    if (rng.chance(options.wrong_location)) {
      metro = MetroId{
          static_cast<std::uint32_t>(rng.bounded(world.metros.size()))};
    }
    const Metro& m = world.metro(metro);

    std::string middle;
    const bool is_vpi = vpi_client_interface.count(i) > 0;
    if (is_vpi && rng.chance(options.dx_keyword_on_vpi)) {
      static const char* kDxStyles[] = {"dxvif", "dxcon", "awsdx", "aws-dx"};
      middle = std::string(kDxStyles[rng.bounded(4)]) + "-" +
               std::to_string(rng.bounded(0xffff));
    } else if (is_vpi && rng.chance(options.vlan_tag_on_vpi)) {
      middle = "vl-" + std::to_string(100 + rng.bounded(3900));
    } else {
      middle = "ae-" + std::to_string(rng.bounded(16));
    }

    // Two naming dialects: airport-code based and city-name based.
    std::string name;
    if (rng.chance(0.6)) {
      name = middle + "." + m.airport_code +
             lowercase(m.country).substr(0, 2) +
             std::to_string(1 + rng.bounded(9)) + "." +
             lowercase(m.country) + ".bb." + owner.name + ".net";
    } else {
      name = middle + "." + lowercase_compact(m.name) + ".core" +
             std::to_string(1 + rng.bounded(4)) + "." + owner.name + ".net";
    }
    registry.names_[iface.address.value()] = std::move(name);
  }
  return registry;
}

std::optional<std::string> DnsRegistry::name_of(Ipv4 address) const {
  const auto it = names_.find(address.value());
  if (it == names_.end()) return std::nullopt;
  return it->second;
}

std::optional<MetroId> parse_dns_location(const std::string& name,
                                          const World& world) {
  const std::string lower = lowercase(name);
  // Tokenize on dots and dashes; look for airport codes (as standalone
  // token prefixes, e.g. "atlus3") and compact city names.
  std::vector<std::string> tokens;
  std::string token;
  for (char ch : lower) {
    if (ch == '.' || ch == '-') {
      if (!token.empty()) tokens.push_back(token);
      token.clear();
    } else {
      token.push_back(ch);
    }
  }
  if (!token.empty()) tokens.push_back(token);

  for (std::uint32_t m = 0; m < world.metros.size(); ++m) {
    const std::string code = world.metros[m].airport_code;
    const std::string city = lowercase_compact(world.metros[m].name);
    for (const std::string& tok : tokens) {
      // Airport codes appear as a token prefix followed by region/sequence
      // characters ("atlus3"); require enough of a match to avoid noise.
      if (tok.size() >= 3 && tok.size() <= 8 && tok.compare(0, 3, code) == 0)
        return MetroId{m};
      if (tok == city) return MetroId{m};
    }
  }
  return std::nullopt;
}

bool dns_has_vlan_tag(const std::string& name) {
  const std::string lower = lowercase(name);
  const std::size_t pos = lower.find("vl-");
  if (pos == std::string::npos) return false;
  return pos + 3 < lower.size() &&
         std::isdigit(static_cast<unsigned char>(lower[pos + 3]));
}

bool dns_has_dx_keyword(const std::string& name) {
  const std::string lower = lowercase(name);
  return lower.find("dxvif") != std::string::npos ||
         lower.find("dxcon") != std::string::npos ||
         lower.find("awsdx") != std::string::npos ||
         lower.find("aws-dx") != std::string::npos;
}

}  // namespace cloudmap
