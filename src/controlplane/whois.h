// Synthetic WHOIS registry (RIR allocation database). The paper annotates
// the ~7% of public-space hops that no AS announced during the campaign by
// falling back to WHOIS ownership (§3); Amazon's interconnect /30s and most
// ABI addressing live in exactly this kind of allocated-but-unannounced
// space (Table 1's WHOIS columns).
#pragma once

#include <optional>

#include "net/flat_prefix_trie.h"
#include "net/ids.h"
#include "net/ipv4.h"
#include "topology/world.h"

namespace cloudmap {

class WhoisRegistry {
 public:
  // Build the registry from ground truth: every allocated block (announced
  // or not) is registered to its owner, the way RIR databases record
  // allocations regardless of routing. Coverage can be degraded to model
  // stale/missing records.
  static WhoisRegistry from_world(const World& world, double coverage = 1.0,
                                  std::uint64_t seed = 13);

  // ASN registered for the block containing `address` (nullopt if the
  // address is unallocated or the record is missing).
  std::optional<Asn> lookup(Ipv4 address) const;

  std::size_t record_count() const { return records_.size(); }

 private:
  FlatPrefixTrie<Asn> records_;
};

}  // namespace cloudmap
