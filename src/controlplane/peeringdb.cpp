#include "controlplane/peeringdb.h"

#include <algorithm>

#include "util/rng.h"

namespace cloudmap {

namespace {
const std::vector<Asn> kNoTenants;
const std::vector<ColoId> kNoColos;
const std::vector<IxpId> kNoIxps;
}  // namespace

PeeringDb PeeringDb::from_world(const World& world,
                                const PeeringDbOptions& options) {
  PeeringDb db;
  Rng rng(options.seed);

  for (std::uint32_t x = 0; x < world.ixps.size(); ++x) {
    db.ixp_by_prefix_.insert(world.ixps[x].peering_prefix, IxpId{x});
    db.ixp_prefixes_.emplace_back(IxpId{x}, world.ixps[x].peering_prefix);
  }
  db.ixp_by_prefix_.freeze();

  // Tenancies: an AS is a tenant of a colo when one of its routers sits in
  // the facility or it terminates an interconnect there. Listed with
  // self-reporting gaps.
  auto list_tenancy = [&](AsId as_id, ColoId colo) {
    if (!colo.valid()) return;
    const Asn asn = world.ases[as_id.value].asn;
    auto& tenants = db.tenants_by_colo_[colo.value];
    if (std::find(tenants.begin(), tenants.end(), asn) != tenants.end())
      return;
    if (!rng.chance(options.tenant_coverage)) return;
    tenants.push_back(asn);
    db.colos_by_asn_[asn.value].push_back(colo);
  };

  for (const Router& router : world.routers)
    if (router.colo.valid()) list_tenancy(router.owner, router.colo);
  for (const GroundTruthInterconnect& ic : world.interconnects) {
    if (ic.private_address) continue;  // invisible even to self-reporting
    list_tenancy(ic.client, ic.colo);
    list_tenancy(world.cloud_primary(ic.cloud), ic.colo);
  }

  // IXP participations and per-member LAN IP assignments.
  for (const GroundTruthInterconnect& ic : world.interconnects) {
    if (ic.kind != PeeringKind::kPublicIxp) continue;
    const ColoFacility& colo = world.colo(ic.colo);
    if (!colo.ixp.valid()) continue;
    if (!rng.chance(options.participant_coverage)) continue;
    const Asn asn = world.ases[ic.client.value].asn;
    db.lan_assignments_[world.interfaces[ic.client_interface.value]
                            .address.value()] = asn;
    db.lan_assignments_[world.interfaces[ic.cloud_interface.value]
                            .address.value()] =
        world.ases[world.cloud_primary(ic.cloud).value].asn;
    auto& list = db.ixps_by_asn_[asn.value];
    if (std::find(list.begin(), list.end(), colo.ixp) == list.end())
      list.push_back(colo.ixp);
    const Asn cloud_asn =
        world.ases[world.cloud_primary(ic.cloud).value].asn;
    auto& cloud_list = db.ixps_by_asn_[cloud_asn.value];
    if (std::find(cloud_list.begin(), cloud_list.end(), colo.ixp) ==
        cloud_list.end())
      cloud_list.push_back(colo.ixp);
  }

  return db;
}

std::optional<IxpId> PeeringDb::ixp_of(Ipv4 address) const {
  const IxpId* id = ixp_by_prefix_.lookup(address);
  if (id == nullptr) return std::nullopt;
  return *id;
}

std::optional<Asn> PeeringDb::lan_member(Ipv4 address) const {
  const auto it = lan_assignments_.find(address.value());
  if (it == lan_assignments_.end()) return std::nullopt;
  return it->second;
}

const std::vector<Asn>& PeeringDb::tenants(ColoId colo) const {
  const auto it = tenants_by_colo_.find(colo.value);
  return it == tenants_by_colo_.end() ? kNoTenants : it->second;
}

const std::vector<ColoId>& PeeringDb::facilities(Asn asn) const {
  const auto it = colos_by_asn_.find(asn.value);
  return it == colos_by_asn_.end() ? kNoColos : it->second;
}

const std::vector<IxpId>& PeeringDb::participations(Asn asn) const {
  const auto it = ixps_by_asn_.find(asn.value);
  return it == ixps_by_asn_.end() ? kNoIxps : it->second;
}

std::vector<MetroId> PeeringDb::metro_footprint(const World& world,
                                                Asn asn) const {
  std::unordered_set<std::uint32_t> metros;
  for (ColoId colo : facilities(asn))
    metros.insert(world.colo(colo).metro.value);
  for (IxpId ixp : participations(asn))
    for (MetroId metro : world.ixp(ixp).metros) metros.insert(metro.value);
  std::vector<MetroId> out;
  out.reserve(metros.size());
  for (std::uint32_t m : metros) out.push_back(MetroId{m});
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<MetroId> PeeringDb::cloud_metros(const World& world,
                                             CloudProvider provider) const {
  std::unordered_set<std::uint32_t> metros;
  // Published native-facility list (the AWS Direct Connect locations page).
  for (const ColoFacility& colo : world.colos)
    if (colo.is_native(provider)) metros.insert(colo.metro.value);
  // Plus PeeringDB-listed presence of the cloud's ASN.
  const Asn asn = world.ases[world.cloud_primary(provider).value].asn;
  for (MetroId metro : metro_footprint(world, asn)) metros.insert(metro.value);
  std::vector<MetroId> out;
  out.reserve(metros.size());
  for (std::uint32_t m : metros) out.push_back(MetroId{m});
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace cloudmap
