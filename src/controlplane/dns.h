// Synthetic reverse-DNS registry plus a DRoP-style name parser.
//
// Operators embed POP locations in interface names ("...atlnga05.us.bb.
// gin.ntt.net"), and AWS Direct Connect virtual interfaces often carry
// "dxvif"/VLAN markers. The generator-side synthesis writes names with the
// router's true metro (occasionally a stale/wrong one); the parser side
// recovers location hints using only public knowledge (airport codes, city
// names) — it is the basis of the DNS anchors (§6.1) and of the §7.3
// VPI-keyword evidence.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>

#include "net/ids.h"
#include "net/ipv4.h"
#include "topology/world.h"

namespace cloudmap {

struct DnsOptions {
  double coverage = 0.42;         // fraction of client interfaces with PTRs
  double wrong_location = 0.03;   // stale records embedding another metro
  double vlan_tag_on_vpi = 0.05;  // VPI interfaces carrying "vl-<tag>"
  double dx_keyword_on_vpi = 0.04;  // VPI interfaces carrying dxvif/dxcon
  std::uint64_t seed = 19;
};

class DnsRegistry {
 public:
  // Synthesize PTR records for client-owned interfaces. Cloud border
  // interfaces get none (the paper found no ABI reverse names).
  static DnsRegistry from_world(const World& world,
                                const DnsOptions& options = {});

  std::optional<std::string> name_of(Ipv4 address) const;
  std::size_t record_count() const { return names_.size(); }

 private:
  std::unordered_map<std::uint32_t, std::string> names_;
};

// --- parsing (uses only public geography knowledge) ---

// Extract a metro hint from a DNS name by matching airport codes and city
// names against the metro table. Returns nullopt when no token matches.
std::optional<MetroId> parse_dns_location(const std::string& name,
                                          const World& world);

// "vl-<digits>" VLAN markers.
bool dns_has_vlan_tag(const std::string& name);

// Direct-connect virtual-interface keywords: dxvif, dxcon, awsdx, aws-dx.
bool dns_has_dx_keyword(const std::string& name);

}  // namespace cloudmap
