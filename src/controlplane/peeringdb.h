// Synthetic PeeringDB / PCH / CAIDA-IXP datasets: IXP peering prefixes,
// IXP participant lists, and colo-facility tenant lists. The paper uses
// these for (i) marking hops on IXP LANs (§3), (ii) the single-colo/metro
// footprint anchors (§6.1), and (iii) the list of metros where Amazon is
// present (§6.2's coverage evaluation). Like the real database, coverage is
// self-reported and incomplete.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/flat_prefix_trie.h"
#include "net/ids.h"
#include "net/ipv4.h"
#include "topology/world.h"

namespace cloudmap {

struct PeeringDbOptions {
  double tenant_coverage = 0.82;       // chance a colo tenancy is listed
  double participant_coverage = 0.9;   // chance an IXP membership is listed
  std::uint64_t seed = 17;
};

class PeeringDb {
 public:
  static PeeringDb from_world(const World& world,
                              const PeeringDbOptions& options = {});

  // IXP whose peering LAN contains `address`, if any.
  std::optional<IxpId> ixp_of(Ipv4 address) const;

  // Member ASN assigned a specific IXP LAN address (PeeringDB publishes
  // per-member LAN IP assignments; traIXroute-style annotation keys on
  // them). nullopt for unlisted assignments.
  std::optional<Asn> lan_member(Ipv4 address) const;

  // All registered IXPs with their LAN prefixes.
  const std::vector<std::pair<IxpId, Prefix>>& ixp_prefixes() const {
    return ixp_prefixes_;
  }

  // Listed tenant ASNs of a colo facility.
  const std::vector<Asn>& tenants(ColoId colo) const;

  // Listed facilities of an ASN (reverse index).
  const std::vector<ColoId>& facilities(Asn asn) const;

  // Listed IXP participations of an ASN.
  const std::vector<IxpId>& participations(Asn asn) const;

  // Metros in which the ASN has any listed presence (facility or IXP).
  // Metro-footprint anchoring (§6.1) keys on the size of this set.
  std::vector<MetroId> metro_footprint(const World& world, Asn asn) const;

  // Metros where a given cloud provider has a listed presence — the
  // "Amazon is present in 74 metro areas" list of §6.2.
  std::vector<MetroId> cloud_metros(const World& world,
                                    CloudProvider provider) const;

 private:
  FlatPrefixTrie<IxpId> ixp_by_prefix_;
  std::vector<std::pair<IxpId, Prefix>> ixp_prefixes_;
  std::unordered_map<std::uint32_t, Asn> lan_assignments_;
  std::unordered_map<std::uint32_t, std::vector<Asn>> tenants_by_colo_;
  std::unordered_map<std::uint32_t, std::vector<ColoId>> colos_by_asn_;
  std::unordered_map<std::uint32_t, std::vector<IxpId>> ixps_by_asn_;
};

}  // namespace cloudmap
