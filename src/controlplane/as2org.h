// Synthetic CAIDA AS-to-Organization dataset. The paper maps every hop ASN
// to an ORG id so that traceroutes crossing several Amazon ASNs (AS7224,
// AS16509, AS14618, ...) are still recognized as "inside Amazon" when
// looking for the customer border hop (§3, §4.1).
#pragma once

#include <unordered_map>

#include "net/ids.h"
#include "topology/world.h"

namespace cloudmap {

class As2Org {
 public:
  static As2Org from_world(const World& world);

  // OrgId{0} (unknown) for unmapped ASNs — including Asn{0} itself.
  OrgId org_of(Asn asn) const;

  std::size_t size() const { return map_.size(); }

 private:
  std::unordered_map<std::uint32_t, OrgId> map_;
};

}  // namespace cloudmap
