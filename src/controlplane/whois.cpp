#include "controlplane/whois.h"

#include "util/rng.h"

namespace cloudmap {

WhoisRegistry WhoisRegistry::from_world(const World& world, double coverage,
                                        std::uint64_t seed) {
  WhoisRegistry registry;
  Rng rng(seed);
  world.prefix_owner.for_each([&](const Prefix& prefix, const AsId& owner) {
    // Private/shared space has no public WHOIS records.
    if (prefix.network().is_private() || prefix.network().is_shared()) return;
    if (coverage < 1.0 && !rng.chance(coverage)) return;
    registry.records_.insert(prefix, world.ases[owner.value].asn);
  });
  registry.records_.freeze();
  return registry;
}

std::optional<Asn> WhoisRegistry::lookup(Ipv4 address) const {
  const Asn* asn = records_.lookup(address);
  if (asn == nullptr) return std::nullopt;
  return *asn;
}

}  // namespace cloudmap
