#include "controlplane/as2org.h"

namespace cloudmap {

As2Org As2Org::from_world(const World& world) {
  As2Org dataset;
  for (const AutonomousSystem& as : world.ases)
    dataset.map_[as.asn.value] = as.org;
  return dataset;
}

OrgId As2Org::org_of(Asn asn) const {
  const auto it = map_.find(asn.value);
  return it == map_.end() ? OrgId{0} : it->second;
}

}  // namespace cloudmap
