// lint: hot-path
#include "controlplane/bgp.h"

#include <deque>

#include "util/rng.h"

namespace cloudmap {
namespace {

// Route preference: higher class wins, then shorter path, then lower
// next-hop id (deterministic tie-break).
bool improves(const RouteEntry& current, RouteClass cls, std::uint8_t length,
              AsId next_hop) {
  if (cls != current.route_class)
    return static_cast<int>(cls) > static_cast<int>(current.route_class);
  if (length != current.path_length) return length < current.path_length;
  return next_hop.value < current.next_hop.value;
}

bool is_intermittent(const Prefix& prefix, const SnapshotOptions& options) {
  if (options.intermittent_fraction <= 0.0) return false;
  std::uint64_t state = options.intermittent_seed ^
                        (static_cast<std::uint64_t>(prefix.network().value())
                         << 8) ^
                        prefix.length();
  const double roll =
      static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-53;
  return roll < options.intermittent_fraction;
}

// Route tables toward a cloud provider's prefixes: clients with a
// non-private interconnect learn a direct route; non-VPI clients re-export
// it into their customer cones (phase-3 style downward propagation).
std::vector<RouteEntry> cloud_route_table(const World& world,
                                          CloudProvider provider) {
  const std::size_t n = world.ases.size();
  std::vector<RouteEntry> table(n);
  const AsId cloud = world.cloud_primary(provider);
  table[cloud.value] = RouteEntry{RouteClass::kSelf, 0, AsId{}};

  std::deque<AsId> queue;
  for (const GroundTruthInterconnect& ic : world.interconnects) {
    if (ic.cloud != provider || ic.private_address) continue;
    RouteEntry& entry = table[ic.client.value];
    if (improves(entry, RouteClass::kPeer, 1, cloud)) {
      entry = RouteEntry{RouteClass::kPeer, 1, cloud};
      // Only non-VPI peerings re-export cloud routes downstream.
      if (ic.kind != PeeringKind::kVpi) queue.push_back(ic.client);
    }
  }
  // An AS holding both a VPI and a re-exporting peering still re-exports;
  // make sure every client with a non-VPI interconnect is queued.
  while (!queue.empty()) {
    const AsId u = queue.front();
    queue.pop_front();
    const RouteEntry& route = table[u.value];
    for (AsId customer : world.ases[u.value].customers) {
      RouteEntry& entry = table[customer.value];
      const std::uint8_t len =
          static_cast<std::uint8_t>(route.path_length + 1);
      if (improves(entry, RouteClass::kProvider, len, u)) {
        entry = RouteEntry{RouteClass::kProvider, len, u};
        queue.push_back(customer);
      }
    }
  }
  return table;
}

// Walk next hops from `from` toward the self entry; empty on no route.
std::vector<AsId> walk_path(const std::vector<RouteEntry>& table, AsId from) {
  std::vector<AsId> out;
  AsId current = from;
  for (int guard = 0; guard < 64; ++guard) {
    const RouteEntry& entry = table[current.value];
    if (!entry.has_route()) return {};
    out.push_back(current);
    if (entry.route_class == RouteClass::kSelf) return out;
    current = entry.next_hop;
  }
  return {};
}

}  // namespace

BgpSimulator::BgpSimulator(const World& world)
    : world_(&world),
      cache_(world.ases.size()),
      cached_(world.ases.size()) {}

const std::vector<RouteEntry>& BgpSimulator::routes_to(AsId origin) const {
  std::atomic<bool>& ready = cached_[origin.value];
  if (!ready.load(std::memory_order_acquire)) {
    const MutexLock lock(&fill_mutex_);
    if (!ready.load(std::memory_order_relaxed)) {
      cache_misses_.fetch_add(1, std::memory_order_relaxed);
      compute(origin, cache_[origin.value]);
      ready.store(true, std::memory_order_release);
    } else {
      // Another thread computed the table while we waited for the lock.
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
    }
    // Still under the lock: binding the return reference here keeps the
    // guarded access visible to -Wthread-safety.
    return cache_[origin.value];
  }
  cache_hits_.fetch_add(1, std::memory_order_relaxed);
  return published_table(origin);
}

void BgpSimulator::warm_routes(const std::vector<AsId>& origins) const {
  const MutexLock lock(&fill_mutex_);
  for (const AsId origin : origins) {
    std::atomic<bool>& ready = cached_[origin.value];
    if (ready.load(std::memory_order_relaxed)) continue;
    cache_misses_.fetch_add(1, std::memory_order_relaxed);
    compute(origin, cache_[origin.value]);
    ready.store(true, std::memory_order_release);
  }
}

void BgpSimulator::compute(AsId origin, std::vector<RouteEntry>& table) const {
  const auto& ases = world_->ases;
  table.assign(ases.size(), RouteEntry{});
  table[origin.value] = RouteEntry{RouteClass::kSelf, 0, AsId{}};

  // Phase 1: customer routes climb the provider hierarchy.
  std::deque<AsId> queue{origin};
  while (!queue.empty()) {
    const AsId u = queue.front();
    queue.pop_front();
    const RouteEntry route = table[u.value];
    if (route.route_class != RouteClass::kSelf &&
        route.route_class != RouteClass::kCustomer)
      continue;  // stale queue entry overwritten by a better class
    for (AsId provider : ases[u.value].providers) {
      const std::uint8_t len =
          static_cast<std::uint8_t>(route.path_length + 1);
      RouteEntry& entry = table[provider.value];
      if (improves(entry, RouteClass::kCustomer, len, u)) {
        entry = RouteEntry{RouteClass::kCustomer, len, u};
        queue.push_back(provider);
      }
    }
  }
  // Phase 2: customer/self routes are exported to peers (one lateral hop).
  for (std::uint32_t u = 0; u < ases.size(); ++u) {
    const RouteEntry route = table[u];
    if (route.route_class != RouteClass::kSelf &&
        route.route_class != RouteClass::kCustomer)
      continue;
    for (AsId peer : ases[u].peers) {
      const std::uint8_t len =
          static_cast<std::uint8_t>(route.path_length + 1);
      RouteEntry& entry = table[peer.value];
      if (improves(entry, RouteClass::kPeer, len, AsId{u}))
        entry = RouteEntry{RouteClass::kPeer, len, AsId{u}};
    }
  }
  // Phase 3: every routed AS exports its best route to its customers.
  for (std::uint32_t u = 0; u < ases.size(); ++u)
    if (table[u].has_route()) queue.push_back(AsId{u});
  while (!queue.empty()) {
    const AsId u = queue.front();
    queue.pop_front();
    const RouteEntry route = table[u.value];
    for (AsId customer : ases[u.value].customers) {
      const std::uint8_t len =
          static_cast<std::uint8_t>(route.path_length + 1);
      RouteEntry& entry = table[customer.value];
      if (improves(entry, RouteClass::kProvider, len, u)) {
        entry = RouteEntry{RouteClass::kProvider, len, u};
        queue.push_back(customer);
      }
    }
  }
}

std::vector<AsId> BgpSimulator::path(AsId from, AsId origin) const {
  return walk_path(routes_to(origin), from);
}

bool BgpSimulator::reachable(AsId from, AsId origin) const {
  return routes_to(origin)[from.value].has_route();
}

std::vector<AsId> default_collector_feeds(const World& world,
                                          std::uint64_t seed,
                                          double tier2_fraction) {
  Rng rng(seed);
  std::vector<AsId> feeds;
  for (std::uint32_t i = 0; i < world.ases.size(); ++i) {
    if (world.ases[i].type == AsType::kTier1) feeds.push_back(AsId{i});
    else if (world.ases[i].type == AsType::kTier2 &&
             rng.chance(tier2_fraction))
      feeds.push_back(AsId{i});
  }
  return feeds;
}

BgpSnapshot build_snapshot(const World& world, const BgpSimulator& sim,
                           const std::vector<AsId>& collector_feeds,
                           const SnapshotOptions& options) {
  BgpSnapshot snapshot;

  // One lock round-trip for every table this snapshot will read.
  std::vector<AsId> origins;
  for (std::uint32_t o = 0; o < world.ases.size(); ++o) {
    const AutonomousSystem& origin = world.ases[o];
    if (origin.type != AsType::kCloud && !origin.announced_prefixes.empty())
      origins.push_back(AsId{o});
  }
  sim.warm_routes(origins);

  auto add_path_links = [&](const std::vector<AsId>& path) {
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      snapshot.as_links.insert(BgpSnapshot::link_key(
          world.ases[path[i].value].asn, world.ases[path[i + 1].value].asn));
    }
  };

  // Non-cloud origins: visible when any feed holds a route.
  for (std::uint32_t o = 0; o < world.ases.size(); ++o) {
    const AutonomousSystem& origin = world.ases[o];
    if (origin.type == AsType::kCloud) continue;
    if (origin.announced_prefixes.empty()) continue;
    const auto& table = sim.routes_to(AsId{o});
    bool visible = false;
    for (AsId feed : collector_feeds) {
      if (!table[feed.value].has_route()) continue;
      visible = true;
      add_path_links(walk_path(table, feed));
    }
    if (!visible) continue;
    for (const Prefix& prefix : origin.announced_prefixes) {
      if (!options.include_intermittent && is_intermittent(prefix, options))
        continue;
      snapshot.origin_of.insert(prefix, origin.asn);
    }
  }

  // Cloud origins: direct peer routes at clients, re-export by non-VPI
  // peerings only.
  for (int p = 1; p < static_cast<int>(kCloudProviderCount); ++p) {
    const CloudProvider provider = static_cast<CloudProvider>(p);
    if (world.cloud_ases[p].empty()) continue;
    const auto table = cloud_route_table(world, provider);
    bool visible = false;
    for (AsId feed : collector_feeds) {
      if (!table[feed.value].has_route()) continue;
      visible = true;
      add_path_links(walk_path(table, feed));
    }
    if (!visible) continue;
    const AsId primary = world.cloud_primary(provider);
    for (const Prefix& prefix : world.ases[primary.value].announced_prefixes)
      snapshot.origin_of.insert(prefix, world.ases[primary.value].asn);
  }

  snapshot.origin_of.freeze();
  return snapshot;
}

std::vector<std::uint64_t> customer_cone_slash24s(const World& world) {
  const std::size_t n = world.ases.size();
  std::vector<std::uint64_t> cones(n, 0);
  for (std::uint32_t a = 0; a < n; ++a) {
    // BFS over the customer edges, counting /24 equivalents once per AS.
    std::uint64_t total = 0;
    std::vector<bool> seen(n, false);
    std::deque<AsId> queue{AsId{a}};
    seen[a] = true;
    while (!queue.empty()) {
      const AsId u = queue.front();
      queue.pop_front();
      for (const Prefix& prefix : world.ases[u.value].announced_prefixes) {
        total += prefix.length() >= 24
                     ? 1
                     : (std::uint64_t{1} << (24 - prefix.length()));
      }
      for (AsId customer : world.ases[u.value].customers) {
        if (!seen[customer.value]) {
          seen[customer.value] = true;
          queue.push_back(customer);
        }
      }
    }
    cones[a] = total;
  }
  return cones;
}

}  // namespace cloudmap
