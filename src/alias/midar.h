// MIDAR-style alias resolution (§5.2). Routers expose one shared,
// monotonically increasing IP-ID counter across all their interfaces; the
// resolver samples candidate interfaces in synchronized rounds from many
// vantage regions, estimates each interface's counter velocity and
// intercept, and groups interfaces whose counter time-series are mutually
// consistent. Sets discovered from different regions merge through shared
// members (union-find), as in the paper.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "dataplane/forwarding.h"
#include "dataplane/vantage.h"
#include "net/ipv4.h"
#include "util/rng.h"

namespace cloudmap {

struct AliasOptions {
  int rounds = 10;               // synchronized sampling rounds
  double round_interval_s = 30;  // wall time between rounds
  // Compatibility bounds. With ~10 samples over 270 s, the line fit's
  // velocity error is far below 0.5% and the intercept error a few counts,
  // so these bounds keep same-router interfaces together while making
  // cross-router collisions (same velocity AND same phase) rare — MIDAR's
  // monotonic-bounds test has the same character.
  double velocity_tolerance = 0.005;  // relative velocity mismatch allowed
  double intercept_slack = 40.0;      // max counter offset between aliases
  double ipid_noise_mean = 4.0;       // cross-traffic increments per sample
  std::uint64_t seed = 23;
};

struct AliasSets {
  // Each set lists member addresses (size >= 2).
  std::vector<std::vector<Ipv4>> sets;
  // Address → index into `sets` (absent when the interface is in no set).
  std::unordered_map<std::uint32_t, std::size_t> set_of;

  std::size_t interfaces_in_sets() const {
    std::size_t total = 0;
    for (const auto& set : sets) total += set.size();
    return total;
  }
};

class MidarResolver {
 public:
  MidarResolver(const Forwarder& forwarder, AliasOptions options = {});

  // Probe each target address from every vantage point that can reach it and
  // infer alias sets. Targets that never respond contribute nothing.
  AliasSets resolve(const std::vector<Ipv4>& targets,
                    const std::vector<VantagePoint>& vps);

 private:
  const Forwarder* forwarder_;
  AliasOptions options_;
  Rng rng_;
};

}  // namespace cloudmap
