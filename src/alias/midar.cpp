#include "alias/midar.h"

#include <algorithm>
#include <cmath>

#include "util/union_find.h"

namespace cloudmap {

namespace {

// Least-squares line fit over (t, value) samples; the counter model is
// value(t) = intercept + velocity * t.
struct LineFit {
  double velocity = 0.0;
  double intercept = 0.0;
};

LineFit fit_line(const std::vector<std::pair<double, double>>& samples) {
  const double n = static_cast<double>(samples.size());
  double sum_t = 0.0;
  double sum_v = 0.0;
  double sum_tt = 0.0;
  double sum_tv = 0.0;
  for (const auto& [t, v] : samples) {
    sum_t += t;
    sum_v += v;
    sum_tt += t * t;
    sum_tv += t * v;
  }
  LineFit fit;
  const double denom = n * sum_tt - sum_t * sum_t;
  if (denom != 0.0) {
    fit.velocity = (n * sum_tv - sum_t * sum_v) / denom;
    fit.intercept = (sum_v - fit.velocity * sum_t) / n;
  }
  return fit;
}

}  // namespace

MidarResolver::MidarResolver(const Forwarder& forwarder, AliasOptions options)
    : forwarder_(&forwarder), options_(options), rng_(options.seed) {}

AliasSets MidarResolver::resolve(const std::vector<Ipv4>& targets,
                                 const std::vector<VantagePoint>& vps) {
  const World& world = forwarder_->world();

  // Per-target unwrapped IP-ID samples (t seconds, counter value).
  struct TargetState {
    Ipv4 address;
    std::vector<std::pair<double, double>> samples;
  };
  std::vector<TargetState> states;
  states.reserve(targets.size());
  for (const Ipv4 target : targets)
    states.push_back(TargetState{target, {}});

  // Reachability of each target from any vantage point, computed once.
  std::vector<bool> probeable(states.size(), false);
  for (std::size_t i = 0; i < states.size(); ++i) {
    const InterfaceId iface = world.find_interface(states[i].address);
    if (!iface.valid()) continue;
    if (!world.interface(iface).responds_to_alias_probes) continue;
    const Router& router = world.router(world.interface(iface).router);
    if (router.reply_policy == ReplyPolicy::kSilent) continue;
    for (const VantagePoint& vp : vps) {
      if (forwarder_->rtt_to_interface(vp, iface)) {
        probeable[i] = true;
        break;
      }
    }
  }

  // Synchronized rounds: in round r (wall time r * interval) every reachable
  // target is sampled once. The sampled value is the router's shared 16-bit
  // counter plus cross-traffic noise; unwrapping across rounds is exact
  // because velocity * interval < 2^16.
  for (int round = 0; round < options_.rounds; ++round) {
    const double t = static_cast<double>(round) * options_.round_interval_s;
    for (std::size_t i = 0; i < states.size(); ++i) {
      if (!probeable[i]) continue;
      TargetState& state = states[i];
      const InterfaceId iface = world.find_interface(state.address);
      const Router& router = world.router(world.interface(iface).router);
      if (!rng_.chance(router.response_probability)) continue;
      const double noise = rng_.exponential(options_.ipid_noise_mean);
      const double value = static_cast<double>(router.ipid_base % 65536) +
                           router.ipid_velocity * t + noise;
      state.samples.emplace_back(t, value);
    }
  }

  // Fit each sufficiently-sampled target.
  struct Fitted {
    std::size_t target_index;
    LineFit fit;
  };
  std::vector<Fitted> fitted;
  for (std::size_t i = 0; i < states.size(); ++i) {
    if (states[i].samples.size() < 3) continue;
    fitted.push_back(Fitted{i, fit_line(states[i].samples)});
  }

  // Pair interfaces whose velocity and intercept agree. Sorting by velocity
  // keeps the comparison window small (MIDAR's sliding-window idea).
  std::sort(fitted.begin(), fitted.end(),
            [](const Fitted& a, const Fitted& b) {
              return a.fit.velocity < b.fit.velocity;
            });
  UnionFind merged(states.size());
  for (std::size_t i = 0; i < fitted.size(); ++i) {
    for (std::size_t j = i + 1; j < fitted.size(); ++j) {
      const double vi = fitted[i].fit.velocity;
      const double vj = fitted[j].fit.velocity;
      const double scale = std::max(std::abs(vi), std::abs(vj));
      if (scale <= 0.0) break;
      if ((vj - vi) / scale > options_.velocity_tolerance) break;  // sorted
      if (std::abs(fitted[i].fit.intercept - fitted[j].fit.intercept) <=
          options_.intercept_slack) {
        merged.unite(fitted[i].target_index, fitted[j].target_index);
      }
    }
  }

  // Materialize sets of size >= 2.
  std::unordered_map<std::size_t, std::vector<std::size_t>> groups;
  for (const Fitted& f : fitted)
    groups[merged.find(f.target_index)].push_back(f.target_index);

  AliasSets result;
  for (auto& [root, members] : groups) {
    if (members.size() < 2) continue;
    std::sort(members.begin(), members.end());
    std::vector<Ipv4> set;
    set.reserve(members.size());
    for (const std::size_t index : members) {
      set.push_back(states[index].address);
      result.set_of[states[index].address.value()] = result.sets.size();
    }
    result.sets.push_back(std::move(set));
  }
  return result;
}

}  // namespace cloudmap
