// Format v3 "flat fabric" section: the on-disk-is-in-memory layout.
//
// A v3 snapshot stores, next to the meta section, one section (id 7) whose
// payload is a single relocatable blob laid out exactly as the query layer
// wants it in memory: fixed-width little-endian POD records, 8-byte aligned
// where they carry doubles, with every cross-reference expressed as a
// {offset, length} span instead of a pointer. mmap the file, check CRCs,
// and a FabricView (query/fabric_view.h) serves queries straight out of the
// page cache — no decode pass, no per-segment allocation.
//
// Blob layout (all offsets are byte offsets from the blob start; arrays are
// emitted in descending alignment so no element is ever misaligned):
//
//   V3Directory          one header struct, offset 0, magic "CMF3"
//   V3Segment[]          80-byte segment records (8-aligned: two doubles)
//   V3StageReport[]      112-byte per-stage metrics records
//   V3Tally[]            16-byte (name span into string table, f64 value)
//   V3Pin[]              16-byte metro pins
//   V3Pair[]             8-byte regional fallback (address, region)
//   V3TrieEntry[]        16-byte LPM rows, grouped by prefix length via
//                        V3Directory::trie_by_len, each group sorted by
//                        network address for binary search
//   V3KeySpan[]          by_peer: (peer ASN, segment-index span), key-sorted
//   V3KeySpan[]          by_metro: (metro, pinned-address span), key-sorted
//   V3Span[]             alias sets (member-address spans into the pool)
//   u32[]                the shared index pool every span points into
//   char[]               string table (tally names), byte offsets
//
// The index arrays are *derived* data: the encoder recomputes them from the
// canonical segment order with exactly the semantics of the FabricIndex
// constructor, so a v3 file re-saves byte-identically after a load and a
// FabricView answers every query bit-identically to a FabricIndex built
// from the same snapshot (both are enforced by tests).
//
// The layout is little-endian by definition; validate_flat_fabric() rejects
// the zero-copy path on a big-endian host (the copying loader in
// io/snapshot.cpp has the same guard, so behaviour is uniform).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "query/snapshot.h"

namespace cloudmap::snapv3 {

// "CMF3" as a little-endian u32.
inline constexpr std::uint32_t kFlatFabricMagic = 0x33464D43u;

struct V3Span {
  std::uint32_t off = 0;  // u32 index into the pool (not bytes)
  std::uint32_t len = 0;
};
static_assert(sizeof(V3Span) == 8);

// One segment, fixed 80 bytes. Field meanings mirror SnapshotSegment
// (query/snapshot.h); `flags` packs shifted|ixp|vpi as bits 0|1|2.
struct V3Segment {
  std::uint32_t abi = 0;
  std::uint32_t cbi = 0;
  std::uint32_t prior_abi = 0;
  std::uint32_t post_cbi = 0;
  std::int32_t first_round = 0;
  std::uint8_t confirmation = 0;
  std::uint8_t flags = 0;
  std::uint8_t group = 0;
  std::uint8_t pad0 = 0;
  std::uint32_t owner_hint = 0;
  std::uint32_t peer_asn = 0;
  std::uint32_t peer_org = 0;
  std::uint32_t observations = 0;
  std::uint32_t rounds_mask = 0;
  V3Span regions;
  V3Span dest_slash24s;
  std::uint32_t pad1 = 0;
  double hop_density = 0.0;
  double confidence = 0.0;
};
static_assert(sizeof(V3Segment) == 80);
static_assert(offsetof(V3Segment, hop_density) == 64);

struct V3StageReport {
  std::uint8_t id = 0;
  std::uint8_t pad0[3] = {};
  std::int32_t threads = 0;
  std::uint32_t workers = 0;
  std::uint32_t tally_off = 0;  // index into the V3Tally array
  std::uint32_t tally_len = 0;
  std::uint32_t pad1 = 0;
  std::uint64_t targets = 0;
  std::uint64_t traceroutes = 0;
  std::uint64_t probes = 0;
  std::uint64_t bgp_cache_hits = 0;
  std::uint64_t bgp_cache_misses = 0;
  std::uint64_t retries = 0;
  std::uint64_t backoff_waits = 0;
  std::uint64_t backoff_ticks = 0;
  std::uint64_t recovered_targets = 0;
  double wall_ms = 0.0;
  double worker_utilization = 0.0;
};
static_assert(sizeof(V3StageReport) == 112);
static_assert(offsetof(V3StageReport, targets) == 24);

struct V3Tally {
  std::uint32_t name_off = 0;  // byte offset into the string table
  std::uint32_t name_len = 0;
  double value = 0.0;
};
static_assert(sizeof(V3Tally) == 16);

struct V3Pin {
  std::uint32_t address = 0;
  std::uint32_t metro = 0;
  std::uint8_t rule = 0;
  std::uint8_t anchor_source = 0;
  std::uint16_t pad0 = 0;
  std::int32_t round = 0;
};
static_assert(sizeof(V3Pin) == 16);

struct V3Pair {  // regional fallback entry
  std::uint32_t address = 0;
  std::uint32_t region = 0;
};
static_assert(sizeof(V3Pair) == 8);

// One LPM row. `flags` packs is_interface|abi|cbi as bits 0|1|2; the
// segment list is ascending and deduplicated, exactly as the FabricIndex
// trie stores it.
struct V3TrieEntry {
  std::uint32_t network = 0;  // masked to the group's prefix length
  std::uint8_t flags = 0;
  std::uint8_t plen = 0;
  std::uint16_t pad0 = 0;
  V3Span segments;
};
static_assert(sizeof(V3TrieEntry) == 16);

struct V3KeySpan {
  std::uint32_t key = 0;
  V3Span span;
};
static_assert(sizeof(V3KeySpan) == 12);

struct V3Directory {
  std::uint32_t magic = kFlatFabricMagic;
  std::uint32_t blob_size = 0;
  std::uint32_t segments_off = 0, segment_count = 0;
  std::uint32_t reports_off = 0, report_count = 0;
  std::uint32_t tallies_off = 0, tally_count = 0;
  std::uint32_t pins_off = 0, pin_count = 0;
  std::uint32_t regional_off = 0, regional_count = 0;
  std::uint32_t trie_off = 0, trie_count = 0;
  std::uint32_t by_peer_off = 0, by_peer_count = 0;
  std::uint32_t by_metro_off = 0, by_metro_count = 0;
  std::uint32_t alias_off = 0, alias_count = 0;
  std::uint32_t pool_off = 0, pool_count = 0;      // count in u32 units
  std::uint32_t strings_off = 0, strings_len = 0;  // length in bytes
  V3Span ixp;            // IXP segment indices, ascending
  V3Span vpi;            // VPI segment indices, ascending
  V3Span peer_asns;      // peer ASNs present, ascending (0 excluded)
  V3Span pinned_metros;  // metros with >= 1 pin, ascending
  V3Span conf_order;     // all segment indices, confidence desc, index asc
  V3Span trie_by_len[33];  // per-prefix-length groups (entry index, count)
};
static_assert(sizeof(V3Directory) == 400);
static_assert(offsetof(V3Directory, ixp) == 96);
static_assert(offsetof(V3Directory, trie_by_len) == 136);

// Typed pointers into a validated blob. Pointers for empty arrays still lie
// within (or one past) the blob, so span arithmetic never leaves it.
struct V3View {
  const V3Directory* dir = nullptr;
  const V3Segment* segments = nullptr;
  const V3StageReport* reports = nullptr;
  const V3Tally* tallies = nullptr;
  const V3Pin* pins = nullptr;
  const V3Pair* regional = nullptr;
  const V3TrieEntry* trie = nullptr;
  const V3KeySpan* by_peer = nullptr;
  const V3KeySpan* by_metro = nullptr;
  const V3Span* alias_sets = nullptr;
  const std::uint32_t* pool = nullptr;
  const char* strings = nullptr;

  // `blob` must be 8-byte aligned and already validated.
  static V3View over(const unsigned char* blob);
};

// Serialize a *canonical* snapshot (see canonicalize()) into one flat blob.
// Deterministic: equal snapshots produce equal bytes.
std::string encode_flat_fabric(const RunSnapshot& canonical);

// Full structural validation of a blob: magic, directory bounds, alignment,
// span containment, sort invariants, enum/score ranges, zero padding. The
// blob must be 8-byte aligned. Returns false (with a one-line diagnostic)
// on any violation — after it passes, a V3View can be walked without any
// further bounds checks.
bool validate_flat_fabric(const unsigned char* blob, std::size_t size,
                          std::string* error);

// Expand a validated blob back into a RunSnapshot (the copying load path
// for v3 files). Collections come back in canonical order, so a re-save is
// byte-identical. Does not touch meta fields (seed/threads/subject).
void decode_flat_fabric(const unsigned char* blob, RunSnapshot& out);

}  // namespace cloudmap::snapv3
