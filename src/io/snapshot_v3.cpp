#include "io/snapshot_v3.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <vector>

#include "io/wire.h"
#include "obs/stage_report.h"

namespace cloudmap::snapv3 {

namespace {

constexpr std::uint64_t align8(std::uint64_t n) {
  return (n + 7) & ~std::uint64_t{7};
}

// --- encoder --------------------------------------------------------------
//
// The blob is assembled as typed arrays first, then serialized field by
// field through wire::put_* so the bytes are little-endian on any host.
// Every derived index replicates the FabricIndex constructor: canonical
// (abi, cbi) segment order drives per-key lists (ascending, deduplicated),
// keys are collected and sorted, and the LPM rows accumulate roles.

void emit_span(std::string& out, const V3Span& s) {
  wire::put_u32(out, s.off);
  wire::put_u32(out, s.len);
}

void emit_segment(std::string& out, const V3Segment& g) {
  wire::put_u32(out, g.abi);
  wire::put_u32(out, g.cbi);
  wire::put_u32(out, g.prior_abi);
  wire::put_u32(out, g.post_cbi);
  wire::put_i32(out, g.first_round);
  wire::put_u8(out, g.confirmation);
  wire::put_u8(out, g.flags);
  wire::put_u8(out, g.group);
  wire::put_u8(out, g.pad0);
  wire::put_u32(out, g.owner_hint);
  wire::put_u32(out, g.peer_asn);
  wire::put_u32(out, g.peer_org);
  wire::put_u32(out, g.observations);
  wire::put_u32(out, g.rounds_mask);
  emit_span(out, g.regions);
  emit_span(out, g.dest_slash24s);
  wire::put_u32(out, g.pad1);
  wire::put_f64(out, g.hop_density);
  wire::put_f64(out, g.confidence);
}

void emit_report(std::string& out, const V3StageReport& r) {
  wire::put_u8(out, r.id);
  wire::put_u8(out, 0);
  wire::put_u8(out, 0);
  wire::put_u8(out, 0);
  wire::put_i32(out, r.threads);
  wire::put_u32(out, r.workers);
  wire::put_u32(out, r.tally_off);
  wire::put_u32(out, r.tally_len);
  wire::put_u32(out, r.pad1);
  wire::put_u64(out, r.targets);
  wire::put_u64(out, r.traceroutes);
  wire::put_u64(out, r.probes);
  wire::put_u64(out, r.bgp_cache_hits);
  wire::put_u64(out, r.bgp_cache_misses);
  wire::put_u64(out, r.retries);
  wire::put_u64(out, r.backoff_waits);
  wire::put_u64(out, r.backoff_ticks);
  wire::put_u64(out, r.recovered_targets);
  wire::put_f64(out, r.wall_ms);
  wire::put_f64(out, r.worker_utilization);
}

// Group a (key, value) list — already stable-sorted by key — into key spans
// whose value runs are appended to the pool.
std::vector<V3KeySpan> group_pairs(
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& pairs,
    std::vector<std::uint32_t>& pool) {
  std::vector<V3KeySpan> out;
  std::size_t i = 0;
  while (i < pairs.size()) {
    V3KeySpan entry;
    entry.key = pairs[i].first;
    entry.span.off = static_cast<std::uint32_t>(pool.size());
    std::size_t j = i;
    while (j < pairs.size() && pairs[j].first == entry.key) {
      pool.push_back(pairs[j].second);
      ++j;
    }
    entry.span.len = static_cast<std::uint32_t>(j - i);
    out.push_back(entry);
    i = j;
  }
  return out;
}

V3Span pool_append(std::vector<std::uint32_t>& pool,
                   const std::vector<std::uint32_t>& values) {
  V3Span span;
  span.off = static_cast<std::uint32_t>(pool.size());
  span.len = static_cast<std::uint32_t>(values.size());
  pool.insert(pool.end(), values.begin(), values.end());
  return span;
}

}  // namespace

V3View V3View::over(const unsigned char* blob) {
  V3View v;
  v.dir = reinterpret_cast<const V3Directory*>(blob);
  v.segments = reinterpret_cast<const V3Segment*>(blob + v.dir->segments_off);
  v.reports =
      reinterpret_cast<const V3StageReport*>(blob + v.dir->reports_off);
  v.tallies = reinterpret_cast<const V3Tally*>(blob + v.dir->tallies_off);
  v.pins = reinterpret_cast<const V3Pin*>(blob + v.dir->pins_off);
  v.regional = reinterpret_cast<const V3Pair*>(blob + v.dir->regional_off);
  v.trie = reinterpret_cast<const V3TrieEntry*>(blob + v.dir->trie_off);
  v.by_peer = reinterpret_cast<const V3KeySpan*>(blob + v.dir->by_peer_off);
  v.by_metro = reinterpret_cast<const V3KeySpan*>(blob + v.dir->by_metro_off);
  v.alias_sets = reinterpret_cast<const V3Span*>(blob + v.dir->alias_off);
  v.pool = reinterpret_cast<const std::uint32_t*>(blob + v.dir->pool_off);
  v.strings = reinterpret_cast<const char*>(blob + v.dir->strings_off);
  return v;
}

std::string encode_flat_fabric(const RunSnapshot& canonical) {
  const RunSnapshot& s = canonical;
  const auto seg_count = static_cast<std::uint32_t>(s.segments.size());

  std::vector<std::uint32_t> pool;
  std::string strings;

  // Segment records (regions/dests spans land in the pool first, so their
  // layout only depends on the segment list).
  std::vector<V3Segment> segments;
  segments.reserve(seg_count);
  for (const SnapshotSegment& seg : s.segments) {
    V3Segment g;
    g.abi = seg.abi.value();
    g.cbi = seg.cbi.value();
    g.prior_abi = seg.prior_abi.value();
    g.post_cbi = seg.post_cbi.value();
    g.first_round = seg.first_round;
    g.confirmation = static_cast<std::uint8_t>(seg.confirmation);
    g.flags = static_cast<std::uint8_t>((seg.shifted ? 1 : 0) |
                                        (seg.ixp ? 2 : 0) |
                                        (seg.vpi ? 4 : 0));
    g.group = seg.group;
    g.owner_hint = seg.owner_hint.value;
    g.peer_asn = seg.peer_asn.value;
    g.peer_org = seg.peer_org.value;
    g.observations = seg.observations;
    g.rounds_mask = seg.rounds_mask;
    g.regions = pool_append(pool, seg.regions);
    g.dest_slash24s = pool_append(pool, seg.dest_slash24s);
    g.hop_density = seg.hop_density;
    g.confidence = seg.confidence;
    segments.push_back(g);
  }

  // Stage reports and their tallies; names go to the string table.
  std::vector<V3StageReport> reports;
  std::vector<V3Tally> tallies;
  reports.reserve(s.stage_reports.size());
  for (const StageReport& report : s.stage_reports) {
    V3StageReport r;
    r.id = static_cast<std::uint8_t>(report.id);
    r.threads = report.threads;
    r.workers = report.workers;
    r.tally_off = static_cast<std::uint32_t>(tallies.size());
    r.tally_len = static_cast<std::uint32_t>(report.tallies.size());
    r.targets = report.targets;
    r.traceroutes = report.traceroutes;
    r.probes = report.probes;
    r.bgp_cache_hits = report.bgp_cache_hits;
    r.bgp_cache_misses = report.bgp_cache_misses;
    r.retries = report.retries;
    r.backoff_waits = report.backoff_waits;
    r.backoff_ticks = report.backoff_ticks;
    r.recovered_targets = report.recovered_targets;
    r.wall_ms = report.wall_ms;
    r.worker_utilization = report.worker_utilization;
    reports.push_back(r);
    for (const auto& [name, value] : report.tallies) {
      V3Tally tally;
      tally.name_off = static_cast<std::uint32_t>(strings.size());
      tally.name_len = static_cast<std::uint32_t>(name.size());
      tally.value = value;
      strings.append(name);
      tallies.push_back(tally);
    }
  }

  std::vector<V3Pin> pins;
  pins.reserve(s.pins.size());
  for (const SnapshotPin& pin : s.pins) {
    V3Pin p;
    p.address = pin.address;
    p.metro = pin.metro;
    p.rule = pin.rule;
    p.anchor_source = pin.anchor_source;
    p.round = pin.round;
    pins.push_back(p);
  }

  std::vector<V3Pair> regional;
  regional.reserve(s.regional.size());
  for (const auto& [address, region] : s.regional)
    regional.push_back(V3Pair{address, region});

  // by_peer: canonical segment order gives ascending per-key runs.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> peer_pairs;
  std::vector<std::uint32_t> ixp_list;
  std::vector<std::uint32_t> vpi_list;
  for (std::uint32_t i = 0; i < seg_count; ++i) {
    const SnapshotSegment& seg = s.segments[i];
    if (!seg.peer_asn.is_unknown()) peer_pairs.emplace_back(seg.peer_asn.value, i);
    if (seg.ixp) ixp_list.push_back(i);
    if (seg.vpi) vpi_list.push_back(i);
  }
  std::stable_sort(peer_pairs.begin(), peer_pairs.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  const std::vector<V3KeySpan> by_peer = group_pairs(peer_pairs, pool);

  // by_metro: pins are canonical (sorted by address), so per-metro address
  // runs come out ascending.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> metro_pairs;
  for (const SnapshotPin& pin : s.pins)
    metro_pairs.emplace_back(pin.metro, pin.address);
  std::stable_sort(metro_pairs.begin(), metro_pairs.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  const std::vector<V3KeySpan> by_metro = group_pairs(metro_pairs, pool);

  std::vector<V3Span> alias_sets;
  alias_sets.reserve(s.alias_sets.size());
  for (const std::vector<std::uint32_t>& set : s.alias_sets)
    alias_sets.push_back(pool_append(pool, set));

  V3Directory dir;
  dir.ixp = pool_append(pool, ixp_list);
  dir.vpi = pool_append(pool, vpi_list);
  {
    std::vector<std::uint32_t> keys;
    keys.reserve(by_peer.size());
    for (const V3KeySpan& entry : by_peer) keys.push_back(entry.key);
    dir.peer_asns = pool_append(pool, keys);
    keys.clear();
    for (const V3KeySpan& entry : by_metro) keys.push_back(entry.key);
    dir.pinned_metros = pool_append(pool, keys);
  }
  {
    std::vector<std::uint32_t> order(seg_count);
    for (std::uint32_t i = 0; i < seg_count; ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                const double ca = s.segments[a].confidence;
                const double cb = s.segments[b].confidence;
                if (ca != cb) return ca > cb;
                return a < b;
              });
    dir.conf_order = pool_append(pool, order);
  }

  // LPM rows: /32 interface entries (roles accumulate across segments) and
  // /24 destination cones, grouped by length, sorted by network.
  struct TrieRow {
    std::uint8_t plen;
    std::uint32_t network;
    std::uint8_t flags;
    std::uint32_t segment;
  };
  std::vector<TrieRow> rows;
  rows.reserve(std::size_t{seg_count} * 3);
  for (std::uint32_t i = 0; i < seg_count; ++i) {
    const SnapshotSegment& seg = s.segments[i];
    rows.push_back(TrieRow{32, seg.abi.value(), 1 | 2, i});
    rows.push_back(TrieRow{32, seg.cbi.value(), 1 | 4, i});
    for (const std::uint32_t network : seg.dest_slash24s)
      rows.push_back(TrieRow{24, network & 0xFFFFFF00u, 0, i});
  }
  std::stable_sort(rows.begin(), rows.end(),
                   [](const TrieRow& a, const TrieRow& b) {
                     if (a.plen != b.plen) return a.plen < b.plen;
                     return a.network < b.network;
                   });
  std::vector<V3TrieEntry> trie;
  {
    std::size_t i = 0;
    std::vector<std::uint32_t> members;
    while (i < rows.size()) {
      V3TrieEntry entry;
      entry.plen = rows[i].plen;
      entry.network = rows[i].network;
      members.clear();
      std::size_t j = i;
      while (j < rows.size() && rows[j].plen == entry.plen &&
             rows[j].network == entry.network) {
        entry.flags |= rows[j].flags;
        if (members.empty() || members.back() != rows[j].segment)
          members.push_back(rows[j].segment);
        ++j;
      }
      entry.segments = pool_append(pool, members);
      trie.push_back(entry);
      i = j;
    }
  }
  for (std::size_t len = 0; len < 33; ++len) dir.trie_by_len[len] = V3Span{};
  {
    std::size_t i = 0;
    while (i < trie.size()) {
      const std::uint8_t plen = trie[i].plen;
      std::size_t j = i;
      while (j < trie.size() && trie[j].plen == plen) ++j;
      dir.trie_by_len[plen] =
          V3Span{static_cast<std::uint32_t>(i),
                 static_cast<std::uint32_t>(j - i)};
      i = j;
    }
  }

  // Layout: descending element alignment, so nothing is ever misaligned.
  dir.segment_count = seg_count;
  dir.report_count = static_cast<std::uint32_t>(reports.size());
  dir.tally_count = static_cast<std::uint32_t>(tallies.size());
  dir.pin_count = static_cast<std::uint32_t>(pins.size());
  dir.regional_count = static_cast<std::uint32_t>(regional.size());
  dir.trie_count = static_cast<std::uint32_t>(trie.size());
  dir.by_peer_count = static_cast<std::uint32_t>(by_peer.size());
  dir.by_metro_count = static_cast<std::uint32_t>(by_metro.size());
  dir.alias_count = static_cast<std::uint32_t>(alias_sets.size());
  dir.pool_count = static_cast<std::uint32_t>(pool.size());
  dir.strings_len = static_cast<std::uint32_t>(strings.size());
  std::uint64_t at = sizeof(V3Directory);
  dir.segments_off = static_cast<std::uint32_t>(at);
  at += std::uint64_t{dir.segment_count} * sizeof(V3Segment);
  dir.reports_off = static_cast<std::uint32_t>(at);
  at += std::uint64_t{dir.report_count} * sizeof(V3StageReport);
  dir.tallies_off = static_cast<std::uint32_t>(at);
  at += std::uint64_t{dir.tally_count} * sizeof(V3Tally);
  dir.pins_off = static_cast<std::uint32_t>(at);
  at += std::uint64_t{dir.pin_count} * sizeof(V3Pin);
  dir.regional_off = static_cast<std::uint32_t>(at);
  at += std::uint64_t{dir.regional_count} * sizeof(V3Pair);
  dir.trie_off = static_cast<std::uint32_t>(at);
  at += std::uint64_t{dir.trie_count} * sizeof(V3TrieEntry);
  dir.by_peer_off = static_cast<std::uint32_t>(at);
  at += std::uint64_t{dir.by_peer_count} * sizeof(V3KeySpan);
  dir.by_metro_off = static_cast<std::uint32_t>(at);
  at += std::uint64_t{dir.by_metro_count} * sizeof(V3KeySpan);
  dir.alias_off = static_cast<std::uint32_t>(at);
  at += std::uint64_t{dir.alias_count} * sizeof(V3Span);
  dir.pool_off = static_cast<std::uint32_t>(at);
  at += std::uint64_t{dir.pool_count} * 4;
  dir.strings_off = static_cast<std::uint32_t>(at);
  at += dir.strings_len;
  dir.blob_size = static_cast<std::uint32_t>(align8(at));

  std::string out;
  out.reserve(dir.blob_size);
  wire::put_u32(out, dir.magic);
  wire::put_u32(out, dir.blob_size);
  wire::put_u32(out, dir.segments_off);
  wire::put_u32(out, dir.segment_count);
  wire::put_u32(out, dir.reports_off);
  wire::put_u32(out, dir.report_count);
  wire::put_u32(out, dir.tallies_off);
  wire::put_u32(out, dir.tally_count);
  wire::put_u32(out, dir.pins_off);
  wire::put_u32(out, dir.pin_count);
  wire::put_u32(out, dir.regional_off);
  wire::put_u32(out, dir.regional_count);
  wire::put_u32(out, dir.trie_off);
  wire::put_u32(out, dir.trie_count);
  wire::put_u32(out, dir.by_peer_off);
  wire::put_u32(out, dir.by_peer_count);
  wire::put_u32(out, dir.by_metro_off);
  wire::put_u32(out, dir.by_metro_count);
  wire::put_u32(out, dir.alias_off);
  wire::put_u32(out, dir.alias_count);
  wire::put_u32(out, dir.pool_off);
  wire::put_u32(out, dir.pool_count);
  wire::put_u32(out, dir.strings_off);
  wire::put_u32(out, dir.strings_len);
  emit_span(out, dir.ixp);
  emit_span(out, dir.vpi);
  emit_span(out, dir.peer_asns);
  emit_span(out, dir.pinned_metros);
  emit_span(out, dir.conf_order);
  for (const V3Span& span : dir.trie_by_len) emit_span(out, span);
  for (const V3Segment& g : segments) emit_segment(out, g);
  for (const V3StageReport& r : reports) emit_report(out, r);
  for (const V3Tally& tally : tallies) {
    wire::put_u32(out, tally.name_off);
    wire::put_u32(out, tally.name_len);
    wire::put_f64(out, tally.value);
  }
  for (const V3Pin& p : pins) {
    wire::put_u32(out, p.address);
    wire::put_u32(out, p.metro);
    wire::put_u8(out, p.rule);
    wire::put_u8(out, p.anchor_source);
    wire::put_u16(out, 0);
    wire::put_i32(out, p.round);
  }
  for (const V3Pair& pair : regional) {
    wire::put_u32(out, pair.address);
    wire::put_u32(out, pair.region);
  }
  for (const V3TrieEntry& entry : trie) {
    wire::put_u32(out, entry.network);
    wire::put_u8(out, entry.flags);
    wire::put_u8(out, entry.plen);
    wire::put_u16(out, 0);
    emit_span(out, entry.segments);
  }
  for (const V3KeySpan& entry : by_peer) {
    wire::put_u32(out, entry.key);
    emit_span(out, entry.span);
  }
  for (const V3KeySpan& entry : by_metro) {
    wire::put_u32(out, entry.key);
    emit_span(out, entry.span);
  }
  for (const V3Span& span : alias_sets) emit_span(out, span);
  for (const std::uint32_t value : pool) wire::put_u32(out, value);
  out.append(strings);
  out.append(dir.blob_size - out.size(), '\0');
  return out;
}

// --- validator ------------------------------------------------------------

namespace {

bool invalid(std::string* error, const std::string& message) {
  if (error != nullptr) *error = "flat fabric: " + message;
  return false;
}

bool check_pool_span(const V3Span& span, std::uint32_t pool_count,
                     const char* what, std::string* error) {
  if (span.off > pool_count || span.len > pool_count - span.off)
    return invalid(error, std::string(what) + " span exceeds the pool");
  return true;
}

bool check_segment_indices(const V3View& v, const V3Span& span,
                           const char* what, std::string* error) {
  for (std::uint32_t k = 0; k < span.len; ++k)
    if (v.pool[span.off + k] >= v.dir->segment_count)
      return invalid(error,
                     std::string(what) + " references a bad segment index");
  return true;
}

}  // namespace

bool validate_flat_fabric(const unsigned char* blob, std::size_t size,
                          std::string* error) {
  if constexpr (std::endian::native != std::endian::little)
    return invalid(error, "zero-copy layout requires a little-endian host");
  if (size < sizeof(V3Directory))
    return invalid(error, "blob shorter than the directory");
  const auto* dir = reinterpret_cast<const V3Directory*>(blob);
  if (dir->magic != kFlatFabricMagic) return invalid(error, "bad magic");
  if (dir->blob_size != size)
    return invalid(error, "directory blob_size does not match the section");

  // Offsets are fully determined by the counts (descending-alignment
  // canonical layout); recomputing and comparing rules out overlap, gaps,
  // and misalignment in one pass.
  std::uint64_t at = sizeof(V3Directory);
  const auto expect = [&](std::uint32_t off, std::uint32_t count,
                          std::uint64_t elem_size,
                          const char* what) -> bool {
    if (off != at)
      return invalid(error, std::string(what) + " array is not where the "
                                                "canonical layout puts it");
    at += std::uint64_t{count} * elem_size;
    if (at > size)
      return invalid(error,
                     std::string(what) + " array extends past the blob");
    return true;
  };
  if (!expect(dir->segments_off, dir->segment_count, sizeof(V3Segment),
              "segment") ||
      !expect(dir->reports_off, dir->report_count, sizeof(V3StageReport),
              "report") ||
      !expect(dir->tallies_off, dir->tally_count, sizeof(V3Tally),
              "tally") ||
      !expect(dir->pins_off, dir->pin_count, sizeof(V3Pin), "pin") ||
      !expect(dir->regional_off, dir->regional_count, sizeof(V3Pair),
              "regional") ||
      !expect(dir->trie_off, dir->trie_count, sizeof(V3TrieEntry), "trie") ||
      !expect(dir->by_peer_off, dir->by_peer_count, sizeof(V3KeySpan),
              "by_peer") ||
      !expect(dir->by_metro_off, dir->by_metro_count, sizeof(V3KeySpan),
              "by_metro") ||
      !expect(dir->alias_off, dir->alias_count, sizeof(V3Span), "alias") ||
      !expect(dir->pool_off, dir->pool_count, 4, "pool") ||
      !expect(dir->strings_off, dir->strings_len, 1, "string"))
    return false;
  if (align8(at) != size)
    return invalid(error, "blob size does not match its contents");
  for (std::uint64_t i = at; i < size; ++i)
    if (blob[i] != 0) return invalid(error, "nonzero padding byte");

  const V3View v = V3View::over(blob);
  const std::uint32_t pool_count = dir->pool_count;

  for (std::uint32_t i = 0; i < dir->segment_count; ++i) {
    const V3Segment& g = v.segments[i];
    if (g.confirmation > 4) return invalid(error, "bad confirmation value");
    if (g.flags > 7) return invalid(error, "bad segment flags");
    if (g.group != kSnapshotNoGroup && g.group >= 6)
      return invalid(error, "bad peering group");
    if (g.pad0 != 0 || g.pad1 != 0)
      return invalid(error, "nonzero segment padding");
    if (!(g.hop_density >= 0.0) || g.hop_density > 1.0)
      return invalid(error, "hop density out of [0, 1]");
    if (!(g.confidence >= 0.0) || g.confidence > 1.0)
      return invalid(error, "confidence out of [0, 1]");
    if (!check_pool_span(g.regions, pool_count, "segment regions", error) ||
        !check_pool_span(g.dest_slash24s, pool_count, "segment dests",
                         error))
      return false;
  }

  for (std::uint32_t i = 0; i < dir->report_count; ++i) {
    const V3StageReport& r = v.reports[i];
    if (r.id >= kStageCount) return invalid(error, "bad stage id");
    if (r.pad0[0] != 0 || r.pad0[1] != 0 || r.pad0[2] != 0 || r.pad1 != 0)
      return invalid(error, "nonzero report padding");
    if (r.tally_off > dir->tally_count ||
        r.tally_len > dir->tally_count - r.tally_off)
      return invalid(error, "report tally span exceeds the tally array");
  }

  for (std::uint32_t i = 0; i < dir->tally_count; ++i) {
    const V3Tally& tally = v.tallies[i];
    if (tally.name_off > dir->strings_len ||
        tally.name_len > dir->strings_len - tally.name_off)
      return invalid(error, "tally name exceeds the string table");
  }

  for (std::uint32_t i = 0; i < dir->pin_count; ++i) {
    const V3Pin& pin = v.pins[i];
    if (pin.rule > 2) return invalid(error, "bad pin rule");
    if (pin.anchor_source > 4) return invalid(error, "bad anchor source");
    if (pin.pad0 != 0) return invalid(error, "nonzero pin padding");
  }

  for (std::uint32_t i = 0; i < dir->trie_count; ++i) {
    const V3TrieEntry& entry = v.trie[i];
    if (entry.flags > 7 || entry.plen > 32 || entry.pad0 != 0)
      return invalid(error, "bad trie entry");
    if (!check_pool_span(entry.segments, pool_count, "trie", error) ||
        !check_segment_indices(v, entry.segments, "trie", error))
      return false;
  }
  // Length groups must tile the entry array in ascending-length order, each
  // group sorted by network and masked to its length — the binary-search
  // contract FabricView::find relies on.
  std::uint32_t tiled = 0;
  for (std::size_t len = 0; len < 33; ++len) {
    const V3Span& span = dir->trie_by_len[len];
    if (span.len == 0) {
      if (span.off != 0) return invalid(error, "bad empty trie group");
      continue;
    }
    if (span.off != tiled)
      return invalid(error, "trie groups are not contiguous");
    if (span.len > dir->trie_count - tiled)
      return invalid(error, "trie group exceeds the entry array");
    const std::uint32_t mask =
        len == 0 ? 0 : ~std::uint32_t{0} << (32 - len);
    for (std::uint32_t k = 0; k < span.len; ++k) {
      const V3TrieEntry& entry = v.trie[span.off + k];
      if (entry.plen != len) return invalid(error, "trie group length mix");
      if ((entry.network & ~mask) != 0)
        return invalid(error, "trie network not masked to its length");
      if (k > 0 && v.trie[span.off + k - 1].network >= entry.network)
        return invalid(error, "trie group not sorted");
    }
    tiled += span.len;
  }
  if (tiled != dir->trie_count)
    return invalid(error, "trie groups do not cover the entry array");

  const auto check_keyspans = [&](const V3KeySpan* entries,
                                  std::uint32_t count, const char* what,
                                  bool values_are_segments) -> bool {
    for (std::uint32_t i = 0; i < count; ++i) {
      if (i > 0 && entries[i - 1].key >= entries[i].key)
        return invalid(error, std::string(what) + " keys not sorted");
      if (!check_pool_span(entries[i].span, pool_count, what, error))
        return false;
      if (values_are_segments &&
          !check_segment_indices(v, entries[i].span, what, error))
        return false;
    }
    return true;
  };
  if (!check_keyspans(v.by_peer, dir->by_peer_count, "by_peer", true) ||
      !check_keyspans(v.by_metro, dir->by_metro_count, "by_metro", false))
    return false;

  for (std::uint32_t i = 0; i < dir->alias_count; ++i)
    if (!check_pool_span(v.alias_sets[i], pool_count, "alias set", error))
      return false;

  if (!check_pool_span(dir->ixp, pool_count, "ixp", error) ||
      !check_segment_indices(v, dir->ixp, "ixp", error) ||
      !check_pool_span(dir->vpi, pool_count, "vpi", error) ||
      !check_segment_indices(v, dir->vpi, "vpi", error) ||
      !check_pool_span(dir->peer_asns, pool_count, "peer_asns", error) ||
      !check_pool_span(dir->pinned_metros, pool_count, "pinned_metros",
                       error) ||
      !check_pool_span(dir->conf_order, pool_count, "conf_order", error) ||
      !check_segment_indices(v, dir->conf_order, "conf_order", error))
    return false;
  if (dir->conf_order.len != dir->segment_count)
    return invalid(error, "conf_order does not cover every segment");
  for (std::uint32_t k = 1; k < dir->conf_order.len; ++k) {
    const double prev =
        v.segments[v.pool[dir->conf_order.off + k - 1]].confidence;
    const double cur = v.segments[v.pool[dir->conf_order.off + k]].confidence;
    if (prev < cur)
      return invalid(error, "conf_order is not descending by confidence");
  }
  for (std::uint32_t k = 1; k < dir->peer_asns.len; ++k)
    if (v.pool[dir->peer_asns.off + k - 1] >= v.pool[dir->peer_asns.off + k])
      return invalid(error, "peer_asns not sorted");
  for (std::uint32_t k = 1; k < dir->pinned_metros.len; ++k)
    if (v.pool[dir->pinned_metros.off + k - 1] >=
        v.pool[dir->pinned_metros.off + k])
      return invalid(error, "pinned_metros not sorted");
  return true;
}

// --- copying decoder ------------------------------------------------------

void decode_flat_fabric(const unsigned char* blob, RunSnapshot& out) {
  const V3View v = V3View::over(blob);
  const V3Directory& dir = *v.dir;

  out.segments.reserve(dir.segment_count);
  for (std::uint32_t i = 0; i < dir.segment_count; ++i) {
    const V3Segment& g = v.segments[i];
    SnapshotSegment seg;
    seg.abi = Ipv4(g.abi);
    seg.cbi = Ipv4(g.cbi);
    seg.prior_abi = Ipv4(g.prior_abi);
    seg.post_cbi = Ipv4(g.post_cbi);
    seg.first_round = g.first_round;
    seg.confirmation = static_cast<Confirmation>(g.confirmation);
    seg.shifted = (g.flags & 1) != 0;
    seg.ixp = (g.flags & 2) != 0;
    seg.vpi = (g.flags & 4) != 0;
    seg.group = g.group;
    seg.owner_hint = Asn{g.owner_hint};
    seg.peer_asn = Asn{g.peer_asn};
    seg.peer_org = OrgId{g.peer_org};
    seg.observations = g.observations;
    seg.rounds_mask = g.rounds_mask;
    seg.hop_density = g.hop_density;
    seg.confidence = g.confidence;
    seg.regions.assign(v.pool + g.regions.off,
                       v.pool + g.regions.off + g.regions.len);
    seg.dest_slash24s.assign(
        v.pool + g.dest_slash24s.off,
        v.pool + g.dest_slash24s.off + g.dest_slash24s.len);
    out.segments.push_back(std::move(seg));
  }

  out.pins.reserve(dir.pin_count);
  for (std::uint32_t i = 0; i < dir.pin_count; ++i) {
    const V3Pin& p = v.pins[i];
    SnapshotPin pin;
    pin.address = p.address;
    pin.metro = p.metro;
    pin.rule = p.rule;
    pin.anchor_source = p.anchor_source;
    pin.round = p.round;
    out.pins.push_back(pin);
  }

  out.regional.reserve(dir.regional_count);
  for (std::uint32_t i = 0; i < dir.regional_count; ++i)
    out.regional.emplace_back(v.regional[i].address, v.regional[i].region);

  out.alias_sets.reserve(dir.alias_count);
  for (std::uint32_t i = 0; i < dir.alias_count; ++i) {
    const V3Span& span = v.alias_sets[i];
    out.alias_sets.emplace_back(v.pool + span.off,
                                v.pool + span.off + span.len);
  }

  out.stage_reports.reserve(dir.report_count);
  for (std::uint32_t i = 0; i < dir.report_count; ++i) {
    const V3StageReport& r = v.reports[i];
    StageReport report;
    report.id = static_cast<StageId>(r.id);
    report.threads = r.threads;
    report.workers = r.workers;
    report.targets = r.targets;
    report.traceroutes = r.traceroutes;
    report.probes = r.probes;
    report.bgp_cache_hits = r.bgp_cache_hits;
    report.bgp_cache_misses = r.bgp_cache_misses;
    report.retries = r.retries;
    report.backoff_waits = r.backoff_waits;
    report.backoff_ticks = r.backoff_ticks;
    report.recovered_targets = r.recovered_targets;
    report.wall_ms = r.wall_ms;
    report.worker_utilization = r.worker_utilization;
    report.tallies.reserve(r.tally_len);
    for (std::uint32_t t = 0; t < r.tally_len; ++t) {
      const V3Tally& tally = v.tallies[r.tally_off + t];
      report.tallies.emplace_back(
          std::string(v.strings + tally.name_off, tally.name_len),
          tally.value);
    }
    out.stage_reports.push_back(std::move(report));
  }
}

}  // namespace cloudmap::snapv3
