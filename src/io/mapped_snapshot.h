// Zero-copy loader for format-v3 snapshot files: mmap the file read-only,
// verify the container (magic, version, section table, per-section CRC) and
// the flat-fabric blob (io/snapshot_v3.h), then hand out a pointer straight
// into the mapping. Nothing is decoded and nothing per-segment is
// allocated — a FabricView (query/fabric_view.h) built over blob() serves
// queries out of the page cache, which is what makes daemon hot-swaps cheap:
// opening a new snapshot costs one validation pass, not a rebuild.
//
// Only version 3 files qualify (v1/v2 need the copying loader in
// io/snapshot.h); the v3 writer pads the meta section so the blob sits
// 8-byte aligned at file offset 80, and the mapping itself is page-aligned,
// so the in-place record casts in V3View are always aligned.
//
// The object owns the mapping: move-only, unmapped on destruction. Keep it
// alive as long as any view into blob() is in use (serve/server.h bundles
// the two in one ServedSnapshot for exactly this reason).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

namespace cloudmap {

class MappedSnapshot {
 public:
  // Map and validate `path`. Returns nullopt (and a one-line diagnostic in
  // *error, when given) if the file cannot be mapped, is not a v3 snapshot,
  // fails any CRC, or fails flat-fabric validation.
  static std::optional<MappedSnapshot> open(const std::string& path,
                                            std::string* error = nullptr);

  MappedSnapshot() = default;
  ~MappedSnapshot();
  MappedSnapshot(MappedSnapshot&& other) noexcept;
  MappedSnapshot& operator=(MappedSnapshot&& other) noexcept;
  MappedSnapshot(const MappedSnapshot&) = delete;
  MappedSnapshot& operator=(const MappedSnapshot&) = delete;

  // The validated flat-fabric blob inside the mapping (8-byte aligned).
  const unsigned char* blob() const { return blob_; }
  std::size_t blob_size() const { return blob_size_; }

  // Run meta carried next to the blob.
  std::uint64_t seed() const { return seed_; }
  std::int32_t threads() const { return threads_; }
  std::uint8_t subject() const { return subject_; }

  // Whole-file view, for tools that re-serve the raw bytes.
  const unsigned char* file_data() const {
    return static_cast<const unsigned char*>(map_);
  }
  std::size_t file_size() const { return map_size_; }

 private:
  void reset() noexcept;

  void* map_ = nullptr;
  std::size_t map_size_ = 0;
  const unsigned char* blob_ = nullptr;
  std::size_t blob_size_ = 0;
  std::uint64_t seed_ = 0;
  std::int32_t threads_ = 0;
  std::uint8_t subject_ = 0;
};

}  // namespace cloudmap
