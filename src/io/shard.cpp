#include "io/shard.h"

#include <stdexcept>

#include "io/snapshot.h"
#include "io/wire.h"

namespace cloudmap {

namespace {

constexpr char kMagic[8] = {'C', 'M', 'S', 'H', 'A', 'R', 'D', '2'};
// magic + digest + (round, shard index, shard count) + 3 × u64 totals
// + u32 header CRC.
constexpr std::size_t kHeaderSize = 8 + 8 + 3 * 4 + 3 * 8 + 4;
// Every record carries at least an item index, a payload size, and a CRC;
// the per-record and whole-file caps below rest on this floor.
constexpr std::size_t kMinRecordSize = 8 + 4 + 4;

std::string encode_header(const ShardPartHeader& header) {
  std::string out;
  out.reserve(kHeaderSize);
  out.append(kMagic, sizeof(kMagic));
  wire::put_u64(out, header.config_digest);
  wire::put_u32(out, header.round);
  wire::put_u32(out, header.shard_index);
  wire::put_u32(out, header.shard_count);
  wire::put_u64(out, header.total_items);
  wire::put_u64(out, header.target_count);
  wire::put_u64(out, header.record_count);
  // Header CRC over everything above it: a bit flip in any header field
  // (digest, round, totals) is rejected up front, not silently merged.
  wire::put_u32(out,
                snapshot_crc32(
                    reinterpret_cast<const unsigned char*>(out.data()),
                    out.size()));
  return out;
}

std::string encode_result(const Campaign::SweepChunkResult& result) {
  std::string out;
  wire::put_u64(out, result.traceroutes);
  wire::put_u64(out, result.probes);
  wire::put_u64(out, result.retried_targets);
  wire::put_u64(out, result.retries);
  wire::put_u64(out, result.backoff_waits);
  wire::put_u64(out, result.backoff_ticks);
  wire::put_u64(out, result.recovered_targets);
  wire::put_u64(out, result.walk.examined);
  wire::put_u64(out, result.walk.extracted);
  wire::put_u64(out, result.walk.never_left_cloud);
  wire::put_u64(out, result.walk.loop);
  wire::put_u64(out, result.walk.gap_before_border);
  wire::put_u64(out, result.walk.cbi_is_destination);
  wire::put_u64(out, result.walk.duplicate_before_border);
  wire::put_u64(out, result.walk.reentered_cloud);
  wire::put_u32(out, static_cast<std::uint32_t>(result.adjacencies.size()));
  for (const auto& [from, to] : result.adjacencies) {
    wire::put_u32(out, from);
    wire::put_u32(out, to);
  }
  wire::put_u32(out, static_cast<std::uint32_t>(result.segments.size()));
  for (const CandidateSegment& segment : result.segments) {
    wire::put_u32(out, segment.cbi.value());
    wire::put_u32(out, segment.abi.value());
    wire::put_u32(out, segment.prior_abi.value());
    wire::put_u32(out, segment.post_cbi.value());
    wire::put_u32(out, segment.destination.value());
    wire::put_u32(out, segment.region.value);
    wire::put_f64(out, segment.abi_rtt_ms);
    wire::put_f64(out, segment.cbi_rtt_ms);
    wire::put_f64(out, segment.hop_density);
  }
  return out;
}

bool decode_result(const std::string& payload,
                   Campaign::SweepChunkResult& result) {
  wire::Cursor cursor{
      reinterpret_cast<const unsigned char*>(payload.data()), payload.size()};
  result.traceroutes = cursor.u64();
  result.probes = cursor.u64();
  result.retried_targets = cursor.u64();
  result.retries = cursor.u64();
  result.backoff_waits = cursor.u64();
  result.backoff_ticks = cursor.u64();
  result.recovered_targets = cursor.u64();
  result.walk.examined = cursor.u64();
  result.walk.extracted = cursor.u64();
  result.walk.never_left_cloud = cursor.u64();
  result.walk.loop = cursor.u64();
  result.walk.gap_before_border = cursor.u64();
  result.walk.cbi_is_destination = cursor.u64();
  result.walk.duplicate_before_border = cursor.u64();
  result.walk.reentered_cloud = cursor.u64();
  const std::uint32_t adjacency_count = wire::bounded_count(cursor, 8);
  result.adjacencies.clear();
  result.adjacencies.reserve(adjacency_count);
  for (std::uint32_t i = 0; i < adjacency_count && !cursor.failed; ++i) {
    const std::uint32_t from = cursor.u32();
    const std::uint32_t to = cursor.u32();
    result.adjacencies.emplace_back(from, to);
  }
  const std::uint32_t segment_count = wire::bounded_count(cursor, 48);
  result.segments.clear();
  result.segments.reserve(segment_count);
  for (std::uint32_t i = 0; i < segment_count && !cursor.failed; ++i) {
    CandidateSegment segment;
    segment.cbi = Ipv4(cursor.u32());
    segment.abi = Ipv4(cursor.u32());
    segment.prior_abi = Ipv4(cursor.u32());
    segment.post_cbi = Ipv4(cursor.u32());
    segment.destination = Ipv4(cursor.u32());
    segment.region = RegionId{cursor.u32()};
    segment.abi_rtt_ms = cursor.f64();
    segment.cbi_rtt_ms = cursor.f64();
    segment.hop_density = cursor.f64();
    result.segments.push_back(segment);
  }
  return cursor.at_end();
}

// Owned items of shard i under round-robin ownership of `total` items.
std::uint64_t owned_items(std::uint64_t total, std::uint32_t index,
                          std::uint32_t count) {
  if (count == 0) return 0;
  return total / count + (index < total % count ? 1 : 0);
}

[[noreturn]] void fail(const std::string& path, const std::string& what) {
  throw std::runtime_error("shard part " + path + ": " + what);
}

}  // namespace

std::uint64_t shard_digest(const std::string& key) {
  std::uint64_t hash = 1469598103934665603ull;  // FNV-1a offset basis
  for (const char c : key) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;  // FNV-1a prime
  }
  return hash;
}

std::string shard_part_path(const std::string& prefix, int round,
                            int shard_index, int shard_count) {
  return prefix + ".r" + std::to_string(round) + ".s" +
         std::to_string(shard_index) + "of" + std::to_string(shard_count) +
         ".part";
}

bool ShardPartWriter::open(const std::string& path,
                           const ShardPartHeader& header, std::string* error) {
  path_ = path;
  header_ = header;
  header_.record_count = 0;
  records_ = 0;
  out_.open(path, std::ios::binary | std::ios::trunc);
  if (!out_) {
    if (error != nullptr) *error = "cannot write shard part " + path;
    return false;
  }
  const std::string bytes = encode_header(header_);
  out_.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return static_cast<bool>(out_);
}

bool ShardPartWriter::append(std::uint64_t item,
                             const Campaign::SweepChunkResult& result,
                             std::string* error) {
  const std::string payload = encode_result(result);
  std::string record;
  record.reserve(8 + 4 + payload.size() + 4);
  wire::put_u64(record, item);
  wire::put_u32(record, static_cast<std::uint32_t>(payload.size()));
  record.append(payload);
  wire::put_u32(record,
                snapshot_crc32(
                    reinterpret_cast<const unsigned char*>(payload.data()),
                    payload.size()));
  out_.write(record.data(), static_cast<std::streamsize>(record.size()));
  if (!out_) {
    if (error != nullptr) *error = "short write on shard part " + path_;
    return false;
  }
  ++records_;
  return true;
}

bool ShardPartWriter::finish(std::string* error) {
  // Rewrite the whole header with the final record count (and the header
  // CRC that covers it): a crash mid-run leaves zero records declared and
  // a stale CRC, either of which the reader reports as a truncated part.
  header_.record_count = records_;
  const std::string bytes = encode_header(header_);
  out_.seekp(0);
  out_.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out_.close();
  if (out_.fail()) {
    if (error != nullptr) *error = "cannot finalize shard part " + path_;
    return false;
  }
  return true;
}

bool ShardPartReader::open(const std::string& path, std::string* error) {
  path_ = path;
  read_ = 0;
  in_.open(path, std::ios::binary);
  if (!in_) {
    if (error != nullptr) *error = "cannot read shard part " + path;
    return false;
  }
  // The actual byte count on disk is the cap every declared length in the
  // file is checked against, before any allocation.
  in_.seekg(0, std::ios::end);
  const std::streamoff end = in_.tellg();
  in_.seekg(0, std::ios::beg);
  if (end < 0) {
    if (error != nullptr) *error = "cannot stat shard part " + path;
    return false;
  }
  file_size_ = static_cast<std::uint64_t>(end);
  std::string bytes(kHeaderSize, '\0');
  in_.read(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (in_.gcount() != static_cast<std::streamsize>(kHeaderSize) ||
      bytes.compare(0, sizeof(kMagic), kMagic, sizeof(kMagic)) != 0) {
    if (error != nullptr)
      *error = "shard part " + path + ": bad magic or truncated header";
    return false;
  }
  const auto* raw = reinterpret_cast<const unsigned char*>(bytes.data());
  wire::Cursor crc_check{raw + kHeaderSize - 4, 4};
  if (crc_check.u32() != snapshot_crc32(raw, kHeaderSize - 4)) {
    if (error != nullptr)
      *error = "shard part " + path + ": header CRC mismatch";
    return false;
  }
  wire::Cursor cursor{raw + sizeof(kMagic),
                      kHeaderSize - sizeof(kMagic) - 4};
  header_.config_digest = cursor.u64();
  header_.round = cursor.u32();
  header_.shard_index = cursor.u32();
  header_.shard_count = cursor.u32();
  header_.total_items = cursor.u64();
  header_.target_count = cursor.u64();
  header_.record_count = cursor.u64();
  if (header_.shard_count == 0 ||
      header_.shard_index >= header_.shard_count) {
    if (error != nullptr)
      *error = "shard part " + path + ": invalid shard index " +
               std::to_string(header_.shard_index) + "/" +
               std::to_string(header_.shard_count);
    return false;
  }
  // Declared-count-vs-file-size cap: a forged record count fails here with
  // a diagnostic instead of driving next() into huge reads.
  const std::uint64_t capacity = (file_size_ - kHeaderSize) / kMinRecordSize;
  if (header_.record_count > capacity) {
    if (error != nullptr)
      *error = "shard part " + path + ": declares " +
               std::to_string(header_.record_count) +
               " records but the file can hold at most " +
               std::to_string(capacity);
    return false;
  }
  offset_ = kHeaderSize;
  return true;
}

bool ShardPartReader::next(std::uint64_t& item,
                           Campaign::SweepChunkResult& result) {
  if (read_ >= header_.record_count) return false;
  std::string prefix(12, '\0');
  in_.read(prefix.data(), static_cast<std::streamsize>(prefix.size()));
  if (in_.gcount() != static_cast<std::streamsize>(prefix.size()))
    fail(path_, "truncated at record " + std::to_string(read_) + " of " +
                    std::to_string(header_.record_count));
  wire::Cursor cursor{
      reinterpret_cast<const unsigned char*>(prefix.data()), prefix.size()};
  item = cursor.u64();
  const std::uint32_t size = cursor.u32();
  // Cap the declared payload size against the bytes actually left in the
  // file before allocating: a forged 4 GiB size field fails fast instead
  // of attempting the allocation.
  const std::uint64_t remaining = file_size_ - offset_ - prefix.size();
  if (std::uint64_t{size} + 4 > remaining)
    fail(path_, "record " + std::to_string(read_) + " declares a " +
                    std::to_string(size) + "-byte payload but only " +
                    std::to_string(remaining) + " bytes remain in the file");
  std::string payload(size, '\0');
  in_.read(payload.data(), static_cast<std::streamsize>(size));
  if (in_.gcount() != static_cast<std::streamsize>(size))
    fail(path_, "truncated at record " + std::to_string(read_) + " of " +
                    std::to_string(header_.record_count));
  std::string crc_bytes(4, '\0');
  in_.read(crc_bytes.data(), 4);
  if (in_.gcount() != 4)
    fail(path_, "truncated at record " + std::to_string(read_) + " of " +
                    std::to_string(header_.record_count));
  wire::Cursor crc_cursor{
      reinterpret_cast<const unsigned char*>(crc_bytes.data()),
      crc_bytes.size()};
  if (crc_cursor.u32() !=
      snapshot_crc32(reinterpret_cast<const unsigned char*>(payload.data()),
                     payload.size()))
    fail(path_, "CRC mismatch at record " + std::to_string(read_));
  if (!decode_result(payload, result))
    fail(path_, "malformed record " + std::to_string(read_));
  offset_ += prefix.size() + size + crc_bytes.size();
  ++read_;
  return true;
}

bool ShardMerge::open(const std::vector<std::string>& paths,
                      std::string* error) {
  readers_.clear();
  next_item_ = 0;
  if (paths.empty()) {
    if (error != nullptr) *error = "shard merge: no part files given";
    return false;
  }
  std::vector<ShardPartReader> opened(paths.size());
  for (std::size_t i = 0; i < paths.size(); ++i)
    if (!opened[i].open(paths[i], error)) return false;

  reference_ = opened[0].header();
  if (reference_.shard_count != paths.size()) {
    if (error != nullptr)
      *error = "shard merge: " + std::to_string(paths.size()) +
               " parts given but parts declare " +
               std::to_string(reference_.shard_count) + " shards";
    return false;
  }
  readers_.resize(paths.size());
  std::vector<bool> seen(paths.size(), false);
  for (ShardPartReader& reader : opened) {
    const ShardPartHeader& h = reader.header();
    if (h.config_digest != reference_.config_digest ||
        h.round != reference_.round ||
        h.shard_count != reference_.shard_count ||
        h.total_items != reference_.total_items ||
        h.target_count != reference_.target_count) {
      if (error != nullptr)
        *error = "shard part " + reader.path() +
                 ": header disagrees with " + opened[0].path() +
                 " (different configuration, round, or world?)";
      return false;
    }
    if (seen[h.shard_index]) {
      if (error != nullptr)
        *error = "shard merge: duplicate part for shard " +
                 std::to_string(h.shard_index) + " (" + reader.path() + ")";
      return false;
    }
    const std::uint64_t expected =
        owned_items(h.total_items, h.shard_index, h.shard_count);
    if (h.record_count != expected) {
      if (error != nullptr)
        *error = "shard part " + reader.path() + ": " +
                 std::to_string(h.record_count) + " records, expected " +
                 std::to_string(expected) +
                 " (truncated or unfinished part)";
      return false;
    }
    seen[h.shard_index] = true;
    readers_[h.shard_index] = std::move(reader);
  }
  return true;
}

bool ShardMerge::next(Campaign::SweepChunkResult& result) {
  if (next_item_ >= reference_.total_items) return false;
  ShardPartReader& reader =
      readers_[next_item_ % reference_.shard_count];
  std::uint64_t item = 0;
  if (!reader.next(item, result))
    fail(reader.path(), "ran out of records before item " +
                            std::to_string(next_item_));
  if (item != next_item_)
    fail(reader.path(), "record for item " + std::to_string(item) +
                            " where item " + std::to_string(next_item_) +
                            " was expected (out-of-order part)");
  ++next_item_;
  return true;
}

}  // namespace cloudmap
