#include "io/serialize.h"

#include <cerrno>
#include <cstdlib>
#include <istream>
#include <ostream>
#include <sstream>
#include <unordered_map>

namespace cloudmap {

namespace {

// Split on a delimiter, keeping empty fields.
std::vector<std::string> split(const std::string& text, char delimiter) {
  std::vector<std::string> out;
  std::string token;
  for (const char ch : text) {
    if (ch == delimiter) {
      out.push_back(token);
      token.clear();
    } else {
      token.push_back(ch);
    }
  }
  out.push_back(token);
  return out;
}

const char* status_name(TracerouteStatus status) {
  switch (status) {
    case TracerouteStatus::kCompleted: return "completed";
    case TracerouteStatus::kGapLimit: return "gap";
    case TracerouteStatus::kUnreachable: return "unreachable";
  }
  return "?";
}

std::optional<TracerouteStatus> status_from(const std::string& name) {
  if (name == "completed") return TracerouteStatus::kCompleted;
  if (name == "gap") return TracerouteStatus::kGapLimit;
  if (name == "unreachable") return TracerouteStatus::kUnreachable;
  return std::nullopt;
}

// Strict numeric parses: the whole token must be consumed, no sign tricks,
// no exceptions. Corrupt input yields nullopt, never a throw or a silent
// misparse (std::stoul would accept "12garbage" and throw on "garbage").
std::optional<std::uint32_t> parse_u32(const std::string& text) {
  if (text.empty() || text[0] == '-' || text[0] == '+') return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const unsigned long value = std::strtoul(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || errno == ERANGE ||
      value > 0xFFFFFFFFul)
    return std::nullopt;
  return static_cast<std::uint32_t>(value);
}

std::optional<double> parse_double(const std::string& text) {
  if (text.empty()) return std::nullopt;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') return std::nullopt;
  return value;
}

}  // namespace

void write_record(std::ostream& out, const TracerouteRecord& record) {
  out << "R " << static_cast<int>(record.vantage.provider) << ' '
      << (record.vantage.region.valid() ? record.vantage.region.value
                                        : kInvalidIndex)
      << ' ' << record.destination.to_string() << ' '
      << status_name(record.status) << ' ';
  for (std::size_t i = 0; i < record.hops.size(); ++i) {
    if (i > 0) out << ',';
    const TracerouteHop& hop = record.hops[i];
    if (hop.responded) {
      out << hop.address.to_string() << ':' << hop.rtt_ms;
    } else {
      out << '*';
    }
  }
  out << '\n';
}

std::optional<TracerouteRecord> read_record(const std::string& line) {
  std::istringstream in(line);
  std::string tag;
  int provider = 0;
  std::uint32_t region = kInvalidIndex;
  std::string dst;
  std::string status;
  std::string hops;
  if (!(in >> tag >> provider >> region >> dst >> status)) return std::nullopt;
  if (tag != "R") return std::nullopt;
  in >> hops;  // may be empty for a hopless record

  if (provider < 0 || provider >= static_cast<int>(kCloudProviderCount))
    return std::nullopt;

  TracerouteRecord record;
  record.vantage.provider = static_cast<CloudProvider>(provider);
  record.vantage.region = RegionId{region};
  const auto destination = Ipv4::parse(dst);
  if (!destination) return std::nullopt;
  record.destination = *destination;
  const auto parsed_status = status_from(status);
  if (!parsed_status) return std::nullopt;
  record.status = *parsed_status;

  if (!hops.empty()) {
    for (const std::string& token : split(hops, ',')) {
      TracerouteHop hop;
      if (token != "*") {
        const std::size_t colon = token.find(':');
        if (colon == std::string::npos) return std::nullopt;
        const auto address = Ipv4::parse(token.substr(0, colon));
        if (!address) return std::nullopt;
        const auto rtt = parse_double(token.substr(colon + 1));
        if (!rtt || *rtt < 0.0) return std::nullopt;
        hop.address = *address;
        hop.rtt_ms = *rtt;
        hop.responded = true;
      }
      record.hops.push_back(hop);
    }
  }
  return record;
}

void write_records(std::ostream& out,
                   const std::vector<TracerouteRecord>& records) {
  for (const TracerouteRecord& record : records) write_record(out, record);
}

std::vector<TracerouteRecord> read_records(std::istream& in) {
  std::vector<TracerouteRecord> out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] != 'R') continue;
    if (auto record = read_record(line)) out.push_back(std::move(*record));
  }
  return out;
}

void write_fabric(std::ostream& out, const Fabric& fabric) {
  for (const InferredSegment& segment : fabric.segments()) {
    out << "S " << segment.abi.to_string() << ' ' << segment.cbi.to_string()
        << ' ' << segment.prior_abi.to_string() << ' '
        << segment.post_cbi.to_string() << ' ' << segment.first_round << ' '
        << static_cast<int>(segment.confirmation) << ' '
        << (segment.shifted ? 1 : 0) << ' ' << segment.owner_hint.value
        << ' ';
    bool first = true;
    for (const std::uint32_t region : segment.regions) {
      if (!first) out << '|';
      out << region;
      first = false;
    }
    if (first) out << '-';
    out << ' ';
    first = true;
    for (const std::uint32_t network : segment.dest_slash24s) {
      if (!first) out << '|';
      out << Ipv4(network).to_string();
      first = false;
    }
    if (first) out << '-';
    out << '\n';
  }
}

Fabric read_fabric(std::istream& in) {
  Fabric fabric;
  // Mirror Fabric's (abi, cbi) dedup so repeated lines update the right
  // segment rather than whatever happens to be last.
  std::unordered_map<std::uint64_t, std::size_t> index;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] != 'S') continue;
    std::istringstream parser(line);
    std::string tag;
    std::string abi;
    std::string cbi;
    std::string prior;
    std::string post;
    int round = 1;
    int confirmation = 0;
    int shifted = 0;
    std::uint32_t owner = 0;
    std::string regions;
    std::string dests;
    if (!(parser >> tag >> abi >> cbi >> prior >> post >> round >>
          confirmation >> shifted >> owner >> regions >> dests))
      continue;

    // Parse and validate every field before mutating the fabric, so a line
    // that goes bad halfway is skipped whole rather than half-applied.
    const auto abi_addr = Ipv4::parse(abi);
    const auto cbi_addr = Ipv4::parse(cbi);
    if (!abi_addr || !cbi_addr) continue;
    if (confirmation < 0 ||
        confirmation > static_cast<int>(Confirmation::kAliasRelabel))
      continue;
    if (shifted != 0 && shifted != 1) continue;
    std::vector<std::uint32_t> parsed_regions;
    bool valid = true;
    if (regions != "-") {
      for (const std::string& token : split(regions, '|')) {
        const auto region = parse_u32(token);
        if (!region) {
          valid = false;
          break;
        }
        parsed_regions.push_back(*region);
      }
    }
    std::vector<std::uint32_t> parsed_dests;
    if (valid && dests != "-") {
      for (const std::string& token : split(dests, '|')) {
        const auto network = Ipv4::parse(token);
        if (!network) {
          valid = false;
          break;
        }
        parsed_dests.push_back(network->value());
      }
    }
    if (!valid) continue;

    // Rebuild through the public mutation API so the index stays coherent.
    CandidateSegment candidate;
    candidate.abi = *abi_addr;
    candidate.cbi = *cbi_addr;
    if (const auto parsed = Ipv4::parse(prior)) candidate.prior_abi = *parsed;
    if (const auto parsed = Ipv4::parse(post)) candidate.post_cbi = *parsed;
    candidate.destination = Ipv4{};
    fabric.add_segment(candidate, round);
    const std::uint64_t key =
        (static_cast<std::uint64_t>(candidate.abi.value()) << 32) |
        candidate.cbi.value();
    const auto [it, inserted] =
        index.emplace(key, fabric.segments().size() - 1);
    (void)inserted;
    InferredSegment& segment = fabric.segments()[it->second];
    segment.confirmation = static_cast<Confirmation>(confirmation);
    segment.shifted = shifted != 0;
    segment.owner_hint = Asn{owner};
    segment.regions.clear();
    segment.regions.insert(parsed_regions.begin(), parsed_regions.end());
    segment.dest_slash24s.clear();
    segment.sample_destinations.clear();
    segment.dest_slash24s.insert(parsed_dests.begin(), parsed_dests.end());
  }
  return fabric;
}

void write_pins(std::ostream& out, const PinningResult& result) {
  out << "address,metro,rule,anchor_source,round\n";
  for (const auto& [address, pin] : result.pins) {
    out << Ipv4(address).to_string() << ',' << pin.metro.value << ','
        << static_cast<int>(pin.rule) << ','
        << static_cast<int>(pin.anchor_source) << ',' << pin.round << '\n';
  }
}

PinningResult read_pins(std::istream& in) {
  PinningResult result;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::vector<std::string> fields = split(line, ',');
    if (fields.size() != 5) continue;
    if (fields[0] == "address") continue;  // header row
    const auto address = Ipv4::parse(fields[0]);
    const auto metro = parse_u32(fields[1]);
    const auto rule = parse_u32(fields[2]);
    const auto source = parse_u32(fields[3]);
    const auto round = parse_u32(fields[4]);
    if (!address || !metro || !rule || !source || !round) continue;
    if (*rule > static_cast<std::uint32_t>(PinRule::kShortLink)) continue;
    if (*source > static_cast<std::uint32_t>(AnchorSource::kNativeColo))
      continue;
    Pin pin;
    pin.metro = MetroId{*metro};
    pin.rule = static_cast<PinRule>(*rule);
    pin.anchor_source = static_cast<AnchorSource>(*source);
    pin.round = static_cast<int>(*round);
    result.pins[address->value()] = pin;
  }
  return result;
}

}  // namespace cloudmap
