// Serialization of campaign artifacts: traceroute records (a warts-like
// plain-text format), the inferred fabric, and pinning results. A real
// deployment runs its probing over days (the paper's sweep took 16) and
// analyzes offline; these round-trippable formats decouple collection from
// analysis.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "dataplane/traceroute.h"
#include "infer/fabric.h"
#include "pinning/pinning.h"

namespace cloudmap {

// --- traceroute records ---
// One line per record:
//   R <provider> <region> <dst> <status> <hop>[,<hop>...]
// where <hop> is `addr:rtt` for a response or `*` for silence.
void write_record(std::ostream& out, const TracerouteRecord& record);
std::optional<TracerouteRecord> read_record(const std::string& line);

void write_records(std::ostream& out,
                   const std::vector<TracerouteRecord>& records);
std::vector<TracerouteRecord> read_records(std::istream& in);

// --- inferred fabric ---
// One line per segment:
//   S <abi> <cbi> <prior> <post> <round> <confirmation> <shifted>
//     <owner_hint> <regions:a|b|...> <dest24s:x|y|...>
// (adjacency data is campaign-internal and not persisted).
//
// read_fabric is strict per line and never throws: a line with truncated
// fields, a malformed address/number, or an out-of-range enum value is
// skipped whole (nothing half-applied). Duplicate (abi, cbi) lines merge
// through the same dedup path the live Fabric uses — the later line's
// fields win.
void write_fabric(std::ostream& out, const Fabric& fabric);
Fabric read_fabric(std::istream& in);

// --- pinning result ---
// CSV: address,metro_index,rule,anchor_source,round (header row included).
// read_pins is the loader counterpart: it fills PinningResult::pins only
// (the propagation statistics are campaign-time artifacts and are not part
// of the text format), skipping the header and any malformed row.
void write_pins(std::ostream& out, const PinningResult& result);
PinningResult read_pins(std::istream& in);

}  // namespace cloudmap
