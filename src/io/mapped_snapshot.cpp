#include "io/mapped_snapshot.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstring>
#include <utility>

#include "io/snapshot.h"
#include "io/snapshot_v3.h"
#include "io/wire.h"

namespace cloudmap {
namespace {

// Container framing, as documented in io/snapshot.h.
constexpr char kMagic[6] = {'C', 'M', 'S', 'N', 'A', 'P'};
constexpr std::size_t kHeaderSize = 12;    // magic + u16 version + u32 count
constexpr std::size_t kTableEntrySize = 24;  // id + offset + size + crc

bool fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = "snapshot: " + message;
  return false;
}

}  // namespace

MappedSnapshot::~MappedSnapshot() { reset(); }

MappedSnapshot::MappedSnapshot(MappedSnapshot&& other) noexcept {
  *this = std::move(other);
}

MappedSnapshot& MappedSnapshot::operator=(MappedSnapshot&& other) noexcept {
  if (this != &other) {
    reset();
    map_ = std::exchange(other.map_, nullptr);
    map_size_ = std::exchange(other.map_size_, 0);
    blob_ = std::exchange(other.blob_, nullptr);
    blob_size_ = std::exchange(other.blob_size_, 0);
    seed_ = std::exchange(other.seed_, 0);
    threads_ = std::exchange(other.threads_, 0);
    subject_ = std::exchange(other.subject_, 0);
  }
  return *this;
}

void MappedSnapshot::reset() noexcept {
  if (map_ != nullptr) ::munmap(map_, map_size_);
  map_ = nullptr;
  map_size_ = 0;
  blob_ = nullptr;
  blob_size_ = 0;
}

std::optional<MappedSnapshot> MappedSnapshot::open(const std::string& path,
                                                   std::string* error) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    fail(error, "cannot open " + path);
    return std::nullopt;
  }
  struct stat st = {};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    fail(error, "cannot stat " + path);
    return std::nullopt;
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  if (size < kHeaderSize) {
    ::close(fd);
    fail(error, "file shorter than header");
    return std::nullopt;
  }
  void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps the file alive
  if (map == MAP_FAILED) {
    fail(error, "cannot mmap " + path);
    return std::nullopt;
  }

  MappedSnapshot snap;
  snap.map_ = map;
  snap.map_size_ = size;
  const auto* data = static_cast<const unsigned char*>(map);

  const auto reject = [&](const std::string& message)
      -> std::optional<MappedSnapshot> {
    fail(error, message);
    return std::nullopt;  // snap's destructor unmaps
  };

  if (std::memcmp(data, kMagic, sizeof(kMagic)) != 0)
    return reject("bad magic (not a cloudmap snapshot)");
  wire::Cursor header{data, size, sizeof(kMagic)};
  const std::uint16_t version = header.u16();
  if (version != kSnapshotFormatVersion)
    return reject("zero-copy load needs format version " +
                  std::to_string(kSnapshotFormatVersion) + ", file is " +
                  std::to_string(version) +
                  " (load it with the copying loader and re-save)");
  const std::uint32_t section_count = header.u32();
  if (section_count > 1024) return reject("implausible section count");
  if (!header.need(std::size_t{section_count} * kTableEntrySize))
    return reject("truncated section table");

  // Same container discipline as the copying loader: every section's CRC
  // must verify and every byte must be owned by the header, the table, or a
  // payload. Unknown section ids are skipped (forward compat).
  bool seen_meta = false;
  bool seen_flat = false;
  std::uint64_t end_of_payloads =
      kHeaderSize + std::uint64_t{section_count} * kTableEntrySize;
  for (std::uint32_t i = 0; i < section_count; ++i) {
    const std::uint32_t id = header.u32();
    const std::uint64_t offset = header.u64();
    const std::uint64_t payload_size = header.u64();
    const std::uint32_t crc = header.u32();
    if (offset > size || payload_size > size - offset)
      return reject("section " + std::to_string(id) +
                    " extends past end of file");
    end_of_payloads = std::max(end_of_payloads, offset + payload_size);
    if (snapshot_crc32(data + offset, payload_size) != crc)
      return reject("section " + std::to_string(id) + " CRC mismatch");
    if (id == static_cast<std::uint32_t>(SnapshotSection::kMeta)) {
      if (seen_meta) return reject("duplicate section 1");
      seen_meta = true;
      wire::Cursor body{data + offset, static_cast<std::size_t>(payload_size),
                        0};
      snap.seed_ = body.u64();
      snap.threads_ = body.i32();
      snap.subject_ = body.u8();
      bool pad_ok = true;
      for (int b = 0; b < 7; ++b) pad_ok = pad_ok && body.u8() == 0;
      if (!pad_ok || !body.at_end())
        return reject("section 1 is malformed (bad field or trailing bytes)");
    } else if (id == static_cast<std::uint32_t>(SnapshotSection::kFlatFabric)) {
      if (seen_flat) return reject("duplicate section 7");
      seen_flat = true;
      if (offset % 8 != 0)
        return reject("flat fabric section is not 8-byte aligned");
      std::string flat_error;
      if (!snapv3::validate_flat_fabric(
              data + offset, static_cast<std::size_t>(payload_size),
              &flat_error))
        return reject(flat_error);
      snap.blob_ = data + offset;
      snap.blob_size_ = static_cast<std::size_t>(payload_size);
    }
  }
  if (!seen_meta) return reject("missing required section 1");
  if (!seen_flat) return reject("missing required section 7");
  if (end_of_payloads != size)
    return reject("trailing bytes past the last section");
  return snap;
}

}  // namespace cloudmap
