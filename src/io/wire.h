// Shared little-endian wire primitives: buffered append helpers for
// serializers and a bounds-checked read cursor for parsers. Extracted from
// the snapshot codec so the snapshot sections (io/snapshot.cpp), the flat
// v3 fabric blob (io/snapshot_v3.cpp), and the serve daemon's framed
// protocol (serve/protocol.cpp) all agree on byte order and on the
// never-read-past-the-end parsing discipline.
//
// Writers append fixed-width fields in one capacity-checked call each (a
// stack buffer plus one memcpy), so encoders that reserve their exact
// payload size up front perform no reallocation. The Cursor saturates: the
// first out-of-bounds read sets `failed` and every later read returns zero,
// so decoders can run a whole record unconditionally and check once.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>

namespace cloudmap::wire {

template <typename T>
void put_le(std::string& out, T v) {
  char buf[sizeof(T)];
  for (std::size_t i = 0; i < sizeof(T); ++i)
    buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  out.append(buf, sizeof(T));
}

inline void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}
inline void put_u16(std::string& out, std::uint16_t v) { put_le(out, v); }
inline void put_u32(std::string& out, std::uint32_t v) { put_le(out, v); }
inline void put_u64(std::string& out, std::uint64_t v) { put_le(out, v); }
inline void put_i32(std::string& out, std::int32_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
}
inline void put_f64(std::string& out, double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}
inline void put_string(std::string& out, const std::string& v) {
  put_u32(out, static_cast<std::uint32_t>(v.size()));
  out.append(v);
}

// --- bounds-checked cursor over a byte buffer -----------------------------

struct Cursor {
  const unsigned char* data;
  std::size_t size;
  std::size_t pos = 0;
  bool failed = false;

  bool need(std::size_t n) {
    if (failed || size - pos < n || pos > size) {
      failed = true;
      return false;
    }
    return true;
  }
  std::uint8_t u8() {
    if (!need(1)) return 0;
    return data[pos++];
  }
  std::uint16_t u16() {
    if (!need(2)) return 0;
    std::uint16_t v = 0;
    for (int i = 0; i < 2; ++i)
      v = static_cast<std::uint16_t>(v | (std::uint16_t{data[pos + i]}
                                          << (8 * i)));
    pos += 2;
    return v;
  }
  std::uint32_t u32() {
    if (!need(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t{data[pos + i]} << (8 * i);
    pos += 4;
    return v;
  }
  std::uint64_t u64() {
    if (!need(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{data[pos + i]} << (8 * i);
    pos += 8;
    return v;
  }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  double f64() {
    const std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::string str() {
    const std::uint32_t n = u32();
    if (!need(n)) return {};
    std::string v(reinterpret_cast<const char*>(data + pos), n);
    pos += n;
    return v;
  }
  bool at_end() const { return !failed && pos == size; }
};

// --- hardening helpers for untrusted input --------------------------------
//
// Every length, count, and enum read off the wire is attacker-controlled:
// a forged 4 GiB count must fail fast against the bytes actually present,
// never reach an allocator, and a forged enum byte must never be cast into
// a C++ enum whose switch it would fall out of. These helpers make the
// checked form the easy form; the `untrusted-read` lint family
// (tools/lint/cloudmap_lint.py) flags parse-path code that bypasses them.

// Read a u32 element count and require that at least `min_elem_size` bytes
// per element remain in the buffer — the declared-count-vs-actual-bytes
// cap. On violation the cursor fails and 0 is returned, so a decoder can
// reserve()/loop on the result unconditionally.
inline std::uint32_t bounded_count(Cursor& in, std::size_t min_elem_size) {
  const std::uint32_t count = in.u32();
  // count ≤ 2^32 and min_elem_size is a small constant: no overflow in the
  // 64-bit product.
  if (!in.need(std::size_t{count} * min_elem_size)) return 0;
  return count;
}

// Read an integer or enum of T's wire width and require the raw value be
// ≤ max_value. The cast from wire bits to T lives here, once, behind the
// range check. Usage: `kind = checked_read<QueryKind>(in, kQueryKindCount - 1)`.
template <typename T>
T checked_read(Cursor& in, std::uint64_t max_value) {
  using U = typename std::conditional_t<std::is_enum_v<T>,
                                        std::underlying_type<T>,
                                        std::type_identity<T>>::type;
  static_assert(std::is_unsigned_v<U>, "wire fields are unsigned");
  std::uint64_t raw = 0;
  if constexpr (sizeof(U) == 1) raw = in.u8();
  else if constexpr (sizeof(U) == 2) raw = in.u16();
  else if constexpr (sizeof(U) == 4) raw = in.u32();
  else raw = in.u64();
  if (raw > max_value) {
    in.failed = true;
    return T{};
  }
  return static_cast<T>(static_cast<U>(raw));
}

// A wire boolean: a u8 that must be exactly 0 or 1. Anything else fails the
// cursor, so non-canonical input cannot round-trip to different bytes.
inline bool get_bool(Cursor& in) {
  return checked_read<std::uint8_t>(in, 1) != 0;
}

}  // namespace cloudmap::wire
