// Versioned binary snapshot of a full pipeline run (query/snapshot.h),
// replacing N separate text files on the serve path: one file captures the
// annotated fabric, pinning, alias sets, and stage metrics, and loads in one
// pass into the query engine.
//
// Byte layout (all integers little-endian, fixed width; full spec with the
// per-section record formats in DESIGN.md §7–§8 and §11):
//
//   header   magic "CMSNAP" (6 bytes) | u16 format version (= 3)
//            | u32 section count
//   table    section count × { u32 section id, u64 payload offset (from
//            file start), u64 payload size, u32 CRC-32 of the payload }
//   payloads concatenated in table order
//
// Sections (ids are stable; readers skip unknown ids so additive sections
// do not need a version bump): 1 meta, 2 segments, 3 pins, 4 alias sets,
// 5 stage metrics, 6 per-segment confidence (v2), 7 flat fabric (v3).
// CRC-32 is the zlib polynomial (0xEDB88320), so tools/diff_snapshots.py
// verifies with Python's zlib.crc32.
//
// Versioning: v2 added the confidence section and the retry counters in
// each stage-metrics record. v3 replaces sections 2–6 with one "flat
// fabric" section (io/snapshot_v3.h) whose payload is the query layer's
// in-memory layout — the v3 meta payload is padded to 20 bytes so that
// payload always starts at file offset 80, 8-byte aligned for the mmap
// path (io/mapped_snapshot.h). The loader still accepts v1 and v2 files
// via the copying path; the writer emits either legacy layout on request
// (version = 1 or 2) for compatibility tests and downgrades.
//
// Determinism contract: save_snapshot() canonicalizes collection order, and
// every v3 index array derives deterministically from the canonical
// segments, so save → load → save produces byte-identical files (enforced
// in CI). A corrupted or truncated file is rejected with a diagnostic —
// never a crash or a silent partial load.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>

#include "query/snapshot.h"

namespace cloudmap {

inline constexpr std::uint16_t kSnapshotFormatVersion = 3;
// Oldest version the loader still accepts.
inline constexpr std::uint16_t kSnapshotMinFormatVersion = 1;

// Section ids of the current format.
enum class SnapshotSection : std::uint32_t {
  kMeta = 1,
  kSegments = 2,     // v1/v2
  kPins = 3,         // v1/v2
  kAliases = 4,      // v1/v2
  kMetrics = 5,      // v1/v2
  kConfidence = 6,   // v2: one record per segment, same order as kSegments
  kFlatFabric = 7,   // v3: the zero-copy blob (io/snapshot_v3.h)
  // Optional hazard provenance (scenario/hazard.h): the profile spec string
  // plus name→double scorecard metrics. Written only when the snapshot
  // carries a non-empty profile — additive, so no version bump; pre-hazard
  // readers (including the mmap path and tools/diff_snapshots.py) skip it.
  kHazard = 8,
};

// Serialize (canonicalizing collection order first; see query/snapshot.h).
// `version` selects the on-disk layout: 1 writes the legacy v1 layout (no
// confidence section, no retry counters in the metrics records), 2 writes
// the sectioned v2 layout; anything else writes the current flat format.
void save_snapshot(std::ostream& out, const RunSnapshot& snapshot,
                   std::uint16_t version = kSnapshotFormatVersion);
bool save_snapshot_file(const std::string& path, const RunSnapshot& snapshot,
                        std::string* error = nullptr,
                        std::uint16_t version = kSnapshotFormatVersion);

// Parse and validate: magic, version, section-table bounds, per-section
// CRC, and per-field range checks. Returns nullopt (and a one-line
// diagnostic in *error, when given) on any violation.
std::optional<RunSnapshot> load_snapshot(std::istream& in,
                                         std::string* error = nullptr);
std::optional<RunSnapshot> load_snapshot_file(const std::string& path,
                                              std::string* error = nullptr);

// CRC-32 (zlib polynomial) over a byte buffer; exposed for tests.
std::uint32_t snapshot_crc32(const unsigned char* data, std::size_t size);

}  // namespace cloudmap
