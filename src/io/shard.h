// Shard part files: the interchange format of the multi-process campaign
// (infer/campaign.h's shard protocol). Each shard process streams its owned
// work items' SweepChunkResults — in increasing canonical index — into one
// part file per round; the merge side opens all N parts of a round and
// replays the results in GLOBAL canonical order, which is the order the
// byte-identity invariant rests on.
//
// Byte layout (all integers little-endian, fixed width):
//
//   header   magic "CMSHARD2" (8 bytes)
//            | u64 config digest   (shard_digest of the producer's key)
//            | u32 round           (1 or 2)
//            | u32 shard index     | u32 shard count
//            | u64 total items     (canonical work items of the WHOLE sweep)
//            | u64 target count    (the sweep's target-list length)
//            | u64 record count    (records in THIS part; patched on finish)
//            | u32 CRC-32 of the 52 header bytes above
//   records  record count × { u64 canonical item index
//                             | u32 payload size | payload
//                             | u32 CRC-32 of the payload }
//
// The payload is the wire encoding of one SweepChunkResult (counters, walk
// stats, adjacencies, candidate segments). CRC-32 is the zlib polynomial
// (io/snapshot.h's snapshot_crc32): the header CRC means a bit flip in any
// identity field (digest, round, totals) is rejected at open, and the
// per-record CRC means a truncated or bit-rotted record is rejected with a
// diagnostic instead of corrupting the merge. Every declared length is
// additionally capped against the file's actual size before any allocation
// (see DESIGN.md §14, the untrusted-input contract).
//
// Memory model: both sides stream. The writer holds one record; the merge
// holds one open cursor per part and one in-flight record — absorbing N
// parts of any size is O(N) resident, never O(items). That is what keeps
// the merge process's RSS flat at Internet scale.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "infer/campaign.h"

namespace cloudmap {

// FNV-1a over a canonical configuration key. Shard and merge processes
// derive the key from every knob that changes campaign results (seed,
// subject, strides, hazards, ...); a digest mismatch at merge time means
// the parts were produced under a different configuration and the merged
// output would NOT be byte-identical to a single-process run.
std::uint64_t shard_digest(const std::string& key);

// Canonical part path: "<prefix>.r<round>.s<index>of<count>.part".
std::string shard_part_path(const std::string& prefix, int round,
                            int shard_index, int shard_count);

// The fixed-size part header (see layout above).
struct ShardPartHeader {
  std::uint64_t config_digest = 0;
  std::uint32_t round = 0;
  std::uint32_t shard_index = 0;
  std::uint32_t shard_count = 0;
  std::uint64_t total_items = 0;
  std::uint64_t target_count = 0;
  std::uint64_t record_count = 0;  // filled by ShardPartWriter::finish
};

// Streams one shard's results to disk. Usage: open → append (once per owned
// item, increasing canonical index) → finish (patches the record count into
// the header; a part without it is detected as truncated by the reader).
class ShardPartWriter {
 public:
  bool open(const std::string& path, const ShardPartHeader& header,
            std::string* error);
  bool append(std::uint64_t item, const Campaign::SweepChunkResult& result,
              std::string* error);
  bool finish(std::string* error);

 private:
  std::ofstream out_;
  std::string path_;
  ShardPartHeader header_;
  std::uint64_t records_ = 0;
};

// Sequential reader over one part file; validates the header on open and
// every record's CRC on read.
class ShardPartReader {
 public:
  bool open(const std::string& path, std::string* error);
  const ShardPartHeader& header() const noexcept { return header_; }
  const std::string& path() const noexcept { return path_; }
  // False once record_count records were read; throws std::runtime_error on
  // a short read or CRC mismatch (truncation / corruption).
  bool next(std::uint64_t& item, Campaign::SweepChunkResult& result);

 private:
  std::ifstream in_;
  std::string path_;
  ShardPartHeader header_;
  std::uint64_t read_ = 0;
  std::uint64_t file_size_ = 0;  // declared sizes are capped against this
  std::uint64_t offset_ = 0;     // bytes consumed so far
};

// K-way merge over the N parts of one round, yielding results in global
// canonical item order (item j comes from the part owning j, i.e. shard
// j % N). open() validates the set: consistent digest / round / totals
// across parts, every shard index 0..N-1 present exactly once, and each
// part's record count equal to its owned-item count — duplicates, gaps,
// and truncated parts are rejected with a diagnostic before any result is
// consumed.
class ShardMerge {
 public:
  bool open(const std::vector<std::string>& paths, std::string* error);
  const ShardPartHeader& header() const noexcept { return reference_; }
  // Campaign::ShardSource: false exactly once, after total_items results.
  // Throws std::runtime_error on out-of-order items or mid-stream
  // corruption.
  bool next(Campaign::SweepChunkResult& result);

 private:
  std::vector<ShardPartReader> readers_;  // indexed by shard index
  ShardPartHeader reference_;
  std::uint64_t next_item_ = 0;
};

}  // namespace cloudmap
