// lint: hot-path
#include "io/snapshot.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

#include "io/snapshot_v3.h"
#include "io/wire.h"

namespace cloudmap {

namespace {

constexpr char kMagic[6] = {'C', 'M', 'S', 'N', 'A', 'P'};
constexpr std::size_t kHeaderSize = 6 + 2 + 4;
constexpr std::size_t kTableEntrySize = 4 + 8 + 8 + 4;

// Little-endian append helpers and the bounds-checked read cursor live in
// io/wire.h (shared with the v3 flat blob and the serve protocol). Each
// fixed-width field is appended in one capacity-checked call, and the
// encoders below reserve each section's exact payload size up front, so
// building a section performs no reallocation at all.
using wire::Cursor;
using wire::put_f64;
using wire::put_i32;
using wire::put_string;
using wire::put_u16;
using wire::put_u32;
using wire::put_u64;
using wire::put_u8;

// --- section payloads -----------------------------------------------------

std::string encode_meta(const RunSnapshot& s) {
  std::string out;
  put_u64(out, s.seed);
  put_i32(out, s.threads);
  put_u8(out, s.subject);
  return out;
}

std::string encode_segments(const RunSnapshot& s) {
  std::string out;
  std::size_t payload = 4;
  for (const SnapshotSegment& seg : s.segments)
    payload += 43 + 4 * seg.regions.size() + 4 * seg.dest_slash24s.size();
  out.reserve(payload);
  put_u32(out, static_cast<std::uint32_t>(s.segments.size()));
  for (const SnapshotSegment& seg : s.segments) {
    put_u32(out, seg.abi.value());
    put_u32(out, seg.cbi.value());
    put_u32(out, seg.prior_abi.value());
    put_u32(out, seg.post_cbi.value());
    put_i32(out, seg.first_round);
    put_u8(out, static_cast<std::uint8_t>(seg.confirmation));
    put_u8(out, static_cast<std::uint8_t>((seg.shifted ? 1 : 0) |
                                          (seg.ixp ? 2 : 0) |
                                          (seg.vpi ? 4 : 0)));
    put_u8(out, seg.group);
    put_u32(out, seg.owner_hint.value);
    put_u32(out, seg.peer_asn.value);
    put_u32(out, seg.peer_org.value);
    put_u32(out, static_cast<std::uint32_t>(seg.regions.size()));
    for (const std::uint32_t region : seg.regions) put_u32(out, region);
    put_u32(out, static_cast<std::uint32_t>(seg.dest_slash24s.size()));
    for (const std::uint32_t dest : seg.dest_slash24s) put_u32(out, dest);
  }
  return out;
}

std::string encode_pins(const RunSnapshot& s) {
  std::string out;
  out.reserve(8 + 14 * s.pins.size() + 8 * s.regional.size());
  put_u32(out, static_cast<std::uint32_t>(s.pins.size()));
  for (const SnapshotPin& pin : s.pins) {
    put_u32(out, pin.address);
    put_u32(out, pin.metro);
    put_u8(out, pin.rule);
    put_u8(out, pin.anchor_source);
    put_i32(out, pin.round);
  }
  put_u32(out, static_cast<std::uint32_t>(s.regional.size()));
  for (const auto& [address, region] : s.regional) {
    put_u32(out, address);
    put_u32(out, region);
  }
  return out;
}

std::string encode_aliases(const RunSnapshot& s) {
  std::string out;
  std::size_t payload = 4;
  for (const std::vector<std::uint32_t>& set : s.alias_sets)
    payload += 4 + 4 * set.size();
  out.reserve(payload);
  put_u32(out, static_cast<std::uint32_t>(s.alias_sets.size()));
  for (const std::vector<std::uint32_t>& set : s.alias_sets) {
    put_u32(out, static_cast<std::uint32_t>(set.size()));
    for (const std::uint32_t member : set) put_u32(out, member);
  }
  return out;
}

std::string encode_metrics(const RunSnapshot& s, std::uint16_t version) {
  std::string out;
  std::size_t payload = 4;
  for (const StageReport& report : s.stage_reports) {
    payload += 69 + (version >= 2 ? 32 : 0);
    for (const auto& [name, value] : report.tallies)
      payload += 4 + name.size() + 8;
  }
  out.reserve(payload);
  put_u32(out, static_cast<std::uint32_t>(s.stage_reports.size()));
  for (const StageReport& report : s.stage_reports) {
    put_u8(out, static_cast<std::uint8_t>(report.id));
    put_i32(out, report.threads);
    put_u32(out, report.workers);
    put_u64(out, report.targets);
    put_u64(out, report.traceroutes);
    put_u64(out, report.probes);
    put_u64(out, report.bgp_cache_hits);
    put_u64(out, report.bgp_cache_misses);
    if (version >= 2) {
      put_u64(out, report.retries);
      put_u64(out, report.backoff_waits);
      put_u64(out, report.backoff_ticks);
      put_u64(out, report.recovered_targets);
    }
    put_f64(out, report.wall_ms);
    put_f64(out, report.worker_utilization);
    put_u32(out, static_cast<std::uint32_t>(report.tallies.size()));
    for (const auto& [name, value] : report.tallies) {
      put_string(out, name);
      put_f64(out, value);
    }
  }
  return out;
}

std::string encode_confidence(const RunSnapshot& s) {
  std::string out;
  out.reserve(4 + 24 * s.segments.size());
  put_u32(out, static_cast<std::uint32_t>(s.segments.size()));
  for (const SnapshotSegment& seg : s.segments) {
    put_u32(out, seg.observations);
    put_u32(out, seg.rounds_mask);
    put_f64(out, seg.hop_density);
    put_f64(out, seg.confidence);
  }
  return out;
}

// Optional hazard-provenance section (id 8): profile spec string + sorted
// name→double scorecard metrics. Only written when the profile is
// non-empty, so hazard-free snapshots keep their exact pre-hazard bytes.
std::string encode_hazard(const RunSnapshot& s) {
  std::string out;
  std::size_t payload = 4 + s.hazard_profile.size() + 4;
  for (const auto& [name, value] : s.hazard_metrics)
    payload += 4 + name.size() + 8;
  out.reserve(payload);
  put_string(out, s.hazard_profile);
  put_u32(out, static_cast<std::uint32_t>(s.hazard_metrics.size()));
  for (const auto& [name, value] : s.hazard_metrics) {
    put_string(out, name);
    put_f64(out, value);
  }
  return out;
}

// --- section decoders (each over its own bounds-checked cursor) -----------

bool decode_meta(Cursor& in, RunSnapshot& s) {
  s.seed = in.u64();
  s.threads = in.i32();
  s.subject = in.u8();
  return in.at_end();
}

// v3 pads the meta payload to 20 bytes for alignment; the reserved bytes
// must be zero so they stay available for future fields.
bool decode_meta_v3(Cursor& in, RunSnapshot& s) {
  s.seed = in.u64();
  s.threads = in.i32();
  s.subject = in.u8();
  for (int i = 0; i < 7; ++i)
    if (in.u8() != 0) return false;
  return in.at_end();
}

bool decode_segments(Cursor& in, RunSnapshot& s) {
  // Every declared count below is capped against the bytes actually
  // present (wire::bounded_count) before the reserve, so a forged count
  // field fails the section instead of reaching the allocator.
  const std::uint32_t count = wire::bounded_count(in, 43);
  for (std::uint32_t i = 0; i < count && !in.failed; ++i) {
    SnapshotSegment seg;
    seg.abi = Ipv4(in.u32());
    seg.cbi = Ipv4(in.u32());
    seg.prior_abi = Ipv4(in.u32());
    seg.post_cbi = Ipv4(in.u32());
    seg.first_round = in.i32();
    seg.confirmation = wire::checked_read<Confirmation>(
        in, static_cast<std::uint8_t>(Confirmation::kAliasRelabel));
    const std::uint8_t flags = in.u8();
    if (flags > 7) return false;
    seg.shifted = (flags & 1) != 0;
    seg.ixp = (flags & 2) != 0;
    seg.vpi = (flags & 4) != 0;
    seg.group = in.u8();
    if (seg.group != kSnapshotNoGroup && seg.group >= 6) return false;
    seg.owner_hint = Asn{in.u32()};
    seg.peer_asn = Asn{in.u32()};
    seg.peer_org = OrgId{in.u32()};
    const std::uint32_t region_count = wire::bounded_count(in, 4);
    seg.regions.reserve(region_count);
    for (std::uint32_t r = 0; r < region_count && !in.failed; ++r)
      seg.regions.push_back(in.u32());
    const std::uint32_t dest_count = wire::bounded_count(in, 4);
    seg.dest_slash24s.reserve(dest_count);
    for (std::uint32_t d = 0; d < dest_count && !in.failed; ++d)
      seg.dest_slash24s.push_back(in.u32());
    s.segments.push_back(std::move(seg));
  }
  return in.at_end();
}

bool decode_pins(Cursor& in, RunSnapshot& s) {
  const std::uint32_t pin_count = wire::bounded_count(in, 14);
  for (std::uint32_t i = 0; i < pin_count && !in.failed; ++i) {
    SnapshotPin pin;
    pin.address = in.u32();
    pin.metro = in.u32();
    pin.rule = wire::checked_read<std::uint8_t>(in, 2);  // PinRule range
    pin.anchor_source =
        wire::checked_read<std::uint8_t>(in, 4);  // AnchorSource range
    pin.round = in.i32();
    s.pins.push_back(pin);
  }
  const std::uint32_t regional_count = wire::bounded_count(in, 8);
  for (std::uint32_t i = 0; i < regional_count && !in.failed; ++i) {
    const std::uint32_t address = in.u32();
    const std::uint32_t region = in.u32();
    s.regional.emplace_back(address, region);
  }
  return in.at_end();
}

bool decode_aliases(Cursor& in, RunSnapshot& s) {
  const std::uint32_t set_count = wire::bounded_count(in, 4);
  for (std::uint32_t i = 0; i < set_count && !in.failed; ++i) {
    const std::uint32_t member_count = wire::bounded_count(in, 4);
    std::vector<std::uint32_t> set;
    set.reserve(member_count);
    for (std::uint32_t m = 0; m < member_count && !in.failed; ++m)
      set.push_back(in.u32());
    s.alias_sets.push_back(std::move(set));
  }
  return in.at_end();
}

bool decode_metrics(Cursor& in, RunSnapshot& s, std::uint16_t version) {
  // 69 bytes is the v1 per-report floor; v2 reports are larger, so the
  // count-vs-bytes cap below is valid for both layouts.
  const std::uint32_t report_count = wire::bounded_count(in, 69);
  for (std::uint32_t i = 0; i < report_count && !in.failed; ++i) {
    StageReport report;
    report.id = wire::checked_read<StageId>(in, kStageCount - 1);
    report.threads = in.i32();
    report.workers = in.u32();
    report.targets = in.u64();
    report.traceroutes = in.u64();
    report.probes = in.u64();
    report.bgp_cache_hits = in.u64();
    report.bgp_cache_misses = in.u64();
    if (version >= 2) {
      report.retries = in.u64();
      report.backoff_waits = in.u64();
      report.backoff_ticks = in.u64();
      report.recovered_targets = in.u64();
    }
    report.wall_ms = in.f64();
    report.worker_utilization = in.f64();
    // 12 = u32 name length (empty name) + f64 value.
    const std::uint32_t tally_count = wire::bounded_count(in, 12);
    for (std::uint32_t t = 0; t < tally_count && !in.failed; ++t) {
      std::string name = in.str();
      const double value = in.f64();
      report.tallies.emplace_back(std::move(name), value);
    }
    s.stage_reports.push_back(std::move(report));
  }
  return in.at_end();
}

// One decoded confidence record; buffered instead of applied in place so
// the loader tolerates the confidence section appearing before the segments
// section in the table (the count check runs after every section decoded).
struct ConfidenceRecord {
  std::uint32_t observations = 0;
  std::uint32_t rounds_mask = 0;
  double hop_density = 0.0;
  double confidence = 0.0;
};

bool decode_confidence(Cursor& in, std::vector<ConfidenceRecord>& records) {
  const std::uint32_t count = wire::bounded_count(in, 24);
  records.reserve(count);
  for (std::uint32_t i = 0; i < count && !in.failed; ++i) {
    ConfidenceRecord record;
    record.observations = in.u32();
    record.rounds_mask = in.u32();
    record.hop_density = in.f64();
    record.confidence = in.f64();
    // Both are scores in [0, 1]; the negated comparisons also reject NaN.
    if (!(record.hop_density >= 0.0) || record.hop_density > 1.0) return false;
    if (!(record.confidence >= 0.0) || record.confidence > 1.0) return false;
    records.push_back(record);
  }
  return in.at_end();
}

bool decode_hazard(Cursor& in, RunSnapshot& s) {
  s.hazard_profile = in.str();
  // The writer omits the section for an empty profile; a present-but-empty
  // one would not re-save byte-identically, so it is malformed.
  if (s.hazard_profile.empty()) return false;
  // 12 = u32 name length (empty name) + f64 value.
  const std::uint32_t metric_count = wire::bounded_count(in, 12);
  for (std::uint32_t i = 0; i < metric_count && !in.failed; ++i) {
    std::string name = in.str();
    const double value = in.f64();
    s.hazard_metrics.emplace_back(std::move(name), value);
  }
  return in.at_end();
}

bool fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

}  // namespace

std::uint32_t snapshot_crc32(const unsigned char* data, std::size_t size) {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i)
    crc = table[(crc ^ data[i]) & 0xFF] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

void canonicalize(RunSnapshot& snapshot) {
  std::sort(snapshot.segments.begin(), snapshot.segments.end(),
            [](const SnapshotSegment& a, const SnapshotSegment& b) {
              if (a.abi != b.abi) return a.abi < b.abi;
              return a.cbi < b.cbi;
            });
  for (SnapshotSegment& seg : snapshot.segments) {
    std::sort(seg.regions.begin(), seg.regions.end());
    std::sort(seg.dest_slash24s.begin(), seg.dest_slash24s.end());
  }
  std::sort(snapshot.pins.begin(), snapshot.pins.end(),
            [](const SnapshotPin& a, const SnapshotPin& b) {
              return a.address < b.address;
            });
  std::sort(snapshot.regional.begin(), snapshot.regional.end());
  for (std::vector<std::uint32_t>& set : snapshot.alias_sets)
    std::sort(set.begin(), set.end());
  std::sort(snapshot.alias_sets.begin(), snapshot.alias_sets.end());
  std::sort(snapshot.stage_reports.begin(), snapshot.stage_reports.end(),
            [](const StageReport& a, const StageReport& b) {
              return stage_index(a.id) < stage_index(b.id);
            });
  for (StageReport& report : snapshot.stage_reports)
    std::sort(report.tallies.begin(), report.tallies.end());
  std::sort(snapshot.hazard_metrics.begin(), snapshot.hazard_metrics.end());
}

void save_snapshot(std::ostream& out, const RunSnapshot& snapshot,
                   std::uint16_t version) {
  // Anything other than an explicitly supported legacy layout writes the
  // current flat format.
  if (version != 1 && version != 2) version = kSnapshotFormatVersion;
  RunSnapshot canonical = snapshot;
  canonicalize(canonical);

  struct Section {
    SnapshotSection id;
    std::string payload;
  };
  std::vector<Section> sections;
  if (version >= 3) {
    // v3: meta (padded to 20 bytes so the flat payload lands at file offset
    // 12 + 2×24 + 20 = 80, a multiple of 8 — the mmap path casts the
    // payload to its record structs in place) plus the flat fabric blob.
    std::string meta = encode_meta(canonical);
    meta.append(20 - meta.size(), '\0');
    sections.push_back({SnapshotSection::kMeta, std::move(meta)});
    sections.push_back({SnapshotSection::kFlatFabric,
                        snapv3::encode_flat_fabric(canonical)});
    if (!canonical.hazard_profile.empty())
      sections.push_back({SnapshotSection::kHazard, encode_hazard(canonical)});
  } else {
    sections = {
        {SnapshotSection::kMeta, encode_meta(canonical)},
        {SnapshotSection::kSegments, encode_segments(canonical)},
        {SnapshotSection::kPins, encode_pins(canonical)},
        {SnapshotSection::kAliases, encode_aliases(canonical)},
        {SnapshotSection::kMetrics, encode_metrics(canonical, version)},
    };
    if (version >= 2)
      sections.push_back(
          {SnapshotSection::kConfidence, encode_confidence(canonical)});
  }

  // Assemble header, table, and payloads into one buffer so the stream sees
  // a single write (the bytes are identical to writing section by section).
  std::size_t total = kHeaderSize + sections.size() * kTableEntrySize;
  for (const Section& section : sections) total += section.payload.size();
  std::string file;
  file.reserve(total);
  file.append(kMagic, sizeof(kMagic));
  put_u16(file, version);
  put_u32(file, static_cast<std::uint32_t>(sections.size()));
  std::uint64_t offset = kHeaderSize + sections.size() * kTableEntrySize;
  for (const Section& section : sections) {
    put_u32(file, static_cast<std::uint32_t>(section.id));
    put_u64(file, offset);
    put_u64(file, section.payload.size());
    put_u32(file,
            snapshot_crc32(
                reinterpret_cast<const unsigned char*>(section.payload.data()),
                section.payload.size()));
    offset += section.payload.size();
  }
  for (const Section& section : sections) file.append(section.payload);
  out.write(file.data(), static_cast<std::streamsize>(file.size()));
}

bool save_snapshot_file(const std::string& path, const RunSnapshot& snapshot,
                        std::string* error, std::uint16_t version) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return fail(error, "cannot open " + path + " for writing");
  save_snapshot(out, snapshot, version);
  out.flush();
  if (!out) return fail(error, "write to " + path + " failed");
  return true;
}

std::optional<RunSnapshot> load_snapshot(std::istream& in,
                                         std::string* error) {
  std::ostringstream buffer_stream;
  buffer_stream << in.rdbuf();
  const std::string buffer = buffer_stream.str();
  const auto* data = reinterpret_cast<const unsigned char*>(buffer.data());

  const auto reject = [&](const std::string& message)
      -> std::optional<RunSnapshot> {
    fail(error, "snapshot: " + message);
    return std::nullopt;
  };

  if (buffer.size() < kHeaderSize) return reject("file shorter than header");
  if (std::memcmp(buffer.data(), kMagic, sizeof(kMagic)) != 0)
    return reject("bad magic (not a cloudmap snapshot)");
  Cursor header{data, buffer.size(), sizeof(kMagic)};
  const std::uint16_t version = header.u16();
  if (version < kSnapshotMinFormatVersion || version > kSnapshotFormatVersion)
    return reject("unsupported format version " + std::to_string(version) +
                  " (expected " + std::to_string(kSnapshotMinFormatVersion) +
                  ".." + std::to_string(kSnapshotFormatVersion) + ")");
  const std::uint32_t section_count = header.u32();
  if (section_count > 1024) return reject("implausible section count");
  if (!header.need(std::size_t{section_count} * kTableEntrySize))
    return reject("truncated section table");

  // Known (and required) section ids depend on the version: v3 carries meta
  // plus the flat fabric blob; v1/v2 carry the sectioned layout (a v1 file
  // has no confidence section; its id is treated as unknown there, exactly
  // as v1 readers did). Anything else is skipped for forward compatibility.
  const bool flat = version >= 3;
  const std::uint32_t max_known_section = version >= 2 ? 6 : 5;
  RunSnapshot snapshot;
  std::vector<ConfidenceRecord> confidence;
  bool seen[9] = {};
  // Every byte must be owned by the header, the table, or a payload: a file
  // with unaccounted trailing bytes would not re-save byte-identically.
  std::uint64_t end_of_payloads =
      kHeaderSize + std::uint64_t{section_count} * kTableEntrySize;
  for (std::uint32_t i = 0; i < section_count; ++i) {
    const std::uint32_t id = header.u32();
    const std::uint64_t offset = header.u64();
    const std::uint64_t size = header.u64();
    const std::uint32_t crc = header.u32();
    if (offset > buffer.size() || size > buffer.size() - offset)
      return reject("section " + std::to_string(id) +
                    " extends past end of file");
    end_of_payloads = std::max(end_of_payloads, offset + size);
    if (snapshot_crc32(data + offset, size) != crc)
      return reject("section " + std::to_string(id) + " CRC mismatch");
    if (flat ? (id != 1 && id != 7 && id != 8)
             : (id < 1 || id > max_known_section))
      continue;  // unknown section: skip (forward compat)
    if (seen[id])
      return reject("duplicate section " + std::to_string(id));
    seen[id] = true;
    Cursor body{data + offset, static_cast<std::size_t>(size), 0};
    bool ok = false;
    switch (static_cast<SnapshotSection>(id)) {
      case SnapshotSection::kMeta:
        ok = flat ? decode_meta_v3(body, snapshot)
                  : decode_meta(body, snapshot);
        break;
      case SnapshotSection::kSegments:
        ok = decode_segments(body, snapshot);
        break;
      case SnapshotSection::kPins: ok = decode_pins(body, snapshot); break;
      case SnapshotSection::kAliases:
        ok = decode_aliases(body, snapshot);
        break;
      case SnapshotSection::kMetrics:
        ok = decode_metrics(body, snapshot, version);
        break;
      case SnapshotSection::kConfidence:
        ok = decode_confidence(body, confidence);
        break;
      case SnapshotSection::kFlatFabric: {
        // The buffer's alignment is whatever the string allocator gave us;
        // copy the blob to 8-aligned scratch before casting record structs
        // over it (this IS the copying path — the zero-copy one is
        // io/mapped_snapshot.h, where the mapping is page-aligned).
        std::vector<std::uint64_t> aligned((size + 7) / 8);
        if (size > 0) std::memcpy(aligned.data(), data + offset, size);
        const auto* blob =
            reinterpret_cast<const unsigned char*>(aligned.data());
        std::string flat_error;
        if (!snapv3::validate_flat_fabric(
                blob, static_cast<std::size_t>(size), &flat_error))
          return reject(flat_error);
        snapv3::decode_flat_fabric(blob, snapshot);
        ok = true;
        break;
      }
      case SnapshotSection::kHazard:
        ok = decode_hazard(body, snapshot);
        break;
    }
    if (!ok)
      return reject("section " + std::to_string(id) +
                    " is malformed (bad field or trailing bytes)");
  }
  const std::uint32_t first_required = 1;
  const std::uint32_t last_required = flat ? 7 : max_known_section;
  for (std::uint32_t id = first_required; id <= last_required; ++id) {
    if (flat && id > 1 && id < 7) continue;  // v3 has no sections 2–6
    if (!seen[id])
      return reject("missing required section " + std::to_string(id));
  }
  if (end_of_payloads != buffer.size())
    return reject("trailing bytes past the last section");
  if (!flat && version >= 2) {
    if (confidence.size() != snapshot.segments.size())
      return reject("confidence section has " +
                    std::to_string(confidence.size()) + " records for " +
                    std::to_string(snapshot.segments.size()) + " segments");
    for (std::size_t i = 0; i < confidence.size(); ++i) {
      snapshot.segments[i].observations = confidence[i].observations;
      snapshot.segments[i].rounds_mask = confidence[i].rounds_mask;
      snapshot.segments[i].hop_density = confidence[i].hop_density;
      snapshot.segments[i].confidence = confidence[i].confidence;
    }
  }
  return snapshot;
}

std::optional<RunSnapshot> load_snapshot_file(const std::string& path,
                                              std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    fail(error, "cannot open " + path);
    return std::nullopt;
  }
  return load_snapshot(in, error);
}

}  // namespace cloudmap
