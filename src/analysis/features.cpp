#include "analysis/features.h"

#include <unordered_map>
#include <unordered_set>

namespace cloudmap {

const char* to_string(PeerFeature feature) {
  switch (feature) {
    case PeerFeature::kBgpSlash24: return "BGP /24";
    case PeerFeature::kReachableSlash24: return "Reachable /24";
    case PeerFeature::kAbiCount: return "ABIs";
    case PeerFeature::kCbiCount: return "CBIs";
    case PeerFeature::kRttDiffMs: return "RTT diff (ms)";
    case PeerFeature::kMetroCount: return "Metros";
  }
  return "?";
}

GroupFeatureMatrix compute_group_features(
    const Fabric& fabric, const PeeringClassifier& classifier,
    const std::function<std::uint64_t(Asn)>& cone_of,
    const std::function<std::optional<double>(const InferredSegment&)>&
        rtt_diff,
    const PinningResult& pinning) {
  // Accumulate per (group, AS): the group-specific peering footprint.
  struct PerAs {
    std::unordered_set<std::uint32_t> reachable;
    std::unordered_set<std::uint32_t> abis;
    std::unordered_set<std::uint32_t> cbis;
    std::unordered_set<std::uint32_t> metros;
    std::vector<double> rtt_diffs;
  };
  std::array<std::unordered_map<std::uint32_t, PerAs>, kPeeringGroupCount>
      accumulate;

  for (const InferredSegment& segment : fabric.segments()) {
    const auto group = classifier.classify(segment);
    if (!group) continue;
    const Asn owner = classifier.segment_owner(segment);
    PerAs& record =
        accumulate[static_cast<std::size_t>(*group)][owner.value];
    record.reachable.insert(segment.dest_slash24s.begin(),
                            segment.dest_slash24s.end());
    record.abis.insert(segment.abi.value());
    record.cbis.insert(segment.cbi.value());
    if (const auto diff = rtt_diff(segment))
      record.rtt_diffs.push_back(*diff);
    const auto pin = pinning.pins.find(segment.cbi.value());
    if (pin != pinning.pins.end())
      record.metros.insert(pin->second.metro.value);
  }

  GroupFeatureMatrix out;
  for (std::size_t g = 0; g < kPeeringGroupCount; ++g) {
    auto& samples = out.samples[g];
    for (const auto& [asn, record] : accumulate[g]) {
      samples[static_cast<std::size_t>(PeerFeature::kBgpSlash24)].push_back(
          static_cast<double>(cone_of(Asn{asn})));
      samples[static_cast<std::size_t>(PeerFeature::kReachableSlash24)]
          .push_back(static_cast<double>(record.reachable.size()));
      samples[static_cast<std::size_t>(PeerFeature::kAbiCount)].push_back(
          static_cast<double>(record.abis.size()));
      samples[static_cast<std::size_t>(PeerFeature::kCbiCount)].push_back(
          static_cast<double>(record.cbis.size()));
      if (!record.rtt_diffs.empty())
        samples[static_cast<std::size_t>(PeerFeature::kRttDiffMs)].push_back(
            mean(record.rtt_diffs));
      if (!record.metros.empty())
        samples[static_cast<std::size_t>(PeerFeature::kMetroCount)].push_back(
            static_cast<double>(record.metros.size()));
    }
    for (std::size_t f = 0; f < kPeerFeatureCount; ++f)
      out.stats[g][f] = box_stats(samples[f]);
  }
  return out;
}

}  // namespace cloudmap
