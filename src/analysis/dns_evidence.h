// DNS-name evidence for hidden VPIs (§7.3): among private, BGP-invisible
// peerings, count CBIs whose reverse names carry VLAN tags or AWS
// direct-connect keywords (dxvif/dxcon/awsdx/aws-dx). The paper found these
// markers only in the Pr-nB groups — evidence that many Pr-nB-nV
// interconnections are really VPIs the overlap method could not see.
#pragma once

#include <array>
#include <cstddef>

#include "analysis/grouping.h"
#include "controlplane/dns.h"
#include "infer/fabric.h"

namespace cloudmap {

struct DnsEvidence {
  struct PerGroup {
    std::size_t cbis_with_names = 0;
    std::size_t vlan_tagged = 0;
    std::size_t dx_keyword = 0;
  };
  std::array<PerGroup, kPeeringGroupCount> groups;
};

DnsEvidence dns_vpi_evidence(const Fabric& fabric,
                             const PeeringClassifier& classifier,
                             const DnsRegistry& dns);

}  // namespace cloudmap
