#include "analysis/graph.h"

#include <unordered_map>

#include "util/union_find.h"

namespace cloudmap {

IcgStats icg_stats(const Fabric& fabric) {
  IcgStats out;

  // Node numbering: ABIs then CBIs (an address can in principle appear as
  // both after corrections; it is then a single node).
  std::unordered_map<std::uint32_t, std::size_t> node_of;
  auto node = [&](std::uint32_t address) {
    const auto [it, inserted] = node_of.emplace(address, node_of.size());
    (void)inserted;
    return it->second;
  };

  std::unordered_map<std::uint32_t, std::size_t> abi_degree;
  std::unordered_map<std::uint32_t, std::size_t> cbi_degree;
  std::vector<std::pair<std::size_t, std::size_t>> edges;
  for (const InferredSegment& segment : fabric.segments()) {
    edges.emplace_back(node(segment.abi.value()), node(segment.cbi.value()));
    ++abi_degree[segment.abi.value()];
    ++cbi_degree[segment.cbi.value()];
  }
  out.abi_nodes = abi_degree.size();
  out.cbi_nodes = cbi_degree.size();
  out.edges = edges.size();
  for (const auto& [address, degree] : abi_degree) {
    (void)address;
    out.abi_degrees.push_back(static_cast<double>(degree));
  }
  for (const auto& [address, degree] : cbi_degree) {
    (void)address;
    out.cbi_degrees.push_back(static_cast<double>(degree));
  }

  UnionFind components(node_of.size());
  for (const auto& [a, b] : edges) components.unite(a, b);
  out.components = components.components();
  if (!node_of.empty()) {
    out.largest_component_fraction =
        static_cast<double>(components.largest_component()) /
        static_cast<double>(node_of.size());
  }
  return out;
}

RemotePeeringStats remote_peering_stats(const Fabric& fabric,
                                        const PinningResult& pinning) {
  RemotePeeringStats out;
  std::size_t total = 0;
  for (const InferredSegment& segment : fabric.segments()) {
    ++total;
    const auto abi = pinning.pins.find(segment.abi.value());
    const auto cbi = pinning.pins.find(segment.cbi.value());
    if (abi == pinning.pins.end() || cbi == pinning.pins.end()) {
      ++out.one_or_no_end;
      continue;
    }
    ++out.both_ends_pinned;
    if (abi->second.metro == cbi->second.metro) ++out.same_metro;
    else ++out.cross_metro;
  }
  if (total > 0)
    out.both_pinned_fraction =
        static_cast<double>(out.both_ends_pinned) / static_cast<double>(total);
  if (out.both_ends_pinned > 0)
    out.same_metro_fraction = static_cast<double>(out.same_metro) /
                              static_cast<double>(out.both_ends_pinned);
  return out;
}

}  // namespace cloudmap
