// Study-report generation: renders a complete §7-style textual summary of a
// finished pipeline — fabric size, group breakdown, hybrid combinations,
// VPI lower bound, pinning coverage, graph structure — the artifact an
// operator or researcher reads first. Used by examples and tests; benches
// print finer-grained per-table views instead.
#pragma once

#include <string>

#include "core/pipeline.h"

namespace cloudmap {

struct ReportOptions {
  bool include_ground_truth = true;  // append the synthetic-only scoring
  int hybrid_rows = 8;               // top hybrid combinations to list
};

// Render the full study report. Runs any pipeline stages that have not run
// yet (the pipeline is taken by reference and memoizes).
std::string render_study_report(Pipeline& pipeline,
                                const ReportOptions& options = {});

}  // namespace cloudmap
