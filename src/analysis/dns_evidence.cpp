#include "analysis/dns_evidence.h"

#include <unordered_set>

namespace cloudmap {

DnsEvidence dns_vpi_evidence(const Fabric& fabric,
                             const PeeringClassifier& classifier,
                             const DnsRegistry& dns) {
  DnsEvidence out;
  std::unordered_set<std::uint32_t> counted;
  for (const InferredSegment& segment : fabric.segments()) {
    const auto group = classifier.classify(segment);
    if (!group) continue;
    if (!counted.insert(segment.cbi.value()).second) continue;
    const auto name = dns.name_of(segment.cbi);
    if (!name) continue;
    auto& row = out.groups[static_cast<std::size_t>(*group)];
    ++row.cbis_with_names;
    if (dns_has_vlan_tag(*name)) ++row.vlan_tagged;
    if (dns_has_dx_keyword(*name)) ++row.dx_keyword;
  }
  return out;
}

}  // namespace cloudmap
