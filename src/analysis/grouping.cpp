#include "analysis/grouping.h"

#include <algorithm>
#include <map>

namespace cloudmap {

const char* to_string(PeeringGroup group) {
  switch (group) {
    case PeeringGroup::kPbNb: return "Pb-nB";
    case PeeringGroup::kPbB: return "Pb-B";
    case PeeringGroup::kPrNbV: return "Pr-nB-V";
    case PeeringGroup::kPrNbNv: return "Pr-nB-nV";
    case PeeringGroup::kPrBNv: return "Pr-B-nV";
    case PeeringGroup::kPrBV: return "Pr-B-V";
  }
  return "?";
}

PeeringClassifier::PeeringClassifier(
    const Annotator* annotator, const BgpSnapshot* snapshot,
    std::vector<Asn> subject_asns,
    const std::unordered_set<std::uint32_t>* vpi_cbis)
    : annotator_(annotator),
      snapshot_(snapshot),
      subject_asns_(std::move(subject_asns)),
      vpi_cbis_(vpi_cbis) {}

Asn PeeringClassifier::segment_owner(const InferredSegment& segment) const {
  const HopAnnotation a = annotator_->annotate(segment.cbi);
  // Cloud-addressed CBIs (Fig. 2 corrections) carry an owner hint; prefer
  // the direct annotation when it names a non-subject AS.
  if (!a.asn.is_unknown()) {
    bool is_subject = false;
    for (const Asn subject : subject_asns_)
      if (subject == a.asn) is_subject = true;
    if (!is_subject) return a.asn;
  }
  return segment.owner_hint;
}

bool PeeringClassifier::link_in_bgp(Asn peer) const {
  for (const Asn subject : subject_asns_)
    if (snapshot_->link_visible(subject, peer)) return true;
  return false;
}

bool PeeringClassifier::is_vpi_cbi(Ipv4 cbi) const {
  return vpi_cbis_ != nullptr && vpi_cbis_->count(cbi.value()) > 0;
}

std::optional<PeeringGroup> PeeringClassifier::classify(
    const InferredSegment& segment) const {
  const Asn owner = segment_owner(segment);
  if (owner.is_unknown()) return std::nullopt;
  const bool is_public = annotator_->annotate(segment.cbi).ixp;
  const bool in_bgp = link_in_bgp(owner);
  if (is_public) return in_bgp ? PeeringGroup::kPbB : PeeringGroup::kPbNb;
  const bool is_virtual = is_vpi_cbi(segment.cbi);
  if (in_bgp)
    return is_virtual ? PeeringGroup::kPrBV : PeeringGroup::kPrBNv;
  return is_virtual ? PeeringGroup::kPrNbV : PeeringGroup::kPrNbNv;
}

GroupBreakdown breakdown(const Fabric& fabric,
                         const PeeringClassifier& classifier) {
  GroupBreakdown out;
  std::unordered_set<std::uint32_t> all_ases;
  std::unordered_set<std::uint32_t> all_cbis;
  std::unordered_set<std::uint32_t> all_abis;
  for (const InferredSegment& segment : fabric.segments()) {
    const auto group = classifier.classify(segment);
    if (!group) {
      ++out.unattributed_segments;
      continue;
    }
    const Asn owner = classifier.segment_owner(segment);
    GroupRow& row = out.rows[static_cast<std::size_t>(*group)];
    row.ases.insert(owner.value);
    row.cbis.insert(segment.cbi.value());
    row.abis.insert(segment.abi.value());
    all_ases.insert(owner.value);
    all_cbis.insert(segment.cbi.value());
    all_abis.insert(segment.abi.value());

    auto aggregate = [&](GroupRow& agg) {
      agg.ases.insert(owner.value);
      agg.cbis.insert(segment.cbi.value());
      agg.abis.insert(segment.abi.value());
    };
    switch (*group) {
      case PeeringGroup::kPbNb:
      case PeeringGroup::kPbB:
        aggregate(out.pb);
        break;
      case PeeringGroup::kPrNbV:
      case PeeringGroup::kPrNbNv:
        aggregate(out.pr_nb);
        break;
      case PeeringGroup::kPrBNv:
      case PeeringGroup::kPrBV:
        aggregate(out.pr_b);
        break;
    }
  }
  out.total_ases = all_ases.size();
  out.total_cbis = all_cbis.size();
  out.total_abis = all_abis.size();
  return out;
}

std::vector<HybridRow> hybrid_breakdown(const Fabric& fabric,
                                        const PeeringClassifier& classifier) {
  std::unordered_map<std::uint32_t, std::unordered_set<std::uint8_t>> by_as;
  for (const InferredSegment& segment : fabric.segments()) {
    const auto group = classifier.classify(segment);
    if (!group) continue;
    by_as[classifier.segment_owner(segment).value].insert(
        static_cast<std::uint8_t>(*group));
  }
  std::map<std::vector<PeeringGroup>, std::size_t> combos;
  for (const auto& [asn, groups] : by_as) {
    (void)asn;
    std::vector<PeeringGroup> combo;
    for (const std::uint8_t g : groups)
      combo.push_back(static_cast<PeeringGroup>(g));
    std::sort(combo.begin(), combo.end());
    ++combos[combo];
  }
  std::vector<HybridRow> out;
  for (const auto& [combo, count] : combos)
    out.push_back(HybridRow{combo, count});
  std::sort(out.begin(), out.end(), [](const HybridRow& a, const HybridRow& b) {
    if (a.as_count != b.as_count) return a.as_count > b.as_count;
    return a.combo.size() < b.combo.size();
  });
  return out;
}

BgpCoverage bgp_coverage(const Fabric& fabric,
                         const PeeringClassifier& classifier,
                         const BgpSnapshot& snapshot,
                         const std::vector<Asn>& subject_asns) {
  BgpCoverage out;
  // Peer ASNs visible in the public AS-link data.
  std::unordered_set<std::uint32_t> bgp_peers;
  for (const std::uint64_t link : snapshot.as_links) {
    const std::uint32_t lo = static_cast<std::uint32_t>(link >> 32);
    const std::uint32_t hi = static_cast<std::uint32_t>(link);
    for (const Asn subject : subject_asns) {
      if (subject.value == lo) bgp_peers.insert(hi);
      if (subject.value == hi) bgp_peers.insert(lo);
    }
  }
  out.bgp_reported = bgp_peers.size();

  std::unordered_set<std::uint32_t> inferred_peers;
  for (const InferredSegment& segment : fabric.segments()) {
    const Asn owner = classifier.segment_owner(segment);
    if (!owner.is_unknown()) inferred_peers.insert(owner.value);
  }
  out.inferred_total = inferred_peers.size();
  for (const std::uint32_t peer : inferred_peers) {
    if (bgp_peers.count(peer)) ++out.bgp_also_discovered;
    else ++out.inferred_not_in_bgp;
  }
  return out;
}

}  // namespace cloudmap
