// Per-group peer features (§7.3 / Fig. 6): for every AS within each of the
// six peering groups — customer-cone size in /24s, /24s reachable through
// the group's CBIs, ABI and CBI counts, min-RTT difference across the
// peering, and the number of metro areas its CBIs pin to.
#pragma once

#include <array>
#include <functional>
#include <optional>
#include <vector>

#include "analysis/grouping.h"
#include "pinning/pinning.h"
#include "util/stats.h"

namespace cloudmap {

enum class PeerFeature : std::uint8_t {
  kBgpSlash24 = 0,   // customer cone, /24 equivalents
  kReachableSlash24, // /24s reached through the peering's CBIs
  kAbiCount,
  kCbiCount,
  kRttDiffMs,
  kMetroCount,
};
inline constexpr std::size_t kPeerFeatureCount = 6;
const char* to_string(PeerFeature feature);

struct GroupFeatureMatrix {
  // [group][feature] → boxplot summary over the group's ASes.
  std::array<std::array<BoxStats, kPeerFeatureCount>, kPeeringGroupCount>
      stats;
  // Raw samples, kept for CDF-style rendering and tests.
  std::array<std::array<std::vector<double>, kPeerFeatureCount>,
             kPeeringGroupCount>
      samples;
};

// `cone_of` maps a peer ASN to its /24 customer-cone size (from the
// synthetic CAIDA data); `rtt_diff` yields the min-RTT difference for a
// segment (nullopt when unmeasurable).
GroupFeatureMatrix compute_group_features(
    const Fabric& fabric, const PeeringClassifier& classifier,
    const std::function<std::uint64_t(Asn)>& cone_of,
    const std::function<std::optional<double>(const InferredSegment&)>&
        rtt_diff,
    const PinningResult& pinning);

}  // namespace cloudmap
