#include "analysis/report.h"

#include <sstream>

#include "analysis/dns_evidence.h"
#include "analysis/graph.h"
#include "analysis/grouping.h"
#include "pinning/evaluate.h"
#include "util/table.h"

namespace cloudmap {

std::string render_study_report(Pipeline& pipeline,
                                const ReportOptions& options) {
  pipeline.run_all();
  std::ostringstream out;
  const Fabric& fabric = pipeline.campaign().fabric();
  const PeeringClassifier classifier = pipeline.classifier();

  out << "== cloud peering fabric study ==\n\n";
  out << "campaign: " << pipeline.round1().traceroutes << " + "
      << pipeline.round2().traceroutes << " traceroutes ("
      << TextTable::pct(pipeline.round1().left_cloud_fraction())
      << " of round 1 left the cloud)\n";
  out << "fabric: " << fabric.segments().size() << " interconnection "
      << "segments, " << fabric.unique_abis().size() << " cloud border "
      << "interfaces, " << fabric.unique_cbis().size()
      << " customer border interfaces, " << pipeline.peer_asns().size()
      << " peer ASes\n\n";

  // Group breakdown.
  const GroupBreakdown groups = breakdown(fabric, classifier);
  TextTable table({"group", "ASes", "CBIs", "ABIs"});
  for (std::size_t g = 0; g < kPeeringGroupCount; ++g) {
    const GroupRow& row = groups.rows[g];
    table.add_row({to_string(static_cast<PeeringGroup>(g)),
                   std::to_string(row.ases.size()),
                   std::to_string(row.cbis.size()),
                   std::to_string(row.abis.size())});
  }
  out << table.render("peering groups");

  // Hidden share.
  std::unordered_set<std::uint32_t> hidden = groups.pr_nb.ases;
  for (const std::uint32_t as :
       groups.rows[static_cast<int>(PeeringGroup::kPrBV)].ases)
    hidden.insert(as);
  if (groups.total_ases > 0) {
    out << "hidden (private non-BGP or virtual) peer ASes: "
        << TextTable::pct(static_cast<double>(hidden.size()) /
                          static_cast<double>(groups.total_ases))
        << "\n\n";
  }

  // Hybrid combinations.
  const auto hybrid = hybrid_breakdown(fabric, classifier);
  out << "top hybrid combinations:\n";
  int shown = 0;
  for (const HybridRow& row : hybrid) {
    if (shown++ >= options.hybrid_rows) break;
    out << "  ";
    for (std::size_t i = 0; i < row.combo.size(); ++i) {
      if (i > 0) out << "; ";
      out << to_string(row.combo[i]);
    }
    out << " — " << row.as_count << " ASes\n";
  }
  out << '\n';

  // VPIs.
  const VpiDetectionResult& vpis = pipeline.vpis();
  out << "VPI lower bound: " << vpis.vpi_cbis.size() << " CBIs ("
      << TextTable::pct(static_cast<double>(vpis.vpi_cbis.size()) /
                        static_cast<double>(vpis.subject_cbis))
      << " of all CBIs) visible from a second cloud\n";
  for (const VpiCloudResult& cloud : vpis.per_cloud) {
    out << "  " << to_string(cloud.provider) << ": " << cloud.overlap
        << " pairwise, " << cloud.cumulative_overlap << " cumulative\n";
  }
  out << '\n';

  // Pinning.
  const PinningResult& pins = pipeline.pinning();
  const std::size_t interfaces =
      fabric.unique_abis().size() + fabric.unique_cbis().size();
  out << "pinning: " << pins.pins.size() << " interfaces at metro level ("
      << TextTable::pct(static_cast<double>(pins.pins.size()) /
                        static_cast<double>(interfaces))
      << "), " << pins.regional.size() << " more at region level\n";

  // Graph.
  const IcgStats icg = icg_stats(fabric);
  out << "connectivity graph: " << icg.edges << " edges, largest component "
      << TextTable::pct(icg.largest_component_fraction) << '\n';
  const RemotePeeringStats remote = remote_peering_stats(fabric, pins);
  out << "remote peerings: " << remote.cross_metro
      << " cross-metro segments among " << remote.both_ends_pinned
      << " fully pinned\n";

  if (options.include_ground_truth) {
    const InferenceScore score = pipeline.score();
    out << "\n[synthetic-only] ground truth: router-level recall "
        << TextTable::pct(score.router_recall()) << ", precision "
        << TextTable::pct(score.router_precision()) << " ("
        << score.discovered << '/' << score.discoverable_interconnects
        << " interconnects found exactly)\n";
  }
  return out.str();
}

}  // namespace cloudmap
