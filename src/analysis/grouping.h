// Peering classification (§7.2): every inferred interconnection is labeled
// on three axes — public/private (is the CBI on an IXP LAN), BGP-visible or
// not (is the subject↔peer AS link in the collector-derived AS-relationship
// data), and virtual or not (is the CBI in the multi-cloud overlap set) —
// yielding the six groups of Table 5.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <unordered_set>
#include <vector>

#include "controlplane/bgp.h"
#include "infer/annotate.h"
#include "infer/fabric.h"

namespace cloudmap {

enum class PeeringGroup : std::uint8_t {
  kPbNb = 0,  // public, not in BGP
  kPbB,       // public, in BGP
  kPrNbV,     // private, not in BGP, virtual
  kPrNbNv,    // private, not in BGP, non-virtual
  kPrBNv,     // private, in BGP, non-virtual
  kPrBV,      // private, in BGP, virtual
};
inline constexpr std::size_t kPeeringGroupCount = 6;
const char* to_string(PeeringGroup group);

class PeeringClassifier {
 public:
  PeeringClassifier(const Annotator* annotator, const BgpSnapshot* snapshot,
                    std::vector<Asn> subject_asns,
                    const std::unordered_set<std::uint32_t>* vpi_cbis);

  // Peer AS owning a segment's client side (annotation, falling back to the
  // owner hint for cloud-addressed CBIs); unknown Asn when unattributable.
  Asn segment_owner(const InferredSegment& segment) const;

  // Group of one segment; nullopt when the owner is unknown.
  std::optional<PeeringGroup> classify(const InferredSegment& segment) const;

  bool link_in_bgp(Asn peer) const;
  bool is_vpi_cbi(Ipv4 cbi) const;

 private:
  const Annotator* annotator_;
  const BgpSnapshot* snapshot_;
  std::vector<Asn> subject_asns_;
  const std::unordered_set<std::uint32_t>* vpi_cbis_;
};

// One row of Table 5.
struct GroupRow {
  std::unordered_set<std::uint32_t> ases;
  std::unordered_set<std::uint32_t> cbis;
  std::unordered_set<std::uint32_t> abis;
};

struct GroupBreakdown {
  std::array<GroupRow, kPeeringGroupCount> rows;
  GroupRow pb;     // aggregate of Pb-nB + Pb-B
  GroupRow pr_nb;  // aggregate of Pr-nB-V + Pr-nB-nV
  GroupRow pr_b;   // aggregate of Pr-B-nV + Pr-B-V
  std::size_t total_ases = 0;
  std::size_t total_cbis = 0;
  std::size_t total_abis = 0;
  std::size_t unattributed_segments = 0;
};

GroupBreakdown breakdown(const Fabric& fabric,
                         const PeeringClassifier& classifier);

// Table 6: hybrid-peering combinations. Each AS is assigned the exact set of
// groups its peerings span; rows are sorted by AS count (descending).
struct HybridRow {
  std::vector<PeeringGroup> combo;  // sorted group list
  std::size_t as_count = 0;
};
std::vector<HybridRow> hybrid_breakdown(const Fabric& fabric,
                                        const PeeringClassifier& classifier);

// Coverage vs BGP (§7.3): how many subject peerings the public AS-link data
// reports, how many of those the fabric discovered, and how many extra
// (BGP-invisible) peerings inference found.
struct BgpCoverage {
  std::size_t bgp_reported = 0;
  std::size_t bgp_also_discovered = 0;
  std::size_t inferred_total = 0;      // unique peer ASes inferred
  std::size_t inferred_not_in_bgp = 0;
  double coverage() const {
    return bgp_reported == 0 ? 0.0
                             : static_cast<double>(bgp_also_discovered) /
                                   static_cast<double>(bgp_reported);
  }
};
BgpCoverage bgp_coverage(const Fabric& fabric,
                         const PeeringClassifier& classifier,
                         const BgpSnapshot& snapshot,
                         const std::vector<Asn>& subject_asns);

}  // namespace cloudmap
