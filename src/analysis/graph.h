// The Interface Connectivity Graph (§7.4): a bipartite graph with the
// inferred ABIs and CBIs as nodes and the interconnection segments as edges.
// Provides the degree distributions of Fig. 7, connected-component structure
// (the paper's 92.3% largest component), and the remote-peering analysis
// over pinned segment endpoints.
#pragma once

#include <cstdint>
#include <vector>

#include "infer/fabric.h"
#include "pinning/pinning.h"

namespace cloudmap {

struct IcgStats {
  std::size_t abi_nodes = 0;
  std::size_t cbi_nodes = 0;
  std::size_t edges = 0;
  std::vector<double> abi_degrees;  // CBIs per ABI (Fig. 7a)
  std::vector<double> cbi_degrees;  // ABIs per CBI (Fig. 7b)
  double largest_component_fraction = 0.0;
  std::size_t components = 0;
};

IcgStats icg_stats(const Fabric& fabric);

struct RemotePeeringStats {
  std::size_t both_ends_pinned = 0;
  std::size_t same_metro = 0;     // peering contained within one metro
  std::size_t cross_metro = 0;    // endpoints pinned to different metros
  std::size_t one_or_no_end = 0;  // segments lacking full pinning
  double both_pinned_fraction = 0.0;
  double same_metro_fraction = 0.0;  // of the both-ends-pinned segments
};

RemotePeeringStats remote_peering_stats(const Fabric& fabric,
                                        const PinningResult& pinning);

}  // namespace cloudmap
