// QueryEngine: the read-mostly serving layer over a FabricBackend. One
// dispatcher — execute(QueryRequest) — answers every query class, so the
// metrics counters, min-confidence filtering, brief expansion, and error
// reporting live in a single place; the CLI, the serve daemon's wire
// protocol (serve/protocol.h), and the tests all go through it. All query
// methods are const, allocate only their result, and touch nothing but the
// immutable backend plus (optionally) relaxed-atomic metrics counters — so
// any number of threads may share one engine with zero locking after build,
// and answers are bit-identical at every reader thread count.
//
// Counter names (all created at construction so they appear in a metrics
// artifact even when a query class was never exercised): query.lookups,
// query.peers_of, query.peer_list, query.interfaces_in,
// query.vpi_candidates, query.counts, query.min_confidence,
// query.confidence_histogram.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "obs/metrics.h"
#include "query/fabric_index.h"
#include "query/request.h"

namespace cloudmap {

class QueryEngine {
 public:
  // `metrics` may be null or disabled; counter handles are resolved once
  // here so the hot path is a relaxed atomic add, never a name lookup.
  //
  // The FabricIndex overload additionally enables the deprecated
  // index()/lookup() accessors below; a generic backend (e.g. a zero-copy
  // FabricView) serves every QueryRequest but has no FabricIndex to expose.
  explicit QueryEngine(const FabricIndex& index,
                       MetricsRegistry* metrics = nullptr);
  explicit QueryEngine(const FabricBackend& backend,
                       MetricsRegistry* metrics = nullptr);

  // The one dispatch point: validates the request, bumps the per-kind
  // counter, applies min-confidence filtering and brief expansion, and
  // never throws — malformed requests come back as status kBadRequest.
  QueryResponse execute(const QueryRequest& request) const;

  const FabricBackend& backend() const noexcept { return *backend_; }

  // --- deprecated entry points ---------------------------------------------
  // Thin shims over execute(), kept for one release so existing callers
  // migrate incrementally; new code should build a QueryRequest instead.

  // Deprecated: execute({.kind = QueryKind::kPeersOf, .asn = ...}).
  std::vector<std::uint32_t> peers_of(Asn peer) const;
  // Deprecated: execute({.kind = QueryKind::kInterfacesIn, .metro = ...}).
  std::vector<std::uint32_t> interfaces_in(std::uint32_t metro) const;
  // Deprecated: execute({.kind = QueryKind::kVpiCandidates}).
  std::vector<std::uint32_t> vpi_candidates() const;
  // Deprecated: execute({.kind = QueryKind::kMinConfidence, ...}).
  std::vector<std::uint32_t> segments_min_confidence(
      double min_confidence) const;
  // Deprecated: execute({.kind = QueryKind::kCounts}).
  FabricCounts counts() const;
  // Deprecated: execute({.kind = QueryKind::kConfidenceHistogram}).
  const ConfidenceHistogram& confidence_histogram() const;
  // Deprecated: execute({.kind = QueryKind::kLookup, .address = ...}).
  // Requires FabricIndex backing (the hit points into the index's trie).
  std::optional<LookupHit> lookup(Ipv4 address) const;
  // Requires FabricIndex backing.
  const FabricIndex& index() const noexcept { return *index_; }

 private:
  MetricsRegistry::Counter* counter(QueryKind kind) const {
    return counters_[static_cast<std::size_t>(kind)];
  }

  const FabricBackend* backend_;
  const FabricIndex* index_ = nullptr;  // non-null only for the index ctor
  std::array<MetricsRegistry::Counter*, kQueryKindCount> counters_{};
};

}  // namespace cloudmap
