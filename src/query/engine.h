// QueryEngine: the read-mostly serving layer over a FabricIndex. All query
// methods are const, allocate only their result, and touch nothing but the
// immutable index plus (optionally) relaxed-atomic metrics counters — so any
// number of threads may share one engine with zero locking after build, and
// answers are bit-identical at every reader thread count.
//
// Counter names (all created at construction so they appear in a metrics
// artifact even when a query class was never exercised): query.lookups,
// query.peers_of, query.interfaces_in, query.vpi_candidates, query.counts,
// query.min_confidence, query.confidence_histogram.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "analysis/grouping.h"
#include "obs/metrics.h"
#include "query/fabric_index.h"

namespace cloudmap {

// Aggregate answers in the shape of the paper's tables: interface totals
// per confirmation class (Tables 1/2), the VPI overlap (Table 4), and the
// six-group peering breakdown (Table 5), plus the §6 pinning coverage.
struct FabricCounts {
  std::size_t segments = 0;
  std::size_t unique_abis = 0;
  std::size_t unique_cbis = 0;
  std::size_t peer_ases = 0;
  std::size_t peer_orgs = 0;
  std::array<std::size_t, 5> by_confirmation{};  // indexed by Confirmation
  std::size_t ixp_segments = 0;   // public peerings (CBI on an IXP LAN)
  std::size_t vpi_cbis = 0;       // unique CBIs in the multi-cloud overlap
  std::array<std::size_t, kPeeringGroupCount> group_segments{};
  std::array<std::size_t, kPeeringGroupCount> group_ases{};
  std::size_t unattributed_segments = 0;
  std::size_t pinned_interfaces = 0;   // metro-level pins
  std::size_t regional_only = 0;       // regional fallback entries
  // Confidence aggregates (v2 snapshots; zero for v1, where every segment
  // scores 0).
  double mean_confidence = 0.0;
  std::size_t confident_segments = 0;  // confidence >= 0.5
};

class QueryEngine {
 public:
  // `metrics` may be null or disabled; counter handles are resolved once
  // here so the hot path is a relaxed atomic add, never a name lookup.
  explicit QueryEngine(const FabricIndex& index,
                       MetricsRegistry* metrics = nullptr);

  const FabricIndex& index() const noexcept { return *index_; }

  // Segments whose peer AS is `peer` (ascending indices; empty = none).
  std::vector<std::uint32_t> peers_of(Asn peer) const;

  // Interface addresses pinned to `metro`, ascending.
  std::vector<std::uint32_t> interfaces_in(std::uint32_t metro) const;

  // Segments in the §7.1 multi-cloud overlap (virtual interconnections).
  std::vector<std::uint32_t> vpi_candidates() const;

  // Longest-prefix lookup of an arbitrary address against the fabric.
  std::optional<LookupHit> lookup(Ipv4 address) const;

  // Segments whose confidence score is >= min_confidence (ascending
  // indices). min_confidence <= 0 returns every segment.
  std::vector<std::uint32_t> segments_min_confidence(
      double min_confidence) const;

  // The precomputed confidence distribution over all segments.
  const ConfidenceHistogram& confidence_histogram() const;

  // Full aggregate pass (brute-force over the index's segment table; the
  // result is deterministic and cheap relative to rebuilding the map).
  FabricCounts counts() const;

 private:
  const FabricIndex* index_;
  MetricsRegistry::Counter* lookups_ = nullptr;
  MetricsRegistry::Counter* peers_queries_ = nullptr;
  MetricsRegistry::Counter* metro_queries_ = nullptr;
  MetricsRegistry::Counter* vpi_queries_ = nullptr;
  MetricsRegistry::Counter* count_queries_ = nullptr;
  MetricsRegistry::Counter* confidence_queries_ = nullptr;
  MetricsRegistry::Counter* histogram_queries_ = nullptr;
};

}  // namespace cloudmap
