#include "query/fabric_view.h"

#include <algorithm>

namespace cloudmap {

namespace {

// V3Segment::flags bits (io/snapshot_v3.h): shifted|ixp|vpi.
constexpr std::uint8_t kSegIxp = 0x02;
constexpr std::uint8_t kSegVpi = 0x04;
// V3TrieEntry::flags bits: is_interface|abi|cbi.
constexpr std::uint8_t kTrieInterface = 0x01;
constexpr std::uint8_t kTrieAbi = 0x02;
constexpr std::uint8_t kTrieCbi = 0x04;

}  // namespace

FabricView::FabricView(const unsigned char* blob)
    : v_(snapv3::V3View::over(blob)) {
  // Same binning as the FabricIndex constructor, so the two backends report
  // identical distributions.
  const std::uint32_t total = v_.dir->segment_count;
  histogram_.segments = total;
  if (total > 0) {
    double sum = 0.0;
    histogram_.min = v_.segments[0].confidence;
    histogram_.max = histogram_.min;
    for (std::uint32_t i = 0; i < total; ++i) {
      const double score = v_.segments[i].confidence;
      sum += score;
      histogram_.min = std::min(histogram_.min, score);
      histogram_.max = std::max(histogram_.max, score);
      auto bin = static_cast<std::size_t>(score * 10.0);
      if (bin >= histogram_.bins.size())
        bin = histogram_.bins.size() - 1;  // score == 1.0
      ++histogram_.bins[bin];
    }
    histogram_.mean = sum / static_cast<double>(total);
  }
}

SegmentFacts FabricView::segment(std::uint32_t index) const {
  const snapv3::V3Segment& seg = v_.segments[index];
  SegmentFacts facts;
  facts.abi = seg.abi;
  facts.cbi = seg.cbi;
  facts.peer_asn = seg.peer_asn;
  facts.peer_org = seg.peer_org;
  facts.confirmation = seg.confirmation;
  facts.group = seg.group;
  facts.ixp = (seg.flags & kSegIxp) != 0;
  facts.vpi = (seg.flags & kSegVpi) != 0;
  facts.confidence = seg.confidence;
  return facts;
}

Span32 FabricView::peer_segments(std::uint32_t peer_asn) const {
  const snapv3::V3KeySpan* first = v_.by_peer;
  const snapv3::V3KeySpan* last = first + v_.dir->by_peer_count;
  const auto it = std::lower_bound(
      first, last, peer_asn,
      [](const snapv3::V3KeySpan& e, std::uint32_t key) {
        return e.key < key;
      });
  if (it == last || it->key != peer_asn) return {};
  return pool_span(it->span);
}

Span32 FabricView::metro_interfaces(std::uint32_t metro) const {
  const snapv3::V3KeySpan* first = v_.by_metro;
  const snapv3::V3KeySpan* last = first + v_.dir->by_metro_count;
  const auto it = std::lower_bound(
      first, last, metro,
      [](const snapv3::V3KeySpan& e, std::uint32_t key) {
        return e.key < key;
      });
  if (it == last || it->key != metro) return {};
  return pool_span(it->span);
}

std::optional<BackendHit> FabricView::find(Ipv4 address) const {
  // Longest prefix first: per-length groups are sorted by network, so each
  // candidate length costs one binary search over its group.
  for (int plen = 32; plen >= 0; --plen) {
    const snapv3::V3Span group = v_.dir->trie_by_len[plen];
    if (group.len == 0) continue;
    const Prefix probe(address, static_cast<std::uint8_t>(plen));
    const std::uint32_t network = probe.network().value();
    const snapv3::V3TrieEntry* first = v_.trie + group.off;
    const snapv3::V3TrieEntry* last = first + group.len;
    const auto it = std::lower_bound(
        first, last, network,
        [](const snapv3::V3TrieEntry& e, std::uint32_t key) {
          return e.network < key;
        });
    if (it == last || it->network != network) continue;
    BackendHit hit;
    hit.prefix = probe;
    hit.is_interface = (it->flags & kTrieInterface) != 0;
    hit.abi = (it->flags & kTrieAbi) != 0;
    hit.cbi = (it->flags & kTrieCbi) != 0;
    hit.segments = pool_span(it->segments);
    return hit;
  }
  return std::nullopt;
}

std::vector<std::uint32_t> FabricView::min_confidence_list(
    double min_confidence) const {
  const Span32 order = pool_span(v_.dir->conf_order);
  std::vector<std::uint32_t> out;
  for (const std::uint32_t i : order) {
    if (v_.segments[i].confidence < min_confidence)
      break;  // descending: nothing further matches
    out.push_back(i);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace cloudmap
