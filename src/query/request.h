// The uniform query API: every question the query layer answers — for the
// CLI, the serve daemon's wire protocol, and the tests — is one
// QueryRequest tagged by QueryKind, dispatched through
// QueryEngine::execute() (query/engine.h), and answered with one
// QueryResponse. Centralizing dispatch keeps metrics counters,
// min-confidence filtering, and error reporting in a single place instead
// of five ad-hoc entry points.
//
// Both structs are flat POD-ish values with fixed-width fields, so the
// serve protocol (serve/protocol.h) encodes them field-for-field without a
// separate schema.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "analysis/grouping.h"
#include "query/backend.h"

namespace cloudmap {

// One tag per query class. Values are part of the serve wire protocol —
// append only, never renumber.
enum class QueryKind : std::uint8_t {
  kCounts = 0,               // full aggregate pass (Tables 1–5 shapes)
  kPeersOf = 1,              // segments of one peer ASN (uses `asn`)
  kPeerList = 2,             // all peer ASNs present, ascending
  kInterfacesIn = 3,         // pinned interface addresses (uses `metro`)
  kVpiCandidates = 4,        // §7.1 multi-cloud overlap segments
  kLookup = 5,               // longest-prefix match (uses `address`)
  kMinConfidence = 6,        // segments >= min_confidence
  kConfidenceHistogram = 7,  // precomputed confidence distribution
};
inline constexpr std::uint8_t kQueryKindCount = 8;

struct QueryRequest {
  QueryKind kind = QueryKind::kCounts;
  std::uint32_t asn = 0;      // kPeersOf
  std::uint32_t metro = 0;    // kInterfacesIn
  std::uint32_t address = 0;  // kLookup (host-order IPv4)
  // kMinConfidence threshold; for kPeersOf / kVpiCandidates a value >= 0
  // additionally filters the result to segments scoring at least this.
  double min_confidence = -1.0;
  // Expand segment-index results into SegmentBriefs (one index lookup per
  // hit, done once at the dispatch point instead of by every caller).
  bool want_briefs = false;
};

enum class QueryStatus : std::uint8_t {
  kOk = 0,
  kBadRequest = 1,  // malformed kind or parameter; `error` says what
};

// The per-segment summary returned when want_briefs is set: enough to print
// a result row without another round trip to the backend.
struct SegmentBrief {
  std::uint32_t index = 0;
  std::uint32_t abi = 0;
  std::uint32_t cbi = 0;
  std::uint32_t peer_asn = 0;
  std::uint8_t confirmation = 0;
  bool ixp = false;
  bool vpi = false;
  double confidence = 0.0;
};

// Aggregate answers in the shape of the paper's tables: interface totals
// per confirmation class (Tables 1/2), the VPI overlap (Table 4), and the
// six-group peering breakdown (Table 5), plus the §6 pinning coverage.
struct FabricCounts {
  std::size_t segments = 0;
  std::size_t unique_abis = 0;
  std::size_t unique_cbis = 0;
  std::size_t peer_ases = 0;
  std::size_t peer_orgs = 0;
  std::array<std::size_t, 5> by_confirmation{};  // indexed by Confirmation
  std::size_t ixp_segments = 0;   // public peerings (CBI on an IXP LAN)
  std::size_t vpi_cbis = 0;       // unique CBIs in the multi-cloud overlap
  std::array<std::size_t, kPeeringGroupCount> group_segments{};
  std::array<std::size_t, kPeeringGroupCount> group_ases{};
  std::size_t unattributed_segments = 0;
  std::size_t pinned_interfaces = 0;   // metro-level pins
  std::size_t regional_only = 0;       // regional fallback entries
  // Confidence aggregates (v2+ snapshots; zero for v1, where every segment
  // scores 0).
  double mean_confidence = 0.0;
  std::size_t confident_segments = 0;  // confidence >= 0.5
};

struct QueryResponse {
  QueryStatus status = QueryStatus::kOk;
  QueryKind kind = QueryKind::kCounts;  // echoes the request
  std::string error;                    // set when status != kOk

  // Index results: segment indices for kPeersOf / kVpiCandidates /
  // kMinConfidence, peer ASNs for kPeerList, interface addresses for
  // kInterfacesIn. Ascending in every case.
  std::vector<std::uint32_t> items;
  std::vector<SegmentBrief> briefs;  // filled when want_briefs was set

  // kCounts / kConfidenceHistogram payloads.
  std::optional<FabricCounts> counts;
  std::optional<ConfidenceHistogram> histogram;

  // kLookup payload.
  bool found = false;
  std::uint32_t prefix_network = 0;  // host-order, masked
  std::uint8_t prefix_length = 0;
  bool is_interface = false;
  bool role_abi = false;
  bool role_cbi = false;
};

}  // namespace cloudmap
