// FabricBackend: the narrow read interface the query engine dispatches
// against, with two interchangeable implementations — FabricIndex
// (query/fabric_index.h), which owns a decoded RunSnapshot and materialized
// indexes, and FabricView (query/fabric_view.h), which serves the same
// answers zero-copy out of an mmapped format-v3 blob. Both return segment
// indices in the same canonical order, so every query answers
// bit-identically regardless of backing (enforced by tests).
//
// Results are handed out as Span32 views into backend-owned storage: valid
// for the lifetime of the backend, never null (empty spans have size 0).
// All methods are const and thread-safe after construction.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "net/ipv4.h"
#include "net/prefix.h"

namespace cloudmap {

// A read-only view over a contiguous run of u32 values owned by a backend.
struct Span32 {
  const std::uint32_t* values = nullptr;
  std::size_t count = 0;

  const std::uint32_t* begin() const { return values; }
  const std::uint32_t* end() const { return values + count; }
  std::size_t size() const { return count; }
  bool empty() const { return count == 0; }
  std::uint32_t operator[](std::size_t i) const { return values[i]; }
};

// The per-segment fields the engine aggregates and reports. A plain struct
// (not a reference into backing storage) so the flat and decoded layouts
// can both produce it without conversion cost on the caller's side.
struct SegmentFacts {
  std::uint32_t abi = 0;       // host-order interface addresses
  std::uint32_t cbi = 0;
  std::uint32_t peer_asn = 0;  // 0 = unknown
  std::uint32_t peer_org = 0;  // 0 = unknown
  std::uint8_t confirmation = 0;
  std::uint8_t group = 0;      // kSnapshotNoGroup = unattributed
  bool ixp = false;
  bool vpi = false;
  double confidence = 0.0;
};

// One longest-prefix match, backend-neutral: a /32 hit names an interface
// (with its fabric roles), a shorter hit a destination cone reached through
// the listed segments (ascending, deduplicated).
struct BackendHit {
  Prefix prefix;
  bool is_interface = false;
  bool abi = false;
  bool cbi = false;
  Span32 segments;
};

// Distribution of per-segment confidence scores: ten equal-width bins over
// [0, 1] (scores of exactly 1.0 land in the last bin) plus summary moments.
// Precomputed when the backend is built.
struct ConfidenceHistogram {
  std::array<std::size_t, 10> bins{};
  std::size_t segments = 0;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
};

class FabricBackend {
 public:
  virtual ~FabricBackend() = default;

  virtual std::size_t segment_count() const = 0;
  // `index` must be < segment_count().
  virtual SegmentFacts segment(std::uint32_t index) const = 0;

  // Segment indices whose peer AS is `peer_asn`, ascending; empty = none.
  virtual Span32 peer_segments(std::uint32_t peer_asn) const = 0;
  // Peer ASNs present in the fabric, ascending (unknown/0 excluded).
  virtual Span32 asn_list() const = 0;
  // Segments in the §7.1 multi-cloud overlap, ascending.
  virtual Span32 vpi_list() const = 0;
  // Interface addresses pinned to `metro`, ascending; empty = none.
  virtual Span32 metro_interfaces(std::uint32_t metro) const = 0;
  // Metros with at least one pinned interface, ascending.
  virtual Span32 metro_list() const = 0;

  // Longest-prefix lookup of an arbitrary address against the fabric.
  virtual std::optional<BackendHit> find(Ipv4 address) const = 0;

  // Segment indices with confidence >= min_confidence, ascending.
  virtual std::vector<std::uint32_t> min_confidence_list(
      double min_confidence) const = 0;
  virtual const ConfidenceHistogram& histogram() const = 0;

  // Aggregate totals the counts query folds in.
  virtual std::size_t pin_total() const = 0;
  virtual std::size_t regional_total() const = 0;
};

}  // namespace cloudmap
