// Snapshot diffing for longitudinal studies: given two RunSnapshots (e.g.
// two campaigns weeks apart, or two CI runs), report which interconnection
// segments appeared, disappeared, changed confirmation class, or moved to a
// different metro pin. This is the cross-run analogue of the remote-peering
// and IXP-dataset comparison studies the paper cites — the map only becomes
// evidence when you can say what changed between editions.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "query/snapshot.h"

namespace cloudmap {

struct SegmentKey {
  Ipv4 abi;
  Ipv4 cbi;
};

struct ConfirmationChange {
  Ipv4 abi;
  Ipv4 cbi;
  Confirmation before = Confirmation::kUnconfirmed;
  Confirmation after = Confirmation::kUnconfirmed;
};

// A metro-pin change for one interface address. kInvalidIndex on either
// side means "not pinned in that snapshot".
struct PinChange {
  std::uint32_t address = 0;
  std::uint32_t metro_before = kInvalidIndex;
  std::uint32_t metro_after = kInvalidIndex;
};

struct SnapshotDiff {
  std::vector<SegmentKey> added;    // in B only, by (abi, cbi)
  std::vector<SegmentKey> removed;  // in A only
  std::vector<ConfirmationChange> reconfirmed;
  std::vector<PinChange> repinned;
  std::size_t common_segments = 0;   // present in both (incl. reconfirmed)
  std::size_t common_pins = 0;       // addresses pinned in both
  // Hazard provenance of the two sides (empty when a side carried none).
  // A longitudinal churn sequence stamps its profile here, so the diff
  // report says which world hazards the runs were produced under.
  std::string hazard_profile_a;
  std::string hazard_profile_b;
  bool identical() const {
    return added.empty() && removed.empty() && reconfirmed.empty() &&
           repinned.empty();
  }
};

// Compare two snapshots by (ABI, CBI) segment identity and by pinned
// address. Inputs need not be canonicalized; output vectors are ascending.
SnapshotDiff diff_snapshots(const RunSnapshot& a, const RunSnapshot& b);

// Human-readable report (the `cloudmap_cli diff` output).
void write_diff(std::ostream& out, const SnapshotDiff& diff);

}  // namespace cloudmap
