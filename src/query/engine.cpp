#include "query/engine.h"

#include <unordered_set>

namespace cloudmap {

QueryEngine::QueryEngine(const FabricIndex& index, MetricsRegistry* metrics)
    : index_(&index) {
  if (metrics != nullptr && metrics->enabled()) {
    lookups_ = &metrics->counter("query.lookups");
    peers_queries_ = &metrics->counter("query.peers_of");
    metro_queries_ = &metrics->counter("query.interfaces_in");
    vpi_queries_ = &metrics->counter("query.vpi_candidates");
    count_queries_ = &metrics->counter("query.counts");
    confidence_queries_ = &metrics->counter("query.min_confidence");
    histogram_queries_ = &metrics->counter("query.confidence_histogram");
  }
}

std::vector<std::uint32_t> QueryEngine::peers_of(Asn peer) const {
  if (peers_queries_ != nullptr) peers_queries_->add();
  const std::vector<std::uint32_t>* hits = index_->segments_of_peer(peer);
  return hits == nullptr ? std::vector<std::uint32_t>{} : *hits;
}

std::vector<std::uint32_t> QueryEngine::interfaces_in(
    std::uint32_t metro) const {
  if (metro_queries_ != nullptr) metro_queries_->add();
  const std::vector<std::uint32_t>* hits = index_->interfaces_in_metro(metro);
  return hits == nullptr ? std::vector<std::uint32_t>{} : *hits;
}

std::vector<std::uint32_t> QueryEngine::vpi_candidates() const {
  if (vpi_queries_ != nullptr) vpi_queries_->add();
  return index_->vpi_segments();
}

std::optional<LookupHit> QueryEngine::lookup(Ipv4 address) const {
  if (lookups_ != nullptr) lookups_->add();
  return index_->lookup(address);
}

std::vector<std::uint32_t> QueryEngine::segments_min_confidence(
    double min_confidence) const {
  if (confidence_queries_ != nullptr) confidence_queries_->add();
  return index_->segments_min_confidence(min_confidence);
}

const ConfidenceHistogram& QueryEngine::confidence_histogram() const {
  if (histogram_queries_ != nullptr) histogram_queries_->add();
  return index_->confidence_histogram();
}

FabricCounts QueryEngine::counts() const {
  if (count_queries_ != nullptr) count_queries_->add();
  FabricCounts out;
  std::unordered_set<std::uint32_t> abis;
  std::unordered_set<std::uint32_t> cbis;
  std::unordered_set<std::uint32_t> orgs;
  std::unordered_set<std::uint32_t> vpi_cbis;
  std::array<std::unordered_set<std::uint32_t>, kPeeringGroupCount>
      group_ases;
  double confidence_sum = 0.0;
  for (const SnapshotSegment& seg : index_->segments()) {
    ++out.segments;
    confidence_sum += seg.confidence;
    if (seg.confidence >= 0.5) ++out.confident_segments;
    abis.insert(seg.abi.value());
    cbis.insert(seg.cbi.value());
    if (!seg.peer_org.is_unknown()) orgs.insert(seg.peer_org.value);
    ++out.by_confirmation[static_cast<std::size_t>(seg.confirmation)];
    if (seg.ixp) ++out.ixp_segments;
    if (seg.vpi) vpi_cbis.insert(seg.cbi.value());
    if (seg.group == kSnapshotNoGroup) {
      ++out.unattributed_segments;
    } else {
      ++out.group_segments[seg.group];
      if (!seg.peer_asn.is_unknown())
        group_ases[seg.group].insert(seg.peer_asn.value);
    }
  }
  out.unique_abis = abis.size();
  out.unique_cbis = cbis.size();
  out.peer_ases = index_->peer_asns().size();
  out.peer_orgs = orgs.size();
  out.vpi_cbis = vpi_cbis.size();
  for (std::size_t g = 0; g < kPeeringGroupCount; ++g)
    out.group_ases[g] = group_ases[g].size();
  out.pinned_interfaces = index_->snapshot().pins.size();
  out.regional_only = index_->snapshot().regional.size();
  if (out.segments > 0)
    out.mean_confidence = confidence_sum / static_cast<double>(out.segments);
  return out;
}

}  // namespace cloudmap
