#include "query/engine.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

namespace cloudmap {

namespace {

// One metrics counter per QueryKind, resolved once at engine construction.
constexpr std::array<const char*, kQueryKindCount> kCounterNames = {
    "query.counts",         "query.peers_of",
    "query.peer_list",      "query.interfaces_in",
    "query.vpi_candidates", "query.lookups",
    "query.min_confidence", "query.confidence_histogram",
};

SegmentBrief brief_of(const FabricBackend& backend, std::uint32_t index) {
  const SegmentFacts facts = backend.segment(index);
  SegmentBrief brief;
  brief.index = index;
  brief.abi = facts.abi;
  brief.cbi = facts.cbi;
  brief.peer_asn = facts.peer_asn;
  brief.confirmation = facts.confirmation;
  brief.ixp = facts.ixp;
  brief.vpi = facts.vpi;
  brief.confidence = facts.confidence;
  return brief;
}

}  // namespace

QueryEngine::QueryEngine(const FabricIndex& index, MetricsRegistry* metrics)
    : QueryEngine(static_cast<const FabricBackend&>(index), metrics) {
  index_ = &index;
}

QueryEngine::QueryEngine(const FabricBackend& backend,
                         MetricsRegistry* metrics)
    : backend_(&backend) {
  if (metrics != nullptr && metrics->enabled()) {
    for (std::size_t k = 0; k < kCounterNames.size(); ++k)
      counters_[k] = &metrics->counter(kCounterNames[k]);
  }
}

QueryResponse QueryEngine::execute(const QueryRequest& request) const {
  QueryResponse out;
  out.kind = request.kind;
  const auto k = static_cast<std::size_t>(request.kind);
  if (k >= kQueryKindCount) {
    out.status = QueryStatus::kBadRequest;
    out.error = "unknown query kind " + std::to_string(k);
    return out;
  }
  if (MetricsRegistry::Counter* c = counter(request.kind); c != nullptr)
    c->add();

  // Segment-index results share the filter + brief tail below; the other
  // kinds return directly from their case.
  bool segment_items = false;
  switch (request.kind) {
    case QueryKind::kCounts: {
      FabricCounts counts;
      std::unordered_set<std::uint32_t> abis;
      std::unordered_set<std::uint32_t> cbis;
      std::unordered_set<std::uint32_t> orgs;
      std::unordered_set<std::uint32_t> vpi_cbis;
      std::array<std::unordered_set<std::uint32_t>, kPeeringGroupCount>
          group_ases;
      double confidence_sum = 0.0;
      const auto total =
          static_cast<std::uint32_t>(backend_->segment_count());
      for (std::uint32_t i = 0; i < total; ++i) {
        const SegmentFacts seg = backend_->segment(i);
        ++counts.segments;
        confidence_sum += seg.confidence;
        if (seg.confidence >= 0.5) ++counts.confident_segments;
        abis.insert(seg.abi);
        cbis.insert(seg.cbi);
        if (seg.peer_org != 0) orgs.insert(seg.peer_org);
        ++counts.by_confirmation[seg.confirmation];
        if (seg.ixp) ++counts.ixp_segments;
        if (seg.vpi) vpi_cbis.insert(seg.cbi);
        if (seg.group == kSnapshotNoGroup) {
          ++counts.unattributed_segments;
        } else {
          ++counts.group_segments[seg.group];
          if (seg.peer_asn != 0) group_ases[seg.group].insert(seg.peer_asn);
        }
      }
      counts.unique_abis = abis.size();
      counts.unique_cbis = cbis.size();
      counts.peer_ases = backend_->asn_list().size();
      counts.peer_orgs = orgs.size();
      counts.vpi_cbis = vpi_cbis.size();
      for (std::size_t g = 0; g < kPeeringGroupCount; ++g)
        counts.group_ases[g] = group_ases[g].size();
      counts.pinned_interfaces = backend_->pin_total();
      counts.regional_only = backend_->regional_total();
      if (counts.segments > 0)
        counts.mean_confidence =
            confidence_sum / static_cast<double>(counts.segments);
      out.counts = counts;
      return out;
    }
    case QueryKind::kPeersOf: {
      const Span32 hits = backend_->peer_segments(request.asn);
      out.items.assign(hits.begin(), hits.end());
      segment_items = true;
      break;
    }
    case QueryKind::kPeerList: {
      const Span32 asns = backend_->asn_list();
      out.items.assign(asns.begin(), asns.end());
      return out;
    }
    case QueryKind::kInterfacesIn: {
      const Span32 hits = backend_->metro_interfaces(request.metro);
      out.items.assign(hits.begin(), hits.end());
      return out;  // items are addresses, not segment indices: no briefs
    }
    case QueryKind::kVpiCandidates: {
      const Span32 hits = backend_->vpi_list();
      out.items.assign(hits.begin(), hits.end());
      segment_items = true;
      break;
    }
    case QueryKind::kLookup: {
      const auto hit = backend_->find(Ipv4(request.address));
      if (hit) {
        out.found = true;
        out.prefix_network = hit->prefix.network().value();
        out.prefix_length = static_cast<std::uint8_t>(hit->prefix.length());
        out.is_interface = hit->is_interface;
        out.role_abi = hit->abi;
        out.role_cbi = hit->cbi;
        out.items.assign(hit->segments.begin(), hit->segments.end());
        if (request.want_briefs)
          for (const std::uint32_t i : out.items)
            out.briefs.push_back(brief_of(*backend_, i));
      }
      return out;
    }
    case QueryKind::kMinConfidence: {
      out.items = backend_->min_confidence_list(
          std::max(request.min_confidence, 0.0));
      segment_items = true;
      break;
    }
    case QueryKind::kConfidenceHistogram: {
      out.histogram = backend_->histogram();
      return out;
    }
  }

  if (segment_items) {
    // kMinConfidence already honoured its threshold as the query itself.
    if (request.min_confidence >= 0.0 &&
        request.kind != QueryKind::kMinConfidence) {
      std::erase_if(out.items, [&](std::uint32_t i) {
        return backend_->segment(i).confidence < request.min_confidence;
      });
    }
    if (request.want_briefs)
      for (const std::uint32_t i : out.items)
        out.briefs.push_back(brief_of(*backend_, i));
  }
  return out;
}

std::vector<std::uint32_t> QueryEngine::peers_of(Asn peer) const {
  QueryRequest request;
  request.kind = QueryKind::kPeersOf;
  request.asn = peer.value;
  return std::move(execute(request).items);
}

std::vector<std::uint32_t> QueryEngine::interfaces_in(
    std::uint32_t metro) const {
  QueryRequest request;
  request.kind = QueryKind::kInterfacesIn;
  request.metro = metro;
  return std::move(execute(request).items);
}

std::vector<std::uint32_t> QueryEngine::vpi_candidates() const {
  QueryRequest request;
  request.kind = QueryKind::kVpiCandidates;
  return std::move(execute(request).items);
}

std::vector<std::uint32_t> QueryEngine::segments_min_confidence(
    double min_confidence) const {
  QueryRequest request;
  request.kind = QueryKind::kMinConfidence;
  request.min_confidence = min_confidence;
  return std::move(execute(request).items);
}

FabricCounts QueryEngine::counts() const {
  QueryRequest request;
  request.kind = QueryKind::kCounts;
  return *execute(request).counts;
}

const ConfidenceHistogram& QueryEngine::confidence_histogram() const {
  if (MetricsRegistry::Counter* c = counter(QueryKind::kConfidenceHistogram);
      c != nullptr)
    c->add();
  return backend_->histogram();
}

std::optional<LookupHit> QueryEngine::lookup(Ipv4 address) const {
  if (MetricsRegistry::Counter* c = counter(QueryKind::kLookup); c != nullptr)
    c->add();
  return index_->lookup(address);
}

}  // namespace cloudmap
