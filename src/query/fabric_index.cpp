#include "query/fabric_index.h"

#include <algorithm>

namespace cloudmap {

namespace {

// Segments are canonicalized (sorted by (abi, cbi)) and visited in order, so
// per-key index vectors come out ascending without a second sort; dedup is
// still needed where one segment contributes the same key twice.
void push_unique(std::vector<std::uint32_t>& into, std::uint32_t value) {
  if (into.empty() || into.back() != value) into.push_back(value);
}

}  // namespace

FabricIndex::FabricIndex(RunSnapshot snapshot)
    : snapshot_(std::move(snapshot)) {
  canonicalize(snapshot_);  // hand-built snapshots may arrive unsorted

  for (std::uint32_t i = 0;
       i < static_cast<std::uint32_t>(snapshot_.segments.size()); ++i) {
    const SnapshotSegment& seg = snapshot_.segments[i];
    if (!seg.peer_asn.is_unknown())
      by_peer_[seg.peer_asn.value].push_back(i);
    if (!seg.peer_org.is_unknown()) by_org_[seg.peer_org.value].push_back(i);
    by_confirmation_[static_cast<std::size_t>(seg.confirmation)].push_back(i);
    if (seg.ixp) ixp_segments_.push_back(i);
    if (seg.vpi) vpi_segments_.push_back(i);

    // Interface entries (/32). An address may be the ABI of one segment and
    // the CBI of another (§5.2 relabels); roles accumulate.
    TrieEntry& abi_entry = trie_.at_or_default(Prefix(seg.abi, 32));
    abi_entry.is_interface = true;
    abi_entry.abi = true;
    push_unique(abi_entry.segments, i);
    TrieEntry& cbi_entry = trie_.at_or_default(Prefix(seg.cbi, 32));
    cbi_entry.is_interface = true;
    cbi_entry.cbi = true;
    push_unique(cbi_entry.segments, i);
    // Destination cones (/24): the networks reached through this segment.
    for (const std::uint32_t network : seg.dest_slash24s) {
      TrieEntry& dest = trie_.at_or_default(Prefix(Ipv4(network), 24));
      push_unique(dest.segments, i);
    }
  }

  // lint: sorted-ok(keys are collected then sorted on the next line)
  for (const auto& [asn, indices] : by_peer_) peer_asns_.push_back(asn);
  std::sort(peer_asns_.begin(), peer_asns_.end());

  for (std::size_t p = 0; p < snapshot_.pins.size(); ++p) {
    const SnapshotPin& pin = snapshot_.pins[p];
    pin_by_address_[pin.address] = p;
    by_metro_[pin.metro].push_back(pin.address);  // pins sorted by address
  }
  // lint: sorted-ok(keys are collected then sorted on the line after the loop)
  for (const auto& [metro, addresses] : by_metro_)
    pinned_metros_.push_back(metro);
  std::sort(pinned_metros_.begin(), pinned_metros_.end());
  for (const auto& [address, region] : snapshot_.regional)
    region_by_address_[address] = region;

  for (std::size_t s = 0; s < snapshot_.alias_sets.size(); ++s)
    for (const std::uint32_t member : snapshot_.alias_sets[s])
      alias_set_by_address_[member] = s;

  // Confidence views: a descending (confidence, index) list for
  // min-confidence scans, and the precomputed histogram.
  by_confidence_.reserve(snapshot_.segments.size());
  for (std::uint32_t i = 0;
       i < static_cast<std::uint32_t>(snapshot_.segments.size()); ++i)
    by_confidence_.emplace_back(snapshot_.segments[i].confidence, i);
  std::sort(by_confidence_.begin(), by_confidence_.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  confidence_histogram_.segments = snapshot_.segments.size();
  if (!snapshot_.segments.empty()) {
    double sum = 0.0;
    confidence_histogram_.min = snapshot_.segments.front().confidence;
    confidence_histogram_.max = confidence_histogram_.min;
    for (const SnapshotSegment& seg : snapshot_.segments) {
      const double score = seg.confidence;
      sum += score;
      confidence_histogram_.min = std::min(confidence_histogram_.min, score);
      confidence_histogram_.max = std::max(confidence_histogram_.max, score);
      auto bin = static_cast<std::size_t>(score * 10.0);
      if (bin >= confidence_histogram_.bins.size())
        bin = confidence_histogram_.bins.size() - 1;  // score == 1.0
      ++confidence_histogram_.bins[bin];
    }
    confidence_histogram_.mean =
        sum / static_cast<double>(snapshot_.segments.size());
  }
}

std::vector<std::uint32_t> FabricIndex::segments_min_confidence(
    double min_confidence) const {
  std::vector<std::uint32_t> out;
  for (const auto& [score, i] : by_confidence_) {
    if (score < min_confidence) break;  // descending: nothing further matches
    out.push_back(i);
  }
  std::sort(out.begin(), out.end());
  return out;
}

const std::vector<std::uint32_t>* FabricIndex::segments_of_peer(
    Asn peer) const {
  const auto it = by_peer_.find(peer.value);
  return it == by_peer_.end() ? nullptr : &it->second;
}

const std::vector<std::uint32_t>* FabricIndex::segments_of_org(
    OrgId org) const {
  const auto it = by_org_.find(org.value);
  return it == by_org_.end() ? nullptr : &it->second;
}

const std::vector<std::uint32_t>* FabricIndex::interfaces_in_metro(
    std::uint32_t metro) const {
  const auto it = by_metro_.find(metro);
  return it == by_metro_.end() ? nullptr : &it->second;
}

const SnapshotPin* FabricIndex::pin_of(Ipv4 address) const {
  const auto it = pin_by_address_.find(address.value());
  return it == pin_by_address_.end() ? nullptr : &snapshot_.pins[it->second];
}

std::optional<std::uint32_t> FabricIndex::region_of(Ipv4 address) const {
  const auto it = region_by_address_.find(address.value());
  if (it == region_by_address_.end()) return std::nullopt;
  return it->second;
}

std::optional<LookupHit> FabricIndex::lookup(Ipv4 address) const {
  const auto entry = trie_.lookup_entry(address);
  if (!entry) return std::nullopt;
  const auto it = trie_.exact(entry->first);
  // lookup_entry copies the value; re-resolve to hand out a stable pointer.
  if (it == nullptr) return std::nullopt;
  LookupHit hit;
  hit.prefix = entry->first;
  hit.is_interface = it->is_interface;
  hit.abi = it->abi;
  hit.cbi = it->cbi;
  hit.segments = &it->segments;
  return hit;
}

const std::vector<std::uint32_t>* FabricIndex::alias_set_of(
    Ipv4 address) const {
  const auto it = alias_set_by_address_.find(address.value());
  return it == alias_set_by_address_.end()
             ? nullptr
             : &snapshot_.alias_sets[it->second];
}

SegmentFacts FabricIndex::segment(std::uint32_t index) const {
  const SnapshotSegment& seg = snapshot_.segments[index];
  SegmentFacts facts;
  facts.abi = seg.abi.value();
  facts.cbi = seg.cbi.value();
  facts.peer_asn = seg.peer_asn.value;
  facts.peer_org = seg.peer_org.value;
  facts.confirmation = static_cast<std::uint8_t>(seg.confirmation);
  facts.group = seg.group;
  facts.ixp = seg.ixp;
  facts.vpi = seg.vpi;
  facts.confidence = seg.confidence;
  return facts;
}

Span32 FabricIndex::peer_segments(std::uint32_t peer_asn) const {
  const std::vector<std::uint32_t>* hits = segments_of_peer(Asn{peer_asn});
  return hits == nullptr ? Span32{} : Span32{hits->data(), hits->size()};
}

Span32 FabricIndex::metro_interfaces(std::uint32_t metro) const {
  const std::vector<std::uint32_t>* hits = interfaces_in_metro(metro);
  return hits == nullptr ? Span32{} : Span32{hits->data(), hits->size()};
}

std::optional<BackendHit> FabricIndex::find(Ipv4 address) const {
  const auto hit = lookup(address);
  if (!hit) return std::nullopt;
  BackendHit out;
  out.prefix = hit->prefix;
  out.is_interface = hit->is_interface;
  out.abi = hit->abi;
  out.cbi = hit->cbi;
  out.segments = {hit->segments->data(), hit->segments->size()};
  return out;
}

}  // namespace cloudmap
