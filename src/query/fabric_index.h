// FabricIndex: an immutable, read-optimized view over one RunSnapshot,
// built once at load time. Construction materializes every secondary index
// the query engine needs — segments by peer ASN, by ORG, by confirmation
// class, by IXP/VPI membership, interfaces by metro pin, and a prefix-trie
// over all interface addresses (/32) and destination cones (/24) for
// longest-prefix lookups. After the constructor returns the structure is
// never mutated, so any number of reader threads may query it concurrently
// with zero locking.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/prefix_trie.h"
#include "query/backend.h"
#include "query/snapshot.h"

namespace cloudmap {

// One longest-prefix match: a /32 hit names an interface (with its fabric
// roles), a shorter hit names a destination cone reached through the listed
// segments.
struct LookupHit {
  Prefix prefix;               // most specific covering entry
  bool is_interface = false;   // /32 interface vs destination /24
  bool abi = false;            // address appears as an ABI
  bool cbi = false;            // address appears as a CBI
  // Indices into segments(), ascending; never null.
  const std::vector<std::uint32_t>* segments = nullptr;
};

class FabricIndex : public FabricBackend {
 public:
  // Takes the snapshot by value (canonicalized on save/load, so index
  // iteration orders are deterministic) and builds every index eagerly.
  explicit FabricIndex(RunSnapshot snapshot);
  FabricIndex(const FabricIndex&) = delete;
  FabricIndex& operator=(const FabricIndex&) = delete;

  const RunSnapshot& snapshot() const noexcept { return snapshot_; }
  const std::vector<SnapshotSegment>& segments() const {
    return snapshot_.segments;
  }

  // --- secondary indexes (segment indices, ascending; nullptr = no hits) ---
  const std::vector<std::uint32_t>* segments_of_peer(Asn peer) const;
  const std::vector<std::uint32_t>* segments_of_org(OrgId org) const;
  const std::vector<std::uint32_t>& segments_with(Confirmation c) const {
    return by_confirmation_[static_cast<std::size_t>(c)];
  }
  const std::vector<std::uint32_t>& ixp_segments() const {
    return ixp_segments_;
  }
  const std::vector<std::uint32_t>& vpi_segments() const {
    return vpi_segments_;
  }

  // Peer ASNs present in the fabric, ascending (unknown/0 excluded).
  const std::vector<std::uint32_t>& peer_asns() const { return peer_asns_; }

  // --- confidence views ----------------------------------------------------
  // Segment indices with confidence >= min_confidence, ascending. Backed by
  // a confidence-sorted index, so the scan touches only qualifying segments.
  std::vector<std::uint32_t> segments_min_confidence(
      double min_confidence) const;
  const ConfidenceHistogram& confidence_histogram() const {
    return confidence_histogram_;
  }

  // --- pinning views -------------------------------------------------------
  // Interface addresses pinned to a metro, ascending; nullptr = none.
  const std::vector<std::uint32_t>* interfaces_in_metro(
      std::uint32_t metro) const;
  // Metros with at least one pinned interface, ascending.
  const std::vector<std::uint32_t>& pinned_metros() const {
    return pinned_metros_;
  }
  const SnapshotPin* pin_of(Ipv4 address) const;
  std::optional<std::uint32_t> region_of(Ipv4 address) const;

  // --- longest-prefix lookup ----------------------------------------------
  std::optional<LookupHit> lookup(Ipv4 address) const;

  // Alias set containing an address; nullptr when the address is in none.
  const std::vector<std::uint32_t>* alias_set_of(Ipv4 address) const;

  // --- FabricBackend (query/backend.h) -------------------------------------
  // The generic face of the same data, so QueryEngine::execute() dispatches
  // identically over a decoded index and a zero-copy FabricView.
  std::size_t segment_count() const override { return segments().size(); }
  SegmentFacts segment(std::uint32_t index) const override;
  Span32 peer_segments(std::uint32_t peer_asn) const override;
  Span32 asn_list() const override {
    return {peer_asns_.data(), peer_asns_.size()};
  }
  Span32 vpi_list() const override {
    return {vpi_segments_.data(), vpi_segments_.size()};
  }
  Span32 metro_interfaces(std::uint32_t metro) const override;
  Span32 metro_list() const override {
    return {pinned_metros_.data(), pinned_metros_.size()};
  }
  std::optional<BackendHit> find(Ipv4 address) const override;
  std::vector<std::uint32_t> min_confidence_list(
      double min_confidence) const override {
    return segments_min_confidence(min_confidence);
  }
  const ConfidenceHistogram& histogram() const override {
    return confidence_histogram_;
  }
  std::size_t pin_total() const override { return snapshot_.pins.size(); }
  std::size_t regional_total() const override {
    return snapshot_.regional.size();
  }

 private:
  struct TrieEntry {
    bool is_interface = false;
    bool abi = false;
    bool cbi = false;
    std::vector<std::uint32_t> segments;
  };

  RunSnapshot snapshot_;
  std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> by_peer_;
  std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> by_org_;
  std::array<std::vector<std::uint32_t>, 5> by_confirmation_;
  std::vector<std::uint32_t> ixp_segments_;
  std::vector<std::uint32_t> vpi_segments_;
  std::vector<std::uint32_t> peer_asns_;
  std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> by_metro_;
  std::vector<std::uint32_t> pinned_metros_;
  std::unordered_map<std::uint32_t, std::size_t> pin_by_address_;
  std::unordered_map<std::uint32_t, std::uint32_t> region_by_address_;
  std::unordered_map<std::uint32_t, std::size_t> alias_set_by_address_;
  // (confidence, segment index), descending by confidence then ascending by
  // index — binary-searchable for min-confidence queries.
  std::vector<std::pair<double, std::uint32_t>> by_confidence_;
  ConfidenceHistogram confidence_histogram_;
  PrefixTrie<TrieEntry> trie_;
};

}  // namespace cloudmap
