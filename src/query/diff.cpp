#include "query/diff.h"

#include <algorithm>
#include <map>
#include <ostream>

namespace cloudmap {

namespace {

std::uint64_t key_of(const SnapshotSegment& seg) {
  return (static_cast<std::uint64_t>(seg.abi.value()) << 32) |
         seg.cbi.value();
}

SegmentKey unkey(std::uint64_t key) {
  return SegmentKey{Ipv4(static_cast<std::uint32_t>(key >> 32)),
                    Ipv4(static_cast<std::uint32_t>(key))};
}

}  // namespace

SnapshotDiff diff_snapshots(const RunSnapshot& a, const RunSnapshot& b) {
  SnapshotDiff out;
  out.hazard_profile_a = a.hazard_profile;
  out.hazard_profile_b = b.hazard_profile;

  // Ordered maps give ascending output without a post-sort.
  std::map<std::uint64_t, const SnapshotSegment*> segments_a;
  std::map<std::uint64_t, const SnapshotSegment*> segments_b;
  for (const SnapshotSegment& seg : a.segments) segments_a[key_of(seg)] = &seg;
  for (const SnapshotSegment& seg : b.segments) segments_b[key_of(seg)] = &seg;

  for (const auto& [key, seg_a] : segments_a) {
    const auto it = segments_b.find(key);
    if (it == segments_b.end()) {
      out.removed.push_back(unkey(key));
      continue;
    }
    ++out.common_segments;
    if (seg_a->confirmation != it->second->confirmation) {
      out.reconfirmed.push_back(ConfirmationChange{
          seg_a->abi, seg_a->cbi, seg_a->confirmation,
          it->second->confirmation});
    }
  }
  for (const auto& [key, seg_b] : segments_b) {
    (void)seg_b;
    if (!segments_a.count(key)) out.added.push_back(unkey(key));
  }

  std::map<std::uint32_t, std::uint32_t> pins_a;
  std::map<std::uint32_t, std::uint32_t> pins_b;
  for (const SnapshotPin& pin : a.pins) pins_a[pin.address] = pin.metro;
  for (const SnapshotPin& pin : b.pins) pins_b[pin.address] = pin.metro;
  for (const auto& [address, metro] : pins_a) {
    const auto it = pins_b.find(address);
    if (it == pins_b.end()) {
      out.repinned.push_back(PinChange{address, metro, kInvalidIndex});
    } else {
      ++out.common_pins;
      if (it->second != metro)
        out.repinned.push_back(PinChange{address, metro, it->second});
    }
  }
  for (const auto& [address, metro] : pins_b) {
    if (!pins_a.count(address))
      out.repinned.push_back(PinChange{address, kInvalidIndex, metro});
  }
  std::sort(out.repinned.begin(), out.repinned.end(),
            [](const PinChange& x, const PinChange& y) {
              return x.address < y.address;
            });

  return out;
}

void write_diff(std::ostream& out, const SnapshotDiff& diff) {
  if (!diff.hazard_profile_a.empty() || !diff.hazard_profile_b.empty()) {
    const auto label = [](const std::string& profile) {
      return profile.empty() ? "(none)" : profile.c_str();
    };
    out << "hazards: " << label(diff.hazard_profile_a) << " => "
        << label(diff.hazard_profile_b) << '\n';
  }
  out << "segments: +" << diff.added.size() << " -" << diff.removed.size()
      << " reconfirmed " << diff.reconfirmed.size() << " (common "
      << diff.common_segments << ")\n";
  for (const SegmentKey& key : diff.added)
    out << "  + " << key.abi.to_string() << " -> " << key.cbi.to_string()
        << '\n';
  for (const SegmentKey& key : diff.removed)
    out << "  - " << key.abi.to_string() << " -> " << key.cbi.to_string()
        << '\n';
  for (const ConfirmationChange& change : diff.reconfirmed)
    out << "  ~ " << change.abi.to_string() << " -> "
        << change.cbi.to_string() << "  " << to_string(change.before)
        << " => " << to_string(change.after) << '\n';
  out << "pins: " << diff.repinned.size() << " changed (common "
      << diff.common_pins << ")\n";
  for (const PinChange& change : diff.repinned) {
    out << "  ~ " << Ipv4(change.address).to_string() << "  metro ";
    if (change.metro_before == kInvalidIndex)
      out << "(unpinned)";
    else
      out << change.metro_before;
    out << " => ";
    if (change.metro_after == kInvalidIndex)
      out << "(unpinned)";
    else
      out << change.metro_after;
    out << '\n';
  }
  if (diff.identical()) out << "snapshots are identical\n";
}

}  // namespace cloudmap
