// RunSnapshot: the durable output of one full pipeline run — every inferred
// interconnection segment with its annotations (peer ASN/ORG, confirmation
// heuristic, IXP/VPI classification, peering group), the §6 metro/regional
// pins, the §5.2 alias sets, and the run's per-stage metrics. This is the
// *map* the paper produces, captured as one value so it can be persisted
// (io/snapshot.h), indexed (query/fabric_index.h), and compared across runs
// (query/diff.h) without re-running the campaign.
//
// Everything here is plain data. Collections are kept in the canonical order
// save_snapshot() writes (segments by (ABI, CBI), pins and regional entries
// by address, alias-set members ascending, sets by first member), so a
// loaded snapshot re-saves byte-identically.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "infer/fabric.h"
#include "net/ids.h"
#include "net/ipv4.h"
#include "obs/stage_report.h"

namespace cloudmap {

// `group` value for segments whose peer AS could not be attributed.
inline constexpr std::uint8_t kSnapshotNoGroup = 0xFF;

struct SnapshotSegment {
  Ipv4 abi;
  Ipv4 cbi;
  Ipv4 prior_abi;
  Ipv4 post_cbi;
  std::int32_t first_round = 1;
  Confirmation confirmation = Confirmation::kUnconfirmed;
  bool shifted = false;
  bool ixp = false;  // CBI inside an IXP peering LAN (public peering)
  bool vpi = false;  // CBI in the §7.1 multi-cloud overlap set
  Asn owner_hint;
  Asn peer_asn;   // resolved peer AS (owner hint fallback applied); 0=unknown
  OrgId peer_org;  // organization of peer_asn; 0=unknown
  std::uint8_t group = kSnapshotNoGroup;  // PeeringGroup, Table 5 axis
  // Per-segment confidence (infer/confidence.h), persisted as the v2
  // confidence section of io/snapshot. All zero when loaded from a v1 file.
  std::uint32_t observations = 0;  // candidate observations merged
  std::uint32_t rounds_mask = 0;   // bit r-1 set when round r contributed
  double hop_density = 0.0;        // mean responding-hop density, [0, 1]
  double confidence = 0.0;         // blended confidence score, [0, 1]
  std::vector<std::uint32_t> regions;         // source regions, ascending
  std::vector<std::uint32_t> dest_slash24s;   // /24 networks, ascending
};

struct SnapshotPin {
  std::uint32_t address = 0;
  std::uint32_t metro = kInvalidIndex;
  std::uint8_t rule = 0;           // PinRule
  std::uint8_t anchor_source = 0;  // AnchorSource
  std::int32_t round = 0;          // propagation round (0 = anchor)
};

struct RunSnapshot {
  std::uint64_t seed = 0;
  std::int32_t threads = 0;
  std::uint8_t subject = 0;  // CloudProvider
  std::vector<SnapshotSegment> segments;
  std::vector<SnapshotPin> pins;  // metro-level pins, by address
  // Regional fallback for interfaces unpinned at metro level: addr → region.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> regional;
  std::vector<std::vector<std::uint32_t>> alias_sets;  // member addresses
  std::vector<StageReport> stage_reports;  // canonical stage order
  // Hazard provenance (scenario/hazard.h): the canonical profile spec the
  // run was produced under, plus optional scorecard metrics stamped by the
  // degradation scorecard. Empty profile ⇒ the hazard section is not
  // written, so pre-hazard snapshots stay byte-identical.
  std::string hazard_profile;
  std::vector<std::pair<std::string, double>> hazard_metrics;  // by name
};

// Sort every collection into the canonical order documented above (in
// place). save_snapshot() applies this; call it directly when constructing
// snapshots by hand for comparison.
void canonicalize(RunSnapshot& snapshot);

}  // namespace cloudmap
