// FabricView: the zero-copy FabricBackend over a validated format-v3 flat
// fabric blob (io/snapshot_v3.h). Construction casts typed pointers over
// the blob and precomputes only the confidence histogram — no per-segment
// decode, no allocation proportional to fabric size — so a daemon can open
// a snapshot, validate it once, and start answering queries out of the page
// cache immediately. Answers are bit-identical to a FabricIndex built from
// the same snapshot (the blob's index arrays are derived with exactly the
// FabricIndex constructor's semantics; enforced by tests).
//
// The view borrows the blob: keep the backing storage (typically a
// MappedSnapshot, io/mapped_snapshot.h) alive for the view's lifetime.
// Immutable after construction; safe for any number of reader threads.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "io/snapshot_v3.h"
#include "query/backend.h"

namespace cloudmap {

class FabricView : public FabricBackend {
 public:
  // `blob` must be 8-byte aligned and already accepted by
  // snapv3::validate_flat_fabric() (MappedSnapshot guarantees both).
  explicit FabricView(const unsigned char* blob);
  FabricView(const FabricView&) = delete;
  FabricView& operator=(const FabricView&) = delete;

  std::size_t segment_count() const override {
    return v_.dir->segment_count;
  }
  SegmentFacts segment(std::uint32_t index) const override;
  Span32 peer_segments(std::uint32_t peer_asn) const override;
  Span32 asn_list() const override { return pool_span(v_.dir->peer_asns); }
  Span32 vpi_list() const override { return pool_span(v_.dir->vpi); }
  Span32 metro_interfaces(std::uint32_t metro) const override;
  Span32 metro_list() const override {
    return pool_span(v_.dir->pinned_metros);
  }
  std::optional<BackendHit> find(Ipv4 address) const override;
  std::vector<std::uint32_t> min_confidence_list(
      double min_confidence) const override;
  const ConfidenceHistogram& histogram() const override {
    return histogram_;
  }
  std::size_t pin_total() const override { return v_.dir->pin_count; }
  std::size_t regional_total() const override {
    return v_.dir->regional_count;
  }

  // The raw typed view, for callers that need sections the backend
  // interface does not cover (stage reports, pins, alias sets).
  const snapv3::V3View& raw() const noexcept { return v_; }

 private:
  Span32 pool_span(snapv3::V3Span span) const {
    return {v_.pool + span.off, span.len};
  }

  snapv3::V3View v_;
  ConfidenceHistogram histogram_;
};

}  // namespace cloudmap
