// Adversarial scenario engine: pluggable hazards that degrade the
// measurement plane the way real fabrics do (ROADMAP item 3). The paper's
// Amazon study only had to cope with silence, third-party addressing, and
// /30 ambiguity; other clouds hide behind MPLS tunnels, ICMP rate-limiting,
// route churn, and remote peering ("O Peer, Where Art Thou?", traIXroute).
// A HazardProfile names a composition of such hazards; the scorecard in
// scenario/score.h reruns the pipeline per profile against planted truth.
//
// Hazards act at two layers:
//   * world construction (scenario/world_hazards.h) — remote peering with
//     RTT inflation on IXP segments, longitudinal peering turnover;
//   * dataplane (DataplaneHazards, hooked into TracerouteEngine/Campaign) —
//     probabilistic loss (hazard zero: the PR-4 response_scale knob),
//     MPLS-style hidden hops, per-router ICMP rate-limiting on the
//     simulated campaign clock, and mid-campaign route churn that swaps
//     forwarding state atomically between work items.
//
// Every hazard draws from dedicated splitmix64 streams keyed on
// (seed, kind, entity, round) — never from the campaign's probe RNG — so
// hazard replay is bit-identical at any thread count.
//
// This header is a LEAF: it must not include topology/dataplane/infer
// headers (dataplane/traceroute.h embeds DataplaneHazards in its options).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace cloudmap {

enum class HazardKind : std::uint8_t {
  kLoss = 0,           // uniform probe loss (alias of response_scale)
  kRemotePeering,      // world: flip local IXP peers remote, inflate RTT
  kPeeringChurn,       // world: longitudinal interconnect turnover
  kMplsHiddenHops,     // dataplane: splice tunnel-interior hops out
  kIcmpRateLimit,      // dataplane: per-router reply budget per clock window
  kRouteChurn,         // dataplane: swap forwarding state mid-campaign
};
inline constexpr int kHazardKindCount = 6;

// Spec-string / CLI token for a kind ("loss", "remote", "churn", "mpls",
// "rate-limit", "route-churn") and a one-line description for
// `cloudmap_cli hazards list`.
const char* hazard_kind_name(HazardKind kind) noexcept;
const char* hazard_kind_description(HazardKind kind) noexcept;
std::optional<HazardKind> hazard_kind_from_name(const std::string& name);

// Dedicated RNG stream for one (hazard, entity, round) decision, derived
// from the hazard master seed the way infer/campaign.cpp's stream_seed
// derives chunk streams: chained splitmix64 so streams are decorrelated
// however the inputs collide, with no dependence on thread count or on the
// order other hazards consume randomness.
std::uint64_t hazard_stream_seed(std::uint64_t seed, HazardKind kind,
                                 std::uint64_t entity,
                                 std::uint64_t round) noexcept;
// The stream's first draw as a uniform double in [0, 1), and the matching
// Bernoulli helper. Stateless: the same (seed, kind, entity, round) always
// answers the same, which is what makes world hazards order-independent.
double hazard_u01(std::uint64_t seed, HazardKind kind, std::uint64_t entity,
                  std::uint64_t round) noexcept;
bool hazard_chance(std::uint64_t seed, HazardKind kind, std::uint64_t entity,
                   std::uint64_t round, double probability) noexcept;

// One hazard with its intensity in [0, 1]. `steps` only applies to
// kPeeringChurn: the number of longitudinal worlds the churn sequence
// emits (>= 2 to be observable).
struct HazardSpec {
  HazardKind kind = HazardKind::kLoss;
  double intensity = 0.0;
  int steps = 0;
};

// A named composition of hazards. Parsed from either a preset name
// ("baseline", "mpls", "gauntlet", ...) or a spec string of
// comma-separated `kind:intensity` terms, churn taking an optional step
// count: "loss:0.25,mpls:0.3,churn:0.3@4". spec_string() emits the
// canonical kind-ordered form and round-trips through parse().
struct HazardProfile {
  std::string name = "baseline";
  std::vector<HazardSpec> hazards;  // kind-ordered, at most one per kind

  bool empty() const noexcept { return hazards.empty(); }
  const HazardSpec* find(HazardKind kind) const noexcept;
  double intensity(HazardKind kind) const noexcept;
  std::string spec_string() const;

  static const std::vector<std::string>& preset_names();
  static std::optional<HazardProfile> preset(const std::string& name);
  static std::optional<HazardProfile> parse(const std::string& text,
                                            std::string* error = nullptr);
};

// The dataplane projection of a profile, embedded in TracerouteOptions so
// every engine the campaign builds (primary and retry) applies the same
// hazards. All-defaults (`any() == false`) is the contract for "draws the
// exact pre-hazard RNG stream": loss multiplies response_scale by 1.0
// (bit-exact), mpls/rate-limit guards are `> 0` checks, and epoch 0 leaves
// the forwarder's flow hash untouched.
struct DataplaneHazards {
  std::uint64_t seed = 0;     // hazard master seed (not the campaign seed)
  double loss = 0.0;          // extra probe loss: scale *= (1 - loss)
  double mpls_fraction = 0.0; // fraction of routers inside hidden tunnels
  double rate_limit = 0.0;    // fraction of each router's replies suppressed
  double route_churn = 0.0;   // fraction of each sweep run post-swap
  // Forwarding-state epoch of the current work item; set per chunk by
  // Campaign::sweep (0 = pre-swap state, identical to no hazard).
  std::uint32_t epoch = 0;

  bool any() const noexcept {
    return loss > 0.0 || mpls_fraction > 0.0 || rate_limit > 0.0 ||
           route_churn > 0.0;
  }
  DataplaneHazards clamped() const;
};

// Project the profile's dataplane hazards (loss, mpls, rate-limit,
// route-churn) onto engine knobs under the given hazard master seed. World
// hazards (remote, churn) are ignored here — apply those with
// scenario/world_hazards.h before building the forwarder.
DataplaneHazards dataplane_hazards(const HazardProfile& profile,
                                   std::uint64_t seed);

}  // namespace cloudmap
