// World-construction hazards: deterministic mutations of a generated World
// that plant ground truth for the scorecard to recover. Two passes live
// here (the dataplane hazards ride on TracerouteOptions::hazards instead):
//
//   * remote peering (HazardKind::kRemotePeering) — flips a fraction of the
//     currently-local public-IXP interconnects to remote partners reached
//     over a layer-2 reseller tail, inflating the IXP LAN segment's latency
//     by a 2.5-12 ms one-way tail. The ≥2 ms local/remote RTT rule from
//     "O Peer, Where Art Thou?" should recover exactly these plants — the
//     scorecard checks that it does.
//   * peering churn (HazardKind::kPeeringChurn) — emits a *sequence* of
//     longitudinal worlds by toggling subject-cloud interconnects down/up
//     between steps, recording every planted turnover event so the
//     snapshot-sequence diff can be scored against it.
//
// All decisions draw from hazard_stream_seed(kind, entity, round) streams,
// never from a shared RNG, so each plant is a pure function of (seed,
// interconnect index, step) — order- and thread-count-independent.
#pragma once

#include <cstdint>
#include <vector>

#include "scenario/hazard.h"
#include "topology/world.h"

namespace cloudmap {

// One interconnect flipped remote, with the planted one-way tail (ms).
struct PlantedRemotePeer {
  std::size_t interconnect = 0;  // index into world.interconnects
  double tail_ms = 0.0;
};

struct RemotePeeringPlan {
  std::vector<PlantedRemotePeer> planted;
};

// Flip `fraction` of the local public-IXP interconnects of `world` remote:
// mark the ground truth, and add a one-way tail in [2.5, 12) ms to the IXP
// LAN link (and the redundant secondary link, which shares the L2 fabric).
// Interconnect indices are preserved. Already-remote peers and non-IXP
// interconnects are never touched, so the plan is exactly the planted set.
RemotePeeringPlan apply_remote_peering(World& world, double fraction,
                                       std::uint64_t seed);

// One planted turnover event: interconnect `interconnect` of the BASE world
// went down (removed=true) or came back up in the transition into step
// `step`. `cbi` is the client-side border address — the identity under
// which `cloudmap_cli diff` should see the segment appear or disappear.
struct TurnoverEvent {
  int step = 0;
  bool removed = false;
  std::size_t interconnect = 0;
  std::uint32_t cbi = 0;
};

struct LongitudinalWorlds {
  std::vector<World> steps;          // worlds t0 .. tN-1
  std::vector<TurnoverEvent> events; // every planted transition, step order
};

// Emit `steps` longitudinal worlds from `base`: step 0 is the base itself;
// each later step toggles every eligible subject-cloud interconnect down
// with probability `intensity` (and a downed one back up with probability
// 1/2), drawing from the (interconnect, step) hazard stream. An inactive
// interconnect is erased from the world's ground-truth list, so the
// forwarder built over that step installs no routes through it.
LongitudinalWorlds make_churn_sequence(const World& base,
                                       CloudProvider subject,
                                       double intensity, int steps,
                                       std::uint64_t seed);

// Apply every world-construction hazard of `profile` (currently: remote
// peering) to `world` in place. Churn is not applied here — it yields a
// sequence, not a mutation; use make_churn_sequence.
RemotePeeringPlan apply_world_hazards(World& world,
                                      const HazardProfile& profile,
                                      std::uint64_t seed);

}  // namespace cloudmap
