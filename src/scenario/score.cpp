#include "scenario/score.h"

#include <cstdio>
#include <ostream>
#include <set>
#include <string>
#include <vector>

#include "pinning/evaluate.h"
#include "query/diff.h"

namespace cloudmap {

namespace {

// Addresses of every discoverable subject client border interface — the
// ground-truth CBI set calibration is scored against.
std::set<std::uint32_t> truth_cbis(const World& world, CloudProvider subject) {
  std::set<std::uint32_t> out;
  for (const GroundTruthInterconnect& ic : world.interconnects) {
    if (ic.cloud != subject || ic.private_address) continue;
    if (!ic.client_interface.valid()) continue;
    out.insert(world.interfaces[ic.client_interface.value].address.value());
  }
  return out;
}

PipelineOptions pipeline_options(const HazardProfile& profile,
                                 const ScorecardConfig& config) {
  PipelineOptions options;
  options.campaign.threads = config.threads;
  options.deterministic_metrics = config.deterministic_metrics;
  apply_dataplane_hazards(options, profile, config.hazard_seed);
  return options;
}

// Fill the inference/pinning/calibration block of a row from a pipeline that
// has already run.
void score_pipeline(Pipeline& pipeline, const World& world,
                    CloudProvider subject, HazardScore& row) {
  const InferenceScore inference = pipeline.score();
  row.precision = inference.precision();
  row.recall = inference.recall();
  row.router_precision = inference.router_precision();
  row.router_recall = inference.router_recall();

  const GroundTruthAccuracy pins =
      score_against_truth(world, pipeline.pinning());
  row.pinning_accuracy = pins.accuracy;
  row.regional_accuracy = pins.regional_accuracy;

  const RunSnapshot& snapshot = pipeline.run_snapshot();
  row.segments = snapshot.segments.size();
  const std::set<std::uint32_t> truth = truth_cbis(world, subject);
  double sum = 0.0, true_sum = 0.0, false_sum = 0.0;
  std::size_t true_count = 0, false_count = 0;
  for (const SnapshotSegment& segment : snapshot.segments) {
    sum += segment.confidence;
    if (truth.count(segment.cbi.value())) {
      true_sum += segment.confidence;
      ++true_count;
    } else {
      false_sum += segment.confidence;
      ++false_count;
    }
  }
  row.mean_confidence =
      snapshot.segments.empty()
          ? 0.0
          : sum / static_cast<double>(snapshot.segments.size());
  const double true_mean =
      true_count == 0 ? 0.0 : true_sum / static_cast<double>(true_count);
  const double false_mean =
      false_count == 0 ? 0.0 : false_sum / static_cast<double>(false_count);
  row.calibration_gap = true_mean - false_mean;
}

// The ≥2 ms rule: both ports of a public peering sit on the IXP LAN, so
// their best-VP RTTs differ only by the LAN segment. Local members show a
// sub-millisecond delta; a remote peer reached through a connectivity
// partner carries the partner's backhaul on the client side only.
RemoteRuleScore score_remote_rule(const World& world, CloudProvider subject,
                                  const RemotePeeringPlan& plan,
                                  RttCampaign& rtts) {
  RemoteRuleScore out;
  out.planted = plan.planted.size();
  std::set<std::size_t> planted;
  for (const PlantedRemotePeer& peer : plan.planted)
    planted.insert(peer.interconnect);
  for (std::size_t i = 0; i < world.interconnects.size(); ++i) {
    const GroundTruthInterconnect& ic = world.interconnects[i];
    if (ic.cloud != subject || ic.kind != PeeringKind::kPublicIxp)
      continue;
    if (!ic.client_interface.valid() || !ic.cloud_interface.valid()) continue;
    const auto client = rtts.best_rtt(ic.client_interface);
    const auto cloud = rtts.best_rtt(ic.cloud_interface);
    if (!client || !cloud) continue;
    const bool flagged = client->first - cloud->first >= out.threshold_ms;
    if (planted.count(i)) {
      ++out.measured;
      if (flagged) ++out.recovered;
    } else if (!ic.remote && flagged) {
      ++out.false_remote;
    }
  }
  return out;
}

void json_string(std::ostream& out, const std::string& value) {
  out << '"';
  for (const char c : value) {
    if (c == '"' || c == '\\') out << '\\';
    out << c;
  }
  out << '"';
}

void json_number(std::ostream& out, double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.9g", value);
  out << buffer;
}

void write_row(std::ostream& out, const HazardScore& row,
               const HazardScore* baseline, const char* indent) {
  out << "{\n" << indent << "  \"profile\": ";
  json_string(out, row.profile);
  out << ",\n" << indent << "  \"spec\": ";
  json_string(out, row.spec);
  out << ",\n" << indent << "  \"segments\": " << row.segments;
  const auto field = [&](const char* name, double value) {
    out << ",\n" << indent << "  \"" << name << "\": ";
    json_number(out, value);
  };
  field("precision", row.precision);
  field("recall", row.recall);
  field("router_precision", row.router_precision);
  field("router_recall", row.router_recall);
  field("pinning_accuracy", row.pinning_accuracy);
  field("regional_accuracy", row.regional_accuracy);
  field("mean_confidence", row.mean_confidence);
  field("calibration_gap", row.calibration_gap);
  if (baseline != nullptr) {
    out << ",\n" << indent << "  \"drift\": {";
    const char* sep = "";
    const auto delta = [&](const char* name, double ours, double base) {
      out << sep << "\"" << name << "\": ";
      json_number(out, ours - base);
      sep = ", ";
    };
    delta("precision", row.precision, baseline->precision);
    delta("recall", row.recall, baseline->recall);
    delta("pinning_accuracy", row.pinning_accuracy,
          baseline->pinning_accuracy);
    delta("mean_confidence", row.mean_confidence, baseline->mean_confidence);
    delta("calibration_gap", row.calibration_gap, baseline->calibration_gap);
    out << "}";
  }
  if (row.has_remote_rule) {
    out << ",\n" << indent << "  \"remote_rule\": {\"threshold_ms\": ";
    json_number(out, row.remote_rule.threshold_ms);
    out << ", \"planted\": " << row.remote_rule.planted
        << ", \"measured\": " << row.remote_rule.measured
        << ", \"recovered\": " << row.remote_rule.recovered
        << ", \"false_remote\": " << row.remote_rule.false_remote << "}";
  }
  if (row.has_churn) {
    out << ",\n" << indent << "  \"churn\": {\"events\": " << row.churn.events
        << ", \"observable\": " << row.churn.observable
        << ", \"reconstructed\": " << row.churn.reconstructed << "}";
  }
  out << "\n" << indent << "}";
}

}  // namespace

void apply_dataplane_hazards(PipelineOptions& options,
                             const HazardProfile& profile,
                             std::uint64_t hazard_seed) {
  options.campaign.traceroute.hazards = dataplane_hazards(profile, hazard_seed);
  options.hazard_label = profile.spec_string();
}

HazardScore score_profile(const HazardProfile& profile,
                          const ScorecardConfig& config) {
  HazardScore row;
  row.profile = profile.name;
  row.spec = profile.spec_string();

  GeneratorConfig generator = config.world;
  generator.seed = config.world_seed;
  World world = generate_world(generator);
  const RemotePeeringPlan plan =
      apply_world_hazards(world, profile, config.hazard_seed);

  const PipelineOptions options = pipeline_options(profile, config);
  Pipeline pipeline(world, options);
  pipeline.run_all();
  score_pipeline(pipeline, world, options.subject, row);

  if (profile.find(HazardKind::kRemotePeering) != nullptr) {
    row.has_remote_rule = true;
    row.remote_rule =
        score_remote_rule(world, options.subject, plan, pipeline.mutable_rtts());
  }
  if (profile.find(HazardKind::kPeeringChurn) != nullptr) {
    row.has_churn = true;
    row.churn = run_churn_sequence(profile, config).score;
  }
  return row;
}

ChurnRun run_churn_sequence(const HazardProfile& profile,
                            const ScorecardConfig& config) {
  ChurnRun out;
  const HazardSpec* spec = profile.find(HazardKind::kPeeringChurn);
  if (spec == nullptr) return out;

  GeneratorConfig generator = config.world;
  generator.seed = config.world_seed;
  World base = generate_world(generator);
  // Compose: the other world hazards apply to the base world every step
  // inherits; churn then emits the longitudinal sequence on top.
  apply_world_hazards(base, profile, config.hazard_seed);

  const PipelineOptions options = pipeline_options(profile, config);
  const LongitudinalWorlds sequence = make_churn_sequence(
      base, options.subject, spec->intensity, spec->steps, config.hazard_seed);
  out.events = sequence.events;
  out.snapshots.reserve(sequence.steps.size());
  for (const World& step : sequence.steps) {
    Pipeline pipeline(step, options);
    out.snapshots.push_back(pipeline.run_snapshot());
  }
  out.score = score_turnover_reconstruction(out.snapshots, out.events);
  return out;
}

ChurnScore score_turnover_reconstruction(
    const std::vector<RunSnapshot>& snapshots,
    const std::vector<TurnoverEvent>& events) {
  ChurnScore out;
  out.events = events.size();
  if (snapshots.size() < 2) return out;

  std::vector<std::set<std::uint32_t>> cbis(snapshots.size());
  for (std::size_t t = 0; t < snapshots.size(); ++t)
    for (const SnapshotSegment& segment : snapshots[t].segments)
      cbis[t].insert(segment.cbi.value());

  // Per-step diff projections: the CBIs `cloudmap_cli diff` reports as
  // added/removed between steps t-1 and t.
  std::vector<std::set<std::uint32_t>> added(snapshots.size());
  std::vector<std::set<std::uint32_t>> removed(snapshots.size());
  for (std::size_t t = 1; t < snapshots.size(); ++t) {
    const SnapshotDiff diff = diff_snapshots(snapshots[t - 1], snapshots[t]);
    for (const SegmentKey& key : diff.added) added[t].insert(key.cbi.value());
    for (const SegmentKey& key : diff.removed)
      removed[t].insert(key.cbi.value());
  }

  for (const TurnoverEvent& event : events) {
    const auto step = static_cast<std::size_t>(event.step);
    if (event.step <= 0 || step >= snapshots.size()) continue;
    if (event.removed) {
      // Observable only if the campaign had discovered the CBI before the
      // peering went down.
      if (!cbis[step - 1].count(event.cbi)) continue;
      ++out.observable;
      if (removed[step].count(event.cbi)) ++out.reconstructed;
    } else {
      if (!cbis[step].count(event.cbi)) continue;
      ++out.observable;
      if (added[step].count(event.cbi)) ++out.reconstructed;
    }
  }
  return out;
}

void write_scorecard_json(std::ostream& out, const HazardScore& baseline,
                          const std::vector<HazardScore>& profiles,
                          const ScorecardConfig& config) {
  out << "{\n  \"schema\": \"cloudmap-hazard-scorecard-v1\",\n"
      << "  \"world_seed\": " << config.world_seed << ",\n"
      << "  \"hazard_seed\": " << config.hazard_seed << ",\n"
      << "  \"threads\": " << config.threads << ",\n"
      << "  \"baseline\": ";
  write_row(out, baseline, nullptr, "  ");
  out << ",\n  \"profiles\": [";
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    out << (i == 0 ? "\n    " : ",\n    ");
    write_row(out, profiles[i], &baseline, "    ");
  }
  out << (profiles.empty() ? "]" : "\n  ]") << "\n}\n";
}

}  // namespace cloudmap
