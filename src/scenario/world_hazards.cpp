#include "scenario/world_hazards.h"

#include <algorithm>

namespace cloudmap {

namespace {

// Eligible for churn: a probeable interconnect of the subject cloud. VPIs
// on private addressing are invisible to every probe the study can launch,
// so toggling them could never be reconstructed from snapshots.
bool churn_eligible(const GroundTruthInterconnect& ic,
                    CloudProvider subject) {
  return ic.cloud == subject && !ic.private_address;
}

}  // namespace

RemotePeeringPlan apply_remote_peering(World& world, double fraction,
                                       std::uint64_t seed) {
  RemotePeeringPlan plan;
  if (!(fraction > 0.0)) return plan;
  for (std::size_t i = 0; i < world.interconnects.size(); ++i) {
    GroundTruthInterconnect& ic = world.interconnects[i];
    if (ic.kind != PeeringKind::kPublicIxp || ic.remote) continue;
    if (!hazard_chance(seed, HazardKind::kRemotePeering, i, 0, fraction))
      continue;
    // The client router keeps its physical metro; what changes is the L2
    // path to the IXP port — a reseller tail whose one-way delay lands in
    // [2.5, 12) ms, comfortably past the rule's 2 ms RTT threshold while
    // staying within the same-continent delays remote peering shows.
    const double tail_ms =
        2.5 + 9.5 * hazard_u01(seed, HazardKind::kRemotePeering, i, 1);
    world.links[ic.link.value].latency_ms += tail_ms;
    if (ic.secondary_link.valid())
      world.links[ic.secondary_link.value].latency_ms += tail_ms;
    ic.remote = true;
    plan.planted.push_back(PlantedRemotePeer{i, tail_ms});
  }
  return plan;
}

LongitudinalWorlds make_churn_sequence(const World& base,
                                       CloudProvider subject,
                                       double intensity, int steps,
                                       std::uint64_t seed) {
  LongitudinalWorlds out;
  steps = std::max(steps, 1);
  std::vector<bool> active(base.interconnects.size(), true);
  out.steps.push_back(base);
  for (int t = 1; t < steps; ++t) {
    for (std::size_t i = 0; i < base.interconnects.size(); ++i) {
      const GroundTruthInterconnect& ic = base.interconnects[i];
      if (!churn_eligible(ic, subject)) continue;
      const double u = hazard_u01(seed, HazardKind::kPeeringChurn, i,
                                  static_cast<std::uint64_t>(t));
      const std::uint32_t cbi =
          base.interfaces[ic.client_interface.value].address.value();
      if (active[i] && u < intensity) {
        active[i] = false;
        out.events.push_back(TurnoverEvent{t, true, i, cbi});
      } else if (!active[i] && u < 0.5) {
        active[i] = true;
        out.events.push_back(TurnoverEvent{t, false, i, cbi});
      }
    }
    World step = base;
    std::size_t kept = 0;
    for (std::size_t i = 0; i < step.interconnects.size(); ++i)
      if (active[i]) step.interconnects[kept++] = step.interconnects[i];
    step.interconnects.resize(kept);
    out.steps.push_back(std::move(step));
  }
  return out;
}

RemotePeeringPlan apply_world_hazards(World& world,
                                      const HazardProfile& profile,
                                      std::uint64_t seed) {
  return apply_remote_peering(
      world, profile.intensity(HazardKind::kRemotePeering), seed);
}

}  // namespace cloudmap
