#include "scenario/hazard.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "util/rng.h"

namespace cloudmap {

namespace {

// Clamp to [lo, hi] with NaN taking the lower bound (same contract as the
// traceroute option clamp: a NaN must never reach a chance() draw).
double clamp_or(double value, double lo, double hi) {
  if (!(value >= lo)) return lo;
  if (value > hi) return hi;
  return value;
}

struct KindInfo {
  HazardKind kind;
  const char* name;
  const char* description;
};

constexpr KindInfo kKinds[kHazardKindCount] = {
    {HazardKind::kLoss, "loss",
     "uniform probe loss; scales every router's response probability "
     "(hazard zero: the --response-scale knob folded into the framework)"},
    {HazardKind::kRemotePeering, "remote",
     "world: flip the given fraction of local public-IXP peers to remote "
     "partners, inflating the IXP LAN segment by a 2.5-12 ms one-way tail"},
    {HazardKind::kPeeringChurn, "churn",
     "world: longitudinal peering turnover; emits a sequence of worlds "
     "(churn:<rate>@<steps>) whose snapshot diffs must reconstruct it"},
    {HazardKind::kMplsHiddenHops, "mpls",
     "dataplane: the given fraction of routers sit inside MPLS tunnels and "
     "are spliced out of traceroute records (latency still accumulates)"},
    {HazardKind::kIcmpRateLimit, "rate-limit",
     "dataplane: per-router ICMP reply budget per window of the simulated "
     "campaign clock; the knob is the fraction of replies suppressed"},
    {HazardKind::kRouteChurn, "route-churn",
     "dataplane: forwarding state swaps atomically mid-sweep; the knob is "
     "the fraction of each sweep's work items run post-swap"},
};

const KindInfo& info(HazardKind kind) noexcept {
  return kKinds[static_cast<int>(kind)];
}

// Strict double parse: the whole token must be consumed.
bool parse_double(const std::string& text, double* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size()) return false;
  *out = value;
  return true;
}

std::string format_intensity(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%g", value);
  return buffer;
}

bool fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

// Parse one `kind:intensity[@steps]` term into `spec`.
bool parse_term(const std::string& term, HazardSpec* spec,
                std::string* error) {
  const std::size_t colon = term.find(':');
  if (colon == std::string::npos)
    return fail(error, "hazard term '" + term + "' is not kind:intensity");
  const std::string kind_name = term.substr(0, colon);
  const auto kind = hazard_kind_from_name(kind_name);
  if (!kind) return fail(error, "unknown hazard kind '" + kind_name + "'");
  std::string value = term.substr(colon + 1);
  spec->kind = *kind;
  spec->steps = 0;
  const std::size_t at = value.find('@');
  if (at != std::string::npos) {
    if (*kind != HazardKind::kPeeringChurn)
      return fail(error, "'@steps' only applies to churn, got '" + term + "'");
    double steps = 0.0;
    if (!parse_double(value.substr(at + 1), &steps) || steps < 2.0 ||
        steps > 64.0 || steps != static_cast<double>(static_cast<int>(steps)))
      return fail(error, "churn steps must be an integer in [2, 64]");
    spec->steps = static_cast<int>(steps);
    value = value.substr(0, at);
  } else if (*kind == HazardKind::kPeeringChurn) {
    spec->steps = 4;  // observable default: t0 plus three transitions
  }
  if (!parse_double(value, &spec->intensity) || spec->intensity < 0.0 ||
      spec->intensity > 1.0)
    return fail(error,
                "hazard intensity in '" + term + "' must be in [0, 1]");
  return true;
}

}  // namespace

const char* hazard_kind_name(HazardKind kind) noexcept {
  return info(kind).name;
}

const char* hazard_kind_description(HazardKind kind) noexcept {
  return info(kind).description;
}

std::optional<HazardKind> hazard_kind_from_name(const std::string& name) {
  for (const KindInfo& k : kKinds)
    if (name == k.name) return k.kind;
  return std::nullopt;
}

std::uint64_t hazard_stream_seed(std::uint64_t seed, HazardKind kind,
                                 std::uint64_t entity,
                                 std::uint64_t round) noexcept {
  std::uint64_t state =
      seed + 0xa0761d6478bd642fULL * (static_cast<std::uint64_t>(kind) + 1);
  state ^= splitmix64(state) + 0x9e3779b97f4a7c15ULL * (entity + 1);
  state ^= splitmix64(state) + 0xbf58476d1ce4e5b9ULL * (round + 1);
  return splitmix64(state);
}

double hazard_u01(std::uint64_t seed, HazardKind kind, std::uint64_t entity,
                  std::uint64_t round) noexcept {
  // Same 53-bit mantissa construction as Rng::uniform.
  return static_cast<double>(hazard_stream_seed(seed, kind, entity, round) >>
                             11) *
         0x1.0p-53;
}

bool hazard_chance(std::uint64_t seed, HazardKind kind, std::uint64_t entity,
                   std::uint64_t round, double probability) noexcept {
  if (probability <= 0.0) return false;
  if (probability >= 1.0) return true;
  return hazard_u01(seed, kind, entity, round) < probability;
}

const HazardSpec* HazardProfile::find(HazardKind kind) const noexcept {
  for (const HazardSpec& spec : hazards)
    if (spec.kind == kind) return &spec;
  return nullptr;
}

double HazardProfile::intensity(HazardKind kind) const noexcept {
  const HazardSpec* spec = find(kind);
  return spec == nullptr ? 0.0 : spec->intensity;
}

std::string HazardProfile::spec_string() const {
  std::string out;
  for (const HazardSpec& spec : hazards) {
    if (!out.empty()) out += ',';
    out += hazard_kind_name(spec.kind);
    out += ':';
    out += format_intensity(spec.intensity);
    if (spec.kind == HazardKind::kPeeringChurn) {
      out += '@';
      out += std::to_string(spec.steps);
    }
  }
  return out;
}

const std::vector<std::string>& HazardProfile::preset_names() {
  static const std::vector<std::string> kNames = {
      "baseline",   "loss",        "remote-peering", "mpls",
      "rate-limit", "route-churn", "churn",          "gauntlet",
  };
  return kNames;
}

std::optional<HazardProfile> HazardProfile::preset(const std::string& name) {
  const auto make = [&name](const std::string& spec) {
    HazardProfile profile = *parse(spec);
    profile.name = name;
    return profile;
  };
  if (name == "baseline") return make("");
  if (name == "loss") return make("loss:0.25");
  if (name == "remote-peering") return make("remote:0.6");
  if (name == "mpls") return make("mpls:0.3");
  if (name == "rate-limit") return make("rate-limit:0.5");
  if (name == "route-churn") return make("route-churn:0.5");
  if (name == "churn") return make("churn:0.3@4");
  if (name == "gauntlet")
    return make("loss:0.15,remote:0.4,mpls:0.2,rate-limit:0.35,"
                "route-churn:0.5");
  return std::nullopt;
}

std::optional<HazardProfile> HazardProfile::parse(const std::string& text,
                                                  std::string* error) {
  HazardProfile profile;
  if (text.empty() || text == "baseline") return profile;
  if (text.find(':') == std::string::npos) {
    auto named = preset(text);
    if (!named) {
      fail(error, "unknown hazard preset '" + text +
                      "' (and not a kind:intensity spec)");
      return std::nullopt;
    }
    return named;
  }
  profile.name = text;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::string term =
        text.substr(start, comma == std::string::npos ? std::string::npos
                                                      : comma - start);
    HazardSpec spec;
    if (!parse_term(term, &spec, error)) return std::nullopt;
    if (profile.find(spec.kind) != nullptr) {
      fail(error, std::string("duplicate hazard kind '") +
                      hazard_kind_name(spec.kind) + "'");
      return std::nullopt;
    }
    if (spec.intensity > 0.0) profile.hazards.push_back(spec);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  std::sort(profile.hazards.begin(), profile.hazards.end(),
            [](const HazardSpec& a, const HazardSpec& b) {
              return static_cast<int>(a.kind) < static_cast<int>(b.kind);
            });
  if (profile.hazards.empty()) profile.name = "baseline";
  return profile;
}

DataplaneHazards DataplaneHazards::clamped() const {
  DataplaneHazards out = *this;
  out.loss = clamp_or(out.loss, 0.0, 1.0);
  out.mpls_fraction = clamp_or(out.mpls_fraction, 0.0, 1.0);
  out.rate_limit = clamp_or(out.rate_limit, 0.0, 1.0);
  out.route_churn = clamp_or(out.route_churn, 0.0, 1.0);
  return out;
}

DataplaneHazards dataplane_hazards(const HazardProfile& profile,
                                   std::uint64_t seed) {
  DataplaneHazards out;
  out.seed = seed;
  out.loss = profile.intensity(HazardKind::kLoss);
  out.mpls_fraction = profile.intensity(HazardKind::kMplsHiddenHops);
  out.rate_limit = profile.intensity(HazardKind::kIcmpRateLimit);
  out.route_churn = profile.intensity(HazardKind::kRouteChurn);
  return out.clamped();
}

}  // namespace cloudmap
