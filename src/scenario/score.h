// DegradationScorecard: rerun the full inference pipeline under a hazard
// profile and report how much each hazard degrades the paper's §4–§7
// machinery against planted ground truth — the validation loop the real
// Internet could never provide ("O Peer, Where Art Thou?" §9, our PAPER.md
// §9). Per profile: precision/recall of border inference (interface and
// router level), §6 pinning accuracy, confidence-calibration drift, and two
// hazard-specific recoveries — whether a ≥2 ms IXP local/remote RTT rule
// recovers the planted remote peers, and whether `cloudmap_cli diff` over a
// longitudinal churn snapshot sequence reconstructs the planted turnover.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "scenario/hazard.h"
#include "scenario/world_hazards.h"
#include "topology/generator.h"

namespace cloudmap {

// World + execution knobs shared by every profile of one scorecard run.
struct ScorecardConfig {
  GeneratorConfig world = GeneratorConfig::small();
  std::uint64_t world_seed = 42;   // generator seed (fixtures' small world)
  std::uint64_t hazard_seed = 7;   // master seed for every hazard stream
  int threads = 1;                 // 0 = hardware concurrency
  bool deterministic_metrics = true;
};

// The ≥2 ms local/remote rule over the IXP fabric: a public peer whose
// client-port RTT exceeds the cloud-side port RTT by at least threshold_ms
// is classified remote. Scored against the planted remote set.
struct RemoteRuleScore {
  double threshold_ms = 2.0;
  std::size_t planted = 0;      // interconnects the hazard flipped remote
  std::size_t measured = 0;     // planted peers with both RTTs measurable
  std::size_t recovered = 0;    // measured && classified remote
  std::size_t false_remote = 0; // truly-local peers the rule flags remote
};

// Longitudinal churn reconstruction: of the planted turnover events, how
// many were observable (the CBI was discovered on the side where it
// existed) and how many the snapshot-sequence diff reconstructs.
struct ChurnScore {
  std::size_t events = 0;
  std::size_t observable = 0;
  std::size_t reconstructed = 0;
};

// One scorecard row.
struct HazardScore {
  std::string profile;  // profile name ("baseline", "gauntlet", or spec)
  std::string spec;     // canonical spec string ("" for baseline)
  std::size_t segments = 0;
  double precision = 0.0;
  double recall = 0.0;
  double router_precision = 0.0;
  double router_recall = 0.0;
  double pinning_accuracy = 0.0;
  double regional_accuracy = 0.0;
  double mean_confidence = 0.0;
  // Calibration: mean confidence of true-CBI segments minus mean confidence
  // of false-CBI segments. Positive = confidence still separates signal
  // from noise under the hazard; drift toward zero = calibration lost.
  double calibration_gap = 0.0;
  bool has_remote_rule = false;
  RemoteRuleScore remote_rule;
  bool has_churn = false;
  ChurnScore churn;
};

// Run the pipeline under `profile` and score it. Applies world hazards,
// projects dataplane hazards onto the campaign, and — when the profile
// carries churn — also runs the longitudinal sequence for the churn score.
HazardScore score_profile(const HazardProfile& profile,
                          const ScorecardConfig& config = {});

// The longitudinal churn run behind score_profile's churn block, exposed so
// the CLI and examples/longitudinal_churn.cpp can persist the snapshot
// sequence (world_t0.snap … world_tN.snap) and replay the diffs.
struct ChurnRun {
  std::vector<RunSnapshot> snapshots;  // one per step, pipeline-produced
  std::vector<TurnoverEvent> events;   // the planted turnover
  ChurnScore score;
};
ChurnRun run_churn_sequence(const HazardProfile& profile,
                            const ScorecardConfig& config = {});

// Score a snapshot sequence's diffs against planted turnover events (the
// reconstruction check both the ChurnRun scoring and CI use).
ChurnScore score_turnover_reconstruction(
    const std::vector<RunSnapshot>& snapshots,
    const std::vector<TurnoverEvent>& events);

// Apply `profile` to already-built pipeline options: dataplane hazards onto
// the campaign engines and the canonical spec onto the snapshot provenance
// label. World hazards are NOT applied here (they mutate the World before
// the pipeline is built; see scenario/world_hazards.h).
void apply_dataplane_hazards(PipelineOptions& options,
                             const HazardProfile& profile,
                             std::uint64_t hazard_seed);

// Scorecard JSON (schema tools/hazard_schema.json, validated by
// tools/validate_scorecard.py): a baseline row plus one row per profile
// with drift-vs-baseline deltas.
void write_scorecard_json(std::ostream& out, const HazardScore& baseline,
                          const std::vector<HazardScore>& profiles,
                          const ScorecardConfig& config);

}  // namespace cloudmap
