#include "topology/world.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

namespace cloudmap {

std::vector<RegionId> World::regions_of(CloudProvider provider) const {
  std::vector<RegionId> out;
  for (std::uint32_t i = 0; i < regions.size(); ++i)
    if (regions[i].provider == provider) out.push_back(RegionId{i});
  return out;
}

InterfaceId World::find_interface(Ipv4 address) const {
  const auto it = interface_by_ip.find(address.value());
  return it == interface_by_ip.end() ? InterfaceId{} : it->second;
}

AsId World::owner_of(Ipv4 address) const {
  const AsId* owner = prefix_owner.lookup(address);
  return owner == nullptr ? AsId{} : *owner;
}

std::vector<Prefix> World::probeable_slash24s() const {
  // Deduplicate at /24 granularity: allocations longer than /24 (e.g.
  // interconnect /30s) collapse into their covering /24, the way the real
  // sweep walks whole /24s of the IPv4 space.
  std::unordered_set<std::uint32_t> networks;
  prefix_owner.for_each([&](const Prefix& prefix, AsId) {
    if (prefix.network().is_private() || prefix.network().is_shared()) return;
    if (prefix.length() >= 24) {
      networks.insert(prefix.network().value() & 0xFFFFFF00u);
    } else {
      for (const Prefix& sub : prefix.enumerate_slash24s())
        networks.insert(sub.network().value());
    }
  });
  std::vector<Prefix> out;
  out.reserve(networks.size());
  for (std::uint32_t network : networks)
    out.emplace_back(Ipv4(network), std::uint8_t{24});
  std::sort(out.begin(), out.end());
  return out;
}

InterfaceId World::add_interface(RouterId router_id, Ipv4 address,
                                 LinkId link_id) {
  const InterfaceId id =
      narrow_id<InterfaceId>(interfaces.size(), "interface table");
  interfaces.push_back(Interface{address, router_id, link_id, true});
  if (!address.is_unspecified()) interface_by_ip[address.value()] = id;
  return id;
}

void World::add_extra_uplink(RouterId router_id, LinkId link) {
  Router& router = routers[router_id.value];
  if (router.extra_uplinks.count == 0)
    router.extra_uplinks.first =
        narrow_u32(router_uplink_pool.size(), "uplink arena");
  router_uplink_pool.push_back(link);
  ++router.extra_uplinks.count;
}

void World::seal() {
  // Counting sort of interface ids by owning router: per-router order is
  // global index order, which is exactly the old per-router push_back order.
  for (Router& r : routers) r.interfaces = IdSpan{};
  for (const Interface& iface : interfaces)
    ++routers[iface.router.value].interfaces.count;
  std::uint32_t offset = 0;
  for (Router& r : routers) {
    r.interfaces.first = offset;
    offset += r.interfaces.count;
  }
  router_iface_pool.assign(interfaces.size(), InterfaceId{});
  std::vector<std::uint32_t> cursor(routers.size(), 0);
  for (std::uint32_t i = 0; i < interfaces.size(); ++i) {
    const std::uint32_t r = interfaces[i].router.value;
    router_iface_pool[routers[r].interfaces.first + cursor[r]++] =
        InterfaceId{i};
  }
}

LinkId World::add_link(InterfaceId a, InterfaceId b, LinkKind kind,
                       double latency_ms) {
  const LinkId id = narrow_id<LinkId>(links.size(), "link table");
  links.push_back(Link{a, b, kind, latency_ms});
  interfaces[a.value].link = id;
  interfaces[b.value].link = id;
  return id;
}

LinkId World::connect(RouterId router_a, Ipv4 address_a, RouterId router_b,
                      Ipv4 address_b, LinkKind kind, double latency_ms) {
  const InterfaceId a = add_interface(router_a, address_a, LinkId{});
  const InterfaceId b = add_interface(router_b, address_b, LinkId{});
  return add_link(a, b, kind, latency_ms);
}

std::string World::validate() const {
  std::ostringstream err;
  for (std::uint32_t i = 0; i < interfaces.size(); ++i) {
    const Interface& iface = interfaces[i];
    if (!iface.router.valid() || iface.router.value >= routers.size()) {
      err << "interface " << i << " has invalid router";
      return err.str();
    }
  }
  // Arena coverage: the router→interface spans must partition the pool, the
  // pool must list every interface exactly once, and each listed interface
  // must point back at its router. One linear pass over the arena replaces
  // the old per-interface scan of its router's list.
  if (router_iface_pool.size() != interfaces.size()) {
    err << "router interface arena holds " << router_iface_pool.size()
        << " entries for " << interfaces.size()
        << " interfaces (seal() not run after construction?)";
    return err.str();
  }
  std::vector<bool> listed(interfaces.size(), false);
  for (std::uint32_t r = 0; r < routers.size(); ++r) {
    const IdSpan span = routers[r].interfaces;
    if (static_cast<std::size_t>(span.first) + span.count >
        router_iface_pool.size()) {
      err << "router " << r << " interface span exceeds the arena";
      return err.str();
    }
    for (std::uint32_t k = 0; k < span.count; ++k) {
      const InterfaceId owned = router_iface_pool[span.first + k];
      if (!owned.valid() || owned.value >= interfaces.size() ||
          interfaces[owned.value].router.value != r) {
        err << "router " << r << " arena span lists a foreign interface";
        return err.str();
      }
      if (listed[owned.value]) {
        err << "interface " << owned.value
            << " listed twice in the router arena";
        return err.str();
      }
      listed[owned.value] = true;
    }
  }
  for (std::uint32_t i = 0; i < interfaces.size(); ++i) {
    if (!listed[i]) {
      err << "interface " << i << " missing from its router's list";
      return err.str();
    }
  }
  for (std::uint32_t i = 0; i < links.size(); ++i) {
    const Link& l = links[i];
    if (!l.side_a.valid() || !l.side_b.valid() ||
        l.side_a.value >= interfaces.size() ||
        l.side_b.value >= interfaces.size()) {
      err << "link " << i << " has invalid endpoints";
      return err.str();
    }
    if (interfaces[l.side_a.value].link.value != i ||
        interfaces[l.side_b.value].link.value != i) {
      err << "link " << i << " endpoints do not point back at it";
      return err.str();
    }
    if (l.latency_ms < 0.0) {
      err << "link " << i << " has negative latency";
      return err.str();
    }
  }
  for (std::uint32_t i = 0; i < routers.size(); ++i) {
    const Router& r = routers[i];
    if (!r.owner.valid() || r.owner.value >= ases.size()) {
      err << "router " << i << " has invalid owner";
      return err.str();
    }
    if (!r.metro.valid() || r.metro.value >= metros.size()) {
      err << "router " << i << " has invalid metro";
      return err.str();
    }
    if (r.reply_policy == ReplyPolicy::kFixedInterface &&
        !r.fixed_reply.valid()) {
      err << "router " << i << " fixed-reply policy without interface";
      return err.str();
    }
  }
  for (const GroundTruthInterconnect& ic : interconnects) {
    if (!ic.client.valid() || ic.client.value >= ases.size()) {
      return "interconnect with invalid client";
    }
    if (!ic.link.valid() || ic.link.value >= links.size()) {
      return "interconnect with invalid link";
    }
    if (!ic.cloud_interface.valid() || !ic.client_interface.valid()) {
      return "interconnect with invalid interfaces";
    }
    const AsId client_owner =
        router_owner(interfaces[ic.client_interface.value].router);
    if (client_owner != ic.client) {
      return "interconnect client interface not owned by client AS";
    }
  }
  return "";
}

}  // namespace cloudmap
