#include "topology/world.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

namespace cloudmap {

std::vector<RegionId> World::regions_of(CloudProvider provider) const {
  std::vector<RegionId> out;
  for (std::uint32_t i = 0; i < regions.size(); ++i)
    if (regions[i].provider == provider) out.push_back(RegionId{i});
  return out;
}

InterfaceId World::find_interface(Ipv4 address) const {
  const auto it = interface_by_ip.find(address.value());
  return it == interface_by_ip.end() ? InterfaceId{} : it->second;
}

AsId World::owner_of(Ipv4 address) const {
  const AsId* owner = prefix_owner.lookup(address);
  return owner == nullptr ? AsId{} : *owner;
}

std::vector<Prefix> World::probeable_slash24s() const {
  // Deduplicate at /24 granularity: allocations longer than /24 (e.g.
  // interconnect /30s) collapse into their covering /24, the way the real
  // sweep walks whole /24s of the IPv4 space.
  std::unordered_set<std::uint32_t> networks;
  prefix_owner.for_each([&](const Prefix& prefix, AsId) {
    if (prefix.network().is_private() || prefix.network().is_shared()) return;
    if (prefix.length() >= 24) {
      networks.insert(prefix.network().value() & 0xFFFFFF00u);
    } else {
      for (const Prefix& sub : prefix.enumerate_slash24s())
        networks.insert(sub.network().value());
    }
  });
  std::vector<Prefix> out;
  out.reserve(networks.size());
  for (std::uint32_t network : networks)
    out.emplace_back(Ipv4(network), std::uint8_t{24});
  std::sort(out.begin(), out.end());
  return out;
}

InterfaceId World::add_interface(RouterId router_id, Ipv4 address,
                                 LinkId link_id) {
  const InterfaceId id{static_cast<std::uint32_t>(interfaces.size())};
  interfaces.push_back(Interface{address, router_id, link_id, true});
  routers[router_id.value].interfaces.push_back(id);
  if (!address.is_unspecified()) interface_by_ip[address.value()] = id;
  return id;
}

LinkId World::add_link(InterfaceId a, InterfaceId b, LinkKind kind,
                       double latency_ms) {
  const LinkId id{static_cast<std::uint32_t>(links.size())};
  links.push_back(Link{a, b, kind, latency_ms});
  interfaces[a.value].link = id;
  interfaces[b.value].link = id;
  return id;
}

LinkId World::connect(RouterId router_a, Ipv4 address_a, RouterId router_b,
                      Ipv4 address_b, LinkKind kind, double latency_ms) {
  const InterfaceId a = add_interface(router_a, address_a, LinkId{});
  const InterfaceId b = add_interface(router_b, address_b, LinkId{});
  return add_link(a, b, kind, latency_ms);
}

std::string World::validate() const {
  std::ostringstream err;
  for (std::uint32_t i = 0; i < interfaces.size(); ++i) {
    const Interface& iface = interfaces[i];
    if (!iface.router.valid() || iface.router.value >= routers.size()) {
      err << "interface " << i << " has invalid router";
      return err.str();
    }
    bool listed = false;
    for (InterfaceId owned : routers[iface.router.value].interfaces)
      if (owned.value == i) listed = true;
    if (!listed) {
      err << "interface " << i << " missing from its router's list";
      return err.str();
    }
  }
  for (std::uint32_t i = 0; i < links.size(); ++i) {
    const Link& l = links[i];
    if (!l.side_a.valid() || !l.side_b.valid() ||
        l.side_a.value >= interfaces.size() ||
        l.side_b.value >= interfaces.size()) {
      err << "link " << i << " has invalid endpoints";
      return err.str();
    }
    if (interfaces[l.side_a.value].link.value != i ||
        interfaces[l.side_b.value].link.value != i) {
      err << "link " << i << " endpoints do not point back at it";
      return err.str();
    }
    if (l.latency_ms < 0.0) {
      err << "link " << i << " has negative latency";
      return err.str();
    }
  }
  for (std::uint32_t i = 0; i < routers.size(); ++i) {
    const Router& r = routers[i];
    if (!r.owner.valid() || r.owner.value >= ases.size()) {
      err << "router " << i << " has invalid owner";
      return err.str();
    }
    if (!r.metro.valid() || r.metro.value >= metros.size()) {
      err << "router " << i << " has invalid metro";
      return err.str();
    }
    if (r.reply_policy == ReplyPolicy::kFixedInterface &&
        !r.fixed_reply.valid()) {
      err << "router " << i << " fixed-reply policy without interface";
      return err.str();
    }
  }
  for (const GroundTruthInterconnect& ic : interconnects) {
    if (!ic.client.valid() || ic.client.value >= ases.size()) {
      return "interconnect with invalid client";
    }
    if (!ic.link.valid() || ic.link.value >= links.size()) {
      return "interconnect with invalid link";
    }
    if (!ic.cloud_interface.valid() || !ic.client_interface.valid()) {
      return "interconnect with invalid interfaces";
    }
    const AsId client_owner =
        router_owner(interfaces[ic.client_interface.value].router);
    if (client_owner != ic.client) {
      return "interconnect client interface not owned by client AS";
    }
  }
  return "";
}

}  // namespace cloudmap
