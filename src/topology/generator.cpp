#include "topology/generator.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "net/geo.h"
#include "topology/address_plan.h"

namespace cloudmap {
namespace {

// ----------------------------------------------------------------------
// Static metro table: real metros with coordinates and airport codes so the
// RTT geometry and the DNS location hints look like the Internet's.
// ----------------------------------------------------------------------
struct MetroSeed {
  const char* name;
  const char* airport;
  const char* country;
  double lat;
  double lon;
};

// The first 15 entries are the metros of Amazon's 15 usable 2018 regions, in
// region order; later entries serve as edge/native metros and client homes.
constexpr MetroSeed kMetroSeeds[] = {
    {"Ashburn", "iad", "US", 39.04, -77.49},
    {"Columbus", "cmh", "US", 39.96, -82.99},
    {"San Jose", "sjc", "US", 37.34, -121.89},
    {"Portland", "pdx", "US", 45.52, -122.68},
    {"Montreal", "yul", "CA", 45.50, -73.57},
    {"Sao Paulo", "gru", "BR", -23.55, -46.63},
    {"Dublin", "dub", "IE", 53.35, -6.26},
    {"London", "lhr", "GB", 51.51, -0.13},
    {"Paris", "cdg", "FR", 48.86, 2.35},
    {"Frankfurt", "fra", "DE", 50.11, 8.68},
    {"Singapore", "sin", "SG", 1.35, 103.82},
    {"Sydney", "syd", "AU", -33.87, 151.21},
    {"Tokyo", "nrt", "JP", 35.68, 139.69},
    {"Seoul", "icn", "KR", 37.57, 126.98},
    {"Mumbai", "bom", "IN", 19.08, 72.88},
    // --- edge / client metros ---
    {"Los Angeles", "lax", "US", 34.05, -118.24},
    {"New York", "jfk", "US", 40.71, -74.01},
    {"Chicago", "ord", "US", 41.88, -87.63},
    {"Dallas", "dfw", "US", 32.78, -96.80},
    {"Atlanta", "atl", "US", 33.75, -84.39},
    {"Miami", "mia", "US", 25.76, -80.19},
    {"Seattle", "sea", "US", 47.61, -122.33},
    {"Denver", "den", "US", 39.74, -104.99},
    {"Salt Lake City", "slc", "US", 40.76, -111.89},
    {"Phoenix", "phx", "US", 33.45, -112.07},
    {"Boston", "bos", "US", 42.36, -71.06},
    {"Houston", "iah", "US", 29.76, -95.37},
    {"Toronto", "yyz", "CA", 43.65, -79.38},
    {"Mexico City", "mex", "MX", 19.43, -99.13},
    {"Amsterdam", "ams", "NL", 52.37, 4.90},
    {"Madrid", "mad", "ES", 40.42, -3.70},
    {"Milan", "mxp", "IT", 45.46, 9.19},
    {"Stockholm", "arn", "SE", 59.33, 18.07},
    {"Warsaw", "waw", "PL", 52.23, 21.01},
    {"Zurich", "zrh", "CH", 47.38, 8.54},
    {"Vienna", "vie", "AT", 48.21, 16.37},
    {"Prague", "prg", "CZ", 50.08, 14.44},
    {"Moscow", "dme", "RU", 55.76, 37.62},
    {"Hong Kong", "hkg", "HK", 22.32, 114.17},
    {"Osaka", "kix", "JP", 34.69, 135.50},
    {"Taipei", "tpe", "TW", 25.03, 121.57},
    {"Jakarta", "cgk", "ID", -6.21, 106.85},
    {"Auckland", "akl", "NZ", -36.85, 174.76},
    {"Johannesburg", "jnb", "ZA", -26.20, 28.05},
    {"Dubai", "dxb", "AE", 25.20, 55.27},
    {"Tel Aviv", "tlv", "IL", 32.09, 34.78},
    {"Buenos Aires", "eze", "AR", -34.60, -58.38},
    {"Santiago", "scl", "CL", -33.45, -70.67},
    {"Bogota", "bog", "CO", 4.71, -74.07},
};
constexpr int kMetroSeedCount =
    static_cast<int>(sizeof(kMetroSeeds) / sizeof(kMetroSeeds[0]));

const char* kAsTypePrefix(AsType type) {
  switch (type) {
    case AsType::kTier1: return "t1";
    case AsType::kTier2: return "t2";
    case AsType::kAccess: return "acc";
    case AsType::kEnterprise: return "ent";
    case AsType::kContent: return "cnt";
    case AsType::kCdn: return "cdn";
    case AsType::kCloud: return "cloud";
  }
  return "as";
}

// ----------------------------------------------------------------------
// Builder: accumulates the world, then finalizes the indices.
// ----------------------------------------------------------------------
class Builder {
 public:
  Builder(const GeneratorConfig& config)
      : cfg_(config), rng_(config.seed), plan_(AddressPlan::standard()) {}

  World build() {
    make_metros();
    make_facilities();
    make_cloud_ases();
    make_client_ases();
    make_relationships();
    allocate_addresses();
    make_cloud_infrastructure();
    make_client_routers();
    make_inter_as_links();
    make_cloud_peerings();
    // Pack the router→interface arena before anything resolves spans
    // (finalize_hosting reads router interface lists for fixed replies).
    world_.seal();
    finalize_hosting();
    return std::move(world_);
  }

 private:
  // ---------------- metros ----------------
  void make_metros() {
    const int seeded = std::min(cfg_.metro_count, kMetroSeedCount);
    for (int i = 0; i < seeded; ++i) {
      const MetroSeed& seed = kMetroSeeds[i];
      world_.metros.push_back(Metro{seed.name, seed.airport, seed.country,
                                    GeoPoint{seed.lat, seed.lon}});
    }
    // Past the curated table, synthesize metros deterministically so scale
    // presets (WorldSpec) are not capped at kMetroSeedCount. Codes start
    // with 'x' (no real 3-letter code in the table does) and encode the
    // index, so names stay unique at any count. Configs that fit the table
    // draw nothing here and are byte-identical to the pre-synthetic worlds.
    for (int i = seeded; i < cfg_.metro_count; ++i) {
      const int n = i - kMetroSeedCount;
      std::string code{'x', static_cast<char>('a' + n / 26 % 26),
                       static_cast<char>('a' + n % 26)};
      if (n >= 26 * 26) code += std::to_string(n / (26 * 26));
      const double lat = rng_.uniform(-55.0, 68.0);
      const double lon = rng_.uniform(-180.0, 180.0);
      world_.metros.push_back(Metro{"metro-" + std::to_string(i + 1), code,
                                    "zz", GeoPoint{lat, lon}});
    }
  }

  MetroId random_metro() {
    return narrow_id<MetroId>(rng_.bounded(world_.metros.size()),
                              "metro index");
  }

  // ---------------- colos & IXPs ----------------
  void make_facilities() {
    // One to three colo facilities per metro; some with an IXP; native-cloud
    // and cloud-exchange flags are assigned when the clouds are placed.
    for (std::uint32_t m = 0; m < world_.metros.size(); ++m) {
      const int facility_count = static_cast<int>(rng_.range(1, 3));
      const bool metro_has_ixp = rng_.chance(cfg_.ixp_metro_probability);
      for (int f = 0; f < facility_count; ++f) {
        ColoFacility colo;
        colo.name = world_.metros[m].name + "-colo" + std::to_string(f + 1);
        colo.metro = MetroId{m};
        if (metro_has_ixp && f == 0) {
          Ixp ixp;
          ixp.name = std::string("ix-") + world_.metros[m].airport_code;
          ixp.peering_prefix = plan_.ixp_lans.allocate(
              static_cast<std::uint8_t>(cfg_.ixp_lan_prefix));
          ixp.metros.push_back(MetroId{m});
          colo.ixp = narrow_id<IxpId>(world_.ixps.size(), "ixp table");
          colo_of_ixp_.push_back(
              narrow_id<ColoId>(world_.colos.size(), "colo table"));
          world_.ixps.push_back(std::move(ixp));
        }
        world_.colos.push_back(std::move(colo));
      }
    }
    // A couple of multi-metro IXPs (excluded from anchoring by the paper).
    for (int i = 0; i < cfg_.multi_metro_ixps && world_.ixps.size() > 2; ++i) {
      const std::size_t victim = rng_.bounded(world_.ixps.size());
      MetroId extra = random_metro();
      if (extra != world_.ixps[victim].metros.front())
        world_.ixps[victim].metros.push_back(extra);
    }
    // Bucket colos by metro once; the per-call linear scan this replaces was
    // an O(metros × colos) pass at cloud-placement time.
    colos_by_metro_.resize(world_.metros.size());
    for (std::uint32_t c = 0; c < world_.colos.size(); ++c)
      colos_by_metro_[world_.colos[c].metro.value].push_back(ColoId{c});
  }

  const std::vector<ColoId>& colos_in_metro(MetroId metro) const {
    return colos_by_metro_[metro.value];
  }

  // ---------------- ASes ----------------
  AsId new_as(Asn asn, OrgId org, AsType type, std::string name) {
    const AsId id = narrow_id<AsId>(world_.ases.size(), "as table");
    AutonomousSystem as;
    as.asn = asn;
    as.org = org;
    as.type = type;
    as.name = std::move(name);
    world_.ases.push_back(std::move(as));
    world_.as_by_asn[asn.value] = id;
    return id;
  }

  void make_cloud_ases() {
    // Amazon's multiple ASNs under one organization (the paper observed 8;
    // three is enough to exercise the ORG-level border logic).
    const OrgId amazon_org{1};
    const auto amazon = new_as(Asn{16509}, amazon_org, AsType::kCloud, "amazon");
    world_.ases[amazon.value].cloud = CloudProvider::kAmazon;
    const auto amazon2 = new_as(Asn{7224}, amazon_org, AsType::kCloud, "amazon-dx");
    world_.ases[amazon2.value].cloud = CloudProvider::kAmazon;
    const auto amazon3 = new_as(Asn{14618}, amazon_org, AsType::kCloud, "amazon-ec2");
    world_.ases[amazon3.value].cloud = CloudProvider::kAmazon;
    world_.cloud_ases[static_cast<int>(CloudProvider::kAmazon)] = {
        amazon, amazon2, amazon3};

    const struct {
      CloudProvider provider;
      std::uint32_t asn;
      std::uint32_t org;
      const char* name;
    } others[] = {
        {CloudProvider::kMicrosoft, 8075, 2, "microsoft"},
        {CloudProvider::kGoogle, 15169, 3, "google"},
        {CloudProvider::kIbm, 36351, 4, "ibm-cloud"},
        {CloudProvider::kOracle, 31898, 5, "oracle-cloud"},
    };
    for (const auto& other : others) {
      const AsId id =
          new_as(Asn{other.asn}, OrgId{other.org}, AsType::kCloud, other.name);
      world_.ases[id.value].cloud = other.provider;
      world_.cloud_ases[static_cast<int>(other.provider)] = {id};
    }
  }

  void make_client_ases() {
    std::uint32_t next_asn = 100;
    std::uint32_t next_org = 100;
    auto spawn = [&](AsType type, int count, int footprint_lo,
                     int footprint_hi) {
      for (int i = 0; i < count; ++i) {
        const std::string name = std::string(kAsTypePrefix(type)) + "-" +
                                 std::to_string(i + 1);
        const AsId id = new_as(Asn{next_asn++}, OrgId{next_org++}, type, name);
        AutonomousSystem& as = world_.ases[id.value];
        const int footprint = std::min(
            static_cast<int>(world_.metros.size()),
            static_cast<int>(rng_.range(footprint_lo, footprint_hi)));
        std::unordered_set<std::uint32_t> seen;
        while (static_cast<int>(as.footprint.size()) < footprint) {
          const MetroId metro = random_metro();
          if (seen.insert(metro.value).second) as.footprint.push_back(metro);
        }
      }
    };
    spawn(AsType::kTier1, cfg_.tier1_count, 12,
          std::max(13, static_cast<int>(world_.metros.size() * 2 / 3)));
    spawn(AsType::kTier2, cfg_.tier2_count, 4, 12);
    spawn(AsType::kAccess, cfg_.access_count, 1, 4);
    spawn(AsType::kEnterprise, cfg_.enterprise_count, 1, 2);
    spawn(AsType::kContent, cfg_.content_count, 1, 4);
    spawn(AsType::kCdn, cfg_.cdn_count, 5, 12);
  }

  void link_provider(AsId provider, AsId customer) {
    world_.ases[provider.value].customers.push_back(customer);
    world_.ases[customer.value].providers.push_back(provider);
  }

  void link_peers(AsId a, AsId b) {
    world_.ases[a.value].peers.push_back(b);
    world_.ases[b.value].peers.push_back(a);
  }

  void make_relationships() {
    // Bucket ASes by type in one pass (was one linear table scan per type,
    // i.e. O(types × ases) at 60k-AS scale).
    std::vector<AsId> by_type[kAsTypeCount];
    for (std::uint32_t i = 0; i < world_.ases.size(); ++i)
      by_type[static_cast<int>(world_.ases[i].type)].push_back(AsId{i});
    const auto& tier1 = by_type[static_cast<int>(AsType::kTier1)];
    const auto& tier2 = by_type[static_cast<int>(AsType::kTier2)];
    // Tier-1 full mesh.
    for (std::size_t i = 0; i < tier1.size(); ++i)
      for (std::size_t j = i + 1; j < tier1.size(); ++j)
        link_peers(tier1[i], tier1[j]);
    // Tier-2: one to three tier-1 providers, occasional tier-2 peerings.
    for (AsId t2 : tier2) {
      const int providers = std::min<int>(static_cast<int>(tier1.size()),
                                          static_cast<int>(rng_.range(1, 3)));
      std::unordered_set<std::uint32_t> chosen;
      while (static_cast<int>(chosen.size()) < providers) {
        const AsId p = tier1[rng_.bounded(tier1.size())];
        if (chosen.insert(p.value).second) link_provider(p, t2);
      }
      if (rng_.chance(0.3)) {
        const AsId peer = tier2[rng_.bounded(tier2.size())];
        if (peer != t2) link_peers(t2, peer);
      }
    }
    // Edge ASes: one or two providers from tier-2 (sometimes tier-1).
    for (AsType type : {AsType::kAccess, AsType::kEnterprise,
                        AsType::kContent, AsType::kCdn}) {
      for (AsId as : by_type[static_cast<int>(type)]) {
        const int providers =
            std::min<int>(static_cast<int>(tier1.size() + tier2.size()),
                          rng_.chance(0.35) ? 2 : 1);
        std::unordered_set<std::uint32_t> chosen;
        int attempts = 0;
        while (static_cast<int>(chosen.size()) < providers &&
               ++attempts < 1000) {
          const bool from_tier1 = rng_.chance(0.15) || tier2.empty();
          const auto& pool = from_tier1 ? tier1 : tier2;
          if (pool.empty()) break;
          const AsId p = pool[rng_.bounded(pool.size())];
          if (p != as && chosen.insert(p.value).second) link_provider(p, as);
        }
      }
    }
    // Clouds buy no transit in this world: every tier-1 cross-connects with
    // them (created in make_cloud_peerings), which yields global reach.
  }

  // ---------------- addressing ----------------
  void allocate_addresses() {
    for (std::uint32_t i = 0; i < world_.ases.size(); ++i) {
      AutonomousSystem& as = world_.ases[i];
      if (as.type == AsType::kCloud) continue;
      // Block count and size scale with the AS's role.
      int blocks = 1;
      std::uint8_t length = 24;
      switch (as.type) {
        case AsType::kTier1:
          blocks = static_cast<int>(rng_.range(3, 6));
          length = 16;
          break;
        case AsType::kTier2:
          blocks = static_cast<int>(rng_.range(2, 4));
          length = 18;
          break;
        case AsType::kAccess:
          blocks = static_cast<int>(rng_.range(1, 3));
          length = 19;
          break;
        case AsType::kCdn:
          blocks = 2;
          length = 21;
          break;
        case AsType::kContent:
          blocks = 1;
          length = 22;
          break;
        case AsType::kEnterprise:
          blocks = 1;
          length = static_cast<std::uint8_t>(rng_.range(23, 24));
          break;
        case AsType::kCloud:
          break;
      }
      // Scale presets shift client blocks toward longer prefixes so total
      // announced space tracks the target-budget knob instead of growing
      // linearly in AS count (WorldSpec / GeneratorConfig::from_spec).
      length = static_cast<std::uint8_t>(
          std::min(24, length + cfg_.client_prefix_shift));
      for (int b = 0; b < blocks; ++b)
        as.announced_prefixes.push_back(plan_.client_announced.allocate(length));
      if (rng_.chance(cfg_.client_whois_prefix))
        as.whois_only_prefixes.push_back(plan_.client_whois.allocate(24));
      for (const Prefix& p : as.announced_prefixes)
        world_.prefix_owner.insert(p, AsId{i});
      for (const Prefix& p : as.whois_only_prefixes)
        world_.prefix_owner.insert(p, AsId{i});
    }
    // Cloud announced blocks: a few per cloud, registered to the primary AS.
    for (int p = 1; p < static_cast<int>(kCloudProviderCount); ++p) {
      const CloudProvider provider = static_cast<CloudProvider>(p);
      const AsId primary = world_.cloud_primary(provider);
      AutonomousSystem& as = world_.ases[primary.value];
      const int blocks = provider == CloudProvider::kAmazon ? 6 : 3;
      for (int b = 0; b < blocks; ++b) {
        const Prefix block = plan_.cloud_announced[p].allocate(17);
        as.announced_prefixes.push_back(block);
        world_.prefix_owner.insert(block, primary);
      }
    }
    // IXP LANs are registered (WHOIS) to a synthetic IXP-operator AS so hops
    // on them resolve to a non-cloud org even without BGP. They are modelled
    // as owned by a dedicated "ixp-op" AS per IXP.
    for (std::uint32_t x = 0; x < world_.ixps.size(); ++x) {
      const std::uint32_t op_number =
          narrow_u32(64000ull + x, "ixp-operator asn");
      const AsId op = new_as(Asn{op_number}, OrgId{op_number}, AsType::kContent,
                             "ixp-op-" + std::to_string(x));
      world_.ases[op.value].footprint.push_back(world_.ixps[x].metros.front());
      ixp_operator_.insert(op.value);
      world_.prefix_owner.insert(world_.ixps[x].peering_prefix, op);
    }
  }

  // WHOIS-only /30 from a cloud's infrastructure pool.
  Prefix cloud_p2p(CloudProvider provider) {
    const Prefix p = plan_.cloud_infra.allocate(30);
    world_.prefix_owner.insert(p, world_.cloud_primary(provider));
    return p;
  }

  // ---------------- routers ----------------
  RouterId new_router(AsId owner, MetroId metro, ColoId colo = ColoId{}) {
    const RouterId id = narrow_id<RouterId>(world_.routers.size(),
                                            "router table");
    Router router;
    router.owner = owner;
    router.metro = metro;
    router.colo = colo;
    // Fold both words of the 64-bit draw into the 32-bit IPID base; a bare
    // truncation would throw away half the entropy the stream paid for.
    const std::uint64_t ipid_draw = rng_.next();
    router.ipid_base =
        static_cast<std::uint32_t>(ipid_draw ^ (ipid_draw >> 32));
    router.ipid_velocity = rng_.uniform(20.0, 900.0);
    if (rng_.chance(cfg_.router_silent)) {
      router.reply_policy = ReplyPolicy::kSilent;
    }
    router.response_probability = rng_.uniform(0.92, 1.0);
    world_.routers.push_back(std::move(router));
    world_.ases[owner.value].routers.push_back(id);
    return id;
  }

  double metro_latency(MetroId a, MetroId b) const {
    if (a == b) return 0.12;  // same metro: sub-quarter-millisecond
    return std::max(0.05, propagation_delay_ms(world_.metros[a.value].location,
                                               world_.metros[b.value].location));
  }

  LinkId connect_routers(RouterId a, RouterId b, LinkKind kind, Prefix p2p) {
    const double latency =
        metro_latency(world_.routers[a.value].metro,
                      world_.routers[b.value].metro);
    return world_.connect(a, p2p.network().next(1), b, p2p.network().next(2),
                          kind, latency);
  }

  // ---------------- cloud infrastructure ----------------
  void make_cloud_infrastructure() {
    for (int p = 1; p < static_cast<int>(kCloudProviderCount); ++p)
      make_one_cloud(static_cast<CloudProvider>(p));
  }

  int configured_regions(CloudProvider provider) const {
    switch (provider) {
      case CloudProvider::kAmazon: return cfg_.amazon_regions;
      case CloudProvider::kMicrosoft: return cfg_.microsoft_regions;
      case CloudProvider::kGoogle: return cfg_.google_regions;
      case CloudProvider::kIbm: return cfg_.ibm_regions;
      case CloudProvider::kOracle: return cfg_.oracle_regions;
      case CloudProvider::kNone: return 0;
    }
    return 0;
  }

  void make_one_cloud(CloudProvider provider) {
    const int want_regions = std::min(configured_regions(provider),
                                      static_cast<int>(world_.metros.size()));
    const AsId primary = world_.cloud_primary(provider);
    // Region cores: regions sit at the first `want_regions` metros for
    // Amazon (the table is ordered that way); other clouds take a shuffled
    // subset so regions overlap but are not identical.
    std::vector<std::uint32_t> metro_order(world_.metros.size());
    for (std::uint32_t i = 0; i < metro_order.size(); ++i) metro_order[i] = i;
    if (provider != CloudProvider::kAmazon) rng_.shuffle(metro_order);

    std::vector<RouterId> cores;
    for (int r = 0; r < want_regions; ++r) {
      const MetroId metro{metro_order[r]};
      const RouterId core = new_router(primary, metro);
      world_.routers[core.value].publicly_reachable = false;
      world_.routers[core.value].reply_policy = ReplyPolicy::kIncomingInterface;
      world_.routers[core.value].response_probability = 1.0;
      cores.push_back(core);
      Region region;
      region.name = std::string(to_string(provider)) + "-region-" +
                    std::to_string(r + 1);
      region.provider = provider;
      region.metro = metro;
      region.core_router = core;
      // Host-facing gateway interface on RFC1918 space: the address VMs see
      // as their first traceroute hop.
      const Prefix host_net = plan_.cloud_private.allocate(30);
      region.vm_gateway =
          world_.add_interface(core, host_net.network().next(1), LinkId{});
      world_.regions.push_back(std::move(region));
      world_.ases[primary.value].footprint.push_back(metro);
    }
    // Private backbone: full mesh over region cores, RFC1918 addressing
    // (these are the ASN-0 hops of §3).
    for (std::size_t i = 0; i < cores.size(); ++i) {
      for (std::size_t j = i + 1; j < cores.size(); ++j) {
        const Prefix p2p = plan_.cloud_private.allocate(30);
        connect_routers(cores[i], cores[j], LinkKind::kIntraAs, p2p);
      }
    }
    cloud_cores_[static_cast<int>(provider)] = cores;

    // Native colos: one (occasionally more) per region metro plus, for
    // Amazon, extra edge metros. Border routers per colo, attached to the
    // nearest region core, partially chained for Fig. 3 hybrid behaviour.
    std::vector<MetroId> native_metros;
    for (int r = 0; r < want_regions; ++r)
      native_metros.push_back(MetroId{metro_order[r]});
    if (provider == CloudProvider::kAmazon) {
      for (int extra = 0;
           extra < cfg_.amazon_edge_metros &&
           want_regions + extra < static_cast<int>(world_.metros.size());
           ++extra)
        native_metros.push_back(MetroId{metro_order[want_regions + extra]});
    }
    for (MetroId metro : native_metros) {
      const auto& colo_choices = colos_in_metro(metro);
      if (colo_choices.empty()) continue;
      const ColoId colo = colo_choices[rng_.bounded(colo_choices.size())];
      world_.colos[colo.value].set_native(provider);
      if (rng_.chance(cfg_.cloud_exchange_probability))
        world_.colos[colo.value].has_cloud_exchange = true;

      const RouterId core = nearest_core(provider, metro);
      const int borders = static_cast<int>(
          rng_.range(1, cfg_.max_border_routers_per_colo));
      RouterId aggregation{};
      for (int b = 0; b < borders; ++b) {
        const RouterId border = new_router(primary, metro, colo);
        Router& router = world_.routers[border.value];
        router.publicly_reachable = false;
        router.response_probability = 1.0;
        router.reply_policy = ReplyPolicy::kIncomingInterface;
        // Upstream addressing: WHOIS-only infra space most of the time,
        // announced cloud space otherwise (Table 1's ABI BGP/WHOIS split).
        const bool infra = rng_.chance(cfg_.abi_infra_address);
        const Prefix p2p =
            infra ? cloud_p2p(provider)
                  : announced_cloud_p2p(provider);
        const bool chain = aggregation.valid() &&
                           rng_.chance(cfg_.hybrid_aggregation);
        const LinkId uplink = connect_routers(chain ? aggregation : core,
                                              border, LinkKind::kIntraAs, p2p);
        world_.routers[border.value].uplink = uplink;
        // Extra backbone attachments toward other nearby cores: the probe's
        // source region then determines which upstream interface (ABI) the
        // border answers with.
        const int extras =
            static_cast<int>(rng_.range(0, cfg_.max_extra_uplinks));
        std::vector<RouterId> other_cores = cores;
        std::sort(other_cores.begin(), other_cores.end(),
                  [&](RouterId x, RouterId y) {
                    const GeoPoint& here = world_.metros[metro.value].location;
                    return haversine_km(
                               here, world_.router_location(x)) <
                           haversine_km(here, world_.router_location(y));
                  });
        int added = 0;
        for (RouterId other : other_cores) {
          if (added >= extras) break;
          if (other == (chain ? aggregation : core) ||
              (!chain && other == core))
            continue;
          const Prefix extra_p2p = rng_.chance(cfg_.abi_infra_address)
                                       ? cloud_p2p(provider)
                                       : announced_cloud_p2p(provider);
          world_.add_extra_uplink(
              border,
              connect_routers(other, border, LinkKind::kIntraAs, extra_p2p));
          ++added;
        }
        if (!aggregation.valid()) aggregation = border;
        cloud_borders_[static_cast<int>(provider)].push_back(border);
      }
    }
  }

  // A /30 carved from the top of the cloud's *announced* space, so the
  // interface annotates via BGP (Table 1's ~38% BGP-annotated ABIs).
  Prefix announced_cloud_p2p(CloudProvider provider) {
    const AsId primary = world_.cloud_primary(provider);
    return client_p2p(primary);
  }

  RouterId nearest_core(CloudProvider provider, MetroId metro) const {
    const auto& cores = cloud_cores_[static_cast<int>(provider)];
    RouterId best = cores.front();
    double best_km = 1e18;
    for (RouterId core : cores) {
      const double km = haversine_km(
          world_.metros[metro.value].location,
          world_.metros[world_.routers[core.value].metro.value].location);
      if (km < best_km) {
        best_km = km;
        best = core;
      }
    }
    return best;
  }

  // Cloud border routers of a provider in a given colo (creating one if the
  // colo has none yet, which can happen for exchange colos where the cloud
  // is reachable but not native — we then use the nearest native border).
  // Memoized: the border tables are fixed before the first call, and the
  // un-memoized scan made peering construction O(clients × borders).
  RouterId border_at(CloudProvider provider, ColoId colo) {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(provider) << 32) | colo.value;
    const auto hit = border_at_memo_.find(key);
    if (hit != border_at_memo_.end()) return hit->second;
    const auto& borders = cloud_borders_[static_cast<int>(provider)];
    RouterId best{};
    double best_km = 1e18;
    const MetroId metro = world_.colos[colo.value].metro;
    for (RouterId border : borders) {
      const Router& router = world_.routers[border.value];
      if (router.colo == colo) {
        best = border;
        break;
      }
      const double km = haversine_km(
          world_.metros[metro.value].location,
          world_.metros[router.metro.value].location);
      if (km < best_km) {
        best_km = km;
        best = border;
      }
    }
    border_at_memo_.emplace(key, best);
    return best;
  }

  // ---------------- client routers ----------------
  void make_client_routers() {
    for (std::uint32_t i = 0; i < world_.ases.size(); ++i) {
      AutonomousSystem& as = world_.ases[i];
      if (as.type == AsType::kCloud) continue;
      if (as.footprint.empty()) as.footprint.push_back(random_metro());
      for (MetroId metro : as.footprint) {
        const RouterId router = new_router(AsId{i}, metro);
        Router& r = world_.routers[router.value];
        r.publicly_reachable = rng_.chance(cfg_.client_public_reachability);
        maybe_fixed_reply(router, as.type);
      }
      // Intra-AS backbone over the AS's routers, addressed out of the AS's
      // own space. Full mesh by default (paper-scale footprints are small);
      // scale presets cap the mesh degree — a tier-1 spanning hundreds of
      // synthetic metros would otherwise mint O(footprint²) links and
      // exhaust its /30 space.
      const auto& routers = as.routers;
      const std::size_t mesh_cap =
          cfg_.max_intra_as_mesh > 0
              ? static_cast<std::size_t>(cfg_.max_intra_as_mesh)
              : routers.size();
      for (std::size_t a = 0; a < routers.size(); ++a) {
        for (std::size_t b = a + 1;
             b < routers.size() && b - a <= mesh_cap; ++b) {
          const Prefix p2p = client_p2p(AsId{i});
          connect_routers(routers[a], routers[b], LinkKind::kIntraAs, p2p);
        }
      }
    }
  }

  // A /30 out of the client's announced space, carved sequentially from the
  // top of its first block downward (the low addresses stay free as "hosts",
  // i.e. sweep targets). The announced block remains the covering prefix for
  // annotation purposes, matching how operators number interconnects.
  //
  // Scale presets shrink client blocks (client_prefix_shift), so a dense
  // footprint or interconnect fan-out can outgrow the primary block's
  // point-to-point budget. Overflow /30s come from dedicated WHOIS-only
  // /24s minted on demand — operators routinely number interconnects out of
  // unannounced space, and the pool is a deterministic bump allocator, so
  // paper-scale worlds (which never overflow) are byte-for-byte unchanged.
  Prefix client_p2p(AsId as_id) {
    AutonomousSystem& as = world_.ases[as_id.value];
    P2pCursor& state = client_p2p_cursor_[as_id.value];
    if (!state.overflow.has_value()) {
      const Prefix& block = as.announced_prefixes.front();
      // Use at most the top half of the block for point-to-point subnets.
      const std::uint64_t max_subnets = block.size() / 8;
      if (state.cursor < max_subnets) {
        const std::uint32_t base = static_cast<std::uint32_t>(
            block.network().value() + block.size() - (state.cursor + 1) * 4);
        ++state.cursor;
        return Prefix(Ipv4(base), 30);
      }
    }
    // Overflow blocks carry no sweep targets, so they are carved in full.
    if (!state.overflow.has_value() ||
        state.cursor >= state.overflow->size() / 4) {
      state.overflow = plan_.client_whois.allocate(24);
      as.whois_only_prefixes.push_back(*state.overflow);
      world_.prefix_owner.insert(*state.overflow, as_id);
      state.cursor = 0;
    }
    const Prefix& block = *state.overflow;
    const std::uint32_t base = static_cast<std::uint32_t>(
        block.network().value() + block.size() - (state.cursor + 1) * 4);
    ++state.cursor;
    return Prefix(Ipv4(base), 30);
  }

  // Does the AS have a footprint presence in the given metro?
  bool member_metro_matches(const AutonomousSystem& as, MetroId metro) const {
    for (MetroId m : as.footprint)
      if (m == metro) return true;
    return false;
  }

  // Next free host address on an IXP's peering LAN.
  Ipv4 next_lan_address(IxpId ixp_id) {
    auto& cursor = ixp_lan_cursor_[ixp_id.value];
    const Prefix& lan = world_.ixps[ixp_id.value].peering_prefix;
    if (cursor + 2 >= lan.size())
      throw std::length_error("IXP LAN exhausted: " +
                              world_.ixps[ixp_id.value].name);
    return lan.network().next(static_cast<std::uint32_t>(++cursor));
  }

  // The prefix set an AS announces over an interconnect: its own announced
  // blocks, plus — when `cone` — the announced blocks of its full customer
  // cone (what transit networks re-export toward the cloud).
  std::vector<Prefix> announced_set(AsId as_id, bool cone) const {
    std::vector<Prefix> out = world_.ases[as_id.value].announced_prefixes;
    if (!cone) return out;
    std::vector<AsId> stack = world_.ases[as_id.value].customers;
    std::unordered_set<std::uint32_t> seen{as_id.value};
    while (!stack.empty()) {
      const AsId current = stack.back();
      stack.pop_back();
      if (!seen.insert(current.value).second) continue;
      const AutonomousSystem& as = world_.ases[current.value];
      out.insert(out.end(), as.announced_prefixes.begin(),
                 as.announced_prefixes.end());
      stack.insert(stack.end(), as.customers.begin(), as.customers.end());
    }
    return out;
  }

  // ---------------- inter-AS (non-cloud) links ----------------
  void make_inter_as_links() {
    for (std::uint32_t i = 0; i < world_.ases.size(); ++i) {
      const AutonomousSystem& as = world_.ases[i];
      for (AsId provider : as.providers)
        connect_ases(provider, AsId{i}, LinkKind::kTransit);
      for (AsId peer : as.peers)
        if (peer.value > i) connect_ases(AsId{i}, peer, LinkKind::kPeer);
    }
  }

  // Create one router-level link between two ASes, choosing the router pair
  // with the shortest metro distance; the /30 comes from the first AS.
  void connect_ases(AsId a, AsId b, LinkKind kind) {
    const RouterId ra = closest_router_pair_a(a, b);
    const RouterId rb = closest_router_to(b, world_.routers[ra.value].metro);
    const Prefix p2p = client_p2p(a);
    const LinkId link = connect_routers(ra, rb, kind, p2p);
    inter_as_links_[pair_key(a, b)].push_back(link);
  }

  static std::uint64_t pair_key(AsId a, AsId b) {
    return (static_cast<std::uint64_t>(a.value) << 32) | b.value;
  }

  RouterId closest_router_pair_a(AsId a, AsId b) const {
    // Router of `a` nearest to any footprint metro of `b`.
    RouterId best = world_.ases[a.value].routers.front();
    double best_km = 1e18;
    for (RouterId ra : world_.ases[a.value].routers) {
      for (MetroId mb : world_.ases[b.value].footprint) {
        const double km = haversine_km(
            world_.metros[world_.routers[ra.value].metro.value].location,
            world_.metros[mb.value].location);
        if (km < best_km) {
          best_km = km;
          best = ra;
        }
      }
    }
    return best;
  }

  RouterId closest_router_to(AsId as_id, MetroId metro) const {
    RouterId best = world_.ases[as_id.value].routers.front();
    double best_km = 1e18;
    for (RouterId r : world_.ases[as_id.value].routers) {
      const double km = haversine_km(
          world_.metros[world_.routers[r.value].metro.value].location,
          world_.metros[metro.value].location);
      if (km < best_km) {
        best_km = km;
        best = r;
      }
    }
    return best;
  }

  // Third-party/default-interface reply behaviour by AS type: tier-1
  // carriers never, large regional transit often, everyone else rarely.
  void maybe_fixed_reply(RouterId router, AsType type) {
    if (type == AsType::kCloud) return;
    double probability = cfg_.router_fixed_reply;
    if (type == AsType::kTier2) probability = cfg_.tier2_fixed_reply;
    if (type == AsType::kTier1) probability = cfg_.tier1_fixed_reply;
    if (rng_.chance(probability)) fixed_reply_routers_.push_back(router);
  }

  // A second cloud border router near the colo, distinct from `primary`;
  // invalid when none exists. Memoized like border_at (same staleness-free
  // window: borders never change once peering construction starts).
  RouterId second_border(CloudProvider provider, ColoId colo,
                         RouterId primary) {
    const std::uint64_t key = (static_cast<std::uint64_t>(provider) << 56) |
                              (static_cast<std::uint64_t>(colo.value) << 28) |
                              primary.value;
    const auto hit = second_border_memo_.find(key);
    if (hit != second_border_memo_.end()) return hit->second;
    const auto& borders = cloud_borders_[static_cast<int>(provider)];
    const MetroId metro = world_.colos[colo.value].metro;
    RouterId best{};
    double best_km = 1e18;
    for (RouterId border : borders) {
      if (border == primary) continue;
      const double km = haversine_km(world_.metros[metro.value].location,
                                     world_.router_location(border));
      if (km < best_km) {
        best_km = km;
        best = border;
      }
    }
    // Only use it when it shares the metro (same L2 fabric reach).
    if (!best.valid() || world_.routers[best.value].metro != metro)
      best = RouterId{};
    second_border_memo_.emplace(key, best);
    return best;
  }

  // Router of the client in the given metro, deploying a new one (meshed to
  // the AS's existing routers) when the client had no presence there — a
  // client peering locally at a colo physically has equipment in that metro.
  RouterId client_router_at(AsId client, MetroId metro) {
    for (RouterId r : world_.ases[client.value].routers)
      if (world_.routers[r.value].metro == metro) return r;
    const std::vector<RouterId> existing = world_.ases[client.value].routers;
    const RouterId router = new_router(client, metro);
    world_.routers[router.value].publicly_reachable =
        rng_.chance(cfg_.client_public_reachability);
    world_.ases[client.value].footprint.push_back(metro);
    maybe_fixed_reply(router, world_.ases[client.value].type);
    for (RouterId other : existing)
      connect_routers(other, router, LinkKind::kIntraAs, client_p2p(client));
    return router;
  }

  // ---------------- cloud-client interconnections ----------------
  void make_cloud_peerings();
  void add_public_peerings(AsId client, int count);
  void add_xconnects(AsId client, CloudProvider provider, int count);
  void add_vpis(AsId client, int count);

  // ---------------- hosting & finalization ----------------
  void finalize_hosting() {
    // Assign every announced/WHOIS block of every AS to one of its routers
    // (round-robin): probes into the block terminate at that router.
    for (std::uint32_t i = 0; i < world_.ases.size(); ++i) {
      const AutonomousSystem& as = world_.ases[i];
      if (as.routers.empty()) continue;
      std::size_t cursor = 0;
      auto host = [&](const Prefix& prefix) {
        world_.hosting_router.insert(prefix,
                                     as.routers[cursor % as.routers.size()]);
        ++cursor;
      };
      for (const Prefix& p : as.announced_prefixes) host(p);
      for (const Prefix& p : as.whois_only_prefixes) host(p);
    }
    // Fixed-reply routers answer with their first interface (often making it
    // a "third-party" address relative to the probed path).
    for (RouterId router : fixed_reply_routers_) {
      Router& r = world_.routers[router.value];
      if (r.interfaces.empty()) continue;
      r.reply_policy = ReplyPolicy::kFixedInterface;
      r.fixed_reply = world_.router_interfaces(router).front();
    }
  }

  const GeneratorConfig cfg_;
  Rng rng_;
  AddressPlan plan_;
  World world_;
  std::vector<RouterId> cloud_cores_[kCloudProviderCount];
  std::vector<RouterId> cloud_borders_[kCloudProviderCount];
  std::unordered_set<std::uint32_t> ixp_operator_;
  std::vector<RouterId> fixed_reply_routers_;
  // Lookup structures that replace per-call linear scans (tentpole of the
  // Internet-scale work): colo buckets by metro, the colo hosting each IXP,
  // the Amazon-adjacent IXP candidate list for public peerings, and memos
  // for the nearest-border searches (borders are static once the clouds are
  // built, so the memoized answers can never go stale).
  std::vector<std::vector<ColoId>> colos_by_metro_;
  std::vector<ColoId> colo_of_ixp_;
  std::vector<IxpId> amazon_ixp_candidates_;
  std::unordered_map<std::uint64_t, RouterId> border_at_memo_;
  std::unordered_map<std::uint64_t, RouterId> second_border_memo_;
  // Per-AS /30 carving state: cursor into the current block, plus the
  // WHOIS-only overflow block once the primary's point-to-point budget is
  // spent (scale presets only — see client_p2p).
  struct P2pCursor {
    std::uint64_t cursor = 0;
    std::optional<Prefix> overflow;
  };
  std::unordered_map<std::uint32_t, P2pCursor> client_p2p_cursor_;
  std::unordered_map<std::uint32_t, std::uint64_t> ixp_lan_cursor_;
  std::unordered_map<std::uint64_t, std::vector<LinkId>> inter_as_links_;
};

// ----------------------------------------------------------------------
// Cloud-client interconnection construction.
// ----------------------------------------------------------------------

void Builder::make_cloud_peerings() {
  // Amazon-adjacent IXPs, computed once. add_public_peerings used to rebuild
  // this list per client — an O(clients × ixps × borders) triple loop that
  // dominated generation at Internet scale. Borders are final here, so the
  // candidate list (IXP table order, matching the old scan) never changes.
  {
    std::unordered_set<std::uint32_t> amazon_metros;
    for (RouterId border :
         cloud_borders_[static_cast<int>(CloudProvider::kAmazon)])
      amazon_metros.insert(world_.routers[border.value].metro.value);
    for (std::uint32_t x = 0; x < world_.ixps.size(); ++x)
      for (MetroId m : world_.ixps[x].metros)
        if (amazon_metros.count(m.value)) {
          amazon_ixp_candidates_.push_back(IxpId{x});
          break;
        }
  }

  // Inter-cloud peering: the large clouds peer with each other both
  // privately and at IXPs (the paper finds Google and Microsoft among
  // Amazon's Pb-nB and Pr-nB peers). Modeled with Amazon as the subject
  // side, each foreign cloud announcing its own prefixes.
  for (CloudProvider other :
       {CloudProvider::kMicrosoft, CloudProvider::kGoogle,
        CloudProvider::kIbm, CloudProvider::kOracle}) {
    const AsId other_as = world_.cloud_primary(other);
    add_xconnects(other_as, CloudProvider::kAmazon,
                  static_cast<int>(rng_.range(2, 5)));
    add_public_peerings(other_as, static_cast<int>(rng_.range(1, 3)));
  }

  for (std::uint32_t i = 0; i < world_.ases.size(); ++i) {
    const AsType type = world_.ases[i].type;
    if (type == AsType::kCloud) continue;
    // IXP-operator pseudo-ASes take no cloud peerings.
    if (ixp_operator_.count(i)) continue;

    const AsId client{i};
    switch (type) {
      case AsType::kTier1:
        // Tier-1s cross-connect with every cloud; this is also what gives
        // the foreign clouds (and their probes, §7.1) global reachability.
        if (rng_.chance(cfg_.tier1_xconnect))
          add_xconnects(client, CloudProvider::kAmazon,
                        static_cast<int>(rng_.range(10, 22)));
        for (CloudProvider other :
             {CloudProvider::kMicrosoft, CloudProvider::kGoogle,
              CloudProvider::kIbm, CloudProvider::kOracle})
          add_xconnects(client, other, static_cast<int>(rng_.range(2, 6)));
        if (rng_.chance(cfg_.tier1_vpi))
          add_vpis(client, static_cast<int>(rng_.range(1, 3)));
        break;
      case AsType::kTier2:
        if (rng_.chance(cfg_.tier2_public))
          add_public_peerings(client, static_cast<int>(rng_.range(1, 4)));
        if (rng_.chance(cfg_.tier2_xconnect))
          add_xconnects(client, CloudProvider::kAmazon,
                        static_cast<int>(rng_.range(2, 8)));
        if (rng_.chance(cfg_.tier2_vpi))
          add_vpis(client,
                   static_cast<int>(rng_.range(1, cfg_.max_vpi_ports)));
        break;
      case AsType::kAccess:
        if (rng_.chance(cfg_.access_public))
          add_public_peerings(client, static_cast<int>(rng_.range(1, 2)));
        if (rng_.chance(cfg_.access_xconnect))
          add_xconnects(client, CloudProvider::kAmazon, 1);
        if (rng_.chance(cfg_.access_vpi))
          add_vpis(client,
                   static_cast<int>(rng_.range(1, cfg_.max_vpi_ports)));
        break;
      case AsType::kEnterprise:
        if (rng_.chance(cfg_.enterprise_public))
          add_public_peerings(client, 1);
        if (rng_.chance(cfg_.enterprise_xconnect))
          add_xconnects(client, CloudProvider::kAmazon, 1);
        if (rng_.chance(cfg_.enterprise_vpi))
          add_vpis(client,
                   static_cast<int>(rng_.range(1, cfg_.max_vpi_ports)));
        break;
      case AsType::kContent:
        if (rng_.chance(cfg_.content_public))
          add_public_peerings(client, static_cast<int>(rng_.range(1, 3)));
        if (rng_.chance(cfg_.content_xconnect))
          add_xconnects(client, CloudProvider::kAmazon, 1);
        if (rng_.chance(cfg_.content_vpi)) add_vpis(client, 1);
        break;
      case AsType::kCdn:
        add_public_peerings(client, static_cast<int>(rng_.range(2, 6)));
        if (rng_.chance(cfg_.cdn_xconnect))
          add_xconnects(client, CloudProvider::kAmazon,
                        static_cast<int>(rng_.range(1, 4)));
        if (rng_.chance(cfg_.cdn_vpi)) add_vpis(client, 1);
        break;
      case AsType::kCloud:
        break;
    }
  }
}

void Builder::add_public_peerings(AsId client, int count) {
  // Peer with Amazon at IXPs where Amazon has a border router in the metro
  // (candidate list precomputed in make_cloud_peerings).
  if (amazon_ixp_candidates_.empty()) return;
  std::vector<IxpId> candidates = amazon_ixp_candidates_;
  rng_.shuffle(candidates);
  count = std::min<int>(count, static_cast<int>(candidates.size()));
  const AutonomousSystem& as = world_.ases[client.value];
  for (int k = 0; k < count; ++k) {
    const IxpId ixp_id = candidates[k];
    const ColoId colo = colo_of_ixp_[ixp_id.value];
    if (!colo.valid()) continue;
    const MetroId metro = world_.colos[colo.value].metro;
    const RouterId amazon_border = border_at(CloudProvider::kAmazon, colo);

    const bool remote = rng_.chance(cfg_.public_remote) &&
                        !member_metro_matches(as, metro);
    const MetroId client_metro =
        remote ? as.footprint[rng_.bounded(as.footprint.size())] : metro;
    const RouterId client_router = client_router_at(client, client_metro);

    // Both sides take addresses on the IXP LAN; the member's LAN address is
    // what traceroute reports as the CBI. Latency reflects where the two
    // routers physically sit (a remote member's L2 tail shows up here).
    const Ipv4 amazon_addr = next_lan_address(ixp_id);
    const Ipv4 member_addr = next_lan_address(ixp_id);
    const InterfaceId a =
        world_.add_interface(amazon_border, amazon_addr, LinkId{});
    const InterfaceId b =
        world_.add_interface(client_router, member_addr, LinkId{});
    const LinkId link = world_.add_link(
        a, b, LinkKind::kIxpLan,
        0.15 + metro_latency(world_.routers[amazon_border.value].metro,
                             world_.routers[client_router.value].metro));

    GroundTruthInterconnect ic;
    ic.cloud = CloudProvider::kAmazon;
    ic.client = client;
    ic.kind = PeeringKind::kPublicIxp;
    ic.colo = colo;
    ic.metro = metro;
    ic.link = link;
    ic.remote = remote;
    ic.client_metro = client_metro;
    ic.cloud_interface = a;
    ic.client_interface = b;
    ic.announced_to_cloud = announced_set(client, /*cone=*/true);

    // Redundant session to a second Amazon router on the same IXP fabric:
    // the member's one LAN port now answers behind either router.
    if (rng_.chance(cfg_.redundant_session)) {
      const RouterId other =
          second_border(CloudProvider::kAmazon, colo, amazon_border);
      if (other.valid()) {
        const InterfaceId a2 =
            world_.add_interface(other, next_lan_address(ixp_id), LinkId{});
        const InterfaceId b2 =
            world_.add_interface(client_router, member_addr, LinkId{});
        ic.secondary_link = world_.add_link(
            a2, b2, LinkKind::kIxpLan,
            0.15 + metro_latency(world_.routers[other.value].metro,
                                 world_.routers[client_router.value].metro));
      }
    }
    world_.interconnects.push_back(std::move(ic));
  }
}

void Builder::add_xconnects(AsId client, CloudProvider provider, int count) {
  // Cross-connect at native colos of the provider.
  const auto& borders = cloud_borders_[static_cast<int>(provider)];
  if (borders.empty()) return;
  std::vector<RouterId> shuffled = borders;
  rng_.shuffle(shuffled);
  count = std::min<int>(count, static_cast<int>(shuffled.size()));
  const AutonomousSystem& as = world_.ases[client.value];
  for (int k = 0; k < count; ++k) {
    const RouterId border = shuffled[k];
    const Router& border_router = world_.routers[border.value];
    const ColoId colo = border_router.colo;
    const MetroId metro = border_router.metro;
    const bool remote = rng_.chance(cfg_.xconnect_remote) &&
                        !member_metro_matches(as, metro);
    const MetroId client_metro =
        remote ? as.footprint[rng_.bounded(as.footprint.size())] : metro;
    const RouterId client_router = client_router_at(client, client_metro);

    const bool cloud_subnet = rng_.chance(cfg_.cloud_provided_subnet);
    const Prefix p2p = cloud_subnet ? cloud_p2p(provider) : client_p2p(client);
    const InterfaceId a =
        world_.add_interface(border, p2p.network().next(1), LinkId{});
    const InterfaceId b =
        world_.add_interface(client_router, p2p.network().next(2), LinkId{});
    // Same colo for local cross-connects; remote ones carry the partner's
    // layer-2 tail, reflected by the true router-to-router distance.
    const LinkId link = world_.add_link(
        a, b, LinkKind::kCrossConnect,
        0.05 + (remote ? metro_latency(metro, client_metro) : 0.0));

    GroundTruthInterconnect ic;
    ic.cloud = provider;
    ic.client = client;
    ic.kind = PeeringKind::kCrossConnect;
    ic.colo = colo;
    ic.metro = metro;
    ic.link = link;
    ic.remote = remote;
    ic.client_metro = client_metro;
    ic.cloud_provided_subnet = cloud_subnet;
    ic.cloud_interface = a;
    ic.client_interface = b;
    // Transit networks announce their full customer cone over the
    // cross-connect; edge networks announce their own space only.
    const bool transit = as.type == AsType::kTier1 || as.type == AsType::kTier2;
    ic.announced_to_cloud = announced_set(client, /*cone=*/transit);
    world_.interconnects.push_back(std::move(ic));
  }
}

void Builder::add_vpis(AsId client, int count) {
  // Candidate colos: cloud exchanges where Amazon is native (local VPI) or
  // any exchange colo via a connectivity partner (remote VPI).
  std::vector<ColoId> exchanges;
  for (std::uint32_t c = 0; c < world_.colos.size(); ++c)
    if (world_.colos[c].has_cloud_exchange) exchanges.push_back(ColoId{c});
  if (exchanges.empty()) return;
  const AutonomousSystem& as = world_.ases[client.value];

  for (int k = 0; k < count; ++k) {
    const ColoId colo = exchanges[rng_.bounded(exchanges.size())];
    const MetroId metro = world_.colos[colo.value].metro;
    const bool remote =
        rng_.chance(cfg_.vpi_remote) && !member_metro_matches(as, metro);
    const MetroId client_metro =
        remote ? as.footprint[rng_.bounded(as.footprint.size())] : metro;
    const RouterId client_router = client_router_at(client, client_metro);
    const bool priv = rng_.chance(cfg_.vpi_private_address);
    const bool shared_port = !priv && rng_.chance(cfg_.vpi_shared_port);

    // Which clouds terminate VPIs on this port. Amazon always; others by
    // adoption probability (only meaningful for overlap when shared_port).
    std::vector<CloudProvider> clouds = {CloudProvider::kAmazon};
    if (rng_.chance(cfg_.also_microsoft)) clouds.push_back(CloudProvider::kMicrosoft);
    if (rng_.chance(cfg_.also_google)) clouds.push_back(CloudProvider::kGoogle);
    if (rng_.chance(cfg_.also_ibm)) clouds.push_back(CloudProvider::kIbm);
    if (cfg_.also_oracle > 0.0 && rng_.chance(cfg_.also_oracle))
      clouds.push_back(CloudProvider::kOracle);

    // Shared-port addressing: one client-owned address reused on every VPI
    // of this port; otherwise each cloud provides a /30.
    Ipv4 port_address;
    if (shared_port) {
      const Prefix port = client_p2p(client);
      port_address = port.network().next(1);
    }

    for (CloudProvider provider : clouds) {
      const RouterId border = border_at(provider, colo);
      if (!border.valid()) continue;
      Ipv4 cloud_side;
      Ipv4 client_side;
      bool cloud_subnet = false;
      if (priv) {
        const Prefix p2p = plan_.cloud_private.allocate(30);
        cloud_side = p2p.network().next(1);
        client_side = p2p.network().next(2);
        cloud_subnet = true;
      } else if (shared_port) {
        const Prefix p2p = cloud_p2p(provider);
        cloud_side = p2p.network().next(1);
        client_side = port_address;  // same address on every VPI of the port
      } else {
        cloud_subnet = rng_.chance(cfg_.cloud_provided_subnet);
        const Prefix p2p =
            cloud_subnet ? cloud_p2p(provider) : client_p2p(client);
        cloud_side = p2p.network().next(1);
        client_side = p2p.network().next(2);
      }
      const InterfaceId a = world_.add_interface(border, cloud_side, LinkId{});
      const InterfaceId b =
          world_.add_interface(client_router, client_side, LinkId{});
      // The virtual circuit's latency spans wherever the two routers really
      // are: the cloud's nearest border (possibly in another metro when the
      // cloud is not native at this exchange) and the client port (possibly
      // behind a partner's remote L2 tail).
      const LinkId link = world_.add_link(
          a, b, LinkKind::kVpi,
          0.2 + metro_latency(world_.routers[border.value].metro,
                              world_.routers[client_router.value].metro));

      GroundTruthInterconnect ic;
      ic.cloud = provider;
      ic.client = client;
      ic.kind = PeeringKind::kVpi;
      ic.colo = colo;
      ic.metro = metro;
      ic.link = link;
      ic.remote = remote;
      ic.client_metro = client_metro;
      ic.private_address = priv;
      ic.shared_port_address = shared_port;
      ic.cloud_provided_subnet = cloud_subnet;
      ic.cloud_interface = a;
      ic.client_interface = b;
      // VPIs carry the client's own routes only — and none at all when the
      // VPI is private-addressed (confined to the VPC).
      if (!priv) ic.announced_to_cloud = announced_set(client, /*cone=*/false);
      // Redundant virtual circuit to a second border on the same exchange
      // fabric (public-address VPIs only; the client port keeps its address).
      if (!priv && rng_.chance(cfg_.redundant_session)) {
        const RouterId other = second_border(provider, colo, border);
        if (other.valid()) {
          const Prefix p2p2 = cloud_p2p(provider);
          const InterfaceId a2 =
              world_.add_interface(other, p2p2.network().next(1), LinkId{});
          const InterfaceId b2 =
              world_.add_interface(client_router, client_side, LinkId{});
          ic.secondary_link = world_.add_link(
              a2, b2, LinkKind::kVpi,
              0.2 + metro_latency(world_.routers[other.value].metro,
                                  world_.routers[client_router.value].metro));
        }
      }
      world_.interconnects.push_back(std::move(ic));
    }
  }
}

}  // namespace

World generate_world(const GeneratorConfig& config) {
  Builder builder(config);
  return builder.build();
}

GeneratorConfig GeneratorConfig::small() {
  GeneratorConfig cfg;
  cfg.metro_count = 12;
  cfg.amazon_regions = 4;
  cfg.microsoft_regions = 3;
  cfg.google_regions = 2;
  cfg.ibm_regions = 2;
  cfg.oracle_regions = 2;
  cfg.tier1_count = 3;
  cfg.tier2_count = 8;
  cfg.access_count = 14;
  cfg.enterprise_count = 24;
  cfg.content_count = 8;
  cfg.cdn_count = 3;
  cfg.amazon_edge_metros = 3;
  return cfg;
}

GeneratorConfig GeneratorConfig::paper_shape() {
  return GeneratorConfig{};  // defaults are the paper-shape preset
}

GeneratorConfig GeneratorConfig::from_spec(const WorldSpec& spec) {
  GeneratorConfig cfg;  // start from the paper-shape defaults
  cfg.seed = spec.seed;
  const double r = std::max(1.0, static_cast<double>(spec.total_ases) / 540.0);
  const double s = std::sqrt(r);

  // Infrastructure tiers grow sub-linearly, the way the real Internet's do:
  // a 100x bigger world has a handful more tier-1 carriers, ~10x the
  // regional transits, not 100x of either.
  cfg.tier1_count = std::min(
      24, static_cast<int>(8.0 * (1.0 + std::log2(r) / 3.0)));
  cfg.tier2_count = std::max(8, static_cast<int>(56.0 * s));
  cfg.cdn_count = std::max(4, static_cast<int>(16.0 * s));
  cfg.metro_count = std::min(2000, std::max(45, static_cast<int>(45.0 * s)));
  cfg.amazon_edge_metros = std::max(22, static_cast<int>(22.0 * s));
  if (spec.total_ases > 2000) {
    // Big worlds: larger IXP LANs (more public peers land on each
    // Amazon-adjacent IXP) and a capped intra-AS backbone mesh.
    cfg.ixp_lan_prefix = 21;
    cfg.max_intra_as_mesh = 3;
  }

  // Address budget: /24 targets the finished world should expose across the
  // Amazon regions that sweep them. Expected /24 yield per AS of each type
  // is (average block count) × (/24s per block at the current shift).
  const double budget =
      static_cast<double>(spec.targets_per_region) * cfg.amazon_regions;
  const auto infra_yield = [&](int shift) {
    const double tier1 = 4.5 * (1u << std::max(0, 8 - shift));  // /16 blocks
    const double tier2 = 3.0 * (1u << std::max(0, 6 - shift));  // /18 blocks
    const double cdn = 2.0 * (1u << std::max(0, 3 - shift));    // /21 blocks
    return cfg.tier1_count * tier1 + cfg.tier2_count * tier2 +
           cfg.cdn_count * cdn;
  };
  int shift = 0;
  while (shift < 5 && infra_yield(shift) > 0.75 * budget) ++shift;
  cfg.client_prefix_shift = shift;

  // Split the remaining ASes: content keeps its paper-shape share, then the
  // access/enterprise split is solved so expected targets land on what is
  // left of the budget (access ASes yield big blocks, enterprises ~one /24).
  const int infra = cfg.tier1_count + cfg.tier2_count + cfg.cdn_count;
  const int rest = std::max(3, spec.total_ases - infra);
  const int content = std::max(1, rest * 80 / 460);
  const int edge = rest - content;
  const double access_yield = 2.0 * (1u << std::max(0, 5 - shift));
  const double content_yield = 1u << std::max(0, 2 - shift);
  const double enterprise_yield = shift > 0 ? 1.0 : 1.5;
  const double edge_budget =
      std::max(0.0, budget - infra_yield(shift) - content * content_yield);
  const double need = edge > 0 ? edge_budget / edge : 0.0;
  const double access_share = std::clamp(
      (need - enterprise_yield) / (access_yield - enterprise_yield), 0.02,
      0.55);
  cfg.content_count = content;
  cfg.access_count = std::max(1, static_cast<int>(edge * access_share));
  cfg.enterprise_count = std::max(1, edge - cfg.access_count);
  return cfg;
}

}  // namespace cloudmap
