// Address-plan machinery: carves the synthetic IPv4 space into the pools the
// generator draws from. Pool choice is what gives the inference pipeline its
// annotation behaviour — announced blocks resolve via BGP, WHOIS-only blocks
// only via the registry, IXP LANs via the IXP prefix lists, and cloud
// internal space via RFC1918/RFC6598 (ASN 0 hops, §3).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "net/ipv4.h"
#include "net/prefix.h"

namespace cloudmap {

// Bump allocator over one top-level pool prefix; hands out aligned child
// prefixes of any requested length, never overlapping.
class PrefixPool {
 public:
  PrefixPool() = default;
  explicit PrefixPool(Prefix pool) : pool_(pool), cursor_(pool.network().value()) {}

  const Prefix& pool() const noexcept { return pool_; }

  // Allocate the next aligned /length block; throws std::length_error when
  // the pool is exhausted (a generator-configuration bug, not a user error).
  Prefix allocate(std::uint8_t length);

  // Addresses handed out so far (for diagnostics).
  std::uint64_t used() const noexcept {
    return cursor_ - pool_.network().value();
  }

 private:
  Prefix pool_;
  std::uint64_t cursor_ = 0;  // 64-bit so a fully consumed pool doesn't wrap
};

// The named pools of the world's address plan.
struct AddressPlan {
  PrefixPool cloud_announced[6];   // per CloudProvider: announced blocks
  PrefixPool cloud_infra;          // WHOIS-only cloud infrastructure space
  PrefixPool cloud_private;        // RFC1918 space used inside clouds
  PrefixPool client_announced;     // client blocks visible in BGP
  PrefixPool client_whois;         // client blocks allocated but unannounced
  PrefixPool ixp_lans;             // IXP peering LANs
  PrefixPool exchange_ports;       // cloud-exchange port addressing

  // Standard layout used by the generator; all pools disjoint.
  static AddressPlan standard();
};

}  // namespace cloudmap
