#include "topology/entities.h"

namespace cloudmap {

const char* to_string(CloudProvider provider) {
  switch (provider) {
    case CloudProvider::kNone: return "none";
    case CloudProvider::kAmazon: return "amazon";
    case CloudProvider::kMicrosoft: return "microsoft";
    case CloudProvider::kGoogle: return "google";
    case CloudProvider::kIbm: return "ibm";
    case CloudProvider::kOracle: return "oracle";
  }
  return "?";
}

const char* to_string(AsType type) {
  switch (type) {
    case AsType::kCloud: return "cloud";
    case AsType::kTier1: return "tier1";
    case AsType::kTier2: return "tier2";
    case AsType::kAccess: return "access";
    case AsType::kEnterprise: return "enterprise";
    case AsType::kContent: return "content";
    case AsType::kCdn: return "cdn";
  }
  return "?";
}

const char* to_string(LinkKind kind) {
  switch (kind) {
    case LinkKind::kIntraAs: return "intra-as";
    case LinkKind::kTransit: return "transit";
    case LinkKind::kPeer: return "peer";
    case LinkKind::kIxpLan: return "ixp-lan";
    case LinkKind::kCrossConnect: return "cross-connect";
    case LinkKind::kVpi: return "vpi";
  }
  return "?";
}

const char* to_string(PeeringKind kind) {
  switch (kind) {
    case PeeringKind::kPublicIxp: return "public-ixp";
    case PeeringKind::kCrossConnect: return "cross-connect";
    case PeeringKind::kVpi: return "vpi";
  }
  return "?";
}

}  // namespace cloudmap
