#include "topology/address_plan.h"

namespace cloudmap {

Prefix PrefixPool::allocate(std::uint8_t length) {
  if (length < pool_.length() || length > 32)
    throw std::length_error("PrefixPool: bad requested length");
  const std::uint64_t block = std::uint64_t{1} << (32 - length);
  // Align the cursor up to the block size.
  std::uint64_t start = (cursor_ + block - 1) & ~(block - 1);
  const std::uint64_t end =
      static_cast<std::uint64_t>(pool_.network().value()) + pool_.size();
  if (start + block > end) throw std::length_error("PrefixPool exhausted");
  cursor_ = start + block;
  return Prefix(Ipv4(static_cast<std::uint32_t>(start)), length);
}

AddressPlan AddressPlan::standard() {
  AddressPlan plan;
  // Cloud announced space: one /11 each, spread across 40.0.0.0/8.
  plan.cloud_announced[1] = PrefixPool(Prefix(Ipv4(40, 0, 0, 0), 11));    // amazon
  plan.cloud_announced[2] = PrefixPool(Prefix(Ipv4(40, 32, 0, 0), 11));   // microsoft
  plan.cloud_announced[3] = PrefixPool(Prefix(Ipv4(40, 64, 0, 0), 11));   // google
  plan.cloud_announced[4] = PrefixPool(Prefix(Ipv4(40, 96, 0, 0), 11));   // ibm
  plan.cloud_announced[5] = PrefixPool(Prefix(Ipv4(40, 128, 0, 0), 11));  // oracle
  // WHOIS-only infrastructure space shared by the clouds (each allocation is
  // registered to the allocating cloud in the synthetic WHOIS registry).
  plan.cloud_infra = PrefixPool(Prefix(Ipv4(44, 0, 0, 0), 10));
  // RFC1918 space used inside cloud backbones.
  plan.cloud_private = PrefixPool(Prefix(Ipv4(10, 0, 0, 0), 8));
  // Client space. Pools are sized for Internet-scale worlds (~60k ASes via
  // WorldSpec); allocation is a bump from the pool base, so widening them
  // leaves every address in table-sized worlds untouched.
  plan.client_announced = PrefixPool(Prefix(Ipv4(20, 0, 0, 0), 6));
  // /8: WHOIS-only client space also feeds overflow interconnect /30s at
  // scale (client_p2p), so it must hold a /24 per dense-fan-out AS.
  plan.client_whois = PrefixPool(Prefix(Ipv4(60, 0, 0, 0), 8));
  // IXP LANs and cloud-exchange ports.
  plan.ixp_lans = PrefixPool(Prefix(Ipv4(80, 0, 0, 0), 12));
  plan.exchange_ports = PrefixPool(Prefix(Ipv4(80, 64, 0, 0), 14));
  return plan;
}

}  // namespace cloudmap
