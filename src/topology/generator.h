// Ground-truth world generator. Builds a synthetic Internet with every
// structural feature the paper's inference pipeline has to contend with:
//
//   * a multi-region Amazon (plus Microsoft/Google/IBM/Oracle) with region
//     core routers, a private backbone, and border routers at native colos;
//   * client ASes of six business types with realistic footprints, address
//     blocks (announced / WHOIS-only / intermittently announced), and
//     provider/peer/customer relationships;
//   * colo facilities with IXPs and cloud-exchange fabrics;
//   * cloud-client interconnections of all three kinds (public IXP peering,
//     private cross-connect, VPI), including remote peering through
//     connectivity partners, private-address VPIs (invisible by design),
//     shared-port VPIs (the §7.1 multi-cloud overlap signal), and the Fig. 2
//     address-sharing ambiguity (cloud- vs client-provided /30s);
//   * router response quirks: silent routers, fixed/third-party replies,
//     hybrid Amazon border routers (Fig. 3), unreachable-from-public Amazon
//     borders (§5.1's reachability heuristic).
#pragma once

#include <cstdint>

#include "topology/world.h"
#include "util/rng.h"

namespace cloudmap {

// Scale-parameterized world specification: the two knobs that matter when
// growing worlds far past the paper-shape preset, e.g. toward ~60k-AS
// Internet scale. GeneratorConfig::from_spec derives everything else:
// infrastructure tiers (tier-1/tier-2/CDN) grow sub-linearly the way the
// real Internet's do, metros extend past the curated table via synthetic
// ones, client address blocks shrink so probeable space tracks the target
// budget instead of the AS count, and the intra-AS backbone mesh is capped
// so link counts stay near-linear in the AS count.
struct WorldSpec {
  std::uint64_t seed = 1;
  // Total client ASes across the six business types.
  int total_ases = 540;
  // Approximate publicly probeable /24 targets per Amazon region the
  // finished world exposes. A target, not a guarantee: every AS announces
  // at least one /24, so the achievable floor is ~total_ases /24s summed
  // over all regions.
  int targets_per_region = 2000;
};

struct GeneratorConfig {
  std::uint64_t seed = 1;

  // --- world scale ---
  int metro_count = 45;          // capped by the built-in metro table
  int amazon_regions = 15;
  int microsoft_regions = 12;
  int google_regions = 10;
  int ibm_regions = 6;
  int oracle_regions = 4;

  int tier1_count = 8;
  int tier2_count = 56;
  int access_count = 140;
  int enterprise_count = 240;
  int content_count = 80;
  int cdn_count = 16;

  // Extra native-colo metros beyond region metros (Amazon edge presence);
  // drives the >2 ms part of the Fig. 4a ABI min-RTT distribution.
  int amazon_edge_metros = 22;
  // Border routers per native colo (1..this).
  int max_border_routers_per_colo = 4;

  // --- Internet-scale knobs (set by from_spec; the defaults reproduce the
  //     classic presets byte-for-byte) ---
  // Prefix length of each IXP peering LAN; hosts per LAN bound how many
  // public peerings one IXP can absorb.
  int ixp_lan_prefix = 23;
  // Added to every client announced-block prefix length (clamped at /24),
  // shrinking per-AS address space so huge worlds stay inside the plan's
  // client pool and the probe-target budget.
  int client_prefix_shift = 0;
  // Cap on intra-AS backbone links per router (0 = full mesh). Needed once
  // footprints span hundreds of metros: a full mesh is quadratic in
  // footprint size and exhausts the AS's /30 space.
  int max_intra_as_mesh = 0;

  // --- facility fabric ---
  double ixp_metro_probability = 0.75;       // metro hosts an IXP
  double cloud_exchange_probability = 0.65;  // native colo runs an exchange
  int multi_metro_ixps = 2;                  // IXPs spanning two metros

  // --- client peering behaviour with Amazon, by AS type ---
  // Probability of having at least one peering of each kind. Tuned so the
  // Table 5 group shares land near the paper's: most peers are public-only
  // edge networks; VPI users are fewer but hold several ports each (the
  // paper's Pr-nB-V group has ~12 CBIs per AS); transit cross-connects
  // carry many interconnections per AS.
  double enterprise_vpi = 0.38;
  double enterprise_xconnect = 0.12;
  double enterprise_public = 0.60;
  double access_public = 0.88;
  double access_vpi = 0.12;
  double access_xconnect = 0.14;
  double content_public = 0.90;
  double content_xconnect = 0.15;
  double content_vpi = 0.10;
  double cdn_public = 1.0;
  double cdn_xconnect = 0.8;
  double cdn_vpi = 0.3;
  double tier2_public = 0.85;
  double tier2_xconnect = 0.40;
  double tier2_vpi = 0.10;
  double tier1_xconnect = 1.0;  // every tier1 cross-connects (transit role)
  double tier1_vpi = 0.5;       // half also act as connectivity partners
  // VPI ports per VPI-using client (1..this).
  int max_vpi_ports = 5;

  // --- interconnect detail knobs ---
  double vpi_private_address = 0.25;   // VPI confined to the VPC (invisible)
  double vpi_shared_port = 0.70;       // client keeps one address per port
  // Remote peering through connectivity partners. The paper finds ~43% of
  // observed IXP member interfaces belong to remote peers (§6.1). Physical
  // cross-connects are a different matter: they terminate in-building, so
  // only a small fraction arrives over a partner's layer-2 tail.
  double vpi_remote = 0.35;            // VPI reached via a partner's L2 tail
  double public_remote = 0.40;         // remote IXP membership
  double xconnect_remote = 0.08;       // partner-carried cross-connects
  // Fig. 2: the cloud allocates the interconnect /30. AWS requires
  // customer-owned public addressing on public VIFs, so this is the less
  // common case — but common enough to exercise the shift machinery.
  double cloud_provided_subnet = 0.18;
  // Multi-cloud VPI adoption given an Amazon shared-port VPI exists.
  double also_microsoft = 0.80;
  double also_google = 0.18;
  double also_ibm = 0.05;
  double also_oracle = 0.0;  // the paper found zero Amazon/Oracle overlap

  // --- addressing / registry realism ---
  double abi_infra_address = 0.62;        // ABI addr from WHOIS-only space
  double client_whois_prefix = 0.18;      // AS holds an unannounced block
  double intermittent_announce = 0.22;    // block missing from the round-1
                                          // BGP snapshot, present in round-2
  // --- router response realism ---
  double router_silent = 0.02;
  // Default/loopback-interface replies. The paper (§9, citing Luckie et
  // al.) puts incoming-interface replies only "above 50%", i.e. a large
  // minority of routers answer with a stable interface across all their
  // links. Those stable interfaces are what fuses the ICG's giant
  // component (§7.4). Tier-1 carriers run tighter configs, which also
  // keeps the Table 4 inter-cloud overlap clean.
  double router_fixed_reply = 0.28;
  double tier2_fixed_reply = 0.32;
  double tier1_fixed_reply = 0.0;  // keeps inter-cloud paths artifact-free
                                   // (the paper's Table 4 Oracle row is 0)
  // Probability that an L2-fabric peering (IXP or VPI) holds a redundant
  // session to a second cloud router on the same fabric.
  double redundant_session = 0.45;
  // Extra backbone attachments per cloud border router (0..this), drawn to
  // the nearest other cores.
  int max_extra_uplinks = 2;
  double client_public_reachability = 0.72;
  double hybrid_aggregation = 0.5;       // chance a colo chains its borders

  // DNS naming coverage of client border interfaces.
  double dns_coverage = 0.42;
  double dns_wrong_location = 0.03;      // stale/mislabelled names

  // Presets.
  static GeneratorConfig small();        // fast unit-test world
  static GeneratorConfig paper_shape();  // bench world (~1/6 paper scale)
  // Derive a config from a scale specification (see WorldSpec above).
  // from_spec(WorldSpec{}) lands on approximately the paper-shape mix.
  static GeneratorConfig from_spec(const WorldSpec& spec);
};

// Build a world from the configuration. Deterministic in config.seed.
World generate_world(const GeneratorConfig& config);

}  // namespace cloudmap
