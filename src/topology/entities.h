// Ground-truth entity model for the synthetic Internet the measurement
// pipeline is pointed at. The generator (generator.h) populates these tables;
// the data plane walks them; the inference pipeline never reads them directly
// (it only sees traceroutes, pings, BGP snapshots, and public datasets), but
// tests and benches use them to score inference against truth.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/geo.h"
#include "net/ids.h"
#include "net/ipv4.h"
#include "net/prefix.h"

namespace cloudmap {

// A (first, count) window into a World-owned id pool. Hot entity tables
// store these instead of per-entity heap vectors (SoA/arena layout): the
// whole world's router→interface and router→uplink adjacency lives in one
// flat allocation apiece, so a 60k-AS world costs two arrays instead of
// hundreds of thousands of small vectors, and walking a router's interfaces
// touches contiguous memory. Spans are resolved against the owning pool via
// World::router_interfaces / World::router_extra_uplinks.
struct IdSpan {
  std::uint32_t first = 0;
  std::uint32_t count = 0;
  bool empty() const { return count == 0; }
  std::uint32_t size() const { return count; }
};

// Read-only view of one span's slice of its pool; iterable like a vector.
template <typename T>
class IdSpanView {
 public:
  IdSpanView(const T* data, std::uint32_t count)
      : data_(data), count_(count) {}
  const T* begin() const { return data_; }
  const T* end() const { return data_ + count_; }
  std::uint32_t size() const { return count_; }
  bool empty() const { return count_ == 0; }
  const T& front() const { return data_[0]; }
  const T& operator[](std::uint32_t i) const { return data_[i]; }

 private:
  const T* data_;
  std::uint32_t count_;
};

// The cloud providers that appear in the study: Amazon as the subject,
// the other four as the foreign vantage points of §7.1.
enum class CloudProvider : std::uint8_t {
  kNone = 0,
  kAmazon,
  kMicrosoft,
  kGoogle,
  kIbm,
  kOracle,
};
inline constexpr std::size_t kCloudProviderCount = 6;
const char* to_string(CloudProvider provider);

// Business role of an AS; drives footprint size, cone size, and which
// peering types it establishes with the clouds.
enum class AsType : std::uint8_t {
  kCloud = 0,   // one of the five cloud providers
  kTier1,       // global transit backbone
  kTier2,       // regional transit
  kAccess,      // eyeball / access network
  kEnterprise,  // business network, the main VPI users
  kContent,     // content provider
  kCdn,         // content delivery network
};
inline constexpr std::size_t kAsTypeCount = 7;
const char* to_string(AsType type);

// A metropolitan area. Pinning (§6) is defined at metro granularity.
struct Metro {
  std::string name;
  std::string airport_code;  // 3-letter code used in synthetic DNS names
  std::string country;
  GeoPoint location;
};

// A colocation facility within a metro. Facilities may house an IXP and/or a
// cloud-exchange switching fabric, and each cloud is "native" in a subset.
struct ColoFacility {
  std::string name;
  MetroId metro;
  IxpId ixp;  // invalid if the facility hosts no IXP
  bool has_cloud_exchange = false;
  // Bitmask over CloudProvider values: clouds housing border routers here.
  std::uint8_t native_clouds = 0;

  bool is_native(CloudProvider provider) const {
    return (native_clouds >> static_cast<unsigned>(provider)) & 1u;
  }
  void set_native(CloudProvider provider) {
    native_clouds |= static_cast<std::uint8_t>(1u << static_cast<unsigned>(provider));
  }
};

// An Internet exchange point. Its peering LAN prefix is what the IXP-client
// heuristic (§5.1) and IXP-association anchoring (§6.1) key on. A few real
// IXPs span multiple metros; the paper excludes those from anchoring.
struct Ixp {
  std::string name;
  Prefix peering_prefix;
  std::vector<MetroId> metros;  // usually exactly one
  bool multi_metro() const { return metros.size() > 1; }
};

// A cloud region (e.g. us-east-1). Vantage-point VMs live in regions; the
// region's metro anchors the region's geographic identity.
struct Region {
  std::string name;
  CloudProvider provider = CloudProvider::kNone;
  MetroId metro;
  RouterId core_router;      // first hop of every probe from this region's VMs
  InterfaceId vm_gateway;    // host-facing interface the core replies with
};

// An autonomous system.
struct AutonomousSystem {
  Asn asn;
  OrgId org;
  AsType type = AsType::kEnterprise;
  std::string name;
  CloudProvider cloud = CloudProvider::kNone;  // set only for AsType::kCloud
  std::vector<MetroId> footprint;              // metros with presence
  std::vector<Prefix> announced_prefixes;      // visible in BGP
  std::vector<Prefix> whois_only_prefixes;     // allocated but not announced
  std::vector<RouterId> routers;
  // Relationship lists used by the BGP simulator (indices into World::ases).
  std::vector<AsId> providers;
  std::vector<AsId> customers;
  std::vector<AsId> peers;
  // True for stub businesses without an ASN of their own that are "brought"
  // to the cloud exchange by an access network (they still need an entry in
  // this table to own routers/prefixes, but they never appear in BGP).
  bool non_asn_business = false;
};

// Classes of point-to-point adjacency in the router graph.
enum class LinkKind : std::uint8_t {
  kIntraAs = 0,      // backbone link inside one AS
  kTransit,          // provider-customer interconnection (non-cloud)
  kPeer,             // settlement-free peering between non-cloud ASes
  kIxpLan,           // adjacency across an IXP's shared switching fabric
  kCrossConnect,     // private physical interconnection at a colo
  kVpi,              // virtual private interconnection over a cloud exchange
};
const char* to_string(LinkKind kind);

struct Link {
  InterfaceId side_a;
  InterfaceId side_b;
  LinkKind kind = LinkKind::kIntraAs;
  double latency_ms = 0.1;  // one-way propagation delay
};

// How a router answers traceroute probes. Real routers overwhelmingly reply
// with the incoming interface, sometimes with a fixed (possibly third-party)
// interface, and sometimes not at all (§9 discusses these artifacts).
enum class ReplyPolicy : std::uint8_t {
  kIncomingInterface = 0,
  kFixedInterface,  // always replies with `Router::fixed_reply`
  kSilent,
};

struct Router {
  AsId owner;
  MetroId metro;
  ColoId colo;  // invalid when not in a colo facility
  // Interfaces of this router, as a span into World::router_iface_pool
  // (valid after World::seal(); resolve via World::router_interfaces).
  IdSpan interfaces;
  ReplyPolicy reply_policy = ReplyPolicy::kIncomingInterface;
  InterfaceId fixed_reply;  // used when reply_policy == kFixedInterface
  // Probability that a given probe gets any answer at all.
  double response_probability = 0.97;
  // Shared IP-ID counter parameters for MIDAR-style alias resolution: all
  // interfaces of one router sample the same (base, velocity) counter.
  std::uint32_t ipid_base = 0;
  double ipid_velocity = 100.0;  // counter increments per simulated second
  // Whether interfaces of this router answer probes arriving from the public
  // Internet (used by the reachability heuristic, §5.1). Amazon border
  // routers typically do not.
  bool publicly_reachable = true;
  // For cloud border routers: the intra-cloud link toward the parent
  // (region core or aggregation border). Lets the forwarder reconstruct the
  // core→border hop chain without a graph search.
  LinkId uplink;
  // Additional upstream links toward other region cores. Real cloud border
  // routers attach to the backbone in several directions, so the interface
  // they answer with (the observed ABI) depends on where the probe came
  // from — this is what gives CBIs their multi-ABI degree (Fig. 7b) and
  // stitches the ICG together (§7.4). Span into World::router_uplink_pool
  // (appended via World::add_extra_uplink, resolved via
  // World::router_extra_uplinks).
  IdSpan extra_uplinks;
};

struct Interface {
  Ipv4 address;
  RouterId router;
  LinkId link;  // the adjacency this interface terminates; invalid for
                // loopback/host-facing interfaces
  bool responds_to_alias_probes = true;
};

// Classes of interconnection between a cloud and a client, matching the
// peering taxonomy of §2/§7.
enum class PeeringKind : std::uint8_t {
  kPublicIxp = 0,    // bi/multi-lateral peering across an IXP
  kCrossConnect,     // private physical cross-connect
  kVpi,              // virtual private interconnection via a cloud exchange
};
const char* to_string(PeeringKind kind);

// Ground truth for one cloud-client interconnection (one physical or virtual
// link). An AS may hold many of these, across facilities and kinds; the set
// of interconnections of one (cloud, AS) pair forms a "peering" in the
// paper's terminology.
struct GroundTruthInterconnect {
  CloudProvider cloud = CloudProvider::kAmazon;
  AsId client;
  PeeringKind kind = PeeringKind::kCrossConnect;
  ColoId colo;    // facility where the cloud side terminates
  MetroId metro;  // metro of that facility
  LinkId link;
  // Client side terminates in a different metro, reached over a layer-2 tail
  // through a connectivity partner (remote peering, AS5 in Fig. 1).
  bool remote = false;
  MetroId client_metro;  // == metro unless remote
  // For kVpi: the VPI uses private (RFC1918) addressing and is confined to
  // the customer's VPC — invisible to every probe the study can launch.
  bool private_address = false;
  // For kVpi: the client port on the exchange keeps one shared address for
  // all clouds (detectable overlap) vs. per-cloud /30s from each provider.
  bool shared_port_address = false;
  // Fig. 2 ambiguity: the interconnect /30 was allocated by the cloud (true)
  // or by the client (false).
  bool cloud_provided_subnet = false;
  // Interfaces on the interconnect link: the cloud-side border interface and
  // the client-side border interface (the true CBI for this link).
  InterfaceId cloud_interface;
  InterfaceId client_interface;
  // Redundant BGP session over the same L2 fabric to a second cloud router
  // (common at IXPs and cloud exchanges). The client side reuses the same
  // port address, so the one CBI is observed behind several cloud routers —
  // the §7.4 connectivity that stitches the ICG together.
  LinkId secondary_link;
  // Prefixes the client announces to the cloud over this interconnect; this
  // is what the cloud's FIB installs and therefore what the interconnect can
  // "reach" (the Fig. 6 reachable-/24 feature).
  std::vector<Prefix> announced_to_cloud;
};

}  // namespace cloudmap
