// The World: the complete ground-truth state of the synthetic Internet plus
// the lookup indices the data plane and control plane need. Built once by
// TopologyGenerator, then treated as immutable by everything downstream.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "net/ids.h"
#include "net/ipv4.h"
#include "net/prefix.h"
#include "net/prefix_trie.h"
#include "topology/entities.h"

namespace cloudmap {

class World {
 public:
  // --- entity tables (filled by the generator) ---
  std::vector<Metro> metros;
  std::vector<ColoFacility> colos;
  std::vector<Ixp> ixps;
  std::vector<Region> regions;
  std::vector<AutonomousSystem> ases;
  std::vector<Router> routers;
  std::vector<Interface> interfaces;
  std::vector<Link> links;
  std::vector<GroundTruthInterconnect> interconnects;

  // --- arenas (SoA layout; see IdSpan in entities.h) ---
  // Backing pools for Router::interfaces and Router::extra_uplinks spans.
  // The interface pool is packed by seal(); the uplink pool is appended
  // in-order during construction via add_extra_uplink.
  std::vector<InterfaceId> router_iface_pool;
  std::vector<LinkId> router_uplink_pool;

  // ASes of each cloud provider (primary AS first).
  std::vector<AsId> cloud_ases[kCloudProviderCount];

  // --- indices ---
  // Ground-truth owner of every allocated prefix (announced, WHOIS-only,
  // IXP LANs, interconnect subnets).
  PrefixTrie<AsId> prefix_owner;
  // Router that terminates probes aimed into a prefix (the "hosting" edge
  // router for that address block).
  PrefixTrie<RouterId> hosting_router;
  std::unordered_map<std::uint32_t, InterfaceId> interface_by_ip;
  std::unordered_map<std::uint32_t, AsId> as_by_asn;

  // --- accessors ---
  const Metro& metro(MetroId id) const { return metros[id.value]; }
  const ColoFacility& colo(ColoId id) const { return colos[id.value]; }
  const Ixp& ixp(IxpId id) const { return ixps[id.value]; }
  const Region& region(RegionId id) const { return regions[id.value]; }
  const AutonomousSystem& as_of(AsId id) const { return ases[id.value]; }
  const Router& router(RouterId id) const { return routers[id.value]; }
  const Interface& interface(InterfaceId id) const {
    return interfaces[id.value];
  }
  const Link& link(LinkId id) const { return links[id.value]; }

  // Primary AS of a cloud provider (e.g. Amazon's main ASN).
  AsId cloud_primary(CloudProvider provider) const {
    return cloud_ases[static_cast<std::size_t>(provider)].front();
  }

  bool is_cloud_as(AsId id, CloudProvider provider) const {
    for (AsId cloud : cloud_ases[static_cast<std::size_t>(provider)])
      if (cloud == id) return true;
    return false;
  }

  // Regions belonging to one provider, in table order.
  std::vector<RegionId> regions_of(CloudProvider provider) const;

  // AS owner of a router (by its owner field).
  AsId router_owner(RouterId id) const { return routers[id.value].owner; }

  // Interfaces of a router, resolved out of the arena (valid after seal()).
  IdSpanView<InterfaceId> router_interfaces(RouterId id) const {
    const IdSpan span = routers[id.value].interfaces;
    return IdSpanView<InterfaceId>(router_iface_pool.data() + span.first,
                                   span.count);
  }

  // Extra backbone uplinks of a cloud border router.
  IdSpanView<LinkId> router_extra_uplinks(const Router& router) const {
    return IdSpanView<LinkId>(
        router_uplink_pool.data() + router.extra_uplinks.first,
        router.extra_uplinks.count);
  }

  // Interface lookup by address; invalid id when unknown.
  InterfaceId find_interface(Ipv4 address) const;

  // AS that owns the address block containing `address` (ground truth);
  // invalid AsId when the address is unallocated.
  AsId owner_of(Ipv4 address) const;

  // Geographic location of a router's metro.
  const GeoPoint& router_location(RouterId id) const {
    return metros[routers[id.value].metro.value].location;
  }

  // The far-end interface of a link relative to `from`.
  InterfaceId link_other_side(LinkId link_id, InterfaceId from) const {
    const Link& l = links[link_id.value];
    return (l.side_a == from) ? l.side_b : l.side_a;
  }

  // All /24 prefixes of allocated, publicly probeable address space —
  // the round-1 sweep targets (§3). Excludes cloud-internal private space.
  std::vector<Prefix> probeable_slash24s() const;

  // --- registration helpers used by the generator ---
  InterfaceId add_interface(RouterId router_id, Ipv4 address, LinkId link_id);
  LinkId add_link(InterfaceId a, InterfaceId b, LinkKind kind,
                  double latency_ms);
  // Create a point-to-point link between two routers, minting one interface
  // on each side with the given addresses. Returns the link id.
  LinkId connect(RouterId router_a, Ipv4 address_a, RouterId router_b,
                 Ipv4 address_b, LinkKind kind, double latency_ms);
  // Record an extra backbone uplink for a router. Appends to the shared
  // uplink arena, so all of one router's uplinks must be added before any
  // other router's (the generator builds borders one at a time).
  void add_extra_uplink(RouterId router_id, LinkId link);

  // Pack the router→interface arena from the interface table. Must run after
  // the last add_interface and before anything resolves Router::interfaces
  // spans; the generator calls it at the end of construction. Per-router
  // interface order is insertion order (== global interface index order).
  void seal();

  // Internal consistency check (used by tests): every interface belongs to
  // its router's list, link endpoints agree, prefix owners exist, etc.
  // Returns an empty string when consistent, else a description of the
  // first violation found.
  std::string validate() const;
};

}  // namespace cloudmap
