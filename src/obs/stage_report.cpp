#include "obs/stage_report.h"

namespace cloudmap {

const char* to_string(StageId stage) {
  switch (stage) {
    case StageId::kRound1: return "round1";
    case StageId::kRound2: return "round2";
    case StageId::kHeuristics: return "heuristics";
    case StageId::kAliasVerification: return "alias_verification";
    case StageId::kVpiDetection: return "vpi_detection";
    case StageId::kAnchors: return "anchors";
    case StageId::kPinning: return "pinning";
  }
  return "unknown";
}

const std::array<StageId, kStageCount>& all_stages() {
  static const std::array<StageId, kStageCount> order = {
      StageId::kRound1,    StageId::kRound2,
      StageId::kHeuristics, StageId::kAliasVerification,
      StageId::kVpiDetection, StageId::kAnchors,
      StageId::kPinning,
  };
  return order;
}

}  // namespace cloudmap
