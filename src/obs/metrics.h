// Lock-cheap metrics primitives for the pipeline's observability layer:
// monotonic counters, last-write-wins gauges, and scoped wall-clock timers
// whose totals aggregate across threads.
//
// Design contract (what keeps this safe to sprinkle into hot paths):
//   * Handles (`Counter&`, `Timer&`) are stable for the registry's lifetime —
//     resolve a name once outside a loop, then bump the atomic inside it.
//     Name resolution takes a mutex; bumps are relaxed atomic adds.
//   * A disabled registry turns `add()`, `set_gauge()`, and `ScopedTimer`
//     into no-ops, so instrumented code needs no #ifdefs.
//   * Metrics are observational only. Nothing in this module may feed back
//     into inference: fabrics, round stats, and scores are bit-identical
//     with metrics on or off, at every thread count (the ParallelCampaign
//     identity tests enforce this).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/thread_annotations.h"

namespace cloudmap {

class MetricsRegistry {
 public:
  // A monotonic counter. Bumping is a relaxed atomic add — safe from any
  // thread, never a lock.
  struct Counter {
    std::atomic<std::uint64_t> value{0};
    void add(std::uint64_t delta = 1) {
      value.fetch_add(delta, std::memory_order_relaxed);
    }
  };

  // Accumulated wall-clock time. Many threads may time against the same
  // Timer concurrently; totals are the sum over all of them.
  struct Timer {
    std::atomic<std::uint64_t> total_ns{0};
    std::atomic<std::uint64_t> count{0};
  };

  explicit MetricsRegistry(bool enabled = true) : enabled_(enabled) {}
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  bool enabled() const noexcept { return enabled_; }

  // Deterministic mode: timers still count invocations but record zero
  // elapsed time (no clock is read), so the emitted artifact is
  // byte-identical across runs. Wall-clock gauges and stage wall_ms fields
  // are the Pipeline's responsibility (it zeroes them in this mode).
  void set_deterministic(bool deterministic) noexcept {
    deterministic_ = deterministic;
  }
  bool deterministic() const noexcept { return deterministic_; }

  // Stable handles, created on first use. Note: handles bypass the enabled
  // gate — hot paths that cache a handle should check enabled() themselves.
  Counter& counter(std::string_view name) CM_EXCLUDES(mutex_);
  Timer& timer(std::string_view name) CM_EXCLUDES(mutex_);

  // Gated conveniences (no-ops when disabled).
  void add(std::string_view name, std::uint64_t delta = 1)
      CM_EXCLUDES(mutex_) {
    if (enabled_) counter(name).add(delta);
  }
  void set_gauge(std::string_view name, double value) CM_EXCLUDES(mutex_);

  // Reads (0 / nullopt for names never touched).
  std::uint64_t counter_value(std::string_view name) const
      CM_EXCLUDES(mutex_);
  std::uint64_t timer_total_ns(std::string_view name) const
      CM_EXCLUDES(mutex_);
  std::uint64_t timer_count(std::string_view name) const CM_EXCLUDES(mutex_);
  std::optional<double> gauge(std::string_view name) const
      CM_EXCLUDES(mutex_);

  // A consistent, name-sorted copy of everything recorded so far.
  struct Snapshot {
    struct TimerRow {
      std::string name;
      std::uint64_t total_ns = 0;
      std::uint64_t count = 0;
    };
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<TimerRow> timers;
  };
  Snapshot snapshot() const CM_EXCLUDES(mutex_);

  // Times the enclosing scope into `registry.timer(name)`. Constructed from
  // a null or disabled registry it reads no clock and writes nothing.
  class ScopedTimer {
   public:
    ScopedTimer(MetricsRegistry* registry, std::string_view name) {
      if (registry != nullptr && registry->enabled()) {
        timer_ = &registry->timer(name);
        deterministic_ = registry->deterministic();
        if (!deterministic_) start_ = std::chrono::steady_clock::now();
      }
    }
    ScopedTimer(MetricsRegistry& registry, std::string_view name)
        : ScopedTimer(&registry, name) {}
    ScopedTimer(const ScopedTimer&) = delete;
    ScopedTimer& operator=(const ScopedTimer&) = delete;
    ~ScopedTimer() {
      if (timer_ == nullptr) return;
      if (!deterministic_) {
        const auto elapsed = std::chrono::steady_clock::now() - start_;
        timer_->total_ns.fetch_add(
            static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                    .count()),
            std::memory_order_relaxed);
      }
      timer_->count.fetch_add(1, std::memory_order_relaxed);
    }

   private:
    Timer* timer_ = nullptr;
    bool deterministic_ = false;
    std::chrono::steady_clock::time_point start_{};
  };

 private:
  bool enabled_;
  bool deterministic_ = false;
  // node-based maps keep handle references stable across insertions. The
  // maps are CM_GUARDED_BY the registry mutex: name resolution locks, while
  // the handles it returns are atomics bumped lock-free afterwards.
  mutable Mutex mutex_;
  std::map<std::string, Counter, std::less<>> counters_ CM_GUARDED_BY(mutex_);
  std::map<std::string, Timer, std::less<>> timers_ CM_GUARDED_BY(mutex_);
  std::map<std::string, double, std::less<>> gauges_ CM_GUARDED_BY(mutex_);
};

}  // namespace cloudmap
