#include "obs/emit.h"

#include <cstdio>
#include <cstdlib>
#include <ostream>

namespace cloudmap {

namespace {

// Shortest double representation that round-trips (%.17g is exact but ugly;
// try increasing precision until the value survives a parse).
std::string format_double(double value) {
  char buffer[64];
  for (int precision = 6; precision <= 17; ++precision) {
    std::snprintf(buffer, sizeof(buffer), "%.*g", precision, value);
    if (std::strtod(buffer, nullptr) == value) break;
  }
  return buffer;
}

void write_stage_json(std::ostream& out, const StageReport& report,
                      const char* indent) {
  out << indent << "\"" << to_string(report.id) << "\": {\n";
  out << indent << "  \"wall_ms\": " << format_double(report.wall_ms) << ",\n";
  out << indent << "  \"threads\": " << report.threads << ",\n";
  out << indent << "  \"workers\": " << report.workers << ",\n";
  out << indent << "  \"worker_utilization\": "
      << format_double(report.worker_utilization) << ",\n";
  out << indent << "  \"targets\": " << report.targets << ",\n";
  out << indent << "  \"traceroutes\": " << report.traceroutes << ",\n";
  out << indent << "  \"probes\": " << report.probes << ",\n";
  out << indent << "  \"bgp_cache_hits\": " << report.bgp_cache_hits << ",\n";
  out << indent << "  \"bgp_cache_misses\": " << report.bgp_cache_misses
      << ",\n";
  out << indent << "  \"retries\": " << report.retries << ",\n";
  out << indent << "  \"backoff_waits\": " << report.backoff_waits << ",\n";
  out << indent << "  \"backoff_ticks\": " << report.backoff_ticks << ",\n";
  out << indent << "  \"recovered_targets\": " << report.recovered_targets
      << ",\n";
  out << indent << "  \"tallies\": {";
  bool first = true;
  for (const auto& [name, value] : report.tallies) {
    out << (first ? "\n" : ",\n") << indent << "    \"" << json_escape(name)
        << "\": " << format_double(value);
    first = false;
  }
  if (!first) out << "\n" << indent << "  ";
  out << "}\n" << indent << "}";
}

}  // namespace

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_metrics_json(std::ostream& out, const MetricsMeta& meta,
                        const std::vector<StageReport>& stages,
                        const MetricsRegistry& registry) {
  out << "{\n";
  out << "  \"schema_version\": 1,\n";
  out << "  \"tool\": \"cloudmap\",\n";
  out << "  \"seed\": " << meta.seed << ",\n";
  out << "  \"threads\": " << meta.threads << ",\n";
  out << "  \"subject\": \"" << json_escape(meta.subject) << "\",\n";

  out << "  \"stages\": {";
  bool first = true;
  for (const StageReport& report : stages) {
    out << (first ? "\n" : ",\n");
    write_stage_json(out, report, "    ");
    first = false;
  }
  if (!first) out << "\n  ";
  out << "},\n";

  const MetricsRegistry::Snapshot snap = registry.snapshot();
  out << "  \"counters\": {";
  first = true;
  for (const auto& [name, value] : snap.counters) {
    out << (first ? "\n" : ",\n") << "    \"" << json_escape(name)
        << "\": " << value;
    first = false;
  }
  if (!first) out << "\n  ";
  out << "},\n";

  out << "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    out << (first ? "\n" : ",\n") << "    \"" << json_escape(name)
        << "\": " << format_double(value);
    first = false;
  }
  if (!first) out << "\n  ";
  out << "},\n";

  out << "  \"timers\": {";
  first = true;
  for (const auto& row : snap.timers) {
    out << (first ? "\n" : ",\n") << "    \"" << json_escape(row.name)
        << "\": {\"total_ms\": "
        << format_double(static_cast<double>(row.total_ns) / 1e6)
        << ", \"count\": " << row.count << "}";
    first = false;
  }
  if (!first) out << "\n  ";
  out << "}\n";
  out << "}\n";
}

void write_metrics_csv(std::ostream& out,
                       const std::vector<StageReport>& stages) {
  out << "stage,metric,value\n";
  for (const StageReport& report : stages) {
    const char* stage = to_string(report.id);
    out << stage << ",wall_ms," << format_double(report.wall_ms) << "\n";
    out << stage << ",threads," << report.threads << "\n";
    out << stage << ",workers," << report.workers << "\n";
    out << stage << ",worker_utilization,"
        << format_double(report.worker_utilization) << "\n";
    out << stage << ",targets," << report.targets << "\n";
    out << stage << ",traceroutes," << report.traceroutes << "\n";
    out << stage << ",probes," << report.probes << "\n";
    out << stage << ",bgp_cache_hits," << report.bgp_cache_hits << "\n";
    out << stage << ",bgp_cache_misses," << report.bgp_cache_misses << "\n";
    out << stage << ",retries," << report.retries << "\n";
    out << stage << ",backoff_waits," << report.backoff_waits << "\n";
    out << stage << ",backoff_ticks," << report.backoff_ticks << "\n";
    out << stage << ",recovered_targets," << report.recovered_targets << "\n";
    for (const auto& [name, value] : report.tallies)
      out << stage << ",tally." << name << "," << format_double(value) << "\n";
  }
}

}  // namespace cloudmap
