// Machine-readable emitters for the observability layer: one JSON artifact
// (schema below, validated in CI against tools/metrics_schema.json) and a
// flat CSV for spreadsheet-style diffing.
//
// JSON schema (schema_version 1):
//   {
//     "schema_version": 1,
//     "tool": "cloudmap",
//     "seed": <u64>, "threads": <int>, "subject": "<cloud>",
//     "stages": {
//       "<stage>": {            // only stages that ran; canonical order
//         "wall_ms": <double>, "threads": <int>, "workers": <uint>,
//         "worker_utilization": <double>,
//         "targets": <u64>, "traceroutes": <u64>, "probes": <u64>,
//         "bgp_cache_hits": <u64>, "bgp_cache_misses": <u64>,
//         "tallies": { "<name>": <double>, ... }
//       }, ...
//     },
//     "counters": { "<name>": <u64>, ... },
//     "gauges":   { "<name>": <double>, ... },
//     "timers":   { "<name>": {"total_ms": <double>, "count": <u64>}, ... }
//   }
//
// CSV: `stage,metric,value` rows, one per numeric field and tally.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "obs/stage_report.h"

namespace cloudmap {

// Run-level context stamped into the artifact header.
struct MetricsMeta {
  std::uint64_t seed = 0;
  int threads = 0;
  std::string subject;
};

void write_metrics_json(std::ostream& out, const MetricsMeta& meta,
                        const std::vector<StageReport>& stages,
                        const MetricsRegistry& registry);

void write_metrics_csv(std::ostream& out,
                       const std::vector<StageReport>& stages);

// JSON string escaping (quotes, backslashes, control characters).
std::string json_escape(std::string_view text);

}  // namespace cloudmap
