// The pipeline's stage vocabulary and the per-stage accounting record.
//
// StageId names the seven ordered stages of the reproduction (two traceroute
// rounds §4, heuristic verification §5.1, alias verification §5.2, VPI
// detection §7.1, anchor identification and pinning §6.1). The Pipeline's
// table-driven stage graph keys on it, and every stage that runs leaves one
// StageReport behind: wall time, probe accounting, BGP route-cache traffic,
// worker-pool utilization, and the stage's own heuristic tallies.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace cloudmap {

enum class StageId : std::uint8_t {
  kRound1 = 0,          // §4.1 full /24 sweep
  kRound2,              // §4.2 expansion round
  kHeuristics,          // §5.1 verification heuristics
  kAliasVerification,   // §5.2 alias-set consistency
  kVpiDetection,        // §7.1 multi-cloud overlap
  kAnchors,             // §6.1 anchor identification
  kPinning,             // §6.1 co-presence propagation
};

inline constexpr std::size_t kStageCount = 7;

inline constexpr std::size_t stage_index(StageId stage) {
  return static_cast<std::size_t>(stage);
}

// Stable machine-readable stage names ("round1", "alias_verification", ...);
// these are the keys of the emitted metrics artifact.
const char* to_string(StageId stage);

// Every stage in canonical (dependency-respecting) order.
const std::array<StageId, kStageCount>& all_stages();

// One stage's accounting, filled when the stage runs. Count fields are
// always populated (they restate the stage's artifact); wall-clock and
// utilization fields are measured only when metrics collection is enabled
// and read 0 otherwise.
struct StageReport {
  StageId id = StageId::kRound1;
  int threads = 0;       // configured worker knob (0 = hardware concurrency)
  unsigned workers = 0;  // workers the stage's pool actually used (0 = inline)
  double wall_ms = 0.0;
  // Probe accounting (0 for stages that send no probes).
  std::uint64_t targets = 0;
  std::uint64_t traceroutes = 0;
  std::uint64_t probes = 0;
  // BGP route-cache traffic attributed to this stage (lookup deltas).
  std::uint64_t bgp_cache_hits = 0;
  std::uint64_t bgp_cache_misses = 0;
  // Adaptive re-probing accounting (0 for stages that send no probes or
  // when the retry budget is 0): retry traces issued, backoff sleeps taken,
  // simulated probe slots spent waiting, and failed targets a retry
  // recovered (completed or yielded a candidate segment).
  std::uint64_t retries = 0;
  std::uint64_t backoff_waits = 0;
  std::uint64_t backoff_ticks = 0;
  std::uint64_t recovered_targets = 0;
  // busy / (wall × workers) over the stage's worker pool; 0 when the stage
  // ran inline or metrics were disabled.
  double worker_utilization = 0.0;
  // Stage-specific tallies (heuristic hit counts, anchor sources, ...),
  // name-sorted. Values are exact for counts below 2^53.
  std::vector<std::pair<std::string, double>> tallies;
};

}  // namespace cloudmap
