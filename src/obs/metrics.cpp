#include "obs/metrics.h"

namespace cloudmap {

MetricsRegistry::Counter& MetricsRegistry::counter(std::string_view name) {
  const MutexLock lock(&mutex_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  return counters_[std::string(name)];
}

MetricsRegistry::Timer& MetricsRegistry::timer(std::string_view name) {
  const MutexLock lock(&mutex_);
  const auto it = timers_.find(name);
  if (it != timers_.end()) return it->second;
  return timers_[std::string(name)];
}

void MetricsRegistry::set_gauge(std::string_view name, double value) {
  if (!enabled_) return;
  const MutexLock lock(&mutex_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) {
    it->second = value;
  } else {
    gauges_.emplace(std::string(name), value);
  }
}

std::uint64_t MetricsRegistry::counter_value(std::string_view name) const {
  const MutexLock lock(&mutex_);
  const auto it = counters_.find(name);
  return it == counters_.end()
             ? 0
             : it->second.value.load(std::memory_order_relaxed);
}

std::uint64_t MetricsRegistry::timer_total_ns(std::string_view name) const {
  const MutexLock lock(&mutex_);
  const auto it = timers_.find(name);
  return it == timers_.end()
             ? 0
             : it->second.total_ns.load(std::memory_order_relaxed);
}

std::uint64_t MetricsRegistry::timer_count(std::string_view name) const {
  const MutexLock lock(&mutex_);
  const auto it = timers_.find(name);
  return it == timers_.end()
             ? 0
             : it->second.count.load(std::memory_order_relaxed);
}

std::optional<double> MetricsRegistry::gauge(std::string_view name) const {
  const MutexLock lock(&mutex_);
  const auto it = gauges_.find(name);
  if (it == gauges_.end()) return std::nullopt;
  return it->second;
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  const MutexLock lock(&mutex_);
  Snapshot out;
  out.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_)
    out.counters.emplace_back(name,
                              counter.value.load(std::memory_order_relaxed));
  out.gauges.reserve(gauges_.size());
  for (const auto& [name, value] : gauges_) out.gauges.emplace_back(name, value);
  out.timers.reserve(timers_.size());
  for (const auto& [name, timer] : timers_) {
    Snapshot::TimerRow row;
    row.name = name;
    row.total_ns = timer.total_ns.load(std::memory_order_relaxed);
    row.count = timer.count.load(std::memory_order_relaxed);
    out.timers.push_back(std::move(row));
  }
  return out;
}

}  // namespace cloudmap
