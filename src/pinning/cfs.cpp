#include "pinning/cfs.h"

#include <unordered_set>

#include "net/geo.h"

namespace cloudmap {

ConstrainedFacilitySearch::ConstrainedFacilitySearch(Inputs inputs,
                                                     CfsOptions options)
    : in_(std::move(inputs)), opt_(options) {}

bool ConstrainedFacilitySearch::rtt_feasible(Ipv4 cbi, MetroId metro) {
  const InterfaceId iface = in_.world->find_interface(cbi);
  if (!iface.valid()) return false;
  const GeoPoint& candidate = in_.world->metro(metro).location;
  bool measured_any = false;
  double best_measured = 1e18;
  double best_geo = 0.0;
  for (std::size_t v = 0; v < in_.vps->size(); ++v) {
    const auto measured = in_.rtts->rtt(v, iface);
    if (!measured) continue;
    measured_any = true;
    const MetroId vp_metro =
        in_.world->region((*in_.vps)[v].region).metro;
    const GeoPoint& from = in_.world->metro(vp_metro).location;
    const double geo = rtt_ms(from, candidate, /*inflation=*/1.0);
    // Lower bound: nothing travels faster than light in fiber.
    if (*measured + opt_.rtt_slack_ms < geo) return false;
    if (*measured < best_measured) {
      best_measured = *measured;
      best_geo = geo;
    }
  }
  if (!measured_any) return false;
  // Upper bound from the closest vantage: the interface cannot be *much*
  // farther than the candidate explains (this is what remote peering
  // violates in the other direction — the tail adds delay that makes
  // far-away candidates look feasible and nearby ones infeasible).
  return best_measured <= best_geo * opt_.rtt_inflation_bound +
                              opt_.rtt_slack_ms + 1.5;
}

CfsResult ConstrainedFacilitySearch::run() {
  CfsResult result;
  // Facilities where the subject cloud is native (its published list).
  std::unordered_set<std::uint32_t> native;
  for (std::uint32_t c = 0; c < in_.world->colos.size(); ++c)
    if (in_.world->colos[c].is_native(in_.subject)) native.insert(c);

  std::unordered_set<std::uint32_t> done;
  for (const InferredSegment& segment : in_.fabric->segments()) {
    if (!done.insert(segment.cbi.value()).second) continue;
    const HopAnnotation annotation = in_.annotator->annotate(segment.cbi);
    Asn owner = annotation.asn;
    if (owner.is_unknown()) owner = segment.owner_hint;
    if (owner.is_unknown()) {
      ++result.unattributed;
      continue;
    }
    // Constraint 1: facilities listing the peer as tenant, where the cloud
    // is also present (native, or hosting the IXP the CBI peers at).
    std::vector<ColoId> candidates;
    for (const ColoId colo : in_.peeringdb->facilities(owner)) {
      if (native.count(colo.value) ||
          in_.world->colo(colo).has_cloud_exchange ||
          in_.world->colo(colo).ixp.valid())
        candidates.push_back(colo);
    }
    if (candidates.empty()) {
      ++result.no_tenant_candidates;
      continue;
    }
    // Constraint 2: RTT feasibility per candidate metro.
    std::vector<ColoId> feasible;
    for (const ColoId colo : candidates) {
      if (rtt_feasible(segment.cbi, in_.world->colo(colo).metro))
        feasible.push_back(colo);
    }
    if (feasible.empty()) {
      ++result.rtt_eliminated_all;
      continue;
    }
    // Deduplicate by metro: candidates in one metro count as one search
    // outcome only if they collapse to a single facility.
    if (feasible.size() == 1) {
      result.pinned.emplace(segment.cbi.value(), feasible.front());
    } else {
      ++result.ambiguous;
    }
  }
  return result;
}

CfsScore score_cfs(const World& world, const CfsResult& result,
                   CloudProvider subject) {
  CfsScore score;
  // True facility per client interface address (first match wins; shared
  // ports resolve to the same colo anyway).
  std::unordered_map<std::uint32_t, ColoId> truth;
  for (const GroundTruthInterconnect& ic : world.interconnects) {
    if (ic.cloud != subject || ic.private_address) continue;
    truth.emplace(world.interface(ic.client_interface).address.value(),
                  ic.colo);
  }
  for (const auto& [address, colo] : result.pinned) {
    const auto it = truth.find(address);
    if (it == truth.end()) continue;
    ++score.pinned;
    if (it->second == colo) ++score.facility_correct;
    if (world.colo(it->second).metro == world.colo(colo).metro)
      ++score.metro_correct;
  }
  return score;
}

}  // namespace cloudmap
