// Pinning evaluation (§6.2): 10-fold stratified cross-validation over the
// anchor set (70-30 train-test split, stratified by metro so thin metros
// are not emptied), reporting precision and recall of the propagation; plus
// geographic coverage against the cloud's published metro list; plus — a
// luxury the paper did not have — accuracy against the generator's ground
// truth.
#pragma once

#include <cstdint>
#include <vector>

#include "pinning/pinning.h"

namespace cloudmap {

struct CrossValidationResult {
  double precision_mean = 0.0;
  double precision_std = 0.0;
  double recall_mean = 0.0;
  double recall_std = 0.0;
  int folds = 0;
};

// Run `folds` rounds: in each, hold out `test_fraction` of anchors (metro-
// stratified), propagate from the rest, and score the held-out anchors.
CrossValidationResult cross_validate(Pinner& pinner, const AnchorSet& anchors,
                                     int folds = 10,
                                     double test_fraction = 0.3,
                                     std::uint64_t seed = 29);

struct CoverageResult {
  std::size_t cloud_metros = 0;    // metros the cloud is known to be in
  std::size_t covered = 0;         // of those, metros with pinned interfaces
  std::size_t pinned_metros = 0;   // total distinct metros pinned to
  std::vector<MetroId> missing;    // cloud metros with no pinned interface
};

CoverageResult geographic_coverage(const World& world, const PeeringDb& db,
                                   CloudProvider provider,
                                   const PinningResult& result);

struct GroundTruthAccuracy {
  std::size_t pinned = 0;
  std::size_t correct = 0;        // pinned metro == true router metro
  double accuracy = 0.0;
  std::size_t regional_assigned = 0;
  std::size_t regional_correct = 0;  // region metro is the true nearest
  double regional_accuracy = 0.0;
};

// Score metro pins against the routers' true metros, and regional
// assignments against the true nearest region.
GroundTruthAccuracy score_against_truth(const World& world,
                                        const PinningResult& result);

}  // namespace cloudmap
