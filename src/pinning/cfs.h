// Constrained facility search (CFS) — the pinning alternative of Giotsas et
// al. (CoNEXT'15) that §2 discusses. CFS pins an interconnection to a
// *facility* by intersecting constraints: the peer must be a listed tenant
// of the facility (PeeringDB), the facility must host the cloud (native
// list), and the candidate must be feasible under measured RTTs. When the
// intersection is a single facility, the interconnection is pinned.
//
// The paper argues CFS struggles in the cloud setting: a third of Amazon's
// peerings are invisible in BGP and PeeringDB listings are incomplete, so
// the constraint sets are often empty; and remote peering (the client
// router far from the facility) breaks the RTT feasibility check. This
// implementation lets the benches quantify both failure modes against the
// paper's co-presence method.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "controlplane/peeringdb.h"
#include "dataplane/ping.h"
#include "infer/annotate.h"
#include "infer/fabric.h"

namespace cloudmap {

struct CfsOptions {
  // Feasibility: the measured min-RTT from the best region must be within
  // [geo lower bound - slack, geo upper bound + slack] for the candidate.
  double rtt_slack_ms = 1.5;
  // Upper-bound inflation over pure propagation (queuing, inflated paths).
  double rtt_inflation_bound = 2.2;
};

struct CfsResult {
  // CBI address → the single facility that satisfied all constraints.
  std::unordered_map<std::uint32_t, ColoId> pinned;
  std::size_t no_tenant_candidates = 0;  // PeeringDB gave no facility
  std::size_t rtt_eliminated_all = 0;    // every candidate RTT-infeasible
  std::size_t ambiguous = 0;             // >1 candidate survived
  std::size_t unattributed = 0;          // CBI owner unknown
};

class ConstrainedFacilitySearch {
 public:
  struct Inputs {
    const Fabric* fabric = nullptr;
    const Annotator* annotator = nullptr;
    const PeeringDb* peeringdb = nullptr;
    const World* world = nullptr;  // public geography + native-colo list
    RttCampaign* rtts = nullptr;
    const std::vector<VantagePoint>* vps = nullptr;
    CloudProvider subject = CloudProvider::kAmazon;
  };

  ConstrainedFacilitySearch(Inputs inputs, CfsOptions options = {});

  CfsResult run();

 private:
  bool rtt_feasible(Ipv4 cbi, MetroId metro);

  Inputs in_;
  CfsOptions opt_;
};

// Scoring against ground truth: a facility pin is correct when the pinned
// colo is the true colo of the interconnection (remote peerings therefore
// count as wrong — CFS places the *interconnection*, but the client router
// is elsewhere, which is the ambiguity the paper calls out).
struct CfsScore {
  std::size_t pinned = 0;
  std::size_t facility_correct = 0;
  std::size_t metro_correct = 0;
  double facility_accuracy() const {
    return pinned == 0 ? 0.0
                       : static_cast<double>(facility_correct) /
                             static_cast<double>(pinned);
  }
  double metro_accuracy() const {
    return pinned == 0 ? 0.0
                       : static_cast<double>(metro_correct) /
                             static_cast<double>(pinned);
  }
};
CfsScore score_cfs(const World& world, const CfsResult& result,
                   CloudProvider subject);

}  // namespace cloudmap
