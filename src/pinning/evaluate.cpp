#include "pinning/evaluate.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "net/geo.h"
#include "util/rng.h"
#include "util/stats.h"

namespace cloudmap {

CrossValidationResult cross_validate(Pinner& pinner, const AnchorSet& anchors,
                                     int folds, double test_fraction,
                                     std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> precisions;
  std::vector<double> recalls;

  // Stratify anchor addresses by metro.
  std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> strata;
  for (const auto& [address, anchor] : anchors.anchors)
    strata[anchor.metro.value].push_back(address);
  for (auto& [metro, addresses] : strata) {
    (void)metro;
    std::sort(addresses.begin(), addresses.end());
  }

  for (int fold = 0; fold < folds; ++fold) {
    // Sample the test set stratum by stratum.
    std::unordered_set<std::uint32_t> test;
    for (auto& [metro, addresses] : strata) {
      (void)metro;
      std::vector<std::uint32_t> shuffled = addresses;
      rng.shuffle(shuffled);
      const std::size_t take = static_cast<std::size_t>(
          test_fraction * static_cast<double>(shuffled.size()));
      for (std::size_t i = 0; i < take; ++i) test.insert(shuffled[i]);
    }
    if (test.empty()) continue;

    AnchorSet train;
    for (const auto& [address, anchor] : anchors.anchors)
      if (!test.count(address)) train.anchors.emplace(address, anchor);

    const PinningResult result = pinner.propagate(train);
    std::size_t recalled = 0;
    std::size_t agreed = 0;
    for (const std::uint32_t address : test) {
      const auto pin = result.pins.find(address);
      if (pin == result.pins.end()) continue;
      ++recalled;
      if (pin->second.metro == anchors.anchors.at(address).metro) ++agreed;
    }
    recalls.push_back(static_cast<double>(recalled) /
                      static_cast<double>(test.size()));
    precisions.push_back(recalled == 0 ? 1.0
                                       : static_cast<double>(agreed) /
                                             static_cast<double>(recalled));
  }

  CrossValidationResult out;
  out.folds = static_cast<int>(precisions.size());
  out.precision_mean = mean(precisions);
  out.precision_std = stddev(precisions);
  out.recall_mean = mean(recalls);
  out.recall_std = stddev(recalls);
  return out;
}

CoverageResult geographic_coverage(const World& world, const PeeringDb& db,
                                   CloudProvider provider,
                                   const PinningResult& result) {
  CoverageResult out;
  std::unordered_set<std::uint32_t> pinned_metros;
  for (const auto& [address, pin] : result.pins) {
    (void)address;
    pinned_metros.insert(pin.metro.value);
  }
  out.pinned_metros = pinned_metros.size();
  for (const MetroId metro : db.cloud_metros(world, provider)) {
    ++out.cloud_metros;
    if (pinned_metros.count(metro.value)) {
      ++out.covered;
    } else {
      out.missing.push_back(metro);
    }
  }
  return out;
}

GroundTruthAccuracy score_against_truth(const World& world,
                                        const PinningResult& result) {
  GroundTruthAccuracy out;
  for (const auto& [address, pin] : result.pins) {
    const InterfaceId iface = world.find_interface(Ipv4(address));
    if (!iface.valid()) continue;
    ++out.pinned;
    const MetroId truth =
        world.routers[world.interface(iface).router.value].metro;
    if (truth == pin.metro) ++out.correct;
  }
  if (out.pinned > 0)
    out.accuracy =
        static_cast<double>(out.correct) / static_cast<double>(out.pinned);

  for (const auto& [address, region_value] : result.regional) {
    const InterfaceId iface = world.find_interface(Ipv4(address));
    if (!iface.valid()) continue;
    ++out.regional_assigned;
    const MetroId truth =
        world.routers[world.interface(iface).router.value].metro;
    // Correct when the assigned region is the geographically nearest region
    // of the same provider to the interface's true metro.
    const Region& assigned = world.region(RegionId{region_value});
    double best = 1e18;
    MetroId best_metro;
    for (const Region& region : world.regions) {
      if (region.provider != assigned.provider) continue;
      const double km = haversine_km(world.metro(truth).location,
                                     world.metro(region.metro).location);
      if (km < best) {
        best = km;
        best_metro = region.metro;
      }
    }
    if (best_metro == assigned.metro) ++out.regional_correct;
  }
  if (out.regional_assigned > 0)
    out.regional_accuracy = static_cast<double>(out.regional_correct) /
                            static_cast<double>(out.regional_assigned);
  return out;
}

}  // namespace cloudmap
