#include "pinning/pinning.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "net/geo.h"

namespace cloudmap {

const char* to_string(AnchorSource source) {
  switch (source) {
    case AnchorSource::kNone: return "none";
    case AnchorSource::kDns: return "dns";
    case AnchorSource::kIxp: return "ixp";
    case AnchorSource::kMetroFootprint: return "metro-footprint";
    case AnchorSource::kNativeColo: return "native-colo";
  }
  return "?";
}

Pinner::Pinner(Inputs inputs, PinningOptions options)
    : in_(std::move(inputs)), opt_(options) {}

std::optional<double> Pinner::rtt_from(std::size_t vp_index, Ipv4 address) {
  const InterfaceId iface = in_.world->find_interface(address);
  if (!iface.valid()) return std::nullopt;
  return in_.rtts->rtt(vp_index, iface);
}

std::optional<double> Pinner::segment_rtt_diff(
    const InferredSegment& segment) {
  const InterfaceId abi = in_.world->find_interface(segment.abi);
  const InterfaceId cbi = in_.world->find_interface(segment.cbi);
  if (!abi.valid() || !cbi.valid()) return std::nullopt;
  const auto best = in_.rtts->best_rtt(abi);
  if (!best) return std::nullopt;
  const auto cbi_rtt = in_.rtts->rtt(best->second, cbi);
  if (!cbi_rtt) return std::nullopt;
  return std::abs(*cbi_rtt - best->first);
}

void Pinner::merge_anchor(AnchorSet& out, Ipv4 address, MetroId metro,
                          AnchorSource source) {
  auto [it, inserted] = out.anchors.emplace(
      address.value(), Anchor{metro, source,
                              static_cast<std::uint8_t>(
                                  1u << static_cast<unsigned>(source))});
  if (inserted) return;
  Anchor& anchor = it->second;
  if (anchor.metro != metro) {
    // Conflicting evidence: drop the anchor entirely (conservative).
    out.anchors.erase(it);
    ++out.conflict_evidence;
    return;
  }
  anchor.source_mask |=
      static_cast<std::uint8_t>(1u << static_cast<unsigned>(source));
  ++out.multi_evidence;
}

void Pinner::anchor_from_dns(AnchorSet& out) {
  const std::size_t vp_count = in_.vps->size();
  for (const std::uint32_t cbi : in_.fabric->unique_cbis()) {
    const auto name = in_.dns->name_of(Ipv4(cbi));
    if (!name) continue;
    const auto metro = parse_dns_location(*name, *in_.world);
    if (!metro) continue;
    // RTT feasibility: no region may see the interface faster than light in
    // fiber allows for the claimed metro.
    const GeoPoint& claimed = in_.world->metro(*metro).location;
    bool feasible = true;
    bool seen = false;
    for (std::size_t v = 0; v < vp_count; ++v) {
      const auto measured = rtt_from(v, Ipv4(cbi));
      if (!measured) continue;
      seen = true;
      const MetroId vp_metro =
          in_.world->region((*in_.vps)[v].region).metro;
      const GeoPoint& from = in_.world->metro(vp_metro).location;
      // Lower bound with no path inflation at all.
      const double bound = rtt_ms(from, claimed, /*inflation=*/1.0);
      if (*measured + opt_.dns_rtt_slack_ms < bound) {
        feasible = false;
        break;
      }
    }
    if (!seen) continue;  // nothing measured; no basis for an anchor
    if (!feasible) {
      ++out.dns_rtt_excluded;
      continue;
    }
    merge_anchor(out, Ipv4(cbi), *metro, AnchorSource::kDns);
  }
}

void Pinner::anchor_from_ixp(AnchorSet& out) {
  // Group observed IXP CBIs by IXP.
  std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> members;
  for (const std::uint32_t cbi : in_.fabric->unique_cbis()) {
    const auto ixp = in_.peeringdb->ixp_of(Ipv4(cbi));
    if (ixp) members[ixp->value].push_back(cbi);
  }
  const std::size_t vp_count = in_.vps->size();
  for (const auto& [ixp_value, cbis] : members) {
    const Ixp& ixp = in_.world->ixp(IxpId{ixp_value});
    if (ixp.multi_metro()) {
      out.ixp_multi_metro_excluded += cbis.size();
      continue;
    }
    // minIXRTT / minIXRegion over all member interfaces.
    double min_rtt = 1e18;
    std::size_t min_region = 0;
    for (const std::uint32_t cbi : cbis) {
      for (std::size_t v = 0; v < vp_count; ++v) {
        const auto measured = rtt_from(v, Ipv4(cbi));
        if (measured && *measured < min_rtt) {
          min_rtt = *measured;
          min_region = v;
        }
      }
    }
    if (min_rtt >= 1e18) continue;
    for (const std::uint32_t cbi : cbis) {
      const auto measured = rtt_from(min_region, Ipv4(cbi));
      const bool local =
          measured && *measured <= min_rtt + opt_.ixp_local_slack_ms;
      if (!local) {
        ++out.ixp_remote_excluded;
        continue;
      }
      merge_anchor(out, Ipv4(cbi), ixp.metros.front(), AnchorSource::kIxp);
    }
  }
}

void Pinner::anchor_from_footprint(AnchorSet& out) {
  // ASes listed at facilities/IXPs of exactly one metro: all their CBIs pin
  // to that metro.
  std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> by_asn;
  for (const InferredSegment& segment : in_.fabric->segments()) {
    const HopAnnotation a = in_.annotator->annotate(segment.cbi);
    const Asn owner = !segment.owner_hint.is_unknown() &&
                              a.asn.is_unknown()
                          ? segment.owner_hint
                          : a.asn;
    if (owner.is_unknown()) continue;
    by_asn[owner.value].push_back(segment.cbi.value());
  }
  for (const auto& [asn, cbis] : by_asn) {
    const auto metros = in_.peeringdb->metro_footprint(*in_.world, Asn{asn});
    if (metros.size() != 1) continue;
    for (const std::uint32_t cbi : cbis)
      merge_anchor(out, Ipv4(cbi), metros.front(),
                   AnchorSource::kMetroFootprint);
  }
}

void Pinner::anchor_from_native(AnchorSet& out) {
  // ABIs within the min-RTT knee of some region pin to that region's metro
  // (the native colo nearest the VM).
  const std::size_t vp_count = in_.vps->size();
  for (const std::uint32_t abi : in_.fabric->unique_abis()) {
    double best = 1e18;
    std::size_t best_vp = 0;
    for (std::size_t v = 0; v < vp_count; ++v) {
      const auto measured = rtt_from(v, Ipv4(abi));
      if (measured && *measured < best) {
        best = *measured;
        best_vp = v;
      }
    }
    if (best <= opt_.native_knee_ms) {
      const MetroId metro =
          in_.world->region((*in_.vps)[best_vp].region).metro;
      merge_anchor(out, Ipv4(abi), metro, AnchorSource::kNativeColo);
    }
  }
}

void Pinner::filter_alias_conflicts(AnchorSet& out) {
  if (in_.aliases == nullptr) return;
  for (const auto& set : in_.aliases->sets) {
    MetroId agreed;
    bool conflict = false;
    for (const Ipv4 member : set) {
      const auto it = out.anchors.find(member.value());
      if (it == out.anchors.end()) continue;
      if (!agreed.valid()) {
        agreed = it->second.metro;
      } else if (agreed != it->second.metro) {
        conflict = true;
      }
    }
    if (!conflict) continue;
    for (const Ipv4 member : set) {
      if (out.anchors.erase(member.value()) > 0) ++out.conflict_alias;
    }
  }
}

AnchorSet Pinner::identify_anchors() {
  AnchorSet out;
  anchor_from_dns(out);
  anchor_from_ixp(out);
  anchor_from_footprint(out);
  anchor_from_native(out);
  filter_alias_conflicts(out);
  // Exclusive counts in confidence order.
  for (const auto& [address, anchor] : out.anchors) {
    (void)address;
    switch (anchor.source) {
      case AnchorSource::kDns: ++out.dns; break;
      case AnchorSource::kIxp: ++out.ixp; break;
      case AnchorSource::kMetroFootprint: ++out.metro_footprint; break;
      case AnchorSource::kNativeColo: ++out.native; break;
      case AnchorSource::kNone: break;
    }
  }
  return out;
}

PinningResult Pinner::propagate(const AnchorSet& anchors) {
  PinningResult result;
  for (const auto& [address, anchor] : anchors.anchors) {
    result.pins.emplace(address,
                        Pin{anchor.metro, PinRule::kAnchor, anchor.source, 0});
  }

  // Precompute the short segments (Rule 2 candidates).
  struct ShortLink {
    std::uint32_t a;
    std::uint32_t b;
  };
  std::vector<ShortLink> short_links;
  for (const InferredSegment& segment : in_.fabric->segments()) {
    const auto diff = segment_rtt_diff(segment);
    if (diff && *diff <= opt_.copresence_ms)
      short_links.push_back(
          ShortLink{segment.abi.value(), segment.cbi.value()});
  }

  bool changed = true;
  while (changed) {
    changed = false;
    ++result.rounds;

    // Rule 1: alias sets — unanimous pinned members extend to the rest.
    if (in_.aliases != nullptr) {
      for (const auto& set : in_.aliases->sets) {
        MetroId agreed;
        bool conflict = false;
        bool any_unpinned = false;
        for (const Ipv4 member : set) {
          const auto it = result.pins.find(member.value());
          if (it == result.pins.end()) {
            any_unpinned = true;
            continue;
          }
          if (!agreed.valid()) {
            agreed = it->second.metro;
          } else if (agreed != it->second.metro) {
            conflict = true;
          }
        }
        if (!agreed.valid() || !any_unpinned) continue;
        if (conflict) {
          ++result.propagation_conflicts;
          continue;
        }
        for (const Ipv4 member : set) {
          if (result.pins.count(member.value())) continue;
          result.pins.emplace(member.value(),
                              Pin{agreed, PinRule::kAliasSet,
                                  AnchorSource::kNone, result.rounds});
          ++result.pinned_by_alias;
          changed = true;
        }
      }
    }

    // Rule 2: short interconnection segments.
    for (const ShortLink& link : short_links) {
      const auto ia = result.pins.find(link.a);
      const auto ib = result.pins.find(link.b);
      if ((ia == result.pins.end()) == (ib == result.pins.end())) continue;
      const bool inserted =
          ia != result.pins.end()
              ? result.pins
                    .emplace(link.b, Pin{ia->second.metro, PinRule::kShortLink,
                                         AnchorSource::kNone, result.rounds})
                    .second
              : result.pins
                    .emplace(link.a, Pin{ib->second.metro, PinRule::kShortLink,
                                         AnchorSource::kNone, result.rounds})
                    .second;
      if (inserted) {
        ++result.pinned_by_rtt;
        changed = true;
      }
    }
  }

  // Regional fallback for the rest (Fig. 5): single-region visibility, or a
  // ≥ threshold ratio between the two lowest region min-RTTs.
  std::unordered_set<std::uint32_t> all_interfaces;
  for (const std::uint32_t a : in_.fabric->unique_abis())
    all_interfaces.insert(a);
  for (const std::uint32_t c : in_.fabric->unique_cbis())
    all_interfaces.insert(c);
  const std::size_t vp_count = in_.vps->size();
  for (const std::uint32_t address : all_interfaces) {
    if (result.pins.count(address)) continue;
    double best = 1e18;
    double second = 1e18;
    std::size_t best_vp = 0;
    int visible = 0;
    for (std::size_t v = 0; v < vp_count; ++v) {
      const auto measured = rtt_from(v, Ipv4(address));
      if (!measured) continue;
      ++visible;
      if (*measured < best) {
        second = best;
        best = *measured;
        best_vp = v;
      } else if (*measured < second) {
        second = *measured;
      }
    }
    if (visible == 0) continue;
    const std::uint32_t region =
        (*in_.vps)[best_vp].region.value;
    if (visible == 1) {
      result.regional.emplace(address, region);
      ++result.regional_single_visibility;
      continue;
    }
    const double ratio = best > 0.0 ? second / best : 1e9;
    result.rtt_ratios.push_back(std::min(ratio, 1e4));
    if (ratio >= opt_.ratio_threshold) {
      result.regional.emplace(address, region);
      ++result.regional_by_ratio;
    }
  }
  return result;
}

PinningResult Pinner::run() { return propagate(identify_anchors()); }

}  // namespace cloudmap
