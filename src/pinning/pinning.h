// Pinning (§6.1): geo-locating each end of every inferred interconnection at
// metro granularity. Two stages:
//
//   1. Anchors — interfaces with independently reliable locations, from four
//      evidence sources (in confidence order): DNS location hints (with an
//      RTT speed-of-light feasibility check), IXP association (excluding
//      multi-metro IXPs and remote members via the minIXRTT+2ms rule),
//      single-metro PeeringDB footprints, and native-colo ABIs (the <2 ms
//      min-RTT knee of Fig. 4a). Anchors with conflicting evidence, or that
//      conflict inside an alias set, are discarded (conservative).
//   2. Co-presence propagation — Rule 1 (alias sets share a facility) and
//      Rule 2 (interconnection segments with <2 ms min-RTT difference stay
//      within a metro), iterated to fixpoint with unanimity required.
//
// Interfaces still unpinned afterwards fall back to regional pinning via the
// min-RTT-ratio (≥1.5×) rule of Fig. 5.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "controlplane/dns.h"
#include "controlplane/peeringdb.h"
#include "dataplane/ping.h"
#include "infer/alias_verify.h"
#include "infer/annotate.h"
#include "infer/fabric.h"

namespace cloudmap {

enum class AnchorSource : std::uint8_t {
  kNone = 0,
  kDns,
  kIxp,
  kMetroFootprint,
  kNativeColo,
};
const char* to_string(AnchorSource source);

enum class PinRule : std::uint8_t {
  kAnchor = 0,
  kAliasSet,   // Rule 1
  kShortLink,  // Rule 2
};

struct PinningOptions {
  double copresence_ms = 2.0;     // Rule 2 / Fig. 4b knee
  double native_knee_ms = 2.0;    // Fig. 4a knee
  double ixp_local_slack_ms = 2.0;
  double dns_rtt_slack_ms = 0.5;  // tolerance on the feasibility bound
  double ratio_threshold = 1.5;   // Fig. 5 regional rule
};

struct Anchor {
  MetroId metro;
  AnchorSource source = AnchorSource::kNone;  // first (highest) source
  std::uint8_t source_mask = 0;               // all agreeing sources
};

struct AnchorSet {
  std::unordered_map<std::uint32_t, Anchor> anchors;  // by address
  // Exclusive counts in confidence order (Table 3, left half).
  std::size_t dns = 0, ixp = 0, metro_footprint = 0, native = 0;
  std::size_t multi_evidence = 0;        // anchors with >1 agreeing source
  std::size_t conflict_evidence = 0;     // dropped: sources disagreed
  std::size_t conflict_alias = 0;        // dropped: alias-set disagreement
  std::size_t dns_rtt_excluded = 0;      // DNS hints failing feasibility
  std::size_t ixp_remote_excluded = 0;   // remote IXP members
  std::size_t ixp_multi_metro_excluded = 0;
};

struct Pin {
  MetroId metro;
  PinRule rule = PinRule::kAnchor;
  AnchorSource anchor_source = AnchorSource::kNone;
  int round = 0;  // propagation round (0 = anchor)
};

struct PinningResult {
  std::unordered_map<std::uint32_t, Pin> pins;  // metro-level, by address
  std::size_t pinned_by_alias = 0;              // Rule 1 (exclusive)
  std::size_t pinned_by_rtt = 0;                // Rule 2 (exclusive)
  std::size_t propagation_conflicts = 0;        // unanimity violations
  int rounds = 0;

  // Regional fallback for interfaces unpinned at metro level.
  std::unordered_map<std::uint32_t, std::uint32_t> regional;  // addr→region
  std::size_t regional_single_visibility = 0;  // seen from one region only
  std::size_t regional_by_ratio = 0;           // min-RTT ratio ≥ threshold
  std::vector<double> rtt_ratios;              // the Fig. 5 sample
};

class Pinner {
 public:
  struct Inputs {
    const Fabric* fabric = nullptr;
    const Annotator* annotator = nullptr;
    const PeeringDb* peeringdb = nullptr;
    const DnsRegistry* dns = nullptr;
    const AliasSets* aliases = nullptr;
    const World* world = nullptr;  // public geography + native-colo list
    RttCampaign* rtts = nullptr;
    // Subject-cloud vantage points, same order as the RTT campaign's.
    const std::vector<VantagePoint>* vps = nullptr;
  };

  Pinner(Inputs inputs, PinningOptions options = {});

  // Stage 1: identify anchors (with consistency filtering).
  AnchorSet identify_anchors();

  // Stage 2: propagate from the given anchors to fixpoint, then apply the
  // regional fallback to what is left.
  PinningResult propagate(const AnchorSet& anchors);

  // Convenience: both stages.
  PinningResult run();

  // Measured min-RTT (ms) from the i-th vantage point to an address;
  // nullopt when unreachable. Exposed for benches (Fig. 4a/4b).
  std::optional<double> rtt_from(std::size_t vp_index, Ipv4 address);

  // Min-RTT difference between the two ends of a segment, measured from the
  // vantage point closest to the ABI (footnote 13); nullopt if unreachable.
  std::optional<double> segment_rtt_diff(const InferredSegment& segment);

 private:
  void anchor_from_dns(AnchorSet& out);
  void anchor_from_ixp(AnchorSet& out);
  void anchor_from_footprint(AnchorSet& out);
  void anchor_from_native(AnchorSet& out);
  void merge_anchor(AnchorSet& out, Ipv4 address, MetroId metro,
                    AnchorSource source);
  void filter_alias_conflicts(AnchorSet& out);

  Inputs in_;
  PinningOptions opt_;
};

}  // namespace cloudmap
