#include "bdrmap/bdrmap.h"

#include <algorithm>

namespace cloudmap {

Bdrmap::Bdrmap(const World& world, const Forwarder& forwarder,
               const BgpSnapshot& snapshot, const As2Org& as2org,
               CloudProvider subject, BdrmapOptions options)
    : world_(&world),
      forwarder_(&forwarder),
      snapshot_(&snapshot),
      as2org_(&as2org),
      subject_(subject),
      subject_org_(world.ases[world.cloud_primary(subject).value].org),
      options_(options) {
  // Target selection from BGP: bdrmap probes per announced *prefix* (guided
  // by the RIB), not per /24 — one probe into the first /24 of each prefix.
  std::unordered_set<std::uint32_t> seen;
  snapshot.origin_of.for_each([&](const Prefix& prefix, const Asn&) {
    const std::uint32_t first24 = prefix.network().value() & 0xFFFFFF00u;
    if (seen.insert(first24).second)
      targets_.push_back(Ipv4(first24).next(1));
  });
  std::sort(targets_.begin(), targets_.end());
}

void Bdrmap::run_region(RegionId region, std::uint64_t seed,
                        const BgpSnapshot& region_snapshot,
                        BdrmapRegionResult& out) {
  out.region = region;
  TracerouteEngine engine(*forwarder_, seed, options_.traceroute);
  const VantagePoint vp = VantagePoint::cloud_vm(
      subject_, region, world_->region(region).name);

  // Downstream-AS votes for the third-party heuristic, per unresolved CBI.
  std::unordered_map<std::uint32_t,
                     std::unordered_map<std::uint32_t, std::size_t>>
      downstream_votes;

  auto is_subject = [&](Asn asn) {
    return !asn.is_unknown() && as2org_->org_of(asn) == subject_org_;
  };

  // Per-record scratch, reused across targets: the record's hop storage and
  // the batched-annotation buffers grow once and stay.
  TracerouteRecord record;
  std::vector<Ipv4> batch_addresses;
  std::vector<const Asn*> batch_origins;
  std::vector<Asn> hop_asns;
  for (const Ipv4 target : targets_) {
    engine.trace_into(vp, target, record);
    // Resolve every responding hop plus the destination against the region
    // RIB in one batched LPM pass; both walks below read the result.
    batch_addresses.clear();
    for (const TracerouteHop& hop : record.hops)
      if (hop.responded) batch_addresses.push_back(hop.address);
    batch_addresses.push_back(record.destination);
    batch_origins.resize(batch_addresses.size());
    region_snapshot.origin_of.lookup_batch(
        batch_addresses.data(), batch_addresses.size(), batch_origins.data());
    hop_asns.assign(record.hops.size(), Asn{});
    std::size_t next_result = 0;
    for (std::size_t i = 0; i < record.hops.size(); ++i) {
      if (!record.hops[i].responded) continue;
      const Asn* origin = batch_origins[next_result++];
      if (origin != nullptr) hop_asns[i] = *origin;
    }
    const Asn dest_asn = batch_origins.back() == nullptr
                             ? Asn{}
                             : *batch_origins.back();

    // Walk: hops that are subject-owned or ASN 0 are "inside"; the first
    // hop with a foreign nonzero ASN is the CBI.
    std::size_t cbi_index = record.hops.size();
    Asn cbi_asn;
    std::size_t last_responding_inside = record.hops.size();
    for (std::size_t i = 0; i < record.hops.size(); ++i) {
      if (!record.hops[i].responded) continue;
      const Asn asn = hop_asns[i];
      if (asn.is_unknown() || is_subject(asn)) {
        last_responding_inside = i;
        continue;
      }
      cbi_index = i;
      cbi_asn = asn;
      break;
    }

    if (cbi_index < record.hops.size()) {
      if (last_responding_inside < cbi_index)
        out.abis.insert(record.hops[last_responding_inside].address.value());
      const std::uint32_t cbi = record.hops[cbi_index].address.value();
      auto [it, inserted] = out.cbi_owner.emplace(cbi, cbi_asn);
      if (!inserted && it->second.is_unknown()) it->second = cbi_asn;
      // Record downstream destinations for third-party resolution of other
      // interfaces on this path.
      continue;
    }

    // No foreign nonzero hop: if the trace went beyond the host network
    // (subject-announced space plus its private addressing, which bdrmap
    // knows belongs to the vantage network) into public ASN-0 territory,
    // bdrmap leaves an unresolved (AS0) border.
    std::size_t last_subject = record.hops.size();
    for (std::size_t i = 0; i < record.hops.size(); ++i) {
      if (!record.hops[i].responded) continue;
      const Ipv4 address = record.hops[i].address;
      if (is_subject(hop_asns[i]) || address.is_private() ||
          address.is_shared())
        last_subject = i;
    }
    if (last_subject == record.hops.size()) continue;
    std::size_t unresolved = record.hops.size();
    for (std::size_t i = last_subject + 1; i < record.hops.size(); ++i) {
      if (record.hops[i].responded) {
        unresolved = i;
        break;
      }
    }
    if (unresolved == record.hops.size()) continue;
    out.abis.insert(record.hops[last_subject].address.value());
    const std::uint32_t cbi = record.hops[unresolved].address.value();
    out.cbi_owner.emplace(cbi, Asn{});
    // Third-party votes: the destination's origin AS hints at the owner.
    if (!dest_asn.is_unknown()) ++downstream_votes[cbi][dest_asn.value];
  }

  // Third-party heuristic: an unresolved CBI takes the common downstream
  // origin AS — but, as in bdrmap proper, only when the evidence names a
  // *unique* network. Split or thin votes leave the owner at AS0 (the
  // paper's 0.32k unresolved CBIs).
  for (auto& [cbi, owner] : out.cbi_owner) {
    if (!owner.is_unknown()) continue;
    const auto votes = downstream_votes.find(cbi);
    if (votes == downstream_votes.end()) continue;
    std::uint32_t best = 0;
    std::size_t best_count = 0;
    bool tie = false;
    for (const auto& [asn, count] : votes->second) {
      if (count > best_count) {
        best_count = count;
        best = asn;
        tie = false;
      } else if (count == best_count) {
        tie = true;
      }
    }
    if (best != 0 && !tie && best_count >= 2) {
      owner = Asn{best};
      out.thirdparty_cbis.insert(cbi);
    }
  }
}

BdrmapResult Bdrmap::run() {
  BdrmapResult result;
  std::uint64_t seed = options_.seed;
  // Each per-region instance collects its own RIB from its VM; the views
  // differ in which (intermittently announced) prefixes they carry — the
  // BGP dependence that §8 blames for bdrmap's per-region inconsistency.
  const auto feeds = default_collector_feeds(*world_, 11);
  for (RegionId region : world_->regions_of(subject_)) {
    SnapshotOptions per_region;
    per_region.include_intermittent = false;
    per_region.intermittent_fraction = 0.10;
    per_region.intermittent_seed = options_.seed * 131 + region.value;
    const BgpSnapshot region_snapshot =
        build_snapshot(*world_, forwarder_->bgp(), feeds, per_region);
    BdrmapRegionResult region_result;
    run_region(region, ++seed, region_snapshot, region_result);
    result.regions.push_back(std::move(region_result));
  }

  // Merge and quantify inconsistencies.
  std::unordered_map<std::uint32_t, std::unordered_set<std::uint32_t>>
      owners_seen;
  for (const BdrmapRegionResult& region : result.regions) {
    for (const std::uint32_t abi : region.abis) result.abis.insert(abi);
    for (const auto& [cbi, owner] : region.cbi_owner) {
      result.cbis.insert(cbi);
      owners_seen[cbi].insert(owner.value);
      if (!owner.is_unknown()) result.owner_asns.insert(owner.value);
    }
    result.thirdparty_cbis += region.thirdparty_cbis.size();
  }
  for (const auto& [cbi, owners] : owners_seen) {
    if (owners.count(0) && owners.size() == 1) ++result.as0_owner_cbis;
    std::size_t resolved = owners.size() - (owners.count(0) ? 1 : 0);
    if (resolved > 1) ++result.multi_owner_cbis;
    if (result.abis.count(cbi)) ++result.abi_cbi_flips;
  }
  return result;
}

BdrmapComparison compare_with_fabric(
    const BdrmapResult& bdrmap, const Fabric& fabric,
    const std::unordered_set<std::uint32_t>& fabric_owner_asns) {
  BdrmapComparison out;
  const auto abis = fabric.unique_abis();
  const auto cbis = fabric.unique_cbis();
  for (const std::uint32_t abi : bdrmap.abis)
    if (abis.count(abi)) ++out.common_abis;
  for (const std::uint32_t cbi : bdrmap.cbis)
    if (cbis.count(cbi)) ++out.common_cbis;
  for (const std::uint32_t asn : bdrmap.owner_asns) {
    if (fabric_owner_asns.count(asn)) ++out.common_ases;
    else ++out.bdrmap_only_ases;
  }
  for (const std::uint32_t asn : fabric_owner_asns)
    if (!bdrmap.owner_asns.count(asn)) ++out.cloudmap_only_ases;
  return out;
}

}  // namespace cloudmap
