// A faithful-in-spirit reimplementation of bdrmap (Luckie et al., IMC'16)
// adapted to cloud vantage points, used as the §8 baseline. Key differences
// from the paper's own pipeline, mirrored here:
//
//   * bdrmap selects traceroute targets from BGP-announced prefixes and
//     annotates hops from RIB data only (no WHOIS fallback, no IXP prefix
//     list) — so WHOIS-only interconnect addressing and IXP LANs are ASN 0
//     to it;
//   * it runs *independently per region*, so per-region inferences can (and
//     do) disagree;
//   * unresolved client-side interfaces get owners via heuristics — the
//     "subsequent AS" rule and a third-party heuristic that assigns the
//     most common downstream AS — whose quality depends on BGP completeness.
//
// The comparison module quantifies the three §8 inconsistency classes:
// AS0-owned CBIs, CBIs with different owners from different regions, and
// interfaces flagged ABI in one region but CBI in another.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "controlplane/bgp.h"
#include "dataplane/traceroute.h"
#include "infer/fabric.h"

namespace cloudmap {

struct BdrmapRegionResult {
  RegionId region;
  std::unordered_set<std::uint32_t> abis;
  std::unordered_map<std::uint32_t, Asn> cbi_owner;  // Asn{0} = unresolved
  // CBIs whose owner came from the third-party heuristic.
  std::unordered_set<std::uint32_t> thirdparty_cbis;
};

struct BdrmapResult {
  std::vector<BdrmapRegionResult> regions;
  // Merged view.
  std::unordered_set<std::uint32_t> abis;
  std::unordered_set<std::uint32_t> cbis;
  std::unordered_set<std::uint32_t> owner_asns;
  // §8 inconsistency classes.
  std::size_t as0_owner_cbis = 0;
  std::size_t multi_owner_cbis = 0;
  std::size_t abi_cbi_flips = 0;
  std::size_t thirdparty_cbis = 0;
};

struct BdrmapOptions {
  std::uint64_t seed = 37;
  TracerouteOptions traceroute;
};

class Bdrmap {
 public:
  Bdrmap(const World& world, const Forwarder& forwarder,
         const BgpSnapshot& snapshot, const As2Org& as2org,
         CloudProvider subject, BdrmapOptions options = {});

  BdrmapResult run();

 private:
  void run_region(RegionId region, std::uint64_t seed,
                  const BgpSnapshot& region_snapshot,
                  BdrmapRegionResult& out);

  const World* world_;
  const Forwarder* forwarder_;
  const BgpSnapshot* snapshot_;
  const As2Org* as2org_;
  CloudProvider subject_;
  OrgId subject_org_;
  BdrmapOptions options_;
  std::vector<Ipv4> targets_;
};

// Agreement between bdrmap's merged view and the cloudmap fabric.
struct BdrmapComparison {
  std::size_t common_abis = 0;
  std::size_t common_cbis = 0;
  std::size_t common_ases = 0;
  std::size_t bdrmap_only_ases = 0;
  std::size_t cloudmap_only_ases = 0;
};
BdrmapComparison compare_with_fabric(
    const BdrmapResult& bdrmap, const Fabric& fabric,
    const std::unordered_set<std::uint32_t>& fabric_owner_asns);

}  // namespace cloudmap
