#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace cloudmap {

double mean(const std::vector<double>& sample) {
  if (sample.empty()) return 0.0;
  double total = 0.0;
  for (double v : sample) total += v;
  return total / static_cast<double>(sample.size());
}

double stddev(const std::vector<double>& sample) {
  if (sample.size() < 2) return 0.0;
  const double m = mean(sample);
  double accum = 0.0;
  for (double v : sample) accum += (v - m) * (v - m);
  return std::sqrt(accum / static_cast<double>(sample.size()));
}

double quantile(std::vector<double> sample, double q) {
  if (sample.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::sort(sample.begin(), sample.end());
  const double position = q * static_cast<double>(sample.size() - 1);
  const std::size_t lower = static_cast<std::size_t>(position);
  const double frac = position - static_cast<double>(lower);
  if (lower + 1 >= sample.size()) return sample.back();
  return sample[lower] * (1.0 - frac) + sample[lower + 1] * frac;
}

double cdf_at(const std::vector<double>& sample, double threshold) {
  if (sample.empty()) return 0.0;
  std::size_t below = 0;
  for (double v : sample) below += (v < threshold) ? 1 : 0;
  return static_cast<double>(below) / static_cast<double>(sample.size());
}

BoxStats box_stats(std::vector<double> sample) {
  BoxStats out;
  out.count = sample.size();
  if (sample.empty()) return out;
  std::sort(sample.begin(), sample.end());
  out.min = sample.front();
  out.max = sample.back();
  out.mean = mean(sample);
  auto at = [&](double q) {
    const double position = q * static_cast<double>(sample.size() - 1);
    const std::size_t lower = static_cast<std::size_t>(position);
    const double frac = position - static_cast<double>(lower);
    if (lower + 1 >= sample.size()) return sample.back();
    return sample[lower] * (1.0 - frac) + sample[lower + 1] * frac;
  };
  out.q1 = at(0.25);
  out.median = at(0.5);
  out.q3 = at(0.75);
  return out;
}

CdfSeries cdf_series(std::vector<double> sample,
                     const std::vector<double>& grid) {
  CdfSeries out;
  out.x = grid;
  out.fraction.assign(grid.size(), 0.0);
  if (sample.empty()) return out;
  std::sort(sample.begin(), sample.end());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const auto it =
        std::upper_bound(sample.begin(), sample.end(), grid[i]);
    out.fraction[i] = static_cast<double>(it - sample.begin()) /
                      static_cast<double>(sample.size());
  }
  return out;
}

std::vector<double> linspace(double lo, double hi, std::size_t points) {
  std::vector<double> out;
  if (points == 0) return out;
  if (points == 1) {
    out.push_back(lo);
    return out;
  }
  out.reserve(points);
  const double step = (hi - lo) / static_cast<double>(points - 1);
  for (std::size_t i = 0; i < points; ++i)
    out.push_back(lo + step * static_cast<double>(i));
  return out;
}

std::vector<double> logspace(double lo_exp, double hi_exp,
                             std::size_t points) {
  std::vector<double> out;
  for (double e : linspace(lo_exp, hi_exp, points))
    out.push_back(std::pow(10.0, e));
  return out;
}

double cdf_knee(const CdfSeries& series) {
  if (series.x.size() < 3) return series.x.empty() ? 0.0 : series.x.front();
  double best_drop = -1.0;
  double best_x = series.x.front();
  // The knee is where the CDF slope falls off fastest: maximize the decrease
  // of the forward difference.
  for (std::size_t i = 1; i + 1 < series.x.size(); ++i) {
    const double before = series.fraction[i] - series.fraction[i - 1];
    const double after = series.fraction[i + 1] - series.fraction[i];
    const double drop = before - after;
    if (drop > best_drop) {
      best_drop = drop;
      best_x = series.x[i];
    }
  }
  return best_x;
}

std::string quantile_summary(std::vector<double> sample) {
  char buffer[128];
  std::snprintf(buffer, sizeof(buffer), "p10=%.2f p50=%.2f p90=%.2f n=%zu",
                quantile(sample, 0.10), quantile(sample, 0.50),
                quantile(sample, 0.90), sample.size());
  return buffer;
}

}  // namespace cloudmap
