// Thread-pool / parallel-for utilities behind the multi-threaded campaign.
//
// The contract that matters everywhere these are used: the *decomposition*
// of work into items is fixed by the caller, results are indexed by item,
// and the thread count only decides how many workers drain the item queue.
// A run with `threads = 1` therefore executes the exact same items with the
// exact same per-item state as a run with N threads — determinism lives in
// the items, parallelism in the draining.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <limits>
#include <map>
#include <mutex>
#include <optional>
#include <thread>  // lint: thread-ok(this header IS the project's one sanctioned thread-spawning site)
#include <type_traits>
#include <utility>
#include <vector>

#include "util/thread_annotations.h"

namespace cloudmap {

// Utilization accounting for one parallel_for call, for the observability
// layer. `busy_ns` sums the time workers spent inside items; comparing it
// against `wall_ns * workers` exposes pool idle time (queue tail, uneven
// chunks). Collection costs two steady_clock reads per item, so it is
// opt-in: pass a PoolStats* only when metrics are wanted.
struct PoolStats {
  unsigned workers = 0;
  std::uint64_t items = 0;
  std::uint64_t wall_ns = 0;
  std::uint64_t busy_ns = 0;  // summed across workers
  double utilization() const noexcept {
    if (workers == 0 || wall_ns == 0) return 0.0;
    return static_cast<double>(busy_ns) /
           (static_cast<double>(wall_ns) * static_cast<double>(workers));
  }
};

// Resolve a user-facing thread knob: positive values are taken literally,
// anything else means "one worker per hardware thread".
inline unsigned resolve_threads(int requested) noexcept {
  if (requested > 0) return static_cast<unsigned>(requested);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1u : hw;
}

namespace detail {

// Captures the exception from the lowest-indexed failing item across
// workers. Lock discipline is compile-checked: `error_` / `index_` are
// CM_GUARDED_BY the mutex, so any future access outside record()/rethrow()
// fails the Clang -Wthread-safety build.
class ErrorCollector {
 public:
  void record(std::size_t index,
              std::exception_ptr error) CM_EXCLUDES(mutex_) {
    const MutexLock lock(&mutex_);
    if (index < index_) {
      index_ = index;
      error_ = std::move(error);
    }
  }

  // Single-threaded epilogue: call after every worker has joined.
  void rethrow_if_error() CM_EXCLUDES(mutex_) {
    std::exception_ptr error;
    {
      const MutexLock lock(&mutex_);
      error = error_;
    }
    if (error) std::rethrow_exception(error);
  }

 private:
  Mutex mutex_;
  std::exception_ptr error_ CM_GUARDED_BY(mutex_);
  std::size_t index_ CM_GUARDED_BY(mutex_) =
      std::numeric_limits<std::size_t>::max();
};

}  // namespace detail

// Run fn(0) … fn(n-1), each exactly once, across up to `threads` workers
// (0 → hardware_concurrency; never more workers than items). Items are
// claimed dynamically from a shared counter, so callers must not rely on
// which thread runs which item — only that every item runs. With one worker
// (or n <= 1) everything executes inline on the calling thread, in index
// order, with no threads spawned.
//
// Exceptions thrown by fn are captured; after all workers drain the queue,
// the exception from the lowest-indexed failing item is rethrown. Remaining
// items still run — items must therefore be independent.
//
// When `stats` is non-null, per-item wall time is accumulated into it (see
// PoolStats). Stats never change which items run or in what order — results
// are bit-identical with stats on or off.
template <typename Fn>
void parallel_for(std::size_t n, int threads, Fn&& fn,
                  PoolStats* stats = nullptr) {
  // lint: wall-clock-ok(PoolStats is observational wall-time accounting; it never feeds back into results)
  using Clock = std::chrono::steady_clock;
  const auto elapsed_ns = [](Clock::time_point from, Clock::time_point to) {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(to - from)
            .count());
  };
  if (stats != nullptr) *stats = PoolStats{};
  if (n == 0) return;
  const std::size_t workers =
      std::min<std::size_t>(resolve_threads(threads), n);
  const Clock::time_point wall_start =
      stats != nullptr ? Clock::now() : Clock::time_point{};
  if (stats != nullptr) {
    stats->workers = static_cast<unsigned>(workers);
    stats->items = n;
  }
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    if (stats != nullptr) {
      stats->wall_ns = elapsed_ns(wall_start, Clock::now());
      stats->busy_ns = stats->wall_ns;  // inline: the caller was the worker
    }
    return;
  }

  std::atomic<std::size_t> next{0};
  std::atomic<std::uint64_t> busy_ns{0};
  detail::ErrorCollector errors;
  auto drain = [&]() noexcept {
    std::uint64_t local_busy_ns = 0;
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      const Clock::time_point item_start =
          stats != nullptr ? Clock::now() : Clock::time_point{};
      try {
        fn(i);
      } catch (...) {
        errors.record(i, std::current_exception());
      }
      if (stats != nullptr)
        local_busy_ns += elapsed_ns(item_start, Clock::now());
    }
    if (stats != nullptr)
      busy_ns.fetch_add(local_busy_ns, std::memory_order_relaxed);
  };

  std::vector<std::thread> pool;  // lint: thread-ok(the one sanctioned pool)
  pool.reserve(workers - 1);
  for (std::size_t t = 1; t < workers; ++t) pool.emplace_back(drain);
  drain();  // the calling thread is worker 0
  for (std::thread& worker : pool) worker.join();
  if (stats != nullptr) {
    stats->wall_ns = elapsed_ns(wall_start, Clock::now());
    stats->busy_ns = busy_ns.load(std::memory_order_relaxed);
  }
  errors.rethrow_if_error();
}

// parallel_for that collects fn(i) into a vector indexed by i. The result
// order is the item order regardless of which worker produced what — the
// canonical-merge building block.
template <typename Fn>
auto parallel_transform(std::size_t n, int threads, Fn&& fn,
                        PoolStats* stats = nullptr)
    -> std::vector<std::decay_t<decltype(fn(std::size_t{0}))>> {
  std::vector<std::decay_t<decltype(fn(std::size_t{0}))>> out(n);
  parallel_for(n, threads, [&](std::size_t i) { out[i] = fn(i); }, stats);
  return out;
}

// Streaming variant of parallel_transform: produce(i) runs on the worker
// pool while consume(i, result) runs on the CALLING thread, strictly in
// item order, as soon as item i's result exists and items 0..i-1 have been
// consumed. Results are buffered in a reorder window bounded at twice the
// worker count (a worker that runs too far ahead of the consumer blocks on
// the window), so peak memory is O(workers), not O(n) — the property that
// keeps an Internet-scale campaign's RSS flat where parallel_transform
// would materialize every chunk's output before the first merge.
//
// Ordering and determinism match parallel_transform exactly: the consumer
// sees the same (index, result) sequence at every thread count, and with
// one worker everything runs inline with zero buffering. Exceptions follow
// parallel_for's contract — remaining items still run, the lowest-indexed
// failure is rethrown at the end; consume is skipped for failed items.
template <typename Produce, typename Consume>
void parallel_consume(std::size_t n, int threads, Produce&& produce,
                      Consume&& consume, PoolStats* stats = nullptr) {
  using R = std::decay_t<decltype(produce(std::size_t{0}))>;
  // lint: wall-clock-ok(PoolStats is observational wall-time accounting; it never feeds back into results)
  using Clock = std::chrono::steady_clock;
  const auto elapsed_ns = [](Clock::time_point from, Clock::time_point to) {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(to - from)
            .count());
  };
  if (stats != nullptr) *stats = PoolStats{};
  if (n == 0) return;
  const std::size_t workers =
      std::min<std::size_t>(resolve_threads(threads), n);
  const Clock::time_point wall_start =
      stats != nullptr ? Clock::now() : Clock::time_point{};
  if (stats != nullptr) {
    stats->workers = static_cast<unsigned>(workers);
    stats->items = n;
  }
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) consume(i, produce(i));
    if (stats != nullptr) {
      stats->wall_ns = elapsed_ns(wall_start, Clock::now());
      stats->busy_ns = stats->wall_ns;  // inline: the caller was the worker
    }
    return;
  }

  std::atomic<std::size_t> next{0};
  std::atomic<std::uint64_t> busy_ns{0};
  detail::ErrorCollector errors;
  // Reorder window: results parked until their index is the next to
  // consume. nullopt marks an item whose produce threw (consume skips it).
  std::mutex window_mutex;
  std::condition_variable ready_cv;   // signals the consumer: a result landed
  std::condition_variable space_cv;   // signals workers: the window drained
  std::map<std::size_t, std::optional<R>> window;
  std::size_t next_to_consume = 0;    // guarded by window_mutex
  const std::size_t window_cap = 2 * workers;

  auto drain = [&]() noexcept {
    std::uint64_t local_busy_ns = 0;
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      const Clock::time_point item_start =
          stats != nullptr ? Clock::now() : Clock::time_point{};
      std::optional<R> result;
      try {
        result.emplace(produce(i));
      } catch (...) {
        errors.record(i, std::current_exception());
      }
      if (stats != nullptr)
        local_busy_ns += elapsed_ns(item_start, Clock::now());
      {
        std::unique_lock<std::mutex> lock(window_mutex);
        // Never park more than the window allows — unless this item IS the
        // next to consume, which must always be insertable or the consumer
        // would starve behind a full window of later items.
        space_cv.wait(lock, [&] {
          return window.size() < window_cap || i == next_to_consume;
        });
        window.emplace(i, std::move(result));
      }
      ready_cv.notify_one();
    }
    if (stats != nullptr)
      busy_ns.fetch_add(local_busy_ns, std::memory_order_relaxed);
  };

  std::vector<std::thread> pool;  // lint: thread-ok(the one sanctioned pool)
  pool.reserve(workers);
  for (std::size_t t = 0; t < workers; ++t) pool.emplace_back(drain);

  // The calling thread is the consumer: pop index i as soon as it lands,
  // hand it to consume() outside the lock.
  for (std::size_t i = 0; i < n; ++i) {
    std::optional<R> result;
    {
      std::unique_lock<std::mutex> lock(window_mutex);
      ready_cv.wait(lock, [&] { return !window.empty() &&
                                       window.begin()->first == i; });
      result = std::move(window.begin()->second);
      window.erase(window.begin());
      next_to_consume = i + 1;
    }
    space_cv.notify_all();
    if (result.has_value()) consume(i, std::move(*result));
  }
  for (std::thread& worker : pool) worker.join();
  if (stats != nullptr) {
    stats->wall_ns = elapsed_ns(wall_start, Clock::now());
    stats->busy_ns = busy_ns.load(std::memory_order_relaxed);
  }
  errors.rethrow_if_error();
}

}  // namespace cloudmap
