// Clang thread-safety annotations (-Wthread-safety) for the concurrency
// contracts this repo promises: bit-identical fabrics, snapshots, and
// metrics at every thread count. The annotations turn lock discipline into
// a compile-time invariant — an unguarded access to a CM_GUARDED_BY member
// is a build error under Clang with CLOUDMAP_WERROR=ON — instead of a
// runtime hope that TSan happens to catch the interleaving.
//
// Everything expands to nothing on compilers without the attribute (gcc),
// so annotated code builds everywhere.
//
// libstdc++'s std::mutex carries no capability attributes, which means the
// analysis cannot see through std::lock_guard<std::mutex>. The annotated
// `Mutex` wrapper plus the `MutexLock` scoped guard below are therefore the
// project-standard lock vocabulary: use them (not raw std::mutex /
// std::lock_guard) in any class that wants checked lock discipline.
#pragma once

#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define CM_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef CM_THREAD_ANNOTATION
#define CM_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

// The lockable type itself.
#define CM_CAPABILITY(x) CM_THREAD_ANNOTATION(capability(x))
// RAII types whose constructor acquires and destructor releases.
#define CM_SCOPED_CAPABILITY CM_THREAD_ANNOTATION(scoped_lockable)
// Data members readable/writable only while the named mutex is held.
#define CM_GUARDED_BY(x) CM_THREAD_ANNOTATION(guarded_by(x))
// Pointer members whose *pointee* is guarded by the named mutex.
#define CM_PT_GUARDED_BY(x) CM_THREAD_ANNOTATION(pt_guarded_by(x))
// Functions that may only be called while holding the named mutex.
#define CM_REQUIRES(...) \
  CM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define CM_REQUIRES_SHARED(...) \
  CM_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
// Functions that acquire / release the named mutex.
#define CM_ACQUIRE(...) CM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define CM_RELEASE(...) CM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define CM_TRY_ACQUIRE(...) \
  CM_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
// Functions that must NOT be called while holding the named mutex
// (self-deadlock guard on public entry points that lock internally).
#define CM_EXCLUDES(...) CM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
// Functions returning a reference to a guarded capability.
#define CM_RETURN_CAPABILITY(x) CM_THREAD_ANNOTATION(lock_returned(x))
// Escape hatch. Every use must carry a comment explaining why the access
// is safe without the lock (and the cloudmap lint's review culture treats
// an unexplained one as a defect).
#define CM_NO_THREAD_SAFETY_ANALYSIS \
  CM_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace cloudmap {

// std::mutex with the capability attribute the analysis needs. Same cost,
// same semantics; only the type is visible to -Wthread-safety.
class CM_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() CM_ACQUIRE() { mutex_.lock(); }
  void unlock() CM_RELEASE() { mutex_.unlock(); }
  bool try_lock() CM_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

 private:
  std::mutex mutex_;
};

// Scoped guard over Mutex — the annotated std::lock_guard replacement.
class CM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mutex) CM_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_->lock();
  }
  ~MutexLock() CM_RELEASE() { mutex_->unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mutex_;
};

}  // namespace cloudmap
