// Small statistics toolkit used by the analysis modules and benches:
// summary statistics, quantiles, empirical CDFs, and boxplot five-number
// summaries (the paper reports CDFs in Figs. 4/5/7 and boxplots in Fig. 6).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace cloudmap {

// Mean of a sample; 0 for an empty sample.
double mean(const std::vector<double>& sample);

// Population standard deviation; 0 for samples of size < 2.
double stddev(const std::vector<double>& sample);

// Linear-interpolation quantile, q in [0,1]. The input need not be sorted.
double quantile(std::vector<double> sample, double q);

// Fraction of the sample strictly below the threshold (empirical CDF value).
double cdf_at(const std::vector<double>& sample, double threshold);

// Five-number summary plus mean, as used for Fig. 6's stacked boxplots.
struct BoxStats {
  double min = 0.0;
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double max = 0.0;
  double mean = 0.0;
  std::size_t count = 0;
};

BoxStats box_stats(std::vector<double> sample);

// An empirical CDF evaluated on a fixed grid of x-values; used by benches to
// print figure series in a diff-friendly tabular form.
struct CdfSeries {
  std::vector<double> x;
  std::vector<double> fraction;  // same length as x, non-decreasing
};

// Evaluate the CDF of `sample` at each point of `grid` (fraction <= x).
CdfSeries cdf_series(std::vector<double> sample, const std::vector<double>& grid);

// Convenience: an evenly spaced grid of `points` values across [lo, hi].
std::vector<double> linspace(double lo, double hi, std::size_t points);

// Log-spaced grid (base 10) from 10^lo_exp to 10^hi_exp.
std::vector<double> logspace(double lo_exp, double hi_exp, std::size_t points);

// Locate the "knee" of a CDF: the x on the grid with maximum second
// difference of the CDF fraction. The paper eyeballs knees at 2 ms
// (Figs. 4a/4b); this gives the benches an objective analogue.
double cdf_knee(const CdfSeries& series);

// Render a one-line sparkline-style summary "p10=.. p50=.. p90=.." for logs.
std::string quantile_summary(std::vector<double> sample);

}  // namespace cloudmap
