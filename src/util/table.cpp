#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace cloudmap {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::num(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

std::string TextTable::pct(double fraction, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f%%", precision,
                fraction * 100.0);
  return buffer;
}

std::string TextTable::kilo(double count, int precision) {
  char buffer[64];
  if (count >= 1000.0) {
    std::snprintf(buffer, sizeof(buffer), "%.*fk", precision, count / 1000.0);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.0f", count);
  }
  return buffer;
}

std::string TextTable::render(const std::string& title) const {
  std::vector<std::size_t> width(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c)
    width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::ostringstream out;
  if (!title.empty()) out << title << '\n';
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << cells[c];
      if (c + 1 < cells.size())
        out << std::string(width[c] - cells[c].size() + 2, ' ');
    }
    out << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c)
    total += width[c] + (c + 1 < width.size() ? 2 : 0);
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return out.str();
}

}  // namespace cloudmap
