// Deterministic pseudo-random number generation for reproducible simulation.
//
// All stochastic choices in cloudmap flow through Rng so that a single seed
// reproduces an entire world, measurement campaign, and analysis run bit for
// bit. The generator is xoshiro256** seeded via splitmix64, which is fast,
// has a 256-bit state, and passes BigCrush.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

namespace cloudmap {

// splitmix64 step; used to expand a 64-bit seed into generator state and to
// derive independent child seeds.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// xoshiro256** generator with convenience sampling helpers.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9d2c5680cafe1234ULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return next(); }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound) using Lemire's multiply-shift reduction.
  std::uint64_t bounded(std::uint64_t bound) noexcept {
    if (bound <= 1) return 0;
    const __uint128_t wide = static_cast<__uint128_t>(next()) * bound;
    return static_cast<std::uint64_t>(wide >> 64);
  }

  // Uniform integer in [lo, hi] inclusive. The span is computed in unsigned
  // arithmetic: `hi - lo + 1` as int64 overflows (UB) for extreme bounds
  // such as range(INT64_MIN, INT64_MAX), whose span does not fit in 64 bits
  // at all — that case degenerates to a raw 64-bit draw.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo);
    if (span == std::numeric_limits<std::uint64_t>::max())
      return static_cast<std::int64_t>(next());
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) +
                                     bounded(span + 1));
  }

  // Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  // Bernoulli trial with success probability p.
  bool chance(double p) noexcept { return uniform() < p; }

  // Standard normal via Marsaglia polar method (no caching; simple & exact).
  double normal() noexcept {
    double u = 0.0;
    double v = 0.0;
    double s = 0.0;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    return u * std::sqrt(-2.0 * std::log(s) / s);
  }

  // Exponential with the given mean.
  double exponential(double mean) noexcept {
    double u = uniform();
    if (u <= 0.0) u = 0x1.0p-53;
    return -mean * std::log(u);
  }

  // Pareto-distributed integer >= minimum with shape alpha; used for skewed
  // quantities such as AS customer-cone sizes and interface degrees.
  std::uint64_t pareto(std::uint64_t minimum, double alpha) noexcept {
    const double value =
        static_cast<double>(minimum) / std::pow(1.0 - uniform(), 1.0 / alpha);
    constexpr double kCap = 1e15;
    return static_cast<std::uint64_t>(value < kCap ? value : kCap);
  }

  // Pick an index with probability proportional to weights[i].
  std::size_t weighted(const std::vector<double>& weights) noexcept {
    double total = 0.0;
    for (double w : weights) total += w;
    double roll = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      roll -= weights[i];
      if (roll < 0.0) return i;
    }
    return weights.empty() ? 0 : weights.size() - 1;
  }

  // In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = bounded(i);
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  // Derive an independent child generator; used to give each subsystem its
  // own stream so that adding draws in one module does not perturb others.
  Rng fork(std::uint64_t stream_id) noexcept {
    std::uint64_t sm = next() ^ (stream_id * 0x9e3779b97f4a7c15ULL);
    return Rng(splitmix64(sm));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace cloudmap
