// Plain-text table renderer used by the bench binaries to print reproduced
// paper tables next to the published values in an aligned, diff-friendly way.
#pragma once

#include <string>
#include <vector>

namespace cloudmap {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  // Append a row; short rows are padded with empty cells.
  void add_row(std::vector<std::string> row);

  // Convenience for mixed content: formats doubles with the given precision.
  static std::string num(double value, int precision = 2);
  static std::string pct(double fraction, int precision = 1);
  // Counts rendered the way the paper does: "3.68k" style above 1000.
  static std::string kilo(double count, int precision = 2);

  // Render with column alignment, a header underline, and an optional title.
  std::string render(const std::string& title = "") const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cloudmap
