// Disjoint-set forest with path halving and union by size. Used to merge
// alias sets discovered from different vantage regions (§5.2 of the paper)
// and to compute connected components of the interface connectivity graph
// (§7.4).
#pragma once

#include <cstddef>
#include <numeric>
#include <vector>

namespace cloudmap {

class UnionFind {
 public:
  explicit UnionFind(std::size_t count = 0) { reset(count); }

  void reset(std::size_t count) {
    parent_.resize(count);
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
    size_.assign(count, 1);
    components_ = count;
  }

  std::size_t size() const noexcept { return parent_.size(); }
  std::size_t components() const noexcept { return components_; }

  std::size_t find(std::size_t element) noexcept {
    while (parent_[element] != element) {
      parent_[element] = parent_[parent_[element]];  // path halving
      element = parent_[element];
    }
    return element;
  }

  // Returns true if the two elements were in different sets.
  bool unite(std::size_t a, std::size_t b) noexcept {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    if (size_[a] < size_[b]) {
      const std::size_t tmp = a;
      a = b;
      b = tmp;
    }
    parent_[b] = a;
    size_[a] += size_[b];
    --components_;
    return true;
  }

  bool connected(std::size_t a, std::size_t b) noexcept {
    return find(a) == find(b);
  }

  // Size of the set containing `element`.
  std::size_t component_size(std::size_t element) noexcept {
    return size_[find(element)];
  }

  // Largest component size across the whole structure.
  std::size_t largest_component() noexcept {
    std::size_t best = 0;
    for (std::size_t i = 0; i < parent_.size(); ++i)
      if (find(i) == i && size_[i] > best) best = size_[i];
    return best;
  }

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> size_;
  std::size_t components_ = 0;
};

}  // namespace cloudmap
