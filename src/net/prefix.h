// CIDR prefix value type with the algebra the pipeline needs: containment,
// splitting into /24s (the sweep granularity of §3), iteration over member
// addresses, and canonical string form.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "net/ipv4.h"

namespace cloudmap {

class Prefix {
 public:
  constexpr Prefix() = default;
  // The network address is masked to the prefix length, so any member
  // address may be passed in.
  constexpr Prefix(Ipv4 address, std::uint8_t length)
      : network_(address.value() & mask_for(length)), length_(length) {}

  constexpr Ipv4 network() const noexcept { return Ipv4(network_); }
  constexpr std::uint8_t length() const noexcept { return length_; }
  constexpr auto operator<=>(const Prefix&) const = default;

  constexpr std::uint32_t mask() const noexcept { return mask_for(length_); }

  constexpr bool contains(Ipv4 address) const noexcept {
    return (address.value() & mask()) == network_;
  }

  constexpr bool contains(const Prefix& other) const noexcept {
    return other.length_ >= length_ && contains(other.network());
  }

  // Number of addresses covered (2^(32-len)); 0 means 2^32 for a /0.
  constexpr std::uint64_t size() const noexcept {
    return std::uint64_t{1} << (32 - length_);
  }

  constexpr Ipv4 first_address() const noexcept { return Ipv4(network_); }
  constexpr Ipv4 last_address() const noexcept {
    return Ipv4(network_ | ~mask());
  }

  // The enclosing /24 (or the prefix itself if already at least /24-long);
  // expansion probing targets whole /24s around discovered CBIs (§4.2).
  constexpr Prefix slash24() const noexcept {
    return Prefix(Ipv4(network_), length_ >= 24 ? length_ : std::uint8_t{24});
  }

  // Split into the two child prefixes one bit longer.
  std::pair<Prefix, Prefix> split() const;

  // All /24 subprefixes (the prefix itself if longer than /24).
  std::vector<Prefix> enumerate_slash24s() const;

  std::string to_string() const;
  static std::optional<Prefix> parse(std::string_view text);

 private:
  static constexpr std::uint32_t mask_for(std::uint8_t length) noexcept {
    return length == 0 ? 0u : ~std::uint32_t{0} << (32 - length);
  }

  std::uint32_t network_ = 0;
  std::uint8_t length_ = 0;
};

}  // namespace cloudmap
