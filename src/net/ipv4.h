// IPv4 address value type. A thin, strongly-typed wrapper over a host-order
// 32-bit integer with parsing/formatting and classification helpers for the
// address classes the paper treats specially (private/shared space, which
// Amazon uses internally, and multicast/broadcast space, which the sweep
// excludes — §3).
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace cloudmap {

class Ipv4 {
 public:
  constexpr Ipv4() = default;
  constexpr explicit Ipv4(std::uint32_t host_order) : value_(host_order) {}
  constexpr Ipv4(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                 std::uint8_t d)
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

  constexpr std::uint32_t value() const noexcept { return value_; }
  constexpr auto operator<=>(const Ipv4&) const = default;

  constexpr Ipv4 next(std::uint32_t step = 1) const noexcept {
    return Ipv4(value_ + step);
  }

  std::string to_string() const;
  static std::optional<Ipv4> parse(std::string_view text);

  // RFC 1918 private space: 10/8, 172.16/12, 192.168/16.
  constexpr bool is_private() const noexcept {
    return (value_ >> 24) == 10 ||
           (value_ >> 20) == ((172u << 4) | 1u) ||  // 172.16.0.0/12
           (value_ >> 16) == ((192u << 8) | 168u);
  }

  // RFC 6598 shared address space (CGN): 100.64/10.
  constexpr bool is_shared() const noexcept {
    return (value_ >> 22) == ((100u << 2) | 1u);  // 100.64.0.0/10
  }

  // 224/4 multicast plus 240/4 reserved, excluded from the probing sweep.
  constexpr bool is_multicast_or_reserved() const noexcept {
    return (value_ >> 28) >= 0xE;
  }

  constexpr bool is_unspecified() const noexcept { return value_ == 0; }

 private:
  std::uint32_t value_ = 0;
};

}  // namespace cloudmap
