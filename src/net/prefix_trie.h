// Binary radix trie keyed by CIDR prefixes with longest-prefix-match lookup.
// This is the workhorse behind IP→ASN annotation (§3), IXP-prefix membership
// tests, and WHOIS fallback: every hop of every traceroute is resolved
// through one of these tries.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "net/ipv4.h"
#include "net/prefix.h"

namespace cloudmap {

template <typename Value>
class PrefixTrie {
 public:
  PrefixTrie() : root_(std::make_unique<Node>()) {}

  // Deep copy (node-by-node clone). Lets a World — and with it a whole
  // longitudinal scenario step — be duplicated; tries are small relative to
  // the entity tables, so the recursive clone is not a hot path.
  PrefixTrie(const PrefixTrie& other)
      : root_(clone(other.root_.get())), size_(other.size_) {}
  PrefixTrie& operator=(const PrefixTrie& other) {
    if (this != &other) {
      root_ = clone(other.root_.get());
      size_ = other.size_;
    }
    return *this;
  }
  PrefixTrie(PrefixTrie&&) noexcept = default;
  PrefixTrie& operator=(PrefixTrie&&) noexcept = default;

  // Insert or overwrite the value attached to an exact prefix.
  void insert(const Prefix& prefix, Value value) {
    Node* node = walk_to(prefix, /*create=*/true);
    if (!node->value) ++size_;
    node->value = std::move(value);
  }

  // Remove an exact prefix; returns true if it was present.
  bool erase(const Prefix& prefix) {
    Node* node = walk_to(prefix, /*create=*/false);
    if (node == nullptr || !node->value) return false;
    node->value.reset();
    --size_;
    return true;
  }

  // Value attached to exactly this prefix, if any.
  const Value* exact(const Prefix& prefix) const {
    const Node* node = walk_to(prefix, /*create=*/false);
    return (node && node->value) ? &*node->value : nullptr;
  }

  // Mutable value for the prefix, default-constructed on first access.
  Value& at_or_default(const Prefix& prefix) {
    Node* node = walk_to(prefix, /*create=*/true);
    if (!node->value) {
      node->value.emplace();
      ++size_;
    }
    return *node->value;
  }

  // Longest-prefix match for an address: the most specific covering entry.
  const Value* lookup(Ipv4 address) const {
    const Node* node = root_.get();
    const Value* best = node->value ? &*node->value : nullptr;
    const std::uint32_t bits = address.value();
    for (int depth = 0; depth < 32 && node != nullptr; ++depth) {
      const std::size_t branch = (bits >> (31 - depth)) & 1u;
      node = node->child[branch].get();
      if (node != nullptr && node->value) best = &*node->value;
    }
    return best;
  }

  // As lookup(), but also reports the matched prefix.
  std::optional<std::pair<Prefix, Value>> lookup_entry(Ipv4 address) const {
    const Node* node = root_.get();
    std::optional<std::pair<Prefix, Value>> best;
    if (node->value) best = {Prefix(address, 0), *node->value};
    const std::uint32_t bits = address.value();
    for (int depth = 0; depth < 32 && node != nullptr; ++depth) {
      const std::size_t branch = (bits >> (31 - depth)) & 1u;
      node = node->child[branch].get();
      if (node != nullptr && node->value) {
        best = {Prefix(address, static_cast<std::uint8_t>(depth + 1)),
                *node->value};
      }
    }
    return best;
  }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  // Visit every (prefix, value) pair in address order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    visit(root_.get(), 0u, 0, fn);
  }

 private:
  struct Node {
    std::unique_ptr<Node> child[2];
    std::optional<Value> value;
  };

  static std::unique_ptr<Node> clone(const Node* node) {
    if (node == nullptr) return nullptr;
    auto out = std::make_unique<Node>();
    out->value = node->value;
    out->child[0] = clone(node->child[0].get());
    out->child[1] = clone(node->child[1].get());
    return out;
  }

  Node* walk_to(const Prefix& prefix, bool create) const {
    Node* node = root_.get();
    const std::uint32_t bits = prefix.network().value();
    for (int depth = 0; depth < prefix.length(); ++depth) {
      const std::size_t branch = (bits >> (31 - depth)) & 1u;
      if (node->child[branch] == nullptr) {
        if (!create) return nullptr;
        node->child[branch] = std::make_unique<Node>();
      }
      node = node->child[branch].get();
    }
    return node;
  }

  template <typename Fn>
  static void visit(const Node* node, std::uint32_t bits, int depth, Fn& fn) {
    if (node == nullptr) return;
    if (node->value)
      fn(Prefix(Ipv4(bits), static_cast<std::uint8_t>(depth)), *node->value);
    if (depth == 32) return;
    visit(node->child[0].get(), bits, depth + 1, fn);
    visit(node->child[1].get(),
          bits | (std::uint32_t{1} << (31 - depth)), depth + 1, fn);
  }

  std::unique_ptr<Node> root_;
  std::size_t size_ = 0;
};

}  // namespace cloudmap
