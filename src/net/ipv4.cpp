#include "net/ipv4.h"

#include <cstdio>

namespace cloudmap {

std::string Ipv4::to_string() const {
  char buffer[16];
  std::snprintf(buffer, sizeof(buffer), "%u.%u.%u.%u", (value_ >> 24) & 0xFF,
                (value_ >> 16) & 0xFF, (value_ >> 8) & 0xFF, value_ & 0xFF);
  return buffer;
}

std::optional<Ipv4> Ipv4::parse(std::string_view text) {
  std::uint32_t octets[4] = {0, 0, 0, 0};
  std::size_t index = 0;
  std::size_t digits = 0;
  for (char ch : text) {
    if (ch == '.') {
      if (digits == 0 || index >= 3) return std::nullopt;
      ++index;
      digits = 0;
    } else if (ch >= '0' && ch <= '9') {
      octets[index] = octets[index] * 10 + static_cast<std::uint32_t>(ch - '0');
      if (octets[index] > 255 || ++digits > 3) return std::nullopt;
    } else {
      return std::nullopt;
    }
  }
  if (index != 3 || digits == 0) return std::nullopt;
  return Ipv4(static_cast<std::uint8_t>(octets[0]),
              static_cast<std::uint8_t>(octets[1]),
              static_cast<std::uint8_t>(octets[2]),
              static_cast<std::uint8_t>(octets[3]));
}

}  // namespace cloudmap
