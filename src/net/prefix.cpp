#include "net/prefix.h"

#include <cstdio>

namespace cloudmap {

std::pair<Prefix, Prefix> Prefix::split() const {
  const std::uint8_t child_length = static_cast<std::uint8_t>(length_ + 1);
  const std::uint32_t high_bit = std::uint32_t{1} << (32 - child_length);
  return {Prefix(Ipv4(network_), child_length),
          Prefix(Ipv4(network_ | high_bit), child_length)};
}

std::vector<Prefix> Prefix::enumerate_slash24s() const {
  std::vector<Prefix> out;
  if (length_ >= 24) {
    out.push_back(*this);
    return out;
  }
  const std::uint64_t count = std::uint64_t{1} << (24 - length_);
  out.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    out.emplace_back(Ipv4(network_ + static_cast<std::uint32_t>(i << 8)),
                     std::uint8_t{24});
  }
  return out;
}

std::string Prefix::to_string() const {
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "%s/%u",
                Ipv4(network_).to_string().c_str(), length_);
  return buffer;
}

std::optional<Prefix> Prefix::parse(std::string_view text) {
  const std::size_t slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  const auto address = Ipv4::parse(text.substr(0, slash));
  if (!address) return std::nullopt;
  unsigned length = 0;
  const std::string_view length_text = text.substr(slash + 1);
  if (length_text.empty() || length_text.size() > 2) return std::nullopt;
  for (char ch : length_text) {
    if (ch < '0' || ch > '9') return std::nullopt;
    length = length * 10 + static_cast<unsigned>(ch - '0');
  }
  if (length > 32) return std::nullopt;
  return Prefix(*address, static_cast<std::uint8_t>(length));
}

}  // namespace cloudmap
