// Strongly-typed identifiers shared across the whole library. Raw integers
// for ASNs, organizations, and world-entity indices are easy to mix up; these
// wrappers make such bugs type errors.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>

namespace cloudmap {

// Autonomous System Number. Asn{0} means "unknown / unannounced", matching
// the paper's convention of assigning ASN 0 to private/shared address hops.
struct Asn {
  std::uint32_t value = 0;
  constexpr auto operator<=>(const Asn&) const = default;
  constexpr bool is_unknown() const noexcept { return value == 0; }
};

// CAIDA-style organization identifier; multiple ASNs (e.g. Amazon's eight)
// map to one OrgId.
struct OrgId {
  std::uint32_t value = 0;
  constexpr auto operator<=>(const OrgId&) const = default;
  constexpr bool is_unknown() const noexcept { return value == 0; }
};

// Indices into the World's entity tables. kInvalidIndex marks "none".
inline constexpr std::uint32_t kInvalidIndex = ~std::uint32_t{0};

struct MetroId {
  std::uint32_t value = kInvalidIndex;
  constexpr auto operator<=>(const MetroId&) const = default;
  constexpr bool valid() const noexcept { return value != kInvalidIndex; }
};

struct ColoId {
  std::uint32_t value = kInvalidIndex;
  constexpr auto operator<=>(const ColoId&) const = default;
  constexpr bool valid() const noexcept { return value != kInvalidIndex; }
};

struct IxpId {
  std::uint32_t value = kInvalidIndex;
  constexpr auto operator<=>(const IxpId&) const = default;
  constexpr bool valid() const noexcept { return value != kInvalidIndex; }
};

struct AsId {  // index into World::ases (distinct from the ASN itself)
  std::uint32_t value = kInvalidIndex;
  constexpr auto operator<=>(const AsId&) const = default;
  constexpr bool valid() const noexcept { return value != kInvalidIndex; }
};

struct RouterId {
  std::uint32_t value = kInvalidIndex;
  constexpr auto operator<=>(const RouterId&) const = default;
  constexpr bool valid() const noexcept { return value != kInvalidIndex; }
};

struct InterfaceId {
  std::uint32_t value = kInvalidIndex;
  constexpr auto operator<=>(const InterfaceId&) const = default;
  constexpr bool valid() const noexcept { return value != kInvalidIndex; }
};

struct LinkId {
  std::uint32_t value = kInvalidIndex;
  constexpr auto operator<=>(const LinkId&) const = default;
  constexpr bool valid() const noexcept { return value != kInvalidIndex; }
};

struct RegionId {
  std::uint32_t value = kInvalidIndex;
  constexpr auto operator<=>(const RegionId&) const = default;
  constexpr bool valid() const noexcept { return value != kInvalidIndex; }
};

// Checked narrowing for minting entity IDs from container sizes. IDs are
// 32-bit on purpose (half the footprint at Internet scale), so every mint
// site must refuse — loudly — once a table outgrows the 32-bit space rather
// than silently wrapping and aliasing two entities under one ID.
// kInvalidIndex is the reserved "none" sentinel and is rejected as well.
// `what` names the table being minted from, for the diagnostic.
template <typename Id>
Id narrow_id(std::size_t value, const char* what) {
  if (value >= kInvalidIndex) {
    throw std::length_error(std::string(what) +
                            ": entity count overflows 32-bit id space (" +
                            std::to_string(value) + ")");
  }
  return Id{static_cast<std::uint32_t>(value)};
}

// Checked 64→32-bit narrowing for derived numeric identifiers (e.g. ASN
// arithmetic) where every 32-bit value is representable but a wrap would
// still alias identities.
inline std::uint32_t narrow_u32(std::uint64_t value, const char* what) {
  if (value > 0xFFFFFFFFull) {
    throw std::length_error(std::string(what) + ": value overflows 32 bits (" +
                            std::to_string(value) + ")");
  }
  return static_cast<std::uint32_t>(value);
}

}  // namespace cloudmap

// Hash support so ids can key unordered containers.
namespace std {
template <>
struct hash<cloudmap::Asn> {
  size_t operator()(const cloudmap::Asn& id) const noexcept {
    return hash<uint32_t>{}(id.value);
  }
};
template <>
struct hash<cloudmap::OrgId> {
  size_t operator()(const cloudmap::OrgId& id) const noexcept {
    return hash<uint32_t>{}(id.value);
  }
};
template <>
struct hash<cloudmap::AsId> {
  size_t operator()(const cloudmap::AsId& id) const noexcept {
    return hash<uint32_t>{}(id.value);
  }
};
template <>
struct hash<cloudmap::InterfaceId> {
  size_t operator()(const cloudmap::InterfaceId& id) const noexcept {
    return hash<uint32_t>{}(id.value);
  }
};
template <>
struct hash<cloudmap::RouterId> {
  size_t operator()(const cloudmap::RouterId& id) const noexcept {
    return hash<uint32_t>{}(id.value);
  }
};
template <>
struct hash<cloudmap::MetroId> {
  size_t operator()(const cloudmap::MetroId& id) const noexcept {
    return hash<uint32_t>{}(id.value);
  }
};
}  // namespace std
