// Open-addressed hash map for the forwarding hot path. libstdc++'s
// unordered_map is node-based: every find chases a bucket pointer into a
// heap node, which is a guaranteed cache miss on the (common) negative
// probe. This map keeps keys and values in two flat arrays with linear
// probing, so a miss usually costs one cache line.
//
// Usage contract, mirroring FlatPrefixTrie: insert() while building, then
// freeze() exactly once; find() is valid only on a frozen map. Key 0 is
// reserved as the empty-slot sentinel and must never be inserted — both
// callers satisfy this structurally (interface addresses are non-zero, and
// router/AS pair keys would require a self-link between id-0 entities).
// Duplicate keys keep the first insertion, matching unordered_map::emplace.
//
// lint: hot-path
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/rng.h"

namespace cloudmap {

template <typename Key, typename Value>
class FlatHashMap {
 public:
  void insert(Key key, Value value) {
    assert(!frozen_);
    assert(key != Key{0});
    pending_.emplace_back(key, std::move(value));
  }

  // Builds the probe table. Capacity is the next power of two holding the
  // entries at <= 50% load, so probe sequences stay short.
  void freeze() {
    assert(!frozen_);
    std::size_t capacity = 16;
    while (capacity < pending_.size() * 2) capacity *= 2;
    keys_.assign(capacity, Key{0});
    values_.assign(capacity, Value{});
    mask_ = capacity - 1;
    for (const auto& [key, value] : pending_) {
      std::size_t slot = probe_start(key);
      while (keys_[slot] != Key{0} && keys_[slot] != key)
        slot = (slot + 1) & mask_;
      if (keys_[slot] == key) continue;  // first insertion wins
      keys_[slot] = key;
      values_[slot] = value;
      ++size_;
    }
    pending_.clear();
    pending_.shrink_to_fit();
    frozen_ = true;
  }

  bool frozen() const noexcept { return frozen_; }
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  const Value* find(Key key) const {
    assert(frozen_);
    std::size_t slot = probe_start(key);
    while (true) {
      const Key at = keys_[slot];
      if (at == key) return &values_[slot];
      if (at == Key{0}) return nullptr;
      slot = (slot + 1) & mask_;
    }
  }

 private:
  std::size_t probe_start(Key key) const {
    std::uint64_t state = static_cast<std::uint64_t>(key);
    return static_cast<std::size_t>(splitmix64(state)) & mask_;
  }

  std::vector<std::pair<Key, Value>> pending_;
  std::vector<Key> keys_;
  std::vector<Value> values_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
  bool frozen_ = false;
};

}  // namespace cloudmap
