#include "net/geo.h"

#include <cmath>

namespace cloudmap {

namespace {
constexpr double kEarthRadiusKm = 6371.0;
constexpr double kPi = 3.14159265358979323846;
// Speed of light in fiber: ~c * 2/3 = ~199,862 km/s ≈ 200 km/ms.
constexpr double kFiberKmPerMs = 200.0;

double radians(double degrees) { return degrees * kPi / 180.0; }
}  // namespace

double haversine_km(const GeoPoint& a, const GeoPoint& b) {
  const double lat1 = radians(a.latitude_deg);
  const double lat2 = radians(b.latitude_deg);
  const double dlat = lat2 - lat1;
  const double dlon = radians(b.longitude_deg - a.longitude_deg);
  const double h = std::sin(dlat / 2) * std::sin(dlat / 2) +
                   std::cos(lat1) * std::cos(lat2) * std::sin(dlon / 2) *
                       std::sin(dlon / 2);
  return 2.0 * kEarthRadiusKm * std::asin(std::sqrt(std::min(1.0, h)));
}

double propagation_delay_ms(const GeoPoint& a, const GeoPoint& b,
                            double inflation) {
  return haversine_km(a, b) * inflation / kFiberKmPerMs;
}

double rtt_ms(const GeoPoint& a, const GeoPoint& b, double inflation) {
  return 2.0 * propagation_delay_ms(a, b, inflation);
}

}  // namespace cloudmap
