// Flat array-backed multibit trie with longest-prefix-match lookup.
// lint: hot-path
//
// The pointer-chasing PrefixTrie walks up to 32 heap nodes per lookup; at
// campaign scale every traceroute hop pays that three times (BGP origin,
// WHOIS fallback, IXP membership). This trie trades build-time work and a
// fixed 256 KiB root table for lookups that touch at most three cache
// lines: a 16-bit root stride followed by two 8-bit strides, with values
// leaf-pushed into every covered slot so no backtracking is ever needed.
//
// Usage contract: insert() all entries, then freeze() exactly once before
// any lookup. A frozen trie is immutable and safe to share across threads.
// Build order does not matter — freeze() replays entries shortest-prefix
// first, so later (longer) prefixes override the slots of covering blocks,
// and re-inserting an identical prefix overwrites (last insert wins),
// matching PrefixTrie::insert semantics.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "net/ipv4.h"
#include "net/prefix.h"
#include "net/prefix_trie.h"

namespace cloudmap {

template <typename Value>
class FlatPrefixTrie {
 public:
  // Queue an entry for the build. Only valid before freeze().
  void insert(const Prefix& prefix, Value value) {
    assert(!frozen_);
    pending_.push_back(Pending{prefix, std::move(value), pending_.size()});
  }

  // Build the flat tables. Idempotent; required before any query.
  void freeze() {
    if (!frozen_) build();
  }
  bool frozen() const noexcept { return frozen_; }

  // Convert an existing binary trie (preserves its entry set exactly).
  static FlatPrefixTrie from(const PrefixTrie<Value>& trie) {
    FlatPrefixTrie out;
    trie.for_each([&](const Prefix& prefix, const Value& value) {
      out.insert(prefix, value);
    });
    out.freeze();
    return out;
  }

  // Longest-prefix match: the most specific covering entry, if any.
  const Value* lookup(Ipv4 address) const {
    const std::int32_t slot = find_slot(address);
    return slot >= 0 ? &entries_[slot].value : nullptr;
  }

  // As lookup(), but also reports the matched prefix.
  std::optional<std::pair<Prefix, Value>> lookup_entry(Ipv4 address) const {
    const std::int32_t slot = find_slot(address);
    if (slot < 0) return std::nullopt;
    const Entry& entry = entries_[slot];
    return std::make_pair(entry.prefix, entry.value);
  }

  // Batched LPM: out[i] receives lookup(addresses[i]). Amortizes the root
  // table's cache misses across independent queries (the loop has no
  // cross-iteration dependence, so the three strided loads pipeline).
  void lookup_batch(const Ipv4* addresses, std::size_t count,
                    const Value** out) const {
    assert(frozen_);
    for (std::size_t i = 0; i < count; ++i) out[i] = lookup(addresses[i]);
  }

  // Value attached to exactly this prefix, if any.
  const Value* exact(const Prefix& prefix) const {
    assert(frozen_);
    const auto it = std::lower_bound(
        entries_.begin(), entries_.end(), prefix,
        [](const Entry& entry, const Prefix& key) {
          return entry_key(entry.prefix) < entry_key(key);
        });
    if (it == entries_.end() || !(it->prefix == prefix)) return nullptr;
    return &it->value;
  }

  std::size_t size() const noexcept {
    assert(frozen_);
    return entries_.size();
  }
  bool empty() const noexcept { return size() == 0; }

  // Visit every (prefix, value) pair in (network, length) order — the same
  // pre-order sequence PrefixTrie::for_each produces.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    assert(frozen_);
    for (const Entry& entry : entries_) fn(entry.prefix, entry.value);
  }

 private:
  static constexpr std::int32_t kEmpty = -1;

  struct Pending {
    Prefix prefix;
    Value value;
    std::size_t order;  // insertion index; resolves duplicate prefixes
  };
  struct Entry {
    Prefix prefix;
    Value value;
  };

  // (network, length) sort key; pre-order over the binary trie.
  static std::uint64_t entry_key(const Prefix& prefix) {
    return (static_cast<std::uint64_t>(prefix.network().value()) << 8) |
           prefix.length();
  }

  static std::size_t block_base(std::int32_t slot) {
    return static_cast<std::size_t>(-2 - slot) * 256u;
  }

  // Entry index matched by the address, or kEmpty. At most three strided
  // loads; slots are either entry indices (>= 0), kEmpty, or child tags.
  std::int32_t find_slot(Ipv4 address) const {
    assert(frozen_);
    const std::uint32_t bits = address.value();
    std::int32_t slot = root_[bits >> 16];
    if (slot < kEmpty) {
      slot = blocks_[block_base(slot) + ((bits >> 8) & 0xFFu)];
      if (slot < kEmpty) slot = blocks_[block_base(slot) + (bits & 0xFFu)];
    }
    return slot;
  }

  // Allocate a 256-slot child block leaf-pushed with `inherited`, returning
  // its encoded slot tag.
  std::int32_t new_block(std::int32_t inherited) {
    const std::size_t id = blocks_.size() / 256u;
    blocks_.insert(blocks_.end(), 256u, inherited);
    return -2 - static_cast<std::int32_t>(id);
  }

  void build() {
    frozen_ = true;
    // Dedup: last insert of an exact prefix wins (PrefixTrie overwrite
    // semantics), then keep (network, length) order for for_each/exact.
    std::sort(pending_.begin(), pending_.end(),
              [](const Pending& a, const Pending& b) {
                const std::uint64_t ka = entry_key(a.prefix);
                const std::uint64_t kb = entry_key(b.prefix);
                return ka != kb ? ka < kb : a.order < b.order;
              });
    entries_.reserve(pending_.size());
    for (std::size_t i = 0; i < pending_.size(); ++i) {
      if (i + 1 < pending_.size() &&
          pending_[i + 1].prefix == pending_[i].prefix)
        continue;  // superseded by a later insert of the same prefix
      entries_.push_back(
          Entry{pending_[i].prefix, std::move(pending_[i].value)});
    }
    pending_.clear();
    pending_.shrink_to_fit();

    root_.assign(65536u, kEmpty);
    // Fill shortest-prefix first so longer prefixes override covered slots;
    // child blocks inherit (leaf-push) the covering value when created.
    std::vector<std::uint32_t> by_length(entries_.size());
    for (std::uint32_t i = 0; i < entries_.size(); ++i) by_length[i] = i;
    std::stable_sort(by_length.begin(), by_length.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                       return entries_[a].prefix.length() <
                              entries_[b].prefix.length();
                     });
    for (const std::uint32_t index : by_length) {
      const Prefix& prefix = entries_[index].prefix;
      const std::uint32_t bits = prefix.network().value();
      const int length = prefix.length();
      const std::int32_t tag = static_cast<std::int32_t>(index);
      if (length <= 16) {
        const std::size_t first = bits >> 16;
        const std::size_t span = std::size_t{1} << (16 - length);
        std::fill_n(root_.begin() + static_cast<std::ptrdiff_t>(first), span,
                    tag);
        continue;
      }
      std::int32_t l1 = root_[bits >> 16];
      if (l1 >= kEmpty) {
        l1 = new_block(l1);
        root_[bits >> 16] = l1;
      }
      const std::size_t l1_base = block_base(l1);
      if (length <= 24) {
        const std::size_t first = l1_base + ((bits >> 8) & 0xFFu);
        std::fill_n(blocks_.begin() + static_cast<std::ptrdiff_t>(first),
                    std::size_t{1} << (24 - length), tag);
        continue;
      }
      // Index, not reference: new_block() reallocates blocks_.
      const std::size_t l2_index = l1_base + ((bits >> 8) & 0xFFu);
      std::int32_t l2 = blocks_[l2_index];
      if (l2 >= kEmpty) {
        l2 = new_block(l2);
        blocks_[l2_index] = l2;
      }
      const std::size_t first = block_base(l2) + (bits & 0xFFu);
      std::fill_n(blocks_.begin() + static_cast<std::ptrdiff_t>(first),
                  std::size_t{1} << (32 - length), tag);
    }
  }

  bool frozen_ = false;
  std::vector<Pending> pending_;
  std::vector<Entry> entries_;           // (network, length) sorted
  std::vector<std::int32_t> root_;       // 2^16 slots, top-16-bit stride
  std::vector<std::int32_t> blocks_;     // 256-slot level-1/2 blocks
};

}  // namespace cloudmap
