// Geography and the latency model. Pinning (§6) leans entirely on RTTs being
// a function of distance: the 2 ms co-presence knee, the minIXRTT rule, and
// the min-RTT-ratio regional fallback all assume light-in-fiber propagation.
// This module provides coordinates, great-circle distance, and the
// distance→delay conversion the data plane uses.
#pragma once

#include <string>

namespace cloudmap {

struct GeoPoint {
  double latitude_deg = 0.0;
  double longitude_deg = 0.0;
};

// Great-circle distance in kilometres (haversine formula).
double haversine_km(const GeoPoint& a, const GeoPoint& b);

// One-way propagation delay in milliseconds for a fiber path between two
// points. Light in fiber travels at roughly 2/3 c and real paths are not
// geodesics, so we apply a path-inflation factor (default 1.6, consistent
// with published fiber-vs-geodesic studies).
double propagation_delay_ms(const GeoPoint& a, const GeoPoint& b,
                            double inflation = 1.6);

// Round-trip time in milliseconds for the same path.
double rtt_ms(const GeoPoint& a, const GeoPoint& b, double inflation = 1.6);

}  // namespace cloudmap
