#include "dataplane/ping.h"

#include <algorithm>

namespace cloudmap {

PingProber::PingProber(const Forwarder& forwarder, std::uint64_t seed,
                       int samples_per_target, double jitter_mean_ms)
    : forwarder_(&forwarder),
      rng_(seed),
      samples_(samples_per_target),
      jitter_mean_ms_(jitter_mean_ms) {}

std::optional<double> PingProber::min_rtt(const VantagePoint& vp,
                                          InterfaceId target) {
  const auto base = forwarder_->rtt_to_interface(vp, target);
  if (!base) return std::nullopt;
  double best = 1e18;
  for (int s = 0; s < samples_; ++s)
    best = std::min(best, *base + rng_.exponential(jitter_mean_ms_));
  return best;
}

std::vector<std::optional<double>> PingProber::min_rtt_matrix_row(
    const std::vector<VantagePoint>& vps, InterfaceId target) {
  std::vector<std::optional<double>> out;
  out.reserve(vps.size());
  for (const VantagePoint& vp : vps) out.push_back(min_rtt(vp, target));
  return out;
}

RttCampaign::RttCampaign(const Forwarder& forwarder,
                         std::vector<VantagePoint> vps, std::uint64_t seed)
    : prober_(forwarder, seed), vps_(std::move(vps)) {}

const std::vector<std::optional<double>>& RttCampaign::row(
    InterfaceId target) {
  auto it = cache_.find(target.value);
  if (it == cache_.end()) {
    it = cache_.emplace(target.value,
                        prober_.min_rtt_matrix_row(vps_, target)).first;
  }
  return it->second;
}

std::optional<double> RttCampaign::rtt(std::size_t vp_index,
                                       InterfaceId target) {
  return row(target)[vp_index];
}

std::optional<std::pair<double, std::size_t>> RttCampaign::best_rtt(
    InterfaceId target) {
  const auto& rtts = row(target);
  std::optional<std::pair<double, std::size_t>> best;
  for (std::size_t i = 0; i < rtts.size(); ++i) {
    if (!rtts[i]) continue;
    if (!best || *rtts[i] < best->first) best = {{*rtts[i], i}};
  }
  return best;
}

std::optional<std::pair<double, double>> RttCampaign::two_best_rtts(
    InterfaceId target) {
  const auto& rtts = row(target);
  double first = 1e18;
  double second = 1e18;
  int seen = 0;
  for (const auto& value : rtts) {
    if (!value) continue;
    ++seen;
    if (*value < first) {
      second = first;
      first = *value;
    } else if (*value < second) {
      second = *value;
    }
  }
  if (seen < 2) return std::nullopt;
  return {{first, second}};
}

}  // namespace cloudmap
