#include "dataplane/forwarding.h"

#include <algorithm>

#include "net/geo.h"
#include "util/rng.h"

namespace cloudmap {

Forwarder::Forwarder(const World& world, const BgpSimulator& sim)
    : world_(&world), sim_(&sim) {
  // Intra-AS and inter-AS link indices.
  for (std::uint32_t l = 0; l < world.links.size(); ++l) {
    const Link& link = world.links[l];
    const RouterId ra = world.interfaces[link.side_a.value].router;
    const RouterId rb = world.interfaces[link.side_b.value].router;
    if (link.kind == LinkKind::kIntraAs) {
      intra_links_.emplace(key(ra.value, rb.value), LinkId{l});
      intra_links_.emplace(key(rb.value, ra.value), LinkId{l});
    } else if (link.kind == LinkKind::kTransit ||
               link.kind == LinkKind::kPeer) {
      const AsId asa = world.router_owner(ra);
      const AsId asb = world.router_owner(rb);
      inter_as_links_.emplace(key(asa.value, asb.value), LinkId{l});
      inter_as_links_.emplace(key(asb.value, asa.value), LinkId{l});
    }
  }
  // Announced-prefix origin table (the BGP ground truth; collector snapshots
  // are a filtered view of this).
  for (const AutonomousSystem& as : world.ases)
    for (const Prefix& prefix : as.announced_prefixes)
      announced_origin_.insert(prefix, as.asn);

  // Cloud FIBs: per-interconnect announcements plus exact /32 routes for
  // both interconnect endpoints.
  for (std::uint32_t i = 0; i < world.interconnects.size(); ++i) {
    const GroundTruthInterconnect& ic = world.interconnects[i];
    if (ic.private_address) continue;
    auto& fib = cloud_fib_[static_cast<int>(ic.cloud)];
    const Ipv4 client_addr = world.interfaces[ic.client_interface.value].address;
    for (const Prefix& prefix : ic.announced_to_cloud) {
      fib.at_or_default(prefix).egress.push_back(ic.link);
      if (ic.secondary_link.valid())
        fib.at_or_default(prefix).egress.push_back(ic.secondary_link);
    }
    fib.at_or_default(Prefix(client_addr, 32)).egress.push_back(ic.link);
    if (ic.secondary_link.valid())
      fib.at_or_default(Prefix(client_addr, 32))
          .egress.push_back(ic.secondary_link);
  }
}

void Forwarder::append_link_hop(LinkId link, RouterId from_router,
                                std::vector<ForwardHop>& hops) const {
  const Link& l = world_->link(link);
  const InterfaceId a = l.side_a;
  const InterfaceId b = l.side_b;
  const InterfaceId arrive =
      world_->interface(a).router == from_router ? b : a;
  const double base = hops.empty() ? 0.0 : hops.back().oneway_ms;
  hops.push_back(ForwardHop{world_->interface(arrive).router, arrive,
                            base + l.latency_ms});
}

std::optional<LinkId> Forwarder::intra_link(RouterId a, RouterId b) const {
  const auto it = intra_links_.find(key(a.value, b.value));
  if (it == intra_links_.end()) return std::nullopt;
  return it->second;
}

std::optional<LinkId> Forwarder::inter_as_link(AsId a, AsId b) const {
  const auto it = inter_as_links_.find(key(a.value, b.value));
  if (it == inter_as_links_.end()) return std::nullopt;
  return it->second;
}

namespace {
// Deterministic per-(flow, link) jitter in [0, 1): ECMP hashing stand-in.
double flow_jitter(std::uint32_t flow_hash, std::uint32_t link) {
  std::uint64_t state = (static_cast<std::uint64_t>(flow_hash) << 32) ^
                        (link * 0x9e3779b97f4a7c15ULL);
  return static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-53;
}
}  // namespace

bool Forwarder::cloud_internal_chain(RegionId region, RouterId target,
                                     std::uint32_t flow_hash,
                                     std::vector<ForwardHop>& hops) const {
  const RouterId core = world_->region(region).core_router;
  if (target == core) return true;
  const GeoPoint& src = world_->router_location(core);
  // Climb upstream from the target toward a core, at each step taking the
  // attachment whose far end is closest to the source region — the border's
  // observed upstream interface (the ABI) therefore depends on where the
  // probe entered the backbone.
  std::vector<LinkId> chain;
  RouterId current = target;
  int guard = 0;
  while (world_->routers[current.value].uplink.valid()) {
    const Router& router = world_->routers[current.value];
    LinkId up = router.uplink;
    RouterId parent;
    {
      const Link& l = world_->link(up);
      const RouterId ra = world_->interface(l.side_a).router;
      const RouterId rb = world_->interface(l.side_b).router;
      parent = (ra == current) ? rb : ra;
    }
    // Score attachments by distance toward the source, with per-flow ECMP
    // jitter so near-equal choices split across destinations.
    auto score = [&](RouterId candidate, LinkId link) {
      const double km =
          candidate == core
              ? 0.0
              : haversine_km(src, world_->router_location(candidate));
      return km * (1.0 + 0.35 * flow_jitter(flow_hash, link.value)) +
             flow_jitter(flow_hash, link.value);
    };
    double best_score = score(parent, up);
    for (const LinkId extra : router.extra_uplinks) {
      const Link& l = world_->link(extra);
      const RouterId ra = world_->interface(l.side_a).router;
      const RouterId rb = world_->interface(l.side_b).router;
      const RouterId candidate = (ra == current) ? rb : ra;
      const double candidate_score = score(candidate, extra);
      if (candidate_score < best_score) {
        best_score = candidate_score;
        up = extra;
        parent = candidate;
      }
    }
    chain.push_back(up);
    current = parent;
    if (++guard > 32) return false;
  }
  // `current` is now a region core; hop across the backbone mesh if needed.
  if (current != core) {
    const auto mesh = intra_link(core, current);
    if (!mesh) return false;
    append_link_hop(*mesh, core, hops);
  }
  // Descend the chain toward the target.
  RouterId at = current;
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    append_link_hop(*it, at, hops);
    at = hops.back().router;
  }
  return at == target;
}

LinkId Forwarder::choose_egress(RegionId region,
                                const std::vector<LinkId>& candidates,
                                std::uint32_t flow_hash) const {
  const GeoPoint& src =
      world_->metro(world_->region(region).metro).location;
  LinkId best = candidates.front();
  double best_score = 1e18;
  for (LinkId link : candidates) {
    const Link& l = world_->link(link);
    // Cloud side is side_a by construction (the generator adds the border
    // interface first); use its router's metro for hot-potato choice, with
    // per-destination ECMP jitter splitting near-equal candidates.
    const RouterId border = world_->interface(l.side_a).router;
    const double km = haversine_km(src, world_->router_location(border));
    const double candidate_score =
        km * (1.0 + 0.35 * flow_jitter(flow_hash, link.value)) +
        flow_jitter(flow_hash, link.value);
    if (candidate_score < best_score) {
      best_score = candidate_score;
      best = link;
    }
  }
  return best;
}

PathOutcome Forwarder::walk_client_side(RouterId entry, Ipv4 dst,
                                        std::vector<ForwardHop>& hops) const {
  // Destination interface (if the target is an interface address) takes
  // priority over the hosting-prefix router.
  const InterfaceId dst_iface = world_->find_interface(dst);
  const Asn* origin_asn = announced_origin_.lookup(dst);
  AsId origin{};
  if (origin_asn != nullptr) {
    const auto it = world_->as_by_asn.find(origin_asn->value);
    if (it != world_->as_by_asn.end()) origin = it->second;
  } else if (dst_iface.valid()) {
    // Unannounced interconnect space: deliverable only when the walk is
    // already inside the owning AS (no BGP route exists toward it).
    origin = world_->router_owner(world_->interface(dst_iface).router);
    if (origin != world_->router_owner(entry)) return PathOutcome::kNoRoute;
  } else {
    return PathOutcome::kNoRoute;
  }

  RouterId current = entry;
  AsId current_as = world_->router_owner(entry);
  int guard = 0;
  while (current_as != origin) {
    if (++guard > 32) return PathOutcome::kNoRoute;
    const RouteEntry& route = sim_->routes_to(origin)[current_as.value];
    if (!route.has_route()) return PathOutcome::kNoRoute;
    const AsId next = route.next_hop;
    const auto link = inter_as_link(current_as, next);
    if (!link) return PathOutcome::kNoRoute;
    // Exit router of the current AS on that link.
    const Link& l = world_->link(*link);
    const RouterId ra = world_->interface(l.side_a).router;
    const RouterId rb = world_->interface(l.side_b).router;
    const RouterId exit = (world_->router_owner(ra) == current_as) ? ra : rb;
    if (exit != current) {
      const auto mesh = intra_link(current, exit);
      if (!mesh) return PathOutcome::kNoRoute;
      append_link_hop(*mesh, current, hops);
    }
    append_link_hop(*link, exit, hops);
    current = hops.back().router;
    current_as = next;
  }
  // Inside the origin AS: deliver to the interface's router, or to the
  // hosting router of the covering block.
  RouterId target;
  if (dst_iface.valid() &&
      world_->router_owner(world_->interface(dst_iface).router) == origin) {
    target = world_->interface(dst_iface).router;
  } else {
    const RouterId* hosting = world_->hosting_router.lookup(dst);
    if (hosting == nullptr) return PathOutcome::kNoRoute;
    target = *hosting;
  }
  if (target != current) {
    const auto mesh = intra_link(current, target);
    if (!mesh) return PathOutcome::kNoRoute;
    append_link_hop(*mesh, current, hops);
  }
  return PathOutcome::kDelivered;
}

ForwardPath Forwarder::path(const VantagePoint& vp, Ipv4 dst) const {
  ForwardPath out;
  if (vp.is_cloud()) {
    const Region& region = world_->region(vp.region);
    const RouterId core = region.core_router;
    // First hop: the VM's gateway (the region core's host-facing interface).
    out.hops.push_back(ForwardHop{core, region.vm_gateway, 0.25});

    const auto provider_index = static_cast<int>(vp.provider);
    const auto entry = cloud_fib_[provider_index].lookup(dst);
    if (entry != nullptr && !entry->egress.empty()) {
      // Prefer a direct route to the destination's origin AS over transit
      // re-announcements of the same prefix, then hot-potato.
      std::vector<LinkId> direct;
      const Asn* origin_asn = announced_origin_.lookup(dst);
      if (origin_asn != nullptr) {
        const auto as_it = world_->as_by_asn.find(origin_asn->value);
        if (as_it != world_->as_by_asn.end()) {
          for (LinkId link : entry->egress) {
            // A link is direct when its client side belongs to the origin.
            const Link& l = world_->link(link);
            const RouterId rb = world_->interface(l.side_b).router;
            if (world_->router_owner(rb) == as_it->second)
              direct.push_back(link);
          }
        }
      }
      const LinkId egress = choose_egress(
          vp.region, direct.empty() ? entry->egress : direct, dst.value());
      const Link& l = world_->link(egress);
      const RouterId border = world_->interface(l.side_a).router;
      if (!cloud_internal_chain(vp.region, border, dst.value(), out.hops)) {
        out.outcome = PathOutcome::kNoRoute;
        return out;
      }
      append_link_hop(egress, border, out.hops);
      out.egress_interconnect = egress;
      const RouterId client_router = out.hops.back().router;
      // Delivered if the target is this very interface/router; otherwise
      // continue the walk on the client side.
      const InterfaceId dst_iface = world_->find_interface(dst);
      if (dst_iface.valid() &&
          world_->interface(dst_iface).router == client_router) {
        out.outcome = PathOutcome::kDelivered;
      } else {
        out.outcome = walk_client_side(client_router, dst, out.hops);
      }
      return out;
    }
    // No egress FIB entry: cloud-internal destination?
    const InterfaceId iface = world_->find_interface(dst);
    if (iface.valid()) {
      const RouterId router = world_->interface(iface).router;
      const AsId owner = world_->router_owner(router);
      const OrgId cloud_org =
          world_->ases[world_->cloud_primary(vp.provider).value].org;
      if (world_->ases[owner.value].org == cloud_org) {
        if (cloud_internal_chain(vp.region, router, dst.value(), out.hops)) {
          out.outcome = PathOutcome::kDelivered;
          return out;
        }
      }
    }
    // Cloud-hosted block (VM space)?
    const RouterId* hosting = world_->hosting_router.lookup(dst);
    if (hosting != nullptr) {
      const AsId owner = world_->router_owner(*hosting);
      const OrgId cloud_org =
          world_->ases[world_->cloud_primary(vp.provider).value].org;
      if (world_->ases[owner.value].org == cloud_org &&
          cloud_internal_chain(vp.region, *hosting, dst.value(), out.hops)) {
        out.outcome = PathOutcome::kDelivered;
        return out;
      }
    }
    out.outcome = PathOutcome::kNoRoute;
    return out;
  }

  // Public-Internet vantage: start at the host router, no gateway hop.
  out.hops.push_back(ForwardHop{vp.host_router, InterfaceId{}, 0.0});
  out.outcome = walk_client_side(vp.host_router, dst, out.hops);
  return out;
}

std::optional<double> Forwarder::rtt_to_address(const VantagePoint& vp,
                                                Ipv4 target) const {
  const InterfaceId iface = world_->find_interface(target);
  if (!iface.valid()) return std::nullopt;
  return rtt_to_interface(vp, iface);
}

std::optional<double> Forwarder::rtt_to_interface(const VantagePoint& vp,
                                                  InterfaceId target) const {
  const Interface& iface = world_->interface(target);
  const ForwardPath p = path(vp, iface.address);
  if (p.outcome != PathOutcome::kDelivered || p.hops.empty())
    return std::nullopt;
  if (p.hops.back().router != iface.router) return std::nullopt;
  if (!vp.is_cloud() &&
      !world_->routers[iface.router.value].publicly_reachable)
    return std::nullopt;
  return 2.0 * p.hops.back().oneway_ms;
}

}  // namespace cloudmap
