#include "dataplane/forwarding.h"

#include <algorithm>
#include <array>

#include "net/geo.h"
#include "net/prefix_trie.h"
#include "util/rng.h"

namespace cloudmap {

Forwarder::Forwarder(const World& world, const BgpSimulator& sim)
    : world_(&world), sim_(&sim) {
  // Intra-AS and inter-AS link indices.
  for (std::uint32_t l = 0; l < world.links.size(); ++l) {
    const Link& link = world.links[l];
    const RouterId ra = world.interfaces[link.side_a.value].router;
    const RouterId rb = world.interfaces[link.side_b.value].router;
    if (link.kind == LinkKind::kIntraAs) {
      intra_links_.insert(key(ra.value, rb.value), LinkId{l});
      intra_links_.insert(key(rb.value, ra.value), LinkId{l});
    } else if (link.kind == LinkKind::kTransit ||
               link.kind == LinkKind::kPeer) {
      const AsId asa = world.router_owner(ra);
      const AsId asb = world.router_owner(rb);
      inter_as_links_.insert(key(asa.value, asb.value), LinkId{l});
      inter_as_links_.insert(key(asb.value, asa.value), LinkId{l});
    }
  }
  intra_links_.freeze();
  inter_as_links_.freeze();
  for (const auto& [address, iface] : world.interface_by_ip)
    iface_by_ip_.insert(address, iface);
  iface_by_ip_.freeze();
  // Announced-prefix origin table (the BGP ground truth; collector snapshots
  // are a filtered view of this).
  for (const AutonomousSystem& as : world.ases)
    for (const Prefix& prefix : as.announced_prefixes)
      announced_origin_.insert(prefix, as.asn);
  announced_origin_.freeze();

  // Cloud FIBs: per-interconnect announcements plus exact /32 routes for
  // both interconnect endpoints. Accumulated in a binary trie (incremental
  // at_or_default), then flattened for the lookup path.
  PrefixTrie<FibEntry> fib_build[kCloudProviderCount];
  for (std::uint32_t i = 0; i < world.interconnects.size(); ++i) {
    const GroundTruthInterconnect& ic = world.interconnects[i];
    if (ic.private_address) continue;
    auto& fib = fib_build[static_cast<int>(ic.cloud)];
    const Ipv4 client_addr = world.interfaces[ic.client_interface.value].address;
    for (const Prefix& prefix : ic.announced_to_cloud) {
      fib.at_or_default(prefix).egress.push_back(ic.link);
      if (ic.secondary_link.valid())
        fib.at_or_default(prefix).egress.push_back(ic.secondary_link);
    }
    fib.at_or_default(Prefix(client_addr, 32)).egress.push_back(ic.link);
    if (ic.secondary_link.valid())
      fib.at_or_default(Prefix(client_addr, 32))
          .egress.push_back(ic.secondary_link);
  }
  for (int p = 0; p < static_cast<int>(kCloudProviderCount); ++p)
    cloud_fib_[p] = FlatPrefixTrie<FibEntry>::from(fib_build[p]);

  // Per-link egress metadata for the choose_egress scan.
  link_border_router_.resize(world.links.size());
  link_client_owner_.resize(world.links.size());
  for (std::uint32_t l = 0; l < world.links.size(); ++l) {
    const Link& link = world.links[l];
    link_border_router_[l] = world.interfaces[link.side_a.value].router;
    link_client_owner_[l] =
        world.router_owner(world.interfaces[link.side_b.value].router);
  }

  // Distance memo: every per-hop score in cloud_internal_chain and
  // choose_egress reads these instead of recomputing the haversine trig.
  const std::size_t n_routers = world.routers.size();
  core_km_.resize(world.regions.size() * n_routers);
  metro_km_.resize(world.regions.size() * n_routers);
  for (std::uint32_t r = 0; r < world.regions.size(); ++r) {
    const GeoPoint& core =
        world.router_location(world.regions[r].core_router);
    const GeoPoint& metro = world.metro(world.regions[r].metro).location;
    double* core_row = &core_km_[r * n_routers];
    double* metro_row = &metro_km_[r * n_routers];
    for (std::uint32_t i = 0; i < n_routers; ++i) {
      const GeoPoint& at = world.router_location(RouterId{i});
      core_row[i] = haversine_km(core, at);
      metro_row[i] = haversine_km(metro, at);
    }
  }
}

void Forwarder::append_link_hop(LinkId link, RouterId from_router,
                                std::vector<ForwardHop>& hops) const {
  const Link& l = world_->link(link);
  const InterfaceId a = l.side_a;
  const InterfaceId b = l.side_b;
  const InterfaceId arrive =
      world_->interface(a).router == from_router ? b : a;
  const double base = hops.empty() ? 0.0 : hops.back().oneway_ms;
  hops.push_back(ForwardHop{world_->interface(arrive).router, arrive,
                            base + l.latency_ms});
}

std::optional<LinkId> Forwarder::intra_link(RouterId a, RouterId b) const {
  const LinkId* link = intra_links_.find(key(a.value, b.value));
  if (link == nullptr) return std::nullopt;
  return *link;
}

std::optional<LinkId> Forwarder::inter_as_link(AsId a, AsId b) const {
  const LinkId* link = inter_as_links_.find(key(a.value, b.value));
  if (link == nullptr) return std::nullopt;
  return *link;
}

namespace {
// Deterministic per-(flow, link) jitter in [0, 1): ECMP hashing stand-in.
double flow_jitter(std::uint32_t flow_hash, std::uint32_t link) {
  std::uint64_t state = (static_cast<std::uint64_t>(flow_hash) << 32) ^
                        (link * 0x9e3779b97f4a7c15ULL);
  return static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-53;
}
}  // namespace

bool Forwarder::cloud_internal_chain(RegionId region, RouterId target,
                                     std::uint32_t flow_hash,
                                     std::vector<ForwardHop>& hops) const {
  const RouterId core = world_->region(region).core_router;
  if (target == core) return true;
  const double* core_km =
      &core_km_[static_cast<std::size_t>(region.value) *
                world_->routers.size()];
  // Climb upstream from the target toward a core, at each step taking the
  // attachment whose far end is closest to the source region — the border's
  // observed upstream interface (the ABI) therefore depends on where the
  // probe entered the backbone. The guard bounds the climb at 32 levels, so
  // the chain fits a fixed stack buffer.
  std::array<LinkId, 34> chain;
  int chain_len = 0;
  RouterId current = target;
  int guard = 0;
  while (world_->routers[current.value].uplink.valid()) {
    const Router& router = world_->routers[current.value];
    LinkId up = router.uplink;
    RouterId parent;
    {
      const Link& l = world_->link(up);
      const RouterId ra = world_->interface(l.side_a).router;
      const RouterId rb = world_->interface(l.side_b).router;
      parent = (ra == current) ? rb : ra;
    }
    // Score attachments by distance toward the source, with per-flow ECMP
    // jitter so near-equal choices split across destinations. Distances come
    // from the memo; the jitter draw is pure, so one evaluation stands in
    // for both uses in the scoring expression.
    auto score = [&](RouterId candidate, LinkId link) {
      const double km = candidate == core ? 0.0 : core_km[candidate.value];
      const double j = flow_jitter(flow_hash, link.value);
      return km * (1.0 + 0.35 * j) + j;
    };
    double best_score = score(parent, up);
    for (const LinkId extra : world_->router_extra_uplinks(router)) {
      const Link& l = world_->link(extra);
      const RouterId ra = world_->interface(l.side_a).router;
      const RouterId rb = world_->interface(l.side_b).router;
      const RouterId candidate = (ra == current) ? rb : ra;
      const double candidate_score = score(candidate, extra);
      if (candidate_score < best_score) {
        best_score = candidate_score;
        up = extra;
        parent = candidate;
      }
    }
    chain[chain_len++] = up;
    current = parent;
    if (++guard > 32) return false;
  }
  // `current` is now a region core; hop across the backbone mesh if needed.
  if (current != core) {
    const auto mesh = intra_link(core, current);
    if (!mesh) return false;
    append_link_hop(*mesh, core, hops);
  }
  // Descend the chain toward the target.
  RouterId at = current;
  for (int i = chain_len - 1; i >= 0; --i) {
    append_link_hop(chain[i], at, hops);
    at = hops.back().router;
  }
  return at == target;
}

LinkId Forwarder::choose_egress(RegionId region,
                                const std::vector<LinkId>& candidates,
                                std::uint32_t flow_hash,
                                AsId direct_origin) const {
  const double* metro_km =
      &metro_km_[static_cast<std::size_t>(region.value) *
                 world_->routers.size()];
  LinkId best = candidates.front();
  double best_score = 1e18;
  LinkId best_direct;
  double best_direct_score = 1e18;
  bool any_direct = false;
  for (LinkId link : candidates) {
    // Cloud side is side_a by construction (the generator adds the border
    // interface first); use its router's metro for hot-potato choice, with
    // per-destination ECMP jitter splitting near-equal candidates. Border
    // router and client owner come from the per-link flat arrays.
    const RouterId border = link_border_router_[link.value];
    const double j = flow_jitter(flow_hash, link.value);
    const double candidate_score =
        metro_km[border.value] * (1.0 + 0.35 * j) + j;
    if (candidate_score < best_score) {
      best_score = candidate_score;
      best = link;
    }
    // A link is direct when its client side belongs to the origin AS.
    if (direct_origin.valid() &&
        link_client_owner_[link.value] == direct_origin) {
      any_direct = true;
      if (candidate_score < best_direct_score) {
        best_direct_score = candidate_score;
        best_direct = link;
      }
    }
  }
  return any_direct ? best_direct : best;
}

PathOutcome Forwarder::walk_client_side(RouterId entry, Ipv4 dst,
                                        InterfaceId dst_iface,
                                        std::vector<ForwardHop>& hops) const {
  // Destination interface (if the target is an interface address) takes
  // priority over the hosting-prefix router.
  const Asn* origin_asn = announced_origin_.lookup(dst);
  AsId origin{};
  if (origin_asn != nullptr) {
    const auto it = world_->as_by_asn.find(origin_asn->value);
    if (it != world_->as_by_asn.end()) origin = it->second;
  } else if (dst_iface.valid()) {
    // Unannounced interconnect space: deliverable only when the walk is
    // already inside the owning AS (no BGP route exists toward it).
    origin = world_->router_owner(world_->interface(dst_iface).router);
    if (origin != world_->router_owner(entry)) return PathOutcome::kNoRoute;
  } else {
    return PathOutcome::kNoRoute;
  }

  RouterId current = entry;
  AsId current_as = world_->router_owner(entry);
  int guard = 0;
  // One cache probe for the whole walk: the published table is immutable,
  // so every AS hop reads the same vector.
  const std::vector<RouteEntry>& table = sim_->routes_to(origin);
  while (current_as != origin) {
    if (++guard > 32) return PathOutcome::kNoRoute;
    const RouteEntry& route = table[current_as.value];
    if (!route.has_route()) return PathOutcome::kNoRoute;
    const AsId next = route.next_hop;
    const auto link = inter_as_link(current_as, next);
    if (!link) return PathOutcome::kNoRoute;
    // Exit router of the current AS on that link.
    const Link& l = world_->link(*link);
    const RouterId ra = world_->interface(l.side_a).router;
    const RouterId rb = world_->interface(l.side_b).router;
    const RouterId exit = (world_->router_owner(ra) == current_as) ? ra : rb;
    if (exit != current) {
      const auto mesh = intra_link(current, exit);
      if (!mesh) return PathOutcome::kNoRoute;
      append_link_hop(*mesh, current, hops);
    }
    append_link_hop(*link, exit, hops);
    current = hops.back().router;
    current_as = next;
  }
  // Inside the origin AS: deliver to the interface's router, or to the
  // hosting router of the covering block.
  RouterId target;
  if (dst_iface.valid() &&
      world_->router_owner(world_->interface(dst_iface).router) == origin) {
    target = world_->interface(dst_iface).router;
  } else {
    const RouterId* hosting = world_->hosting_router.lookup(dst);
    if (hosting == nullptr) return PathOutcome::kNoRoute;
    target = *hosting;
  }
  if (target != current) {
    const auto mesh = intra_link(current, target);
    if (!mesh) return PathOutcome::kNoRoute;
    append_link_hop(*mesh, current, hops);
  }
  return PathOutcome::kDelivered;
}

ForwardPath Forwarder::path(const VantagePoint& vp, Ipv4 dst,
                            std::uint32_t epoch) const {
  ForwardPath out;
  path_into(vp, dst, out, epoch);
  return out;
}

void Forwarder::path_into(const VantagePoint& vp, Ipv4 dst, ForwardPath& out,
                          std::uint32_t epoch) const {
  // The per-destination flow hash keys every ECMP tie-break below. Epoch 0
  // must leave it untouched (the route-churn hazard's determinism contract:
  // no hazard ⇒ bit-identical paths), so the perturbation is gated rather
  // than unconditionally mixed.
  const std::uint32_t flow =
      epoch == 0 ? dst.value() : dst.value() ^ (0x9E3779B9u * epoch);
  out.hops.clear();
  out.outcome = PathOutcome::kNoRoute;
  out.egress_interconnect = LinkId{};
  // One address-table probe per path; every consumer below (and the
  // traceroute engine, via the result) reads this copy.
  const InterfaceId* found = iface_by_ip_.find(dst.value());
  const InterfaceId dst_iface = found == nullptr ? InterfaceId{} : *found;
  out.dst_interface = dst_iface;
  if (vp.is_cloud()) {
    const Region& region = world_->region(vp.region);
    const RouterId core = region.core_router;
    // First hop: the VM's gateway (the region core's host-facing interface).
    out.hops.push_back(ForwardHop{core, region.vm_gateway, 0.25});

    const auto provider_index = static_cast<int>(vp.provider);
    const auto entry = cloud_fib_[provider_index].lookup(dst);
    if (entry != nullptr && !entry->egress.empty()) {
      // Prefer a direct route to the destination's origin AS over transit
      // re-announcements of the same prefix, then hot-potato.
      AsId direct_origin{};
      const Asn* origin_asn = announced_origin_.lookup(dst);
      if (origin_asn != nullptr) {
        const auto as_it = world_->as_by_asn.find(origin_asn->value);
        if (as_it != world_->as_by_asn.end()) direct_origin = as_it->second;
      }
      const LinkId egress =
          choose_egress(vp.region, entry->egress, flow, direct_origin);
      const Link& l = world_->link(egress);
      const RouterId border = world_->interface(l.side_a).router;
      if (!cloud_internal_chain(vp.region, border, flow, out.hops)) {
        out.outcome = PathOutcome::kNoRoute;
        return;
      }
      append_link_hop(egress, border, out.hops);
      out.egress_interconnect = egress;
      const RouterId client_router = out.hops.back().router;
      // Delivered if the target is this very interface/router; otherwise
      // continue the walk on the client side.
      if (dst_iface.valid() &&
          world_->interface(dst_iface).router == client_router) {
        out.outcome = PathOutcome::kDelivered;
      } else {
        out.outcome =
            walk_client_side(client_router, dst, dst_iface, out.hops);
      }
      return;
    }
    // No egress FIB entry: cloud-internal destination?
    if (dst_iface.valid()) {
      const RouterId router = world_->interface(dst_iface).router;
      const AsId owner = world_->router_owner(router);
      const OrgId cloud_org =
          world_->ases[world_->cloud_primary(vp.provider).value].org;
      if (world_->ases[owner.value].org == cloud_org) {
        if (cloud_internal_chain(vp.region, router, flow, out.hops)) {
          out.outcome = PathOutcome::kDelivered;
          return;
        }
      }
    }
    // Cloud-hosted block (VM space)?
    const RouterId* hosting = world_->hosting_router.lookup(dst);
    if (hosting != nullptr) {
      const AsId owner = world_->router_owner(*hosting);
      const OrgId cloud_org =
          world_->ases[world_->cloud_primary(vp.provider).value].org;
      if (world_->ases[owner.value].org == cloud_org &&
          cloud_internal_chain(vp.region, *hosting, flow, out.hops)) {
        out.outcome = PathOutcome::kDelivered;
        return;
      }
    }
    out.outcome = PathOutcome::kNoRoute;
    return;
  }

  // Public-Internet vantage: start at the host router, no gateway hop.
  out.hops.push_back(ForwardHop{vp.host_router, InterfaceId{}, 0.0});
  out.outcome = walk_client_side(vp.host_router, dst, dst_iface, out.hops);
}

std::optional<double> Forwarder::rtt_to_address(const VantagePoint& vp,
                                                Ipv4 target) const {
  const InterfaceId iface = world_->find_interface(target);
  if (!iface.valid()) return std::nullopt;
  return rtt_to_interface(vp, iface);
}

std::optional<double> Forwarder::rtt_to_interface(const VantagePoint& vp,
                                                  InterfaceId target) const {
  const Interface& iface = world_->interface(target);
  const ForwardPath p = path(vp, iface.address);
  if (p.outcome != PathOutcome::kDelivered || p.hops.empty())
    return std::nullopt;
  if (p.hops.back().router != iface.router) return std::nullopt;
  if (!vp.is_cloud() &&
      !world_->routers[iface.router.value].publicly_reachable)
    return std::nullopt;
  return 2.0 * p.hops.back().oneway_ms;
}

}  // namespace cloudmap
