// Adaptive re-probing policy for the measurement campaign. The paper's
// plane is lossy by construction — UDP targets rarely answer (§3 reports
// ~7.7% completion) and silent routers force a 5-gap abort — so a single
// pass per target leaves evidence on the table. ReprobePolicy describes how
// many extra trace attempts a failed target earns and how long the campaign
// waits between them, in the *simulated* clock (probe slots), with
// exponential backoff jittered from a deterministic per-(chunk, target,
// attempt) RNG stream. Because every retry draws from its own stream, the
// primary pass consumes exactly the same random numbers whether retries are
// enabled or not, and results stay bit-identical at every thread count.
#pragma once

#include <cstdint>

#include "util/rng.h"

namespace cloudmap {

struct ReprobePolicy {
  // Extra trace attempts per target whose first pass ended in kGapLimit or
  // kUnreachable. 0 disables re-probing entirely (the default: the seed
  // pipeline's behaviour, bit for bit).
  int budget = 0;
  // Backoff before retry attempt k (1-based) is
  //   backoff_base_ticks * backoff_multiplier^(k-1)
  // probe slots, jittered by a factor uniform in
  // [1 - backoff_jitter, 1 + backoff_jitter).
  std::uint64_t backoff_base_ticks = 64;
  double backoff_multiplier = 2.0;
  double backoff_jitter = 0.25;

  static constexpr int kMaxBudget = 16;

  bool enabled() const { return budget > 0; }

  // Copy with every field forced into its valid domain (budget in
  // [0, kMaxBudget], multiplier >= 1, jitter in [0, 1); NaN takes the lower
  // bound). The campaign only ever runs on a clamped copy.
  ReprobePolicy clamped() const;

  // Deterministic jittered backoff, in probe slots, before the given retry
  // attempt (1-based). Consumes draws only from the rng passed in, never
  // from a shared stream.
  std::uint64_t backoff_ticks(int attempt, Rng& rng) const;
};

// Seed for the RNG stream of one retry attempt. Mixes the owning chunk's
// stream seed with the target's index inside the chunk and the attempt
// number through splitmix64, so streams never collide with the chunk's
// primary stream or with each other, and never depend on thread schedule.
std::uint64_t reprobe_stream_seed(std::uint64_t chunk_seed,
                                  std::uint64_t target_index, int attempt);

}  // namespace cloudmap
