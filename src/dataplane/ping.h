// Min-RTT prober. The pinning methodology (§6) runs a day-long ICMP
// campaign measuring minimum RTTs from every region to every border
// interface; this module reproduces that: N samples per target, jitter on
// each, minimum retained.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "dataplane/forwarding.h"
#include "dataplane/vantage.h"
#include "util/rng.h"

namespace cloudmap {

class PingProber {
 public:
  PingProber(const Forwarder& forwarder, std::uint64_t seed,
             int samples_per_target = 4, double jitter_mean_ms = 0.08);

  // Minimum observed RTT in ms to the router owning `target`; nullopt when
  // unreachable (or, from public vantage points, when the router does not
  // answer the public Internet).
  std::optional<double> min_rtt(const VantagePoint& vp,
                                InterfaceId target);

  // Min-RTT from each vantage point in `vps` (same order); unreachable
  // entries are nullopt.
  std::vector<std::optional<double>> min_rtt_matrix_row(
      const std::vector<VantagePoint>& vps, InterfaceId target);

 private:
  const Forwarder* forwarder_;
  Rng rng_;
  int samples_;
  double jitter_mean_ms_;
};

// Convenience holder for a full region×interface min-RTT campaign with
// memoization; pinning and the Fig. 4/5 benches consume this.
class RttCampaign {
 public:
  RttCampaign(const Forwarder& forwarder, std::vector<VantagePoint> vps,
              std::uint64_t seed);

  // Min RTT from the i-th vantage point to `target` (cached).
  std::optional<double> rtt(std::size_t vp_index, InterfaceId target);

  // Smallest min-RTT across all vantage points; second return is the index
  // of the winning vantage point. nullopt when unreachable from everywhere.
  std::optional<std::pair<double, std::size_t>> best_rtt(InterfaceId target);

  // The two smallest min-RTTs across vantage points (for the Fig. 5 ratio);
  // nullopt when fewer than two vantage points reach the target.
  std::optional<std::pair<double, double>> two_best_rtts(InterfaceId target);

  const std::vector<VantagePoint>& vantage_points() const { return vps_; }

 private:
  PingProber prober_;
  std::vector<VantagePoint> vps_;
  // Cache: interface → per-vp optional RTT.
  std::unordered_map<std::uint32_t, std::vector<std::optional<double>>> cache_;
  const std::vector<std::optional<double>>& row(InterfaceId target);
};

}  // namespace cloudmap
