// lint: hot-path
#include "dataplane/traceroute.h"

#include <algorithm>

namespace cloudmap {

namespace {

// Clamp to [lo, hi] with NaN mapping to lo: the comparisons are written so
// that a NaN fails the first test and takes the lower bound instead of
// propagating into every chance() draw.
double clamp_or(double value, double lo, double hi) {
  if (!(value >= lo)) return lo;
  if (value > hi) return hi;
  return value;
}

}  // namespace

TracerouteOptions TracerouteOptions::clamped() const {
  TracerouteOptions out = *this;
  out.gap_limit = std::clamp(out.gap_limit, 1, 255);
  out.host_response = clamp_or(out.host_response, 0.0, 1.0);
  out.loop_probability = clamp_or(out.loop_probability, 0.0, 1.0);
  out.queueing_probability = clamp_or(out.queueing_probability, 0.0, 1.0);
  out.response_scale = clamp_or(out.response_scale, 0.0, 1.0);
  out.jitter_mean_ms = clamp_or(out.jitter_mean_ms, 0.0, 1e6);
  out.queueing_max_ms = clamp_or(out.queueing_max_ms, 0.0, 1e6);
  out.hazards = out.hazards.clamped();
  return out;
}

TracerouteEngine::TracerouteEngine(const Forwarder& forwarder,
                                   std::uint64_t seed,
                                   TracerouteOptions options)
    : forwarder_(&forwarder), rng_(seed), options_(options.clamped()) {
  // Hazard zero (loss) composes multiplicatively with the legacy
  // response_scale alias. A zero loss multiplies by exactly 1.0, so the
  // pre-hazard probability — and with it every chance() draw — is bit-exact.
  effective_response_scale_ =
      options_.response_scale * (1.0 - options_.hazards.loss);
}

bool TracerouteEngine::rate_limited(std::uint32_t router) {
  const auto allowed = static_cast<std::uint64_t>(
      (1.0 - options_.hazards.rate_limit) * kRateLimitWindow + 0.5);
  const std::uint64_t position = rate_buckets_[router]++ % kRateLimitWindow;
  return position >= allowed;
}

double TracerouteEngine::jitter() {
  double extra = rng_.exponential(options_.jitter_mean_ms);
  if (rng_.chance(options_.queueing_probability))
    extra += rng_.uniform(0.0, options_.queueing_max_ms);
  return extra;
}

TracerouteRecord TracerouteEngine::trace(const VantagePoint& vp, Ipv4 dst) {
  TracerouteRecord record;
  trace_into(vp, dst, record);
  return record;
}

void TracerouteEngine::trace_into(const VantagePoint& vp, Ipv4 dst,
                                  TracerouteRecord& record) {
  const World& world = forwarder_->world();
  record.vantage = vp;
  record.destination = dst;
  record.status = TracerouteStatus::kUnreachable;
  record.hops.clear();

  forwarder_->path_into(vp, dst, path_scratch_, options_.hazards.epoch);
  const ForwardPath& path = path_scratch_;
  record.true_egress = path.egress_interconnect;
  record.hops.reserve(path.hops.size() + options_.gap_limit + 1);

  int consecutive_misses = 0;
  for (const ForwardHop& hop : path.hops) {
    // MPLS tunnel interior: the hop is spliced out of the record — no TTL
    // expiry, no probe, no RNG draw, no gap-limit miss; its latency still
    // accumulates into the next visible hop's RTT, like a real LSP.
    if (options_.hazards.mpls_fraction > 0.0 &&
        hazard_chance(options_.hazards.seed, HazardKind::kMplsHiddenHops,
                      hop.router.value, 0, options_.hazards.mpls_fraction))
      continue;
    ++probes_sent_;
    const Router& router = world.router(hop.router);
    TracerouteHop out;
    const bool answers =
        router.reply_policy != ReplyPolicy::kSilent &&
        rng_.chance(router.response_probability * effective_response_scale_);
    // A reply the router generated, whether or not the rate limiter lets it
    // out. Jitter and the loop-artifact chance are drawn whenever a reply
    // is generated — even one the limiter then drops — so the RNG stream is
    // invariant in the rate-limit knob and suppression at intensity `a` is
    // a superset of suppression at any `b > a` (the monotonicity property
    // tests rely on both).
    bool generated = false;
    if (answers) {
      InterfaceId reply = hop.incoming;
      if (router.reply_policy == ReplyPolicy::kFixedInterface)
        reply = router.fixed_reply;
      if (!reply.valid() && !router.interfaces.empty())
        reply = world.router_interfaces(hop.router).front();
      if (reply.valid()) {
        generated = true;
        const double rtt = 2.0 * hop.oneway_ms + jitter();
        const bool delivered = options_.hazards.rate_limit <= 0.0 ||
                               !rate_limited(hop.router.value);
        if (delivered) {
          out.address = world.interface(reply).address;
          out.rtt_ms = rtt;
          out.responded = true;
        }
      }
    }
    if (generated) {
      // Rare forwarding-loop artifact: repeat the previous answered hop.
      // Only a delivered reply can exhibit it, but the chance is drawn
      // post-generation (stream invariance, see above).
      if (record.hops.size() > 1 && rng_.chance(options_.loop_probability) &&
          out.responded) {
        for (auto it = record.hops.rbegin(); it != record.hops.rend(); ++it) {
          if (it->responded) {
            record.hops.push_back(*it);
            break;
          }
        }
      }
    }
    if (out.responded) {
      consecutive_misses = 0;
    } else if (++consecutive_misses >= options_.gap_limit) {
      record.hops.push_back(out);
      record.status = TracerouteStatus::kGapLimit;
      return;
    }
    record.hops.push_back(out);
  }

  if (path.outcome != PathOutcome::kDelivered) {
    // No route: probes past the last router vanish; scamper would record
    // gap_limit unresponsive hops and stop.
    record.status = TracerouteStatus::kGapLimit;
    for (int i = 0; i < options_.gap_limit; ++i)
      record.hops.push_back(TracerouteHop{});
    return;
  }

  // The destination host itself: answers rarely (UDP probes to closed
  // ports; §3 reports ~7.7% completion). A destination that happens to be a
  // router interface answers like its router.
  ++probes_sent_;
  const InterfaceId dst_iface = path.dst_interface;
  bool dst_answers = false;
  if (dst_iface.valid() &&
      world.interface(dst_iface).router == path.hops.back().router) {
    const Router& router = world.router(path.hops.back().router);
    dst_answers =
        router.reply_policy != ReplyPolicy::kSilent &&
        rng_.chance(router.response_probability * effective_response_scale_);
  } else {
    dst_answers = rng_.chance(options_.host_response);
  }
  if (dst_answers) {
    TracerouteHop final_hop;
    final_hop.address = dst;
    final_hop.rtt_ms = 2.0 * path.hops.back().oneway_ms + jitter();
    final_hop.responded = true;
    record.hops.push_back(final_hop);
    record.status = TracerouteStatus::kCompleted;
  } else {
    record.status = TracerouteStatus::kGapLimit;
    for (int i = 0; i < options_.gap_limit; ++i)
      record.hops.push_back(TracerouteHop{});
  }
}

}  // namespace cloudmap
