// Scamper-like traceroute engine over the forwarder's paths. Reproduces the
// measurement artifacts the paper's filters have to deal with: silent
// routers (gap termination after five consecutive misses, §3), routers
// answering with a fixed/third-party interface, per-probe RTT jitter, rare
// IP-level loops, and destinations that answer (or don't) the final probe.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "dataplane/forwarding.h"
#include "dataplane/vantage.h"
#include "net/ipv4.h"
#include "scenario/hazard.h"
#include "util/rng.h"

namespace cloudmap {

struct TracerouteHop {
  Ipv4 address;          // 0.0.0.0 when the hop did not respond
  double rtt_ms = 0.0;
  bool responded = false;
};

enum class TracerouteStatus : std::uint8_t {
  kCompleted = 0,  // destination answered
  kGapLimit,       // five consecutive unresponsive hops
  kUnreachable,    // path had no route and probing ran into silence
};

struct TracerouteRecord {
  VantagePoint vantage;
  Ipv4 destination;
  TracerouteStatus status = TracerouteStatus::kUnreachable;
  std::vector<TracerouteHop> hops;
  // Ground truth for scoring only — never read by the inference pipeline:
  // the cloud interconnect the probe egressed through, if any.
  LinkId true_egress;
};

struct TracerouteOptions {
  int gap_limit = 5;            // consecutive silent hops before giving up
  double host_response = 0.10;  // UDP targets rarely answer (low yield, §3)
  double loop_probability = 0.002;  // rare forwarding loop artifact
  double jitter_mean_ms = 0.08;
  double queueing_probability = 0.05;
  double queueing_max_ms = 2.0;
  // Loss injection: scales every router's response_probability. 1.0 leaves
  // the world untouched (and draws the exact same RNG stream); lower values
  // simulate a degraded measurement plane for the re-probing machinery.
  // This is the documented alias of hazards.loss (hazard zero of the
  // scenario framework): the engine responds with probability
  // response_probability * response_scale * (1 - hazards.loss).
  double response_scale = 1.0;
  // Adversarial dataplane hazards (scenario/hazard.h). All-defaults draws
  // the exact pre-hazard RNG stream; see DataplaneHazards for the contract.
  DataplaneHazards hazards;

  // Copy with every field forced into its valid domain. gap_limit <= 0
  // would make the silent-padding loops in traceroute.cpp degenerate (every
  // trace "gap-terminates" instantly with zero recorded hops), and
  // probabilities outside [0, 1] silently distort chance() draws — the
  // engine therefore only ever runs on a clamped copy. NaN clamps to the
  // lower bound.
  TracerouteOptions clamped() const;
};

class TracerouteEngine {
 public:
  TracerouteEngine(const Forwarder& forwarder, std::uint64_t seed,
                   TracerouteOptions options = {});

  TracerouteRecord trace(const VantagePoint& vp, Ipv4 dst);

  // As trace(), but reuses the caller's record storage. The campaign keeps
  // one record per chunk, so steady-state tracing allocates nothing: the
  // forward path lands in the engine's scratch buffer and hops reuse the
  // record's capacity. Draws the exact RNG stream trace() draws.
  void trace_into(const VantagePoint& vp, Ipv4 dst, TracerouteRecord& record);

  // Number of probes issued so far (drives the simulated campaign clock).
  std::uint64_t probes_sent() const noexcept { return probes_sent_; }

 private:
  // Replies per rate-limit window: each router delivers the first
  // round((1 - rate_limit) * window) of every kRateLimitWindow consecutive
  // replies it generates on the simulated campaign clock and suppresses the
  // rest. Windowing by the router's own reply stream (not the global probe
  // count) is what makes the budget bite for hot border routers while
  // leaving rarely-hit routers untouched — and makes the delivered set at a
  // lower intensity a superset of the set at any higher one.
  static constexpr std::uint64_t kRateLimitWindow = 32;

  double jitter();

  // True when the rate-limit hazard suppresses this reply: the reply's
  // position in the router's current window is past the budget. Always
  // advances the router's reply counter, delivered or not.
  bool rate_limited(std::uint32_t router);

  const Forwarder* forwarder_;
  Rng rng_;
  TracerouteOptions options_;
  double effective_response_scale_ = 1.0;
  std::uint64_t probes_sent_ = 0;
  // Arena for the forwarder's answer; owned by the engine (one engine per
  // worker chunk), never aliased by the records handed back to callers.
  ForwardPath path_scratch_;
  // ICMP rate-limit reply counters, by router id. Only touched when the
  // hazard is active (per-engine state, so results stay chunk-local and
  // thread-count invariant).
  std::unordered_map<std::uint32_t, std::uint64_t> rate_buckets_;
};

}  // namespace cloudmap
