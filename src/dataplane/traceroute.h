// Scamper-like traceroute engine over the forwarder's paths. Reproduces the
// measurement artifacts the paper's filters have to deal with: silent
// routers (gap termination after five consecutive misses, §3), routers
// answering with a fixed/third-party interface, per-probe RTT jitter, rare
// IP-level loops, and destinations that answer (or don't) the final probe.
#pragma once

#include <cstdint>
#include <vector>

#include "dataplane/forwarding.h"
#include "dataplane/vantage.h"
#include "net/ipv4.h"
#include "util/rng.h"

namespace cloudmap {

struct TracerouteHop {
  Ipv4 address;          // 0.0.0.0 when the hop did not respond
  double rtt_ms = 0.0;
  bool responded = false;
};

enum class TracerouteStatus : std::uint8_t {
  kCompleted = 0,  // destination answered
  kGapLimit,       // five consecutive unresponsive hops
  kUnreachable,    // path had no route and probing ran into silence
};

struct TracerouteRecord {
  VantagePoint vantage;
  Ipv4 destination;
  TracerouteStatus status = TracerouteStatus::kUnreachable;
  std::vector<TracerouteHop> hops;
  // Ground truth for scoring only — never read by the inference pipeline:
  // the cloud interconnect the probe egressed through, if any.
  LinkId true_egress;
};

struct TracerouteOptions {
  int gap_limit = 5;            // consecutive silent hops before giving up
  double host_response = 0.10;  // UDP targets rarely answer (low yield, §3)
  double loop_probability = 0.002;  // rare forwarding loop artifact
  double jitter_mean_ms = 0.08;
  double queueing_probability = 0.05;
  double queueing_max_ms = 2.0;
  // Loss injection: scales every router's response_probability. 1.0 leaves
  // the world untouched (and draws the exact same RNG stream); lower values
  // simulate a degraded measurement plane for the re-probing machinery.
  double response_scale = 1.0;

  // Copy with every field forced into its valid domain. gap_limit <= 0
  // would make the silent-padding loops in traceroute.cpp degenerate (every
  // trace "gap-terminates" instantly with zero recorded hops), and
  // probabilities outside [0, 1] silently distort chance() draws — the
  // engine therefore only ever runs on a clamped copy. NaN clamps to the
  // lower bound.
  TracerouteOptions clamped() const;
};

class TracerouteEngine {
 public:
  TracerouteEngine(const Forwarder& forwarder, std::uint64_t seed,
                   TracerouteOptions options = {});

  TracerouteRecord trace(const VantagePoint& vp, Ipv4 dst);

  // As trace(), but reuses the caller's record storage. The campaign keeps
  // one record per chunk, so steady-state tracing allocates nothing: the
  // forward path lands in the engine's scratch buffer and hops reuse the
  // record's capacity. Draws the exact RNG stream trace() draws.
  void trace_into(const VantagePoint& vp, Ipv4 dst, TracerouteRecord& record);

  // Number of probes issued so far (drives the simulated campaign clock).
  std::uint64_t probes_sent() const noexcept { return probes_sent_; }

 private:
  double jitter();

  const Forwarder* forwarder_;
  Rng rng_;
  TracerouteOptions options_;
  std::uint64_t probes_sent_ = 0;
  // Arena for the forwarder's answer; owned by the engine (one engine per
  // worker chunk), never aliased by the records handed back to callers.
  ForwardPath path_scratch_;
};

}  // namespace cloudmap
