// Router-level forwarding over the world. The Forwarder answers one
// question: which sequence of (router, incoming-interface, one-way latency)
// does a packet traverse from a vantage point to a destination address?
//
// Route selection is two-level, mirroring reality:
//   * AS level — cloud FIBs built from per-interconnect announcements
//     (longest prefix, then hot-potato toward the nearest egress), and
//     Gao-Rexford best paths for the non-cloud part of the walk;
//   * router level — region core → backbone mesh → (aggregation) border
//     chains inside a cloud, full-mesh IGP hops inside client ASes.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "controlplane/bgp.h"
#include "dataplane/vantage.h"
#include "net/flat_hash.h"
#include "net/flat_prefix_trie.h"
#include "topology/world.h"

namespace cloudmap {

// One forwarding step: the packet arrives at `router` through `incoming`
// having accumulated `oneway_ms` of propagation delay since the source.
struct ForwardHop {
  RouterId router;
  InterfaceId incoming;
  double oneway_ms = 0.0;
};

enum class PathOutcome : std::uint8_t {
  kDelivered = 0,   // final hop's router hosts the destination address
  kNoRoute,         // dropped for lack of a matching route
};

struct ForwardPath {
  std::vector<ForwardHop> hops;
  PathOutcome outcome = PathOutcome::kNoRoute;
  // Set when the path crossed a cloud-client interconnect of the source
  // cloud (the ground-truth link the probe egressed through).
  LinkId egress_interconnect;
  // Interface owning the destination address, if any. Resolved once per
  // path so downstream consumers (the traceroute engine's final-hop check)
  // need not repeat the address-table probe.
  InterfaceId dst_interface;
};

class Forwarder {
 public:
  // Builds FIBs and helper indices; `sim` must outlive the forwarder.
  Forwarder(const World& world, const BgpSimulator& sim);

  // Path from a vantage point to a destination address. `epoch` selects a
  // forwarding-state generation for the route-churn hazard: epoch 0 is the
  // unperturbed state (bit-identical to the pre-hazard forwarder); any
  // other value re-keys the per-destination ECMP tie-breaks, modelling an
  // IGP/BGP reconvergence that shifted equal-cost choices fabric-wide.
  ForwardPath path(const VantagePoint& vp, Ipv4 dst,
                   std::uint32_t epoch = 0) const;

  // As path(), but writes into a caller-owned result whose hop storage is
  // reused across calls (the traceroute engine keeps one scratch path per
  // engine, so steady-state tracing performs no per-path allocation).
  void path_into(const VantagePoint& vp, Ipv4 dst, ForwardPath& out,
                 std::uint32_t epoch = 0) const;

  // Round-trip propagation delay from a vantage point to the router owning
  // interface `target` (no response simulation — pure geometry); nullopt
  // when no route exists. Public vantage points additionally require the
  // covering prefix to be BGP-announced.
  std::optional<double> rtt_to_interface(const VantagePoint& vp,
                                         InterfaceId target) const;

  // Ping an arbitrary address: resolves it to an interface (if any) and
  // defers to rtt_to_interface. This emulates probing an IP whose identity
  // the prober does not know.
  std::optional<double> rtt_to_address(const VantagePoint& vp,
                                       Ipv4 target) const;

  const BgpSimulator& bgp() const noexcept { return *sim_; }
  const World& world() const noexcept { return *world_; }

 private:
  struct FibEntry {
    std::vector<LinkId> egress;  // candidate interconnects
  };

  // Cloud-internal chain from a region core to a cloud router (core, border,
  // or aggregation border), following backbone mesh + uplink chains.
  // `flow_hash` adds per-destination ECMP variation to uplink choice.
  bool cloud_internal_chain(RegionId region, RouterId target,
                            std::uint32_t flow_hash,
                            std::vector<ForwardHop>& hops) const;

  // Append the hop reached by traversing `link` from `from_router`.
  void append_link_hop(LinkId link, RouterId from_router,
                       std::vector<ForwardHop>& hops) const;

  // Intra-AS direct link between two routers of the same AS (full mesh).
  std::optional<LinkId> intra_link(RouterId a, RouterId b) const;

  // First inter-AS link between two neighboring ASes.
  std::optional<LinkId> inter_as_link(AsId a, AsId b) const;

  // Pick the hot-potato egress among candidates for a source region, with
  // per-destination ECMP tie-breaking among near-equal choices. When
  // `direct_origin` is valid and any candidate lands in that AS, the choice
  // is restricted to those direct candidates (preferring a direct route to
  // the destination's origin over transit re-announcements).
  LinkId choose_egress(RegionId region, const std::vector<LinkId>& candidates,
                       std::uint32_t flow_hash, AsId direct_origin) const;

  // Walk from an entry router inside AS `current` toward the origin AS of
  // `dst`, appending hops; returns outcome. `dst_iface` is the caller's
  // already-resolved find_interface(dst).
  PathOutcome walk_client_side(RouterId entry, Ipv4 dst,
                               InterfaceId dst_iface,
                               std::vector<ForwardHop>& hops) const;

  const World* world_;
  const BgpSimulator* sim_;
  FlatPrefixTrie<FibEntry> cloud_fib_[kCloudProviderCount];
  FlatPrefixTrie<Asn> announced_origin_;  // all announced prefixes → origin
  FlatHashMap<std::uint64_t, LinkId> intra_links_;
  FlatHashMap<std::uint64_t, LinkId> inter_as_links_;
  // World::find_interface re-indexed into the flat probe table (built once,
  // the world is immutable for the forwarder's lifetime).
  FlatHashMap<std::uint32_t, InterfaceId> iface_by_ip_;
  // Memoized great-circle distances, [region * routers.size() + router]:
  // from the region core (backbone-climb scoring) and from the region's
  // metro (hot-potato egress choice). Entries are the exact doubles
  // haversine_km returns for the same endpoints, so the memo cannot perturb
  // route choice.
  std::vector<double> core_km_;
  std::vector<double> metro_km_;
  // Per-link egress metadata, indexed by link id: the cloud-side border
  // router (side_a's router) and the owner AS of the client side. Folds the
  // link → interface → router indirections out of the choose_egress scan.
  std::vector<RouterId> link_border_router_;
  std::vector<AsId> link_client_owner_;

  static std::uint64_t key(std::uint32_t a, std::uint32_t b) {
    return (static_cast<std::uint64_t>(a) << 32) | b;
  }
};

}  // namespace cloudmap
