#include "dataplane/reprobe.h"

#include <algorithm>
#include <cmath>

namespace cloudmap {

namespace {

double clamp_or(double value, double lo, double hi) {
  if (!(value >= lo)) return lo;
  if (value > hi) return hi;
  return value;
}

}  // namespace

ReprobePolicy ReprobePolicy::clamped() const {
  ReprobePolicy out = *this;
  out.budget = std::clamp(out.budget, 0, kMaxBudget);
  out.backoff_base_ticks = std::min<std::uint64_t>(
      out.backoff_base_ticks, std::uint64_t{1} << 32);
  out.backoff_multiplier = clamp_or(out.backoff_multiplier, 1.0, 64.0);
  // Jitter 1.0 would permit a zero-tick wait; keep it strictly below.
  out.backoff_jitter = clamp_or(out.backoff_jitter, 0.0, 0.99);
  return out;
}

std::uint64_t ReprobePolicy::backoff_ticks(int attempt, Rng& rng) const {
  if (attempt < 1) attempt = 1;
  const ReprobePolicy policy = clamped();
  const double base = static_cast<double>(policy.backoff_base_ticks) *
                      std::pow(policy.backoff_multiplier, attempt - 1);
  const double factor =
      rng.uniform(1.0 - policy.backoff_jitter, 1.0 + policy.backoff_jitter);
  constexpr double kCap = 1e15;  // keep the simulated clock finite
  const double ticks = base * factor;
  return static_cast<std::uint64_t>(ticks < kCap ? ticks : kCap);
}

std::uint64_t reprobe_stream_seed(std::uint64_t chunk_seed,
                                  std::uint64_t target_index, int attempt) {
  std::uint64_t state = chunk_seed;
  state ^= splitmix64(state) ^ (0x94d049bb133111ebULL * (target_index + 1));
  state ^= splitmix64(state) ^
           (0xbf58476d1ce4e5b9ULL * static_cast<std::uint64_t>(attempt));
  return splitmix64(state);
}

}  // namespace cloudmap
