// Vantage points: the cloud VMs the campaigns launch from (§3, §7.1) and
// the public-Internet node used by the reachability heuristic (§5.1).
#pragma once

#include "net/ids.h"
#include "net/ipv4.h"
#include "topology/entities.h"

namespace cloudmap {

struct VantagePoint {
  // kNone means a public-Internet vantage (hosted inside `host_router`'s AS).
  CloudProvider provider = CloudProvider::kNone;
  RegionId region;        // valid for cloud vantage points
  RouterId host_router;   // valid for public-Internet vantage points
  std::string label;

  static VantagePoint cloud_vm(CloudProvider p, RegionId r,
                               std::string label) {
    VantagePoint vp;
    vp.provider = p;
    vp.region = r;
    vp.label = std::move(label);
    return vp;
  }
  static VantagePoint public_node(RouterId router, std::string label) {
    VantagePoint vp;
    vp.host_router = router;
    vp.label = std::move(label);
    return vp;
  }
  bool is_cloud() const { return provider != CloudProvider::kNone; }
};

}  // namespace cloudmap
