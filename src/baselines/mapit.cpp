#include "baselines/mapit.h"

namespace cloudmap {

Mapit::Mapit(const World& world, const Forwarder& forwarder,
             const Annotator& annotator, MapitOptions options)
    : world_(&world),
      forwarder_(&forwarder),
      annotator_(&annotator),
      options_(options) {}

void Mapit::process_record(const TracerouteRecord& record,
                           MapitResult& result) {
  // MAP-IT reads prefix2as from BGP alone: an annotation counts only when
  // its source is the BGP snapshot.
  auto bgp_asn = [&](Ipv4 address) -> Asn {
    const HopAnnotation a = annotator_->annotate(address);
    return a.source == AnnotationSource::kBgp ? a.asn : Asn{};
  };

  Ipv4 previous;
  Asn previous_asn;
  bool have_previous = false;
  for (const TracerouteHop& hop : record.hops) {
    if (!hop.responded) {
      have_previous = false;
      continue;
    }
    const Asn asn = bgp_asn(hop.address);
    if (have_previous) {
      ++result.adjacencies_examined;
      if (previous_asn.is_unknown() || asn.is_unknown()) {
        ++result.skipped_unannotated;
      } else if (asn != previous_asn) {
        const std::uint64_t key =
            (static_cast<std::uint64_t>(previous.value()) << 32) |
            hop.address.value();
        if (seen_pairs_.insert(key).second) {
          result.edges.push_back(
              MapitEdge{previous, hop.address, previous_asn, asn});
        }
      }
    }
    previous = hop.address;
    previous_asn = asn;
    have_previous = true;
  }
}

MapitResult Mapit::run(CloudProvider subject) {
  MapitResult result;
  TracerouteEngine engine(*forwarder_, options_.seed, options_.traceroute);
  std::vector<Ipv4> targets;
  for (const Prefix& prefix : world_->probeable_slash24s())
    targets.push_back(prefix.network().next(1));
  for (const RegionId region : world_->regions_of(subject)) {
    const VantagePoint vp =
        VantagePoint::cloud_vm(subject, region, world_->region(region).name);
    for (const Ipv4 target : targets)
      process_record(engine.trace(vp, target), result);
  }
  return result;
}

MapitScore score_mapit(const World& world, const MapitResult& result,
                       CloudProvider subject) {
  MapitScore score;
  // Client interfaces MAP-IT placed on the far side of some edge whose near
  // side is the subject cloud.
  const OrgId subject_org =
      world.ases[world.cloud_primary(subject).value].org;
  std::unordered_set<std::uint32_t> far_interfaces;
  for (const MapitEdge& edge : result.edges) {
    const auto near_it = world.as_by_asn.find(edge.near_as.value);
    if (near_it == world.as_by_asn.end()) continue;
    if (world.ases[near_it->second.value].org != subject_org) continue;
    far_interfaces.insert(edge.far_interface.value());
  }
  for (const GroundTruthInterconnect& ic : world.interconnects) {
    if (ic.cloud != subject || ic.private_address) continue;
    const std::uint32_t client_side =
        world.interface(ic.client_interface).address.value();
    const bool hit = far_interfaces.count(client_side) > 0;
    switch (ic.kind) {
      case PeeringKind::kCrossConnect:
        ++score.xconnect_total;
        if (hit) ++score.xconnect_found;
        break;
      case PeeringKind::kPublicIxp:
        ++score.ixp_total;
        if (hit) ++score.ixp_found;
        break;
      case PeeringKind::kVpi:
        ++score.vpi_total;
        if (hit) ++score.vpi_found;
        break;
    }
  }
  return score;
}

}  // namespace cloudmap
