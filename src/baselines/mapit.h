// A MAP-IT-style inference baseline (Marder & Smith, IMC'16). MAP-IT scans
// existing traceroute corpora for adjacent hop pairs whose addresses
// originate in different ASes (BGP prefix2as only — no WHOIS fallback, no
// IXP membership data) and emits the pair as an inter-AS link, refining
// interface ownership from the surrounding hops.
//
// The paper (§2, footnote 14) rules MAP-IT out for cloud fabrics because
// layer-2 switching breaks its assumptions:
//   * IXP peering LANs are not BGP-announced — the member-side hop has no
//     origin AS, so the adjacency is skipped and the peering missed;
//   * provider-assigned VPI /30s put cloud-owned addresses on the client
//     router, so the AS change (and hence the inferred boundary) lands one
//     hop too deep (the Fig. 2 shift with no heuristic to fix it);
//   * WHOIS-only interconnect addressing is invisible to prefix2as.
// This module reimplements the approach so a bench can quantify all three.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "dataplane/traceroute.h"
#include "infer/annotate.h"

namespace cloudmap {

struct MapitEdge {
  Ipv4 near_interface;  // last hop in the first AS
  Ipv4 far_interface;   // first hop in the second AS
  Asn near_as;
  Asn far_as;
};

struct MapitResult {
  std::vector<MapitEdge> edges;  // deduplicated by interface pair
  std::size_t adjacencies_examined = 0;
  // Adjacencies skipped because one side has no BGP origin (private space,
  // WHOIS-only interconnect /30s, IXP LANs) — MAP-IT's blind spot.
  std::size_t skipped_unannotated = 0;
};

struct MapitOptions {
  std::uint64_t seed = 41;
  TracerouteOptions traceroute;
};

class Mapit {
 public:
  Mapit(const World& world, const Forwarder& forwarder,
        const Annotator& annotator, MapitOptions options = {});

  // Sweep from the subject cloud's regions (MAP-IT consumes whatever
  // corpus exists; we feed it the same sweep the main campaign uses) and
  // infer inter-AS edges.
  MapitResult run(CloudProvider subject);

  // Core inference, exposed for tests: process one record's adjacencies.
  void process_record(const TracerouteRecord& record, MapitResult& result);

 private:
  const World* world_;
  const Forwarder* forwarder_;
  const Annotator* annotator_;
  MapitOptions options_;
  std::unordered_set<std::uint64_t> seen_pairs_;
};

// Ground-truth scoring: how many of the subject cloud's interconnections
// MAP-IT located *with the correct client interface*, split by kind.
struct MapitScore {
  std::size_t xconnect_total = 0, xconnect_found = 0;
  std::size_t ixp_total = 0, ixp_found = 0;
  std::size_t vpi_total = 0, vpi_found = 0;
  double xconnect_rate() const {
    return xconnect_total == 0 ? 0.0
                               : static_cast<double>(xconnect_found) /
                                     static_cast<double>(xconnect_total);
  }
  double ixp_rate() const {
    return ixp_total == 0 ? 0.0
                          : static_cast<double>(ixp_found) /
                                static_cast<double>(ixp_total);
  }
  double vpi_rate() const {
    return vpi_total == 0 ? 0.0
                          : static_cast<double>(vpi_found) /
                                static_cast<double>(vpi_total);
  }
};
MapitScore score_mapit(const World& world, const MapitResult& result,
                       CloudProvider subject);

}  // namespace cloudmap
