#!/usr/bin/env python3
"""Diff two bench trajectory files (BENCH_<slug>.json).

The trajectory schema (cloudmap-bench-trajectory-v1, written by
bench/bench_common.h) records, per benchmark: iterations, ns/op, thread
count, and deterministic counters — nothing else, so two files from the
same code differ only in the timings under comparison.

The comparison is per-core: for a benchmark that ran with T threads, the
gated quantity is ns_per_op * T, which keeps multi-threaded variants from
masking a per-core regression behind added parallelism.

    python3 tools/bench_compare.py BASELINE CURRENT [--threshold 0.15]

Exit status: 0 when every matched benchmark is within the regression
threshold, 1 when any regressed beyond it, 2 on usage or schema errors.
Counter drift (deterministic work counts that changed between the two
runs) is reported but never fails the comparison — it flags a behaviour
change for a human to judge, not a perf regression.
"""

import argparse
import json
import sys


def load_trajectory(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, ValueError) as error:
        raise SystemExit("bench_compare: cannot read %s: %s" % (path, error))
    if data.get("schema") != "cloudmap-bench-trajectory-v1":
        raise SystemExit(
            "bench_compare: %s is not a cloudmap bench trajectory "
            "(schema=%r)" % (path, data.get("schema")))
    return data


def per_core_ns(entry):
    return entry.get("ns_per_op", 0.0) * max(1, entry.get("threads", 1))


def by_name(trajectory):
    return {entry["name"]: entry
            for entry in trajectory.get("benchmarks", [])}


def format_ns(value):
    if value >= 1e9:
        return "%.3f s" % (value / 1e9)
    if value >= 1e6:
        return "%.2f ms" % (value / 1e6)
    if value >= 1e3:
        return "%.2f us" % (value / 1e3)
    return "%.2f ns" % value


def compare_counters(label, base, current, lines):
    for key in sorted(set(base) | set(current)):
        if key not in base:
            lines.append("  counter drift %s %s: new (%.10g)" %
                         (label, key, current[key]))
        elif key not in current:
            lines.append("  counter drift %s %s: gone (was %.10g)" %
                         (label, key, base[key]))
        elif base[key] != current[key]:
            lines.append("  counter drift %s %s: %.10g -> %.10g" %
                         (label, key, base[key], current[key]))


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="compare two bench trajectory files per-core")
    parser.add_argument("baseline", help="baseline BENCH_*.json")
    parser.add_argument("current", help="current BENCH_*.json")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="fail when per-core ns/op grows by more than "
                             "this fraction (default 0.15)")
    args = parser.parse_args(argv)

    base = load_trajectory(args.baseline)
    current = load_trajectory(args.current)
    base_benches = by_name(base)
    current_benches = by_name(current)

    regressions = []
    drift = []
    print("bench_compare: %s vs %s (threshold %.0f%%)" %
          (args.baseline, args.current, args.threshold * 100))
    print("%-44s %14s %14s %9s" %
          ("benchmark (per-core)", "baseline", "current", "delta"))
    for name in sorted(set(base_benches) | set(current_benches)):
        if name not in current_benches:
            print("%-44s %14s %14s %9s" %
                  (name, format_ns(per_core_ns(base_benches[name])),
                   "missing", "-"))
            continue
        if name not in base_benches:
            print("%-44s %14s %14s %9s" %
                  (name, "new", format_ns(per_core_ns(current_benches[name])),
                   "-"))
            continue
        base_ns = per_core_ns(base_benches[name])
        current_ns = per_core_ns(current_benches[name])
        if base_ns <= 0.0:
            print("%-44s %14s %14s %9s" %
                  (name, "0", format_ns(current_ns), "-"))
            continue
        delta = (current_ns - base_ns) / base_ns
        verdict = ""
        if delta > args.threshold:
            verdict = "  REGRESSION"
            regressions.append((name, delta))
        print("%-44s %14s %14s %+8.1f%%%s" %
              (name, format_ns(base_ns), format_ns(current_ns),
               delta * 100, verdict))
        compare_counters(name,
                         base_benches[name].get("counters", {}),
                         current_benches[name].get("counters", {}), drift)

    compare_counters("(run)", base.get("counters", {}),
                     current.get("counters", {}), drift)
    if drift:
        print("deterministic counter drift (informational, not gated):")
        for line in drift:
            print(line)

    if regressions:
        print("bench_compare: FAIL — %d benchmark(s) regressed >%.0f%% "
              "per-core:" % (len(regressions), args.threshold * 100))
        for name, delta in regressions:
            print("  %s: +%.1f%%" % (name, delta * 100))
        return 1
    print("bench_compare: OK — no per-core regression beyond %.0f%%" %
          (args.threshold * 100))
    return 0


if __name__ == "__main__":
    sys.exit(main())
