#!/usr/bin/env python3
"""Validate a hazard scorecard against tools/hazard_schema.json.

Usage: validate_scorecard.py SCORECARD.json [--schema SCHEMA.json]
           [--require-profiles loss,mpls,...]
           [--require-remote-recovery] [--require-churn-reconstruction]

Checks, in order:
  1. the artifact is well-formed JSON;
  2. every required top-level key is present and "schema" identifies a
     hazard scorecard;
  3. the baseline row and every profile row carry every per-row key, every
     rate lies in [0, 1], and profile rows carry the drift-vs-baseline
     block (the baseline must not);
  4. optional remote_rule / churn blocks are well-shaped wherever present;
  5. with --require-profiles, every named profile has a row;
  6. with --require-remote-recovery, every remote_rule block recovered
     every measurable planted remote peer with zero false positives (the
     ISSUE's >= 2 ms rule acceptance check);
  7. with --require-churn-reconstruction, every churn block reconstructed
     every observable planted turnover event.

Exit status 0 on success, 1 on any failure, with one line per problem so CI
logs point straight at the offending row.
"""
import argparse
import json
import os
import sys


def fail(problems):
    for problem in problems:
        print("FAIL: %s" % problem, file=sys.stderr)
    sys.exit(1)


def check_row(schema, row, label, is_baseline, problems):
    if not isinstance(row, dict):
        problems.append("%s is not an object" % label)
        return
    for key in schema["required_row_keys"]:
        if key not in row:
            problems.append("%s missing key '%s'" % (label, key))
        elif key in ("profile", "spec"):
            if not isinstance(row[key], str):
                problems.append("%s key '%s' is not a string" % (label, key))
        elif not isinstance(row[key], (int, float)):
            problems.append("%s key '%s' is not numeric" % (label, key))
    for key in schema["unit_interval_keys"]:
        value = row.get(key)
        if isinstance(value, (int, float)) and not 0.0 <= value <= 1.0:
            problems.append("%s key '%s' = %r outside [0, 1]"
                            % (label, key, value))

    if is_baseline:
        if "drift" in row:
            problems.append("%s must not carry a drift block" % label)
    else:
        drift = row.get("drift")
        if not isinstance(drift, dict):
            problems.append("%s missing drift block" % label)
        else:
            for key in schema["drift_keys"]:
                if not isinstance(drift.get(key), (int, float)):
                    problems.append("%s drift key '%s' is not numeric"
                                    % (label, key))

    for block_name, keys in (("remote_rule", schema["remote_rule_keys"]),
                             ("churn", schema["churn_keys"])):
        if block_name not in row:
            continue
        block = row[block_name]
        if not isinstance(block, dict):
            problems.append("%s %s is not an object" % (label, block_name))
            continue
        for key in keys:
            if not isinstance(block.get(key), (int, float)):
                problems.append("%s %s key '%s' is not numeric"
                                % (label, block_name, key))


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("artifact",
                        help="scorecard JSON from `hazards score --json`")
    parser.add_argument(
        "--schema",
        default=os.path.join(os.path.dirname(os.path.abspath(__file__)),
                             "hazard_schema.json"),
        help="schema description (default: alongside this script)")
    parser.add_argument(
        "--require-profiles", default="",
        help="comma-separated profile names that must each have a row")
    parser.add_argument(
        "--require-remote-recovery", action="store_true",
        help="every remote_rule block must recover all measured peers with "
             "zero false positives")
    parser.add_argument(
        "--require-churn-reconstruction", action="store_true",
        help="every churn block must reconstruct all observable events")
    args = parser.parse_args()

    with open(args.schema) as handle:
        schema = json.load(handle)

    try:
        with open(args.artifact) as handle:
            doc = json.load(handle)
    except (OSError, ValueError) as error:
        fail(["cannot parse %s: %s" % (args.artifact, error)])

    problems = []
    for key in schema["required_top"]:
        if key not in doc:
            problems.append("missing top-level key '%s'" % key)
    if problems:
        fail(problems)

    if doc["schema"] != schema["schema"]:
        problems.append("schema is %r, expected %r"
                        % (doc["schema"], schema["schema"]))

    check_row(schema, doc["baseline"], "baseline", True, problems)
    profiles = doc["profiles"]
    if not isinstance(profiles, list):
        fail(problems + ["'profiles' is not an array"])
    rows = {}
    for index, row in enumerate(profiles):
        label = ("profile '%s'" % row["profile"]
                 if isinstance(row, dict) and "profile" in row
                 else "profiles[%d]" % index)
        check_row(schema, row, label, False, problems)
        if isinstance(row, dict) and "profile" in row:
            rows[row["profile"]] = row

    for name in filter(None, args.require_profiles.split(",")):
        if name not in rows:
            problems.append("required profile '%s' has no row" % name)

    if args.require_remote_recovery:
        blocks = [(name, row["remote_rule"]) for name, row in rows.items()
                  if "remote_rule" in row]
        if not blocks:
            problems.append("--require-remote-recovery: no remote_rule rows")
        for name, rule in blocks:
            if rule.get("measured", 0) < 1:
                problems.append("profile '%s': no planted remote peer was "
                                "measurable" % name)
            if rule.get("recovered") != rule.get("measured"):
                problems.append(
                    "profile '%s': >=2ms rule recovered %r of %r measured"
                    % (name, rule.get("recovered"), rule.get("measured")))
            if rule.get("false_remote") != 0:
                problems.append("profile '%s': %r local peers falsely "
                                "flagged remote"
                                % (name, rule.get("false_remote")))

    if args.require_churn_reconstruction:
        blocks = [(name, row["churn"]) for name, row in rows.items()
                  if "churn" in row]
        if not blocks:
            problems.append("--require-churn-reconstruction: no churn rows")
        for name, churn in blocks:
            if churn.get("observable", 0) < 1:
                problems.append("profile '%s': no planted turnover event was "
                                "observable" % name)
            if churn.get("reconstructed") != churn.get("observable"):
                problems.append(
                    "profile '%s': diff reconstructed %r of %r observable "
                    "turnover events"
                    % (name, churn.get("reconstructed"),
                       churn.get("observable")))

    if problems:
        fail(problems)
    print("ok: %s (baseline + %d profiles)" % (args.artifact, len(profiles)))


if __name__ == "__main__":
    main()
