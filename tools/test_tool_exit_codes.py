#!/usr/bin/env python3
"""Self-test for the CLI tools' malformed-input exit contract.

DESIGN.md section 14: tools that parse untrusted bytes exit 0 on success,
1 on semantic failures over well-formed inputs, and 2 — with a stderr
diagnostic naming the offending byte offset — when the bytes themselves
are malformed.  A traceback (Python's default exit 1 plus stack spew) is
a contract violation either way.

Runs diff_snapshots.py and validate_metrics.py over valid corpus files,
truncated prefixes, and garbage, asserting the exit status and that
stderr carries a FAIL diagnostic rather than a traceback.
"""
import json
import os
import subprocess
import sys
import tempfile

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DIFF = os.path.join(REPO, "tools", "diff_snapshots.py")
VALIDATE = os.path.join(REPO, "tools", "validate_metrics.py")
CORPUS = os.path.join(REPO, "fuzz", "corpus")

failures = []


def run(argv):
    return subprocess.run([sys.executable] + argv, capture_output=True,
                          text=True)


def expect(name, argv, status, stderr_has=None):
    result = run(argv)
    if result.returncode != status:
        failures.append("%s: exit %d, expected %d\nstderr: %s"
                        % (name, result.returncode, status, result.stderr))
        return
    if "Traceback" in result.stderr:
        failures.append("%s: traceback on stderr:\n%s"
                        % (name, result.stderr))
        return
    if stderr_has and stderr_has not in result.stderr:
        failures.append("%s: stderr %r does not mention %r"
                        % (name, result.stderr, stderr_has))
        return
    print("ok: %s" % name)


def main():
    snap = os.path.join(CORPUS, "snapshot", "v2.snap")
    part = os.path.join(CORPUS, "shard", "single.part")
    with tempfile.TemporaryDirectory() as tmp:
        trunc_snap = os.path.join(tmp, "trunc.snap")
        with open(snap, "rb") as src, open(trunc_snap, "wb") as dst:
            dst.write(src.read()[:40])
        garbage = os.path.join(tmp, "garbage.part")
        with open(garbage, "wb") as handle:
            handle.write(b"\xde\xad\xbe\xef" * 16)
        trunc_json = os.path.join(tmp, "trunc.json")
        with open(trunc_json, "w") as handle:
            handle.write('{"tool": "cloudmap", "stages": {')
        good_json = os.path.join(tmp, "good.json")
        schema_path = os.path.join(REPO, "tools", "metrics_schema.json")
        with open(schema_path) as handle:
            schema = json.load(handle)
        doc = {key: 0 for key in schema["required_top"]}
        doc.update(tool="cloudmap", schema_version=schema["schema_version"],
                   stages={}, counters={}, gauges={}, timers={})
        with open(good_json, "w") as handle:
            json.dump(doc, handle)

        expect("diff: valid pair exits 0",
               [DIFF, snap, snap, "--expect-identical"], 0)
        expect("diff: truncated snapshot exits 2 naming the offset",
               [DIFF, trunc_snap, snap], 2, stderr_has="offset")
        expect("diff: missing file exits 2",
               [DIFF, os.path.join(tmp, "no-such.snap"), snap], 2,
               stderr_has="FAIL")
        expect("diff: valid shard part exits 0",
               [DIFF, "--shard-parts", part], 0)
        expect("diff: garbage shard part exits 2 with a diagnostic",
               [DIFF, "--shard-parts", garbage], 2, stderr_has="FAIL")
        expect("diff: forged record count exits 2",
               [DIFF, "--shard-parts",
                os.path.join(CORPUS, "shard",
                             "regress-forged-record-count.part")], 2,
               stderr_has="records")
        expect("validate: well-formed artifact exits 0",
               [VALIDATE, "--partial", good_json], 0)
        expect("validate: truncated JSON exits 2 naming the offset",
               [VALIDATE, trunc_json], 2, stderr_has="offset")
        expect("validate: missing file exits 2",
               [VALIDATE, os.path.join(tmp, "no-such.json")], 2,
               stderr_has="FAIL")

    if failures:
        for failure in failures:
            print("FAIL: %s" % failure, file=sys.stderr)
        sys.exit(1)
    print("ok: tool exit-code contract holds")


if __name__ == "__main__":
    main()
