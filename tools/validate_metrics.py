#!/usr/bin/env python3
"""Validate a cloudmap metrics artifact against tools/metrics_schema.json.

Usage: validate_metrics.py ARTIFACT.json [--schema SCHEMA.json] [--partial]

Checks, in order:
  1. the artifact is well-formed JSON;
  2. every required top-level key is present and "tool"/"schema_version"
     identify a cloudmap artifact;
  3. every stage object carries every required per-stage key with a
     sensibly-typed value;
  4. unless --partial, every stage of the full pipeline is present (a
     campaign that stopped early writes fewer — CI runs the full thing);
  5. with --require-query-counters, every query.* counter the snapshot
     query engine registers is present (artifacts from `cloudmap_cli query`);
  6. with --require-retry-counters, every campaign.retry.* counter is
     present (campaign artifacts carry them even at retry budget 0);
  7. with --require-recovered, campaign.retry.recovered_targets is > 0
     (lossy CI runs assert the re-probe pass actually recovered targets).

Exit status 0 on success, 1 on any semantic failure (well-formed JSON that
violates the schema), and 2 when the artifact bytes themselves are malformed
(unreadable file or invalid JSON) — the exit-2 diagnostic names the byte
offset of the first offending character.  One line per problem so CI logs
point straight at the missing key.
"""
import argparse
import json
import os
import sys


def fail(problems, status=1):
    for problem in problems:
        print("FAIL: %s" % problem, file=sys.stderr)
    sys.exit(status)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("artifact", help="metrics JSON written by --metrics-json")
    parser.add_argument(
        "--schema",
        default=os.path.join(os.path.dirname(os.path.abspath(__file__)),
                             "metrics_schema.json"),
        help="schema description (default: alongside this script)")
    parser.add_argument(
        "--partial", action="store_true",
        help="accept artifacts from runs that stopped before the last stage")
    parser.add_argument(
        "--require-query-counters", action="store_true",
        help="require every schema query_counters entry in 'counters'")
    parser.add_argument(
        "--require-retry-counters", action="store_true",
        help="require every schema retry_counters entry in 'counters'")
    parser.add_argument(
        "--require-recovered", action="store_true",
        help="require campaign.retry.recovered_targets > 0 (lossy runs)")
    args = parser.parse_args()

    with open(args.schema) as handle:
        schema = json.load(handle)

    try:
        with open(args.artifact) as handle:
            doc = json.load(handle)
    except json.JSONDecodeError as error:
        fail(["%s: malformed JSON at offset %d: %s"
              % (args.artifact, error.pos, error.msg)], status=2)
    except (OSError, ValueError) as error:
        fail(["cannot read %s: %s" % (args.artifact, error)], status=2)

    problems = []
    for key in schema["required_top"]:
        if key not in doc:
            problems.append("missing top-level key '%s'" % key)
    if problems:
        fail(problems)

    if doc["tool"] != "cloudmap":
        problems.append("'tool' is %r, expected 'cloudmap'" % doc["tool"])
    if doc["schema_version"] != schema["schema_version"]:
        problems.append("schema_version %r, expected %r"
                        % (doc["schema_version"], schema["schema_version"]))

    stages = doc["stages"]
    if not isinstance(stages, dict):
        fail(problems + ["'stages' is not an object"])
    for name, stage in sorted(stages.items()):
        if not isinstance(stage, dict):
            problems.append("stage '%s' is not an object" % name)
            continue
        for key in schema["required_stage_keys"]:
            if key not in stage:
                problems.append("stage '%s' missing key '%s'" % (name, key))
            elif key == "tallies":
                if not isinstance(stage[key], dict):
                    problems.append("stage '%s' key 'tallies' is not an object"
                                    % name)
            elif not isinstance(stage[key], (int, float)):
                problems.append("stage '%s' key '%s' is not numeric"
                                % (name, key))

    if not args.partial:
        for name in schema["required_stages"]:
            if name not in stages:
                problems.append("full-pipeline artifact missing stage '%s'"
                                % name)

    if args.require_query_counters:
        counters = doc.get("counters", {})
        for name in schema.get("query_counters", []):
            if name not in counters:
                problems.append("missing query counter '%s'" % name)

    if args.require_retry_counters:
        counters = doc.get("counters", {})
        for name in schema.get("retry_counters", []):
            if name not in counters:
                problems.append("missing retry counter '%s'" % name)

    if args.require_recovered:
        recovered = doc.get("counters", {}).get(
            "campaign.retry.recovered_targets")
        if not isinstance(recovered, int) or recovered <= 0:
            problems.append(
                "campaign.retry.recovered_targets is %r, expected > 0"
                % (recovered,))

    if problems:
        fail(problems)
    print("ok: %s (%d stages, %d counters)"
          % (args.artifact, len(stages), len(doc["counters"])))


if __name__ == "__main__":
    main()
