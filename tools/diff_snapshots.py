#!/usr/bin/env python3
"""Compare two cloudmap binary snapshots longitudinally.

Usage: diff_snapshots.py A.snap B.snap

Independently re-implements the snapshot reader (format spec: DESIGN.md §7–8,
src/io/snapshot.h) so CI cross-checks the C++ codec: magic, format version
(v1 and v2 both accepted), and every section CRC are verified with Python's
zlib.crc32 before anything is compared. Prints the segment- and pin-level
churn between the two runs — the same added/removed/re-confirmed/re-pinned
classes `cloudmap_cli diff` reports — plus per-segment confidence drift for
v2 snapshots and the metadata of each side.

Exit status: 0 when both files parse (identical or not), 1 on any parse or
validation error — or, with --expect-identical, when the two runs disagree
at the segment/pin level (the stage-metrics section carries real wall-clock
timings, so whole-file byte equality across runs is NOT expected; equality
of the *results* is). Use `cloudmap_cli diff` when you need the full
per-segment listing; this tool is the CI-friendly summary.
"""
import argparse
import struct
import sys
import zlib

MAGIC = b"CMSNAP"
FORMAT_VERSIONS = (1, 2)  # v2 adds the per-segment confidence section (id 6)
HEADER = struct.Struct("<6sHI")
TABLE_ENTRY = struct.Struct("<IQQI")

CONFIRMATION_NAMES = [
    "unconfirmed", "ixp_client", "hybrid", "reachability", "alias_relabel",
]


class SnapshotError(Exception):
    pass


class Cursor(object):
    """Bounds-checked little-endian reader over one section payload."""

    def __init__(self, data, label):
        self.data = data
        self.pos = 0
        self.label = label

    def take(self, fmt):
        size = struct.calcsize(fmt)
        if self.pos + size > len(self.data):
            raise SnapshotError("section %s truncated" % self.label)
        values = struct.unpack_from("<" + fmt, self.data, self.pos)
        self.pos += size
        return values if len(values) > 1 else values[0]

    def done(self):
        if self.pos != len(self.data):
            raise SnapshotError("section %s has trailing bytes" % self.label)


def read_snapshot(path):
    with open(path, "rb") as handle:
        blob = handle.read()
    if len(blob) < HEADER.size:
        raise SnapshotError("%s: shorter than the header" % path)
    magic, version, section_count = HEADER.unpack_from(blob, 0)
    if magic != MAGIC:
        raise SnapshotError("%s: bad magic (not a cloudmap snapshot)" % path)
    if version not in FORMAT_VERSIONS:
        raise SnapshotError("%s: format version %d, expected one of %s"
                            % (path, version, list(FORMAT_VERSIONS)))

    sections = {}
    table_end = HEADER.size + section_count * TABLE_ENTRY.size
    if table_end > len(blob):
        raise SnapshotError("%s: truncated section table" % path)
    for i in range(section_count):
        sid, offset, size, crc = TABLE_ENTRY.unpack_from(
            blob, HEADER.size + i * TABLE_ENTRY.size)
        if offset + size > len(blob):
            raise SnapshotError("%s: section %d extends past end of file"
                                % (path, sid))
        payload = blob[offset:offset + size]
        if zlib.crc32(payload) & 0xFFFFFFFF != crc:
            raise SnapshotError("%s: section %d CRC mismatch" % (path, sid))
        sections[sid] = payload

    for sid in (1, 2, 3):
        if sid not in sections:
            raise SnapshotError("%s: missing required section %d" % (path, sid))

    meta = Cursor(sections[1], "meta")
    seed, threads, subject = meta.take("QiB")
    meta.done()

    segments = {}
    segment_order = []  # (abi, cbi) in file order, for the confidence section
    body = Cursor(sections[2], "segments")
    for _ in range(body.take("I")):
        abi, cbi, _prior, _post = body.take("IIII")
        _round = body.take("i")
        confirmation, flags, group = body.take("BBB")
        if confirmation >= len(CONFIRMATION_NAMES):
            raise SnapshotError("%s: confirmation %d out of range"
                                % (path, confirmation))
        _owner, peer_asn, _org = body.take("III")
        for _ in range(body.take("I")):
            body.take("I")  # regions
        for _ in range(body.take("I")):
            body.take("I")  # dest /24s
        segments[(abi, cbi)] = (confirmation, flags, group, peer_asn)
        segment_order.append((abi, cbi))
    body.done()

    # v2 confidence section: parallel to the segment table, in file order.
    confidence = {}
    if version >= 2:
        if 6 not in sections:
            raise SnapshotError("%s: v2 snapshot missing confidence section"
                                % path)
        body = Cursor(sections[6], "confidence")
        count = body.take("I")
        if count != len(segment_order):
            raise SnapshotError(
                "%s: confidence count %d != segment count %d"
                % (path, count, len(segment_order)))
        for key in segment_order:
            observations, rounds_mask = body.take("II")
            density, score = body.take("dd")
            if not (0.0 <= density <= 1.0) or not (0.0 <= score <= 1.0):
                raise SnapshotError("%s: confidence fields out of range for "
                                    "%s > %s" % (path, ip(key[0]), ip(key[1])))
            confidence[key] = (observations, rounds_mask, density, score)
        body.done()

    pins = {}
    body = Cursor(sections[3], "pins")
    for _ in range(body.take("I")):
        address, metro = body.take("II")
        _rule, _source = body.take("BB")
        body.take("i")
        pins[address] = metro
    for _ in range(body.take("I")):
        body.take("II")  # regional fallback entries
    body.done()

    return {"path": path, "seed": seed, "threads": threads,
            "subject": subject, "version": version, "segments": segments,
            "pins": pins, "confidence": confidence}


def ip(value):
    return "%d.%d.%d.%d" % (value >> 24 & 255, value >> 16 & 255,
                            value >> 8 & 255, value & 255)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("a")
    parser.add_argument("b")
    parser.add_argument(
        "--expect-identical", action="store_true",
        help="exit 1 if the snapshots differ at the segment/pin level")
    args = parser.parse_args()

    try:
        a = read_snapshot(args.a)
        b = read_snapshot(args.b)
    except SnapshotError as error:
        print("FAIL: %s" % error, file=sys.stderr)
        sys.exit(1)

    for side in (a, b):
        print("%s: v%d, seed %d, %d threads, %d segments, %d pins"
              % (side["path"], side["version"], side["seed"], side["threads"],
                 len(side["segments"]), len(side["pins"])))

    added = sorted(set(b["segments"]) - set(a["segments"]))
    removed = sorted(set(a["segments"]) - set(b["segments"]))
    common = sorted(set(a["segments"]) & set(b["segments"]))
    reconfirmed = [key for key in common
                   if a["segments"][key][0] != b["segments"][key][0]]
    repinned = sorted(address for address in
                      set(a["pins"]) & set(b["pins"])
                      if a["pins"][address] != b["pins"][address])

    print("segments: +%d -%d, %d common, %d re-confirmed"
          % (len(added), len(removed), len(common), len(reconfirmed)))
    print("pins: %d re-pinned" % len(repinned))

    # Confidence drift: only meaningful when both sides carry the v2 section.
    rescored = []
    if a["confidence"] and b["confidence"]:
        rescored = [key for key in common
                    if a["confidence"].get(key) != b["confidence"].get(key)]
        print("confidence: %d of %d common segments re-scored"
              % (len(rescored), len(common)))
        for key in rescored[:10]:
            print("  ~ %s > %s: %.3f -> %.3f"
                  % (ip(key[0]), ip(key[1]),
                     a["confidence"][key][3], b["confidence"][key][3]))
    for abi, cbi in added[:10]:
        print("  + %s > %s" % (ip(abi), ip(cbi)))
    for abi, cbi in removed[:10]:
        print("  - %s > %s" % (ip(abi), ip(cbi)))
    for key in reconfirmed[:10]:
        print("  ~ %s > %s: %s -> %s"
              % (ip(key[0]), ip(key[1]),
                 CONFIRMATION_NAMES[a["segments"][key][0]],
                 CONFIRMATION_NAMES[b["segments"][key][0]]))
    changed = bool(added or removed or reconfirmed or repinned or rescored
                   or a["pins"] != b["pins"])
    if not changed:
        print("snapshots are identical at the segment/pin level")
    elif args.expect_identical:
        print("FAIL: snapshots were expected to be identical", file=sys.stderr)
        sys.exit(1)


if __name__ == "__main__":
    main()
