#!/usr/bin/env python3
"""Compare two or more cloudmap binary snapshots longitudinally.

Usage: diff_snapshots.py A.snap B.snap [C.snap ...]
       diff_snapshots.py --shard-parts PART [PART ...] [--expect-complete]

Independently re-implements the snapshot reader (format spec: DESIGN.md §7–8
and §11, src/io/snapshot.h, src/io/snapshot_v3.h) so CI cross-checks the C++
codec: magic, format version (v1, v2, and the flat zero-copy v3 all
accepted), and every section CRC are verified with Python's zlib.crc32
before anything is compared. For v3 files the flat-fabric blob's directory
is walked directly (the same records FabricView serves from). Prints the
segment- and pin-level churn between the two runs — the same
added/removed/re-confirmed/re-pinned classes `cloudmap_cli diff` reports —
plus per-segment confidence drift for v2+ snapshots and the metadata of
each side, so mixed-version pairs (e.g. a v2 archive against a v3 re-save)
diff cleanly. The optional hazard section (id 8) is decoded when present
and each side's hazard profile is reported.

With more than two snapshots the tool switches to a longitudinal summary:
one turnover row per consecutive pair (added/removed/re-confirmed segments,
re-pinned addresses, mean confidence drift) — the table the churn scorecard
and the hazard-matrix CI job read to check that a snapshot sequence
reconstructs planted peering turnover.

With --shard-parts the arguments are campaign shard part files (the
"CMSHARD2" interchange format of `cloudmap_cli campaign --shard`, spec in
src/io/shard.h) instead of snapshots — any subset of a round's parts, so a
half-finished distributed campaign can be audited in place. The reader is
again independent of the C++ codec: header layout, the header CRC-32, each
record's payload CRC-32, round-robin item ownership (item j belongs to
shard j % N), and strictly increasing canonical order are all re-checked
here, and the tool prints a coverage summary (which shard indices are
present, records vs. owned items). Partial sets exit 0 unless
--expect-complete is given.

Exit status: 0 when all files parse (identical or not); 1 on a *semantic*
failure — --expect-identical with a differing pair, --expect-complete with
shards missing, or a part set mixing campaigns/rounds; 2 when any input
file is truncated, corrupt, or not the claimed format at all, with a
stderr diagnostic naming the byte offset of the violation (the
untrusted-input contract, DESIGN.md §14 — garbage in must be a clean
diagnosis, never a traceback). Whole-file byte equality across runs is NOT
expected (the stage-metrics section carries real wall-clock timings);
equality of the *results* is. Use `cloudmap_cli diff` when you need the
full per-segment listing; this tool is the CI-friendly summary.
"""
import argparse
import struct
import sys
import zlib

MAGIC = b"CMSNAP"
# v2 adds the per-segment confidence section (id 6); v3 replaces sections
# 2-6 with one flat zero-copy blob (section id 7).
FORMAT_VERSIONS = (1, 2, 3)
HEADER = struct.Struct("<6sHI")
TABLE_ENTRY = struct.Struct("<IQQI")

FLAT_MAGIC = 0x33464D43  # "CMF3", little-endian
# V3Segment prefix through rounds_mask (spans and floats read separately).
V3_SEGMENT = struct.Struct("<IIIIiBBBBIIIII")
V3_SEGMENT_SIZE = 80
V3_PIN = struct.Struct("<IIBBHi")
V3_PIN_SIZE = 16

# Campaign shard part files (src/io/shard.h): fixed 56-byte header (52
# identity bytes + their CRC-32), then record_count x { u64 item | u32 size
# | payload | u32 CRC-32(payload) }.
SHARD_MAGIC = b"CMSHARD2"
SHARD_HEADER = struct.Struct("<8sQIIIQQQI")

CONFIRMATION_NAMES = [
    "unconfirmed", "ixp_client", "hybrid", "reachability", "alias_relabel",
]


class SnapshotError(Exception):
    """Semantic failure over well-formed inputs (mixed part sets,
    --expect-complete with missing shards): exit 1."""


class ParseError(SnapshotError):
    """Malformed input bytes — truncation, bad magic, CRC mismatch, fields
    out of range. Always names the offending byte offset: exit 2."""


class Cursor(object):
    """Bounds-checked little-endian reader over one section payload."""

    def __init__(self, data, label):
        self.data = data
        self.pos = 0
        self.label = label

    def take(self, fmt):
        size = struct.calcsize(fmt)
        if self.pos + size > len(self.data):
            raise ParseError(
                "section %s truncated at offset %d (need %d more bytes, "
                "%d remain)" % (self.label, self.pos, size,
                                len(self.data) - self.pos))
        values = struct.unpack_from("<" + fmt, self.data, self.pos)
        self.pos += size
        return values if len(values) > 1 else values[0]

    def done(self):
        if self.pos != len(self.data):
            raise ParseError("section %s has %d trailing bytes at offset %d"
                             % (self.label, len(self.data) - self.pos,
                                self.pos))


def read_snapshot(path):
    with open(path, "rb") as handle:
        blob = handle.read()
    if len(blob) < HEADER.size:
        raise ParseError("%s: %d bytes, shorter than the %d-byte header"
                         % (path, len(blob), HEADER.size))
    magic, version, section_count = HEADER.unpack_from(blob, 0)
    if magic != MAGIC:
        raise ParseError("%s: bad magic at offset 0 (not a cloudmap "
                         "snapshot)" % path)
    if version not in FORMAT_VERSIONS:
        raise ParseError("%s: format version %d at offset 6, expected "
                         "one of %s" % (path, version,
                                        list(FORMAT_VERSIONS)))

    sections = {}
    table_end = HEADER.size + section_count * TABLE_ENTRY.size
    if table_end > len(blob):
        raise ParseError("%s: section table runs to offset %d but the file "
                         "ends at %d" % (path, table_end, len(blob)))
    for i in range(section_count):
        sid, offset, size, crc = TABLE_ENTRY.unpack_from(
            blob, HEADER.size + i * TABLE_ENTRY.size)
        if offset + size > len(blob):
            raise ParseError("%s: section %d (table entry at offset %d) "
                             "declares bytes [%d, %d) past end of file (%d "
                             "bytes)" % (path, sid,
                                         HEADER.size + i * TABLE_ENTRY.size,
                                         offset, offset + size, len(blob)))
        payload = blob[offset:offset + size]
        if zlib.crc32(payload) & 0xFFFFFFFF != crc:
            raise ParseError("%s: section %d CRC mismatch (payload at "
                             "offset %d)" % (path, sid, offset))
        sections[sid] = payload

    required = (1, 7) if version >= 3 else (1, 2, 3)
    for sid in required:
        if sid not in sections:
            raise ParseError("%s: missing required section %d"
                             % (path, sid))

    meta = Cursor(sections[1], "meta")
    seed, threads, subject = meta.take("QiB")
    if version >= 3:
        # v3 pads the meta section to 20 bytes so the flat blob that follows
        # sits 8-byte aligned in the file.
        pad = meta.take("7B")
        if any(pad):
            raise ParseError("%s: nonzero meta padding" % path)
    meta.done()

    hazard = read_hazard(path, sections.get(8))

    if version >= 3:
        segments, pins, confidence = read_flat_fabric(path, sections[7])
        return {"path": path, "seed": seed, "threads": threads,
                "subject": subject, "version": version, "segments": segments,
                "pins": pins, "confidence": confidence, "hazard": hazard}

    segments = {}
    segment_order = []  # (abi, cbi) in file order, for the confidence section
    body = Cursor(sections[2], "segments")
    for _ in range(body.take("I")):
        abi, cbi, _prior, _post = body.take("IIII")
        _round = body.take("i")
        confirmation, flags, group = body.take("BBB")
        if confirmation >= len(CONFIRMATION_NAMES):
            raise ParseError("%s: confirmation %d out of range"
                             % (path, confirmation))
        _owner, peer_asn, _org = body.take("III")
        for _ in range(body.take("I")):
            body.take("I")  # regions
        for _ in range(body.take("I")):
            body.take("I")  # dest /24s
        segments[(abi, cbi)] = (confirmation, flags, group, peer_asn)
        segment_order.append((abi, cbi))
    body.done()

    # v2 confidence section: parallel to the segment table, in file order.
    confidence = {}
    if version >= 2:
        if 6 not in sections:
            raise ParseError("%s: v2 snapshot missing confidence section"
                             % path)
        body = Cursor(sections[6], "confidence")
        count = body.take("I")
        if count != len(segment_order):
            raise ParseError(
                "%s: confidence count %d != segment count %d"
                % (path, count, len(segment_order)))
        for key in segment_order:
            observations, rounds_mask = body.take("II")
            density, score = body.take("dd")
            if not (0.0 <= density <= 1.0) or not (0.0 <= score <= 1.0):
                raise ParseError("%s: confidence fields out of range for "
                                 "%s > %s" % (path, ip(key[0]), ip(key[1])))
            confidence[key] = (observations, rounds_mask, density, score)
        body.done()

    pins = {}
    body = Cursor(sections[3], "pins")
    for _ in range(body.take("I")):
        address, metro = body.take("II")
        _rule, _source = body.take("BB")
        body.take("i")
        pins[address] = metro
    for _ in range(body.take("I")):
        body.take("II")  # regional fallback entries
    body.done()

    return {"path": path, "seed": seed, "threads": threads,
            "subject": subject, "version": version, "segments": segments,
            "pins": pins, "confidence": confidence, "hazard": hazard}


def read_hazard(path, payload):
    """Decode the optional hazard-provenance section (id 8): the profile
    spec string plus name->value scorecard metrics. Absent section (the
    pre-hazard layout) decodes as an empty profile."""
    if payload is None:
        return {"profile": "", "metrics": {}}
    body = Cursor(payload, "hazard")

    def string(what):
        # Strings are u32 length + raw bytes (same codec as every other
        # string in the format).
        start = body.pos
        raw = body.take("%ds" % body.take("I"))
        try:
            return raw.decode("utf-8")
        except UnicodeDecodeError as error:
            raise ParseError("%s: hazard %s at section offset %d is not "
                             "UTF-8 (%s)" % (path, what, start, error))

    profile = string("profile")
    metrics = {}
    for _ in range(body.take("I")):
        name = string("metric name")
        metrics[name] = body.take("d")
    body.done()
    return {"profile": profile, "metrics": metrics}


def read_flat_fabric(path, blob):
    """Parse the v3 flat-fabric blob into the same (segments, pins,
    confidence) shape the v1/v2 section walk produces, bounds-checking the
    directory like snapv3::validate_flat_fabric does."""
    if len(blob) < 400:
        raise ParseError("%s: flat blob is %d bytes, shorter than its "
                         "directory" % (path, len(blob)))
    magic, blob_size = struct.unpack_from("<II", blob, 0)
    if magic != FLAT_MAGIC:
        raise ParseError("%s: bad flat-fabric magic at blob offset 0"
                         % path)
    if blob_size != len(blob):
        raise ParseError("%s: flat blob size field %d != payload size "
                         "%d" % (path, blob_size, len(blob)))

    def table(index):
        # Directory off/count pairs start at byte 8: segments, reports,
        # tallies, pins, regional, trie, by_peer, by_metro, alias, pool,
        # strings (src/io/snapshot_v3.h).
        return struct.unpack_from("<II", blob, 8 + index * 8)

    segments_off, segment_count = table(0)
    pins_off, pin_count = table(3)
    if segments_off + segment_count * V3_SEGMENT_SIZE > len(blob):
        raise ParseError("%s: %d segment records at blob offset %d run past "
                         "the blob end (%d bytes)"
                         % (path, segment_count, segments_off, len(blob)))
    if pins_off + pin_count * V3_PIN_SIZE > len(blob):
        raise ParseError("%s: %d pin records at blob offset %d run past the "
                         "blob end (%d bytes)"
                         % (path, pin_count, pins_off, len(blob)))

    segments = {}
    confidence = {}
    for i in range(segment_count):
        base = segments_off + i * V3_SEGMENT_SIZE
        (abi, cbi, _prior, _post, _round, confirmation, flags, group, _pad,
         _owner, peer_asn, _org, observations,
         rounds_mask) = V3_SEGMENT.unpack_from(blob, base)
        if confirmation >= len(CONFIRMATION_NAMES):
            raise ParseError("%s: confirmation %d out of range"
                             % (path, confirmation))
        density, score = struct.unpack_from("<dd", blob, base + 64)
        if not (0.0 <= density <= 1.0) or not (0.0 <= score <= 1.0):
            raise ParseError("%s: confidence fields out of range for "
                             "%s > %s" % (path, ip(abi), ip(cbi)))
        segments[(abi, cbi)] = (confirmation, flags, group, peer_asn)
        confidence[(abi, cbi)] = (observations, rounds_mask, density, score)

    pins = {}
    for i in range(pin_count):
        address, metro, _rule, _source, _pad, _round = V3_PIN.unpack_from(
            blob, pins_off + i * V3_PIN_SIZE)
        pins[address] = metro
    return segments, pins, confidence


def shard_owned_items(header):
    """Work items owned by this shard under round-robin assignment."""
    total, index, count = (header["total_items"], header["shard_index"],
                           header["shard_count"])
    return total // count + (1 if index < total % count else 0)


def read_shard_part(path):
    """Parse and fully validate one CMSHARD2 part file: header sanity, the
    header CRC, per-record payload CRC, round-robin item ownership, strictly
    increasing canonical order, and the finished record count."""
    with open(path, "rb") as handle:
        blob = handle.read()
    if len(blob) < SHARD_HEADER.size:
        raise ParseError("%s: %d bytes, shorter than the %d-byte shard "
                         "header" % (path, len(blob), SHARD_HEADER.size))
    (magic, digest, round_, index, count, total_items, target_count,
     record_count, header_crc) = SHARD_HEADER.unpack_from(blob, 0)
    if magic != SHARD_MAGIC:
        raise ParseError("%s: bad magic at offset 0 (not a shard part file)"
                         % path)
    if zlib.crc32(blob[:SHARD_HEADER.size - 4]) & 0xFFFFFFFF != header_crc:
        raise ParseError("%s: header CRC mismatch (stored at offset %d)"
                         % (path, SHARD_HEADER.size - 4))
    if round_ not in (1, 2):
        raise ParseError("%s: round %d out of range (header offset 16)"
                         % (path, round_))
    if count < 1 or index >= count:
        raise ParseError("%s: shard index %d of %d out of range (header "
                         "offset 20)" % (path, index, count))
    header = {"path": path, "digest": digest, "round": round_,
              "shard_index": index, "shard_count": count,
              "total_items": total_items, "target_count": target_count,
              "record_count": record_count, "bytes": len(blob)}
    owned = shard_owned_items(header)
    if record_count != owned:
        raise ParseError(
            "%s: truncated or unfinished part: %d records, shard owns %d "
            "items" % (path, record_count, owned))

    pos = SHARD_HEADER.size
    previous_item = -1
    for record in range(record_count):
        if pos + 12 > len(blob):
            raise ParseError("%s: record %d header at offset %d past end of "
                             "file (%d bytes)" % (path, record, pos,
                                                  len(blob)))
        item, size = struct.unpack_from("<QI", blob, pos)
        pos += 12
        if pos + size + 4 > len(blob):
            raise ParseError("%s: record %d declares a %d-byte payload at "
                             "offset %d but the file ends at %d"
                             % (path, record, size, pos, len(blob)))
        payload = blob[pos:pos + size]
        (crc,) = struct.unpack_from("<I", blob, pos + size)
        pos += size + 4
        if zlib.crc32(payload) & 0xFFFFFFFF != crc:
            raise ParseError("%s: record %d (item %d) CRC mismatch (payload "
                             "at offset %d)" % (path, record, item,
                                                pos - size - 4))
        if item % count != index:
            raise ParseError("%s: record %d carries item %d, owned by "
                             "shard %d" % (path, record, item,
                                           item % count))
        if item <= previous_item:
            raise ParseError("%s: record %d out of canonical order "
                             "(item %d after %d)"
                             % (path, record, item, previous_item))
        if item >= total_items:
            raise ParseError("%s: record %d item %d >= total items %d"
                             % (path, record, item, total_items))
        previous_item = item
    if pos != len(blob):
        raise ParseError("%s: %d trailing bytes at offset %d after the last "
                         "record" % (path, len(blob) - pos, pos))
    return header


def shard_summary(parts, expect_complete):
    """Audit a (possibly partial) set of one round's already-parsed shard
    parts: check cross-part consistency and print coverage."""
    reference = parts[0]
    seen = {}
    for part in parts:
        for field in ("digest", "round", "shard_count", "total_items",
                      "target_count"):
            if part[field] != reference[field]:
                raise SnapshotError(
                    "%s: %s %s disagrees with %s's %s (mixed campaigns or "
                    "rounds?)" % (part["path"], field, part[field],
                                  reference["path"], reference[field]))
        if part["shard_index"] in seen:
            raise SnapshotError("duplicate shard index %d: %s and %s"
                                % (part["shard_index"],
                                   seen[part["shard_index"]], part["path"]))
        seen[part["shard_index"]] = part["path"]
        print("%s: round %d, shard %d/%d, %d records, %d bytes"
              % (part["path"], part["round"], part["shard_index"],
                 part["shard_count"], part["record_count"], part["bytes"]))

    count = reference["shard_count"]
    missing = sorted(set(range(count)) - set(seen))
    records = sum(part["record_count"] for part in parts)
    print("coverage: %d of %d shards present, %d of %d work items "
          "(digest %016x, round %d)"
          % (len(parts), count, records, reference["total_items"],
             reference["digest"], reference["round"]))
    if missing:
        print("missing shards: %s" % ", ".join(str(i) for i in missing))
        if expect_complete:
            raise SnapshotError(
                "incomplete part set: %d of %d shards missing"
                % (len(missing), count))
    else:
        print("part set is complete and merge-ready")


def ip(value):
    return "%d.%d.%d.%d" % (value >> 24 & 255, value >> 16 & 255,
                            value >> 8 & 255, value & 255)


def pair_diff(a, b):
    """The segment/pin churn between two parsed snapshots."""
    added = sorted(set(b["segments"]) - set(a["segments"]))
    removed = sorted(set(a["segments"]) - set(b["segments"]))
    common = sorted(set(a["segments"]) & set(b["segments"]))
    reconfirmed = [key for key in common
                   if a["segments"][key][0] != b["segments"][key][0]]
    repinned = sorted(address for address in
                      set(a["pins"]) & set(b["pins"])
                      if a["pins"][address] != b["pins"][address])
    rescored = []
    if a["confidence"] and b["confidence"]:
        rescored = [key for key in common
                    if a["confidence"].get(key) != b["confidence"].get(key)]
    changed = bool(added or removed or reconfirmed or repinned or rescored
                   or a["pins"] != b["pins"])
    return {"added": added, "removed": removed, "common": common,
            "reconfirmed": reconfirmed, "repinned": repinned,
            "rescored": rescored, "changed": changed}


def mean_confidence(side):
    if not side["confidence"]:
        return None
    scores = [entry[3] for entry in side["confidence"].values()]
    return sum(scores) / len(scores) if scores else 0.0


def print_header(side):
    line = ("%s: v%d, seed %d, %d threads, %d segments, %d pins"
            % (side["path"], side["version"], side["seed"], side["threads"],
               len(side["segments"]), len(side["pins"])))
    if side["hazard"]["profile"]:
        line += ", hazards %s" % side["hazard"]["profile"]
    print(line)


def print_pair(a, b, diff):
    print("segments: +%d -%d, %d common, %d re-confirmed"
          % (len(diff["added"]), len(diff["removed"]), len(diff["common"]),
             len(diff["reconfirmed"])))
    print("pins: %d re-pinned" % len(diff["repinned"]))

    # Confidence drift: only meaningful when both sides carry the v2 section.
    if a["confidence"] and b["confidence"]:
        print("confidence: %d of %d common segments re-scored"
              % (len(diff["rescored"]), len(diff["common"])))
        for key in diff["rescored"][:10]:
            print("  ~ %s > %s: %.3f -> %.3f"
                  % (ip(key[0]), ip(key[1]),
                     a["confidence"][key][3], b["confidence"][key][3]))
    for abi, cbi in diff["added"][:10]:
        print("  + %s > %s" % (ip(abi), ip(cbi)))
    for abi, cbi in diff["removed"][:10]:
        print("  - %s > %s" % (ip(abi), ip(cbi)))
    for key in diff["reconfirmed"][:10]:
        print("  ~ %s > %s: %s -> %s"
              % (ip(key[0]), ip(key[1]),
                 CONFIRMATION_NAMES[a["segments"][key][0]],
                 CONFIRMATION_NAMES[b["segments"][key][0]]))


def print_longitudinal(sides, diffs):
    """One turnover row per consecutive pair, plus mean confidence drift —
    the summary the churn scorecard's snapshot sequences are read with."""
    print("longitudinal turnover over %d snapshots:" % len(sides))
    print("  %-24s %6s %6s %8s %8s %10s" %
          ("transition", "+segs", "-segs", "reconf", "repin", "conf-drift"))
    for i, diff in enumerate(diffs):
        before, after = mean_confidence(sides[i]), mean_confidence(sides[i + 1])
        drift = ("%+.4f" % (after - before)
                 if before is not None and after is not None else "n/a")
        print("  t%-3d -> t%-17d %6d %6d %8d %8d %10s"
              % (i, i + 1, len(diff["added"]), len(diff["removed"]),
                 len(diff["reconfirmed"]), len(diff["repinned"]), drift))
    total_added = sum(len(d["added"]) for d in diffs)
    total_removed = sum(len(d["removed"]) for d in diffs)
    print("total turnover: +%d -%d across %d transitions"
          % (total_added, total_removed, len(diffs)))


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("snapshots", nargs="+", metavar="SNAP",
                        help="two or more snapshot files, oldest first")
    parser.add_argument(
        "--expect-identical", action="store_true",
        help="exit 1 if any consecutive pair differs at the segment/pin level")
    parser.add_argument(
        "--shard-parts", action="store_true",
        help="treat the arguments as campaign shard part files (any subset "
             "of one round's parts) and audit them instead of diffing")
    parser.add_argument(
        "--expect-complete", action="store_true",
        help="with --shard-parts: exit 1 unless every shard of the round "
             "is present")
    args = parser.parse_args()
    if args.shard_parts:
        try:
            parts = [read_shard_part(path) for path in args.snapshots]
        except (ParseError, OSError) as error:
            print("FAIL: %s" % error, file=sys.stderr)
            sys.exit(2)
        try:
            shard_summary(parts, args.expect_complete)
        except SnapshotError as error:
            print("FAIL: %s" % error, file=sys.stderr)
            sys.exit(1)
        return
    if len(args.snapshots) < 2:
        parser.error("need at least two snapshots to diff")

    try:
        sides = [read_snapshot(path) for path in args.snapshots]
    except (ParseError, OSError) as error:
        print("FAIL: %s" % error, file=sys.stderr)
        sys.exit(2)

    for side in sides:
        print_header(side)

    diffs = [pair_diff(sides[i], sides[i + 1])
             for i in range(len(sides) - 1)]
    if len(sides) == 2:
        print_pair(sides[0], sides[1], diffs[0])
    else:
        print_longitudinal(sides, diffs)

    if not any(diff["changed"] for diff in diffs):
        print("snapshots are identical at the segment/pin level")
    elif args.expect_identical:
        print("FAIL: snapshots were expected to be identical", file=sys.stderr)
        sys.exit(1)


if __name__ == "__main__":
    main()
