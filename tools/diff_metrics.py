#!/usr/bin/env python3
"""Diff two cloudmap metrics artifacts stage by stage.

Usage: diff_metrics.py A.json B.json [--label-a NAME] [--label-b NAME]

Prints a side-by-side table of every per-stage numeric field in either
artifact, with the relative change. Typical use is comparing the same
workload across thread counts:

    CLOUDMAP_THREADS=1 cloudmap_cli campaign 42 /tmp/f.txt --metrics-json t1.json
    CLOUDMAP_THREADS=4 cloudmap_cli campaign 42 /tmp/f.txt --metrics-json t4.json
    tools/diff_metrics.py t1.json t4.json --label-a 1-thread --label-b 4-thread

Structural fields (targets, traceroutes, probes, bgp_cache_misses) must be
identical across thread counts — that is the determinism contract — while
wall_ms, worker_utilization, and bgp_cache_hits may legitimately differ.
The exit status is always 0; this is a reporting tool, not a checker.
"""
import argparse
import json
import sys


def load_artifact(path):
    # Named exceptions only (the lint's py-bare-except rule): a missing or
    # garbled artifact is a clean usage error, not a traceback.
    try:
        with open(path) as handle:
            return json.load(handle)
    except (OSError, ValueError) as error:
        print("diff_metrics: cannot read %s: %s" % (path, error),
              file=sys.stderr)
        sys.exit(2)


def stage_rows(stage):
    rows = {}
    for key, value in stage.items():
        if key == "tallies":
            for name, tally in value.items():
                rows["tally." + name] = tally
        else:
            rows[key] = value
    return rows


def fmt(value):
    if value is None:
        return "-"
    if isinstance(value, float) and not value.is_integer():
        return "%.3f" % value
    return "%d" % value


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("a")
    parser.add_argument("b")
    parser.add_argument("--label-a", default="A")
    parser.add_argument("--label-b", default="B")
    args = parser.parse_args()

    doc_a = load_artifact(args.a)
    doc_b = load_artifact(args.b)

    print("%s: seed %s, %s threads | %s: seed %s, %s threads"
          % (args.label_a, doc_a.get("seed"), doc_a.get("threads"),
             args.label_b, doc_b.get("seed"), doc_b.get("threads")))
    header = "%-22s %-24s %14s %14s %10s"
    print(header % ("stage", "metric", args.label_a, args.label_b, "delta"))
    print("-" * 88)

    stages = list(doc_a.get("stages", {}))
    for name in doc_b.get("stages", {}):
        if name not in stages:
            stages.append(name)
    for name in stages:
        rows_a = stage_rows(doc_a.get("stages", {}).get(name, {}))
        rows_b = stage_rows(doc_b.get("stages", {}).get(name, {}))
        keys = list(rows_a)
        keys += [key for key in rows_b if key not in rows_a]
        for key in keys:
            va = rows_a.get(key)
            vb = rows_b.get(key)
            if va == vb:
                delta = "="
            elif va in (None, 0) or vb is None:
                delta = "!"
            else:
                delta = "%+.1f%%" % (100.0 * (vb - va) / va)
            print(header % (name, key, fmt(va), fmt(vb), delta))


if __name__ == "__main__":
    main()
