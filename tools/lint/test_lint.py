#!/usr/bin/env python3
"""Self-test for cloudmap_lint.py, run as the `LintSelfTest` ctest entry.

Every fixture directory under fixtures/ is a miniature repo root. A
directory named bad_<slug> must make the lint exit non-zero AND report the
expected rule id; a good_<slug> directory must lint clean. The manifest
below is the contract — adding a rule without a fixture pair fails here.
"""

import os
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
LINT = os.path.join(HERE, "cloudmap_lint.py")
FIXTURES = os.path.join(HERE, "fixtures")

# fixture directory -> rule id its bad half must trigger
EXPECTED_RULE = {
    "bad_nondet_call": "nondeterministic-call",
    "bad_hazard_nondet": "nondeterministic-call",
    "bad_unordered_iter": "unordered-iteration",
    "bad_raw_thread": "raw-thread",
    "bad_pragma_once": "pragma-once",
    "bad_include_order": "include-order",
    "bad_pragma_reason": "bad-pragma",
    "bad_hot_path_container": "hot-path-container",
    "bad_py_bare_except": "py-bare-except",
    "bad_py_wall_clock": "py-wall-clock",
    "bad_untrusted_alloc": "untrusted-alloc",
    "bad_untrusted_cast": "untrusted-cast",
    "bad_untrusted_extent": "untrusted-extent",
}


def run_lint(root):
    return subprocess.run(
        [sys.executable, LINT, "--root", root],
        capture_output=True, text=True, check=False)


def main():
    failures = []
    fixture_dirs = sorted(os.listdir(FIXTURES))

    missing = set(EXPECTED_RULE) - set(fixture_dirs)
    if missing:
        failures.append("manifest names missing fixtures: %s" %
                        ", ".join(sorted(missing)))

    for name in fixture_dirs:
        root = os.path.join(FIXTURES, name)
        if not os.path.isdir(root):
            continue
        result = run_lint(root)
        if name.startswith("bad_"):
            rule = EXPECTED_RULE.get(name)
            if rule is None:
                failures.append("%s: bad fixture not in the manifest" % name)
            elif result.returncode == 0:
                failures.append("%s: expected findings, lint exited 0" % name)
            elif "[%s]" % rule not in result.stdout:
                failures.append(
                    "%s: expected rule [%s], got:\n%s"
                    % (name, rule, result.stdout.strip() or "<no output>"))
        elif name.startswith("good_"):
            if result.returncode != 0:
                failures.append(
                    "%s: expected clean, lint reported:\n%s"
                    % (name, result.stdout.strip()))
        else:
            failures.append("%s: fixture must be named bad_* or good_*" %
                            name)

    # The tree itself must lint clean — the lint target's contract.
    repo_root = os.path.dirname(os.path.dirname(HERE))
    tree = run_lint(repo_root)
    if tree.returncode != 0:
        failures.append("repo tree is not lint-clean:\n%s" %
                        tree.stdout.strip())

    if failures:
        for failure in failures:
            print("FAIL: %s" % failure)
        return 1
    print("ok: %d fixtures + repo tree lint-clean" %
          sum(1 for d in fixture_dirs
              if os.path.isdir(os.path.join(FIXTURES, d))))
    return 0


if __name__ == "__main__":
    sys.exit(main())
