#!/usr/bin/env python3
"""cloudmap determinism & hygiene lint.

The repo's load-bearing promise is bit-identical fabrics, snapshots, and
metrics at every thread count. This lint makes the easy-to-break halves of
that promise *static*: sources of hidden nondeterminism (wall clocks,
ambient randomness, environment reads), iteration order leaking out of
unordered containers on serialization paths, and threads spawned outside
the one sanctioned pool. It also enforces the header hygiene the codebase
already follows (#pragma once, sorted include blocks).

Stdlib-only, no third-party deps. Two interfaces:

    python3 tools/lint/cloudmap_lint.py                  # lint the repo
    python3 tools/lint/cloudmap_lint.py --root DIR [p..] # lint another tree

Findings print as `path:line: [rule-id] message`; exit status is 0 when
clean, 1 when anything fired, 2 on usage errors.

Suppression pragmas (the reason is mandatory — an empty one is itself a
finding):

    // lint: wall-clock-ok(<reason>)   clocks, on the same or previous line
    // lint: env-ok(<reason>)          getenv
    // lint: rand-ok(<reason>)         rand / random_device
    // lint: sorted-ok(<reason>)       unordered iteration that is sorted
                                       (or provably order-insensitive)
    // lint: thread-ok(<reason>)       raw std::thread
    // lint: bounds-ok(<reason>)       untrusted-read family (parse paths)
    # lint: wall-clock-ok(<reason>)    Python wall clocks

Rules (C++ unless noted):

  nondeterministic-call   std::rand/srand/random_device, system_clock/
                          steady_clock/high_resolution_clock, time(),
                          clock(), getenv outside the allowlist (the obs
                          wall-clock layer, core/options env knobs).
  unordered-iteration     range-for / .begin() over a container declared
                          unordered_map/unordered_set, inside serialization
                          paths (src/io/, src/query/, src/scenario/,
                          src/serve/, src/obs/emit.cpp), without a
                          sorted-ok pragma.
  raw-thread              std::thread (or #include <thread>) anywhere but
                          src/util/parallel.h.
  pragma-once             every header starts with #pragma once before any
                          code line.
  include-order           include blocks are lexicographically sorted; a
                          block never mixes <...> and "..." styles; the
                          own header of a .cpp comes first.
  bad-pragma              a lint pragma with an empty reason.
  hot-path-container      std::map / std::set in a file carrying a
                          `// lint: hot-path` marker — node-based containers
                          chase a pointer per element; hot paths use the
                          flat structures (FlatPrefixTrie, FlatHashMap,
                          sorted vectors).
  py-bare-except          (Python) a bare `except:` clause.
  py-wall-clock           (Python) wall-clock reads — diff and validation
                          tools must be deterministic.

Untrusted-read family (parse paths only — src/io/, src/serve/protocol.cpp,
src/serve/client.cpp — the code that interprets attacker-controllable
bytes; contract in DESIGN.md §14). A value read straight off the wire
(`cursor.u8()/.u16()/.u32()/.u64()`) is tainted until a visible cap:
a `need()` / `wire::bounded_count` / `wire::checked_read` call, or a
comparison in an if/while mentioning it. Suppressible only via
`// lint: bounds-ok(<reason>)`.

  untrusted-alloc         a tainted length/count flows into .resize() /
                          .reserve() / new[] with no cap in between — a
                          forged 4 GiB count becomes a 4 GiB allocation.
  untrusted-cast          static_cast of a raw wire read to an enum, a
                          signed type, or a narrower integer — values
                          outside the target's range slip through; use
                          wire::checked_read<T>(cursor, max).
  untrusted-extent        a tainted size flows into memcpy/memmove/memset
                          with no cap — reads or writes past the validated
                          extent.
"""

import argparse
import os
import re
import sys

# --------------------------------------------------------------------------
# Shared machinery


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return "%s:%d: [%s] %s" % (self.path, self.line, self.rule,
                                   self.message)


# `lint: <token>-ok(<reason>)` with a mandatory non-empty reason.
PRAGMA_RE = re.compile(r"lint:\s*([a-z-]+)-ok\(\s*([^)]*?)\s*\)")
# A pragma-shaped comment whose reason is empty (caught as its own finding).
EMPTY_PRAGMA_RE = re.compile(r"lint:\s*[a-z-]+-ok\(\s*\)")


def pragma_tokens(lines, index):
    """Pragma tokens that apply to lines[index] (same line or the line
    above, so a long expression can carry its pragma as a lead comment)."""
    tokens = set()
    for i in (index, index - 1):
        if 0 <= i < len(lines):
            for match in PRAGMA_RE.finditer(lines[i]):
                if match.group(2):
                    tokens.add(match.group(1))
    return tokens


def check_empty_pragmas(path, lines, findings):
    for i, line in enumerate(lines):
        if EMPTY_PRAGMA_RE.search(line):
            findings.append(Finding(
                path, i + 1, "bad-pragma",
                "lint pragma without a reason — say why the exception is "
                "safe, e.g. `// lint: sorted-ok(keys sorted below)`"))


def strip_comment(line):
    """Drop // comments and string literals so patterns in prose or log
    text don't fire. (Heuristic: no multi-line /* */ tracking — the
    codebase uses // comments.)"""
    line = re.sub(r'"(?:[^"\\]|\\.)*"', '""', line)
    cut = line.find("//")
    return line if cut < 0 else line[:cut]


# --------------------------------------------------------------------------
# C++ rules

# rule nondeterministic-call: pattern -> (pragma token, what to use instead)
NONDET_PATTERNS = [
    (re.compile(r"\bstd::rand\b|\bsrand\s*\(|\brandom_device\b"), "rand",
     "use the seeded splitmix64 streams in util/rng.h"),
    (re.compile(r"\b(?:system_clock|steady_clock|high_resolution_clock)\b"),
     "wall-clock",
     "wall clocks may only feed the observability layer"),
    (re.compile(r"(?<![_A-Za-z0-9:])time\s*\(|\bclock\s*\(\)"),
     "wall-clock",
     "wall clocks may only feed the observability layer"),
    (re.compile(r"\bgetenv\b"), "env",
     "environment reads belong in core/options"),
]

# Files where nondeterministic-call never fires: the observability layer is
# the one place wall clocks are the point, and core/options is the one
# sanctioned environment-knob reader. Everything else needs a pragma.
NONDET_ALLOWLIST = (
    "src/obs/",
    "src/core/options.",
)

# Paths whose output ordering is a serialized artifact: iterating an
# unordered container here without sorting changes bytes run-to-run.
# src/scenario/ is on the list because scorecard JSON and churn snapshot
# sequences are byte-compared in CI.
ORDER_SENSITIVE = ("src/io/", "src/query/", "src/scenario/", "src/serve/",
                   "src/obs/emit.cpp")

# Identifier declared (or received as a parameter) with an unordered type.
UNORDERED_DECL_RE = re.compile(
    r"unordered_(?:map|set)\s*<[^;]*?>&?\s+(\w+)\s*[;,={()\[]")
RANGE_FOR_RE = re.compile(r"\bfor\s*\(.*:\s*(.*)\)?\s*\{?\s*$")

THREAD_RE = re.compile(r"\bstd::thread\b|#\s*include\s*<thread>")
THREAD_HOME = "src/util/parallel.h"

# Files that declare themselves hot paths opt into the flat-structure rule.
HOT_PATH_MARKER_RE = re.compile(r"lint:\s*hot-path\s*$|lint:\s*hot-path\s")
HOT_PATH_CONTAINER_RE = re.compile(r"\bstd::(?:map|set)\s*<")

INCLUDE_RE = re.compile(r'^\s*#\s*include\s*([<"])([^>"]+)[>"]')

# --- untrusted-read family ---------------------------------------------------
# Parse paths: the code that interprets attacker-controllable bytes. Only
# here do the taint rules run — elsewhere a .resize(n) is just a resize.
PARSE_PATHS = ("src/io/", "src/serve/protocol.cpp", "src/serve/client.cpp")

# An identifier assigned straight from a cursor read. The (?<![\w.]) guard
# keeps `entry.size = in.u64()` from tainting every local named `size`.
TAINT_ASSIGN_RE = re.compile(
    r"(?<![\w.])(\w+)\s*=\s*\w+(?:_|\b)*\.\s*(u8|u16|u32|u64)\s*\(\s*\)")
READ_WIDTH = {"u8": 1, "u16": 2, "u32": 4, "u64": 8}

# static_cast of a raw wire read; safe only when the target is an unsigned
# integer at least as wide as the read. Enums, signed types, and narrower
# integers need wire::checked_read (which range-checks before the cast).
UNTRUSTED_CAST_RE = re.compile(
    r"static_cast\s*<\s*([^<>]+?)\s*>\s*\(\s*\w+\.\s*(u8|u16|u32|u64)"
    r"\s*\(\s*\)\s*\)")
UNSIGNED_WIDTH = {
    "std::uint8_t": 1, "uint8_t": 1, "unsigned char": 1,
    "std::uint16_t": 2, "uint16_t": 2,
    "std::uint32_t": 4, "uint32_t": 4, "unsigned": 4, "unsigned int": 4,
    "std::uint64_t": 8, "uint64_t": 8, "std::size_t": 8, "size_t": 8,
    "std::uintptr_t": 8, "uintptr_t": 8,
}

# A line that visibly caps a tainted value: the shared wire.h helpers, a
# need() precondition, an explicit min-clamp, or a comparison in a branch.
CAP_CALL_RE = re.compile(r"\bneed\s*\(|\bbounded_count\b|\bchecked_read\b|"
                         r"\bstd::min\b|\bstd::clamp\b")
CAP_BRANCH_RE = re.compile(r"\b(?:if|while|for)\s*\(")
COMPARISON_RE = re.compile(r"[<>]=?|[=!]=")

ALLOC_USE_RE = re.compile(
    r"\.\s*(?:resize|reserve)\s*\(([^;]*)\)|\bnew\s+[\w:<>]+\s*\[([^\]]*)\]")
EXTENT_USE_RE = re.compile(r"\bmem(?:cpy|move|set)\s*\(([^;]*)\)")


def check_untrusted_reads(rel_path, lines, findings):
    """Taint tracking, one function at a time (a `}` in column zero closes
    the scope): wire reads taint their identifier; an allocation, memcpy, or
    unchecked narrowing cast over a tainted identifier with no cap line in
    between is a finding."""
    taints = {}  # identifier -> line index of the tainting read

    def capped(name, start, end):
        word = re.compile(r"\b%s\b" % re.escape(name))
        for j in range(start + 1, end + 1):
            line = strip_comment(lines[j])
            if not word.search(line):
                continue
            if CAP_CALL_RE.search(line):
                return True
            if CAP_BRANCH_RE.search(line) and COMPARISON_RE.search(line):
                return True
        return False

    for i, raw in enumerate(lines):
        if raw.startswith("}"):
            taints.clear()
            continue
        line = strip_comment(raw)

        cast = UNTRUSTED_CAST_RE.search(line)
        if cast and "bounds" not in pragma_tokens(lines, i):
            target = re.sub(r"\bconst\b|\bvolatile\b", "", cast.group(1))
            target = " ".join(target.split())
            width = UNSIGNED_WIDTH.get(target)
            if width is None or width < READ_WIDTH[cast.group(2)]:
                findings.append(Finding(
                    rel_path, i + 1, "untrusted-cast",
                    "unchecked static_cast<%s> of a raw %s wire read — "
                    "out-of-range values slip through; use "
                    "wire::checked_read<%s>(cursor, <max>) or annotate "
                    "`// lint: bounds-ok(<reason>)`"
                    % (target, cast.group(2), target)))

        for match in TAINT_ASSIGN_RE.finditer(line):
            taints[match.group(1)] = i

        for use_re, rule, what in (
                (ALLOC_USE_RE, "untrusted-alloc",
                 "sizes an allocation"),
                (EXTENT_USE_RE, "untrusted-extent",
                 "bounds a raw memory operation")):
            for use in use_re.finditer(line):
                args = next(g for g in use.groups() if g is not None)
                for name, taint_line in sorted(taints.items()):
                    if not re.search(r"\b%s\b" % re.escape(name), args):
                        continue
                    if "bounds" in pragma_tokens(lines, i):
                        continue
                    if capped(name, taint_line, i):
                        continue
                    findings.append(Finding(
                        rel_path, i + 1, rule,
                        "wire-read value `%s` %s with no cap between the "
                        "read and the use — check it against the remaining "
                        "input (wire.h's need()/bounded_count) or annotate "
                        "`// lint: bounds-ok(<reason>)`"
                        % (name, what)))


def unordered_names(lines):
    names = set()
    for line in lines:
        for match in UNORDERED_DECL_RE.finditer(strip_comment(line)):
            names.add(match.group(1))
    return names


def sibling_header_lines(abs_path):
    """Declarations for a .cpp often live in the sibling header (members
    like `by_peer_`); fold its names in when scanning the .cpp."""
    stem, ext = os.path.splitext(abs_path)
    if ext != ".cpp":
        return []
    header = stem + ".h"
    if not os.path.isfile(header):
        return []
    with open(header, "r", encoding="utf-8", errors="replace") as fh:
        return fh.read().splitlines()


def check_cpp(rel_path, abs_path, lines, findings):
    check_empty_pragmas(rel_path, lines, findings)

    # --- nondeterministic-call
    if not rel_path.startswith(NONDET_ALLOWLIST):
        for i, raw in enumerate(lines):
            line = strip_comment(raw)
            for pattern, token, hint in NONDET_PATTERNS:
                if pattern.search(line) and \
                        token not in pragma_tokens(lines, i):
                    findings.append(Finding(
                        rel_path, i + 1, "nondeterministic-call",
                        "nondeterministic call (%s); %s, or annotate "
                        "`// lint: %s-ok(<reason>)`"
                        % (pattern.search(line).group(0).strip(), hint,
                           token)))

    # --- unordered-iteration (order-sensitive paths only)
    if rel_path.startswith(ORDER_SENSITIVE) or rel_path in ORDER_SENSITIVE:
        names = unordered_names(lines)
        names |= unordered_names(sibling_header_lines(abs_path))
        if names:
            member_re = re.compile(
                r"(?:^|[^\w])(%s)\b" % "|".join(map(re.escape, sorted(names))))
            for i, raw in enumerate(lines):
                line = strip_comment(raw)
                range_for = RANGE_FOR_RE.search(line)
                iterates = (range_for and member_re.search(
                    range_for.group(1))) or \
                    re.search(r"\b(%s)\s*\.\s*begin\s*\(" %
                              "|".join(map(re.escape, sorted(names))), line)
                if iterates and "sorted" not in pragma_tokens(lines, i):
                    findings.append(Finding(
                        rel_path, i + 1, "unordered-iteration",
                        "iteration over an unordered container on a "
                        "serialization path — sort the output or annotate "
                        "`// lint: sorted-ok(<reason>)`"))

    # --- untrusted-read family (parse paths only)
    if rel_path.startswith(PARSE_PATHS):
        check_untrusted_reads(rel_path, lines, findings)

    # --- hot-path-container (only in files carrying the hot-path marker)
    if any(HOT_PATH_MARKER_RE.search(line) for line in lines):
        for i, raw in enumerate(lines):
            if HOT_PATH_CONTAINER_RE.search(strip_comment(raw)):
                findings.append(Finding(
                    rel_path, i + 1, "hot-path-container",
                    "std::map/std::set in a `// lint: hot-path` file — "
                    "node-based containers chase a pointer per element; "
                    "use FlatPrefixTrie, FlatHashMap, or a sorted vector"))

    # --- raw-thread
    if rel_path != THREAD_HOME:
        for i, raw in enumerate(lines):
            if THREAD_RE.search(strip_comment(raw)) and \
                    "thread" not in pragma_tokens(lines, i):
                findings.append(Finding(
                    rel_path, i + 1, "raw-thread",
                    "raw std::thread outside util/parallel.h — use "
                    "parallel_for / parallel_transform so determinism "
                    "lives in the work decomposition"))

    # --- pragma-once
    if rel_path.endswith(".h"):
        seen_code = False
        has_pragma = False
        for raw in lines:
            stripped = raw.strip()
            if stripped.startswith("#pragma once"):
                has_pragma = not seen_code
                break
            if stripped and not stripped.startswith("//"):
                seen_code = True
        if not has_pragma:
            findings.append(Finding(
                rel_path, 1, "pragma-once",
                "header must start with #pragma once (before any code)"))

    # --- include-order
    check_include_order(rel_path, lines, findings)


def check_include_order(rel_path, lines, findings):
    """Include blocks (contiguous #include runs) must be internally sorted
    and style-pure (<...> xor "..."), with <...> blocks never after a
    "..." block — except the own header of foo.cpp, which comes first."""
    own = None
    if rel_path.endswith(".cpp"):
        own = os.path.splitext(os.path.basename(rel_path))[0] + ".h"

    blocks = []  # list of [ (line_no, style, path) ] per contiguous run
    current = []
    for i, raw in enumerate(lines):
        match = INCLUDE_RE.match(raw)
        if match:
            current.append((i + 1, match.group(1), match.group(2)))
        else:
            if current:
                blocks.append(current)
                current = []
    if current:
        blocks.append(current)

    first = True
    seen_quoted_block = False
    for block in blocks:
        if first and own and len(block) == 1 and \
                block[0][2].endswith("/" + own):
            first = False
            continue  # own-header block of the .cpp
        first = False
        styles = {style for _, style, _ in block}
        if len(styles) > 1:
            findings.append(Finding(
                rel_path, block[0][0], "include-order",
                "include block mixes <...> and \"...\" — split into a "
                "system block and a project block"))
            continue
        style = styles.pop()
        if style == '"':
            seen_quoted_block = True
        elif seen_quoted_block:
            findings.append(Finding(
                rel_path, block[0][0], "include-order",
                "<...> include block after a \"...\" block — system "
                "headers go first"))
        paths = [path for _, _, path in block]
        if paths != sorted(paths):
            findings.append(Finding(
                rel_path, block[0][0], "include-order",
                "include block not sorted: %s" %
                ", ".join(p for p, s in zip(paths, sorted(paths))
                          if p != s)))


# --------------------------------------------------------------------------
# Python rules

BARE_EXCEPT_RE = re.compile(r"^\s*except\s*:\s*(#.*)?$")
PY_WALL_CLOCK_RE = re.compile(
    r"\btime\s*\.\s*time\s*\(|\bdatetime\s*\.\s*now\s*\(|"
    r"\bdate\s*\.\s*today\s*\(|\btime\s*\.\s*monotonic\s*\(")


def check_python(rel_path, lines, findings):
    check_empty_pragmas(rel_path, lines, findings)
    for i, raw in enumerate(lines):
        if BARE_EXCEPT_RE.match(raw):
            findings.append(Finding(
                rel_path, i + 1, "py-bare-except",
                "bare `except:` swallows SystemExit/KeyboardInterrupt — "
                "name the exceptions this tool expects"))
        if PY_WALL_CLOCK_RE.search(raw) and \
                "wall-clock" not in pragma_tokens(lines, i):
            findings.append(Finding(
                rel_path, i + 1, "py-wall-clock",
                "wall-clock read in a tool whose output must be "
                "deterministic — drop it or annotate "
                "`# lint: wall-clock-ok(<reason>)`"))


# --------------------------------------------------------------------------
# Driver

# Trees never linted: generated build output and the lint's own fixture
# corpus (which is deliberately full of violations).
EXCLUDED_PARTS = ("build", ".git", "fixtures")


def iter_files(root, paths):
    for path in paths:
        base = os.path.join(root, path)
        if os.path.isfile(base):
            yield os.path.relpath(base, root)
            continue
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames[:] = sorted(d for d in dirnames
                                 if d not in EXCLUDED_PARTS)
            for name in sorted(filenames):
                yield os.path.relpath(os.path.join(dirpath, name), root)


def lint_tree(root, paths):
    findings = []
    for rel_path in iter_files(root, paths):
        rel_path = rel_path.replace(os.sep, "/")
        abs_path = os.path.join(root, rel_path)
        try:
            with open(abs_path, "r", encoding="utf-8",
                      errors="replace") as fh:
                lines = fh.read().splitlines()
        except OSError as error:
            findings.append(Finding(rel_path, 1, "io-error", str(error)))
            continue
        if rel_path.endswith((".h", ".cpp", ".cc", ".hpp")):
            check_cpp(rel_path, abs_path, lines, findings)
        elif rel_path.endswith(".py"):
            check_python(rel_path, lines, findings)
    return findings


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="cloudmap determinism & hygiene lint (see module "
                    "docstring for the rule catalogue)")
    parser.add_argument("--root", default=None,
                        help="tree root (default: the repo containing this "
                             "script)")
    parser.add_argument("paths", nargs="*",
                        help="files/dirs relative to the root "
                             "(default: src tools fuzz)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule ids and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ("nondeterministic-call", "unordered-iteration",
                     "raw-thread", "pragma-once", "include-order",
                     "bad-pragma", "hot-path-container", "untrusted-alloc",
                     "untrusted-cast", "untrusted-extent", "py-bare-except",
                     "py-wall-clock"):
            print(rule)
        return 0

    root = args.root
    if root is None:
        root = os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))))
    paths = args.paths
    if not paths:
        paths = [p for p in ("src", "tools", "fuzz") if
                 os.path.isdir(os.path.join(root, p))]
        if not paths:
            print("cloudmap_lint: nothing to lint under %s" % root,
                  file=sys.stderr)
            return 2

    findings = lint_tree(root, paths)
    for finding in findings:
        print(finding)
    if findings:
        print("cloudmap_lint: %d finding(s)" % len(findings),
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
