#!/usr/bin/env python3
"""clang-tidy driver for the `tidy` CMake target and the CI job.

Runs clang-tidy (config from the repo's .clang-tidy) over every .cpp under
src/, or over an explicit file list, against a compile_commands.json. A
missing clang-tidy binary is a hard error when --require is given (CI) and
a skip otherwise (developer machines without LLVM still get `lint`).

    python3 tools/lint/run_tidy.py -p build [files...]
"""

import argparse
import concurrent.futures
import hashlib
import json
import os
import shutil
import subprocess
import sys


def repo_root():
    return os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))


def file_digest(hasher, path):
    try:
        with open(path, "rb") as fh:
            hasher.update(fh.read())
    except OSError:
        hasher.update(b"<unreadable>")


def tree_key(root, binary):
    """Hash of everything that invalidates *every* cached verdict: the
    .clang-tidy config, the clang-tidy version, and all headers under src/
    (HeaderFilterRegex confines diagnostics to them, and a header edit can
    change any TU's findings)."""
    hasher = hashlib.sha256()
    version = subprocess.run([binary, "--version"], capture_output=True,
                             text=True, check=False).stdout
    hasher.update(version.encode())
    file_digest(hasher, os.path.join(root, ".clang-tidy"))
    for dirpath, dirnames, filenames in os.walk(os.path.join(root, "src")):
        dirnames.sort()
        for name in sorted(filenames):
            if name.endswith(".h"):
                file_digest(hasher, os.path.join(dirpath, name))
    return hasher.hexdigest()


def load_cache(path):
    if path is None or not os.path.isfile(path):
        return {}
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
        return data if isinstance(data, dict) else {}
    except (OSError, ValueError):
        return {}


def source_files(root):
    out = []
    for dirpath, dirnames, filenames in os.walk(os.path.join(root, "src")):
        dirnames.sort()
        for name in sorted(filenames):
            if name.endswith(".cpp"):
                out.append(os.path.join(dirpath, name))
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("-p", "--build-dir", default="build",
                        help="directory holding compile_commands.json")
    parser.add_argument("--clang-tidy", default="clang-tidy",
                        help="clang-tidy binary to use")
    parser.add_argument("--require", action="store_true",
                        help="fail (exit 2) when clang-tidy is missing "
                             "instead of skipping")
    parser.add_argument("-j", "--jobs", type=int,
                        default=os.cpu_count() or 1)
    parser.add_argument("--cache",
                        help="JSON file remembering clean verdicts keyed by "
                             "(config+headers, source) hashes; files whose "
                             "key is unchanged are skipped (CI persists "
                             "this between runs)")
    parser.add_argument("files", nargs="*",
                        help="files to check (default: all of src/**.cpp)")
    args = parser.parse_args()

    binary = shutil.which(args.clang_tidy)
    if binary is None:
        message = "run_tidy: %r not found" % args.clang_tidy
        if args.require:
            print(message, file=sys.stderr)
            return 2
        print(message + " — skipping (install clang-tidy, or rely on CI)",
              file=sys.stderr)
        return 0

    root = repo_root()
    database = os.path.join(args.build_dir, "compile_commands.json")
    if not os.path.isfile(database):
        print("run_tidy: no %s (configure with "
              "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON)" % database,
              file=sys.stderr)
        return 2

    files = args.files or source_files(root)
    if not files:
        print("run_tidy: nothing to check", file=sys.stderr)
        return 0

    base_key = tree_key(root, binary) if args.cache else ""
    cache = load_cache(args.cache)

    def source_key(path):
        hasher = hashlib.sha256()
        hasher.update(base_key.encode())
        file_digest(hasher, path)
        return hasher.hexdigest()

    keys = {path: source_key(path) for path in files} if args.cache else {}
    to_check = [p for p in files
                if not args.cache or cache.get(os.path.relpath(p, root))
                != keys[p]]
    skipped = len(files) - len(to_check)
    if skipped:
        print("run_tidy: %d file(s) unchanged since last clean run" %
              skipped)

    def check(path):
        result = subprocess.run(
            [binary, "-p", args.build_dir, "--quiet", path],
            capture_output=True, text=True, check=False)
        return path, result.returncode, result.stdout, result.stderr

    failed = 0
    with concurrent.futures.ThreadPoolExecutor(args.jobs) as pool:
        for path, code, out, err in pool.map(check, to_check):
            if out.strip():
                print(out.strip())
            if code != 0:
                failed += 1
                # clang-tidy prints diagnostics on stdout; stderr carries
                # config/database errors worth surfacing on failure.
                if err.strip():
                    print(err.strip(), file=sys.stderr)
            elif args.cache:
                # Only clean verdicts are cached; a failing file reruns
                # until fixed.
                cache[os.path.relpath(path, root)] = keys[path]

    if args.cache:
        os.makedirs(os.path.dirname(os.path.abspath(args.cache)),
                    exist_ok=True)
        with open(args.cache, "w", encoding="utf-8") as fh:
            json.dump(cache, fh, indent=1, sort_keys=True)

    if failed:
        print("run_tidy: %d file(s) with findings" % failed,
              file=sys.stderr)
        return 1
    print("run_tidy: %d file(s) clean (%d checked, %d cached)" %
          (len(files), len(to_check), skipped))
    return 0


if __name__ == "__main__":
    sys.exit(main())
