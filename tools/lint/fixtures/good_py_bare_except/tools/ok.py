"""Fixture: named exceptions only."""


def load(path):
    try:
        with open(path) as fh:
            return fh.read()
    except OSError:
        return None
