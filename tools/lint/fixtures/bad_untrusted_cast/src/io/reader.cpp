#include <cstdint>

#include "io/wire.h"

namespace cloudmap {

enum class Kind : std::uint8_t { kA = 0, kB = 1 };

struct Record {
  Kind kind = Kind::kA;
  std::uint8_t flags = 0;
};

// Casting a raw wire byte straight into an enum admits every out-of-range
// value; narrowing a u32 read to u8 silently truncates a forged field.
bool decode_record(wire::Cursor& in, Record& out) {
  out.kind = static_cast<Kind>(in.u8());
  out.flags = static_cast<std::uint8_t>(in.u32());
  return in.at_end();
}

}  // namespace cloudmap
