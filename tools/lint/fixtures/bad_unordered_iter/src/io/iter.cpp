// Fixture: serializing straight out of an unordered container — the bytes
// depend on hash-table layout.
#include <cstdint>
#include <ostream>
#include <unordered_map>

namespace cloudmap {

void dump(std::ostream& out,
          const std::unordered_map<std::uint32_t, std::uint32_t>& pins) {
  for (const auto& [address, metro] : pins) {
    out << address << ' ' << metro << '\n';
  }
}

}  // namespace cloudmap
