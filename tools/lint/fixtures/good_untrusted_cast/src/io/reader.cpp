#include <cstdint>

#include "io/wire.h"

namespace cloudmap {

enum class Kind : std::uint8_t { kA = 0, kB = 1 };

struct Record {
  Kind kind = Kind::kA;
  std::uint8_t flags = 0;
  std::uint64_t total = 0;
};

// checked_read rejects out-of-range values before the cast; widening an
// unsigned read is always value-preserving and passes as-is.
bool decode_record(wire::Cursor& in, Record& out) {
  out.kind = wire::checked_read<Kind>(in, 1);
  out.flags = wire::checked_read<std::uint8_t>(in, 0x0F);
  out.total = static_cast<std::uint64_t>(in.u32());
  return in.at_end();
}

}  // namespace cloudmap
