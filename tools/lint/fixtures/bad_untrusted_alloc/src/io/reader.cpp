#include <cstdint>
#include <string>
#include <vector>

#include "io/wire.h"

namespace cloudmap {

// A declared count sizes the reserve with no cap against the remaining
// input: a forged 4 GiB count becomes a 4 GiB allocation attempt.
bool decode_items(wire::Cursor& in, std::vector<std::uint32_t>& out) {
  const std::uint32_t count = in.u32();
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) out.push_back(in.u32());
  return in.at_end();
}

// Same bug through a string payload.
bool decode_name(wire::Cursor& in, std::string& out) {
  const std::uint32_t length = in.u32();
  out.resize(length);
  return in.at_end();
}

}  // namespace cloudmap
