"""Fixture: a diff tool stamping its output with the wall clock."""

import time


def report(lines):
    return {"generated_at": time.time(), "lines": lines}
