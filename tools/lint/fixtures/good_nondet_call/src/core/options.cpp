// Fixture: core/options is the sanctioned environment-knob reader
// (allowlisted), and seeded RNG use is always fine.
#include <cstdlib>

namespace cloudmap {

const char* threads_knob() { return std::getenv("CLOUDMAP_THREADS"); }

}  // namespace cloudmap
