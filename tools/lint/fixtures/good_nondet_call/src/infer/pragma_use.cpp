// Fixture: outside the allowlist, a documented pragma is accepted.
#include <chrono>

namespace cloudmap {

long progress_stamp() {
  // lint: wall-clock-ok(progress logging only; never reaches a result)
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

}  // namespace cloudmap
