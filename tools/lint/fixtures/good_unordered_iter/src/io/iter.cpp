// Fixture: the same shape, but the iteration carries a sorted-ok pragma
// because the keys are sorted before anything is emitted.
#include <algorithm>
#include <cstdint>
#include <ostream>
#include <unordered_map>
#include <vector>

namespace cloudmap {

void dump(std::ostream& out,
          const std::unordered_map<std::uint32_t, std::uint32_t>& pins) {
  std::vector<std::uint32_t> keys;
  // lint: sorted-ok(keys are collected then sorted before emission)
  for (const auto& [address, metro] : pins) keys.push_back(address);
  std::sort(keys.begin(), keys.end());
  for (const std::uint32_t address : keys) {
    out << address << ' ' << pins.at(address) << '\n';
  }
}

}  // namespace cloudmap
