#include <cstdint>
#include <cstring>

#include "io/wire.h"

namespace cloudmap {

// The branch comparing both wire reads against the validated extent caps
// them before the memcpy.
bool copy_payload(wire::Cursor& in, const unsigned char* base,
                  std::size_t base_size, unsigned char* dst,
                  std::size_t dst_size) {
  const std::uint32_t offset = in.u32();
  const std::uint32_t length = in.u32();
  if (offset > base_size || length > base_size - offset ||
      length > dst_size)
    return false;
  std::memcpy(dst, base + offset, length);
  return in.at_end();
}

}  // namespace cloudmap
