// Fixture: a pragma with no reason is itself a finding.
#include <cstdint>
#include <unordered_map>

namespace cloudmap {

inline std::uint64_t sum(
    const std::unordered_map<std::uint32_t, std::uint32_t>& m) {
  std::uint64_t total = 0;
  // lint: sorted-ok()
  for (const auto& [k, v] : m) total += v;
  return total;
}

}  // namespace cloudmap
