// Fixture: own header first, then a sorted system block, then a sorted
// project block.
#include "io/sorted.h"

#include <cstdint>
#include <vector>

#include "io/serialize.h"
#include "net/ids.h"

namespace cloudmap {}
