"""Fixture: deterministic output; the one timing read is annotated."""

import time


def measure(fn):
    # lint: wall-clock-ok(progress reporting on stderr only; not in the diff)
    started = time.monotonic()
    result = fn()
    # lint: wall-clock-ok(progress reporting on stderr only; not in the diff)
    return result, time.monotonic() - started
