// Fixture: a declared hot path using flat storage lints clean.
// lint: hot-path
#include <vector>

namespace cloudmap {

int count_routes() {
  std::vector<int> routes;
  routes.push_back(1);
  return static_cast<int>(routes.size());
}

}  // namespace cloudmap
