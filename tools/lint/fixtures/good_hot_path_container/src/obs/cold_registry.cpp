// Fixture: node-based containers stay legal in files without the marker
// (cold paths value the stable references std::map hands out).
#include <map>

namespace cloudmap {

int count_counters() {
  std::map<int, int> counters;
  counters[1] = 2;
  return static_cast<int>(counters.size());
}

}  // namespace cloudmap
