// Fixture: an unsorted include block, and a system include trailing a
// project block.
#include <vector>
#include <cstdint>

#include "io/serialize.h"

#include <string>

namespace cloudmap {}
