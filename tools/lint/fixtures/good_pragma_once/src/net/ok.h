// Fixture: lead comment, then the guard, then code.
#pragma once

namespace cloudmap {

struct Guarded {
  int value = 0;
};

}  // namespace cloudmap
