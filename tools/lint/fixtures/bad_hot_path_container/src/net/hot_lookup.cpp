// Fixture: a declared hot path reaching for node-based containers.
// lint: hot-path
#include <map>
#include <set>

namespace cloudmap {

int count_routes() {
  std::map<int, int> routes;  // hot-path-container: std::map
  std::set<int> seen;         // hot-path-container: std::set
  routes[1] = 2;
  seen.insert(1);
  return static_cast<int>(routes.size() + seen.size());
}

}  // namespace cloudmap
