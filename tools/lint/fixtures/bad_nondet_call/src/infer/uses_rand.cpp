// Fixture: inference code reaching for ambient randomness and wall clocks.
#include <chrono>
#include <cstdlib>

namespace cloudmap {

int jitter() {
  return std::rand() % 7;  // nondeterministic-call: std::rand
}

long stamp() {
  return std::chrono::system_clock::now().time_since_epoch().count();
}

const char* knob() { return getenv("CLOUDMAP_SECRET_KNOB"); }

}  // namespace cloudmap
