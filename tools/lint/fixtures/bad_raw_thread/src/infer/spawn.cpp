// Fixture: spawning a thread outside the sanctioned pool.
#include <thread>

namespace cloudmap {

void fire_and_forget() {
  std::thread worker([] {});
  worker.join();
}

}  // namespace cloudmap
