// Fixture: hazard decisions as pure functions of dedicated seed streams —
// the sanctioned pattern (scenario/hazard.h). No ambient randomness, no
// clocks; sorted iteration wherever bytes are emitted.
#include <cstdint>

namespace cloudmap {

std::uint64_t splitmix(std::uint64_t x);
std::uint64_t hazard_stream_seed(std::uint64_t seed, int kind,
                                 std::uint64_t entity, std::uint64_t round);

bool mpls_hides(std::uint64_t seed, std::uint64_t router) {
  return (hazard_stream_seed(seed, 3, router, 0) >> 11) % 3 == 0;
}

}  // namespace cloudmap
