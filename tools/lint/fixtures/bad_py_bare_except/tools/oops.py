"""Fixture: a bare except swallowing everything including SystemExit."""


def load(path):
    try:
        with open(path) as fh:
            return fh.read()
    except:
        return None
