// Fixture: hazard code drawing from ambient randomness instead of the
// dedicated hazard_stream_seed splitmix64 streams — exactly the bug that
// would break bit-identical hazard replay at different thread counts.
#include <cstdlib>
#include <random>

namespace cloudmap {

bool mpls_hides(unsigned router) {
  static std::random_device entropy;  // nondeterministic-call: random_device
  return (entropy() ^ router) % 3 == 0;
}

double churn_draw() { return std::rand() / 32768.0; }

}  // namespace cloudmap
