// Fixture: src/util/parallel.h is the one sanctioned thread-spawning site.
#pragma once

#include <thread>

namespace cloudmap {

inline unsigned workers() { return std::thread::hardware_concurrency(); }

}  // namespace cloudmap
