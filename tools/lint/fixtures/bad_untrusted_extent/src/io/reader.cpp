#include <cstdint>
#include <cstring>

#include "io/wire.h"

namespace cloudmap {

// A wire-read size bounds the memcpy with no cap against the validated
// extent: a forged size reads past the end of the input buffer.
bool copy_payload(wire::Cursor& in, const unsigned char* base,
                  unsigned char* dst) {
  const std::uint32_t offset = in.u32();
  const std::uint32_t length = in.u32();
  std::memcpy(dst, base + offset, length);
  return in.at_end();
}

}  // namespace cloudmap
