// Fixture: a header with no #pragma once before code.

namespace cloudmap {

struct Unguarded {
  int value = 0;
};

}  // namespace cloudmap
