#include <cstdint>
#include <string>
#include <vector>

#include "io/wire.h"

namespace cloudmap {

// The shared helper caps the count against the remaining bytes before the
// identifier exists; nothing tainted reaches the allocator.
bool decode_items(wire::Cursor& in, std::vector<std::uint32_t>& out) {
  const std::uint32_t count = wire::bounded_count(in, 4);
  out.reserve(count);
  for (std::uint32_t i = 0; i < count && !in.failed; ++i)
    out.push_back(in.u32());
  return in.at_end();
}

// An explicit need() precondition between the read and the use also
// satisfies the rule.
bool decode_name(wire::Cursor& in, std::string& out) {
  const std::uint32_t length = in.u32();
  if (!in.need(length)) return false;
  out.resize(length);
  return in.at_end();
}

}  // namespace cloudmap
