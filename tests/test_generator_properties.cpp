// Seed-sweep property tests over the world generator: structural invariants
// that must hold for any seed, not just the fixture's.
#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>

#include "net/geo.h"
#include "topology/generator.h"

namespace cloudmap {
namespace {

class GeneratorProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  GeneratorProperty() {
    GeneratorConfig config = GeneratorConfig::small();
    config.seed = GetParam();
    world_ = generate_world(config);
  }
  World world_;
};

TEST_P(GeneratorProperty, WorldValidates) {
  EXPECT_EQ(world_.validate(), "");
}

TEST_P(GeneratorProperty, PublicAddressesAreUniquePerRole) {
  // An address may appear on several interfaces only for shared L2 ports
  // (same router) or redundant sessions (same router); otherwise unique.
  std::unordered_map<std::uint32_t, std::unordered_set<std::uint32_t>>
      routers_by_address;
  for (const Interface& iface : world_.interfaces) {
    if (iface.address.is_unspecified()) continue;
    routers_by_address[iface.address.value()].insert(iface.router.value);
  }
  for (const auto& [address, routers] : routers_by_address) {
    EXPECT_EQ(routers.size(), 1u)
        << Ipv4(address).to_string() << " appears on multiple routers";
  }
}

TEST_P(GeneratorProperty, LinkLatencyRespectsGeography) {
  // No link is faster than light in fiber between its routers' metros.
  for (const Link& link : world_.links) {
    const RouterId ra = world_.interface(link.side_a).router;
    const RouterId rb = world_.interface(link.side_b).router;
    const double geo_oneway =
        propagation_delay_ms(world_.router_location(ra),
                             world_.router_location(rb), /*inflation=*/1.0);
    EXPECT_GE(link.latency_ms + 1e-9, geo_oneway * 0.999)
        << to_string(link.kind);
  }
}

TEST_P(GeneratorProperty, InterconnectEndpointsMatchDeclaredKinds) {
  for (const GroundTruthInterconnect& ic : world_.interconnects) {
    const Link& link = world_.link(ic.link);
    switch (ic.kind) {
      case PeeringKind::kPublicIxp:
        EXPECT_EQ(link.kind, LinkKind::kIxpLan);
        break;
      case PeeringKind::kCrossConnect:
        EXPECT_EQ(link.kind, LinkKind::kCrossConnect);
        break;
      case PeeringKind::kVpi:
        EXPECT_EQ(link.kind, LinkKind::kVpi);
        break;
    }
    // The cloud interface belongs to the declared cloud's org.
    const AsId cloud_owner = world_.router_owner(
        world_.interface(ic.cloud_interface).router);
    EXPECT_TRUE(world_.is_cloud_as(cloud_owner, ic.cloud));
  }
}

TEST_P(GeneratorProperty, RemoteInterconnectsHaveDistantClients) {
  for (const GroundTruthInterconnect& ic : world_.interconnects) {
    if (!ic.remote) {
      continue;
    }
    EXPECT_NE(ic.client_metro, ic.metro);
  }
}

TEST_P(GeneratorProperty, IxpLanAddressesStayInsideTheLan) {
  for (const GroundTruthInterconnect& ic : world_.interconnects) {
    if (ic.kind != PeeringKind::kPublicIxp) continue;
    const ColoFacility& colo = world_.colo(ic.colo);
    ASSERT_TRUE(colo.ixp.valid());
    const Prefix& lan = world_.ixp(colo.ixp).peering_prefix;
    EXPECT_TRUE(lan.contains(world_.interface(ic.client_interface).address));
    EXPECT_TRUE(lan.contains(world_.interface(ic.cloud_interface).address));
  }
}

TEST_P(GeneratorProperty, CloudBordersHaveUplinks) {
  for (const Region& region : world_.regions) {
    EXPECT_FALSE(
        world_.router(region.core_router).uplink.valid());  // cores are roots
  }
  for (const GroundTruthInterconnect& ic : world_.interconnects) {
    const RouterId border = world_.interface(ic.cloud_interface).router;
    // Every border terminating an interconnect is reachable from a core.
    RouterId current = border;
    int guard = 0;
    while (world_.router(current).uplink.valid() && guard++ < 32) {
      const Link& up = world_.link(world_.router(current).uplink);
      const RouterId ra = world_.interface(up.side_a).router;
      const RouterId rb = world_.interface(up.side_b).router;
      current = (ra == current) ? rb : ra;
    }
    EXPECT_LT(guard, 32);
    bool is_core = false;
    for (const Region& region : world_.regions)
      if (region.core_router == current) is_core = true;
    EXPECT_TRUE(is_core) << "border " << border.value
                         << " does not chain to a core";
  }
}

TEST_P(GeneratorProperty, AnnouncedPrefixesAreDisjointAcrossAses) {
  std::vector<std::pair<Prefix, std::uint32_t>> all;
  for (std::uint32_t i = 0; i < world_.ases.size(); ++i)
    for (const Prefix& prefix : world_.ases[i].announced_prefixes)
      all.emplace_back(prefix, i);
  for (std::size_t a = 0; a < all.size(); ++a) {
    for (std::size_t b = a + 1; b < all.size(); ++b) {
      if (all[a].second == all[b].second) continue;
      EXPECT_FALSE(all[a].first.contains(all[b].first.network()) ||
                   all[b].first.contains(all[a].first.network()))
          << all[a].first.to_string() << " vs " << all[b].first.to_string();
    }
  }
}

TEST_P(GeneratorProperty, EveryAsHasAtLeastOneRouter) {
  for (const AutonomousSystem& as : world_.ases) {
    if (as.type == AsType::kCloud) continue;
    EXPECT_FALSE(as.routers.empty()) << as.name;
  }
}

TEST_P(GeneratorProperty, ProviderCustomerListsAreSymmetric) {
  for (std::uint32_t i = 0; i < world_.ases.size(); ++i) {
    for (const AsId provider : world_.ases[i].providers) {
      bool found = false;
      for (const AsId customer : world_.ases[provider.value].customers)
        if (customer.value == i) found = true;
      EXPECT_TRUE(found);
    }
    for (const AsId peer : world_.ases[i].peers) {
      bool found = false;
      for (const AsId back : world_.ases[peer.value].peers)
        if (back.value == i) found = true;
      EXPECT_TRUE(found);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorProperty,
                         ::testing::Values(1, 2, 3, 11, 42, 1234));

// Every ID-mint site narrows a container size through narrow_id — the
// narrowing must fail loudly instead of wrapping once a table outgrows the
// 32-bit ID space (or collides with the kInvalidIndex sentinel).
TEST(NarrowId, AcceptsEveryRepresentableIndex) {
  EXPECT_EQ((narrow_id<RouterId>(0, "router table").value), 0u);
  EXPECT_EQ((narrow_id<RouterId>(kInvalidIndex - 1, "router table").value),
            kInvalidIndex - 1);
  EXPECT_EQ(narrow_u32(0xFFFFFFFFull, "asn"), 0xFFFFFFFFu);
}

TEST(NarrowId, RejectsSentinelAndOverflow) {
  EXPECT_THROW(narrow_id<RouterId>(std::size_t{kInvalidIndex}, "router table"),
               std::length_error);
  EXPECT_THROW(narrow_id<InterfaceId>(std::size_t{1} << 32, "interface table"),
               std::length_error);
  EXPECT_THROW(narrow_u32(0x100000000ull, "ixp-operator asn"),
               std::length_error);
}

TEST(NarrowId, DiagnosticNamesTheTable) {
  try {
    narrow_id<AsId>(std::size_t{kInvalidIndex}, "as table");
    FAIL() << "expected std::length_error";
  } catch (const std::length_error& e) {
    EXPECT_NE(std::string(e.what()).find("as table"), std::string::npos);
  }
}

}  // namespace
}  // namespace cloudmap
