// bdrmap baseline (§8): it runs, it produces the paper's inconsistency
// classes, and the comparison with the cloudmap fabric is sane.
#include <gtest/gtest.h>

#include "bdrmap/bdrmap.h"
#include "fixtures.h"

namespace cloudmap {
namespace {

using testfx::small_pipeline;

class BdrmapTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Pipeline& pipeline = small_pipeline();
    Bdrmap bdrmap(pipeline.world(), pipeline.forwarder(),
                  pipeline.snapshot_round2(), pipeline.as2org(),
                  CloudProvider::kAmazon);
    result_ = new BdrmapResult(bdrmap.run());
  }
  static void TearDownTestSuite() {
    delete result_;
    result_ = nullptr;
  }
  static BdrmapResult* result_;
};
BdrmapResult* BdrmapTest::result_ = nullptr;

TEST_F(BdrmapTest, RunsPerRegion) {
  Pipeline& pipeline = small_pipeline();
  EXPECT_EQ(result_->regions.size(),
            pipeline.world().regions_of(CloudProvider::kAmazon).size());
  EXPECT_GT(result_->cbis.size(), 0u);
  EXPECT_GT(result_->abis.size(), 0u);
  EXPECT_GT(result_->owner_asns.size(), 0u);
}

TEST_F(BdrmapTest, ExhibitsUnresolvedOwners) {
  // BGP-only annotation leaves WHOIS-only interconnect space unresolved —
  // the AS0-owner CBIs the paper calls out (0.32k in their run).
  EXPECT_GT(result_->as0_owner_cbis + result_->thirdparty_cbis, 0u);
}

TEST_F(BdrmapTest, ComparisonWithFabricOverlaps) {
  Pipeline& pipeline = small_pipeline();
  const BdrmapComparison comparison = compare_with_fabric(
      *result_, pipeline.campaign().fabric(), pipeline.peer_asns());
  EXPECT_GT(comparison.common_cbis, 0u);
  EXPECT_GT(comparison.common_ases, 0u);
  // cloudmap finds peers bdrmap misses (IXP LANs, WHOIS space).
  EXPECT_GT(comparison.cloudmap_only_ases, 0u);
}

TEST_F(BdrmapTest, PeerSetsDivergeInBothDirections) {
  // The paper's §8 comparison: substantial common ground, bdrmap-exclusive
  // ASes (0.65k there), and cloudmap-exclusive ASes. Neither tool's peer
  // set contains the other's.
  Pipeline& pipeline = small_pipeline();
  const BdrmapComparison comparison = compare_with_fabric(
      *result_, pipeline.campaign().fabric(), pipeline.peer_asns());
  EXPECT_GT(comparison.common_ases, 10u);
  EXPECT_GT(comparison.bdrmap_only_ases + comparison.cloudmap_only_ases, 0u);
}

}  // namespace
}  // namespace cloudmap
