// Analysis layer: six-group classification, hybrid combos, features, ICG,
// BGP coverage, DNS evidence.
#include <gtest/gtest.h>

#include "analysis/dns_evidence.h"
#include "analysis/features.h"
#include "analysis/graph.h"
#include "analysis/grouping.h"
#include "fixtures.h"

namespace cloudmap {
namespace {

using testfx::small_pipeline;

TEST(Grouping, EverySegmentClassifiesOrIsUnattributed) {
  Pipeline& pipeline = small_pipeline();
  const PeeringClassifier classifier = pipeline.classifier();
  const GroupBreakdown result =
      breakdown(pipeline.campaign().fabric(), classifier);
  std::size_t classified = 0;
  for (const auto& row : result.rows) classified += row.cbis.size();
  EXPECT_GT(result.total_cbis, 0u);
  EXPECT_GT(classified, 0u);
}

TEST(Grouping, AggregatesAreUnions) {
  Pipeline& pipeline = small_pipeline();
  const PeeringClassifier classifier = pipeline.classifier();
  const GroupBreakdown result =
      breakdown(pipeline.campaign().fabric(), classifier);
  const auto& pb_nb = result.rows[static_cast<int>(PeeringGroup::kPbNb)];
  const auto& pb_b = result.rows[static_cast<int>(PeeringGroup::kPbB)];
  EXPECT_EQ(result.pb.cbis.size() <= pb_nb.cbis.size() + pb_b.cbis.size(),
            true);
  for (const std::uint32_t as : pb_nb.ases)
    EXPECT_TRUE(result.pb.ases.count(as));
  for (const std::uint32_t as : pb_b.ases)
    EXPECT_TRUE(result.pb.ases.count(as));
}

TEST(Grouping, PublicGroupsAreIxpCbis) {
  Pipeline& pipeline = small_pipeline();
  Annotator annotator = pipeline.annotator();
  annotator.set_snapshot(&pipeline.snapshot_round2());
  const PeeringClassifier classifier = pipeline.classifier();
  for (const InferredSegment& segment :
       pipeline.campaign().fabric().segments()) {
    const auto group = classifier.classify(segment);
    if (!group) continue;
    const bool is_public = *group == PeeringGroup::kPbNb ||
                           *group == PeeringGroup::kPbB;
    EXPECT_EQ(is_public, annotator.annotate(segment.cbi).ixp);
  }
}

TEST(Grouping, VirtualGroupsMatchVpiSet) {
  Pipeline& pipeline = small_pipeline();
  const PeeringClassifier classifier = pipeline.classifier();
  const auto& vpi_cbis = pipeline.vpis().vpi_cbis;
  for (const InferredSegment& segment :
       pipeline.campaign().fabric().segments()) {
    const auto group = classifier.classify(segment);
    if (!group) continue;
    const bool is_virtual = *group == PeeringGroup::kPrNbV ||
                            *group == PeeringGroup::kPrBV;
    if (is_virtual) {
      EXPECT_TRUE(vpi_cbis.count(segment.cbi.value()));
    }
  }
}

TEST(Grouping, HiddenPeeringsExist) {
  // The paper's headline: a third of peerings are virtual or BGP-invisible.
  Pipeline& pipeline = small_pipeline();
  const PeeringClassifier classifier = pipeline.classifier();
  const GroupBreakdown result =
      breakdown(pipeline.campaign().fabric(), classifier);
  const std::size_t hidden =
      result.rows[static_cast<int>(PeeringGroup::kPbNb)].ases.size() +
      result.rows[static_cast<int>(PeeringGroup::kPrNbV)].ases.size() +
      result.rows[static_cast<int>(PeeringGroup::kPrNbNv)].ases.size();
  EXPECT_GT(hidden, 0u);
}

TEST(Grouping, HybridCombosCountEachAsOnce) {
  Pipeline& pipeline = small_pipeline();
  const PeeringClassifier classifier = pipeline.classifier();
  const auto hybrid =
      hybrid_breakdown(pipeline.campaign().fabric(), classifier);
  EXPECT_GT(hybrid.size(), 1u);
  std::size_t total_ases = 0;
  for (const HybridRow& row : hybrid) {
    EXPECT_FALSE(row.combo.empty());
    total_ases += row.as_count;
    // Sorted descending by count.
  }
  for (std::size_t i = 1; i < hybrid.size(); ++i)
    EXPECT_GE(hybrid[i - 1].as_count, hybrid[i].as_count);
  const GroupBreakdown result =
      breakdown(pipeline.campaign().fabric(), classifier);
  EXPECT_EQ(total_ases, result.total_ases);
}

TEST(Grouping, BgpCoverageFindsMostReportedPeers) {
  Pipeline& pipeline = small_pipeline();
  const PeeringClassifier classifier = pipeline.classifier();
  const BgpCoverage coverage =
      bgp_coverage(pipeline.campaign().fabric(), classifier,
                   pipeline.snapshot_round2(), pipeline.subject_asns());
  EXPECT_GT(coverage.bgp_reported, 0u);
  // The paper discovers ~93% of BGP-reported Amazon peerings.
  EXPECT_GT(coverage.coverage(), 0.5);
  // And many peerings invisible to BGP.
  EXPECT_GT(coverage.inferred_not_in_bgp, coverage.bgp_reported);
}

TEST(Features, MatrixHasSamplesForPopulatedGroups) {
  Pipeline& pipeline = small_pipeline();
  const PeeringClassifier classifier = pipeline.classifier();
  const GroupFeatureMatrix matrix = compute_group_features(
      pipeline.campaign().fabric(), classifier,
      [&](Asn asn) { return pipeline.cone_of(asn); },
      [&](const InferredSegment& segment) {
        return pipeline.mutable_pinner().segment_rtt_diff(segment);
      },
      pipeline.pinning());
  const GroupBreakdown result =
      breakdown(pipeline.campaign().fabric(), classifier);
  for (std::size_t g = 0; g < kPeeringGroupCount; ++g) {
    if (result.rows[g].ases.empty()) continue;
    EXPECT_EQ(matrix
                  .samples[g][static_cast<int>(PeerFeature::kCbiCount)]
                  .size(),
              result.rows[g].ases.size());
    // CBI counts are at least 1 per AS.
    for (const double v :
         matrix.samples[g][static_cast<int>(PeerFeature::kCbiCount)])
      EXPECT_GE(v, 1.0);
  }
}

TEST(Features, TransitGroupsHaveLargerCones) {
  Pipeline& pipeline = small_pipeline();
  const PeeringClassifier classifier = pipeline.classifier();
  const GroupFeatureMatrix matrix = compute_group_features(
      pipeline.campaign().fabric(), classifier,
      [&](Asn asn) { return pipeline.cone_of(asn); },
      [](const InferredSegment&) { return std::nullopt; },
      pipeline.pinning());
  const auto& pr_b_nv =
      matrix.stats[static_cast<int>(PeeringGroup::kPrBNv)]
                  [static_cast<int>(PeerFeature::kBgpSlash24)];
  const auto& pb_nb = matrix.stats[static_cast<int>(PeeringGroup::kPbNb)]
                                  [static_cast<int>(PeerFeature::kBgpSlash24)];
  if (pr_b_nv.count > 0 && pb_nb.count > 0) {
    EXPECT_GT(pr_b_nv.median, pb_nb.median);
  }
}

TEST(Icg, DegreesMatchSegments) {
  Pipeline& pipeline = small_pipeline();
  const IcgStats stats = icg_stats(pipeline.campaign().fabric());
  EXPECT_EQ(stats.edges, pipeline.campaign().fabric().segments().size());
  double abi_degree_sum = 0.0;
  for (const double d : stats.abi_degrees) abi_degree_sum += d;
  EXPECT_DOUBLE_EQ(abi_degree_sum, static_cast<double>(stats.edges));
  // The paper's ICG has a giant component (92.3%); the small test world is
  // sparser but must still show substantial stitching via remote peering.
  EXPECT_GT(stats.largest_component_fraction, 0.25);
  EXPECT_LE(stats.largest_component_fraction, 1.0);
}

TEST(Icg, AbiDegreesAreSkewed) {
  Pipeline& pipeline = small_pipeline();
  const IcgStats stats = icg_stats(pipeline.campaign().fabric());
  double max_degree = 0.0;
  for (const double d : stats.abi_degrees)
    max_degree = std::max(max_degree, d);
  // Some Amazon border interfaces front many CBIs (Fig. 7a's tail).
  EXPECT_GT(max_degree, 5.0);
}

TEST(Icg, RemotePeeringStatsAddUp) {
  Pipeline& pipeline = small_pipeline();
  const RemotePeeringStats stats =
      remote_peering_stats(pipeline.campaign().fabric(), pipeline.pinning());
  EXPECT_EQ(stats.both_ends_pinned, stats.same_metro + stats.cross_metro);
  EXPECT_GT(stats.both_ends_pinned, 0u);
  // Most both-end-pinned peerings stay inside one metro (paper: 98%).
  EXPECT_GT(stats.same_metro_fraction, 0.5);
}

TEST(DnsEvidence, DxKeywordsConcentrateInPrivateGroups) {
  Pipeline& pipeline = small_pipeline();
  const PeeringClassifier classifier = pipeline.classifier();
  const DnsEvidence evidence = dns_vpi_evidence(
      pipeline.campaign().fabric(), classifier, pipeline.dns());
  std::size_t private_dx = 0;
  std::size_t public_dx = 0;
  for (std::size_t g = 0; g < kPeeringGroupCount; ++g) {
    const bool is_public = g == static_cast<int>(PeeringGroup::kPbNb) ||
                           g == static_cast<int>(PeeringGroup::kPbB);
    if (is_public) public_dx += evidence.groups[g].dx_keyword;
    else private_dx += evidence.groups[g].dx_keyword;
  }
  EXPECT_EQ(public_dx, 0u);  // dx markers only appear on VPI interfaces
  (void)private_dx;          // can be zero in a small world; no assertion
}

}  // namespace
}  // namespace cloudmap
